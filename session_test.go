package repro

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Golden-equality tests for the Session redesign: the deprecated free
// functions are thin wrappers over a default session, and these tests
// prove old call and new call emit byte-identical artifacts.

// simSig fingerprints a run for byte-level comparison of everything the
// renderers consume.
func simSig(m *SimMetrics) string {
	return fmt.Sprintf("%d %d %d %d %d %d %v %v %v %v %v",
		m.LocalGenerated, m.LocalDone, m.LocalAborted,
		m.GlobalGenerated, m.GlobalDone, m.GlobalAborted,
		m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(),
		m.GlobalResponse.Mean(), m.GlobalTardiness.Mean())
}

// TestDeprecatedSimulateMatchesSession: Simulate == Session.Run of a
// one-replication job.
func TestDeprecatedSimulateMatchesSession(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 4000
	old, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	defer sess.Close()
	res, err := sess.Run(context.Background(), Job{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if simSig(old) != simSig(res.Runs[0]) {
		t.Fatalf("Simulate diverged from Session.Run:\nold %s\nnew %s",
			simSig(old), simSig(res.Runs[0]))
	}
}

// TestDeprecatedReplicationsMatchSession: SimulateReplicationsParallel
// == Session.Run at matching parallelism, runs and estimates alike.
func TestDeprecatedReplicationsMatchSession(t *testing.T) {
	cfg := PSPBaselineConfig()
	cfg.Horizon = 2500
	const reps = 3
	for _, par := range []int{1, 4} {
		old, err := SimulateReplicationsParallel(cfg, reps, par)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(WithParallelism(par))
		res, err := sess.Run(context.Background(), Job{Config: cfg, Reps: reps})
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range old.Runs {
			if simSig(old.Runs[i]) != simSig(res.Runs[i]) {
				t.Fatalf("parallelism %d rep %d diverged", par, i)
			}
		}
		if old.LocalMD != res.LocalMD || old.GlobalMD != res.GlobalMD {
			t.Fatalf("parallelism %d: estimates diverged", par)
		}
	}
}

// TestDeprecatedRunScenarioMatchesSessionCSV is the golden-CSV test:
// the deprecated RunScenario and Session.RunScenario must emit
// byte-identical merged time-series CSV, at parallelism 1 and N,
// pooling on and off.
func TestDeprecatedRunScenarioMatchesSessionCSV(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 10000
	sc, err := ScenarioPreset("storm", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 3
	csv := func(res *ScenarioResult) string {
		var b strings.Builder
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, par := range []int{1, 4} {
		for _, pooling := range []bool{true, false} {
			c := cfg
			c.DisablePooling = !pooling
			old, err := RunScenario(c, sc, reps, par)
			if err != nil {
				t.Fatal(err)
			}
			sess := NewSession(WithParallelism(par))
			res, err := sess.RunScenario(context.Background(), c, sc, reps)
			sess.Close()
			if err != nil {
				t.Fatal(err)
			}
			if csv(old) != csv(res) {
				t.Fatalf("par=%d pooling=%t: deprecated RunScenario CSV differs from Session", par, pooling)
			}
			if old.LocalMD != res.LocalMD || old.GlobalMD != res.GlobalMD {
				t.Fatalf("par=%d pooling=%t: estimates diverged", par, pooling)
			}
		}
	}
}

// TestSessionExperimentMatchesRunExperiment: the session-scoped
// experiment path renders byte-identical CSV to the package-level one.
func TestSessionExperimentMatchesRunExperiment(t *testing.T) {
	opts := ExperimentOptions{Horizon: 1200, Reps: 2, Seed: 3}
	old, err := RunExperiment("fig2b", opts)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	defer sess.Close()
	res, err := sess.Experiment(context.Background(), "fig2b", opts)
	if err != nil {
		t.Fatal(err)
	}
	if RenderCSV(old.Figure) != RenderCSV(res.Figure) {
		t.Fatal("Session.Experiment CSV differs from RunExperiment")
	}
}

// TestStreamConcatenationEqualsBatch at the public API: streaming is
// pure delivery, never a different computation.
func TestStreamConcatenationEqualsBatch(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 3000
	sess := NewSession(WithParallelism(3))
	defer sess.Close()
	job := Job{Config: cfg, Reps: 4}
	batch, err := sess.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it := range st.Items() {
		if it.Index != i || simSig(it.Metrics) != simSig(batch.Runs[i]) {
			t.Fatalf("stream item %d (index %d) diverged from batch", i, it.Index)
		}
		i++
	}
	if i != len(batch.Runs) {
		t.Fatalf("stream delivered %d of %d results", i, len(batch.Runs))
	}
}

// TestCancelledExperimentFails: an already-cancelled context fails an
// experiment cleanly rather than producing a partial figure.
func TestCancelledExperimentFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := NewSession()
	defer sess.Close()
	_, err := sess.Experiment(ctx, "fig2b", ExperimentOptions{Horizon: 1000, Reps: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
