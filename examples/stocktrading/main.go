// Stock trading: the paper's introductory scenario ("stock market
// analysis and program trading") running on the live goroutine runtime.
//
// Market updates arrive continuously. Each update is a distributed task:
// prices are gathered from sources, piped through filters (in parallel),
// fed to an analysis engine, and a buy/sell order is placed — all within
// an end-to-end deadline. Four nodes (feed handler, two filter engines,
// trading engine) each run a non-preemptive EDF worker. Background local
// jobs at every node model the components' own work.
//
// The example runs the same update stream twice — once with Ultimate
// Deadline, once with EQF-DIV1 — and reports how many updates met the
// trading deadline under each strategy.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

const (
	timeUnit   = 4 * time.Millisecond // one model time unit of wall time
	updates    = 60                   // market updates per strategy run
	interval   = 18 * time.Millisecond
	deadline   = 12 // time units end to end (critical path is 6)
	localEvery = 24 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Program-trading pipeline: [gather [tech:2 || fund:2] analyze:2 trade:1]")
	fmt.Printf("end-to-end deadline: %d time units (%v wall)\n\n", deadline, deadline*timeUnit)

	for _, tt := range []struct {
		name     string
		assigner repro.Assigner
	}{
		{name: "UD-UD  (naive)", assigner: repro.NewAssigner(repro.UD, repro.PUD)},
		{name: "EQF-DIV1 (paper)", assigner: repro.NewAssigner(repro.EQF, repro.DIV(1))},
	} {
		missed, worst, err := tradeRun(tt.assigner)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s missed %2d/%d updates, worst overshoot %6.1fms\n",
			tt.name, missed, updates, worst.Seconds()*1000)
	}
	fmt.Println("\nWith per-stage deadlines the trading engine sees the true urgency of late")
	fmt.Println("stages, so updates stop losing their slack in early queues (paper section 4.2).")
	return nil
}

// tradeRun pushes the update stream through the pipeline under one
// strategy, with background local load, and reports (missed, worst
// overshoot).
func tradeRun(assigner repro.Assigner) (int, time.Duration, error) {
	nodes := []*repro.LiveNode{
		repro.NewLiveNode("feed"),
		repro.NewLiveNode("filterA"),
		repro.NewLiveNode("filterB"),
		repro.NewLiveNode("trading"),
	}
	defer func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}()
	rt, err := repro.NewLiveRuntime(nodes, assigner)
	if err != nil {
		return 0, 0, err
	}
	rt.TimeScale = timeUnit

	// Background local jobs: each node periodically receives short
	// local work with its own (tight) deadline, competing with the
	// pipeline's subtasks in the EDF queues.
	stopLocals := make(chan struct{})
	var localWG sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	for _, n := range nodes {
		n := n
		localWG.Add(1)
		go func() {
			defer localWG.Done()
			ticker := time.NewTicker(localEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopLocals:
					return
				case <-ticker.C:
					dur := time.Duration(rng.Intn(2)+1) * timeUnit
					_ = n.Submit(&repro.LiveJob{
						Name:     "local",
						Deadline: time.Now().Add(dur + 2*timeUnit),
						Run:      func() { time.Sleep(dur) },
					})
				}
			}
		}()
	}

	var (
		reportMu sync.Mutex
		missed   int
		worst    time.Duration
		taskWG   sync.WaitGroup
	)
	for i := 0; i < updates; i++ {
		g := repro.MustParseGraph("[gather:1 [tech:2 || fund:2] analyze:2 trade:1]")
		leaves := g.Flatten()
		// gather -> feed, tech -> filterA, fund -> filterB,
		// analyze -> trading, trade -> trading.
		placements := []int{0, 1, 2, 3, 3}
		for j, leaf := range leaves {
			leaf.NodeID = placements[j]
		}
		taskWG.Add(1)
		go func() {
			defer taskWG.Done()
			rep, err := rt.Execute(g, deadline*timeUnit)
			if err != nil {
				return
			}
			reportMu.Lock()
			defer reportMu.Unlock()
			if rep.Missed {
				missed++
				if over := rep.Finished.Sub(rep.Deadline); over > worst {
					worst = over
				}
			}
		}()
		time.Sleep(interval)
	}
	taskWG.Wait()
	close(stopLocals)
	localWG.Wait()
	return missed, worst, nil
}
