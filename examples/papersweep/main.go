// Papersweep: regenerate Fig. 2b (SSP strategies vs load) at laptop
// scale through the public experiment API, print the table and an ASCII
// chart, and check the paper's headline numbers.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Experiments run through a Session: warm per-worker workspaces
	// persist across every sweep issued on it.
	sess := repro.NewSession()
	defer sess.Close()
	opts := repro.ExperimentOptions{
		Horizon:     40000, // paper: 1,000,000; the shape is stable far below that
		Reps:        2,
		Seed:        1,
		Parallelism: 0, // all cores; the result is identical at any setting
		Progress:    repro.ProgressPrinter(os.Stderr, "fig2b"),
	}
	res, err := sess.Experiment(context.Background(), "fig2b", opts)
	if err != nil {
		return err
	}
	fmt.Print(repro.RenderTable(res.Figure))
	fmt.Println()
	fmt.Print(repro.RenderChart(res.Figure, 60, 16))

	udAt05, _ := res.Figure.YAt("UD", 0.5)
	eqfAt05, _ := res.Figure.YAt("EQF", 0.5)
	fmt.Printf("\npaper point A: MDglobal(UD, load 0.5) ~ 40%%  -> measured %.1f%%\n", udAt05)
	fmt.Printf("paper:         EQF well below UD at load 0.5 -> measured %.1f%%\n", eqfAt05)
	return nil
}
