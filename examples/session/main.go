// Session: the unified run API — warm workspaces, streaming results,
// and deterministic-safe cancellation.
//
// The example runs a burst-scenario job of 12 replications twice
// through one Session. The first pass streams: per-replication results
// arrive over a channel in seed order as workers finish, long before
// the batch is done. The second pass cancels mid-run and shows that the
// partial result is the exact seed prefix of the first pass — same
// seeds, same numbers — because a claimed replication always runs to
// completion and unclaimed ones never start.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := repro.BaselineConfig()
	cfg.Horizon = 20000
	sc, err := repro.ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		return err
	}
	job := repro.Job{Config: cfg, Scenario: sc, Reps: 12}

	// One session for both passes: the second reuses the first's warm
	// per-worker workspaces (engine, pools, queues, workload sources).
	sess := repro.NewSession(repro.WithParallelism(4))
	defer sess.Close()

	fmt.Println("streaming 12 replications (seed order, delivered as workers finish):")
	st, err := sess.Stream(context.Background(), job)
	if err != nil {
		return err
	}
	for it := range st.Items() {
		fmt.Printf("  rep %2d (seed %2d): MD_local %5.2f%%  MD_global %5.2f%%\n",
			it.Index, it.Seed, it.Metrics.MDLocal(), it.Metrics.MDGlobal())
	}
	full, err := st.Result()
	if err != nil {
		return err
	}
	fmt.Printf("merged: MD_local %.2f%% ±%.2f, MD_global %.2f%% ±%.2f over %d windows\n\n",
		full.LocalMD.Mean, full.LocalMD.HalfCI, full.GlobalMD.Mean, full.GlobalMD.HalfCI,
		full.Series.Len())

	// Second pass: cancel after the third result. The partial result is
	// a valid seed prefix — each finished replication bit-identical to
	// the full pass above.
	fmt.Println("same job, cancelled after 3 replications:")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := sess.Run(ctx, job, repro.WithProgress(func(done, total int) {
		if done == 3 {
			cancel()
		}
	}))
	if err != nil && partial == nil {
		return err // a real failure, not a cancellation
	}
	fmt.Printf("  partial=%t, finished seeds %v of %d requested\n",
		partial.Partial, partial.Seeds, job.Reps)
	for i, m := range partial.Runs {
		match := "=="
		if m.MDGlobal() != full.Runs[i].MDGlobal() || m.MDLocal() != full.Runs[i].MDLocal() {
			match = "!=" // never happens: prefix determinism
		}
		fmt.Printf("  rep %2d: MD_global %5.2f%% %s full run's %5.2f%%\n",
			i, m.MDGlobal(), match, full.Runs[i].MDGlobal())
	}
	return nil
}
