// Quickstart: describe a distributed task, split its end-to-end deadline
// into subtask deadlines with the paper's strategies, and run one
// baseline simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A distributed task: gather market data, refine it through two
	// parallel filters, then decide — with an end-to-end deadline of
	// 12 time units after arrival.
	g, err := repro.ParseGraph("[gather:1 [f1:1 || f2:1.5] decide:2]")
	if err != nil {
		return err
	}

	fmt.Println("Task:", g)
	fmt.Printf("critical-path pex %.1f, depth %d, total work %.1f\n\n",
		g.AggregatePex(), g.Depth(), g.TotalExec())

	// Equal Flexibility for serial stages, DIV-1 for parallel branches:
	// the combination the paper recommends for serial-parallel tasks.
	assigner := repro.NewAssigner(repro.EQF, repro.DIV(1))
	plan, err := assigner.Plan(g, 0 /* arrival */, 12 /* deadline */)
	if err != nil {
		return err
	}
	fmt.Printf("Virtual deadlines under %s:\n", assigner.Name())
	for _, p := range plan {
		fmt.Printf("  %-8s release %5.2f  deadline %5.2f  slack %5.2f\n",
			p.Leaf.Name, p.Release, p.Deadline, p.Deadline-p.Release-p.Leaf.Pex)
	}

	// Contrast with Ultimate Deadline: every subtask gets the global
	// deadline and early stages hog all the slack.
	ud, err := repro.NewAssigner(repro.UD, repro.PUD).Plan(g, 0, 12)
	if err != nil {
		return err
	}
	fmt.Println("\nUnder UD every stage believes it has until t=12:")
	for _, p := range ud {
		fmt.Printf("  %-8s deadline %5.2f\n", p.Leaf.Name, p.Deadline)
	}

	// One baseline simulation run (Table 1) comparing the two, through
	// the Session run API.
	sess := repro.NewSession()
	defer sess.Close()
	fmt.Println("\nBaseline simulation (load 0.5, k=6, m=4 serial subtasks):")
	for _, ssp := range []string{"UD", "EQF"} {
		cfg := repro.BaselineConfig()
		cfg.SSP = ssp
		cfg.Horizon = 30000
		res, err := sess.Run(context.Background(), repro.Job{Config: cfg})
		if err != nil {
			return err
		}
		m := res.Runs[0]
		fmt.Printf("  SSP=%-4s  missed deadlines: local %5.2f%%  global %5.2f%%\n",
			ssp, m.MDLocal(), m.MDGlobal())
	}
	fmt.Println("\nEQF narrows the local/global gap, as in Fig. 2 of the paper.")
	return nil
}
