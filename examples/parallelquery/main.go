// Parallel query: the PSP problem on a scatter-gather workload.
//
// A federated query fans out to m replicas and completes only when every
// shard answers — exactly the paper's parallel global task T = [T1 || ...
// || Tm]. If the shard requests simply inherit the query deadline (UD),
// the slowest shard's queueing delay sinks the whole query: globals miss
// about three times as often as the replicas' own local work. DIV-x and
// GF fix this by promoting shard-request priority.
//
// This example runs the paper's PSP simulation dressed as the query
// system, then demonstrates one live scatter-gather on goroutine nodes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Scatter-gather queries over 6 replica nodes, 4 shards per query")
	fmt.Println("(PSP baseline: slack U[1.25,5.0], load 0.5, EDF at every replica)")
	fmt.Println()

	// One session runs all four strategies; after the first run the
	// workspace is warm, so the remaining runs re-create no per-node
	// setup objects.
	sess := repro.NewSession(repro.WithParallelism(1))
	defer sess.Close()
	fmt.Printf("%-8s %16s %16s\n", "strategy", "query miss (%)", "local miss (%)")
	for _, psp := range []string{"UD", "DIV-1", "DIV-2", "GF"} {
		cfg := repro.PSPBaselineConfig()
		cfg.PSP = psp
		cfg.Horizon = 40000
		res, err := sess.Run(context.Background(), repro.Job{Config: cfg})
		if err != nil {
			return err
		}
		m := res.Runs[0]
		fmt.Printf("%-8s %16.2f %16.2f\n", psp, m.MDGlobal(), m.MDLocal())
	}
	fmt.Println("\nUD: queries are second-class citizens. DIV-1 equalizes the classes;")
	fmt.Println("GF buys queries the most at a small cost to replica-local work.")

	// One live scatter-gather, to show the same API drives real
	// goroutines.
	nodes := make([]*repro.LiveNode, 4)
	for i := range nodes {
		nodes[i] = repro.NewLiveNode(fmt.Sprintf("replica%d", i))
	}
	defer func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}()
	rt, err := repro.NewLiveRuntime(nodes, repro.NewAssigner(repro.EQF, repro.DIV(1)))
	if err != nil {
		return err
	}
	rt.TimeScale = time.Millisecond

	g := repro.MustParseGraph("[shard0:8 || shard1:11 || shard2:9 || shard3:14]")
	for i, leaf := range g.Flatten() {
		leaf.NodeID = i
	}
	rep, err := rt.Execute(g, 40*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("\nLive scatter-gather (40ms budget): finished in %v, missed=%v\n",
		rep.Finished.Sub(rep.Deadline.Add(-40*time.Millisecond)).Round(time.Millisecond), rep.Missed)
	for _, s := range rep.Subtasks {
		fmt.Printf("  %-8s on %-9s deadline in %5dms, finished in %5dms\n",
			s.Name, s.Node,
			s.Deadline.Sub(s.Released).Milliseconds(),
			s.Finished.Sub(s.Released).Milliseconds())
	}
	return nil
}
