// Compatcheck builds against every deprecated free function of the
// pre-Session API and verifies each one still emits byte-identical
// results to its Session replacement. CI runs it as the API-compat job:
// if a facade change breaks a deprecated wrapper — its signature or its
// output — this program fails to compile or exits non-zero.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("compatcheck: every deprecated wrapper matches its Session replacement byte for byte")
}

func run() error {
	sess := repro.NewSession()
	defer sess.Close()
	ctx := context.Background()

	// Simulate == Session.Run (1 rep).
	cfg := repro.BaselineConfig()
	cfg.Horizon = 3000
	old, err := repro.Simulate(cfg)
	if err != nil {
		return err
	}
	res, err := sess.Run(ctx, repro.Job{Config: cfg})
	if err != nil {
		return err
	}
	if err := sameMetrics("Simulate", old, res.Runs[0]); err != nil {
		return err
	}

	// SimulateReplications(Parallel) == Session.Run (N reps).
	repOld, err := repro.SimulateReplicationsParallel(cfg, 3, 2)
	if err != nil {
		return err
	}
	repNew, err := sess.Run(ctx, repro.Job{Config: cfg, Reps: 3}, repro.WithParallelism(2))
	if err != nil {
		return err
	}
	if len(repOld.Runs) != len(repNew.Runs) {
		return fmt.Errorf("SimulateReplicationsParallel: %d runs vs %d", len(repOld.Runs), len(repNew.Runs))
	}
	for i := range repOld.Runs {
		if err := sameMetrics(fmt.Sprintf("SimulateReplicationsParallel[%d]", i),
			repOld.Runs[i], repNew.Runs[i]); err != nil {
			return err
		}
	}
	if repOld.LocalMD != repNew.LocalMD || repOld.GlobalMD != repNew.GlobalMD {
		return fmt.Errorf("SimulateReplicationsParallel: estimates diverged")
	}

	// RunScenario == Session.RunScenario, compared as CSV bytes.
	sc, err := repro.ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		return err
	}
	scOld, err := repro.RunScenario(cfg, sc, 3, 2)
	if err != nil {
		return err
	}
	scNew, err := sess.RunScenario(ctx, cfg, sc, 3, repro.WithParallelism(2))
	if err != nil {
		return err
	}
	oldCSV, err := seriesCSV(scOld)
	if err != nil {
		return err
	}
	newCSV, err := seriesCSV(scNew)
	if err != nil {
		return err
	}
	if oldCSV != newCSV {
		return fmt.Errorf("RunScenario: merged series CSV diverged from Session.RunScenario")
	}

	// RunExperiment == Session.Experiment, compared as rendered CSV.
	expOpts := repro.ExperimentOptions{Horizon: 1000, Reps: 2}
	expOld, err := repro.RunExperiment("fig2b", expOpts)
	if err != nil {
		return err
	}
	expNew, err := sess.Experiment(ctx, "fig2b", expOpts)
	if err != nil {
		return err
	}
	if repro.RenderCSV(expOld.Figure) != repro.RenderCSV(expNew.Figure) {
		return fmt.Errorf("RunExperiment: rendered CSV diverged from Session.Experiment")
	}
	return nil
}

func sameMetrics(label string, a, b *repro.SimMetrics) error {
	sig := func(m *repro.SimMetrics) string {
		return fmt.Sprintf("%d %d %d %d %v %v %v %v",
			m.LocalGenerated, m.LocalDone, m.GlobalGenerated, m.GlobalDone,
			m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(), m.GlobalResponse.Mean())
	}
	if sig(a) != sig(b) {
		return fmt.Errorf("%s: %s vs %s", label, sig(a), sig(b))
	}
	return nil
}

func seriesCSV(res *repro.ScenarioResult) (string, error) {
	var b strings.Builder
	if err := res.Series.WriteCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
