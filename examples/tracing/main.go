// Tracing: a deadline-miss post-mortem with the lifecycle event log.
//
// The trace recorder captures every submit/dispatch/complete/abort in a
// simulation run. This example runs the baseline under UD, finds a
// global task that missed its end-to-end deadline, and reconstructs
// where its time went — stage by stage, queue by queue — which is
// exactly the question an operator asks of a real system ("which hop
// ate the slack?"). Under UD it is almost always an early stage with a
// huge assigned deadline that sat behind local tasks.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := repro.BaselineConfig()
	cfg.SSP = "UD"
	cfg.Horizon = 2000
	rec := repro.NewTraceRecorder(0) // unbounded: short horizon

	// WithTrace attaches the recorder; a shared recorder forces the
	// sequential path, so the event order is deterministic.
	sess := repro.NewSession()
	defer sess.Close()
	if _, err := sess.Run(context.Background(), repro.Job{Config: cfg}, repro.WithTrace(rec)); err != nil {
		return err
	}
	events := rec.Events()
	fmt.Printf("trace: %d events over %.0f time units\n", len(events), cfg.Horizon)
	for kind, n := range rec.CountByKind() {
		fmt.Printf("  %-8v %6d\n", kind, n)
	}

	// Find the subtasks of a global task whose last stage finished past
	// a deadline: group completions by GlobalID and look for a big gap
	// between a stage's submit and dispatch.
	victim := findStarvedSubtask(events)
	if victim == 0 {
		fmt.Println("\nno starved global subtask in this window (try a longer horizon)")
		return nil
	}
	fmt.Printf("\npost-mortem of subtask %d (worst queueing delay):\n", victim)
	var submitted float64
	for _, e := range rec.TaskHistory(victim) {
		switch e.Kind {
		case repro.TraceSubmit:
			submitted = e.T
			fmt.Printf("  t=%8.2f  submitted at node %d (virtual deadline %.2f)\n", e.T, e.Node, e.Deadline)
		case repro.TraceDispatch:
			fmt.Printf("  t=%8.2f  started service after waiting %.2f\n", e.T, e.T-submitted)
		case repro.TraceComplete:
			late := ""
			if e.T > e.Deadline {
				late = fmt.Sprintf("  <- %.2f past its virtual deadline", e.T-e.Deadline)
			}
			fmt.Printf("  t=%8.2f  completed%s\n", e.T, late)
		}
	}
	fmt.Println("\nExport the full log for external analysis:")
	fmt.Println("  rec.WriteCSV(file)   ->  t,kind,task,global,stage,class,node,deadline")
	return rec.WriteCSV(discard{})
}

// findStarvedSubtask returns the global subtask with the largest
// submit-to-dispatch gap.
func findStarvedSubtask(events []repro.TraceEvent) uint64 {
	submits := make(map[uint64]float64)
	var (
		worst   uint64
		worstBy float64
	)
	for _, e := range events {
		if e.GlobalID == 0 {
			continue // local task
		}
		switch e.Kind {
		case repro.TraceSubmit:
			submits[e.TaskID] = e.T
		case repro.TraceDispatch:
			if wait := e.T - submits[e.TaskID]; wait > worstBy {
				worstBy = wait
				worst = e.TaskID
			}
		}
	}
	return worst
}

// discard is an io.Writer sink so the example exercises WriteCSV without
// cluttering the filesystem.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
