// Remote: TCP shard workers, result caching, and the query service.
//
// The example stands up everything the network layer offers inside one
// process: two WorkerServers on loopback ports, a NetBackend dialing
// both, a ResultCache wrapping the backend, and a QueryService streaming
// NDJSON over HTTP — then shows the property the whole stack is built
// around: every path produces byte-identical results, so the second
// (cached) service query returns the exact bytes of the first.
//
// Across real machines the worker half is one flag on the stock CLIs
// (`sdascn -serve-workers :9400` on each box, `-connect` on the
// coordinator) and the service is `sdaserve`.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two worker servers — stand-ins for remote machines.
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := repro.ListenWorkers("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		go srv.Serve()
		addrs = append(addrs, srv.Addr())
	}

	// A coordinator dialing both, with a result cache on top.
	backend, err := repro.NewNetBackend(repro.NetBackendOptions{Addrs: addrs})
	if err != nil {
		return err
	}
	defer backend.Close()
	cache := repro.NewResultCache(backend, 64<<20)

	cfg := repro.BaselineConfig()
	cfg.Horizon = 20000
	sc, err := repro.ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		return err
	}
	job := repro.Job{Config: cfg, Scenario: sc, Reps: 8}

	// Reference pass on the plain in-process pool.
	local := repro.NewSession()
	defer local.Close()
	ref, err := local.Run(context.Background(), job)
	if err != nil {
		return err
	}

	// Remote pass over TCP, then again from the cache.
	sess := repro.NewSessionWithBackend(cache)
	defer sess.Close()
	for pass, label := range []string{"TCP workers", "result cache"} {
		res, err := sess.Run(context.Background(), job)
		if err != nil {
			return err
		}
		match := "=="
		if res.LocalMD != ref.LocalMD || res.GlobalMD != ref.GlobalMD {
			match = "!=" // never happens: every transport is exact
		}
		fmt.Printf("pass %d (%s): MD_local %.2f%% ±%.2f %s pool\n",
			pass+1, label, res.LocalMD.Mean, res.LocalMD.HalfCI, match)
	}
	snap := sess.Snapshot()
	fmt.Printf("net: %d connections, %d frames received; cache: %d hits, %d misses\n",
		snap.Net.Connections, snap.Net.FramesRecv, snap.Cache.Hits, snap.Cache.Misses)

	// The same determinism over HTTP: the service streams NDJSON, and a
	// repeated query — now served from its cache — returns the same bytes.
	svc := repro.NewQueryService(repro.QueryServiceOptions{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	spec := `{"preset": "burst", "horizon": 20000, "seed": 1, "reps": 4}`
	var bodies []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(spec))
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		bodies = append(bodies, string(body))
	}
	fmt.Printf("service: query twice, byte-identical bodies: %v (%d NDJSON lines each)\n",
		bodies[0] == bodies[1], strings.Count(bodies[0], "\n"))
	return nil
}
