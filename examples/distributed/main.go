// Distributed: multi-process execution behind the Backend seam.
//
// The example runs the same burst-scenario job twice — once on the
// default in-process worker pool, once on a ProcBackend that fans
// sub-shards out across three worker processes — and shows that the
// merged results are bit-identical. The worker processes are this very
// binary re-executed with -shard-server, which hands stdin/stdout to
// repro.ServeShardWorker: that one flag is the whole worker contract,
// exactly how the sdasim/sdascn CLIs serve their own workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	shardServer := flag.Bool("shard-server", false,
		"serve as a shard-worker process on stdin/stdout (spawned by the coordinator)")
	flag.Parse()
	if *shardServer {
		if err := repro.ServeShardWorker(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := repro.BaselineConfig()
	cfg.Horizon = 20000
	sc, err := repro.ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		return err
	}
	job := repro.Job{Config: cfg, Scenario: sc, Reps: 8}

	// Reference pass: the in-process pool.
	local := repro.NewSession()
	defer local.Close()
	ref, err := local.Run(context.Background(), job)
	if err != nil {
		return err
	}

	// Distributed pass: three worker processes. An empty Command
	// re-executes the current binary with -shard-server appended, which
	// is why the flag handling in main exists.
	backend := repro.NewProcBackend(repro.ProcBackendOptions{Workers: 3})
	defer backend.Close()
	sess := repro.NewSessionWithBackend(backend)
	defer sess.Close()
	dist, err := sess.Run(context.Background(), job)
	if err != nil {
		return err
	}

	fmt.Printf("%d replications on 3 worker processes vs the in-process pool:\n", job.Reps)
	for i := range dist.Runs {
		match := "=="
		if dist.Runs[i].MDLocal() != ref.Runs[i].MDLocal() ||
			dist.Runs[i].MDGlobal() != ref.Runs[i].MDGlobal() {
			match = "!=" // never happens: the merge is seed-ordered and exact
		}
		fmt.Printf("  rep %d: MD_global %5.2f%% %s pool's %5.2f%%\n",
			i, dist.Runs[i].MDGlobal(), match, ref.Runs[i].MDGlobal())
	}
	fmt.Printf("merged: MD_local %.2f%% ±%.2f (pool %.2f%% ±%.2f) — byte-identical at any worker count\n",
		dist.LocalMD.Mean, dist.LocalMD.HalfCI, ref.LocalMD.Mean, ref.LocalMD.HalfCI)
	return nil
}
