package repro

import (
	"fmt"
	"testing"
)

// Event-queue determinism tests: every QueueKind must produce identical
// simulation results — the ladder queue and the auto-promotion path are
// pure performance substitutions for the reference binary heap.

// queueSignature collects every count and ratio a diverging pop order
// would disturb.
func queueSignature(m *SimMetrics) string {
	return fmt.Sprintf("lg=%d ld=%d la=%d gg=%d gd=%d ga=%d mdl=%v mdg=%v lr=%v gr=%v",
		m.LocalGenerated, m.LocalDone, m.LocalAborted,
		m.GlobalGenerated, m.GlobalDone, m.GlobalAborted,
		m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(), m.GlobalResponse.Mean())
}

// TestQueueKindsBitIdenticalLargeTopology runs a topology big enough
// that QueueAuto promotes mid-run (its setup alone schedules more than
// promoteThreshold arrival events) and requires identical metrics from
// the heap, the ladder, and the promoting engine, with pooling on and
// off.
func TestQueueKindsBitIdenticalLargeTopology(t *testing.T) {
	base := BaselineConfig()
	base.Nodes = 600
	base.Horizon = 600
	base.Load = 0.7
	base.SSP, base.PSP = "EQF", "DIV-1"

	for _, pooling := range []bool{true, false} {
		var want string
		for _, kind := range []EventQueueKind{EventQueueHeap, EventQueueLadder, EventQueueAuto} {
			cfg := base
			cfg.EventQueue = kind
			cfg.DisablePooling = !pooling
			m, err := Simulate(cfg)
			if err != nil {
				t.Fatalf("queue=%q pooling=%t: %v", kind, pooling, err)
			}
			sig := queueSignature(m)
			if want == "" {
				want = sig
				continue
			}
			if sig != want {
				t.Fatalf("queue=%q pooling=%t diverged:\n got %s\nwant %s", kind, pooling, sig, want)
			}
		}
	}
}

// TestQueueKindsBitIdenticalAbortPath covers the trickiest interaction:
// tardy aborts change which events exist downstream, so any pop-order
// difference between queue kinds would cascade visibly.
func TestQueueKindsBitIdenticalAbortPath(t *testing.T) {
	base := BaselineConfig()
	base.Horizon = 6000
	base.Load = 0.8
	base.TardyAbort = true
	base.SSP, base.PSP = "EQF", "DIV-1"

	var want string
	for _, kind := range []EventQueueKind{EventQueueHeap, EventQueueLadder} {
		cfg := base
		cfg.EventQueue = kind
		m, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("queue=%q: %v", kind, err)
		}
		sig := queueSignature(m)
		if want == "" {
			want = sig
			continue
		}
		if sig != want {
			t.Fatalf("queue=%q diverged on the abort path:\n got %s\nwant %s", kind, sig, want)
		}
	}
}

// TestQueueKindRejected checks the validation path for the config knob.
func TestQueueKindRejected(t *testing.T) {
	cfg := BaselineConfig()
	cfg.EventQueue = "btree"
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("Simulate accepted an unknown EventQueue kind")
	}
}
