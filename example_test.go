package repro_test

import (
	"fmt"

	"repro"
)

// ExampleAssigner_Plan statically decomposes an end-to-end deadline over
// a serial-parallel task the way the paper's process manager does
// dynamically.
func ExampleAssigner_Plan() {
	g := repro.MustParseGraph("[gather:1 [f1:1 || f2:1.5] decide:2]")
	a := repro.NewAssigner(repro.EQF, repro.DIV(1))
	plan, err := a.Plan(g, 0, 12)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range plan {
		fmt.Printf("%-7s release %.2f deadline %.2f\n", p.Leaf.Name, p.Release, p.Deadline)
	}
	// Output:
	// gather  release 0.00 deadline 2.67
	// f1      release 1.00 deadline 3.36
	// f2      release 1.00 deadline 3.36
	// decide  release 2.50 deadline 12.00
}

// ExampleSerialStrategyByName shows how the four SSP strategies split
// the same remaining budget differently for the first of three stages.
func ExampleSerialStrategyByName() {
	remaining := []float64{2, 3, 5} // pex of this stage and the two after it
	for _, name := range []string{"UD", "ED", "EQS", "EQF"} {
		s, err := repro.SerialStrategyByName(name)
		if err != nil {
			fmt.Println(err)
			return
		}
		// Stage released at t=10, global deadline 30 (slack 10).
		fmt.Printf("%-4s dl(T1) = %.2f\n", name, s.StageDeadline(10, 30, remaining))
	}
	// Output:
	// UD   dl(T1) = 30.00
	// ED   dl(T1) = 22.00
	// EQS  dl(T1) = 15.33
	// EQF  dl(T1) = 14.00
}

// ExampleParseGraph parses the compact serial-parallel notation.
func ExampleParseGraph() {
	g, err := repro.ParseGraph("[a:1 [b:2 || c:4] d:1]")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("leaves:", g.LeafCount())
	fmt.Println("critical-path pex:", g.AggregatePex())
	fmt.Println("depth:", g.Depth())
	// Output:
	// leaves: 4
	// critical-path pex: 6
	// depth: 3
}

// ExampleSimulate runs one deterministic replication of the paper's
// baseline model.
func ExampleSimulate() {
	cfg := repro.BaselineConfig()
	cfg.SSP = "EQF"
	cfg.Horizon = 10000
	cfg.Seed = 1
	m, err := repro.Simulate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("globals generated: %d\n", m.GlobalGenerated)
	fmt.Printf("missed (global) within a plausible band: %v\n", m.MDGlobal() > 20 && m.MDGlobal() < 40)
	// Output:
	// globals generated: 1964
	// missed (global) within a plausible band: true
}
