// Package runner provides a small worker pool for fanning independent,
// index-addressed simulation work units out across cores.
//
// The pool is built for deterministic batch work: callers hand Run a unit
// count and a function of the unit index, and write each unit's result
// into a preallocated slot for that index. Because every unit owns its
// inputs (in this repository, a per-replication RNG substream derived in
// internal/rng) and its output slot, results are bit-identical to the
// sequential path regardless of worker count or scheduling order — only
// wall-clock time changes.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes batches of independent work units on a bounded number
// of goroutines. The zero value is not useful; construct with New. A
// Runner is stateless between Run calls and safe for concurrent use.
type Runner struct {
	workers int
}

// New returns a Runner with the given parallelism. Non-positive values
// default to runtime.GOMAXPROCS(0); 1 yields the plain sequential path
// with no goroutines.
func New(parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: parallelism}
}

// Workers returns the resolved worker count.
func (r *Runner) Workers() int { return r.workers }

// Run executes fn(0), fn(1), ..., fn(n-1), each exactly once, using up to
// Workers goroutines, and blocks until all started units finish. fn must
// be safe for concurrent invocation with distinct indices and must not
// share mutable state across indices.
//
// On failure Run reports the recorded error with the lowest unit index,
// so a given (config, seed) batch yields the same error no matter how the
// units interleaved. Remaining undispatched units are skipped once any
// unit fails, exactly as the sequential loop would stop at its first
// error; units already in flight still run to completion.
func (r *Runner) Run(n int, fn func(i int) error) error {
	return r.RunWorkers(n, func(_, i int) error { return fn(i) })
}

// RunWorkers is Run with the executing worker's index (0 <= worker <
// Workers) passed alongside each unit index. A worker processes its units
// strictly sequentially, so per-worker state — a reusable simulation
// workspace, a scratch buffer — handed out by worker index needs no
// locking. Unit results must still not depend on which worker ran them.
func (r *Runner) RunWorkers(n int, fn func(worker, unit int) error) error {
	_, err := r.RunWorkersContext(context.Background(), n, fn)
	return err
}

// RunWorkersContext is RunWorkers bounded by ctx. Workers claim unit
// indices in ascending order and stop claiming once ctx is done; units
// already claimed run to completion (a unit is never interrupted
// mid-flight, so its result stays a pure function of its inputs). The
// completed units therefore always form the exact prefix [0, completed),
// which is what makes cancellation deterministic-safe for seed-ordered
// batches: every finished unit's result is identical to the uncancelled
// run's, and the only thing timing decides is how many there are.
//
// When ctx ends the run early, RunWorkersContext returns the prefix
// length alongside ctx's error; if every unit finished before the
// cancellation was observed it returns (n, nil). A unit error takes
// precedence over cancellation and keeps RunWorkers' semantics — the
// recorded error with the lowest unit index is returned and completed is
// 0, because an errored batch has no usable prefix.
func (r *Runner) RunWorkersContext(ctx context.Context, n int, fn func(worker, unit int) error) (completed int, err error) {
	if n <= 0 {
		return 0, nil
	}
	done := ctx.Done()
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return i, ctx.Err()
				default:
				}
			}
			if err := fn(0, i); err != nil {
				return 0, err
			}
		}
		return n, nil
	}

	var (
		next      atomic.Int64
		failed    atomic.Bool
		cancelled atomic.Bool
		wg        sync.WaitGroup

		mu       sync.Mutex
		firstIdx = -1
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				if done != nil {
					select {
					case <-done:
						cancelled.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					record(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	claimed := int(next.Load())
	if claimed >= n {
		// Every unit was claimed (and, with no error, completed): the
		// cancellation, if any, arrived too late to matter.
		return n, nil
	}
	if cancelled.Load() {
		return claimed, ctx.Err()
	}
	return claimed, nil
}
