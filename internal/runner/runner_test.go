package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewResolvesParallelism(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 7} {
		if got := New(p).Workers(); got != p {
			t.Errorf("New(%d).Workers() = %d", p, got)
		}
	}
}

func TestRunExecutesEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallel=%d", p), func(t *testing.T) {
			const n = 100
			counts := make([]atomic.Int32, n)
			if err := New(p).Run(n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Errorf("unit %d executed %d times, want 1", i, c)
				}
			}
		})
	}
}

func TestRunZeroAndNegativeUnits(t *testing.T) {
	called := false
	for _, n := range []int{0, -5} {
		if err := New(4).Run(n, func(int) error { called = true; return nil }); err != nil {
			t.Errorf("Run(%d) = %v, want nil", n, err)
		}
	}
	if called {
		t.Error("Run with n <= 0 invoked fn")
	}
}

func TestRunSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := New(1).Run(10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Errorf("sequential run executed %v, want to stop after index 3", ran)
	}
}

func TestRunParallelReportsLowestIndexError(t *testing.T) {
	// Make several units fail; the reported error must be the failing
	// unit with the lowest index among those that ran, no matter how the
	// goroutines interleave.
	for trial := 0; trial < 20; trial++ {
		err := New(8).Run(32, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("unit %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("Run = nil, want an error")
		}
		if got := err.Error(); got != "unit 1" {
			t.Fatalf("trial %d: Run = %q, want the lowest-index error \"unit 1\"", trial, got)
		}
	}
}

func TestRunStopsDispatchingAfterFailure(t *testing.T) {
	// The bail is best-effort (in-flight units finish; the failure flag
	// is checked per dispatch), so the assertion needs slack: each
	// healthy unit sleeps briefly, making it overwhelmingly likely the
	// failure is recorded long before the other worker could drain the
	// batch, even on a loaded machine.
	const units = 10000
	var executed atomic.Int32
	err := New(2).Run(units, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("Run = nil, want error")
	}
	if n := executed.Load(); n > units/2 {
		t.Errorf("executed %d of %d units after an immediate failure, expected early bail", n, units)
	}
}

// TestRunHammer drives many tiny units through pools of several sizes so
// `go test -race` can spot sharing bugs in the dispatch path.
func TestRunHammer(t *testing.T) {
	units, rounds := 5000, 20
	if testing.Short() {
		units, rounds = 500, 5
	}
	for round := 0; round < rounds; round++ {
		results := make([]int, units)
		if err := New(16).Run(units, func(i int) error {
			results[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("round %d: results[%d] = %d, want %d", round, i, r, i*i)
			}
		}
	}
}

// TestRunWorkersContextCancelPrefix pins the cancellation contract:
// completed units form the exact prefix [0, completed) — no holes, no
// unit past the prefix — because indices are claimed in order and
// claimed units run to completion.
func TestRunWorkersContextCancelPrefix(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	var ran [n]atomic.Bool
	var fired atomic.Int64
	completed, err := New(4).RunWorkersContext(ctx, n, func(_, i int) error {
		if fired.Add(1) == 20 {
			cancel() // cancel mid-batch, from inside a unit
		}
		time.Sleep(50 * time.Microsecond)
		ran[i].Store(true)
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if completed <= 0 || completed >= n {
		t.Fatalf("completed = %d, want a strict mid-batch prefix", completed)
	}
	for i := 0; i < completed; i++ {
		if !ran[i].Load() {
			t.Fatalf("unit %d inside the prefix did not run (completed = %d)", i, completed)
		}
	}
	for i := completed; i < n; i++ {
		if ran[i].Load() {
			t.Fatalf("unit %d beyond the prefix ran (completed = %d)", i, completed)
		}
	}
}

// TestRunWorkersContextCancelSequential covers the workers == 1 path.
func TestRunWorkersContextCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	completed, err := New(1).RunWorkersContext(ctx, 100, func(_, i int) error {
		ran++
		if i == 6 {
			cancel()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if completed != 7 || ran != 7 {
		t.Fatalf("completed = %d, ran = %d, want 7 (units 0..6)", completed, ran)
	}
}

// TestRunWorkersContextPreCancelled runs nothing at all.
func TestRunWorkersContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		completed, err := New(workers).RunWorkersContext(ctx, 50, func(_, i int) error {
			t.Fatalf("workers=%d: unit %d ran under a pre-cancelled context", workers, i)
			return nil
		})
		if completed != 0 || err != context.Canceled {
			t.Fatalf("workers=%d: (%d, %v), want (0, context.Canceled)", workers, completed, err)
		}
	}
}

// TestRunWorkersContextLateCancelIsComplete: cancellation observed only
// after every unit was claimed yields the full batch and a nil error.
func TestRunWorkersContextLateCancelIsComplete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed, err := New(8).RunWorkersContext(ctx, 64, func(_, i int) error { return nil })
	if completed != 64 || err != nil {
		t.Fatalf("(%d, %v), want (64, nil)", completed, err)
	}
}

// TestRunWorkersContextUnitErrorWins: a unit failure reports the
// lowest-index error exactly like RunWorkers, even when the context is
// also cancelled.
func TestRunWorkersContextUnitErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	completed, err := New(4).RunWorkersContext(ctx, 100, func(_, i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want the unit error", err)
	}
	if completed != 0 {
		t.Fatalf("completed = %d, want 0 on unit failure", completed)
	}
}
