// Package procmgr implements the process manager of the system model
// (paper section 3.2). The process manager receives newly created global
// tasks together with their control information (the serial-parallel
// precedence graph and the end-to-end deadline), assigns virtual
// deadlines to simple subtasks using an SDA strategy, submits them to
// their execution nodes, and enforces the precedence constraints: a
// serial stage is released only when its predecessor finishes, a parallel
// group completes only when all branches finish.
//
// Deadline assignment is dynamic: the deadline of serial stage i is
// computed at the instant stage i is released, so ar(Ti) reflects the
// actual completion time of stage i−1. This is what makes slack
// inheritance ("the rich get richer") and slack robbery ("the poor get
// poorer", section 4.2.2) observable.
package procmgr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/task"
)

// Instance is one in-flight (or finished) global task.
type Instance struct {
	// ID is the global task's unique id.
	ID uint64
	// Graph is the instance's serial-parallel structure with sampled
	// execution times and placements on the leaves.
	Graph *task.Graph
	// Arrival and Deadline are the end-to-end attributes ar(T), dl(T).
	Arrival  float64
	Deadline float64
	// Finish is the completion time of the last subtask, or the abort
	// time for aborted instances; zero while in flight.
	Finish float64
	// Aborted reports that a subtask was discarded by a node's tardy
	// policy, killing the whole instance.
	Aborted bool
	// StageMisses counts subtasks that finished after their assigned
	// virtual deadline.
	StageMisses int
	// StageCount counts subtasks that completed service.
	StageCount int
	// InheritedSlack accumulates, over serial releases, the amount by
	// which each stage finished before its virtual deadline (leftover
	// slack passed to the successor). Diagnostic for section 4.2.2.
	InheritedSlack float64
}

// Missed reports whether the completed instance missed its end-to-end
// deadline. Aborted instances count as missed.
func (in *Instance) Missed() bool {
	return in.Aborted || in.Finish > in.Deadline
}

// Manager routes global tasks through the system.
type Manager struct {
	eng      *sim.Engine
	nodes    []*node.Node
	assigner core.Assigner

	// onDone is called exactly once per instance, when it completes or
	// when it is killed by an abort.
	onDone func(*Instance)
	// nextSeq allocates scheduler FIFO sequence numbers shared with the
	// local-task generators.
	nextSeq func() uint64
	// nextTaskID allocates task ids.
	nextTaskID func() uint64

	// waiting maps an in-flight subtask id to its continuation.
	waiting map[uint64]pending

	inflight int
}

type pending struct {
	inst *Instance
	cont func(*task.Task)
}

// Config carries the manager's construction parameters.
type Config struct {
	Engine   *sim.Engine
	Nodes    []*node.Node
	Assigner core.Assigner
	// OnDone receives every instance exactly once, after completion or
	// abort. Required.
	OnDone func(*Instance)
	// NextSeq and NextTaskID are shared allocators (required) so that
	// subtasks and local tasks draw from one deterministic sequence.
	NextSeq    func() uint64
	NextTaskID func() uint64
}

// New returns a manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("procmgr: nil engine")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("procmgr: no nodes")
	}
	if cfg.OnDone == nil {
		return nil, fmt.Errorf("procmgr: nil OnDone")
	}
	if cfg.NextSeq == nil || cfg.NextTaskID == nil {
		return nil, fmt.Errorf("procmgr: nil allocators")
	}
	return &Manager{
		eng:        cfg.Engine,
		nodes:      cfg.Nodes,
		assigner:   cfg.Assigner,
		onDone:     cfg.OnDone,
		nextSeq:    cfg.NextSeq,
		nextTaskID: cfg.NextTaskID,
		waiting:    make(map[uint64]pending),
	}, nil
}

// InFlight returns the number of instances started but not yet finished
// or aborted.
func (m *Manager) InFlight() int { return m.inflight }

// Start admits a global task at the current simulation time. The
// instance's Graph must be validated, flattened, and carry sampled Exec,
// Pex and NodeID values on every leaf.
func (m *Manager) Start(inst *Instance) {
	m.inflight++
	m.activate(inst, inst.Graph, inst.Deadline, func() {
		if inst.Aborted {
			return
		}
		inst.Finish = m.eng.Now()
		m.inflight--
		m.onDone(inst)
	})
}

// activate submits graph node g with virtual deadline dl, calling done
// when g (and everything under it) finishes. Continuations check
// inst.Aborted so that an aborted instance never reports completion.
func (m *Manager) activate(inst *Instance, g *task.Graph, dl float64, done func()) {
	switch g.Kind {
	case task.KindSimple:
		m.submitLeaf(inst, g, dl, done)

	case task.KindSerial:
		children := g.Children
		var step func(i int)
		step = func(i int) {
			if inst.Aborted {
				return
			}
			if i == len(children) {
				done()
				return
			}
			stageDL := m.assigner.SerialStage(m.eng.Now(), dl, children[i:])
			m.activate(inst, children[i], stageDL, func() { step(i + 1) })
		}
		step(0)

	case task.KindParallel:
		remaining := len(g.Children)
		arrival := m.eng.Now()
		for i, child := range g.Children {
			branchDL := m.assigner.ParallelBranch(arrival, dl, g.Children, i)
			m.activate(inst, child, branchDL, func() {
				remaining--
				if remaining == 0 && !inst.Aborted {
					done()
				}
			})
		}

	default:
		// Graphs are validated before Start; this cannot happen in a
		// correct program.
		panic(fmt.Sprintf("procmgr: unknown graph kind %v", g.Kind))
	}
}

// submitLeaf creates the schedulable subtask for a leaf and sends it to
// its node.
func (m *Manager) submitLeaf(inst *Instance, leaf *task.Graph, dl float64, done func()) {
	t := &task.Task{
		ID:           m.nextTaskID(),
		Class:        task.Global,
		GlobalID:     inst.ID,
		Stage:        leaf.LeafIndex,
		Arrival:      m.eng.Now(),
		Deadline:     dl,
		FirmDeadline: inst.Deadline,
		Exec:         leaf.Exec,
		Pex:          leaf.Pex,
		Seq:          m.nextSeq(),
	}
	m.waiting[t.ID] = pending{inst: inst, cont: func(ct *task.Task) {
		inst.StageCount++
		if ct.Missed() {
			inst.StageMisses++
		} else {
			inst.InheritedSlack += ct.Deadline - ct.Finish
		}
		done()
	}}
	m.nodes[leaf.NodeID].Submit(t)
}

// Complete must be called by the system when a node finishes a Global
// subtask. Completions for aborted instances are swallowed (their
// already-queued siblings still occupy servers, which is realistic — the
// manager cannot retract work from an independent component).
func (m *Manager) Complete(t *task.Task) error {
	p, ok := m.waiting[t.ID]
	if !ok {
		return fmt.Errorf("procmgr: completion for unknown subtask %d", t.ID)
	}
	delete(m.waiting, t.ID)
	if p.inst.Aborted {
		return nil
	}
	p.cont(t)
	return nil
}

// Abort must be called by the system when a node's tardy policy discards
// a Global subtask. The first abort kills the whole instance: a global
// task whose subtask was dropped can never meet its end-to-end deadline.
func (m *Manager) Abort(t *task.Task) error {
	p, ok := m.waiting[t.ID]
	if !ok {
		return fmt.Errorf("procmgr: abort for unknown subtask %d", t.ID)
	}
	delete(m.waiting, t.ID)
	if p.inst.Aborted {
		return nil
	}
	p.inst.Aborted = true
	p.inst.Finish = m.eng.Now()
	m.inflight--
	m.onDone(p.inst)
	return nil
}
