// Package procmgr implements the process manager of the system model
// (paper section 3.2). The process manager receives newly created global
// tasks together with their control information (the serial-parallel
// precedence graph and the end-to-end deadline), assigns virtual
// deadlines to simple subtasks using an SDA strategy, submits them to
// their execution nodes, and enforces the precedence constraints: a
// serial stage is released only when its predecessor finishes, a parallel
// group completes only when all branches finish.
//
// Deadline assignment is dynamic: the deadline of serial stage i is
// computed at the instant stage i is released, so ar(Ti) reflects the
// actual completion time of stage i−1. This is what makes slack
// inheritance ("the rich get richer") and slack robbery ("the poor get
// poorer", section 4.2.2) observable.
package procmgr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/task"
)

// Instance is one in-flight (or finished) global task.
type Instance struct {
	// ID is the global task's unique id.
	ID uint64
	// Graph is the instance's serial-parallel structure with sampled
	// execution times and placements on the leaves.
	Graph *task.Graph
	// Arrival and Deadline are the end-to-end attributes ar(T), dl(T).
	Arrival  float64
	Deadline float64
	// Finish is the completion time of the last subtask, or the abort
	// time for aborted instances; zero while in flight.
	Finish float64
	// Aborted reports that a subtask was discarded by a node's tardy
	// policy, killing the whole instance.
	Aborted bool
	// StageMisses counts subtasks that finished after their assigned
	// virtual deadline.
	StageMisses int
	// StageCount counts subtasks that completed service.
	StageCount int
	// InheritedSlack accumulates, over serial releases, the amount by
	// which each stage finished before its virtual deadline (leftover
	// slack passed to the successor). Diagnostic for section 4.2.2.
	InheritedSlack float64

	// leafRefs counts subtasks submitted but not yet completed or
	// aborted at their nodes. An instance can only be recycled once it
	// is finished AND no node still holds one of its subtasks — an
	// aborted instance's already-queued siblings keep referencing it
	// until they drain.
	leafRefs int
	// finished marks that OnDone has been delivered.
	finished bool
}

// Missed reports whether the completed instance missed its end-to-end
// deadline. Aborted instances count as missed.
func (in *Instance) Missed() bool {
	return in.Aborted || in.Finish > in.Deadline
}

// Manager routes global tasks through the system.
type Manager struct {
	eng      *sim.Engine
	nodes    []*node.Node
	group    *node.Group
	assigner core.Assigner

	// onDone is called exactly once per instance, when it completes or
	// when it is killed by an abort.
	onDone func(*Instance)
	// nextSeq allocates scheduler FIFO sequence numbers shared with the
	// local-task generators.
	nextSeq func() uint64
	// nextTaskID allocates task ids.
	nextTaskID func() uint64

	// The pending tables map an in-flight subtask to the activation
	// frame its completion resumes. They are dense parallel slices
	// indexed by the subtask's Ref — a freelist-recycled handle stamped
	// on the task at submission — replacing the map the manager used to
	// key by task ID: lookup is two loads instead of a hash probe, and
	// the tables stop allocating once they reach the run's in-flight
	// high-water mark. pendID guards against stale or foreign tasks
	// (the entry is only valid while it carries the task's own ID).
	pendInst  []*Instance
	pendFrame []*frame
	pendID    []uint64
	pendFree  []int32

	// pool optionally recycles retired subtasks; nil allocates fresh
	// ones (the reference path pooling must reproduce bit-for-bit).
	pool *task.Pool
	// instFree recycles Instance shells once fully drained; only used
	// when pool is set, so DisablePooling yields the pure allocation
	// path end to end.
	instFree []*Instance
	// frameFree recycles activation frames, same gating as instFree.
	frameFree []*frame
	// instSlab and frameSlab are bump-allocation chunks fresh shells are
	// carved from when the free lists run dry (pooled runs only):
	// O(peak/mgrSlab) allocations instead of one per shell.
	instSlab  []Instance
	frameSlab []frame
	// graphPool receives retired instance graphs; nil drops them to the
	// garbage collector.
	graphPool *task.GraphPool
	// pexBuf is the scratch buffer for the assigner's aggregate pex
	// values, reused across every stage release of the run.
	pexBuf []float64

	inflight int
}

// frame is one live activation record: a serial group waiting to release
// its next stage, or a parallel group counting branches still running.
// Frames replace the per-stage continuation closures the manager used to
// allocate — precedence state lives in a pooled struct and completion
// walks the parent chain instead of invoking captured functions.
type frame struct {
	inst      *Instance
	g         *task.Graph
	parent    *frame // nil at the graph root
	dl        float64
	next      int // serial: index of the next child to release
	remaining int // parallel: branches still running
}

// Config carries the manager's construction parameters.
type Config struct {
	Engine *sim.Engine
	// Nodes is the system's node view. Optional when Group is set.
	Nodes []*node.Node
	// Group optionally routes submissions through the node group
	// directly (index-addressed, skipping the per-node handle view).
	// When set, Nodes may be nil.
	Group    *node.Group
	Assigner core.Assigner
	// OnDone receives every instance exactly once, after completion or
	// abort. Required.
	OnDone func(*Instance)
	// NextSeq and NextTaskID are shared allocators (required) so that
	// subtasks and local tasks draw from one deterministic sequence.
	NextSeq    func() uint64
	NextTaskID func() uint64
	// Pool optionally recycles subtasks (and Instance shells) within a
	// replication. Nil disables reuse; results are identical either way.
	Pool *task.Pool
	// GraphPool optionally receives retired instance graphs for reuse by
	// the workload generator. Only consulted when Pool is set.
	GraphPool *task.GraphPool
}

func (cfg *Config) validate() error {
	if cfg.Engine == nil {
		return fmt.Errorf("procmgr: nil engine")
	}
	if len(cfg.Nodes) == 0 && (cfg.Group == nil || cfg.Group.Len() == 0) {
		return fmt.Errorf("procmgr: no nodes")
	}
	if cfg.OnDone == nil {
		return fmt.Errorf("procmgr: nil OnDone")
	}
	if cfg.NextSeq == nil || cfg.NextTaskID == nil {
		return fmt.Errorf("procmgr: nil allocators")
	}
	return nil
}

// New returns a manager.
func New(cfg Config) (*Manager, error) {
	m := &Manager{}
	if err := m.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reconfigure rebinds the manager for a fresh replication in place,
// keeping the pending tables, free lists and scratch buffers at their
// working capacity. Any in-flight state of a previous run (instances
// cut off by the horizon) is dropped. A reconfigured manager behaves
// exactly like a freshly constructed one.
func (m *Manager) Reconfigure(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	m.eng, m.nodes, m.group = cfg.Engine, cfg.Nodes, cfg.Group
	m.assigner = cfg.Assigner
	m.onDone, m.nextSeq, m.nextTaskID = cfg.OnDone, cfg.NextSeq, cfg.NextTaskID
	m.pool, m.graphPool = cfg.Pool, cfg.GraphPool
	m.inflight = 0
	// Drop leftover pending entries (and their references) so the
	// tables restart empty at retained capacity.
	for i := range m.pendInst {
		m.pendInst[i] = nil
		m.pendFrame[i] = nil
		m.pendID[i] = 0
	}
	m.pendInst = m.pendInst[:0]
	m.pendFrame = m.pendFrame[:0]
	m.pendID = m.pendID[:0]
	m.pendFree = m.pendFree[:0]
	return nil
}

// NewInstance returns a zeroed Instance, recycled from the manager's free
// list when pooling is enabled. The caller fills it and hands it to
// Start; after OnDone the manager reclaims it once the last of its
// subtasks has drained, so callers must not retain instances beyond the
// OnDone callback.
func (m *Manager) NewInstance() *Instance {
	if n := len(m.instFree); n > 0 {
		inst := m.instFree[n-1]
		m.instFree[n-1] = nil
		m.instFree = m.instFree[:n-1]
		return inst
	}
	if m.pool != nil {
		if len(m.instSlab) == 0 {
			m.instSlab = make([]Instance, mgrSlab)
		}
		inst := &m.instSlab[0]
		m.instSlab = m.instSlab[1:]
		return inst
	}
	return &Instance{}
}

// mgrSlab is the number of Instance or frame shells carved per slab
// allocation on pooled runs.
const mgrSlab = 256

// maybeRecycle parks a fully drained, finished instance on the free list.
func (m *Manager) maybeRecycle(inst *Instance) {
	if m.pool == nil || !inst.finished || inst.leafRefs != 0 {
		return
	}
	// The instance is fully drained: no node, frame, or pending entry
	// references its graph, so its nodes can go back to the generator.
	m.graphPool.Release(inst.Graph)
	*inst = Instance{} // drop the graph reference and reset counters
	m.instFree = append(m.instFree, inst)
}

// newFrame returns an initialized activation frame, recycled when
// pooling is enabled.
func (m *Manager) newFrame(inst *Instance, g *task.Graph, parent *frame, dl float64) *frame {
	var f *frame
	if n := len(m.frameFree); n > 0 {
		f = m.frameFree[n-1]
		m.frameFree[n-1] = nil
		m.frameFree = m.frameFree[:n-1]
	} else if m.pool != nil {
		if len(m.frameSlab) == 0 {
			m.frameSlab = make([]frame, mgrSlab)
		}
		f = &m.frameSlab[0]
		m.frameSlab = m.frameSlab[1:]
	} else {
		f = &frame{}
	}
	*f = frame{inst: inst, g: g, parent: parent, dl: dl}
	return f
}

// releaseFrame recycles a finished frame. Frames of aborted instances
// are simply dropped (their completions are swallowed, so release is
// never reached) and reclaimed by the garbage collector.
func (m *Manager) releaseFrame(f *frame) {
	if m.pool == nil {
		return
	}
	*f = frame{}
	m.frameFree = append(m.frameFree, f)
}

// InFlight returns the number of instances started but not yet finished
// or aborted.
func (m *Manager) InFlight() int { return m.inflight }

// Start admits a global task at the current simulation time. The
// instance's Graph must be validated, flattened, and carry sampled Exec,
// Pex and NodeID values on every leaf.
func (m *Manager) Start(inst *Instance) {
	m.inflight++
	m.activate(inst, inst.Graph, inst.Deadline, nil)
}

// activate submits graph node g with virtual deadline dl inside the
// enclosing frame (nil when g is the whole graph). Completion propagates
// through childDone; aborted instances never reach it because their
// subtask completions are swallowed.
func (m *Manager) activate(inst *Instance, g *task.Graph, dl float64, parent *frame) {
	switch g.Kind {
	case task.KindSimple:
		m.submitLeaf(inst, g, dl, parent)

	case task.KindSerial:
		m.stepSerial(m.newFrame(inst, g, parent, dl))

	case task.KindParallel:
		f := m.newFrame(inst, g, parent, dl)
		f.remaining = len(g.Children)
		arrival := m.eng.Now()
		for i, child := range g.Children {
			var branchDL float64
			branchDL, m.pexBuf = m.assigner.ParallelBranchBuf(m.pexBuf, arrival, dl, g.Children, i)
			m.activate(inst, child, branchDL, f)
		}

	default:
		// Graphs are validated before Start; this cannot happen in a
		// correct program.
		panic(fmt.Sprintf("procmgr: unknown graph kind %v", g.Kind))
	}
}

// stepSerial releases the next stage of a serial frame, computing its
// virtual deadline at the instant of release (the paper's dynamic
// assignment), or finishes the group when no stages remain.
func (m *Manager) stepSerial(f *frame) {
	if f.next < len(f.g.Children) {
		i := f.next
		f.next++
		var stageDL float64
		stageDL, m.pexBuf = m.assigner.SerialStageBuf(m.pexBuf, m.eng.Now(), f.dl, f.g.Children[i:])
		m.activate(f.inst, f.g.Children[i], stageDL, f)
		return
	}
	m.groupDone(f)
}

// groupDone retires a finished frame and propagates completion upward.
func (m *Manager) groupDone(f *frame) {
	inst, parent := f.inst, f.parent
	m.releaseFrame(f)
	m.childDone(inst, parent)
}

// childDone records that one direct child of frame f finished. A nil
// frame means the whole graph finished: the instance completes.
func (m *Manager) childDone(inst *Instance, f *frame) {
	if f == nil {
		inst.Finish = m.eng.Now()
		m.inflight--
		inst.finished = true
		m.onDone(inst)
		return
	}
	switch f.g.Kind {
	case task.KindSerial:
		m.stepSerial(f)
	case task.KindParallel:
		f.remaining--
		if f.remaining == 0 {
			m.groupDone(f)
		}
	}
}

// takeRef pops a free pending slot or grows the tables by one.
func (m *Manager) takeRef() int32 {
	if n := len(m.pendFree); n > 0 {
		ref := m.pendFree[n-1]
		m.pendFree = m.pendFree[:n-1]
		return ref
	}
	m.pendInst = append(m.pendInst, nil)
	m.pendFrame = append(m.pendFrame, nil)
	m.pendID = append(m.pendID, 0)
	return int32(len(m.pendID) - 1)
}

// lookupRef resolves a subtask's pending slot, verifying the slot still
// belongs to this task.
func (m *Manager) lookupRef(t *task.Task) (int32, bool) {
	ref := t.Ref
	if ref < 0 || int(ref) >= len(m.pendID) || m.pendID[ref] != t.ID || m.pendInst[ref] == nil {
		return 0, false
	}
	return ref, true
}

// releaseRef clears a resolved pending slot and returns it to the free
// list.
func (m *Manager) releaseRef(ref int32) {
	m.pendInst[ref] = nil
	m.pendFrame[ref] = nil
	m.pendID[ref] = 0
	m.pendFree = append(m.pendFree, ref)
}

// submitLeaf creates the schedulable subtask for a leaf and sends it to
// its node.
func (m *Manager) submitLeaf(inst *Instance, leaf *task.Graph, dl float64, parent *frame) {
	t := m.pool.Get()
	t.ID = m.nextTaskID()
	t.Class = task.Global
	t.GlobalID = inst.ID
	t.Stage = leaf.LeafIndex
	t.Arrival = m.eng.Now()
	t.Deadline = dl
	t.FirmDeadline = inst.Deadline
	t.Exec = leaf.Exec
	t.Pex = leaf.Pex
	t.Seq = m.nextSeq()
	inst.leafRefs++
	ref := m.takeRef()
	m.pendInst[ref] = inst
	m.pendFrame[ref] = parent
	m.pendID[ref] = t.ID
	t.Ref = ref
	if m.group != nil {
		m.group.Submit(leaf.NodeID, t)
		return
	}
	m.nodes[leaf.NodeID].Submit(t)
}

// Complete must be called by the system when a node finishes a Global
// subtask. Completions for aborted instances are swallowed (their
// already-queued siblings still occupy servers, which is realistic — the
// manager cannot retract work from an independent component). The subtask
// is recycled after its continuation runs; callers must not hold on to it.
func (m *Manager) Complete(t *task.Task) error {
	ref, ok := m.lookupRef(t)
	if !ok {
		return fmt.Errorf("procmgr: completion for unknown subtask %d", t.ID)
	}
	inst, f := m.pendInst[ref], m.pendFrame[ref]
	m.releaseRef(ref)
	inst.leafRefs--
	if !inst.Aborted {
		inst.StageCount++
		if t.Missed() {
			inst.StageMisses++
		} else {
			inst.InheritedSlack += t.Deadline - t.Finish
		}
		m.childDone(inst, f)
	}
	m.pool.Put(t)
	m.maybeRecycle(inst)
	return nil
}

// Abort must be called by the system when a node's tardy policy discards
// a Global subtask. The first abort kills the whole instance: a global
// task whose subtask was dropped can never meet its end-to-end deadline.
// The subtask is recycled on return; callers must not hold on to it.
func (m *Manager) Abort(t *task.Task) error {
	ref, ok := m.lookupRef(t)
	if !ok {
		return fmt.Errorf("procmgr: abort for unknown subtask %d", t.ID)
	}
	inst := m.pendInst[ref]
	m.releaseRef(ref)
	inst.leafRefs--
	if !inst.Aborted {
		inst.Aborted = true
		inst.Finish = m.eng.Now()
		m.inflight--
		inst.finished = true
		m.onDone(inst)
	}
	m.pool.Put(t)
	m.maybeRecycle(inst)
	return nil
}
