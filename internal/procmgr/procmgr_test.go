package procmgr

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// harness wires an engine, k nodes and a manager the way the system
// package does, recording all completions.
type harness struct {
	eng       *sim.Engine
	nodes     []*node.Node
	mgr       *Manager
	done      []*Instance
	completed []*task.Task
	seq       uint64
	id        uint64
}

func newHarness(t *testing.T, k int, assigner core.Assigner, policy node.TardyPolicy) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	route := func(tk *task.Task) {
		h.completed = append(h.completed, tk)
		if tk.Class == task.Global {
			if err := h.mgr.Complete(tk); err != nil {
				t.Fatalf("Complete: %v", err)
			}
		}
	}
	abort := func(tk *task.Task) {
		if tk.Class == task.Global {
			if err := h.mgr.Abort(tk); err != nil {
				t.Fatalf("Abort: %v", err)
			}
		}
	}
	for i := 0; i < k; i++ {
		q, err := sched.New(sched.EDF, false)
		if err != nil {
			t.Fatal(err)
		}
		n, err := node.New(node.Config{
			ID: i, Engine: h.eng, Queue: q, Policy: policy,
			OnDone: route, OnAbort: abort,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, n)
	}
	mgr, err := New(Config{
		Engine:   h.eng,
		Nodes:    h.nodes,
		Assigner: assigner,
		OnDone:   func(in *Instance) { h.done = append(h.done, in) },
		NextSeq:  func() uint64 { h.seq++; return h.seq },
		NextTaskID: func() uint64 {
			h.id++
			return h.id
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.mgr = mgr
	return h
}

// startInstance validates/flattens the graph and starts it at time 0.
func (h *harness) startInstance(t *testing.T, g *task.Graph, deadline float64) *Instance {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Flatten()
	inst := &Instance{ID: 1, Graph: g, Arrival: h.eng.Now(), Deadline: deadline}
	h.mgr.Start(inst)
	return inst
}

func place(g *task.Graph, nodes ...int) *task.Graph {
	leaves := g.Flatten()
	for i, leaf := range leaves {
		leaf.NodeID = nodes[i%len(nodes)]
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	okNode := func() []*node.Node {
		q, _ := sched.New(sched.EDF, false)
		n, _ := node.New(node.Config{Engine: eng, Queue: q, OnDone: func(*task.Task) {}})
		return []*node.Node{n}
	}()
	seq := func() uint64 { return 0 }
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil engine", cfg: Config{Nodes: okNode, OnDone: func(*Instance) {}, NextSeq: seq, NextTaskID: seq}},
		{name: "no nodes", cfg: Config{Engine: eng, OnDone: func(*Instance) {}, NextSeq: seq, NextTaskID: seq}},
		{name: "nil OnDone", cfg: Config{Engine: eng, Nodes: okNode, NextSeq: seq, NextTaskID: seq}},
		{name: "nil allocators", cfg: Config{Engine: eng, Nodes: okNode, OnDone: func(*Instance) {}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("New succeeded, want error")
			}
		})
	}
}

func TestSerialChainPrecedence(t *testing.T) {
	h := newHarness(t, 3, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}), node.NoAbort)
	g := place(task.MustParse("[a:1 b:2 c:3]"), 0, 1, 2)
	inst := h.startInstance(t, g, 20)
	h.eng.RunAll()

	if len(h.done) != 1 {
		t.Fatalf("instances done = %d, want 1", len(h.done))
	}
	if inst.Finish != 6 {
		t.Errorf("Finish = %v, want 6 (1+2+3 on idle nodes)", inst.Finish)
	}
	if inst.Missed() {
		t.Error("instance with slack 14 reported missed")
	}
	// Precedence: each stage starts exactly when its predecessor ends
	// (nodes are idle).
	if len(h.completed) != 3 {
		t.Fatalf("completed %d subtasks, want 3", len(h.completed))
	}
	starts := []float64{h.completed[0].Start, h.completed[1].Start, h.completed[2].Start}
	want := []float64{0, 1, 3}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("stage %d start = %v, want %v", i, starts[i], want[i])
		}
	}
	if inst.StageCount != 3 || inst.StageMisses != 0 {
		t.Errorf("StageCount=%d StageMisses=%d", inst.StageCount, inst.StageMisses)
	}
}

func TestDynamicEQFDeadlines(t *testing.T) {
	// On idle nodes each stage finishes exactly at release+exec, so the
	// dynamic EQF deadlines can be computed by hand.
	h := newHarness(t, 3, core.NewAssigner(core.EqualFlexibility{}, core.ParallelUltimate{}), node.NoAbort)
	g := place(task.MustParse("[a:2 b:3 c:5]"), 0, 1, 2)
	h.startInstance(t, g, 30) // slack 20
	h.eng.RunAll()

	// Stage a: now=0, rem=[2 3 5], slack=20, dl=0+2+20*(2/10)=6.
	// a finishes at 2 (4 slack units inherited).
	// Stage b: now=2, rem=[3 5], slack=30-2-8=20, dl=2+3+20*(3/8)=12.5.
	// b finishes at 5.
	// Stage c: now=5, rem=[5], slack=20, dl=30.
	wantDeadlines := []float64{6, 12.5, 30}
	for i, tk := range h.completed {
		if math.Abs(tk.Deadline-wantDeadlines[i]) > 1e-9 {
			t.Errorf("stage %d deadline = %v, want %v", i, tk.Deadline, wantDeadlines[i])
		}
	}
	// Inherited slack: stage a leaves 6-2=4, stage b leaves 12.5-5=7.5,
	// stage c leaves 30-10=20.
	if got, want := h.done[0].InheritedSlack, 4.0+7.5+20; math.Abs(got-want) > 1e-9 {
		t.Errorf("InheritedSlack = %v, want %v", got, want)
	}
}

func TestParallelJoin(t *testing.T) {
	h := newHarness(t, 3, core.NewAssigner(core.UltimateDeadline{}, core.Div{X: 1}), node.NoAbort)
	g := place(task.MustParse("[a:1 || b:5 || c:2]"), 0, 1, 2)
	inst := h.startInstance(t, g, 20)
	h.eng.RunAll()

	if inst.Finish != 5 {
		t.Errorf("Finish = %v, want 5 (longest branch)", inst.Finish)
	}
	// All branches released simultaneously at t=0.
	for _, tk := range h.completed {
		if tk.Arrival != 0 {
			t.Errorf("branch arrival = %v, want 0", tk.Arrival)
		}
		// DIV-1 with n=3: dl = 0 + 20/3.
		if math.Abs(tk.Deadline-20.0/3) > 1e-9 {
			t.Errorf("branch deadline = %v, want %v", tk.Deadline, 20.0/3)
		}
	}
}

func TestNestedGraphCompletion(t *testing.T) {
	h := newHarness(t, 4, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}), node.NoAbort)
	g := place(task.MustParse("[a:1 [b:2 || c:4] d:1]"), 0, 1, 2, 3)
	inst := h.startInstance(t, g, 10)
	h.eng.RunAll()

	if len(h.done) != 1 {
		t.Fatalf("done = %d, want 1", len(h.done))
	}
	// Critical path on idle nodes: 1 + max(2,4) + 1 = 6.
	if inst.Finish != 6 {
		t.Errorf("Finish = %v, want 6", inst.Finish)
	}
	if h.mgr.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", h.mgr.InFlight())
	}
}

func TestStageMissCounting(t *testing.T) {
	// Zero end-to-end slack and a busy node force a virtual-deadline
	// miss on the delayed stage.
	h := newHarness(t, 1, core.NewAssigner(core.EqualFlexibility{}, core.ParallelUltimate{}), node.NoAbort)
	// Occupy the single node first so the global subtask waits.
	blocker := &task.Task{ID: 999, Class: task.Local, Exec: 4, Deadline: 100, Seq: 0}
	h.nodes[0].Submit(blocker)
	g := place(task.MustParse("[a:1 b:1]"), 0)
	inst := h.startInstance(t, g, 2) // dl = ar + ex: zero slack
	h.eng.RunAll()

	if !inst.Missed() {
		t.Fatal("instance with zero slack behind a blocker should miss")
	}
	if inst.StageMisses == 0 {
		t.Error("expected at least one stage miss")
	}
	if inst.StageCount != 2 {
		t.Errorf("StageCount = %d, want 2", inst.StageCount)
	}
}

func TestAbortKillsInstanceOnce(t *testing.T) {
	h := newHarness(t, 2, core.NewAssigner(core.UltimateDeadline{}, core.ParallelUltimate{}), node.AbortAtDispatch)
	// Block both nodes long enough that both branches expire.
	h.nodes[0].Submit(&task.Task{ID: 900, Class: task.Local, Exec: 50, Deadline: 1000, Seq: 0})
	h.nodes[1].Submit(&task.Task{ID: 901, Class: task.Local, Exec: 50, Deadline: 1000, Seq: 0})
	g := place(task.MustParse("[a:1 || b:1]"), 0, 1)
	inst := h.startInstance(t, g, 5) // both branches doomed
	h.eng.RunAll()

	if !inst.Aborted || !inst.Missed() {
		t.Fatal("instance should be aborted and missed")
	}
	if len(h.done) != 1 {
		t.Fatalf("OnDone fired %d times, want exactly 1", len(h.done))
	}
	if h.mgr.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", h.mgr.InFlight())
	}
}

func TestAbortedSerialDoesNotContinue(t *testing.T) {
	h := newHarness(t, 2, core.NewAssigner(core.EffectiveDeadline{}, core.ParallelUltimate{}), node.AbortAtDispatch)
	h.nodes[0].Submit(&task.Task{ID: 900, Class: task.Local, Exec: 50, Deadline: 1000, Seq: 0})
	g := place(task.MustParse("[a:1 b:1]"), 0, 1)
	inst := h.startInstance(t, g, 3) // stage a expires behind the blocker
	h.eng.RunAll()

	if !inst.Aborted {
		t.Fatal("instance should be aborted")
	}
	// Stage b must never have been submitted: only the blocker completed.
	for _, tk := range h.completed {
		if tk.Class == task.Global {
			t.Errorf("global subtask %d completed after abort", tk.ID)
		}
	}
}

func TestCompleteUnknownTask(t *testing.T) {
	h := newHarness(t, 1, core.NewAssigner(nil, nil), node.NoAbort)
	if err := h.mgr.Complete(&task.Task{ID: 12345}); err == nil {
		t.Error("Complete(unknown) should error")
	}
	if err := h.mgr.Abort(&task.Task{ID: 12345}); err == nil {
		t.Error("Abort(unknown) should error")
	}
}

func TestSimultaneousGlobals(t *testing.T) {
	// Two instances interleave on shared nodes without crosstalk.
	h := newHarness(t, 2, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}), node.NoAbort)
	g1 := place(task.MustParse("[a:1 b:1]"), 0, 1)
	g2 := place(task.MustParse("[x:2 || y:2]"), 0, 1)
	i1 := &Instance{ID: 1, Graph: g1, Arrival: 0, Deadline: 50}
	i2 := &Instance{ID: 2, Graph: g2, Arrival: 0, Deadline: 50}
	h.mgr.Start(i1)
	h.mgr.Start(i2)
	if h.mgr.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", h.mgr.InFlight())
	}
	h.eng.RunAll()
	if len(h.done) != 2 {
		t.Fatalf("done = %d, want 2", len(h.done))
	}
	if h.mgr.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", h.mgr.InFlight())
	}
}
