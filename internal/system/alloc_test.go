package system

import (
	"testing"
)

// TestWorkspaceWarmReplicationAllocs64 extends the PR-3 allocation
// guards to a large topology: on a warm workspace, a 64-node
// replication's allocations are per-run setup only (one source, stream,
// and callback registration per node — a small constant times the node
// count), not warm-up growth. Queues, the node group, the engine's
// event queue, and the task pools are all reused, and fresh queues are
// pre-sized from Config.Nodes, so the budget below has no term for
// growing buffers; if a reuse path is lost this fails long before any
// throughput benchmark notices.
func TestWorkspaceWarmReplicationAllocs64(t *testing.T) {
	cfg := Baseline()
	cfg.Nodes = 64
	cfg.Horizon = 200
	ws := NewWorkspace()
	if _, err := RunWith(cfg, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunWith(cfg, ws); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(cfg.Nodes*14 + 256)
	if allocs > budget {
		t.Fatalf("warm 64-node replication allocated %v times, budget %v (per-node setup only)", allocs, budget)
	}
}

// TestWorkspaceWarmReplicationScalesWithNodes pins the per-node setup
// coefficient: doubling the node count must not much more than double a
// warm replication's allocations (anything superlinear means a buffer
// is being regrown per run).
func TestWorkspaceWarmReplicationScalesWithNodes(t *testing.T) {
	measure := func(nodes int) float64 {
		cfg := Baseline()
		cfg.Nodes = nodes
		cfg.Horizon = 200
		ws := NewWorkspace()
		if _, err := RunWith(cfg, ws); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := RunWith(cfg, ws); err != nil {
				t.Fatal(err)
			}
		})
	}
	a32, a64 := measure(32), measure(64)
	if a64 > 2.5*a32+64 {
		t.Fatalf("allocations grew superlinearly with nodes: 32 -> %v, 64 -> %v", a32, a64)
	}
}
