package system

import (
	"testing"
)

// TestWorkspaceWarmReplicationAllocs64 extends the PR-3 allocation
// guards to a large topology: on a warm workspace, a 64-node
// replication re-creates no per-node setup objects at all — workload
// sources, their RNG streams and submit closures are reconfigured in
// place (PR 5), and queues, the node group, the engine's event queue,
// and the task pools were already reused. The remaining budget covers
// run-constant setup (manager, metrics, per-run slices) plus the
// process manager's waiting map, whose growth tracks the generated task
// population; the PR-4 budget was Nodes*14+256 (~800 observed at 64
// nodes), the warm-source path measures ~350. If any reuse path is
// lost this fails long before a throughput benchmark notices.
func TestWorkspaceWarmReplicationAllocs64(t *testing.T) {
	cfg := Baseline()
	cfg.Nodes = 64
	cfg.Horizon = 200
	ws := NewWorkspace()
	if _, err := RunWith(cfg, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunWith(cfg, ws); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(cfg.Nodes*6 + 128)
	if allocs > budget {
		t.Fatalf("warm 64-node replication allocated %v times, budget %v (warm sources lost?)", allocs, budget)
	}
}

// TestWorkspaceWarmReplicationAllocs65536 pins the extreme-scale
// memory-layout contract: at 65536 nodes a warm workspace re-runs a
// replication without recreating any per-node object — the fleet's
// stream table, the ready-queue bank arena, the node group's hot array,
// and the engine's slot table are all reused in place. Measured warm
// cost is ~380 allocations (run-constant setup: manager, metrics,
// per-run bookkeeping), independent of the node count. The budget is
// deliberately far below one allocation per node, so any change that
// reintroduces a per-node-per-run object (65536+ allocations) fails by
// 30x, while run-constant drift has ~5x headroom.
func TestWorkspaceWarmReplicationAllocs65536(t *testing.T) {
	if testing.Short() {
		t.Skip("65536-node replication in -short mode")
	}
	cfg := Baseline()
	cfg.Nodes = 65536
	cfg.Horizon = 5
	ws := NewWorkspace()
	if _, err := RunWith(cfg, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := RunWith(cfg, ws); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(cfg.Nodes/32 + 512)
	if allocs > budget {
		t.Fatalf("warm 65536-node replication allocated %v times, budget %v (per-node reuse lost?)", allocs, budget)
	}
}

// TestWorkspaceWarmReplicationScalesWithNodes pins the per-node setup
// coefficient: doubling the node count must not much more than double a
// warm replication's allocations (anything superlinear means a buffer
// is being regrown per run).
func TestWorkspaceWarmReplicationScalesWithNodes(t *testing.T) {
	measure := func(nodes int) float64 {
		cfg := Baseline()
		cfg.Nodes = nodes
		cfg.Horizon = 200
		ws := NewWorkspace()
		if _, err := RunWith(cfg, ws); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := RunWith(cfg, ws); err != nil {
				t.Fatal(err)
			}
		})
	}
	a32, a64 := measure(32), measure(64)
	if a64 > 2.5*a32+64 {
		t.Fatalf("allocations grew superlinearly with nodes: 32 -> %v, 64 -> %v", a32, a64)
	}
}
