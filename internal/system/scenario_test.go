package system

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// burstScenario is the acceptance scenario of the subsystem: a 3x
// arrival-rate burst covering 10% of the run.
func burstScenario(t *testing.T, horizon float64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Preset("burst", horizon)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestBurstRaisesMissRate is the ISSUE acceptance test: for the UD-UD
// baseline, the miss rate during the 3x burst window must exceed the
// steady-state rate before it. Lateness and queue length move the same
// way; the series shows the transient the whole-run ratios average away.
func TestBurstRaisesMissRate(t *testing.T) {
	cfg := Baseline() // UD-UD
	cfg.Horizon = 40000
	cfg.Scenario = burstScenario(t, cfg.Horizon)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Series == nil {
		t.Fatal("scenario run produced no series")
	}
	// Burst occupies [0.45h, 0.55h); compare against the post-warmup
	// steady state before it. Skip the first 10% as warmup transient.
	h := cfg.Horizon
	steadyLocal, steadyGlobal := m.Series.MissRateIn(0.1*h, 0.45*h)
	// Congestion drains after the burst ends, so measure slightly past
	// the arrival-rate window too.
	burstLocal, burstGlobal := m.Series.MissRateIn(0.45*h, 0.60*h)
	if burstLocal <= steadyLocal {
		t.Errorf("local miss rate in burst = %v, steady = %v; want burst higher", burstLocal, steadyLocal)
	}
	if burstGlobal <= steadyGlobal {
		t.Errorf("global miss rate in burst = %v, steady = %v; want burst higher", burstGlobal, steadyGlobal)
	}
}

// TestScenarioRunDeterminism pins the pure-function contract with a
// scenario attached (phases + events + demand override).
func TestScenarioRunDeterminism(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 5000
	sc, err := scenario.Preset("storm", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ca, cb strings.Builder
	if err := a.Series.WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.Series.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if ca.String() != cb.String() {
		t.Error("same config produced different series CSV")
	}
	if a.LocalGenerated != b.LocalGenerated || a.GlobalGenerated != b.GlobalGenerated {
		t.Errorf("generation counts diverge: %d/%d vs %d/%d",
			a.LocalGenerated, a.GlobalGenerated, b.LocalGenerated, b.GlobalGenerated)
	}
}

// TestOutageBuildsQueueAndRecovers drives a single-node outage and
// checks the sampled queue length spikes during the fault, then drains.
func TestOutageBuildsQueueAndRecovers(t *testing.T) {
	cfg := Baseline()
	cfg.Nodes = 2
	cfg.FracLocal = 1 // locals only: per-node effect is easy to read
	cfg.Horizon = 20000
	sc, err := scenario.New(scenario.Spec{
		Interval: 500,
		Events: []scenario.EventSpec{
			{Kind: scenario.KindOutage, Node: 0, At: 8000, Duration: 4000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(t0, t1 float64) float64 {
		sum, n := 0.0, 0
		for i := 0; i < m.Series.Len(); i++ {
			if s := m.Series.WindowStart(i); s >= t0 && s < t1 {
				sum += m.Series.Window(i).QueueLen.Mean()
				n++
			}
		}
		return sum / float64(n)
	}
	before := mean(2000, 8000)
	during := mean(8000, 12000)
	after := mean(14000, 20000)
	if during <= before*2 {
		t.Errorf("queue during outage = %v, before = %v; want a clear spike", during, before)
	}
	if after >= during/2 {
		t.Errorf("queue after recovery = %v, during = %v; want it to drain", after, during)
	}
	// Note utilization is roughly conserved: the backlog built during
	// the outage is served after it, so total busy time barely moves —
	// the transient is visible only in the windowed series.
}

// TestAbortedGlobalsBinByAbortTime pins the series binning of discarded
// instances: procmgr stamps Finish at abort time, so aborts land in the
// window they happened in (not window 0), and contribute no lateness
// sample.
func TestAbortedGlobalsBinByAbortTime(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 4000
	cfg.Load = 0.8
	cfg.TardyAbort = true
	sc, err := scenario.New(scenario.Spec{Interval: 400})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalAborted == 0 {
		t.Fatal("load 0.8 with TardyAbort produced no aborts; test needs them")
	}
	var total, lateness int64
	for i := 0; i < m.Series.Len(); i++ {
		total += m.Series.Window(i).GlobalMiss.Total()
		lateness += m.Series.Window(i).Lateness.N()
	}
	if total != m.GlobalDone {
		t.Errorf("series global observations = %d, want every done instance once (%d)", total, m.GlobalDone)
	}
	if lateness != m.GlobalDone-m.GlobalAborted {
		t.Errorf("lateness samples = %d, want completions only (%d)", lateness, m.GlobalDone-m.GlobalAborted)
	}
	if w0 := m.Series.Window(0).GlobalMiss.Total(); w0 > total/2 {
		t.Errorf("window 0 holds %d of %d global observations; aborts are binned at t=0", w0, total)
	}
}

// TestEventSpecOrderIsIrrelevant pins event scheduling order: for
// back-to-back events on one node (recovery at t, next fault starting
// at t), the run must not depend on the order events are listed in the
// spec. Unsorted scheduling would let the earlier event's recovery fire
// after the later event's same-instant start and cancel the fault.
func TestEventSpecOrderIsIrrelevant(t *testing.T) {
	events := []scenario.EventSpec{
		{Kind: scenario.KindSlowdown, Node: 0, At: 10000, Duration: 5000, Factor: 0.01},
		{Kind: scenario.KindOutage, Node: 0, At: 5000, Duration: 5000},
	}
	reversed := []scenario.EventSpec{events[1], events[0]}
	csvFor := func(evs []scenario.EventSpec) string {
		t.Helper()
		cfg := Baseline()
		cfg.Nodes = 2
		cfg.FracLocal = 1
		cfg.Horizon = 20000
		sc, err := scenario.New(scenario.Spec{Interval: 500, Events: evs})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scenario = sc
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := m.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	unsorted, sorted := csvFor(events), csvFor(reversed)
	if unsorted != sorted {
		t.Error("event spec order changed the run: a same-instant recovery/start pair resolved differently")
	}
	// And the fault actually bites: the 1%-speed slowdown keeps the
	// queue elevated at t in [12000, 15000) versus the pre-fault steady
	// state — distinguishable from recovery-cancelled, where the
	// outage backlog has mostly drained by then.
	sc, err := scenario.New(scenario.Spec{Interval: 500, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline()
	cfg.Nodes = 2
	cfg.FracLocal = 1
	cfg.Horizon = 20000
	cfg.Scenario = sc
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(t0, t1 float64) float64 {
		max := 0.0
		for i := 0; i < m.Series.Len(); i++ {
			if s := m.Series.WindowStart(i); s >= t0 && s < t1 {
				if q := m.Series.Window(i).QueueLen.Mean(); q > max {
					max = q
				}
			}
		}
		return max
	}
	// Queue at the end of the slowdown must exceed the queue at the end
	// of the outage: work kept accumulating through both faults.
	if end, mid := peak(14000, 15000), peak(9000, 10000); end <= mid {
		t.Errorf("queue at slowdown end = %v, at outage end = %v; want continued growth", end, mid)
	}
}

// TestScenarioValidation covers the config-level checks.
func TestScenarioValidation(t *testing.T) {
	cfg := Baseline()
	sc, err := scenario.New(scenario.Spec{
		Events: []scenario.EventSpec{
			{Kind: scenario.KindOutage, Node: 17, At: 10, Duration: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	if err := cfg.Validate(); err == nil {
		t.Error("config accepted an event beyond the node count")
	}
}

// TestScenarioDemandOverrideChangesDistribution checks the deterministic
// demand plumbs through to generated work: with DeterministicDemand all
// local tasks have the same execution time.
func TestScenarioDemandOverrideChangesDistribution(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 2000
	cfg.FracLocal = 1
	sc, err := scenario.New(scenario.Spec{
		Demand: &scenario.DemandSpec{Dist: "deterministic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every completion took exactly 1/µ_local of service: the response
	// minimum is an arrival into an idle node, i.e. 1/µ_local up to
	// simulation-clock rounding. Exponential demands would put mass far
	// below it.
	if got, want := m.LocalResponse.Min(), 1/cfg.MuLocal; math.Abs(got-want) > 1e-9 {
		t.Errorf("min local response = %v, want %v", got, want)
	}
}
