package system

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestRunReplicationsDeterministicAcrossParallelism is the core guarantee
// of the parallel experiment engine: for a fixed base seed, fanning the
// replications out across workers yields bit-identical results to the
// sequential path, because each replication derives every RNG substream
// from its own seed and owns its result slot.
func TestRunReplicationsDeterministicAcrossParallelism(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 4000
	cfg.Seed = 11

	const reps = 6
	seq, err := RunReplicationsParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{2, 8} {
		par, err := RunReplicationsParallel(cfg, reps, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Runs) != len(seq.Runs) {
			t.Fatalf("parallelism %d: %d runs, want %d", parallelism, len(par.Runs), len(seq.Runs))
		}
		for i := range seq.Runs {
			if !reflect.DeepEqual(seq.Runs[i], par.Runs[i]) {
				t.Errorf("parallelism %d: replication %d metrics diverge:\nseq: %+v\npar: %+v",
					parallelism, i, seq.Runs[i], par.Runs[i])
			}
		}
		if seq.LocalMD != par.LocalMD || seq.GlobalMD != par.GlobalMD {
			t.Errorf("parallelism %d: aggregates diverge: seq local %+v global %+v, par local %+v global %+v",
				parallelism, seq.LocalMD, seq.GlobalMD, par.LocalMD, par.GlobalMD)
		}
	}
}

// TestRunReplicationsMatchesLegacySequentialLoop pins RunReplications to
// the exact behaviour of the pre-runner implementation: seeds Seed,
// Seed+1, ..., aggregated in seed order.
func TestRunReplicationsMatchesLegacySequentialLoop(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 3000
	cfg.Seed = 5

	const reps = 3
	got, err := RunReplications(cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		want, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got.Runs[i]) {
			t.Errorf("replication %d differs from a direct Run with seed %d", i, c.Seed)
		}
	}
}

func TestRunReplicationsRejectsBadReps(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 1000
	for _, reps := range []int{0, -1} {
		if _, err := RunReplicationsParallel(cfg, reps, 4); err == nil {
			t.Errorf("reps = %d accepted", reps)
		}
	}
}

func TestRunReplicationsParallelPropagatesError(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 1000
	cfg.Nodes = 0 // invalid: every replication fails Validate
	if _, err := RunReplicationsParallel(cfg, 8, 4); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunReplicationsTraceForcesSequential: a shared trace recorder is
// cross-replication mutable state, so tracing must take the sequential
// path (and still record from all replications).
func TestRunReplicationsTraceForcesSequential(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 1500
	rec := trace.NewRecorder(0)
	cfg.Trace = rec
	if _, err := RunReplicationsParallel(cfg, 3, 8); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("trace recorder captured no events across replications")
	}
}

// TestRunReplicationsHammer stresses the fan-out with many tiny
// replications so `go test -race ./internal/system` exercises the
// engine, workload sources and metrics under real concurrency.
func TestRunReplicationsHammer(t *testing.T) {
	reps, rounds := 48, 4
	if testing.Short() {
		reps, rounds = 12, 2
	}
	cfg := Baseline()
	cfg.Horizon = 300
	cfg.Warmup = 50
	for round := 0; round < rounds; round++ {
		rep, err := RunReplicationsParallel(cfg, reps, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Runs) != reps {
			t.Fatalf("round %d: %d runs, want %d", round, len(rep.Runs), reps)
		}
		for i, m := range rep.Runs {
			if m == nil {
				t.Fatalf("round %d: replication %d missing", round, i)
			}
			if m.LocalGenerated == 0 {
				t.Errorf("round %d: replication %d generated no local tasks", round, i)
			}
		}
	}
}
