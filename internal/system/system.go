package system

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/procmgr"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Workspace carries the reusable state of a simulation replication: the
// engine (event queue and slot arrays), the task free list, the node
// group (one contiguous array of per-node server state), the ready-queue
// bank (one arena for every node's queue), the process manager's pending
// tables, and the workload sources themselves — held as contiguous
// slices of values, one local source per node plus the global source,
// with their RNG streams reseeded and the sources reconfigured in place
// each run. Reusing one workspace across the sequential replications of
// a runner worker lets every run after the first start at its working
// capacity instead of re-growing from zero, and pays no per-node setup
// allocations. A Workspace is single-threaded — one per worker — and
// results are bit-identical with or without one.
//
// Every run goes through a workspace: Run and DisablePooling simply use
// a fresh one (with the task/graph pools disabled for DisablePooling),
// so there is exactly one code path to keep deterministic.
type Workspace struct {
	eng      *sim.Engine
	engKind  sim.QueueKind // kind eng was created with
	pool     *task.Pool
	graphs   *task.GraphPool
	group    *node.Group
	bank     *sched.Bank
	mgr      *procmgr.Manager
	stageCap int // observed stage-index breadth, to pre-size Metrics

	// Warm per-run setup. The stable callbacks below never capture
	// run-local variables: they indirect through env, which RunWith
	// repoints at the current run's state, so one set of closures serves
	// every replication — including the single submit callback shared by
	// all local sources, which routes on the task's own NodeID.
	env        runEnv
	nextID     func() uint64
	nextSeq    func() uint64
	onDone     func(*task.Task)
	onAbort    func(*task.Task)
	onGlobal   func(workload.Spec)
	onInstDone func(*procmgr.Instance)
	submit     func(*task.Task)

	fleet     *workload.LocalFleet
	localHash []uint64 // cached rng.StreamHash("local-<i>")
	gapHash   []uint64 // cached rng.StreamHash("local-<i>-gap")
	global    workload.GlobalSource
	globalRng rng.Source
	globalGap rng.Source  // split-layout gap substream for the global source
	srcEng    *sim.Engine // engine the warm sources are registered on
}

// NewWorkspace returns an empty workspace; the first run populates it.
func NewWorkspace() *Workspace { return &Workspace{} }

// globalStreamHash and globalGapHash are the global source's stream
// hashes, hoisted so warm runs reseed without re-hashing the labels.
var (
	globalStreamHash = rng.StreamHash("global")
	globalGapHash    = rng.StreamHash("global-gap")
)

// runEnv is the per-run mutable state behind a workspace's stable
// callbacks: the metrics, manager, and node group of the current
// replication, plus the run-scoped counters.
type runEnv struct {
	metrics *Metrics
	mgr     *procmgr.Manager
	group   *node.Group
	pool    *task.Pool
	warmup  float64
	seq     uint64
	taskID  uint64
	instID  uint64
}

func (env *runEnv) nextSeqFn() uint64 { env.seq++; return env.seq }
func (env *runEnv) nextIDFn() uint64  { env.taskID++; return env.taskID }

// taskDone is the node-group completion callback shared by every run
// that uses this env.
func (env *runEnv) taskDone(t *task.Task) {
	if t.Class == task.Global {
		if t.Arrival >= env.warmup {
			// Stage metrics use the subtask's own release time.
			env.metrics.StageMiss.Observe(t.Missed())
			env.metrics.observeStage(t.Stage, t.Missed(), t.Deadline-t.Arrival-t.Pex)
		}
		// The manager recycles the subtask; t is dead past this call.
		if err := env.mgr.Complete(t); err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		return
	}
	env.metrics.LocalDone++
	if t.Arrival >= env.warmup {
		env.metrics.LocalMiss.Observe(t.Missed())
		env.metrics.LocalResponse.Add(t.Finish - t.Arrival)
	}
	if env.metrics.Series != nil {
		env.metrics.Series.ObserveLocal(t.Finish, t.Missed())
	}
	env.pool.Put(t)
}

// taskAbort is the node-group abort callback shared by every run that
// uses this env.
func (env *runEnv) taskAbort(t *task.Task) {
	if t.Class == task.Global {
		// The manager recycles the subtask; t is dead past this call.
		if err := env.mgr.Abort(t); err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		return
	}
	// An aborted local task is a missed deadline by definition.
	env.metrics.LocalAborted++
	env.metrics.LocalDone++
	if t.Arrival >= env.warmup {
		env.metrics.LocalMiss.Observe(true)
	}
	if env.metrics.Series != nil {
		env.metrics.Series.ObserveLocal(t.Finish, true)
	}
	env.pool.Put(t)
}

// globalSpec wraps a sampled global task into a manager instance.
func (env *runEnv) globalSpec(sp workload.Spec) {
	env.instID++
	env.metrics.GlobalGenerated++
	inst := env.mgr.NewInstance()
	inst.ID = env.instID
	inst.Graph = sp.Graph
	inst.Arrival = sp.Arrival
	inst.Deadline = sp.Deadline
	env.mgr.Start(inst)
}

// instanceDone records one finished global instance.
func (env *runEnv) instanceDone(inst *procmgr.Instance) {
	m := env.metrics
	m.GlobalDone++
	if inst.Aborted {
		m.GlobalAborted++
	}
	if m.Series != nil {
		if inst.Aborted {
			// Binned by abort time; a discarded instance has no
			// meaningful lateness.
			m.Series.ObserveGlobalAbort(inst.Finish)
		} else {
			m.Series.ObserveGlobal(inst.Finish, inst.Missed(), inst.Finish-inst.Deadline)
		}
	}
	if inst.Arrival < env.warmup {
		return
	}
	m.GlobalMiss.Observe(inst.Missed())
	if !inst.Aborted {
		m.GlobalResponse.Add(inst.Finish - inst.Arrival)
		if inst.Missed() {
			m.GlobalTardiness.Add(inst.Finish - inst.Deadline)
		}
		m.InheritedSlack.Add(inst.InheritedSlack)
	}
}

// bankQueueDepth is the per-node ready-queue capacity the bank's arena
// pre-allocates. Typical occupancy at the paper's loads is a handful of
// tasks; nodes that burst past it grow their own lane without touching
// the arena.
const bankQueueDepth = 8

// Run executes one simulation replication and returns its metrics. It is
// deterministic: equal configs (including Seed) produce identical
// metrics.
func Run(cfg Config) (*Metrics, error) {
	return RunWith(cfg, nil)
}

// RunWith is Run reusing the given workspace's buffers and pools (nil
// runs on a fresh single-use workspace). cfg.DisablePooling ignores the
// caller's workspace and disables task/graph recycling, which is the
// reference allocation path the pooled one is tested against.
func RunWith(cfg Config, ws *Workspace) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rates, err := cfg.DeriveRates()
	if err != nil {
		return nil, err
	}
	serial, err := core.SerialByName(cfg.SSP)
	if err != nil {
		return nil, err
	}
	parallel, err := core.ParallelByName(cfg.PSP)
	if err != nil {
		return nil, err
	}
	queueKind, err := sim.ParseQueueKind(string(cfg.EventQueue))
	if err != nil {
		return nil, err
	}

	if ws == nil || cfg.DisablePooling {
		ws = NewWorkspace()
	}
	if ws.eng == nil || ws.engKind != queueKind {
		ws.eng = sim.NewWithQueue(queueKind)
		ws.engKind = queueKind
	} else {
		ws.eng.Reset()
	}
	eng := ws.eng
	if ws.pool == nil && !cfg.DisablePooling {
		ws.pool = &task.Pool{}
		ws.graphs = &task.GraphPool{}
	}
	pool, graphs := ws.pool, ws.graphs

	metrics := &Metrics{}
	if ws.stageCap == 0 && cfg.M > 0 {
		// Seed the stage-accumulator breadth from the configured subtask
		// count so even the first replication pre-sizes its metrics.
		ws.stageCap = cfg.M
	}
	if ws.stageCap > 0 {
		metrics.StageMissByIndex = make([]stats.Ratio, 0, ws.stageCap)
		metrics.StageSlackByIndex = make([]stats.Welford, 0, ws.stageCap)
	}
	if cfg.Scenario != nil {
		metrics.Series = scenario.NewSeries(cfg.Scenario.Interval(cfg.Horizon), cfg.Horizon)
	}

	// env carries the run's mutable state; the stable callbacks routed
	// through it are created once per workspace and reused every run.
	env := &ws.env
	*env = runEnv{}
	env.metrics, env.pool, env.warmup = metrics, pool, cfg.warmup()

	if ws.nextSeq == nil {
		ws.nextSeq, ws.nextID = env.nextSeqFn, env.nextIDFn
		ws.onDone, ws.onAbort = env.taskDone, env.taskAbort
		ws.onGlobal = env.globalSpec
		ws.onInstDone = env.instanceDone
		// One submit callback serves every local source: the task's own
		// NodeID routes it, so setup allocates no per-node closures.
		ws.submit = func(t *task.Task) {
			env.metrics.LocalGenerated++
			env.group.Submit(t.NodeID, t)
		}
	}
	nextSeq, nextID := ws.nextSeq, ws.nextID

	var observer node.Observer
	if cfg.Trace != nil {
		rec := cfg.Trace
		kinds := map[node.ObserverEvent]trace.Kind{
			node.ObserveSubmit:   trace.Submit,
			node.ObserveDispatch: trace.Dispatch,
			node.ObservePreempt:  trace.Preempt,
			node.ObserveComplete: trace.Complete,
			node.ObserveAbort:    trace.Abort,
		}
		observer = func(ev node.ObserverEvent, now float64, t *task.Task) {
			rec.Record(trace.FromTask(kinds[ev], now, t))
		}
	}

	globalsFirst := core.NeedsClassPriority(parallel)
	// Ready queues live in one bank-wide arena; Configure resets it in
	// place when the shape matches the previous run.
	if ws.bank == nil {
		ws.bank = sched.NewBank()
	}
	if err := ws.bank.Configure(cfg.Nodes, cfg.Scheduler, globalsFirst, bankQueueDepth); err != nil {
		return nil, err
	}
	// All per-node server state lives in one contiguous group, reused
	// across a workspace's replications.
	if ws.group == nil {
		ws.group = &node.Group{}
	}
	group := ws.group
	if err := group.Configure(node.GroupConfig{
		Engine:     eng,
		Bank:       ws.bank,
		Policy:     cfg.tardyPolicy(),
		Preemptive: cfg.Preemptive,
		OnDone:     ws.onDone,
		OnAbort:    ws.onAbort,
		Observer:   observer,
	}); err != nil {
		return nil, err
	}
	nodes := group.Nodes()
	env.group = group

	mcfg := procmgr.Config{
		Engine:     eng,
		Group:      group,
		Assigner:   core.NewAssigner(serial, parallel),
		OnDone:     ws.onInstDone,
		NextSeq:    nextSeq,
		NextTaskID: nextID,
		Pool:       pool,
		GraphPool:  graphs,
	}
	if ws.mgr == nil {
		ws.mgr, err = procmgr.New(mcfg)
	} else {
		err = ws.mgr.Reconfigure(mcfg)
	}
	if err != nil {
		return nil, err
	}
	mgr := ws.mgr
	env.mgr = mgr

	// The warm path reuses the workspace's local-stream fleet and RNG
	// streams; (re)bind them when the node count or the engine changed
	// (a fresh engine invalidates the sources' callback bindings for
	// good — re-registration per run is handled inside Configure and
	// Reconfigure, which must see the same engine object). All per-node
	// stream state lives in the fleet's contiguous tables: setup touches
	// one allocation per table, not one per node.
	if ws.fleet == nil {
		ws.fleet = workload.NewLocalFleet(eng)
	}
	if ws.srcEng != eng {
		ws.srcEng = eng
		ws.fleet.Init(eng)
		ws.global.Init(eng)
	}
	if len(ws.localHash) != cfg.Nodes {
		ws.localHash = make([]uint64, cfg.Nodes)
		for i := range ws.localHash {
			ws.localHash[i] = rng.StreamHashParts("local-", uint64(i), "")
		}
	}
	split := cfg.RNGLayout == RNGSplit
	if split && len(ws.gapHash) != cfg.Nodes {
		ws.gapHash = make([]uint64, cfg.Nodes)
		for i := range ws.gapHash {
			ws.gapHash[i] = rng.StreamHashParts("local-", uint64(i), "-gap")
		}
	}

	// Local streams: one fleet, one substream per node. Rate multipliers
	// skew per-node load while preserving the total.
	if err := ws.fleet.Configure(cfg.Nodes, workload.FleetParams{
		MeanExec:  1 / cfg.MuLocal,
		SlackMin:  cfg.SlackMin,
		SlackMax:  cfg.SlackMax,
		Pex:       workload.PexModel{RelErr: cfg.PexRelErr},
		Demand:    cfg.scenarioDemand(),
		Mod:       cfg.scenarioMod(),
		SplitGaps: split,
		Pool:      pool,
	}, nextID, nextSeq, ws.submit); err != nil {
		return nil, err
	}
	multipliers := cfg.LocalRateMultipliers
	var multSum float64
	if multipliers != nil {
		for _, m := range multipliers {
			multSum += m
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		rate := rates.LocalPerNode
		if multipliers != nil {
			rate = rates.LocalPerNode * multipliers[i] * float64(cfg.Nodes) / multSum
		}
		if err := ws.fleet.SeedNode(i, rate, cfg.Seed, ws.localHash[i]); err != nil {
			return nil, err
		}
		if split {
			ws.fleet.SeedNodeGap(i, cfg.Seed, ws.gapHash[i])
		}
	}
	ws.fleet.Start()

	// Global stream.
	if rates.Global > 0 {
		params := workload.GlobalParams{
			Rate:          rates.Global,
			Shape:         cfg.shape(),
			SlackMin:      cfg.SlackMin,
			SlackMax:      cfg.SlackMax,
			RelFlex:       cfg.RelFlex,
			MeanLocalExec: 1 / cfg.MuLocal,
			Mod:           cfg.scenarioMod(),
			GraphPool:     graphs,
		}
		ws.globalRng.ReseedStream(cfg.Seed, globalStreamHash)
		if split {
			ws.globalGap.ReseedStream(cfg.Seed, globalGapHash)
			params.Gap = &ws.globalGap
		}
		if err := ws.global.Reconfigure(&ws.globalRng, cfg.Nodes, params, ws.onGlobal); err != nil {
			return nil, err
		}
		ws.global.Start()
	}

	if cfg.Scenario != nil {
		scheduleScenario(eng, cfg, nodes, metrics.Series)
	}

	eng.Run(cfg.Horizon)

	// Fold the run's engine and per-node counters into the metrics in
	// one pass, off the hot path: the engine and nodes counted on their
	// own plain fields during the run.
	es := eng.Stats()
	me := &metrics.Engine
	me.EventsScheduled = es.Scheduled
	me.EventsFired = es.Fired
	me.EventsCancelled = es.Cancelled
	me.QueuePromotions = es.Promotions
	me.PendingHWM = es.PendingHWM
	metrics.Utilization = make([]float64, cfg.Nodes)
	for i, n := range nodes {
		metrics.Utilization[i] = n.BusyTime() / cfg.Horizon
		me.TasksSubmitted += uint64(n.Submitted())
		me.TasksCompleted += uint64(n.Served())
		me.TasksAborted += uint64(n.Aborted())
		me.Preemptions += uint64(n.Preemptions())
		if h := uint64(n.ReadyQueueHWM()); h > me.ReadyHWM {
			me.ReadyHWM = h
		}
	}
	metrics.LocalInFlight = metrics.LocalGenerated - metrics.LocalDone
	metrics.GlobalInFlight = int64(mgr.InFlight())
	if len(metrics.StageMissByIndex) > ws.stageCap {
		ws.stageCap = len(metrics.StageMissByIndex)
	}
	return metrics, nil
}

// Replication aggregates one miss-ratio series across seeds.
type Replication struct {
	// Runs holds the per-replication metrics in seed order.
	Runs []*Metrics
	// LocalMD and GlobalMD are replication-level estimates of the miss
	// percentages.
	LocalMD  stats.Estimate
	GlobalMD stats.Estimate
}

// RunReplications executes reps independent runs with seeds Seed,
// Seed+1, ... and aggregates the class miss percentages with Student-t
// confidence intervals (the paper runs two replications per data point).
// Replications fan out across all cores; see RunReplicationsParallel.
func RunReplications(cfg Config, reps int) (*Replication, error) {
	return RunReplicationsParallel(cfg, reps, 0)
}

// RunReplicationsParallel is RunReplications with an explicit worker
// bound: parallelism <= 0 uses GOMAXPROCS, 1 forces the sequential path.
// Each replication owns its seed substream (internal/rng derives every
// stream from the replication's own Seed), so results are bit-identical
// across parallelism levels. A shared cfg.Trace recorder is the one piece
// of cross-replication mutable state, so tracing forces parallelism 1.
func RunReplicationsParallel(cfg Config, reps, parallelism int) (*Replication, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("system: reps = %d, want > 0", reps)
	}
	if cfg.Trace != nil {
		parallelism = 1
	}
	runs := make([]*Metrics, reps)
	run := runner.New(parallelism)
	// Each worker owns one reusable workspace: after its first
	// replication the engine heap, task free list, and ready queues are
	// already at working size, so subsequent replications on that worker
	// allocate almost nothing.
	workspaces := make([]*Workspace, run.Workers())
	err := run.RunWorkers(reps, func(worker, i int) error {
		ws := workspaces[worker]
		if ws == nil {
			ws = NewWorkspace()
			workspaces[worker] = ws
		}
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := RunWith(c, ws)
		if err != nil {
			return err
		}
		runs[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Replication{Runs: runs}
	local := make([]float64, reps)
	global := make([]float64, reps)
	for i, m := range runs {
		local[i] = m.MDLocal()
		global[i] = m.MDGlobal()
	}
	out.LocalMD = stats.MeanCI(local)
	out.GlobalMD = stats.MeanCI(global)
	return out, nil
}
