package system

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/procmgr"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Workspace carries the reusable state of a simulation replication: the
// engine (event queue and slot arrays), the task free list, the node
// group (one contiguous array of per-node server state), and the
// per-node ready queues. Reusing one workspace across the sequential
// replications of a runner worker lets every run after the first start
// at its working capacity instead of re-growing from zero. A Workspace
// is single-threaded — one per worker — and results are bit-identical
// with or without one.
type Workspace struct {
	eng      *sim.Engine
	engKind  sim.QueueKind // kind eng was created with
	pool     *task.Pool
	graphs   *task.GraphPool
	group    *node.Group
	queues   []sched.Queue
	queueKey string
	stageCap int // observed stage-index breadth, to pre-size Metrics
}

// NewWorkspace returns an empty workspace; the first run populates it.
func NewWorkspace() *Workspace { return &Workspace{} }

// initialQueueDepth is the per-node ready-queue capacity pre-allocated
// for fresh queues. Typical occupancy at the paper's loads is a handful
// of tasks; pre-sizing turns the append-growth ladder into one
// allocation per queue.
const initialQueueDepth = 16

// Run executes one simulation replication and returns its metrics. It is
// deterministic: equal configs (including Seed) produce identical
// metrics.
func Run(cfg Config) (*Metrics, error) {
	return RunWith(cfg, nil)
}

// RunWith is Run reusing the given workspace's buffers and pools (nil
// behaves like Run). cfg.DisablePooling ignores the workspace entirely
// and takes the pure allocation path.
func RunWith(cfg Config, ws *Workspace) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rates, err := cfg.DeriveRates()
	if err != nil {
		return nil, err
	}
	serial, err := core.SerialByName(cfg.SSP)
	if err != nil {
		return nil, err
	}
	parallel, err := core.ParallelByName(cfg.PSP)
	if err != nil {
		return nil, err
	}

	if cfg.DisablePooling {
		ws = nil
	}
	queueKind, err := sim.ParseQueueKind(string(cfg.EventQueue))
	if err != nil {
		return nil, err
	}
	var (
		eng    *sim.Engine
		pool   *task.Pool
		graphs *task.GraphPool
	)
	if ws != nil {
		if ws.eng == nil || ws.engKind != queueKind {
			ws.eng = sim.NewWithQueue(queueKind)
			ws.engKind = queueKind
		} else {
			ws.eng.Reset()
		}
		if ws.pool == nil {
			ws.pool = &task.Pool{}
			ws.graphs = &task.GraphPool{}
		}
		eng, pool, graphs = ws.eng, ws.pool, ws.graphs
	} else {
		eng = sim.NewWithQueue(queueKind)
		if !cfg.DisablePooling {
			pool = &task.Pool{}
			graphs = &task.GraphPool{}
		}
	}

	var (
		metrics = &Metrics{}
		warmup  = cfg.warmup()
		seq     uint64
		taskID  uint64
		nextSeq = func() uint64 { seq++; return seq }
		nextID  = func() uint64 { taskID++; return taskID }
	)
	if ws != nil && ws.stageCap == 0 && cfg.M > 0 {
		// Seed the stage-accumulator breadth from the configured subtask
		// count so even the first replication pre-sizes its metrics.
		ws.stageCap = cfg.M
	}
	if ws != nil && ws.stageCap > 0 {
		metrics.StageMissByIndex = make([]stats.Ratio, 0, ws.stageCap)
		metrics.StageSlackByIndex = make([]stats.Welford, 0, ws.stageCap)
	}
	if cfg.Scenario != nil {
		metrics.Series = scenario.NewSeries(cfg.Scenario.Interval(cfg.Horizon), cfg.Horizon)
	}

	// The manager is created after the nodes but node callbacks need
	// it; declare first and close over the variable.
	var mgr *procmgr.Manager

	onTaskDone := func(t *task.Task) {
		if t.Class == task.Global {
			if t.Arrival >= warmup {
				// Stage metrics use the subtask's own release time.
				metrics.StageMiss.Observe(t.Missed())
				metrics.observeStage(t.Stage, t.Missed(), t.Deadline-t.Arrival-t.Pex)
			}
			// The manager recycles the subtask; t is dead past this call.
			if err := mgr.Complete(t); err != nil {
				panic(fmt.Sprintf("system: %v", err))
			}
			return
		}
		metrics.LocalDone++
		if t.Arrival >= warmup {
			metrics.LocalMiss.Observe(t.Missed())
			metrics.LocalResponse.Add(t.Finish - t.Arrival)
		}
		if metrics.Series != nil {
			metrics.Series.ObserveLocal(t.Finish, t.Missed())
		}
		pool.Put(t)
	}
	onTaskAbort := func(t *task.Task) {
		if t.Class == task.Global {
			// The manager recycles the subtask; t is dead past this call.
			if err := mgr.Abort(t); err != nil {
				panic(fmt.Sprintf("system: %v", err))
			}
			return
		}
		// An aborted local task is a missed deadline by definition.
		metrics.LocalAborted++
		metrics.LocalDone++
		if t.Arrival >= warmup {
			metrics.LocalMiss.Observe(true)
		}
		if metrics.Series != nil {
			metrics.Series.ObserveLocal(t.Finish, true)
		}
		pool.Put(t)
	}

	var observer node.Observer
	if cfg.Trace != nil {
		rec := cfg.Trace
		kinds := map[node.ObserverEvent]trace.Kind{
			node.ObserveSubmit:   trace.Submit,
			node.ObserveDispatch: trace.Dispatch,
			node.ObservePreempt:  trace.Preempt,
			node.ObserveComplete: trace.Complete,
			node.ObserveAbort:    trace.Abort,
		}
		observer = func(ev node.ObserverEvent, now float64, t *task.Task) {
			rec.Record(trace.FromTask(kinds[ev], now, t))
		}
	}

	globalsFirst := core.NeedsClassPriority(parallel)
	queueKey := fmt.Sprintf("%s|%t", cfg.Scheduler, globalsFirst)
	reuseQueues := ws != nil && ws.queueKey == queueKey && len(ws.queues) == cfg.Nodes
	var queues []sched.Queue
	if reuseQueues {
		queues = ws.queues
		for _, q := range queues {
			q.(sched.Resetter).Reset()
		}
	} else {
		queues = make([]sched.Queue, 0, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			q, err := sched.New(cfg.Scheduler, globalsFirst)
			if err != nil {
				return nil, err
			}
			// Pre-size each ready queue to its expected working depth,
			// so first-replication warm-up growth does not scale with
			// the node count.
			q.(sched.Grower).Grow(initialQueueDepth)
			queues = append(queues, q)
		}
		if ws != nil {
			ws.queues, ws.queueKey = queues, queueKey
		}
	}
	// All per-node server state lives in one contiguous group, reused
	// across a workspace's replications.
	group := &node.Group{}
	if ws != nil {
		if ws.group == nil {
			ws.group = group
		}
		group = ws.group
	}
	if err := group.Configure(node.GroupConfig{
		Engine:     eng,
		Queues:     queues,
		Policy:     cfg.tardyPolicy(),
		Preemptive: cfg.Preemptive,
		OnDone:     onTaskDone,
		OnAbort:    onTaskAbort,
		Observer:   observer,
	}); err != nil {
		return nil, err
	}
	nodes := group.Nodes()

	mgr, err = procmgr.New(procmgr.Config{
		Engine:   eng,
		Nodes:    nodes,
		Assigner: core.NewAssigner(serial, parallel),
		OnDone: func(inst *procmgr.Instance) {
			metrics.GlobalDone++
			if inst.Aborted {
				metrics.GlobalAborted++
			}
			if metrics.Series != nil {
				if inst.Aborted {
					// Binned by abort time; a discarded instance has no
					// meaningful lateness.
					metrics.Series.ObserveGlobalAbort(inst.Finish)
				} else {
					metrics.Series.ObserveGlobal(inst.Finish, inst.Missed(), inst.Finish-inst.Deadline)
				}
			}
			if inst.Arrival < warmup {
				return
			}
			metrics.GlobalMiss.Observe(inst.Missed())
			if !inst.Aborted {
				metrics.GlobalResponse.Add(inst.Finish - inst.Arrival)
				if inst.Missed() {
					metrics.GlobalTardiness.Add(inst.Finish - inst.Deadline)
				}
				metrics.InheritedSlack.Add(inst.InheritedSlack)
			}
		},
		NextSeq:    nextSeq,
		NextTaskID: nextID,
		Pool:       pool,
		GraphPool:  graphs,
	})
	if err != nil {
		return nil, err
	}

	// Local streams: one per node, each with its own substream. Rate
	// multipliers skew per-node load while preserving the total.
	multipliers := cfg.LocalRateMultipliers
	var multSum float64
	if multipliers != nil {
		for _, m := range multipliers {
			multSum += m
		}
	}
	for i, n := range nodes {
		rate := rates.LocalPerNode
		if multipliers != nil {
			rate = rates.LocalPerNode * multipliers[i] * float64(cfg.Nodes) / multSum
		}
		nodeRef := n
		src, err := workload.NewLocalSource(
			eng,
			rng.NewStream(cfg.Seed, fmt.Sprintf("local-%d", i)),
			workload.LocalParams{
				Rate:     rate,
				MeanExec: 1 / cfg.MuLocal,
				SlackMin: cfg.SlackMin,
				SlackMax: cfg.SlackMax,
				Pex:      workload.PexModel{RelErr: cfg.PexRelErr},
				Demand:   cfg.scenarioDemand(),
				Mod:      cfg.scenarioMod(),
				Pool:     pool,
			},
			nextID, nextSeq,
			func(t *task.Task) {
				metrics.LocalGenerated++
				nodeRef.Submit(t)
			},
		)
		if err != nil {
			return nil, err
		}
		src.Start()
	}

	// Global stream.
	if rates.Global > 0 {
		var instID uint64
		src, err := workload.NewGlobalSource(
			eng,
			rng.NewStream(cfg.Seed, "global"),
			cfg.Nodes,
			workload.GlobalParams{
				Rate:          rates.Global,
				Shape:         cfg.shape(),
				SlackMin:      cfg.SlackMin,
				SlackMax:      cfg.SlackMax,
				RelFlex:       cfg.RelFlex,
				MeanLocalExec: 1 / cfg.MuLocal,
				Mod:           cfg.scenarioMod(),
				GraphPool:     graphs,
			},
			func(sp workload.Spec) {
				instID++
				metrics.GlobalGenerated++
				inst := mgr.NewInstance()
				inst.ID = instID
				inst.Graph = sp.Graph
				inst.Arrival = sp.Arrival
				inst.Deadline = sp.Deadline
				mgr.Start(inst)
			},
		)
		if err != nil {
			return nil, err
		}
		src.Start()
	}

	if cfg.Scenario != nil {
		scheduleScenario(eng, cfg, nodes, metrics.Series)
	}

	eng.Run(cfg.Horizon)

	metrics.Utilization = make([]float64, cfg.Nodes)
	for i, n := range nodes {
		metrics.Utilization[i] = n.BusyTime() / cfg.Horizon
	}
	metrics.LocalInFlight = metrics.LocalGenerated - metrics.LocalDone
	metrics.GlobalInFlight = int64(mgr.InFlight())
	if ws != nil && len(metrics.StageMissByIndex) > ws.stageCap {
		ws.stageCap = len(metrics.StageMissByIndex)
	}
	return metrics, nil
}

// Replication aggregates one miss-ratio series across seeds.
type Replication struct {
	// Runs holds the per-replication metrics in seed order.
	Runs []*Metrics
	// LocalMD and GlobalMD are replication-level estimates of the miss
	// percentages.
	LocalMD  stats.Estimate
	GlobalMD stats.Estimate
}

// RunReplications executes reps independent runs with seeds Seed,
// Seed+1, ... and aggregates the class miss percentages with Student-t
// confidence intervals (the paper runs two replications per data point).
// Replications fan out across all cores; see RunReplicationsParallel.
func RunReplications(cfg Config, reps int) (*Replication, error) {
	return RunReplicationsParallel(cfg, reps, 0)
}

// RunReplicationsParallel is RunReplications with an explicit worker
// bound: parallelism <= 0 uses GOMAXPROCS, 1 forces the sequential path.
// Each replication owns its seed substream (internal/rng derives every
// stream from the replication's own Seed), so results are bit-identical
// across parallelism levels. A shared cfg.Trace recorder is the one piece
// of cross-replication mutable state, so tracing forces parallelism 1.
func RunReplicationsParallel(cfg Config, reps, parallelism int) (*Replication, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("system: reps = %d, want > 0", reps)
	}
	if cfg.Trace != nil {
		parallelism = 1
	}
	runs := make([]*Metrics, reps)
	run := runner.New(parallelism)
	// Each worker owns one reusable workspace: after its first
	// replication the engine heap, task free list, and ready queues are
	// already at working size, so subsequent replications on that worker
	// allocate almost nothing.
	workspaces := make([]*Workspace, run.Workers())
	err := run.RunWorkers(reps, func(worker, i int) error {
		ws := workspaces[worker]
		if ws == nil {
			ws = NewWorkspace()
			workspaces[worker] = ws
		}
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := RunWith(c, ws)
		if err != nil {
			return err
		}
		runs[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Replication{Runs: runs}
	local := make([]float64, reps)
	global := make([]float64, reps)
	for i, m := range runs {
		local[i] = m.MDLocal()
		global[i] = m.MDGlobal()
	}
	out.LocalMD = stats.MeanCI(local)
	out.GlobalMD = stats.MeanCI(global)
	return out, nil
}
