package system

import (
	"math"
	"strings"
	"testing"

	"repro/internal/queueing"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// shortBaseline returns a fast configuration for unit-level integration
// tests (shape assertions use longer horizons in shape_test.go).
func shortBaseline() Config {
	cfg := Baseline()
	cfg.Horizon = 10000
	return cfg
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "zero nodes", mut: func(c *Config) { c.Nodes = 0 }},
		{name: "zero mu", mut: func(c *Config) { c.MuLocal = 0 }},
		{name: "negative mu subtask", mut: func(c *Config) { c.MuSubtask = -1 }},
		{name: "zero load", mut: func(c *Config) { c.Load = 0 }},
		{name: "overload", mut: func(c *Config) { c.Load = 1.0 }},
		{name: "frac_local > 1", mut: func(c *Config) { c.FracLocal = 1.5 }},
		{name: "inverted slack", mut: func(c *Config) { c.SlackMin = 3; c.SlackMax = 1 }},
		{name: "negative rel_flex", mut: func(c *Config) { c.RelFlex = -1 }},
		{name: "negative pex err", mut: func(c *Config) { c.PexRelErr = -0.1 }},
		{name: "zero horizon", mut: func(c *Config) { c.Horizon = 0 }},
		{name: "warmup beyond horizon", mut: func(c *Config) { c.Warmup = c.Horizon }},
		{name: "zero m", mut: func(c *Config) { c.M = 0 }},
		{name: "bad SSP", mut: func(c *Config) { c.SSP = "nope" }},
		{name: "bad PSP", mut: func(c *Config) { c.PSP = "nope" }},
		{name: "bad scheduler", mut: func(c *Config) { c.Scheduler = sched.Policy("??") }},
		{name: "bad rng layout", mut: func(c *Config) { c.RNGLayout = "scrambled" }},
		{name: "multiplier count", mut: func(c *Config) { c.LocalRateMultipliers = []float64{1, 2} }},
		{name: "negative multiplier", mut: func(c *Config) {
			c.LocalRateMultipliers = []float64{1, 1, 1, 1, 1, -1}
		}},
		{name: "zero multipliers", mut: func(c *Config) {
			c.LocalRateMultipliers = []float64{0, 0, 0, 0, 0, 0}
		}},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := shortBaseline()
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted a bad config")
			}
		})
	}
	good := shortBaseline()
	if err := good.Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
}

func TestDeriveRates(t *testing.T) {
	cfg := shortBaseline()
	rates, err := cfg.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	// λ_local = frac·load·µ_local = 0.75·0.5·1 = 0.375 per node.
	if math.Abs(rates.LocalPerNode-0.375) > 1e-12 {
		t.Errorf("LocalPerNode = %v, want 0.375", rates.LocalPerNode)
	}
	// λ_global = (1−frac)·load·k·µ_s/m = 0.25·0.5·6/4 = 0.1875.
	if math.Abs(rates.Global-0.1875) > 1e-12 {
		t.Errorf("Global = %v, want 0.1875", rates.Global)
	}
	// Reconstruct the load equation.
	load := (rates.Global*rates.MeanSubtasks/cfg.MuSubtask +
		float64(cfg.Nodes)*rates.LocalPerNode/cfg.MuLocal) / float64(cfg.Nodes)
	if math.Abs(load-cfg.Load) > 1e-12 {
		t.Errorf("reconstructed load = %v, want %v", load, cfg.Load)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 5000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalGenerated != b.LocalGenerated || a.GlobalGenerated != b.GlobalGenerated {
		t.Fatalf("same seed generated different arrivals: %d/%d vs %d/%d",
			a.LocalGenerated, a.GlobalGenerated, b.LocalGenerated, b.GlobalGenerated)
	}
	if a.LocalMiss.Hits() != b.LocalMiss.Hits() || a.GlobalMiss.Hits() != b.GlobalMiss.Hits() {
		t.Fatal("same seed produced different miss counts")
	}
	if a.MeanUtilization() != b.MeanUtilization() {
		t.Fatal("same seed produced different utilization")
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalGenerated == c.LocalGenerated && a.LocalMiss.Hits() == c.LocalMiss.Hits() {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestTaskConservation(t *testing.T) {
	cfg := shortBaseline()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalGenerated == 0 || m.GlobalGenerated == 0 {
		t.Fatal("nothing generated")
	}
	// Everything generated is either done or still in flight.
	if m.LocalDone+m.LocalInFlight != m.LocalGenerated {
		t.Errorf("local conservation broken: done %d + inflight %d != generated %d",
			m.LocalDone, m.LocalInFlight, m.LocalGenerated)
	}
	if m.GlobalDone+m.GlobalInFlight != m.GlobalGenerated {
		t.Errorf("global conservation broken: done %d + inflight %d != generated %d",
			m.GlobalDone, m.GlobalInFlight, m.GlobalGenerated)
	}
	// In-flight work at the end of a stable run is a handful of tasks,
	// not a growing backlog.
	if m.LocalInFlight > m.LocalGenerated/10 {
		t.Errorf("local backlog too large: %d of %d", m.LocalInFlight, m.LocalGenerated)
	}
}

func TestUtilizationMatchesLoad(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 30000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MeanUtilization(); math.Abs(got-cfg.Load) > 0.03 {
		t.Errorf("mean utilization = %v, want about load %v", got, cfg.Load)
	}
	for i, u := range m.Utilization {
		if u < 0.3 || u > 0.7 {
			t.Errorf("node %d utilization %v far from homogeneous load 0.5", i, u)
		}
	}
}

func TestArrivalCountsMatchRates(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 30000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := cfg.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	wantLocal := rates.LocalPerNode * float64(cfg.Nodes) * cfg.Horizon
	if math.Abs(float64(m.LocalGenerated)-wantLocal)/wantLocal > 0.05 {
		t.Errorf("local arrivals = %d, want about %v", m.LocalGenerated, wantLocal)
	}
	wantGlobal := rates.Global * cfg.Horizon
	if math.Abs(float64(m.GlobalGenerated)-wantGlobal)/wantGlobal > 0.05 {
		t.Errorf("global arrivals = %d, want about %v", m.GlobalGenerated, wantGlobal)
	}
}

func TestPureLocalMM1Sanity(t *testing.T) {
	// With frac_local = 1 each node is an independent M/M/1 queue at
	// ρ = load: mean response time W = 1/(µ(1−ρ)) = 2 for ρ = 0.5.
	cfg := shortBaseline()
	cfg.FracLocal = 1
	cfg.Horizon = 60000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalGenerated != 0 {
		t.Fatalf("pure local config generated %d globals", m.GlobalGenerated)
	}
	got := m.LocalResponse.Mean()
	if math.Abs(got-2) > 0.15 {
		t.Errorf("M/M/1 mean response = %v, want 2.0 +/- 0.15", got)
	}
}

func TestFCFSLocalMissMatchesMM1Theory(t *testing.T) {
	// With frac_local = 1 and FCFS, each node is an exact M/M/1 queue
	// and the local miss probability has the closed form
	// P(Wq > sl), sl ~ U[Smin, Smax] — waiting is independent of the
	// job's own service under FCFS. This validates the entire pipeline
	// (arrivals, service sampling, queueing, deadline accounting,
	// metrics) against theory.
	cfg := shortBaseline()
	cfg.FracLocal = 1
	cfg.Scheduler = sched.FCFS
	cfg.Horizon = 60000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := cfg.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	q := queueing.MM1{Lambda: rates.LocalPerNode, Mu: cfg.MuLocal}
	want, err := q.MissProbUniformSlack(cfg.SlackMin, cfg.SlackMax)
	if err != nil {
		t.Fatal(err)
	}
	got := m.LocalMiss.Value()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("FCFS local miss ratio = %.4f, M/M/1 theory = %.4f (+/- 0.01)", got, want)
	}
}

func TestGlobalsFirstConfigServesGlobalsSooner(t *testing.T) {
	base := shortBaseline()
	base.Shape = workload.ParallelShape{M: 4, MeanExec: 1}
	base.SlackMin, base.SlackMax = 1.25, 5.0

	ud := base
	ud.PSP = "UD"
	gf := base
	gf.PSP = "GF"

	mUD, err := Run(ud)
	if err != nil {
		t.Fatal(err)
	}
	mGF, err := Run(gf)
	if err != nil {
		t.Fatal(err)
	}
	if mGF.GlobalResponse.Mean() >= mUD.GlobalResponse.Mean() {
		t.Errorf("GF global response %v not better than UD %v",
			mGF.GlobalResponse.Mean(), mUD.GlobalResponse.Mean())
	}
}

func TestAbortPolicyAbortsOnlyWhenConfigured(t *testing.T) {
	cfg := shortBaseline()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalAborted != 0 || m.GlobalAborted != 0 {
		t.Fatalf("no-abort run aborted %d local / %d global", m.LocalAborted, m.GlobalAborted)
	}
	cfg.TardyAbort = true
	cfg.SlackMin, cfg.SlackMax = 0.0, 0.5 // tight slack forces aborts
	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.LocalAborted == 0 {
		t.Error("tight-slack abort run discarded no local tasks")
	}
	if m2.GlobalAborted == 0 {
		t.Error("tight-slack abort run discarded no global instances")
	}
	// Conservation still holds with aborts.
	if m2.LocalDone+m2.LocalInFlight != m2.LocalGenerated {
		t.Error("local conservation broken under abort policy")
	}
}

func TestFirmAbortGentlerThanVirtualAbortForDIV(t *testing.T) {
	// DIV-1 assigns deliberately early virtual deadlines. Aborting on
	// those kills tasks that could still meet dl(T); aborting on the
	// end-to-end (firm) deadline must discard far fewer global tasks.
	base := shortBaseline()
	base.Shape = workload.ParallelShape{M: 4, MeanExec: 1}
	base.SlackMin, base.SlackMax = 1.25, 5.0
	base.PSP = "DIV-1"

	virtual := base
	virtual.TardyAbort = true
	firm := base
	firm.FirmAbort = true

	mv, err := Run(virtual)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := Run(firm)
	if err != nil {
		t.Fatal(err)
	}
	if mf.GlobalAborted >= mv.GlobalAborted {
		t.Errorf("firm abort discarded %d global tasks, virtual abort %d; firm should be gentler",
			mf.GlobalAborted, mv.GlobalAborted)
	}
	if mf.MDGlobal() >= mv.MDGlobal() {
		t.Errorf("firm-abort MDglobal %.1f%% not below virtual-abort %.1f%%",
			mf.MDGlobal(), mv.MDGlobal())
	}
	// Both abort flags together must be rejected.
	both := base
	both.TardyAbort, both.FirmAbort = true, true
	if err := both.Validate(); err == nil {
		t.Error("TardyAbort+FirmAbort accepted")
	}
}

func TestHotNodeMultipliers(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 30000
	cfg.LocalRateMultipliers = []float64{3, 1, 1, 1, 1, 1}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 carries triple local load; its utilization must exceed the
	// others'.
	hot := m.Utilization[0]
	for i := 1; i < len(m.Utilization); i++ {
		if hot <= m.Utilization[i] {
			t.Errorf("hot node 0 utilization %v not above node %d's %v", hot, i, m.Utilization[i])
		}
	}
	// Total load unchanged.
	if got := m.MeanUtilization(); math.Abs(got-cfg.Load) > 0.04 {
		t.Errorf("mean utilization = %v, want about %v", got, cfg.Load)
	}
}

func TestRunReplications(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 4000
	rep, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(rep.Runs))
	}
	if rep.LocalMD.N != 3 || rep.GlobalMD.N != 3 {
		t.Error("estimates not built from 3 replications")
	}
	if rep.GlobalMD.Mean < 0 || rep.GlobalMD.Mean > 100 {
		t.Errorf("MDglobal = %v%%, outside [0, 100]", rep.GlobalMD.Mean)
	}
	if _, err := RunReplications(cfg, 0); err == nil {
		t.Error("reps = 0 accepted")
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 500
	rec := trace.NewRecorder(0)
	cfg.Trace = rec
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	counts := rec.CountByKind()
	// Every completion observed by the metrics must appear in the trace.
	wantCompletes := m.LocalDone + (m.GlobalGenerated-m.GlobalInFlight)*0 // locals at least
	if int64(counts[trace.Complete]) < wantCompletes {
		t.Errorf("trace completions %d < local completions %d", counts[trace.Complete], wantCompletes)
	}
	if counts[trace.Submit] < counts[trace.Complete] {
		t.Errorf("submits %d < completions %d", counts[trace.Submit], counts[trace.Complete])
	}
	if counts[trace.Preempt] != 0 {
		t.Errorf("non-preemptive run recorded %d preemptions", counts[trace.Preempt])
	}
	// A task's history must be causally ordered: submit before dispatch
	// before complete.
	events := rec.Events()
	hist := rec.TaskHistory(events[0].TaskID)
	if len(hist) < 2 || hist[0].Kind != trace.Submit {
		t.Errorf("first task history starts with %v", hist[0].Kind)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].T < hist[i-1].T {
			t.Errorf("history timestamps go backwards: %v", hist)
		}
	}
	// CSV export round-trips the count.
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != rec.Len()+1 {
		t.Errorf("csv lines = %d, want %d", got, rec.Len()+1)
	}
}

func TestTracePreemptionEvents(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 2000
	cfg.Preemptive = true
	rec := trace.NewRecorder(0)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	if counts[trace.Preempt] == 0 {
		t.Error("preemptive run recorded no preemption events")
	}
	// Every dispatch ends in a completion, a preemption, or is still in
	// service when the horizon ends (at most one per node).
	delta := counts[trace.Dispatch] - counts[trace.Complete] - counts[trace.Preempt]
	if delta < 0 || delta > cfg.Nodes {
		t.Errorf("dispatches %d vs completions %d + preemptions %d: residue %d outside [0, %d]",
			counts[trace.Dispatch], counts[trace.Complete], counts[trace.Preempt], delta, cfg.Nodes)
	}
}

func TestMLFSchedulerRuns(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 4000
	cfg.Scheduler = sched.MLF
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMixedShapeRuns(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 4000
	cfg.Shape = workload.MixedShape{Stages: []int{1, 3, 1}, MeanExec: 1}
	cfg.SSP, cfg.PSP = "EQF", "DIV-1"
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalDone == 0 {
		t.Error("no mixed global tasks completed")
	}
}

func TestPexErrorRuns(t *testing.T) {
	cfg := shortBaseline()
	cfg.Horizon = 4000
	cfg.PexRelErr = 0.5
	cfg.SSP = "EQF"
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
