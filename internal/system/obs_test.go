package system

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestEngineStatsDeterministic pins the PR-7 guarantee: Metrics.Engine
// is a pure function of (configuration, seed) — identical on a cold
// run, on a fresh workspace, and on a workspace warmed by a different
// previous run.
func TestEngineStatsDeterministic(t *testing.T) {
	cfg := shortBaseline()
	cfg.Seed = 7

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunWith(cfg, NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}

	// Warm a workspace with a different seed first, then run cfg on it.
	ws := NewWorkspace()
	warmup := cfg
	warmup.Seed = 99
	if _, err := RunWith(warmup, ws); err != nil {
		t.Fatal(err)
	}
	warm, err := RunWith(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}

	if cold.Engine != fresh.Engine {
		t.Errorf("cold vs fresh-workspace engine stats differ:\n%+v\n%+v", cold.Engine, fresh.Engine)
	}
	if cold.Engine != warm.Engine {
		t.Errorf("cold vs warm-workspace engine stats differ:\n%+v\n%+v", cold.Engine, warm.Engine)
	}
}

// TestEngineStatsConsistency checks the counters tie out against each
// other and against the model-level metrics.
func TestEngineStatsConsistency(t *testing.T) {
	cfg := shortBaseline()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Engine
	if e.EventsScheduled == 0 || e.TasksSubmitted == 0 {
		t.Fatalf("counters never moved: %+v", e)
	}
	if e.EventsFired > e.EventsScheduled {
		t.Errorf("fired %d > scheduled %d", e.EventsFired, e.EventsScheduled)
	}
	if e.EventsFired+e.EventsCancelled > e.EventsScheduled {
		t.Errorf("fired+cancelled %d > scheduled %d", e.EventsFired+e.EventsCancelled, e.EventsScheduled)
	}
	if e.PendingHWM == 0 || e.ReadyHWM == 0 {
		t.Errorf("high-water marks never moved: %+v", e)
	}
	if e.TasksCompleted+e.TasksAborted > e.TasksSubmitted {
		t.Errorf("completed+aborted %d > submitted %d", e.TasksCompleted+e.TasksAborted, e.TasksSubmitted)
	}
	// Every generated local task is submitted to some node exactly once
	// (non-preemptive baseline), as is every global subtask stage.
	if e.TasksSubmitted < uint64(m.LocalGenerated) {
		t.Errorf("submitted %d < local generated %d", e.TasksSubmitted, m.LocalGenerated)
	}
	if e.Preemptions != 0 {
		t.Errorf("non-preemptive baseline recorded %d preemptions", e.Preemptions)
	}
}

// TestEngineStatsPreemptive drives the preemption counter.
func TestEngineStatsPreemptive(t *testing.T) {
	cfg := shortBaseline()
	cfg.Preemptive = true
	cfg.Load = 0.8
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine.Preemptions == 0 {
		t.Fatal("preemptive high-load run recorded no preemptions")
	}
}

// TestEngineStatsQueueKinds checks that everything except the
// promotion counter is identical across event-queue kinds (pop order is
// identical by construction; only the promotion path differs).
func TestEngineStatsQueueKinds(t *testing.T) {
	base := shortBaseline()
	get := func(kind sim.QueueKind) obs.EngineStats {
		t.Helper()
		cfg := base
		cfg.EventQueue = kind
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Engine
	}
	heap, ladder := get(sim.QueueHeap), get(sim.QueueLadder)
	heap.QueuePromotions, ladder.QueuePromotions = 0, 0
	if heap != ladder {
		t.Errorf("engine stats differ across queue kinds:\n%+v\n%+v", heap, ladder)
	}
}

// TestEngineStatsMergeAcrossReplications checks merged totals equal the
// sum/max of per-replication stats.
func TestEngineStatsMergeAcrossReplications(t *testing.T) {
	cfg := shortBaseline()
	rep, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var merged obs.EngineStats
	var sumScheduled uint64
	for _, m := range rep.Runs {
		merged.Merge(m.Engine)
		sumScheduled += m.Engine.EventsScheduled
	}
	if merged.EventsScheduled != sumScheduled {
		t.Errorf("merge lost events: %d != %d", merged.EventsScheduled, sumScheduled)
	}
	for _, m := range rep.Runs {
		if m.Engine.PendingHWM > merged.PendingHWM {
			t.Errorf("merged HWM %d below a member's %d", merged.PendingHWM, m.Engine.PendingHWM)
		}
	}
}
