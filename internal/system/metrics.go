package system

import (
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Metrics is the outcome of one simulation run. Miss ratios follow the
// paper's primary measure: the fraction of missed deadlines conditional
// on task class (MD_local, MD_global), over tasks that arrived after the
// warmup window. Under the abort policy, discarded tasks count as missed.
type Metrics struct {
	// LocalGenerated and GlobalGenerated count arrivals over the whole
	// horizon (including warmup).
	LocalGenerated  int64
	GlobalGenerated int64

	// LocalDone counts local tasks that completed service;
	// GlobalDone counts global instances that completed end-to-end.
	LocalDone  int64
	GlobalDone int64

	// LocalAborted / GlobalAborted count tardy-policy discards (whole
	// instances for globals).
	LocalAborted  int64
	GlobalAborted int64

	// LocalMiss and GlobalMiss are the class-conditional miss ratios
	// (post-warmup).
	LocalMiss  stats.Ratio
	GlobalMiss stats.Ratio

	// StageMiss is the fraction of global subtasks that missed their
	// *virtual* deadline (post-warmup) — a diagnostic for how strategies
	// spread slack across stages.
	StageMiss stats.Ratio

	// LocalResponse and GlobalResponse accumulate response times
	// (finish − arrival) of post-warmup completions.
	LocalResponse  stats.Welford
	GlobalResponse stats.Welford

	// GlobalTardiness accumulates finish − deadline over post-warmup
	// global instances that missed (how late the late ones are).
	GlobalTardiness stats.Welford

	// InheritedSlack accumulates per-instance leftover virtual slack
	// (section 4.2.2's "rich get richer" diagnostic).
	InheritedSlack stats.Welford

	// StageMissByIndex and StageSlackByIndex break global subtask
	// behaviour down by leaf position (stage 0 = first released):
	// the per-stage virtual-deadline miss ratio, and the slack
	// available when the stage was released (dl_i − ar_i − pex_i).
	// They expose the section 4.2.2 phenomena: under UD early stages
	// hold all the slack; under EQS/EQF it is spread evenly, and
	// inheritance makes later stages richer. Slices grow to the
	// largest observed stage index.
	StageMissByIndex  []stats.Ratio
	StageSlackByIndex []stats.Welford

	// Utilization is per-node busy time divided by the horizon.
	Utilization []float64

	// LocalInFlight and GlobalInFlight report work still queued or in
	// service when the horizon ended (excluded from all ratios).
	LocalInFlight  int64
	GlobalInFlight int64

	// Engine carries the replication's engine/queue/node runtime
	// counters (event totals, queue high-water marks, task lifecycle
	// counts), collected once at replication end. Like every other
	// field it is a deterministic function of (configuration, seed) —
	// wall-clock gauges live in the session layer, never here — so
	// results stay bit-identical whether or not anyone reads it.
	Engine obs.EngineStats

	// Series is the per-window time series of a scenario run (miss
	// ratios, lateness, queue lengths binned over fixed intervals); nil
	// unless Config.Scenario was set. Unlike the whole-run ratios
	// above, Series windows span the full horizon including warmup —
	// the warmup transient is part of what a timeline shows.
	Series *scenario.Series
}

// MDLocal returns the local miss ratio in percent.
func (m *Metrics) MDLocal() float64 { return 100 * m.LocalMiss.Value() }

// MDGlobal returns the global miss ratio in percent.
func (m *Metrics) MDGlobal() float64 { return 100 * m.GlobalMiss.Value() }

// observeStage records one completed global subtask's stage statistics.
func (m *Metrics) observeStage(stage int, missed bool, slackAtRelease float64) {
	if stage < 0 {
		return
	}
	for len(m.StageMissByIndex) <= stage {
		m.StageMissByIndex = append(m.StageMissByIndex, stats.Ratio{})
		m.StageSlackByIndex = append(m.StageSlackByIndex, stats.Welford{})
	}
	m.StageMissByIndex[stage].Observe(missed)
	m.StageSlackByIndex[stage].Add(slackAtRelease)
}

// MeanUtilization averages per-node utilization.
func (m *Metrics) MeanUtilization() float64 {
	if len(m.Utilization) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range m.Utilization {
		sum += u
	}
	return sum / float64(len(m.Utilization))
}
