package system

import (
	"fmt"
	"sort"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// faultEvent is the payload of one scheduled speed change: the node it
// applies to and the speed factor to set (0 freezes, 1 restores).
type faultEvent struct {
	node  *node.Node
	speed float64
}

// scheduleScenario registers the scenario's dynamic behaviour on the
// engine before the run starts: node fault events (slowdown / outage
// with automatic recovery) and the periodic queue-length sampler feeding
// the time series. Rate modulation and demand overrides are wired into
// the workload sources directly, so this covers everything else. All
// events go through two callbacks registered once, with payload structs
// allocated up front — no per-event closures.
func scheduleScenario(eng *sim.Engine, cfg Config, nodes []*node.Node, series *scenario.Series) {
	faultCB := eng.Register(func(p any) {
		f := p.(*faultEvent)
		f.node.SetSpeed(f.speed)
	})

	// Schedule events in start-time order, not spec order: the engine
	// breaks time ties by scheduling sequence, so for back-to-back
	// events on one node (recovery at t, next fault at t) this makes
	// the earlier event's SetSpeed(1) fire before the later event's
	// start instead of silently cancelling it.
	events := append([]scenario.EventSpec(nil), cfg.Scenario.Events()...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		n := nodes[ev.Node]
		start, end := ev.At, ev.At+ev.Duration
		if start >= cfg.Horizon {
			continue // never takes effect inside the run
		}
		// ev.Factor is 0 for outages: frozen.
		mustCallAt(eng, start, faultCB, &faultEvent{node: n, speed: ev.Factor})
		if end < cfg.Horizon {
			mustCallAt(eng, end, faultCB, &faultEvent{node: n, speed: 1})
		}
	}

	sampleCB := eng.Register(func(any) {
		total := 0
		for _, n := range nodes {
			total += n.QueueLen()
			if n.Busy() {
				total++ // count the task in service as queued work
			}
		}
		series.ObserveQueueLen(eng.Now(), float64(total))
	})

	// Sample total ready-queue length at every window midpoint: one
	// unbiased snapshot per window, aligned identically across
	// replications so merged series stay comparable.
	half := series.Interval() / 2
	for i := 0; i < series.Len(); i++ {
		at := series.WindowStart(i) + half
		if at > cfg.Horizon {
			break
		}
		mustCallAt(eng, at, sampleCB, nil)
	}
}

// mustCallAt schedules at an absolute time validated by the caller.
func mustCallAt(eng *sim.Engine, t float64, cb sim.Callback, payload any) {
	if _, err := eng.CallAt(t, cb, payload); err != nil {
		panic(fmt.Sprintf("system: scenario event: %v", err))
	}
}
