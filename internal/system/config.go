// Package system assembles the full simulation of the paper: k nodes with
// independent schedulers, a process manager running an SDA strategy, and
// the local/global workload streams, all driven by the discrete-event
// engine. One Run is a pure function of (Config, seed) and yields the
// per-class miss ratios and supporting metrics the evaluation section
// reports.
package system

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config holds every model parameter of Table 1 plus the section 4.3/5.2
// variations. The zero value is not runnable; start from Baseline() and
// override.
type Config struct {
	// Nodes is k, the number of homogeneous nodes (Table 1: 6).
	Nodes int
	// MuSubtask is µ_subtask, the service *rate* of global subtasks
	// (mean demand = 1/µ_subtask; Table 1: 1.0).
	MuSubtask float64
	// MuLocal is µ_local, the service rate of local tasks (Table 1: 1.0;
	// all times in the model are relative to 1/µ_local).
	MuLocal float64
	// M is the number of subtasks per global task (Table 1: 4); used by
	// the default shapes. Ignored when Shape is set explicitly.
	M int
	// Load is the normalized system load (Table 1: 0.5); must satisfy
	// 0 < Load < 1 for stability.
	Load float64
	// FracLocal is the fraction of load contributed by local tasks
	// (Table 1: 0.75).
	FracLocal float64
	// SlackMin, SlackMax bound the uniform slack distribution
	// (Table 1: [0.25, 2.5]; the PSP baseline uses [1.25, 5.0]).
	SlackMin, SlackMax float64
	// RelFlex is the relative flexibility of globals vs locals
	// (Table 1: 1.0).
	RelFlex float64
	// PexRelErr is the relative error bound of execution-time
	// predictions (Table 1: 0 — pex(X)/ex(X) = 1).
	PexRelErr float64
	// Scheduler is the local scheduling policy (Table 1: EDF).
	Scheduler sched.Policy
	// TardyAbort selects the abort-at-dispatch overload policy keyed to
	// the task's (virtual) deadline (Table 1: no abort).
	TardyAbort bool
	// FirmAbort selects abort-at-dispatch keyed to the end-to-end
	// deadline instead: the component knows which deadline makes the
	// work worthless. Mutually exclusive with TardyAbort.
	FirmAbort bool
	// Preemptive enables deadline-based preemption at every node. The
	// paper's model is non-preemptive; this drives the ext-preempt
	// ablation.
	Preemptive bool
	// SSP and PSP name the deadline-assignment strategies, resolved via
	// core.SerialByName / core.ParallelByName.
	SSP, PSP string
	// Shape overrides the global-task structure. Nil defaults to
	// SerialShape{M}. The PSP experiments set ParallelShape{M}; the
	// section-6 experiments set MixedShape.
	Shape workload.Shape
	// LocalRateMultipliers optionally skews per-node local load (the
	// section 4.3 unbalanced scenario). Values are normalized so total
	// local work is unchanged; nil means uniform.
	LocalRateMultipliers []float64
	// Horizon is the simulated duration of one run (the paper uses
	// 1,000,000 time units).
	Horizon float64
	// Warmup is the initial window excluded from statistics. Zero
	// defaults to 5% of Horizon.
	Warmup float64
	// Scenario optionally makes the run time-varying: phase-modulated
	// arrival rates, node fault events, an alternative demand
	// distribution, and per-window time-series metrics (reported in
	// Metrics.Series). Nil reproduces the paper's stationary model
	// bit-for-bit. A Scenario is read-only and safe to share across
	// parallel replications.
	Scenario *scenario.Scenario
	// DisablePooling turns off every object-reuse fast path of the run:
	// tasks and global-task instances are freshly allocated instead of
	// recycled, and a caller-provided Workspace is ignored. Results are
	// bit-identical either way — this is the reference path the pooled
	// one is tested against, and a diagnostic switch should a
	// use-after-release ever be suspected.
	DisablePooling bool
	// EventQueue selects the engine's pending-event structure:
	// sim.QueueAuto (the zero value; binary heap, promoted to the ladder
	// queue at large pending-event counts), sim.QueueHeap (pin the
	// reference binary heap), or sim.QueueLadder (pin the ladder queue).
	// Every choice pops events in the same (time, seq) order, so results
	// are byte-identical; only speed differs with topology size.
	EventQueue sim.QueueKind
	// RNGLayout selects how each workload source lays its draws onto RNG
	// substreams. "" or "interleaved" (the default) keeps gap and body
	// draws interleaved on one stream per source — the historical layout
	// whose results the default golden files freeze. "split" moves every
	// source's inter-arrival gap draws to a dedicated substream
	// ("local-<i>-gap", "global-gap") where they are drawn in batches;
	// a different, equally valid sample path with its own golden files.
	RNGLayout string
	// Seed seeds every random stream of the run.
	Seed uint64
	// Trace optionally records per-task lifecycle events (submit,
	// dispatch, preempt, complete, abort) for debugging and analysis.
	// Attach a trace.NewRecorder; nil disables tracing with zero
	// overhead.
	Trace *trace.Recorder
}

// RNGLayout values accepted by Config.RNGLayout.
const (
	// RNGInterleaved is the default layout: one stream per source.
	RNGInterleaved = "interleaved"
	// RNGSplit gives each source a dedicated gap substream with batched
	// draws.
	RNGSplit = "split"
)

// Baseline returns Table 1's parameter setting with a test-friendly
// horizon (override Horizon for paper-scale runs).
func Baseline() Config {
	return Config{
		Nodes:     6,
		MuSubtask: 1.0,
		MuLocal:   1.0,
		M:         4,
		Load:      0.5,
		FracLocal: 0.75,
		SlackMin:  0.25,
		SlackMax:  2.5,
		RelFlex:   1.0,
		Scheduler: sched.EDF,
		SSP:       "UD",
		PSP:       "UD",
		Horizon:   50000,
		Seed:      1,
	}
}

// PSPBaseline returns the section 5.2 setting: parallel global tasks at
// distinct nodes and the widened slack range [1.25, 5.0].
func PSPBaseline() Config {
	cfg := Baseline()
	cfg.SlackMin, cfg.SlackMax = 1.25, 5.0
	cfg.Shape = workload.ParallelShape{M: cfg.M, MeanExec: 1 / cfg.MuSubtask}
	return cfg
}

// Validate checks the configuration and returns a descriptive error for
// the first problem found.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("system: Nodes = %d, want > 0", c.Nodes)
	case c.MuSubtask <= 0 || c.MuLocal <= 0:
		return fmt.Errorf("system: service rates must be positive (µ_subtask=%v, µ_local=%v)", c.MuSubtask, c.MuLocal)
	case c.Load <= 0 || c.Load >= 1:
		return fmt.Errorf("system: Load = %v, want 0 < load < 1 for a stable system", c.Load)
	case c.FracLocal < 0 || c.FracLocal > 1:
		return fmt.Errorf("system: FracLocal = %v, want within [0, 1]", c.FracLocal)
	case c.SlackMax < c.SlackMin:
		return fmt.Errorf("system: slack range [%v, %v] inverted", c.SlackMin, c.SlackMax)
	case c.RelFlex < 0:
		return fmt.Errorf("system: RelFlex = %v, want >= 0", c.RelFlex)
	case c.PexRelErr < 0:
		return fmt.Errorf("system: PexRelErr = %v, want >= 0", c.PexRelErr)
	case c.Horizon <= 0 || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("system: Horizon = %v, want positive and finite", c.Horizon)
	case c.Warmup < 0 || c.Warmup >= c.Horizon:
		return fmt.Errorf("system: Warmup = %v, want within [0, Horizon)", c.Warmup)
	case c.TardyAbort && c.FirmAbort:
		return fmt.Errorf("system: TardyAbort and FirmAbort are mutually exclusive")
	}
	switch c.RNGLayout {
	case "", RNGInterleaved, RNGSplit:
	default:
		return fmt.Errorf("system: RNGLayout = %q, want %q or %q", c.RNGLayout, RNGInterleaved, RNGSplit)
	}
	if c.Shape == nil && c.M <= 0 && c.FracLocal < 1 {
		return fmt.Errorf("system: M = %d, want > 0 for the default serial shape", c.M)
	}
	if c.LocalRateMultipliers != nil {
		if len(c.LocalRateMultipliers) != c.Nodes {
			return fmt.Errorf("system: %d rate multipliers for %d nodes", len(c.LocalRateMultipliers), c.Nodes)
		}
		sum := 0.0
		for _, m := range c.LocalRateMultipliers {
			if m < 0 {
				return fmt.Errorf("system: negative rate multiplier %v", m)
			}
			sum += m
		}
		if sum == 0 {
			return fmt.Errorf("system: rate multipliers sum to zero")
		}
	}
	if _, err := core.SerialByName(c.SSP); err != nil {
		return err
	}
	if _, err := core.ParallelByName(c.PSP); err != nil {
		return err
	}
	if _, err := sched.New(c.Scheduler, false); err != nil {
		return err
	}
	if _, err := sim.ParseQueueKind(string(c.EventQueue)); err != nil {
		return err
	}
	if c.Scenario != nil {
		if err := c.Scenario.CheckNodes(c.Nodes); err != nil {
			return err
		}
		if err := c.Scenario.CheckHorizon(c.Horizon); err != nil {
			return err
		}
	}
	return nil
}

// shape returns the configured shape or the default serial one. The
// scenario's demand override applies only to the default shape; an
// explicitly set Shape carries its own Demand field.
func (c *Config) shape() workload.Shape {
	if c.Shape != nil {
		return c.Shape
	}
	return workload.SerialShape{
		M:        c.M,
		MeanExec: 1 / c.MuSubtask,
		Pex:      workload.PexModel{RelErr: c.PexRelErr},
		Demand:   c.scenarioDemand(),
	}
}

// scenarioDemand returns the scenario's demand override, or nil.
func (c *Config) scenarioDemand() workload.Demand {
	if c.Scenario == nil {
		return nil
	}
	return c.Scenario.Demand()
}

// scenarioMod returns the scenario as a rate modulator, or nil. The
// explicit nil matters: a nil *scenario.Scenario stuffed into the
// interface would be non-nil.
func (c *Config) scenarioMod() workload.RateModulator {
	if c.Scenario == nil {
		return nil
	}
	return c.Scenario
}

// Rates holds the arrival rates derived from load and frac_local
// (section 4.1):
//
//	load       = (λ_global·m̄/µ_subtask + k·λ_local/µ_local) / k
//	frac_local = (k·λ_local/µ_local) / (k·load)
type Rates struct {
	// LocalPerNode is λ_local, the local arrival rate at each node.
	LocalPerNode float64
	// Global is λ_global, the arrival rate of whole global tasks.
	Global float64
	// MeanSubtasks is m̄, the expected subtasks per global task.
	MeanSubtasks float64
}

// DeriveRates inverts the load equations.
func (c *Config) DeriveRates() (Rates, error) {
	mean, err := workload.MeanSubtasks(c.shape())
	if err != nil {
		return Rates{}, err
	}
	r := Rates{
		LocalPerNode: c.FracLocal * c.Load * c.MuLocal,
		MeanSubtasks: mean,
	}
	if c.FracLocal < 1 {
		r.Global = (1 - c.FracLocal) * c.Load * float64(c.Nodes) * c.MuSubtask / mean
	}
	return r, nil
}

// warmup returns the effective warmup window.
func (c *Config) warmup() float64 {
	if c.Warmup > 0 {
		return c.Warmup
	}
	return 0.05 * c.Horizon
}

// tardyPolicy maps the flags to the node policy.
func (c *Config) tardyPolicy() node.TardyPolicy {
	switch {
	case c.TardyAbort:
		return node.AbortAtDispatch
	case c.FirmAbort:
		return node.AbortFirm
	default:
		return node.NoAbort
	}
}
