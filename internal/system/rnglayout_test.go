package system

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// layoutSig fingerprints one run for exact comparison: counts, miss
// ratios, and the accumulated response/tardiness moments.
func layoutSig(m *Metrics) string {
	return fmt.Sprintf("%d %d %d %d %d %d %v %v %v %v %v",
		m.LocalGenerated, m.GlobalGenerated, m.LocalDone, m.GlobalDone,
		m.LocalMiss.Hits(), m.GlobalMiss.Hits(),
		m.LocalResponse.Mean(), m.GlobalResponse.Mean(),
		m.GlobalTardiness.Mean(), m.MeanUtilization(), m.MDGlobal())
}

// TestSplitLayoutDeterministicAndDistinct is the split layout's golden
// anchor: RNGLayout=split is a deterministic sample path of its own —
// identical run to run, reproducible on a warm workspace, and genuinely
// different from the default interleaved layout (the knob must not be a
// no-op).
func TestSplitLayoutDeterministicAndDistinct(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 8000
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.RNGLayout = RNGSplit
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if layoutSig(a) != layoutSig(b) {
		t.Fatalf("split layout not deterministic:\n%s\n%s", layoutSig(a), layoutSig(b))
	}

	// Warm-workspace rerun must land on the same path.
	ws := NewWorkspace()
	for i := 0; i < 2; i++ {
		c, err := RunWith(cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		if layoutSig(c) != layoutSig(a) {
			t.Fatalf("warm split run %d diverged:\n%s\n%s", i, layoutSig(c), layoutSig(a))
		}
	}

	if layoutSig(a) == layoutSig(def) {
		t.Fatal("split layout produced the default layout's exact sample path (knob is a no-op)")
	}
	// Same model, different draws: aggregate statistics stay in the same
	// regime even though the path differs.
	if a.LocalGenerated < def.LocalGenerated/2 || a.LocalGenerated > def.LocalGenerated*2 {
		t.Fatalf("split layout arrival count %d wildly off default %d", a.LocalGenerated, def.LocalGenerated)
	}
}

// TestSplitLayoutInvariantAcrossQueuesAndPooling extends the
// byte-identity contract to the split layout: the event-queue kind and
// object pooling are pure mechanics, so the split sample path must be
// identical under heap, ladder, and auto, with pooling on and off.
func TestSplitLayoutInvariantAcrossQueuesAndPooling(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 8000
	cfg.RNGLayout = RNGSplit

	var want string
	for _, q := range []sim.QueueKind{sim.QueueAuto, sim.QueueHeap, sim.QueueLadder} {
		for _, nopool := range []bool{false, true} {
			c := cfg
			c.EventQueue = q
			c.DisablePooling = nopool
			m, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = layoutSig(m)
				continue
			}
			if got := layoutSig(m); got != want {
				t.Fatalf("queue=%v nopool=%t diverged:\n%s\n%s", q, nopool, got, want)
			}
		}
	}
}

// TestSplitLayoutReplicationsAcrossParallelism: split-layout replication
// sets merge identically whatever the worker count, like the default
// layout's parallel_test.go contract.
func TestSplitLayoutReplicationsAcrossParallelism(t *testing.T) {
	cfg := Baseline()
	cfg.Horizon = 3000
	cfg.RNGLayout = RNGSplit
	const reps = 4
	seq, err := RunReplicationsParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplicationsParallel(cfg, reps, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Runs {
		if layoutSig(seq.Runs[i]) != layoutSig(par.Runs[i]) {
			t.Fatalf("rep %d diverged across parallelism:\n%s\n%s",
				i, layoutSig(seq.Runs[i]), layoutSig(par.Runs[i]))
		}
	}
}
