package system

// Shape tests assert the paper's qualitative results (the "shape" of
// every figure) at a reduced horizon. Thresholds are deliberately
// generous: they must fail if a strategy or the queueing model is broken,
// not if the sampling noise moves a point by a percentage point.
// EXPERIMENTS.md records the precise measured values.

import (
	"math"
	"testing"

	"repro/internal/workload"
)

const shapeHorizon = 60000

func runShape(t *testing.T, cfg Config) *Metrics {
	t.Helper()
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sspConfig(ssp string, load float64) Config {
	cfg := Baseline()
	cfg.Horizon = shapeHorizon
	cfg.SSP = ssp
	cfg.Load = load
	return cfg
}

// TestShapeFig2Baseline reproduces Fig. 2 at load 0.5: global tasks under
// UD miss about 40% vs 24% for locals; ED lies between UD and EQF;
// EQS ≈ EQF; the SSP strategy barely affects local tasks.
func TestShapeFig2Baseline(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	results := make(map[string]*Metrics, 4)
	for _, ssp := range []string{"UD", "ED", "EQS", "EQF"} {
		results[ssp] = runShape(t, sspConfig(ssp, 0.5))
	}

	// Paper points A and B: MDglobal(UD) ~ 40%, MDlocal(UD) ~ 24%.
	if got := results["UD"].MDGlobal(); got < 30 || got > 50 {
		t.Errorf("MDglobal(UD) = %.1f%%, paper reports about 40%%", got)
	}
	if got := results["UD"].MDLocal(); got < 17 || got > 31 {
		t.Errorf("MDlocal(UD) = %.1f%%, paper reports about 24%%", got)
	}
	// Global tasks are "second-class citizens" under UD.
	if results["UD"].MDGlobal() < 1.4*results["UD"].MDLocal() {
		t.Errorf("MDglobal(UD)=%.1f%% not clearly above MDlocal(UD)=%.1f%%",
			results["UD"].MDGlobal(), results["UD"].MDLocal())
	}
	// Ordering on global tasks: UD > ED > EQF, and EQS close to EQF.
	ud, ed := results["UD"].MDGlobal(), results["ED"].MDGlobal()
	eqs, eqf := results["EQS"].MDGlobal(), results["EQF"].MDGlobal()
	if !(ud > ed && ed > eqf) {
		t.Errorf("global ordering broken: UD=%.1f ED=%.1f EQF=%.1f (want UD > ED > EQF)", ud, ed, eqf)
	}
	if math.Abs(eqs-eqf) > 5 {
		t.Errorf("EQS=%.1f%% and EQF=%.1f%% should be close", eqs, eqf)
	}
	// Local tasks barely react to the SSP strategy (75% of their
	// contention is local-local).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range results {
		lo = math.Min(lo, m.MDLocal())
		hi = math.Max(hi, m.MDLocal())
	}
	if hi-lo > 4 {
		t.Errorf("MDlocal spread %.1f pp across SSP strategies, want < 4", hi-lo)
	}
}

// TestShapeFig2LowLoad reproduces the light-load end of Fig. 2: hardly
// any deadline is missed and strategies are indistinguishable.
func TestShapeFig2LowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	ud := runShape(t, sspConfig("UD", 0.1))
	eqf := runShape(t, sspConfig("EQF", 0.1))
	if got := ud.MDGlobal(); got > 5 {
		t.Errorf("MDglobal(UD) at load 0.1 = %.1f%%, want < 5%%", got)
	}
	if diff := math.Abs(ud.MDGlobal() - eqf.MDGlobal()); diff > 2.5 {
		t.Errorf("strategy gap at light load = %.1f pp, want negligible", diff)
	}
}

// TestShapeFig3 reproduces Fig. 3: as frac_local grows, MDglobal(UD)
// rises (globals face ever more discrimination), MDlocal(UD) rises
// mildly, and both EQF curves stay nearly flat.
func TestShapeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	at := func(ssp string, frac float64) *Metrics {
		cfg := sspConfig(ssp, 0.5)
		cfg.FracLocal = frac
		return runShape(t, cfg)
	}
	udLo, udHi := at("UD", 0.25), at("UD", 0.95)
	eqfLo, eqfHi := at("EQF", 0.25), at("EQF", 0.95)

	rise := udHi.MDGlobal() - udLo.MDGlobal()
	if rise < 4 {
		t.Errorf("MDglobal(UD) rose only %.1f pp from frac_local 0.25 to 0.95, want a clear rise", rise)
	}
	if udHi.MDLocal() < udLo.MDLocal()-1 {
		t.Errorf("MDlocal(UD) fell from %.1f%% to %.1f%%, paper reports a mild rise",
			udLo.MDLocal(), udHi.MDLocal())
	}
	eqfMove := math.Abs(eqfHi.MDGlobal() - eqfLo.MDGlobal())
	if eqfMove > rise/2 || eqfMove > 6 {
		t.Errorf("MDglobal(EQF) moved %.1f pp, want nearly flat (UD moved %.1f)", eqfMove, rise)
	}
}

func pspConfig(psp string, load float64) Config {
	cfg := PSPBaseline()
	cfg.Horizon = shapeHorizon
	cfg.PSP = psp
	cfg.Load = load
	return cfg
}

// TestShapeFig4 reproduces Fig. 4 and the section 5.3 text: UD lets
// global tasks miss about three times as often as locals; DIV-1 pulls
// the two classes together at a small cost to locals; DIV-2 is barely
// different from DIV-1; GF reduces MDglobal further.
func TestShapeFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	results := make(map[string]*Metrics, 4)
	for _, psp := range []string{"UD", "DIV-1", "DIV-2", "GF"} {
		results[psp] = runShape(t, pspConfig(psp, 0.5))
	}

	ud := results["UD"]
	ratio := ud.MDGlobal() / math.Max(ud.MDLocal(), 1e-9)
	if ratio < 1.8 || ratio > 4.5 {
		t.Errorf("MDglobal/MDlocal under PSP UD = %.2f, paper reports about 3", ratio)
	}
	div1 := results["DIV-1"]
	if gap := math.Abs(div1.MDGlobal() - div1.MDLocal()); gap > 5 {
		t.Errorf("DIV-1 class gap = %.1f pp, want the two curves close", gap)
	}
	if div1.MDGlobal() >= ud.MDGlobal() {
		t.Errorf("DIV-1 MDglobal %.1f%% not below UD's %.1f%%", div1.MDGlobal(), ud.MDGlobal())
	}
	if div1.MDLocal() < ud.MDLocal() {
		t.Errorf("DIV-1 MDlocal %.1f%% below UD's %.1f%%, locals should pay a little",
			div1.MDLocal(), ud.MDLocal())
	}
	div2 := results["DIV-2"]
	if math.Abs(div2.MDGlobal()-div1.MDGlobal()) > 4 {
		t.Errorf("DIV-2 (%.1f%%) and DIV-1 (%.1f%%) global miss should be close at baseline load",
			div2.MDGlobal(), div1.MDGlobal())
	}
	gf := results["GF"]
	if gf.MDGlobal() >= div1.MDGlobal() {
		t.Errorf("GF MDglobal %.1f%% not below DIV-1's %.1f%% (paper: GF reduces it further)",
			gf.MDGlobal(), div1.MDGlobal())
	}
}

// TestShapeCombined reproduces the section 6 experiment: on mixed
// serial-parallel tasks UD-UD misses vastly more global deadlines than
// local ones; EQF or DIV-1 alone help; combined they help most — the
// benefits are additive.
func TestShapeCombined(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	at := func(ssp, psp string) *Metrics {
		cfg := Baseline()
		cfg.Horizon = shapeHorizon
		cfg.Shape = workload.MixedShape{Stages: []int{1, 3, 1}, MeanExec: 1}
		cfg.SSP, cfg.PSP = ssp, psp
		return runShape(t, cfg)
	}
	udud := at("UD", "UD")
	uddiv := at("UD", "DIV-1")
	equd := at("EQF", "UD")
	eqdiv := at("EQF", "DIV-1")

	if udud.MDGlobal() < 1.4*udud.MDLocal() {
		t.Errorf("UD-UD: MDglobal %.1f%% not clearly above MDlocal %.1f%%",
			udud.MDGlobal(), udud.MDLocal())
	}
	if uddiv.MDGlobal() >= udud.MDGlobal() {
		t.Errorf("adding DIV-1 did not help: %.1f%% vs %.1f%%", uddiv.MDGlobal(), udud.MDGlobal())
	}
	if equd.MDGlobal() >= udud.MDGlobal() {
		t.Errorf("adding EQF did not help: %.1f%% vs %.1f%%", equd.MDGlobal(), udud.MDGlobal())
	}
	if !(eqdiv.MDGlobal() < uddiv.MDGlobal() && eqdiv.MDGlobal() < equd.MDGlobal()) {
		t.Errorf("EQF-DIV1 (%.1f%%) should beat either fix alone (%.1f%%, %.1f%%) — additive benefits",
			eqdiv.MDGlobal(), uddiv.MDGlobal(), equd.MDGlobal())
	}
	// With both fixes the classes end up in the same neighborhood.
	if eqdiv.MDGlobal() > 1.6*eqdiv.MDLocal()+2 {
		t.Errorf("EQF-DIV1 leaves MDglobal %.1f%% far above MDlocal %.1f%%",
			eqdiv.MDGlobal(), eqdiv.MDLocal())
	}
}

// TestShapeStageSlackDistribution checks the section 4.2.2 mechanism
// directly: under UD the first stage is released holding the entire
// remaining budget (slack at release far above later stages' residue),
// while EQF hands every stage a comparable share — with later stages
// slightly richer through inheritance ("the rich get richer").
func TestShapeStageSlackDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	ud := runShape(t, sspConfig("UD", 0.5))
	eqf := runShape(t, sspConfig("EQF", 0.5))
	if len(ud.StageSlackByIndex) != 4 || len(eqf.StageSlackByIndex) != 4 {
		t.Fatalf("expected 4 stages, got %d/%d", len(ud.StageSlackByIndex), len(eqf.StageSlackByIndex))
	}
	// UD: stage 1 sees dl(T) − ar − pex(T1): on average 5.5 slack + 3
	// later-stage service times ~ 8.5; the last stage sees only what is
	// left after queueing. The first stage must dwarf the last.
	udFirst := ud.StageSlackByIndex[0].Mean()
	udLast := ud.StageSlackByIndex[3].Mean()
	if udFirst < 1.5*udLast {
		t.Errorf("UD slack at release: stage1 %.2f vs stage4 %.2f, want stage1 to hoard", udFirst, udLast)
	}
	// EQF: stages get comparable shares; no stage sees more than ~3x
	// another's mean.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range eqf.StageSlackByIndex {
		lo = math.Min(lo, w.Mean())
		hi = math.Max(hi, w.Mean())
	}
	if hi > 3*lo {
		t.Errorf("EQF slack spread [%.2f, %.2f] too wide for equal flexibility", lo, hi)
	}
	// And the per-stage virtual misses exist for UD's later stages.
	if ud.StageMissByIndex[3].Value() <= ud.StageMissByIndex[0].Value() {
		t.Errorf("UD stage4 virtual miss %.3f not above stage1 %.3f (later stages should starve)",
			ud.StageMissByIndex[3].Value(), ud.StageMissByIndex[0].Value())
	}
}

// TestShapeModerateSlackSweetSpot checks section 4.3's observation that
// EQF's gains over UD are largest at moderate slack/load: at a very
// light load the strategies tie; at baseline EQF wins by several points.
func TestShapeModerateSlackSweetSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	gain := func(load float64) float64 {
		ud := runShape(t, sspConfig("UD", load))
		eqf := runShape(t, sspConfig("EQF", load))
		return ud.MDGlobal() - eqf.MDGlobal()
	}
	light := gain(0.1)
	moderate := gain(0.5)
	if moderate < 4 {
		t.Errorf("EQF gain at load 0.5 = %.1f pp, want several points", moderate)
	}
	if light > moderate/2 {
		t.Errorf("EQF gain at light load (%.1f pp) should be small next to moderate load (%.1f pp)",
			light, moderate)
	}
}

// TestShapePexErrorRobustness checks section 4.3's claim that random
// error in execution-time predictions does not change the basic
// conclusions: even with a full-magnitude error bound, EQF still beats
// UD clearly.
func TestShapePexErrorRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	ud := runShape(t, sspConfig("UD", 0.5))
	noisy := sspConfig("EQF", 0.5)
	noisy.PexRelErr = 1.0
	eqf := runShape(t, noisy)
	if eqf.MDGlobal() >= ud.MDGlobal()-3 {
		t.Errorf("EQF with 100%% pex error (%.1f%%) no longer clearly beats UD (%.1f%%)",
			eqf.MDGlobal(), ud.MDGlobal())
	}
}

// TestShapeRelFlexSweetSpot checks the slack dimension of the same
// section 4.3 claim: the UD−EQF gap peaks at moderate rel_flex and
// shrinks when slack is very tight (everyone misses) or very loose
// (nobody does).
func TestShapeRelFlexSweetSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	t.Parallel()
	gain := func(relFlex float64) float64 {
		udCfg := sspConfig("UD", 0.5)
		udCfg.RelFlex = relFlex
		eqfCfg := sspConfig("EQF", 0.5)
		eqfCfg.RelFlex = relFlex
		return runShape(t, udCfg).MDGlobal() - runShape(t, eqfCfg).MDGlobal()
	}
	tight := gain(0.25)
	moderate := gain(1)
	loose := gain(4)
	if moderate < 5 {
		t.Errorf("EQF gain at rel_flex 1 = %.1f pp, want several points", moderate)
	}
	if tight > moderate+1 {
		t.Errorf("EQF gain with tight slack (%.1f pp) should not exceed moderate (%.1f pp)", tight, moderate)
	}
	if loose > moderate/2 {
		t.Errorf("EQF gain with loose slack (%.1f pp) should be small next to moderate (%.1f pp)",
			loose, moderate)
	}
}
