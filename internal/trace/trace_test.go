package trace

import (
	"strings"
	"testing"

	"repro/internal/task"
)

func sampleEvent(id uint64, kind Kind, t float64) Event {
	return Event{T: t, Kind: kind, TaskID: id, Class: task.Local, Node: 2, Deadline: t + 5}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0) // unbounded
	r.Record(sampleEvent(1, Submit, 0))
	r.Record(sampleEvent(1, Dispatch, 1))
	r.Record(sampleEvent(1, Complete, 2))
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	events := r.Events()
	if len(events) != 3 || events[0].Kind != Submit || events[2].Kind != Complete {
		t.Fatalf("events = %v", events)
	}
	// Events() returns a copy.
	events[0].TaskID = 999
	if r.Events()[0].TaskID == 999 {
		t.Error("Events() exposed internal storage")
	}
}

func TestRecorderCapacity(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(sampleEvent(uint64(i), Submit, float64(i)))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (capacity)", r.Len())
	}
	if r.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped())
	}
	// Head of the run retained, not the tail.
	if r.Events()[0].TaskID != 0 || r.Events()[1].TaskID != 1 {
		t.Errorf("retained wrong events: %v", r.Events())
	}
}

func TestCountByKindAndHistory(t *testing.T) {
	r := NewRecorder(0)
	r.Record(sampleEvent(1, Submit, 0))
	r.Record(sampleEvent(2, Submit, 0))
	r.Record(sampleEvent(1, Dispatch, 1))
	r.Record(sampleEvent(1, Preempt, 2))
	r.Record(sampleEvent(1, Dispatch, 3))
	r.Record(sampleEvent(1, Complete, 4))
	r.Record(sampleEvent(2, Abort, 5))

	counts := r.CountByKind()
	if counts[Submit] != 2 || counts[Dispatch] != 2 || counts[Preempt] != 1 ||
		counts[Complete] != 1 || counts[Abort] != 1 {
		t.Errorf("counts = %v", counts)
	}
	hist := r.TaskHistory(1)
	if len(hist) != 5 {
		t.Fatalf("task 1 history has %d events, want 5", len(hist))
	}
	wantKinds := []Kind{Submit, Dispatch, Preempt, Dispatch, Complete}
	for i, k := range wantKinds {
		if hist[i].Kind != k {
			t.Errorf("history[%d] = %v, want %v", i, hist[i].Kind, k)
		}
	}
	if got := r.TaskHistory(42); got != nil {
		t.Errorf("unknown task history = %v, want nil", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{T: 1.5, Kind: Dispatch, TaskID: 7, GlobalID: 3, Stage: 1,
		Class: task.Global, Node: 4, Deadline: 9.25})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if lines[0] != "t,kind,task,global,stage,class,node,deadline" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.5,dispatch,7,3,1,global,4,9.25" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{Submit, "submit"}, {Dispatch, "dispatch"}, {Preempt, "preempt"},
		{Complete, "complete"}, {Abort, "abort"}, {Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestFromTask(t *testing.T) {
	tk := &task.Task{ID: 5, GlobalID: 2, Stage: 3, Class: task.Global, NodeID: 1, Deadline: 8}
	e := FromTask(Complete, 7.5, tk)
	if e.T != 7.5 || e.Kind != Complete || e.TaskID != 5 || e.GlobalID != 2 ||
		e.Stage != 3 || e.Class != task.Global || e.Node != 1 || e.Deadline != 8 {
		t.Errorf("FromTask = %+v", e)
	}
}
