// Package trace records per-task lifecycle events from a simulation run:
// submissions, dispatches, preemptions, completions and aborts, with
// simulation timestamps and task attributes. A Recorder is attached
// through system.Config.Trace; the resulting event log supports
// debugging ("why did this deadline miss?"), per-node Gantt-style
// reconstruction, and external analysis via CSV export.
package trace

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/task"
)

// Kind is the lifecycle event type.
type Kind uint8

// Lifecycle kinds, in causal order.
const (
	// Submit is a task entering a node's queue.
	Submit Kind = iota + 1
	// Dispatch is a task starting (or resuming) service.
	Dispatch
	// Preempt is a running task being suspended (preemptive nodes).
	Preempt
	// Complete is a task finishing service.
	Complete
	// Abort is a task discarded by a tardy policy.
	Abort
)

// String returns the kind name used in CSV output.
func (k Kind) String() string {
	switch k {
	case Submit:
		return "submit"
	case Dispatch:
		return "dispatch"
	case Preempt:
		return "preempt"
	case Complete:
		return "complete"
	case Abort:
		return "abort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle step.
type Event struct {
	// T is the simulation time of the event.
	T float64
	// Kind is the lifecycle step.
	Kind Kind
	// TaskID, GlobalID, Stage, Class and Node identify the task; see
	// task.Task.
	TaskID   uint64
	GlobalID uint64
	Stage    int
	Class    task.Class
	Node     int
	// Deadline is the task's (virtual) deadline at the time of the
	// event.
	Deadline float64
}

// Recorder accumulates events up to a capacity; past it, new events are
// counted as dropped rather than evicting old ones (the head of a run is
// usually what analyses need, and bounded memory is non-negotiable for
// million-task runs).
type Recorder struct {
	cap     int
	events  []Event
	dropped int64
}

// NewRecorder returns a recorder holding up to capacity events;
// capacity <= 0 means unbounded.
func NewRecorder(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// Record appends an event, honouring the capacity.
func (r *Recorder) Record(e Event) {
	if r.cap > 0 && len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events discarded over capacity.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Events returns a copy of the retained events in record order.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	counts := make(map[Kind]int, 5)
	for _, e := range r.events {
		counts[e.Kind]++
	}
	return counts
}

// TaskHistory returns the events of one task in record order.
func (r *Recorder) TaskHistory(taskID uint64) []Event {
	var out []Event
	for _, e := range r.events {
		if e.TaskID == taskID {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV writes the retained events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "t,kind,task,global,stage,class,node,deadline\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 96)
	for _, e := range r.events {
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, e.T, 'g', -1, 64)
		buf = append(buf, ',')
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.TaskID, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, e.GlobalID, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Stage), 10)
		buf = append(buf, ',')
		buf = append(buf, e.Class.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.Node), 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, e.Deadline, 'g', -1, 64)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// FromTask builds an event from a task at the given time.
func FromTask(kind Kind, now float64, t *task.Task) Event {
	return Event{
		T:        now,
		Kind:     kind,
		TaskID:   t.ID,
		GlobalID: t.GlobalID,
		Stage:    t.Stage,
		Class:    t.Class,
		Node:     t.NodeID,
		Deadline: t.Deadline,
	}
}
