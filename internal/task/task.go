// Package task defines the task model of Kao & Garcia-Molina (section 3.1):
// local tasks and global serial-parallel tasks with the five timing
// attributes — arrival time ar(X), deadline dl(X), slack sl(X), real
// execution time ex(X) and predicted execution time pex(X) — related by
// dl(X) = ar(X) + ex(X) + sl(X).
//
// A global task is a serial-parallel composition: [T1 T2 ... Tn] executes
// the subtasks in order, [T1 || T2 || ... || Tn] executes them in parallel
// and finishes when all branches finish. Subtasks may themselves be
// serial-parallel (complex subtasks). The Graph type in graph.go models
// this algebra; Task is the schedulable unit (a local task or a simple
// subtask) that node schedulers see.
package task

import "fmt"

// Class distinguishes the two task populations of the model. Local tasks
// execute at exactly one node; Global marks simple subtasks that belong to
// a distributed global task.
type Class int

const (
	// Local is a task generated at (and confined to) a single node.
	Local Class = iota + 1
	// Global marks a simple subtask of a distributed global task.
	Global
)

// String returns the class name used in reports ("local"/"global").
func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Task is the unit of work a node scheduler handles: either a local task
// or a simple subtask of a global task carrying its assigned virtual
// deadline. Fields follow the paper's attribute names.
type Task struct {
	// ID is unique within a run, assigned by the workload generators.
	ID uint64
	// Class is Local or Global.
	Class Class
	// GlobalID identifies the owning global task instance for Global
	// subtasks; zero for local tasks.
	GlobalID uint64
	// Stage identifies the leaf of the owning global task's graph (the
	// leaf index assigned by Graph.Flatten); -1 for local tasks.
	Stage int
	// NodeID is the node the task executes at.
	NodeID int

	// Arrival is ar(X): submission time at the node. For a subtask this
	// is when its precedence constraints released it.
	Arrival float64
	// Deadline is dl(X): the real deadline for a local task, the
	// assigned virtual deadline for a subtask.
	Deadline float64
	// FirmDeadline is the deadline after which the work is truly
	// worthless: the end-to-end deadline of the owning global task for
	// subtasks, the task's own deadline for locals. The AbortFirm
	// tardy policy discards on this instead of the virtual deadline.
	FirmDeadline float64
	// Exec is ex(X): the actual service demand. The scheduler never
	// reads it; only the node's server does.
	Exec float64
	// Pex is pex(X): the predicted service demand available to
	// deadline-assignment strategies and laxity-based schedulers.
	Pex float64

	// Start and Finish record first service start and completion;
	// filled by the node. Zero until then.
	Start  float64
	Finish float64

	// Remaining is the unserved demand, maintained by preemptive nodes
	// (an extension beyond the paper's non-preemptive model). Zero
	// means "not yet dispatched"; nodes initialize it to Exec on first
	// dispatch.
	Remaining float64

	// Seq is a monotonically increasing submission sequence number used
	// by schedulers for deterministic FIFO tie-breaking.
	Seq uint64

	// Ref is the process manager's dense index for the in-flight
	// continuation of a Global subtask: the manager's pending tables
	// are slices indexed by Ref instead of a map keyed by ID. Owned by
	// the manager; meaningless (zero) for local tasks.
	Ref int32
}

// Slack returns sl(X) = dl(X) − ar(X) − ex(X), the paper's slack relation
// inverted for a fully specified task.
func (t *Task) Slack() float64 { return t.Deadline - t.Arrival - t.Exec }

// Flexibility returns fl(X) = sl(X)/ex(X) (paper section 3.1). It reports
// +Inf-free results only for positive Exec; callers guard degenerate
// tasks.
func (t *Task) Flexibility() float64 { return t.Slack() / t.Exec }

// Laxity returns the remaining scheduling freedom at time now assuming
// the predicted demand: dl − now − pex. Minimum-laxity-first scheduling
// orders tasks by this value.
func (t *Task) Laxity(now float64) float64 { return t.Deadline - now - t.Pex }

// Missed reports whether the task finished after its deadline. It is only
// meaningful once Finish is set.
func (t *Task) Missed() bool { return t.Finish > t.Deadline }
