package task

import (
	"math"
	"strings"
	"testing"
)

func TestParseLeaf(t *testing.T) {
	g, err := Parse("fetch:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindSimple || g.Name != "fetch" || math.Abs(g.Pex-1.5) > 1e-12 {
		t.Errorf("got %+v", g)
	}
}

func TestParseLeafDefaultPex(t *testing.T) {
	g, err := Parse("step")
	if err != nil {
		t.Fatal(err)
	}
	if g.Pex != 1 {
		t.Errorf("default pex = %v, want 1", g.Pex)
	}
}

func TestParseSerial(t *testing.T) {
	g, err := Parse("[a:1 b:2 c:3]")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindSerial || len(g.Children) != 3 {
		t.Fatalf("got %v", g)
	}
	if g.AggregatePex() != 6 {
		t.Errorf("AggregatePex = %v, want 6", g.AggregatePex())
	}
}

func TestParseParallel(t *testing.T) {
	g, err := Parse("[a:1 || b:2 || c:3]")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindParallel || len(g.Children) != 3 {
		t.Fatalf("got %v", g)
	}
	if g.AggregatePex() != 3 {
		t.Errorf("AggregatePex = %v, want 3", g.AggregatePex())
	}
}

func TestParseNested(t *testing.T) {
	g, err := Parse("[gather:1 [f1:1 || f2:1.5] decide:2]")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindSerial || len(g.Children) != 3 {
		t.Fatalf("top level: got %v", g)
	}
	if g.Children[1].Kind != KindParallel {
		t.Fatalf("middle stage should be parallel: %v", g.Children[1])
	}
	if got := g.AggregatePex(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("AggregatePex = %v, want 4.5", got)
	}
	if got := g.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestParseSingleChildGroupIsSerial(t *testing.T) {
	g, err := Parse("[only:2]")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindSerial || len(g.Children) != 1 {
		t.Fatalf("got %v", g)
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	g, err := Parse("  [ a:1   ||   b:2 ]  ")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != KindParallel || len(g.Children) != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestParseScientificPex(t *testing.T) {
	g, err := Parse("x:2.5e-1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Pex-0.25) > 1e-12 {
		t.Errorf("pex = %v, want 0.25", g.Pex)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
		want string // substring of the error
	}{
		{name: "empty", give: "", want: "unexpected end"},
		{name: "empty group", give: "[]", want: "empty group"},
		{name: "unterminated", give: "[a:1 b:2", want: "unterminated"},
		{name: "mixed separators parallel first", give: "[a || b c]", want: "mixed"},
		{name: "mixed separators serial first", give: "[a b || c]", want: "mixed"},
		{name: "bad pex", give: "a:zz", want: "bad pex"},
		{name: "trailing", give: "[a b] extra", want: "trailing"},
		{name: "zero pex rejected by validate", give: "a:0", want: "non-positive"},
		{name: "lone colon", give: ":3", want: "expected subtask name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.give)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tt.give, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Parse(%q) error = %v, want substring %q", tt.give, err, tt.want)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of invalid input did not panic")
		}
	}()
	MustParse("[")
}

func TestMustParseOK(t *testing.T) {
	if g := MustParse("[a b]"); g.LeafCount() != 2 {
		t.Fatalf("MustParse returned %v", g)
	}
}
