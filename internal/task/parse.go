package task

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads the compact serial-parallel notation used throughout the
// paper and returns the task graph:
//
//	leaf       := name [":" pex]         (pex defaults to 1)
//	serial     := "[" item {" " item} "]"
//	parallel   := "[" item {"||" item} "]"
//	item       := leaf | serial | parallel
//
// Examples:
//
//	[fetch:1 filter:0.5 trade:2]          three serial stages
//	[a || b || c]                         three parallel branches
//	[gather [f1:1 || f2:1.5] decide:2]    serial with a parallel stage
//
// A bracket group must be homogeneous: either all separators are "||"
// (parallel) or none are (serial). A single-child group is serial.
func Parse(input string) (*Graph, error) {
	p := &parser{src: input}
	p.skipSpace()
	g, err := p.parseItem()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("task: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse is Parse for statically known notation; it panics on error.
func MustParse(input string) *Graph {
	g, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("task: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseItem() (*Graph, error) {
	switch c := p.peek(); {
	case c == '[':
		return p.parseGroup()
	case c == 0:
		return nil, p.errf("unexpected end of input")
	default:
		return p.parseLeaf()
	}
}

func (p *parser) parseGroup() (*Graph, error) {
	p.pos++ // consume '['
	var (
		children []*Graph
		parallel bool
		first    = true
	)
	for {
		p.skipSpace()
		switch p.peek() {
		case 0:
			return nil, p.errf("unterminated group")
		case ']':
			p.pos++
			if len(children) == 0 {
				return nil, p.errf("empty group")
			}
			if parallel {
				return Parallel(children...), nil
			}
			return Serial(children...), nil
		}
		if !first {
			// After the first item a "||" separator marks (and must
			// consistently mark) a parallel group.
			if strings.HasPrefix(p.src[p.pos:], "||") {
				if len(children) == 1 {
					parallel = true
				} else if !parallel {
					return nil, p.errf("mixed serial and parallel separators in one group")
				}
				p.pos += 2
				p.skipSpace()
			} else if parallel {
				return nil, p.errf("mixed serial and parallel separators in one group")
			}
		}
		child, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		first = false
	}
}

func (p *parser) parseLeaf() (*Graph, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ':' || c == ']' || c == '[' || unicode.IsSpace(rune(c)) || strings.HasPrefix(p.src[p.pos:], "||") {
			break
		}
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return nil, p.errf("expected subtask name")
	}
	pex := 1.0
	if p.peek() == ':' {
		p.pos++
		numStart := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
				p.pos++
				continue
			}
			break
		}
		v, err := strconv.ParseFloat(p.src[numStart:p.pos], 64)
		if err != nil {
			return nil, p.errf("bad pex for %q: %v", name, err)
		}
		pex = v
	}
	return Simple(name, pex), nil
}
