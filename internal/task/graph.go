package task

import (
	"errors"
	"fmt"
	"strings"
)

// Kind discriminates graph nodes.
type Kind int

const (
	// KindSimple is a leaf: one unit of work at one node.
	KindSimple Kind = iota + 1
	// KindSerial executes its children one after another.
	KindSerial
	// KindParallel executes its children concurrently and joins.
	KindParallel
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindSimple:
		return "simple"
	case KindSerial:
		return "serial"
	case KindParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Graph is a node of a serial-parallel task graph. Leaves (KindSimple)
// carry the per-subtask timing data; interior nodes carry only structure.
// Graphs are built with Simple, Serial and Parallel, or parsed from the
// compact notation by Parse.
type Graph struct {
	Kind     Kind
	Name     string   // leaf name; empty for groups
	Children []*Graph // nil for leaves

	// Pex is the predicted execution time of a leaf. For groups it is
	// ignored; use the Pex method, which aggregates recursively.
	Pex float64
	// Exec is the actual execution demand of a leaf, sampled by the
	// workload generator (or set by the user for the live runtime).
	Exec float64
	// NodeID is the placement of a leaf.
	NodeID int
	// LeafIndex is the position of a leaf in Leaves() order; set by
	// Flatten. -1 until then.
	LeafIndex int
}

// Simple returns a leaf subtask with the given name and predicted
// execution time. Exec defaults to pex until a workload generator samples
// the real demand.
func Simple(name string, pex float64) *Graph {
	return &Graph{Kind: KindSimple, Name: name, Pex: pex, Exec: pex, LeafIndex: -1}
}

// Serial returns a serial group [c1 c2 ... cn].
func Serial(children ...*Graph) *Graph {
	return &Graph{Kind: KindSerial, Children: children, LeafIndex: -1}
}

// Parallel returns a parallel group [c1 || c2 || ... || cn].
func Parallel(children ...*Graph) *Graph {
	return &Graph{Kind: KindParallel, Children: children, LeafIndex: -1}
}

// Validate checks structural well-formedness: every group has at least
// one child, every leaf has positive predicted execution time and no
// children.
func (g *Graph) Validate() error {
	if g == nil {
		return errors.New("task: nil graph")
	}
	switch g.Kind {
	case KindSimple:
		if len(g.Children) != 0 {
			return fmt.Errorf("task: leaf %q has children", g.Name)
		}
		if g.Pex <= 0 {
			return fmt.Errorf("task: leaf %q has non-positive pex %v", g.Name, g.Pex)
		}
		if g.Exec <= 0 {
			return fmt.Errorf("task: leaf %q has non-positive exec %v", g.Name, g.Exec)
		}
		return nil
	case KindSerial, KindParallel:
		if len(g.Children) == 0 {
			return fmt.Errorf("task: empty %v group", g.Kind)
		}
		for _, c := range g.Children {
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("task: unknown kind %v", g.Kind)
	}
}

// AggregatePex returns the predicted elapsed time of the (sub)graph: the
// leaf pex for leaves, the sum over children for serial groups and the
// maximum over children for parallel groups (branches overlap in time).
// This is the pex(·) a deadline-assignment strategy budgets with when a
// subtask is complex (paper section 6).
func (g *Graph) AggregatePex() float64 {
	switch g.Kind {
	case KindSimple:
		return g.Pex
	case KindSerial:
		sum := 0.0
		for _, c := range g.Children {
			sum += c.AggregatePex()
		}
		return sum
	case KindParallel:
		max := 0.0
		for _, c := range g.Children {
			if v := c.AggregatePex(); v > max {
				max = v
			}
		}
		return max
	default:
		return 0
	}
}

// CriticalPathExec returns the actual elapsed execution time along the
// critical path, ignoring queueing: serial children add, parallel
// children take the maximum. The workload generator uses it to set
// end-to-end deadlines (dl = ar + ex + sl) for mixed-shape global tasks.
func (g *Graph) CriticalPathExec() float64 {
	switch g.Kind {
	case KindSimple:
		return g.Exec
	case KindSerial:
		sum := 0.0
		for _, c := range g.Children {
			sum += c.CriticalPathExec()
		}
		return sum
	case KindParallel:
		max := 0.0
		for _, c := range g.Children {
			if v := c.CriticalPathExec(); v > max {
				max = v
			}
		}
		return max
	default:
		return 0
	}
}

// TotalExec returns the sum of actual execution demands over all leaves
// (the total work the graph injects into the system).
func (g *Graph) TotalExec() float64 {
	sum := 0.0
	g.Walk(func(leaf *Graph) { sum += leaf.Exec })
	return sum
}

// Depth returns the length (in stages) of the longest serial chain: 1 for
// a leaf, the sum over children for serial groups, the max for parallel
// groups. The workload generator scales global slack by this value so
// that rel_flex keeps its Table-1 meaning for mixed shapes (DESIGN.md
// section 5).
func (g *Graph) Depth() int {
	switch g.Kind {
	case KindSimple:
		return 1
	case KindSerial:
		sum := 0
		for _, c := range g.Children {
			sum += c.Depth()
		}
		return sum
	case KindParallel:
		max := 0
		for _, c := range g.Children {
			if v := c.Depth(); v > max {
				max = v
			}
		}
		return max
	default:
		return 0
	}
}

// Walk visits every leaf in left-to-right order.
func (g *Graph) Walk(visit func(leaf *Graph)) {
	if g.Kind == KindSimple {
		visit(g)
		return
	}
	for _, c := range g.Children {
		c.Walk(visit)
	}
}

// Flatten assigns LeafIndex in left-to-right order and returns the leaves.
func (g *Graph) Flatten() []*Graph {
	var leaves []*Graph
	g.Walk(func(leaf *Graph) {
		leaf.LeafIndex = len(leaves)
		leaves = append(leaves, leaf)
	})
	return leaves
}

// Index assigns LeafIndex in left-to-right order like Flatten but
// without materializing the leaf slice — the allocation-free variant for
// generators that only need the indices. It returns the leaf count.
func (g *Graph) Index() int { return g.index(0) }

func (g *Graph) index(next int) int {
	if g.Kind == KindSimple {
		g.LeafIndex = next
		return next + 1
	}
	for _, c := range g.Children {
		next = c.index(next)
	}
	return next
}

// LeafCount returns the number of simple subtasks in the graph.
func (g *Graph) LeafCount() int {
	n := 0
	g.Walk(func(*Graph) { n++ })
	return n
}

// Clone returns a deep copy of the graph. Workload generators clone a
// template shape before sampling per-instance execution times.
func (g *Graph) Clone() *Graph {
	if g == nil {
		return nil
	}
	cp := &Graph{
		Kind:      g.Kind,
		Name:      g.Name,
		Pex:       g.Pex,
		Exec:      g.Exec,
		NodeID:    g.NodeID,
		LeafIndex: g.LeafIndex,
	}
	if g.Children != nil {
		cp.Children = make([]*Graph, len(g.Children))
		for i, c := range g.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// String renders the graph in the compact notation accepted by Parse:
// leaves as "name:pex", serial groups as "[a b]" and parallel groups as
// "[a || b]".
func (g *Graph) String() string {
	var b strings.Builder
	g.render(&b)
	return b.String()
}

func (g *Graph) render(b *strings.Builder) {
	switch g.Kind {
	case KindSimple:
		fmt.Fprintf(b, "%s:%g", g.Name, g.Pex)
	case KindSerial, KindParallel:
		sep := " "
		if g.Kind == KindParallel {
			sep = " || "
		}
		b.WriteByte('[')
		for i, c := range g.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			c.render(b)
		}
		b.WriteByte(']')
	}
}
