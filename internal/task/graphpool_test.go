package task

import "testing"

func TestGraphPoolRoundTrip(t *testing.T) {
	p := &GraphPool{}
	g := p.Group(KindSerial)
	for i := 0; i < 3; i++ {
		leaf := p.Simple("t", 1)
		leaf.Exec, leaf.NodeID = 2.5, i
		g.Children = append(g.Children, leaf)
	}
	if n := g.Index(); n != 3 {
		t.Fatalf("Index = %d leaves, want 3", n)
	}
	if g.Children[2].LeafIndex != 2 {
		t.Fatalf("LeafIndex = %d, want 2", g.Children[2].LeafIndex)
	}
	root := g
	p.Release(g)
	if p.Size() != 4 {
		t.Fatalf("Size = %d after releasing 1 group + 3 leaves, want 4", p.Size())
	}

	// LIFO reuse: the next same-shape build pops each node back in its
	// old role; the group node keeps its grown children capacity.
	g2 := p.Group(KindSerial)
	if g2 != root {
		t.Fatal("group node not recycled first (LIFO order broken)")
	}
	if cap(g2.Children) < 3 {
		t.Fatalf("recycled group lost children capacity: cap = %d", cap(g2.Children))
	}
	if len(g2.Children) != 0 || g2.LeafIndex != -1 {
		t.Fatalf("recycled node not reset: %+v", g2)
	}
	leaf := p.Simple("t", 1)
	if leaf.Exec != 1 || leaf.NodeID != 0 || leaf.Kind != KindSimple {
		t.Fatalf("recycled leaf not reset: %+v", leaf)
	}
}

func TestNilGraphPoolIsValid(t *testing.T) {
	var p *GraphPool
	g := p.Group(KindParallel)
	g.Children = append(g.Children, p.Simple("a", 1), p.Simple("b", 2))
	if err := g.Validate(); err != nil {
		t.Fatalf("nil-pool graph invalid: %v", err)
	}
	p.Release(g) // must not panic
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d, want 0", p.Size())
	}
}

func TestIndexMatchesFlatten(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 1), Simple("c", 1)), Simple("d", 1))
	want := g.Clone().Flatten()
	if n := g.Index(); n != len(want) {
		t.Fatalf("Index count = %d, want %d", n, len(want))
	}
	got := g.Flatten()
	for i := range got {
		if got[i].LeafIndex != want[i].LeafIndex {
			t.Fatalf("leaf %d: Index assigned %d, Flatten assigned %d",
				i, got[i].LeafIndex, want[i].LeafIndex)
		}
	}
}
