package task

import "testing"

// FuzzParse checks that the notation parser never panics and that every
// accepted graph survives a String/Parse round trip with identical
// structure. `go test` runs the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"a",
		"a:1.5",
		"a:2.5e-1",
		"[a b c]",
		"[a || b || c]",
		"[a [b || c] d]",
		"[[a b] || [c d e] || f]",
		"[a:0 b]",
		"[a:- b]",
		"[a:1e309]", // overflows to +Inf
		"[a||b]",
		"[ a   ||  b ]",
		"[a | b]",
		"[a |||| b]",
		"][",
		"[[[[[[a]]]]]]",
		"[a:1:2]",
		"a:.5",
		"[a b || c]",
		"[x:0.0001 y:10000]",
		"[\x00]",
		"[ñ:1 ü:2]",
		// The exemplar notation used across the examples and README.
		"[a:1 [b:2 || c:3] d:1]",
		"[gather:1 [f1:1 || f2:1.5] decide:2]",
		"[fetch:1 filter:0.5 trade:2]",
		// Malformed brackets and empty groups.
		"[]",
		"[ ]",
		"[||]",
		"[a ||]",
		"[|| a]",
		"[[]]",
		"[a",
		"a]",
		"[a [b]",
		"[a]]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid graph: %v", input, err)
		}
		rendered := g.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip of %q failed: rendered %q, error %v", input, rendered, err)
		}
		if again.LeafCount() != g.LeafCount() || again.Depth() != g.Depth() {
			t.Fatalf("round trip of %q changed structure (%q)", input, rendered)
		}
		if again.String() != rendered {
			t.Fatalf("second render of %q differs: %q vs %q", input, again.String(), rendered)
		}
	})
}
