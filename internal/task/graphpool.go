package task

// GraphPool recycles Graph nodes — and, through them, their children
// slices — within a simulation replication. Every global-task arrival
// builds a fresh instance graph; at paper-scale horizons that is millions
// of short-lived nodes. The pool's free list is LIFO and Release pushes a
// parent after its children, so a shape that rebuilds the same topology
// pops nodes back in an order that reuses each node in the same role
// (group nodes keep their grown children capacity).
//
// Like task.Pool, a GraphPool is single-threaded per replication, and a
// nil *GraphPool is valid: every method falls back to plain allocation,
// which is the reference behaviour the pooled path reproduces
// bit-for-bit.
type GraphPool struct {
	free []*Graph
}

// take pops a reset node or allocates a fresh one.
func (p *GraphPool) take() *Graph {
	if p == nil || len(p.free) == 0 {
		return &Graph{LeafIndex: -1}
	}
	n := len(p.free) - 1
	g := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	return g
}

// Simple returns a pooled leaf, mirroring the Simple constructor.
func (p *GraphPool) Simple(name string, pex float64) *Graph {
	g := p.take()
	g.Kind, g.Name, g.Pex, g.Exec = KindSimple, name, pex, pex
	return g
}

// Group returns a pooled, empty group node of the given kind; the caller
// appends its children to g.Children (the recycled backing array is
// retained, so steady-state appends do not allocate).
func (p *GraphPool) Group(kind Kind) *Graph {
	g := p.take()
	g.Kind = kind
	return g
}

// Release returns g and every descendant to the pool. The caller owns
// the graph exclusively at this point: no instance, frame, or queue may
// still reference any of its nodes. Nodes are reset on release so stale
// use surfaces as zeroed data.
func (p *GraphPool) Release(g *Graph) {
	if p == nil || g == nil {
		return
	}
	for i, c := range g.Children {
		p.Release(c)
		g.Children[i] = nil
	}
	kids := g.Children[:0]
	*g = Graph{Children: kids, LeafIndex: -1}
	p.free = append(p.free, g)
}

// Size returns the number of nodes currently parked in the free list.
func (p *GraphPool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
