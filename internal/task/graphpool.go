package task

// GraphPool recycles Graph nodes — and, through them, their children
// slices — within a simulation replication. Every global-task arrival
// builds a fresh instance graph; at paper-scale horizons that is millions
// of short-lived nodes. The pool's free list is LIFO and Release pushes a
// parent after its children, so a shape that rebuilds the same topology
// pops nodes back in an order that reuses each node in the same role
// (group nodes keep their grown children capacity).
//
// Like task.Pool, a GraphPool is single-threaded per replication, and a
// nil *GraphPool is valid: every method falls back to plain allocation,
// which is the reference behaviour the pooled path reproduces
// bit-for-bit.
type GraphPool struct {
	free []*Graph
	slab []Graph  // bump-allocation chunk take carves fresh nodes from
	kids []*Graph // bump-allocation chunk EnsureKids carves child arrays from
}

// graphSlab is the number of nodes a pool allocates per slab when its
// free list runs dry; see poolSlab for the rationale. kidSlab sizes the
// children-array arena in pointers.
const (
	graphSlab = 256
	kidSlab   = 1024
)

// take pops a reset node or carves a fresh one from the current slab.
func (p *GraphPool) take() *Graph {
	if p == nil {
		return &Graph{LeafIndex: -1}
	}
	if n := len(p.free) - 1; n >= 0 {
		g := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return g
	}
	if len(p.slab) == 0 {
		p.slab = make([]Graph, graphSlab)
		for i := range p.slab {
			p.slab[i].LeafIndex = -1
		}
	}
	g := &p.slab[0]
	p.slab = p.slab[1:]
	return g
}

// Simple returns a pooled leaf, mirroring the Simple constructor.
func (p *GraphPool) Simple(name string, pex float64) *Graph {
	g := p.take()
	g.Kind, g.Name, g.Pex, g.Exec = KindSimple, name, pex, pex
	return g
}

// Group returns a pooled, empty group node of the given kind; the caller
// appends its children to g.Children (the recycled backing array is
// retained, so steady-state appends do not allocate).
func (p *GraphPool) Group(kind Kind) *Graph {
	g := p.take()
	g.Kind = kind
	return g
}

// EnsureKids guarantees g.Children can hold n children without growing,
// carving the backing array from the pool's pointer arena when the
// node's retained array is too small. Builders call it before their
// append loop so a fresh group node costs at most one arena carve
// instead of an append-doubling ladder per node. A nil pool is a no-op:
// the unpooled path keeps its plain append behaviour.
func (p *GraphPool) EnsureKids(g *Graph, n int) {
	if p == nil || cap(g.Children) >= n {
		return
	}
	if n > kidSlab {
		g.Children = make([]*Graph, 0, n)
		return
	}
	if len(p.kids) < n {
		p.kids = make([]*Graph, kidSlab)
	}
	// The three-index slice caps the array at n so a later append past n
	// reallocates instead of overwriting the arena's next carve.
	g.Children = p.kids[0:0:n]
	p.kids = p.kids[n:]
}

// Release returns g and every descendant to the pool. The caller owns
// the graph exclusively at this point: no instance, frame, or queue may
// still reference any of its nodes. Nodes are reset on release so stale
// use surfaces as zeroed data.
func (p *GraphPool) Release(g *Graph) {
	if p == nil || g == nil {
		return
	}
	for i, c := range g.Children {
		p.Release(c)
		g.Children[i] = nil
	}
	kids := g.Children[:0]
	*g = Graph{Children: kids, LeafIndex: -1}
	p.free = append(p.free, g)
}

// Size returns the number of nodes currently parked in the free list.
func (p *GraphPool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
