package task

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := &Pool{}
	a := p.Get()
	a.ID, a.Deadline, a.Remaining, a.Class = 7, 3.5, 1.25, Global
	p.Put(a)
	if p.Size() != 1 {
		t.Fatalf("Size = %d after Put, want 1", p.Size())
	}
	b := p.Get()
	if b != a {
		t.Fatal("Get did not recycle the released task")
	}
	if *b != (Task{}) {
		t.Fatalf("recycled task not zeroed: %+v", *b)
	}
	if p.Size() != 0 {
		t.Fatalf("Size = %d after Get, want 0", p.Size())
	}
}

func TestNilPoolIsValid(t *testing.T) {
	var p *Pool
	a := p.Get()
	if a == nil || *a != (Task{}) {
		t.Fatalf("nil pool Get = %+v, want fresh zero task", a)
	}
	p.Put(a) // must not panic
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d, want 0", p.Size())
	}
}

func TestPoolGetAllocatesWhenEmpty(t *testing.T) {
	p := &Pool{}
	a, b := p.Get(), p.Get()
	if a == b {
		t.Fatal("two Gets from an empty pool returned the same task")
	}
}

func TestPutNilIsNoOp(t *testing.T) {
	p := &Pool{}
	p.Put(nil)
	if p.Size() != 0 {
		t.Fatalf("Size = %d after Put(nil), want 0", p.Size())
	}
}
