package task

import (
	"math"
	"testing"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		give Class
		want string
	}{
		{Local, "local"},
		{Global, "global"},
		{Class(99), "Class(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestAttributeRelation(t *testing.T) {
	// dl = ar + ex + sl  =>  Slack() recovers sl.
	tk := Task{Arrival: 10, Exec: 2, Deadline: 10 + 2 + 3.5}
	if got := tk.Slack(); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Slack = %v, want 3.5", got)
	}
	if got := tk.Flexibility(); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("Flexibility = %v, want 1.75", got)
	}
}

func TestLaxity(t *testing.T) {
	tk := Task{Deadline: 20, Pex: 3}
	if got := tk.Laxity(12); got != 5 {
		t.Errorf("Laxity(12) = %v, want 5", got)
	}
	if got := tk.Laxity(18); got != -1 {
		t.Errorf("Laxity(18) = %v, want -1", got)
	}
}

func TestMissed(t *testing.T) {
	tk := Task{Deadline: 10}
	tk.Finish = 9.999
	if tk.Missed() {
		t.Error("task finishing before deadline reported missed")
	}
	tk.Finish = 10
	if tk.Missed() {
		t.Error("task finishing exactly at deadline reported missed")
	}
	tk.Finish = 10.001
	if !tk.Missed() {
		t.Error("task finishing after deadline not reported missed")
	}
}
