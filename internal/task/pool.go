package task

// Pool is a free list of Tasks owned by one simulation replication. The
// steady-state hot path of a long run creates and retires millions of
// short-lived tasks; recycling them through a Pool removes that allocation
// (and the GC pressure it causes) entirely once the pool has grown to the
// run's working set.
//
// A Pool is not safe for concurrent use — like the engine it feeds, it is
// single-threaded per replication; parallel replications each own a pool.
//
// A nil *Pool is valid and disables reuse: Get allocates a fresh Task and
// Put discards, which is the reference behaviour the pooled path must
// reproduce bit-for-bit (see Config.DisablePooling in internal/system and
// the pool-safety determinism tests).
type Pool struct {
	free []*Task
	slab []Task // bump-allocation chunk Get carves fresh tasks from
}

// poolSlab is the number of tasks a pool allocates per slab when its
// free list runs dry. Slab carving keeps a run's live tasks contiguous
// (better cache locality than one heap object per task) and makes the
// pool's own allocation count O(peak/poolSlab) instead of O(peak).
const poolSlab = 512

// Get returns a zeroed Task, recycled if one is available and otherwise
// carved from the pool's current slab. Callers must set every field they
// rely on; Put has already cleared the rest.
func (p *Pool) Get() *Task {
	if p == nil {
		return &Task{}
	}
	if n := len(p.free) - 1; n >= 0 {
		t := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return t
	}
	if len(p.slab) == 0 {
		p.slab = make([]Task, poolSlab)
	}
	t := &p.slab[0]
	p.slab = p.slab[1:]
	return t
}

// Put recycles a task the simulation has fully retired: no queue, engine
// event, or continuation may still reference it. The task is reset
// immediately, so use-after-release bugs surface as zeroed fields rather
// than silently stale data.
func (p *Pool) Put(t *Task) {
	if p == nil || t == nil {
		return
	}
	t.Reset()
	p.free = append(p.free, t)
}

// Size returns the number of tasks currently parked in the free list.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Reset clears every field, making the task indistinguishable from a
// freshly allocated one. Pool.Put calls it on release; generators then
// fill in the fields of the next lifecycle.
func (t *Task) Reset() { *t = Task{} }
