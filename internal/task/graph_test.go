package task

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func serialChain(pexs ...float64) *Graph {
	children := make([]*Graph, len(pexs))
	for i, p := range pexs {
		children[i] = Simple("s", p)
	}
	return Serial(children...)
}

func TestAggregatePex(t *testing.T) {
	tests := []struct {
		name string
		give *Graph
		want float64
	}{
		{name: "leaf", give: Simple("a", 2.5), want: 2.5},
		{name: "serial sums", give: serialChain(1, 2, 3), want: 6},
		{name: "parallel maxes", give: Parallel(Simple("a", 1), Simple("b", 4), Simple("c", 2)), want: 4},
		{
			name: "mixed",
			give: Serial(Simple("a", 1), Parallel(Simple("b", 2), Simple("c", 5)), Simple("d", 1)),
			want: 7,
		},
		{
			name: "nested parallel of serials",
			give: Parallel(serialChain(1, 1, 1), serialChain(2, 0.5)),
			want: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.AggregatePex(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("AggregatePex = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDepth(t *testing.T) {
	tests := []struct {
		name string
		give *Graph
		want int
	}{
		{name: "leaf", give: Simple("a", 1), want: 1},
		{name: "serial", give: serialChain(1, 1, 1, 1), want: 4},
		{name: "parallel", give: Parallel(Simple("a", 1), Simple("b", 1)), want: 1},
		{
			name: "serial with parallel stage",
			give: Serial(Simple("a", 1), Parallel(Simple("b", 1), Simple("c", 1)), Simple("d", 1)),
			want: 3,
		},
		{
			name: "parallel of unequal serials",
			give: Parallel(serialChain(1, 1, 1), serialChain(1, 1)),
			want: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Depth(); got != tt.want {
				t.Errorf("Depth = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFlattenAssignsIndices(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 1), Simple("c", 1)), Simple("d", 1))
	leaves := g.Flatten()
	if len(leaves) != 4 {
		t.Fatalf("len(leaves) = %d, want 4", len(leaves))
	}
	wantNames := []string{"a", "b", "c", "d"}
	for i, leaf := range leaves {
		if leaf.LeafIndex != i {
			t.Errorf("leaf %d has LeafIndex %d", i, leaf.LeafIndex)
		}
		if leaf.Name != wantNames[i] {
			t.Errorf("leaf %d name = %q, want %q", i, leaf.Name, wantNames[i])
		}
	}
	if g.LeafCount() != 4 {
		t.Errorf("LeafCount = %d, want 4", g.LeafCount())
	}
}

func TestTotalExec(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 2), Simple("c", 3)))
	if got := g.TotalExec(); math.Abs(got-6) > 1e-12 {
		t.Errorf("TotalExec = %v, want 6", got)
	}
}

func TestCriticalPathExec(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 2), Simple("c", 3)))
	g.Children[1].Children[0].Exec = 10 // branch b now dominates
	if got := g.CriticalPathExec(); math.Abs(got-11) > 1e-12 {
		t.Errorf("CriticalPathExec = %v, want 11", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    *Graph
		wantErr bool
	}{
		{name: "ok leaf", give: Simple("a", 1)},
		{name: "ok mixed", give: Serial(Simple("a", 1), Parallel(Simple("b", 1), Simple("c", 1)))},
		{name: "nil", give: nil, wantErr: true},
		{name: "empty serial", give: Serial(), wantErr: true},
		{name: "empty parallel", give: Parallel(), wantErr: true},
		{name: "zero pex", give: Simple("a", 0), wantErr: true},
		{name: "negative pex", give: Simple("a", -1), wantErr: true},
		{name: "nested empty", give: Serial(Simple("a", 1), Parallel()), wantErr: true},
		{name: "leaf with children", give: &Graph{Kind: KindSimple, Name: "x", Pex: 1, Exec: 1, Children: []*Graph{Simple("y", 1)}}, wantErr: true},
		{name: "unknown kind", give: &Graph{Kind: Kind(42)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 2), Simple("c", 3)))
	cp := g.Clone()
	cp.Children[0].Exec = 99
	cp.Children[1].Children[0].Pex = 77
	if g.Children[0].Exec == 99 || g.Children[1].Children[0].Pex == 77 {
		t.Error("Clone shares leaf storage with the original")
	}
	if g.String() == "" || cp.LeafCount() != g.LeafCount() {
		t.Error("clone structure differs")
	}
	if (*Graph)(nil).Clone() != nil {
		t.Error("nil.Clone() should be nil")
	}
}

// randomGraph builds a random serial-parallel graph with leaf pex in
// (0, 10]. Shared by property tests below.
func randomGraph(r *rng.Source, depth int) *Graph {
	if depth <= 0 || r.IntN(3) == 0 {
		return Simple("l", r.Uniform(0.01, 10))
	}
	n := 1 + r.IntN(3)
	children := make([]*Graph, n)
	for i := range children {
		children[i] = randomGraph(r, depth-1)
	}
	if r.IntN(2) == 0 {
		return Serial(children...)
	}
	return Parallel(children...)
}

func TestPropertyAggregateBounds(t *testing.T) {
	r := rng.New(1234)
	for i := 0; i < 500; i++ {
		g := randomGraph(r, 4)
		agg := g.AggregatePex()
		total := 0.0
		maxLeaf := 0.0
		g.Walk(func(l *Graph) {
			total += l.Pex
			if l.Pex > maxLeaf {
				maxLeaf = l.Pex
			}
		})
		// Critical-path pex is at most the total work and at least the
		// largest single leaf.
		if agg > total+1e-9 || agg < maxLeaf-1e-9 {
			t.Fatalf("graph %s: AggregatePex %v outside [maxLeaf=%v, total=%v]",
				g, agg, maxLeaf, total)
		}
		if g.Depth() < 1 || g.Depth() > g.LeafCount() {
			t.Fatalf("graph %s: Depth %d outside [1, %d]", g, g.Depth(), g.LeafCount())
		}
	}
}

func TestPropertyStringParseRoundTrip(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 300; i++ {
		g := randomGraph(r, 3)
		parsed, err := Parse(g.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", g.String(), err)
		}
		if parsed.String() != g.String() {
			t.Fatalf("round trip changed notation: %q -> %q", g.String(), parsed.String())
		}
		if parsed.LeafCount() != g.LeafCount() || parsed.Depth() != g.Depth() {
			t.Fatalf("round trip changed structure for %q", g.String())
		}
	}
}

func TestPropertySerialComposition(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		pexs := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			pexs[i] = 0.01 + math.Abs(math.Mod(v, 100))
			sum += pexs[i]
		}
		g := serialChain(pexs...)
		return math.Abs(g.AggregatePex()-sum) < 1e-9 && g.Depth() == len(pexs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
