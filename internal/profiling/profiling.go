// Package profiling wires the -cpuprofile/-memprofile flags of the CLIs
// to runtime/pprof, so paper-scale runs can be profiled without editing
// code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables CPU profiling immediately (when cpuPath is non-empty)
// and returns a stop function that finishes the CPU profile and, if
// memPath is non-empty, writes an allocation profile taken at exit.
// Profile-file errors fail up front: a silently missing profile defeats
// the point of asking for one. For the same reason stop returns an
// error when the exit heap profile cannot be written — callers fold it
// into their exit status instead of discovering a truncated profile
// later.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // flush garbage so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
