// Package profiling wires the -cpuprofile/-memprofile flags of the CLIs
// to runtime/pprof, so paper-scale runs can be profiled without editing
// code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables CPU profiling immediately (when cpuPath is non-empty)
// and returns a stop function that finishes the CPU profile and, if
// memPath is non-empty, writes an allocation profile taken at exit.
// Profile-file errors fail up front: a silently missing profile defeats
// the point of asking for one.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
