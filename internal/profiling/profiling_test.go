package profiling

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStartWritesProfiles: both profiles land on disk non-empty and
// stop reports success.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestStartNoopWhenUnset: empty paths produce a working no-op stop.
func TestStartNoopWhenUnset(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestStartBadCPUPathFailsUpFront: an uncreatable CPU profile path is an
// immediate error, not a silent missing profile.
func TestStartBadCPUPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
}

// TestStopSurfacesMemProfileError: the mem profile is written at stop
// time, so its failure must come back through stop's error — callers
// fold it into their exit status.
func TestStopSurfacesMemProfileError(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	serr := stop()
	if serr == nil {
		t.Fatal("want error for uncreatable mem profile path")
	}
	if !strings.Contains(serr.Error(), "memprofile") {
		t.Fatalf("error %q does not identify the mem profile", serr)
	}
}
