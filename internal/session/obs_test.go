package session

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestProgressMonotonicPool pins the WithProgress contract on the
// in-process pool: done-counts increase strictly by one, total never
// changes, and the final call reports done == total.
func TestProgressMonotonicPool(t *testing.T) {
	const reps = 8
	cfg := shortCfg(1200)
	var (
		mu    sync.Mutex
		dones []int
	)
	s := New(WithParallelism(4), WithProgress(func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != reps {
			t.Errorf("progress total = %d, want %d", total, reps)
		}
		dones = append(dones, done)
	}))
	defer s.Close()
	res, err := s.Run(context.Background(), Job{Config: cfg, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != reps {
		t.Fatalf("runs = %d, want %d", len(res.Runs), reps)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != reps {
		t.Fatalf("progress fired %d times, want %d", len(dones), reps)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done-counts %v: position %d is %d, want %d", dones, i, d, i+1)
		}
	}
}

// TestProgressExactPrefixOnCancelPool: on the in-process pool a
// cancelled run's progress count equals the returned prefix exactly —
// OnResult fires once per finished replication, never for abandoned
// ones.
func TestProgressExactPrefixOnCancelPool(t *testing.T) {
	cfg := shortCfg(1500)
	var (
		mu    sync.Mutex
		fired int
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(WithParallelism(2), WithProgress(func(done, total int) {
		mu.Lock()
		fired = done
		mu.Unlock()
		if done >= 3 {
			cancel()
		}
	}))
	defer s.Close()
	res, err := s.Run(ctx, Job{Config: cfg, Reps: 32})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled run did not return a partial result")
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != len(res.Runs) {
		t.Fatalf("progress reported %d completions, result has %d runs", fired, len(res.Runs))
	}
}

// TestSnapshotAccounting pins Session.Snapshot after a finished job:
// job/replication totals, merged engine counters, warm-vs-cold pool
// gauges across two jobs, and an in-flight gauge back at zero.
func TestSnapshotAccounting(t *testing.T) {
	cfg := shortCfg(1200)
	const reps = 4
	s := New(WithParallelism(2))
	defer s.Close()
	for job := 0; job < 2; job++ {
		if _, err := s.Run(context.Background(), Job{Config: cfg, Reps: reps}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap.Session.JobsStarted != 2 || snap.Session.JobsFinished != 2 {
		t.Fatalf("jobs started/finished = %d/%d, want 2/2", snap.Session.JobsStarted, snap.Session.JobsFinished)
	}
	if snap.Session.ReplicationsCompleted != 2*reps {
		t.Fatalf("replications completed = %d, want %d", snap.Session.ReplicationsCompleted, 2*reps)
	}
	if snap.Session.ReplicationsInFlight != 0 {
		t.Fatalf("replications in flight = %d after all jobs returned", snap.Session.ReplicationsInFlight)
	}
	if snap.Engine.EventsFired == 0 || snap.Engine.EventsScheduled < snap.Engine.EventsFired {
		t.Fatalf("engine totals implausible: %+v", snap.Engine)
	}
	if snap.Engine.TasksCompleted+snap.Engine.TasksAborted > snap.Engine.TasksSubmitted {
		t.Fatalf("completed+aborted > submitted: %+v", snap.Engine)
	}
	p := snap.Session.Pool
	if p.ColdAcquires == 0 {
		t.Fatal("first job never cold-started a workspace")
	}
	if p.WarmAcquires == 0 {
		t.Fatal("second job never reused a warm workspace")
	}
	if p.BusySeconds <= 0 {
		t.Fatalf("pool busy seconds = %v, want > 0", p.BusySeconds)
	}
	if snap.Distrib != nil {
		t.Fatal("in-process backend reported distrib stats")
	}
}

// TestSnapshotEngineTotalsMatchRuns: the session's merged engine
// counters equal the sum of the per-replication Metrics.Engine values it
// returned — instrumentation neither drops nor double-counts.
func TestSnapshotEngineTotalsMatchRuns(t *testing.T) {
	cfg := shortCfg(1500)
	s := New(WithParallelism(3))
	defer s.Close()
	res, err := s.Run(context.Background(), Job{Config: cfg, Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	var want struct{ scheduled, fired, submitted uint64 }
	for _, m := range res.Runs {
		want.scheduled += m.Engine.EventsScheduled
		want.fired += m.Engine.EventsFired
		want.submitted += m.Engine.TasksSubmitted
	}
	snap := s.Snapshot()
	if snap.Engine.EventsScheduled != want.scheduled ||
		snap.Engine.EventsFired != want.fired ||
		snap.Engine.TasksSubmitted != want.submitted {
		t.Fatalf("snapshot engine totals %+v diverge from summed runs %+v", snap.Engine, want)
	}
}

// TestSnapshotDuringStream: instrument() hooks Stream too — after a
// drained stream the session's totals cover its replications.
func TestSnapshotDuringStream(t *testing.T) {
	cfg := shortCfg(1200)
	s := New(WithParallelism(2))
	defer s.Close()
	st, err := s.Stream(context.Background(), Job{Config: cfg, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range st.Items() {
		n++
	}
	if _, err := st.Result(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Session.ReplicationsCompleted != uint64(n) || n != 3 {
		t.Fatalf("stream completed %d items but snapshot says %d", n, snap.Session.ReplicationsCompleted)
	}
	if snap.Session.JobsFinished != 1 || snap.Session.ReplicationsInFlight != 0 {
		t.Fatalf("post-stream gauges: %+v", snap.Session)
	}
}
