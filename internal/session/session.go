// Package session is the unified run layer of the reproduction: every
// public entry point — single simulations, replicated runs, scenario
// runs, experiment sweep cells, both CLIs — executes through a Session.
//
// A Session owns the execution resources that are worth keeping warm
// between calls: a pool of per-worker system.Workspaces (engine, task
// pools, ready queues, node group, and reconfigurable workload sources),
// leased to workers for the duration of a batch and returned afterwards.
// A Job describes what to run — a configuration, an optional scenario,
// and a replication count — and functional options (WithParallelism,
// WithProgress, WithTrace, WithEventQueue, WithPoolingDisabled) replace
// the positional arguments of the pre-Session free functions; the same
// options are accepted by New (session-wide defaults) and by each call
// (per-run overrides).
//
// Every run method takes a context.Context, and cancellation is
// deterministic-safe: replications are claimed in seed order and a
// claimed replication always runs to completion, so the partial result
// of a cancelled run is the exact seed prefix of the full run — each
// finished replication's metrics are bit-identical to the uncancelled
// run's, and the result says exactly which seeds finished.
//
// The Backend interface is the seam a distributed runner plugs into: the
// in-process Pool is today's only implementation, executing shards on
// the PR-1 worker pool with warm workspaces; a future process- or
// machine-sharded backend implements the same one-method contract and
// everything above it (Session, streaming, experiments, CLIs) carries
// over unchanged.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/trace"
)

// Job describes one unit of replicated simulation work: a configuration,
// an optional scenario to drive it with, and the number of independent
// replications. Replication i runs with seed Config.Seed + i; a Reps of
// zero means one replication.
type Job struct {
	// Config is the model configuration shared by every replication
	// (Config.Seed seeds the first one).
	Config system.Config
	// Scenario, when non-nil, makes every replication time-varying and
	// attaches per-window series metrics; it overrides Config.Scenario.
	Scenario *scenario.Scenario
	// Reps is the replication count; 0 runs a single replication.
	Reps int
}

// reps resolves the replication count.
func (j Job) reps() (int, error) {
	if j.Reps < 0 {
		return 0, fmt.Errorf("session: job reps = %d, want >= 0", j.Reps)
	}
	if j.Reps == 0 {
		return 1, nil
	}
	return j.Reps, nil
}

// seeds resolves the replication count and lists the job's replication
// seeds. A job whose range Config.Seed .. Config.Seed+reps-1 does not
// fit in uint64 is rejected: silent wraparound would rerun seeds 0, 1,
// ... and hand the backend duplicate replications presented as
// independent ones.
func (j Job) seeds() ([]uint64, error) {
	reps, err := j.reps()
	if err != nil {
		return nil, err
	}
	if base := j.Config.Seed; base > ^uint64(0)-uint64(reps-1) {
		return nil, fmt.Errorf("session: seed range %d+%d wraps around uint64; lower Config.Seed or Reps", base, reps)
	}
	return seedRange(j.Config.Seed, reps), nil
}

// config resolves the effective per-replication configuration.
func (j Job) config(o options) system.Config {
	cfg := j.Config
	if j.Scenario != nil {
		cfg.Scenario = j.Scenario
	}
	if o.queueSet {
		cfg.EventQueue = o.queue
	}
	if o.trace != nil {
		cfg.Trace = o.trace
	}
	if o.noPooling {
		cfg.DisablePooling = true
	}
	return cfg
}

// options is the resolved option set of one call.
type options struct {
	parallelism int
	progress    func(done, total int)
	trace       *trace.Recorder
	queue       sim.QueueKind
	queueSet    bool
	noPooling   bool
}

// Option configures a Session (as a default for every call) or a single
// run (overriding the session default).
type Option func(*options)

// WithParallelism bounds the worker pool: 0 (the default) uses all
// cores, 1 forces the sequential path. Results are bit-identical at
// every setting — each replication owns its seed-derived RNG substreams
// — so parallelism only changes wall-clock time.
func WithParallelism(n int) Option { return func(o *options) { o.parallelism = n } }

// WithProgress observes batch completion: fn is called after each
// finished replication with the number done and the total. It may be
// called concurrently from worker goroutines and must be safe for that.
func WithProgress(fn func(done, total int)) Option { return func(o *options) { o.progress = fn } }

// WithTrace attaches a lifecycle-event recorder to every replication.
// A recorder is shared mutable state across replications, so tracing
// forces the sequential path exactly as SimConfig.Trace always has.
func WithTrace(rec *trace.Recorder) Option { return func(o *options) { o.trace = rec } }

// WithEventQueue pins the engine's pending-event structure (heap,
// ladder, or auto promotion). Results are byte-identical across kinds.
func WithEventQueue(kind sim.QueueKind) Option {
	return func(o *options) { o.queue, o.queueSet = kind, true }
}

// WithPoolingDisabled runs every replication on the pure allocation
// path (no object reuse, workspaces ignored): the reference path the
// pooled one is tested against. Results are bit-identical either way.
func WithPoolingDisabled() Option { return func(o *options) { o.noPooling = true } }

// Shard is the unit of work a Backend executes: one effective
// configuration (scenario and trace already attached) and a run of
// seeds, one replication per seed, results index-aligned with Seeds.
type Shard struct {
	// Config is the per-replication configuration; Config.Seed is
	// ignored in favour of Seeds[i].
	Config system.Config
	// Seeds lists the replication seeds in result order.
	Seeds []uint64
	// Parallelism bounds the backend's worker fan-out (0 = backend
	// default, 1 = sequential).
	Parallelism int
	// OnResult, when non-nil, is called as each replication finishes
	// with its index within Seeds and its metrics — possibly
	// concurrently from worker goroutines, and in completion order, not
	// seed order. Streaming and progress reporting hang off this hook.
	OnResult func(i int, m *system.Metrics)
}

// ShardResult is a Backend's answer: per-replication metrics aligned
// with Shard.Seeds. Completed is the length of the finished seed prefix;
// it equals len(Metrics) == len(Seeds) unless the run was cancelled, in
// which case Metrics[i] is nil for i >= Completed.
type ShardResult struct {
	Metrics   []*system.Metrics
	Completed int
}

// Backend executes shards. The in-process implementation is Pool; a
// distributed runner implements the same contract over remote workers.
// Run returns the shard's results in seed order. On cancellation it
// returns the completed seed prefix together with ctx's error; any
// other error invalidates the whole shard.
type Backend interface {
	Run(ctx context.Context, shard Shard) (ShardResult, error)
}

// Pool is the in-process Backend: shards fan out on a bounded worker
// pool, and each worker leases a warm system.Workspace from the pool's
// free list for the duration of the shard, so consecutive shards reuse
// engines, task pools, queues, and workload sources across calls. A Pool
// is safe for concurrent Run calls; workspaces are never shared between
// concurrent shards.
type Pool struct {
	mu     sync.Mutex
	free   []*system.Workspace
	closed bool

	// Reuse gauges: leases served warm (recycled workspace) vs cold
	// (fresh allocation), counted under mu on the lease path (once per
	// worker per shard, not per replication). busyNanos accumulates the
	// wall-clock time workers spent inside RunWith; atomic because
	// workers report concurrently.
	warm, cold uint64
	busyNanos  atomic.Int64
}

// NewPool returns an empty pool; workspaces are created on demand.
func NewPool() *Pool { return &Pool{} }

// acquire leases a workspace (creating one if the free list is empty).
func (p *Pool) acquire() *system.Workspace {
	// Leasing is infallible, so this seam serves the timing faults:
	// delay simulates lease contention, hang a stuck worker (which, in
	// a shard-worker process, is what heartbeat liveness must catch).
	_, _ = failpoint.Inject("session/pool-acquire")
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.warm++
		return ws
	}
	p.cold++
	return system.NewWorkspace()
}

// PoolStats reports the pool's cumulative reuse gauges. Sessions expose
// it through Snapshot; worker processes ship it home in done frames.
func (p *Pool) PoolStats() obs.PoolStats {
	p.mu.Lock()
	warm, cold := p.warm, p.cold
	p.mu.Unlock()
	return obs.PoolStats{
		WarmAcquires: warm,
		ColdAcquires: cold,
		BusySeconds:  time.Duration(p.busyNanos.Load()).Seconds(),
	}
}

// release returns a leased workspace to the free list (dropping it if
// the pool was closed while the lease was out).
func (p *Pool) release(ws *system.Workspace) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.free = append(p.free, ws)
}

// Close drops every warm workspace. Shards already running finish
// normally; their workspaces are discarded on release.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed, p.free = true, nil
}

// Run implements Backend on the PR-1 worker pool. A shared
// Config.Trace recorder is cross-replication mutable state, so tracing
// forces the sequential path (as system.RunReplicationsParallel always
// has).
func (p *Pool) Run(ctx context.Context, shard Shard) (ShardResult, error) {
	par := shard.Parallelism
	if shard.Config.Trace != nil {
		par = 1
	}
	run := runner.New(par)
	metrics := make([]*system.Metrics, len(shard.Seeds))
	leases := make([]*system.Workspace, run.Workers())
	defer func() {
		for _, ws := range leases {
			if ws != nil {
				p.release(ws)
			}
		}
	}()
	completed, err := run.RunWorkersContext(ctx, len(shard.Seeds), func(worker, i int) error {
		ws := leases[worker]
		if ws == nil {
			ws = p.acquire()
			leases[worker] = ws
		}
		cfg := shard.Config
		cfg.Seed = shard.Seeds[i]
		started := time.Now()
		m, rerr := system.RunWith(cfg, ws)
		p.busyNanos.Add(int64(time.Since(started)))
		if rerr != nil {
			return rerr
		}
		metrics[i] = m
		if shard.OnResult != nil {
			shard.OnResult(i, m)
		}
		return nil
	})
	if err != nil && !isCancellation(err) {
		// A replication failed: the shard has no usable prefix.
		return ShardResult{}, err
	}
	return ShardResult{Metrics: metrics, Completed: completed}, err
}

// Session is the stateful entry point of the run API: construction
// resolves the default options, and the warm workspace pool (or a
// caller-provided Backend) persists across every Run, Stream, and
// experiment sweep issued through it. Create one Session per logical
// client and reuse it; a Session is safe for concurrent calls.
type Session struct {
	defaults options
	backend  Backend
	pool     *Pool // non-nil when backend is the owned in-process pool

	mu     sync.Mutex
	closed bool

	// Run-layer metrics, accumulated by instrument() around every Run
	// and Stream: engine counters merged across finished replications,
	// job/replication totals, and the in-flight gauge. All cold-path —
	// obsMu is taken once per replication completion, never during
	// event dispatch.
	obsMu        sync.Mutex
	engineTotals obs.EngineStats
	jobsStarted  uint64
	jobsFinished uint64
	repsDone     uint64
	inFlight     atomic.Int64
}

// New returns a Session running on the in-process Pool backend with the
// given default options.
func New(opts ...Option) *Session {
	p := NewPool()
	s := NewWithBackend(p, opts...)
	s.pool = p
	return s
}

// NewWithBackend returns a Session running every job through b — the
// seam a distributed runner plugs into. The options become the session
// defaults exactly as with New.
func NewWithBackend(b Backend, opts ...Option) *Session {
	s := &Session{backend: b}
	for _, opt := range opts {
		opt(&s.defaults)
	}
	return s
}

// Close releases the session's warm workspaces (for the in-process
// backend) and marks the session unusable; subsequent calls fail. Runs
// already in flight finish normally.
func (s *Session) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.pool != nil {
		s.pool.Close()
	}
	return nil
}

// resolve merges per-call options over the session defaults and checks
// liveness.
func (s *Session) resolve(opts []Option) (options, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return options{}, fmt.Errorf("session: closed")
	}
	o := s.defaults
	for _, opt := range opts {
		opt(&o)
	}
	return o, nil
}

// Result is a completed (or cancelled) job: per-replication metrics in
// seed order plus the replication-level aggregates.
type Result struct {
	// Runs holds the finished replications' metrics in seed order. For a
	// cancelled job this is the finished seed prefix.
	Runs []*system.Metrics
	// Seeds lists the seeds that finished, aligned with Runs.
	Seeds []uint64
	// Partial reports that cancellation cut the job short: Runs covers a
	// strict prefix of the requested seeds.
	Partial bool
	// LocalMD and GlobalMD estimate the class miss percentages across
	// Runs with 95% confidence intervals.
	LocalMD  stats.Estimate
	GlobalMD stats.Estimate
	// Series is the scenario time series merged across Runs in seed
	// order; nil unless the job had a scenario. The merged CSV is
	// byte-identical at every parallelism level.
	Series *scenario.Series
}

// Replication converts the result to the legacy system.Replication
// shape used by the deprecated free functions.
func (r *Result) Replication() *system.Replication {
	return &system.Replication{Runs: r.Runs, LocalMD: r.LocalMD, GlobalMD: r.GlobalMD}
}

// Run executes the job and blocks until it finishes or ctx ends it
// early. Cancellation is deterministic-safe: replications are claimed in
// seed order and never interrupted mid-run, so on cancellation Run
// returns the finished seed prefix as a valid partial Result — marked
// Partial, listing exactly the seeds that finished — alongside ctx's
// error. Any other error returns a nil Result: Run surfaced no
// intermediate results, so there is no prefix to stand behind (Stream,
// which has already emitted items, instead returns the emitted prefix
// as a Partial result alongside the error).
func (s *Session) Run(ctx context.Context, job Job, opts ...Option) (*Result, error) {
	o, err := s.resolve(opts)
	if err != nil {
		return nil, err
	}
	seeds, err := job.seeds()
	if err != nil {
		return nil, err
	}
	shard := Shard{
		Config:      job.config(o),
		Seeds:       seeds,
		Parallelism: o.parallelism,
	}
	if o.progress != nil {
		shard.OnResult = progressHook(o.progress, len(seeds))
	}
	if _, ferr := failpoint.Inject("session/backend-run"); ferr != nil {
		return nil, ferr
	}
	finish := s.instrument(&shard)
	res, err := s.backend.Run(ctx, shard)
	finish()
	if err != nil && !isCancellation(err) {
		return nil, err
	}
	out, aerr := aggregate(shard, res)
	if aerr != nil {
		return nil, aerr
	}
	return out, err
}

// instrument wraps shard.OnResult with the session's run-layer
// accounting — job and in-flight gauges up front, per-replication
// engine-counter merges as results land — and returns the finish
// function to call once the backend's Run returns. OnResult fires at
// most once per seed index on every backend (the multi-process
// coordinator dedups chunk re-runs), so the totals count each
// replication exactly once even across worker deaths.
func (s *Session) instrument(shard *Shard) (finish func()) {
	total := int64(len(shard.Seeds))
	s.obsMu.Lock()
	s.jobsStarted++
	s.obsMu.Unlock()
	s.inFlight.Add(total)
	var seen atomic.Int64
	prev := shard.OnResult
	shard.OnResult = func(i int, m *system.Metrics) {
		seen.Add(1)
		s.inFlight.Add(-1)
		s.obsMu.Lock()
		s.engineTotals.Merge(m.Engine)
		s.repsDone++
		s.obsMu.Unlock()
		if prev != nil {
			prev(i, m)
		}
	}
	return func() {
		// Replications a cancelled or failed run never got to leave the
		// in-flight gauge here.
		s.inFlight.Add(seen.Load() - total)
		s.obsMu.Lock()
		s.jobsFinished++
		s.obsMu.Unlock()
	}
}

// PoolStatser is the optional Backend facet for workspace-pool gauges;
// the in-process Pool implements it, and the multi-process coordinator
// aggregates its workers' pools.
type PoolStatser interface {
	PoolStats() obs.PoolStats
}

// DistribStatser is the optional Backend facet for multi-process
// coordinator statistics (per-worker sub-shards, frames, deaths).
type DistribStatser interface {
	DistribStats() *obs.DistribStats
}

// NetStatser is the optional Backend facet for network-transport
// statistics (connections, reconnects, wire traffic).
type NetStatser interface {
	NetStats() obs.NetStats
}

// CacheStatser is the optional Backend facet for shard-result-cache
// statistics (hits, misses, evictions, footprint).
type CacheStatser interface {
	CacheStats() obs.CacheStats
}

// Unwrapper is implemented by middleware backends (the shard-result
// cache) that delegate execution to an inner Backend; Snapshot follows
// the chain so inner facets stay visible through the wrapper.
type Unwrapper interface {
	Unwrap() Backend
}

// Snapshot returns a point-in-time view of the session's runtime
// metrics: engine counters accumulated over every finished replication,
// job and in-flight gauges, the backend's pool stats, and — on the
// multi-process backend — per-worker coordinator stats. It is safe to
// call concurrently with runs (the /metrics endpoint scrapes it live)
// and never touches the simulation hot path.
func (s *Session) Snapshot() obs.Snapshot {
	var snap obs.Snapshot
	s.obsMu.Lock()
	snap.Engine = s.engineTotals
	snap.Session = obs.SessionStats{
		JobsStarted:           s.jobsStarted,
		JobsFinished:          s.jobsFinished,
		ReplicationsCompleted: s.repsDone,
	}
	s.obsMu.Unlock()
	snap.Session.ReplicationsInFlight = s.inFlight.Load()
	CollectBackendStats(s.backend, &snap)
	return snap
}

// CollectBackendStats fills snap's backend-derived fields (pool,
// distrib, net, cache) from b, following Unwrap chains so a middleware
// backend (the shard-result cache) does not hide the facets of the
// transport it wraps. The outermost implementation of each facet wins.
func CollectBackendStats(b Backend, snap *obs.Snapshot) {
	var (
		poolSet bool
	)
	for b != nil {
		if ps, ok := b.(PoolStatser); ok && !poolSet {
			snap.Session.Pool = ps.PoolStats()
			poolSet = true
		}
		if ds, ok := b.(DistribStatser); ok && snap.Distrib == nil {
			snap.Distrib = ds.DistribStats()
		}
		if ns, ok := b.(NetStatser); ok && snap.Net == nil {
			v := ns.NetStats()
			snap.Net = &v
		}
		if cs, ok := b.(CacheStatser); ok && snap.Cache == nil {
			v := cs.CacheStats()
			snap.Cache = &v
		}
		u, ok := b.(Unwrapper)
		if !ok {
			break
		}
		b = u.Unwrap()
	}
}

// isCancellation reports whether err is a context cancellation or
// deadline rather than a run failure — the one error class that still
// carries a valid (partial) result.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// seedRange lists reps consecutive seeds from base.
func seedRange(base uint64, reps int) []uint64 {
	seeds := make([]uint64, reps)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// progressHook adapts a progress callback to the OnResult hook with a
// shared completion counter.
func progressHook(progress func(done, total int), total int) func(int, *system.Metrics) {
	var mu sync.Mutex
	done := 0
	return func(int, *system.Metrics) {
		mu.Lock()
		done++
		d := done
		mu.Unlock()
		progress(d, total)
	}
}

// aggregate builds a Result from a shard's (possibly partial) outcome.
func aggregate(shard Shard, res ShardResult) (*Result, error) {
	runs := res.Metrics[:res.Completed]
	out := &Result{
		Runs:    runs,
		Seeds:   shard.Seeds[:res.Completed],
		Partial: res.Completed < len(shard.Seeds),
	}
	if len(runs) > 0 {
		local := make([]float64, len(runs))
		global := make([]float64, len(runs))
		for i, m := range runs {
			local[i] = m.MDLocal()
			global[i] = m.MDGlobal()
		}
		out.LocalMD = stats.MeanCI(local)
		out.GlobalMD = stats.MeanCI(global)
	}
	if shard.Config.Scenario != nil && len(runs) > 0 {
		out.Series = runs[0].Series.Clone()
		for _, m := range runs[1:] {
			if err := out.Series.Merge(m.Series); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
