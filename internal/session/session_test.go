package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/system"
	"repro/internal/trace"
)

// shortCfg returns a fast baseline configuration.
func shortCfg(horizon float64) system.Config {
	cfg := system.Baseline()
	cfg.Horizon = horizon
	return cfg
}

// metricsSig fingerprints a run's aggregate counters and ratios.
func metricsSig(m *system.Metrics) string {
	return fmt.Sprintf("lg=%d ld=%d gg=%d gd=%d mdl=%v mdg=%v lr=%v gr=%v",
		m.LocalGenerated, m.LocalDone, m.GlobalGenerated, m.GlobalDone,
		m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(), m.GlobalResponse.Mean())
}

// TestRunMatchesLegacyReplications pins the compatibility contract: a
// session job equals system.RunReplicationsParallel run for run and in
// its aggregates, at sequential and parallel settings.
func TestRunMatchesLegacyReplications(t *testing.T) {
	cfg := shortCfg(2500)
	const reps = 4
	want, err := system.RunReplicationsParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		s := New(WithParallelism(par))
		res, err := s.Run(context.Background(), Job{Config: cfg, Reps: reps})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		s.Close()
		if res.Partial || len(res.Runs) != reps {
			t.Fatalf("parallelism %d: partial=%t runs=%d", par, res.Partial, len(res.Runs))
		}
		for i := range res.Runs {
			if got, w := metricsSig(res.Runs[i]), metricsSig(want.Runs[i]); got != w {
				t.Fatalf("parallelism %d rep %d diverged:\n got %s\nwant %s", par, i, got, w)
			}
		}
		if res.LocalMD != want.LocalMD || res.GlobalMD != want.GlobalMD {
			t.Fatalf("parallelism %d: estimates diverged: %+v vs %+v", par, res.LocalMD, want.LocalMD)
		}
	}
}

// TestStreamMatchesBatch pins the streaming contract: items arrive in
// seed order, and their concatenation — metrics and merged scenario
// series alike — is bit-identical to the batch result.
func TestStreamMatchesBatch(t *testing.T) {
	cfg := shortCfg(6000)
	sc, err := scenario.Preset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Config: cfg, Scenario: sc, Reps: 5}

	s := New(WithParallelism(4))
	defer s.Close()
	batch, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Stream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	for it := range st.Items() {
		items = append(items, it)
	}
	streamed, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}

	if len(items) != len(batch.Runs) {
		t.Fatalf("streamed %d items, batch ran %d", len(items), len(batch.Runs))
	}
	for i, it := range items {
		if it.Index != i || it.Seed != cfg.Seed+uint64(i) {
			t.Fatalf("item %d out of seed order: index=%d seed=%d", i, it.Index, it.Seed)
		}
		if got, want := metricsSig(it.Metrics), metricsSig(batch.Runs[i]); got != want {
			t.Fatalf("item %d diverged from batch:\n got %s\nwant %s", i, got, want)
		}
	}
	var batchCSV, streamCSV strings.Builder
	if err := batch.Series.WriteCSV(&batchCSV); err != nil {
		t.Fatal(err)
	}
	if err := streamed.Series.WriteCSV(&streamCSV); err != nil {
		t.Fatal(err)
	}
	if batchCSV.String() != streamCSV.String() {
		t.Fatal("merged series CSV differs between Stream and Run")
	}
}

// TestCancelMidRunIsSeedPrefixDeterministic is the cancellation
// acceptance test: cancelling mid-job yields a Partial result covering
// an exact seed prefix whose every replication is bit-identical to the
// uncancelled run's, with no goroutine leaks.
func TestCancelMidRunIsSeedPrefixDeterministic(t *testing.T) {
	cfg := shortCfg(4000)
	const reps = 24
	s := New(WithParallelism(4))
	defer s.Close()

	full, err := s.Run(context.Background(), Job{Config: cfg, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as a few replications have finished. (Progress may
	// fire concurrently; done is delivered under the hook's own lock.)
	res, err := s.Run(ctx, Job{Config: cfg, Reps: reps}, WithProgress(func(done, total int) {
		if done == 3 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("cancelled run returned res=%v, want a partial result", res)
	}
	if len(res.Runs) == 0 || len(res.Runs) >= reps {
		t.Fatalf("partial covered %d of %d replications, want a strict prefix", len(res.Runs), reps)
	}
	for i, m := range res.Runs {
		if res.Seeds[i] != cfg.Seed+uint64(i) {
			t.Fatalf("partial seed %d = %d, not the prefix seed %d", i, res.Seeds[i], cfg.Seed+uint64(i))
		}
		if got, want := metricsSig(m), metricsSig(full.Runs[i]); got != want {
			t.Fatalf("partial rep %d diverged from the full run:\n got %s\nwant %s", i, got, want)
		}
	}

	// No goroutine leaks: the pool's workers exit after wg.Wait.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestStreamCancelDeliversPrefix: a cancelled stream closes its channel
// after delivering the finished prefix, and Result reports the same
// partial aggregate.
func TestStreamCancelDeliversPrefix(t *testing.T) {
	cfg := shortCfg(3000)
	const reps = 16
	s := New(WithParallelism(2))
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := s.Stream(ctx, Job{Config: cfg, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	for it := range st.Items() {
		items = append(items, it)
		if len(items) == 2 {
			cancel()
		}
	}
	res, err := st.Result()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled stream lost its partial result")
	}
	if len(items) != len(res.Runs) {
		t.Fatalf("stream delivered %d items, result holds %d runs", len(items), len(res.Runs))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d", i, it.Index)
		}
	}
}

// TestRunOptionOverrides: per-call options override session defaults,
// and the queue/pooling knobs never change results.
func TestRunOptionOverrides(t *testing.T) {
	cfg := shortCfg(2000)
	s := New(WithParallelism(1))
	defer s.Close()
	base, err := s.Run(context.Background(), Job{Config: cfg, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := s.Run(context.Background(), Job{Config: cfg, Reps: 2},
		WithEventQueue("ladder"), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	noPool, err := s.Run(context.Background(), Job{Config: cfg, Reps: 2}, WithPoolingDisabled())
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Runs {
		if metricsSig(base.Runs[i]) != metricsSig(ladder.Runs[i]) {
			t.Fatalf("rep %d: ladder queue changed the result", i)
		}
		if metricsSig(base.Runs[i]) != metricsSig(noPool.Runs[i]) {
			t.Fatalf("rep %d: pooling changed the result", i)
		}
	}
}

// TestWithTraceForcesSequential: a shared recorder must serialize the
// batch, and the recorder sees every replication's events.
func TestWithTraceForcesSequential(t *testing.T) {
	cfg := shortCfg(600)
	rec := trace.NewRecorder(0)
	s := New(WithParallelism(8))
	defer s.Close()
	if _, err := s.Run(context.Background(), Job{Config: cfg, Reps: 3}, WithTrace(rec)); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("trace recorder captured nothing")
	}
}

// TestJobRepsDefaultsToOne and negative reps rejection.
func TestJobRepsValidation(t *testing.T) {
	s := New()
	defer s.Close()
	res, err := s.Run(context.Background(), Job{Config: shortCfg(500)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("zero Reps ran %d replications, want 1", len(res.Runs))
	}
	if _, err := s.Run(context.Background(), Job{Config: shortCfg(500), Reps: -1}); err == nil {
		t.Fatal("negative Reps accepted")
	}
}

// TestClosedSessionRejectsRuns.
func TestClosedSessionRejectsRuns(t *testing.T) {
	s := New()
	s.Close()
	if _, err := s.Run(context.Background(), Job{Config: shortCfg(500)}); err == nil {
		t.Fatal("closed session accepted a run")
	}
	if _, err := s.Stream(context.Background(), Job{Config: shortCfg(500)}); err == nil {
		t.Fatal("closed session accepted a stream")
	}
}

// countingBackend wraps the in-process pool, proving the Backend seam
// composes: a session on a custom backend behaves identically.
type countingBackend struct {
	inner  Backend
	shards int
}

func (b *countingBackend) Run(ctx context.Context, shard Shard) (ShardResult, error) {
	b.shards++
	return b.inner.Run(ctx, shard)
}

// TestCustomBackendSeam runs a job through a wrapping backend and
// requires identical results to the in-process pool.
func TestCustomBackendSeam(t *testing.T) {
	cfg := shortCfg(1500)
	ref := New(WithParallelism(1))
	defer ref.Close()
	want, err := ref.Run(context.Background(), Job{Config: cfg, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}

	cb := &countingBackend{inner: NewPool()}
	s := NewWithBackend(cb, WithParallelism(2))
	got, err := s.Run(context.Background(), Job{Config: cfg, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cb.shards != 1 {
		t.Fatalf("backend saw %d shards, want 1", cb.shards)
	}
	for i := range want.Runs {
		if metricsSig(got.Runs[i]) != metricsSig(want.Runs[i]) {
			t.Fatalf("rep %d diverged through the custom backend", i)
		}
	}
}

// TestRunFailureReturnsError: an invalid config surfaces as an error,
// not a partial result.
func TestRunFailureReturnsError(t *testing.T) {
	cfg := shortCfg(1000)
	cfg.Load = 1.5 // invalid: must be < 1
	s := New()
	defer s.Close()
	if _, err := s.Run(context.Background(), Job{Config: cfg}); err == nil {
		t.Fatal("invalid config accepted")
	}
	st, err := s.Stream(context.Background(), Job{Config: cfg})
	if err != nil {
		t.Fatal(err) // the failure surfaces through Result
	}
	for range st.Items() {
	}
	if _, err := st.Result(); err == nil {
		t.Fatal("stream swallowed the run error")
	}
}

// TestSeedRangeWraparoundRejected: a job whose seed range would wrap
// uint64 is rejected up front instead of silently handing the backend
// colliding seeds; the largest non-wrapping range still runs.
func TestSeedRangeWraparoundRejected(t *testing.T) {
	s := New(WithParallelism(1))
	defer s.Close()

	cfg := shortCfg(500)
	cfg.Seed = ^uint64(0) - 2
	// max-2, max-1, max still fits.
	res, err := s.Run(context.Background(), Job{Config: cfg, Reps: 3})
	if err != nil {
		t.Fatalf("in-range job at the seed maximum rejected: %v", err)
	}
	if len(res.Seeds) != 3 || res.Seeds[0] != ^uint64(0)-2 || res.Seeds[2] != ^uint64(0) {
		t.Fatalf("seeds = %v, want [max-2 max-1 max]", res.Seeds)
	}
	// One more replication wraps.
	if _, err := s.Run(context.Background(), Job{Config: cfg, Reps: 4}); err == nil || !strings.Contains(err.Error(), "wraps") {
		t.Fatalf("wrapping job accepted by Run (err = %v)", err)
	}
	if _, err := s.Stream(context.Background(), Job{Config: cfg, Reps: 4}); err == nil {
		t.Fatal("wrapping job accepted by Stream")
	}
}

// prefixFailBackend runs the first emit seeds through the in-process
// pool (so OnResult fires for them in the usual way), then fails the
// shard with err — modelling a backend that dies partway through.
type prefixFailBackend struct {
	inner Backend
	emit  int
	err   error
}

func (b *prefixFailBackend) Run(ctx context.Context, shard Shard) (ShardResult, error) {
	sub := shard
	sub.Seeds = shard.Seeds[:b.emit]
	if _, err := b.inner.Run(ctx, sub); err != nil {
		return ShardResult{}, err
	}
	return ShardResult{}, b.err
}

// TestStreamFailureSurfacesEmittedPrefix pins the Items/Result contract
// on the failure path: items already emitted when a non-cancellation
// backend error arrives are exactly Result().Runs, returned as a
// Partial result alongside the error.
func TestStreamFailureSurfacesEmittedPrefix(t *testing.T) {
	cfg := shortCfg(1000)
	const emit, reps = 2, 5
	fail := errors.New("backend broke")
	s := NewWithBackend(&prefixFailBackend{inner: NewPool(), emit: emit, err: fail}, WithParallelism(1))
	defer s.Close()

	st, err := s.Stream(context.Background(), Job{Config: cfg, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	for it := range st.Items() {
		items = append(items, it)
	}
	res, rerr := st.Result()
	if !errors.Is(rerr, fail) {
		t.Fatalf("Result error = %v, want %v", rerr, fail)
	}
	if res == nil || !res.Partial {
		t.Fatalf("Result = %+v, want a Partial result of the emitted prefix", res)
	}
	if len(items) != emit || len(res.Runs) != emit || len(res.Seeds) != emit {
		t.Fatalf("emitted %d items, result has %d runs / %d seeds, want %d each",
			len(items), len(res.Runs), len(res.Seeds), emit)
	}
	for i, it := range items {
		if it.Index != i || it.Seed != cfg.Seed+uint64(i) || res.Runs[i] != it.Metrics {
			t.Fatalf("item %d {index %d seed %d} does not match result run %d: the emitted prefix and Runs diverged",
				i, it.Index, it.Seed, i)
		}
	}
}
