package session

import (
	"context"

	"repro/internal/system"
)

// Item is one streamed replication result: the replication's index
// within the job (0-based), its seed, and its metrics — including the
// per-window scenario series chunk when the job has a scenario (each
// replication's Metrics.Series is its own unmerged time series).
type Item struct {
	Index   int
	Seed    uint64
	Metrics *system.Metrics
}

// Stream is an in-flight streaming run: consume Items for
// per-replication results in seed order, then Result for the final
// aggregate.
type Stream struct {
	items chan Item
	done  chan struct{}
	res   *Result
	err   error
}

// Items returns the result channel. Items arrive in seed order as
// workers finish — replication i is delivered as soon as replications
// 0..i have all completed — and the channel closes when the run ends
// (normally, by error, or by cancellation). On every ending —
// success, cancellation, or backend failure — concatenating the items'
// metrics reproduces Result().Runs exactly; streaming never changes
// what is computed, only when it becomes visible.
func (st *Stream) Items() <-chan Item { return st.items }

// Result blocks until the run finishes. On success it returns the same
// aggregate Run would have; on cancellation, a Partial result of the
// finished seed prefix alongside ctx's error. On any other backend
// failure it returns the error together with a Partial result covering
// exactly the items already delivered through Items (possibly zero) —
// unlike Run, which surfaced nothing and therefore returns a nil
// result — so consuming both channels never observes runs the result
// disavows.
func (st *Stream) Result() (*Result, error) {
	<-st.done
	return st.res, st.err
}

// Stream starts the job and returns immediately with a Stream yielding
// per-replication results in seed order as workers finish. The job,
// options, cancellation semantics and final aggregate are exactly
// Run's; Stream only adds incremental delivery. The stream owns no
// goroutine-visible state after its channel closes, so abandoning a
// cancelled stream leaks nothing.
func (s *Session) Stream(ctx context.Context, job Job, opts ...Option) (*Stream, error) {
	o, err := s.resolve(opts)
	if err != nil {
		return nil, err
	}
	seeds, err := job.seeds()
	if err != nil {
		return nil, err
	}
	reps := len(seeds)
	st := &Stream{
		items: make(chan Item, reps),
		done:  make(chan struct{}),
	}
	shard := Shard{
		Config:      job.config(o),
		Seeds:       seeds,
		Parallelism: o.parallelism,
	}

	// Workers report completions (out of order) through arrived; the
	// emitter below reorders into seed order. Both channels are buffered
	// to the full replication count, so neither the workers nor the
	// emitter can block on a slow or departed consumer: a stream that is
	// never drained still terminates and frees its goroutines.
	type arrival struct {
		i int
		m *system.Metrics
	}
	arrived := make(chan arrival, reps)
	progress := o.progress
	var progressCount func(int, *system.Metrics)
	if progress != nil {
		progressCount = progressHook(progress, reps)
	}
	shard.OnResult = func(i int, m *system.Metrics) {
		if progressCount != nil {
			progressCount(i, m)
		}
		arrived <- arrival{i: i, m: m}
	}
	finish := s.instrument(&shard)

	// The emitter reorders completions into seed order concurrently with
	// the run, so items become visible as soon as their seed prefix is
	// complete. st.items is buffered to the full replication count, so
	// the emitter never blocks on the consumer.
	emitDone := make(chan struct{})
	var emitted []*system.Metrics // seed-order prefix; emitter-owned until emitDone
	go func() {
		defer close(emitDone)
		defer close(st.items)
		pending := make(map[int]*system.Metrics)
		next := 0
		for a := range arrived {
			pending[a.i] = a.m
			for m, ok := pending[next]; ok; m, ok = pending[next] {
				delete(pending, next)
				emitted = append(emitted, m)
				st.items <- Item{Index: next, Seed: shard.Seeds[next], Metrics: m}
				next++
			}
		}
	}()
	go func() {
		res, rerr := s.backend.Run(ctx, shard)
		finish()
		close(arrived)
		<-emitDone // every emitted item precedes done

		if rerr != nil && !isCancellation(rerr) {
			// A replication failed. The backend disavows the shard, but
			// items already emitted are irrevocably visible to the
			// consumer, so the Items contract — concatenating item metrics
			// reproduces Result().Runs — is honoured by surfacing exactly
			// the emitted seed prefix as a Partial result alongside the
			// error. (Run, which never surfaced anything, returns nil.)
			out, aerr := aggregate(shard, ShardResult{Metrics: emitted, Completed: len(emitted)})
			if aerr != nil {
				st.err = rerr
			} else {
				out.Partial = true
				st.res, st.err = out, rerr
			}
		} else if out, aerr := aggregate(shard, res); aerr != nil {
			st.err = aerr
		} else {
			st.res, st.err = out, rerr
		}
		close(st.done)
	}()
	return st, nil
}
