package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/task"
)

func TestNewAssignerDefaults(t *testing.T) {
	a := NewAssigner(nil, nil)
	if a.Name() != "UD-UD" {
		t.Errorf("default assigner = %q, want UD-UD", a.Name())
	}
}

func TestAssignerName(t *testing.T) {
	a := NewAssigner(EqualFlexibility{}, Div{X: 1})
	if a.Name() != "EQF-DIV-1" {
		t.Errorf("Name = %q, want EQF-DIV-1", a.Name())
	}
}

func TestPlanWorkedExample(t *testing.T) {
	// g = [a:1 [b:2 || c:4] d:1], arrival 0, deadline 10, EQF-DIV1.
	// Serial stage pexs: [1, 4, 1]; total 6; slack 4.
	//   a:  dl = 0+1+4·(1/6)  = 5/3
	//   P:  released at 1; remaining [4,1]; slack 4; dl = 1+4+4·(4/5) = 8.2
	//     b,c: DIV-1 with n=2: dl = 1+(8.2−1)/2 = 4.6
	//   d:  released at 5 (parallel finish = max(3,5)); dl = 10
	g := task.MustParse("[a:1 [b:2 || c:4] d:1]")
	a := NewAssigner(EqualFlexibility{}, Div{X: 1})
	plan, err := a.Plan(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan has %d leaves, want 4", len(plan))
	}
	want := []struct {
		name     string
		release  float64
		deadline float64
	}{
		{name: "a", release: 0, deadline: 5.0 / 3},
		{name: "b", release: 1, deadline: 4.6},
		{name: "c", release: 1, deadline: 4.6},
		{name: "d", release: 5, deadline: 10},
	}
	for i, w := range want {
		got := plan[i]
		if got.Leaf.Name != w.name {
			t.Errorf("leaf %d = %q, want %q", i, got.Leaf.Name, w.name)
		}
		if !almostEqual(got.Release, w.release) {
			t.Errorf("leaf %s release = %v, want %v", w.name, got.Release, w.release)
		}
		if !almostEqual(got.Deadline, w.deadline) {
			t.Errorf("leaf %s deadline = %v, want %v", w.name, got.Deadline, w.deadline)
		}
	}
}

func TestPlanUDGivesEveryLeafGroupDeadline(t *testing.T) {
	g := task.MustParse("[a [b || [c d]] e]")
	a := NewAssigner(UltimateDeadline{}, ParallelUltimate{})
	plan, err := a.Plan(g, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plan {
		if p.Deadline != 50 {
			t.Errorf("leaf %s deadline = %v, want 50 under UD-UD", p.Leaf.Name, p.Deadline)
		}
	}
}

func TestPlanRejectsInvalidGraph(t *testing.T) {
	a := NewAssigner(EqualFlexibility{}, Div{X: 1})
	if _, err := a.Plan(task.Serial(), 0, 10); err == nil {
		t.Fatal("Plan accepted an empty serial group")
	}
}

func TestPlanPureSerialMatchesDirectFormula(t *testing.T) {
	// For a flat serial chain the planner must reproduce the strategy
	// formula stage by stage with releases at cumulative pex.
	g := task.MustParse("[s1:2 s2:3 s3:5]")
	a := NewAssigner(EqualFlexibility{}, ParallelUltimate{})
	const (
		ar = 10.0
		dl = 30.0
	)
	plan, err := a.Plan(g, ar, dl)
	if err != nil {
		t.Fatal(err)
	}
	pexs := []float64{2, 3, 5}
	now := ar
	for i, p := range plan {
		want := EqualFlexibility{}.StageDeadline(now, dl, pexs[i:])
		if !almostEqual(p.Deadline, want) {
			t.Errorf("stage %d deadline = %v, want %v", i, p.Deadline, want)
		}
		if !almostEqual(p.Release, now) {
			t.Errorf("stage %d release = %v, want %v", i, p.Release, now)
		}
		now += pexs[i]
	}
}

func TestPlanPropertyBounds(t *testing.T) {
	// For random graphs with non-negative slack, every leaf deadline is
	// within (arrival, groupDeadline] and releases are non-decreasing
	// along serial chains (checked via plan order within the flattened
	// leaf sequence of pure serial graphs).
	r := rng.New(77)
	assigners := []Assigner{
		NewAssigner(UltimateDeadline{}, ParallelUltimate{}),
		NewAssigner(EffectiveDeadline{}, Div{X: 1}),
		NewAssigner(EqualSlack{}, Div{X: 2}),
		NewAssigner(EqualFlexibility{}, Div{X: 1}),
		NewAssigner(EqualFlexibility{}, GlobalsFirst{}),
	}
	for trial := 0; trial < 400; trial++ {
		g := randomGraph(r, 3)
		ar := r.Uniform(0, 20)
		dl := ar + g.AggregatePex() + r.Uniform(0, 15)
		for _, a := range assigners {
			plan, err := a.Plan(g, ar, dl)
			if err != nil {
				t.Fatalf("%s: plan(%s): %v", a.Name(), g, err)
			}
			if len(plan) != g.LeafCount() {
				t.Fatalf("%s: plan has %d entries for %d leaves", a.Name(), len(plan), g.LeafCount())
			}
			for _, p := range plan {
				if p.Deadline > dl+1e-9 {
					t.Fatalf("%s: leaf deadline %v beyond group deadline %v (graph %s)",
						a.Name(), p.Deadline, dl, g)
				}
				if p.Release < ar-1e-9 {
					t.Fatalf("%s: leaf release %v before arrival %v", a.Name(), p.Release, ar)
				}
			}
		}
	}
}

// randomGraph builds a random serial-parallel graph for property tests.
func randomGraph(r *rng.Source, depth int) *task.Graph {
	if depth <= 0 || r.IntN(3) == 0 {
		return task.Simple("l", r.Uniform(0.05, 5))
	}
	n := 1 + r.IntN(3)
	children := make([]*task.Graph, n)
	for i := range children {
		children[i] = randomGraph(r, depth-1)
	}
	if r.IntN(2) == 0 {
		return task.Serial(children...)
	}
	return task.Parallel(children...)
}

func TestSerialStageUsesAggregatePex(t *testing.T) {
	// A complex stage's pex is its aggregate (serial-sum / parallel-max),
	// not the raw leaf value.
	stage1 := task.MustParse("[x:1 || y:3]") // aggregate 3
	stage2 := task.Simple("z", 2)
	a := NewAssigner(EqualFlexibility{}, Div{X: 1})
	got := a.SerialStage(0, 10, []*task.Graph{stage1, stage2})
	want := EqualFlexibility{}.StageDeadline(0, 10, []float64{3, 2})
	if !almostEqual(got, want) {
		t.Errorf("SerialStage = %v, want %v", got, want)
	}
}

func TestParallelBranchUsesAggregatePex(t *testing.T) {
	b1 := task.MustParse("[x:1 y:3]") // aggregate 4
	b2 := task.Simple("z", 2)
	a := NewAssigner(EqualFlexibility{}, Div{X: 1})
	got := a.ParallelBranch(0, 12, []*task.Graph{b1, b2}, 0)
	want := Div{X: 1}.BranchDeadline(0, 12, []float64{4, 2}, 0)
	if !almostEqual(got, want) {
		t.Errorf("ParallelBranch = %v, want %v", got, want)
	}
}
