package core

import "strconv"

// ParallelStrategy assigns virtual deadlines to the branches of a
// parallel group T = [T1 || T2 || ... || Tn]. All branches are submitted
// together at the group's arrival time, so the strategy sees the group
// arrival, the group deadline and the predicted execution times of every
// branch, and returns the deadline for branch i.
type ParallelStrategy interface {
	// BranchDeadline returns dl(Ti) for branch i (0-based) of n branches.
	BranchDeadline(arrival, groupDeadline float64, pexBranches []float64, i int) float64
	// Name returns the short name used in reports ("UD", "DIV-1", ...).
	Name() string
}

// ParallelUltimate is the PSP base strategy UD: every branch inherits the
// group deadline, dl(Ti) = dl(T), and competes with local tasks on equal
// terms. Because the group misses if any branch misses, global tasks fare
// far worse than locals under UD (paper section 5.3).
type ParallelUltimate struct{}

// BranchDeadline implements ParallelStrategy.
func (ParallelUltimate) BranchDeadline(_, groupDeadline float64, _ []float64, _ int) float64 {
	return groupDeadline
}

// Name implements ParallelStrategy.
func (ParallelUltimate) Name() string { return "UD" }

// Div is the paper's DIV-x strategy (equation 1):
//
//	dl(Ti) = ar(T) + [dl(T) − ar(T)]/(n·x)
//
// The group's total allowance is divided by x times the branch count, so
// the priority boost grows automatically with the number of branches.
// Larger x values push virtual deadlines earlier and priorities higher;
// the paper finds x = 1 sufficient at its baseline, with x > 1 mattering
// only at very high load.
type Div struct {
	// X is the divisor multiplier; must be positive. The canonical
	// instances are Div{X: 1} (DIV-1) and Div{X: 2} (DIV-2).
	X float64
}

// BranchDeadline implements ParallelStrategy.
func (d Div) BranchDeadline(arrival, groupDeadline float64, pexBranches []float64, _ int) float64 {
	x := d.X
	if x <= 0 {
		x = 1
	}
	n := float64(len(pexBranches))
	if n == 0 {
		n = 1
	}
	return arrival + (groupDeadline-arrival)/(n*x)
}

// Name implements ParallelStrategy.
func (d Div) Name() string {
	switch d.X {
	case 1:
		return "DIV-1"
	case 2:
		return "DIV-2"
	default:
		return "DIV-" + trimFloat(d.X)
	}
}

// GlobalsFirst is the paper's GF strategy: branches keep the group
// deadline (like UD), but global subtasks are always scheduled before
// local tasks at every node, with earliest-deadline-first preserved
// within each class. GF is therefore a *scheduling-class* policy; the
// simulation configures class-priority queues at the nodes whenever the
// PSP strategy is GlobalsFirst. GF is the most aggressive promotion
// possible, and the paper notes it is inapplicable to components that
// discard tasks whose (virtual) deadline has passed.
type GlobalsFirst struct{}

// BranchDeadline implements ParallelStrategy.
func (GlobalsFirst) BranchDeadline(_, groupDeadline float64, _ []float64, _ int) float64 {
	return groupDeadline
}

// Name implements ParallelStrategy.
func (GlobalsFirst) Name() string { return "GF" }

// NeedsClassPriority reports whether a parallel strategy requires the
// globals-first class-priority queue at the nodes (true only for
// GlobalsFirst).
func NeedsClassPriority(p ParallelStrategy) bool {
	_, ok := p.(GlobalsFirst)
	return ok
}

// AdaptiveDiv chooses the DIV-x divisor from the branch count, following
// the direction of reference [7] ("how to set the value of x"): wide
// fan-outs already receive a large automatic boost from the 1/n factor,
// so x shrinks toward 1 as n grows, while narrow groups get a stronger
// push. dl(Ti) = ar + (dl−ar)/(n·x(n)) with x(n) = 1 + Boost/n.
type AdaptiveDiv struct {
	// Boost controls how much extra division narrow groups receive.
	// Boost = 0 degenerates to DIV-1.
	Boost float64
}

// BranchDeadline implements ParallelStrategy.
func (a AdaptiveDiv) BranchDeadline(arrival, groupDeadline float64, pexBranches []float64, i int) float64 {
	n := len(pexBranches)
	if n == 0 {
		n = 1
	}
	x := 1 + a.Boost/float64(n)
	return Div{X: x}.BranchDeadline(arrival, groupDeadline, pexBranches, i)
}

// Name implements ParallelStrategy.
func (a AdaptiveDiv) Name() string { return "ADIV" }

// trimFloat formats a float compactly for strategy names.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
