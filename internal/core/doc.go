// Package core implements the paper's primary contribution: strategies
// for the Subtask Deadline Assignment (SDA) problem — translating the
// end-to-end deadline of a distributed global task into virtual deadlines
// for its subtasks (Kao & Garcia-Molina, ICDCS 1993 / TPDS 1997).
//
// The SDA problem splits into two subproblems:
//
//   - SSP, the Serial Subtask Problem (paper section 4): for
//     T = [T1 T2 ... Tm], assign dl(Ti) when Ti is submitted.
//     Strategies: Ultimate Deadline (UD), Effective Deadline (ED),
//     Equal Slack (EQS) and Equal Flexibility (EQF).
//
//   - PSP, the Parallel Subtask Problem (paper section 5): for
//     T = [T1 || T2 || ... || Tn], assign dl(Ti) at submission.
//     Strategies: Ultimate Deadline (UD), DIV-x, and Globals First (GF —
//     a scheduling-class policy rather than a deadline formula).
//
// For general serial-parallel tasks the two compose recursively
// (section 6): Assigner walks the task graph, applying the SSP strategy
// to serial groups and the PSP strategy to parallel groups; the virtual
// deadline given to a complex subtask becomes the end-to-end deadline of
// its own decomposition.
//
// The package also implements the paper's proposed extensions:
// ArtificialStages (section 7 future work — damping slack variability by
// pretending a serial task has extra stages) and AdaptiveDiv (reference
// [7] — choosing the DIV-x divisor from the branch count).
package core
