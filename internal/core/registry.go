package core

import (
	"fmt"
	"strconv"
	"strings"
)

// SerialByName returns the SSP strategy with the given name. Recognized
// names (case-insensitive): "UD", "ED", "EQS", "EQF", and "EQF-AS<n>"
// for EqualFlexibility wrapped in n artificial stages (e.g. "EQF-AS2").
func SerialByName(name string) (SerialStrategy, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	switch upper {
	case "UD":
		return UltimateDeadline{}, nil
	case "ED":
		return EffectiveDeadline{}, nil
	case "EQS":
		return EqualSlack{}, nil
	case "EQF":
		return EqualFlexibility{}, nil
	}
	if rest, ok := strings.CutPrefix(upper, "EQF-AS"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("core: bad artificial stage count in %q", name)
		}
		return ArtificialStages{Base: EqualFlexibility{}, Extra: n}, nil
	}
	return nil, fmt.Errorf("core: unknown serial (SSP) strategy %q", name)
}

// ParallelByName returns the PSP strategy with the given name.
// Recognized names (case-insensitive): "UD", "GF", "DIV-<x>" (also
// "DIV<x>"), and "ADIV<boost>" (e.g. "ADIV4") for AdaptiveDiv.
func ParallelByName(name string) (ParallelStrategy, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	switch upper {
	case "UD":
		return ParallelUltimate{}, nil
	case "GF":
		return GlobalsFirst{}, nil
	case "ADIV":
		return AdaptiveDiv{Boost: 1}, nil
	}
	if rest, ok := strings.CutPrefix(upper, "ADIV"); ok {
		boost, err := strconv.ParseFloat(rest, 64)
		if err != nil || boost < 0 {
			return nil, fmt.Errorf("core: bad adaptive boost in %q", name)
		}
		return AdaptiveDiv{Boost: boost}, nil
	}
	if rest, ok := strings.CutPrefix(upper, "DIV"); ok {
		rest = strings.TrimPrefix(rest, "-")
		x, err := strconv.ParseFloat(rest, 64)
		if err != nil || x <= 0 {
			return nil, fmt.Errorf("core: bad divisor in %q", name)
		}
		return Div{X: x}, nil
	}
	return nil, fmt.Errorf("core: unknown parallel (PSP) strategy %q", name)
}

// SerialNames lists the built-in SSP strategy names in the order the
// paper introduces them.
func SerialNames() []string { return []string{"UD", "ED", "EQS", "EQF"} }

// ParallelNames lists the built-in PSP strategy names in the order the
// paper introduces them.
func ParallelNames() []string { return []string{"UD", "DIV-1", "DIV-2", "GF"} }
