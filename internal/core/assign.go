package core

import (
	"fmt"

	"repro/internal/task"
)

// Assigner decomposes an end-to-end deadline over a serial-parallel task
// graph (paper section 6): serial groups use the SSP strategy, parallel
// groups the PSP strategy, and the virtual deadline handed to a complex
// subtask becomes the end-to-end deadline of its own decomposition.
//
// Assignment is *dynamic*: a serial stage's deadline is computed when the
// stage is released (its predecessor finished), so leftover slack is
// inherited by later stages and lateness eats their budget — the two
// phenomena section 4.2.2 calls "the rich get richer and the poor get
// poorer". The process manager drives this by calling SerialStage and
// ParallelBranch as the simulation unfolds; Plan computes a static
// assignment in one pass for inspection and for the live runtime's
// up-front planning mode.
type Assigner struct {
	// Serial is the SSP strategy; must be non-nil.
	Serial SerialStrategy
	// Parallel is the PSP strategy; must be non-nil.
	Parallel ParallelStrategy
}

// NewAssigner returns an assigner with the given strategies. Nil
// strategies default to Ultimate Deadline, the paper's baseline.
func NewAssigner(s SerialStrategy, p ParallelStrategy) Assigner {
	if s == nil {
		s = UltimateDeadline{}
	}
	if p == nil {
		p = ParallelUltimate{}
	}
	return Assigner{Serial: s, Parallel: p}
}

// Name returns "SSP-PSP" composite name, e.g. "EQF-DIV1".
func (a Assigner) Name() string {
	return a.Serial.Name() + "-" + a.Parallel.Name()
}

// SerialStage returns the virtual deadline of the stage released at time
// now inside a serial group with the given deadline. remaining holds the
// graph nodes of the current stage and all following stages; their
// aggregate pex values feed the SSP formulas.
func (a Assigner) SerialStage(now, groupDeadline float64, remaining []*task.Graph) float64 {
	dl, _ := a.SerialStageBuf(make([]float64, 0, len(remaining)), now, groupDeadline, remaining)
	return dl
}

// SerialStageBuf is SerialStage collecting the aggregate pex values into
// buf (grown as needed) instead of allocating; it returns the deadline
// and the possibly regrown buffer for the caller to reuse. Strategies
// receive the buffer only for the duration of the call and must not
// retain it. This is the process manager's hot path: one call per serial
// stage release for the whole run.
func (a Assigner) SerialStageBuf(buf []float64, now, groupDeadline float64, remaining []*task.Graph) (float64, []float64) {
	buf = buf[:0]
	for _, g := range remaining {
		buf = append(buf, g.AggregatePex())
	}
	return a.Serial.StageDeadline(now, groupDeadline, buf), buf
}

// ParallelBranch returns the virtual deadline of branch i of a parallel
// group arriving at time arrival with the given group deadline.
func (a Assigner) ParallelBranch(arrival, groupDeadline float64, branches []*task.Graph, i int) float64 {
	dl, _ := a.ParallelBranchBuf(make([]float64, 0, len(branches)), arrival, groupDeadline, branches, i)
	return dl
}

// ParallelBranchBuf is ParallelBranch with a caller-owned scratch buffer,
// mirroring SerialStageBuf.
func (a Assigner) ParallelBranchBuf(buf []float64, arrival, groupDeadline float64, branches []*task.Graph, i int) (float64, []float64) {
	buf = buf[:0]
	for _, g := range branches {
		buf = append(buf, g.AggregatePex())
	}
	return a.Parallel.BranchDeadline(arrival, groupDeadline, buf, i), buf
}

// Assignment is one leaf's planned virtual deadline, produced by Plan.
type Assignment struct {
	// Leaf is the simple subtask the deadline applies to.
	Leaf *task.Graph
	// Release is the planned release time assuming every predecessor
	// takes exactly its predicted execution time.
	Release float64
	// Deadline is the planned virtual deadline.
	Deadline float64
}

// Plan statically decomposes the deadline over the whole graph in one
// pass, assuming every subtask takes exactly its predicted execution
// time (so serial stage i is released at the planned finish of stage
// i−1). It returns one assignment per leaf in left-to-right order.
//
// The dynamic per-stage path (SerialStage/ParallelBranch) supersedes
// these values during simulation; Plan exists for the public API, the
// sdadl CLI and the live runtime's planning mode.
func (a Assigner) Plan(g *task.Graph, arrival, deadline float64) ([]Assignment, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan: %w", err)
	}
	var out []Assignment
	a.plan(g, arrival, deadline, &out)
	return out, nil
}

// plan recursively plans node g released at time release with deadline
// dl, appending leaf assignments to out, and returns the planned finish
// time of g (release + aggregate pex, deadline-independent).
func (a Assigner) plan(g *task.Graph, release, dl float64, out *[]Assignment) float64 {
	switch g.Kind {
	case task.KindSimple:
		*out = append(*out, Assignment{Leaf: g, Release: release, Deadline: dl})
		return release + g.Pex

	case task.KindSerial:
		now := release
		for i := range g.Children {
			stageDL := a.SerialStage(now, dl, g.Children[i:])
			now = a.plan(g.Children[i], now, stageDL, out)
		}
		return now

	case task.KindParallel:
		finish := release
		for i, child := range g.Children {
			branchDL := a.ParallelBranch(release, dl, g.Children, i)
			f := a.plan(child, release, branchDL, out)
			if f > finish {
				finish = f
			}
		}
		return finish

	default:
		// Validate rejects unknown kinds before we get here.
		return release
	}
}
