package core

import (
	"testing"
)

func TestSerialByName(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantErr  bool
	}{
		{give: "UD", wantName: "UD"},
		{give: "ud", wantName: "UD"},
		{give: " ED ", wantName: "ED"},
		{give: "EQS", wantName: "EQS"},
		{give: "EQF", wantName: "EQF"},
		{give: "EQF-AS2", wantName: "EQF-AS"},
		{give: "eqf-as0", wantName: "EQF-AS"},
		{give: "EQF-ASx", wantErr: true},
		{give: "EQF-AS-1", wantErr: true},
		{give: "bogus", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := SerialByName(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("error = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && got.Name() != tt.wantName {
				t.Errorf("Name = %q, want %q", got.Name(), tt.wantName)
			}
		})
	}
}

func TestSerialByNameArtificialStageCount(t *testing.T) {
	got, err := SerialByName("EQF-AS3")
	if err != nil {
		t.Fatal(err)
	}
	as, ok := got.(ArtificialStages)
	if !ok {
		t.Fatalf("got %T, want ArtificialStages", got)
	}
	if as.Extra != 3 {
		t.Errorf("Extra = %d, want 3", as.Extra)
	}
}

func TestParallelByName(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantErr  bool
	}{
		{give: "UD", wantName: "UD"},
		{give: "GF", wantName: "GF"},
		{give: "gf", wantName: "GF"},
		{give: "DIV-1", wantName: "DIV-1"},
		{give: "DIV1", wantName: "DIV-1"},
		{give: "div-2", wantName: "DIV-2"},
		{give: "DIV-1.5", wantName: "DIV-1.5"},
		{give: "ADIV", wantName: "ADIV"},
		{give: "ADIV4", wantName: "ADIV"},
		{give: "DIV-0", wantErr: true},
		{give: "DIV--3", wantErr: true},
		{give: "ADIV-1", wantErr: true},
		{give: "nope", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParallelByName(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("error = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && got.Name() != tt.wantName {
				t.Errorf("Name = %q, want %q", got.Name(), tt.wantName)
			}
		})
	}
}

func TestBuiltinNameLists(t *testing.T) {
	for _, name := range SerialNames() {
		if _, err := SerialByName(name); err != nil {
			t.Errorf("SerialByName(%q) from SerialNames failed: %v", name, err)
		}
	}
	for _, name := range ParallelNames() {
		if _, err := ParallelByName(name); err != nil {
			t.Errorf("ParallelByName(%q) from ParallelNames failed: %v", name, err)
		}
	}
}
