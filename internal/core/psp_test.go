package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

var fourBranches = []float64{1, 2, 3, 4}

func TestParallelUltimate(t *testing.T) {
	for i := range fourBranches {
		got := ParallelUltimate{}.BranchDeadline(10, 30, fourBranches, i)
		if got != 30 {
			t.Errorf("branch %d: UD = %v, want 30", i, got)
		}
	}
}

func TestDivFormula(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		// dl(Ti) = ar + (dl−ar)/(n·x); ar=10, dl=30, n=4.
		{name: "DIV-1", x: 1, want: 10 + 20.0/4},
		{name: "DIV-2", x: 2, want: 10 + 20.0/8},
		{name: "DIV-0.5", x: 0.5, want: 10 + 20.0/2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Div{X: tt.x}.BranchDeadline(10, 30, fourBranches, 0)
			if !almostEqual(got, tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDivSameDeadlineForAllBranches(t *testing.T) {
	d := Div{X: 1}
	first := d.BranchDeadline(5, 25, fourBranches, 0)
	for i := 1; i < len(fourBranches); i++ {
		if got := d.BranchDeadline(5, 25, fourBranches, i); got != first {
			t.Errorf("branch %d deadline %v differs from branch 0's %v", i, got, first)
		}
	}
}

func TestDivDefensiveDefaults(t *testing.T) {
	// Non-positive x falls back to 1; empty branch list behaves as n=1.
	if got, want := (Div{X: 0}).BranchDeadline(0, 8, fourBranches, 0), 0+8.0/4; !almostEqual(got, want) {
		t.Errorf("x=0: got %v, want %v", got, want)
	}
	if got, want := (Div{X: 1}).BranchDeadline(0, 8, nil, 0), 8.0; !almostEqual(got, want) {
		t.Errorf("empty branches: got %v, want %v", got, want)
	}
}

func TestDivMonotoneProperties(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 2000; trial++ {
		ar := r.Uniform(0, 100)
		dl := ar + r.Uniform(0.1, 50)
		n := 1 + r.IntN(8)
		branches := make([]float64, n)
		for i := range branches {
			branches[i] = r.Uniform(0.1, 4)
		}
		x1 := r.Uniform(0.5, 4)
		x2 := x1 + r.Uniform(0.1, 4)
		d1 := Div{X: x1}.BranchDeadline(ar, dl, branches, 0)
		d2 := Div{X: x2}.BranchDeadline(ar, dl, branches, 0)
		// Larger x -> earlier virtual deadline (higher priority).
		if d2 > d1+1e-9 {
			t.Fatalf("DIV deadline not monotone in x: x=%v->%v, x=%v->%v", x1, d1, x2, d2)
		}
		// Deadlines stay strictly after arrival always, and inside
		// (ar, dl] whenever the effective divisor n·x is at least 1
		// (x < 1/n would stretch the allowance past dl(T)).
		if d1 <= ar {
			t.Fatalf("DIV deadline %v not after arrival %v", d1, ar)
		}
		if float64(n)*x1 >= 1 && d1 > dl+1e-9 {
			t.Fatalf("DIV deadline %v beyond group deadline %v (n=%d x=%v)", d1, dl, n, x1)
		}
		// More branches -> earlier deadline (automatic promotion).
		wider := append([]float64{r.Uniform(0.1, 4)}, branches...)
		dWide := Div{X: x1}.BranchDeadline(ar, dl, wider, 0)
		if dWide > d1+1e-9 {
			t.Fatalf("DIV deadline not monotone in branch count: n=%d->%v, n=%d->%v",
				n, d1, n+1, dWide)
		}
	}
}

func TestGlobalsFirst(t *testing.T) {
	got := GlobalsFirst{}.BranchDeadline(10, 30, fourBranches, 2)
	if got != 30 {
		t.Errorf("GF deadline = %v, want 30 (GF promotes by class, not deadline)", got)
	}
	if !NeedsClassPriority(GlobalsFirst{}) {
		t.Error("NeedsClassPriority(GF) = false, want true")
	}
	if NeedsClassPriority(ParallelUltimate{}) || NeedsClassPriority(Div{X: 1}) {
		t.Error("NeedsClassPriority should be false for UD and DIV-x")
	}
}

func TestAdaptiveDiv(t *testing.T) {
	// Boost 0 degenerates to DIV-1.
	a := AdaptiveDiv{Boost: 0}
	d := Div{X: 1}
	if got, want := a.BranchDeadline(10, 30, fourBranches, 0), d.BranchDeadline(10, 30, fourBranches, 0); !almostEqual(got, want) {
		t.Errorf("ADIV(0) = %v, want DIV-1 %v", got, want)
	}
	// Positive boost pushes narrow groups earlier than wide ones in
	// relative terms: x(n) = 1 + boost/n decreases with n.
	wide := make([]float64, 8)
	narrow := make([]float64, 2)
	for i := range wide {
		wide[i] = 1
	}
	for i := range narrow {
		narrow[i] = 1
	}
	b := AdaptiveDiv{Boost: 4}
	// Effective divisor n·x(n) = n + boost: narrow = 6, wide = 12.
	gotNarrow := b.BranchDeadline(0, 12, narrow, 0)
	gotWide := b.BranchDeadline(0, 12, wide, 0)
	if !almostEqual(gotNarrow, 12.0/6) {
		t.Errorf("ADIV narrow = %v, want 2", gotNarrow)
	}
	if !almostEqual(gotWide, 12.0/12) {
		t.Errorf("ADIV wide = %v, want 1", gotWide)
	}
	if math.IsNaN(b.BranchDeadline(0, 12, nil, 0)) {
		t.Error("ADIV with empty branches returned NaN")
	}
}

func TestParallelNamesMethods(t *testing.T) {
	tests := []struct {
		give ParallelStrategy
		want string
	}{
		{ParallelUltimate{}, "UD"},
		{Div{X: 1}, "DIV-1"},
		{Div{X: 2}, "DIV-2"},
		{Div{X: 1.5}, "DIV-1.5"},
		{GlobalsFirst{}, "GF"},
		{AdaptiveDiv{Boost: 2}, "ADIV"},
	}
	for _, tt := range tests {
		if got := tt.give.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
