package core

// SerialStrategy assigns a virtual deadline to the current stage of a
// serial group at the moment the stage is submitted.
//
// now is the submission time of the stage (ar(Ti) — the completion time
// of the previous stage, or the group's arrival for the first stage);
// groupDeadline is dl(T), the deadline of the enclosing (sub)task; and
// pexRemaining holds the predicted execution times of the current stage
// and every stage after it: pexRemaining[0] = pex(Ti), pexRemaining[1] =
// pex(Ti+1), ... pexRemaining[m-i] = pex(Tm). It is never empty.
//
// Strategies are pure functions of their arguments, so one value can be
// shared by any number of concurrent assignments.
type SerialStrategy interface {
	// StageDeadline returns dl(Ti).
	StageDeadline(now, groupDeadline float64, pexRemaining []float64) float64
	// Name returns the short name used in reports ("UD", "EQF", ...).
	Name() string
}

// sumPex adds up a pex slice.
func sumPex(pexs []float64) float64 {
	sum := 0.0
	for _, p := range pexs {
		sum += p
	}
	return sum
}

// UltimateDeadline is strategy (1), UD: every subtask inherits the global
// deadline, dl(Ti) = dl(T). The execution time of later stages is
// implicitly treated as slack of the current stage, so early stages look
// far less urgent than they are.
type UltimateDeadline struct{}

// StageDeadline implements SerialStrategy.
func (UltimateDeadline) StageDeadline(_, groupDeadline float64, _ []float64) float64 {
	return groupDeadline
}

// Name implements SerialStrategy.
func (UltimateDeadline) Name() string { return "UD" }

// EffectiveDeadline is strategy (2), ED: the global deadline minus the
// predicted execution time of all following stages,
// dl(Ti) = dl(T) − Σ_{j>i} pex(Tj). All remaining slack still goes to the
// current stage.
type EffectiveDeadline struct{}

// StageDeadline implements SerialStrategy.
func (EffectiveDeadline) StageDeadline(_, groupDeadline float64, pexRemaining []float64) float64 {
	return groupDeadline - sumPex(pexRemaining[1:])
}

// Name implements SerialStrategy.
func (EffectiveDeadline) Name() string { return "ED" }

// EqualSlack is strategy (3), EQS: the remaining slack
// dl(T) − ar(Ti) − Σ_{j≥i} pex(Tj) is divided evenly among the remaining
// stages:
//
//	dl(Ti) = ar(Ti) + pex(Ti) + slack/(m−i+1).
type EqualSlack struct{}

// StageDeadline implements SerialStrategy.
func (EqualSlack) StageDeadline(now, groupDeadline float64, pexRemaining []float64) float64 {
	slack := groupDeadline - now - sumPex(pexRemaining)
	return now + pexRemaining[0] + slack/float64(len(pexRemaining))
}

// Name implements SerialStrategy.
func (EqualSlack) Name() string { return "EQS" }

// EqualFlexibility is strategy (4), EQF: the remaining slack is divided
// among remaining stages in proportion to their predicted execution
// times, giving every remaining stage the same flexibility sl/pex:
//
//	dl(Ti) = ar(Ti) + pex(Ti) + slack·pex(Ti)/Σ_{j≥i} pex(Tj).
type EqualFlexibility struct{}

// StageDeadline implements SerialStrategy.
func (EqualFlexibility) StageDeadline(now, groupDeadline float64, pexRemaining []float64) float64 {
	total := sumPex(pexRemaining)
	if total <= 0 {
		// Degenerate prediction: fall back to equal division to stay
		// well-defined.
		return EqualSlack{}.StageDeadline(now, groupDeadline, pexRemaining)
	}
	slack := groupDeadline - now - total
	return now + pexRemaining[0] + slack*pexRemaining[0]/total
}

// Name implements SerialStrategy.
func (EqualFlexibility) Name() string { return "EQF" }

// ArtificialStages wraps a base strategy and pretends the serial group
// has extra trailing stages of the group's average predicted length. The
// paper's section 7 proposes this trick to damp slack variability: tight
// tasks get less of the remaining slack up front, loose tasks keep a
// reserve. Extra = 0 behaves exactly like the base strategy.
type ArtificialStages struct {
	// Base is the wrapped strategy (typically EqualFlexibility).
	Base SerialStrategy
	// Extra is the number of phantom stages appended to the remaining
	// pex vector.
	Extra int
}

// StageDeadline implements SerialStrategy.
func (a ArtificialStages) StageDeadline(now, groupDeadline float64, pexRemaining []float64) float64 {
	if a.Extra <= 0 {
		return a.Base.StageDeadline(now, groupDeadline, pexRemaining)
	}
	avg := sumPex(pexRemaining) / float64(len(pexRemaining))
	padded := make([]float64, len(pexRemaining), len(pexRemaining)+a.Extra)
	copy(padded, pexRemaining)
	for i := 0; i < a.Extra; i++ {
		padded = append(padded, avg)
	}
	// The phantom stages claim part of the slack but their "deadline
	// budget" stays inside dl(T): we only use the padded vector for the
	// division, not for the budget itself.
	return a.Base.StageDeadline(now, groupDeadline, padded)
}

// Name implements SerialStrategy.
func (a ArtificialStages) Name() string { return a.Base.Name() + "-AS" }
