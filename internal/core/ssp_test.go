package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

// Shared worked example: three remaining stages with pex [2 3 5],
// released at now=10, group deadline 30 (remaining slack 10).
var (
	exNow       = 10.0
	exDL        = 30.0
	exRemaining = []float64{2, 3, 5}
)

func TestUltimateDeadline(t *testing.T) {
	got := UltimateDeadline{}.StageDeadline(exNow, exDL, exRemaining)
	if got != exDL {
		t.Errorf("UD = %v, want dl(T) = %v", got, exDL)
	}
}

func TestEffectiveDeadline(t *testing.T) {
	tests := []struct {
		name      string
		remaining []float64
		want      float64
	}{
		{name: "first stage", remaining: []float64{2, 3, 5}, want: 30 - 8},
		{name: "middle stage", remaining: []float64{3, 5}, want: 30 - 5},
		{name: "last stage", remaining: []float64{5}, want: 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := EffectiveDeadline{}.StageDeadline(exNow, exDL, tt.remaining)
			if !almostEqual(got, tt.want) {
				t.Errorf("ED = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEqualSlack(t *testing.T) {
	// slack = 30−10−10 = 10, three remaining stages -> 10/3 each.
	got := EqualSlack{}.StageDeadline(exNow, exDL, exRemaining)
	want := 10 + 2 + 10.0/3
	if !almostEqual(got, want) {
		t.Errorf("EQS = %v, want %v", got, want)
	}
}

func TestEqualFlexibility(t *testing.T) {
	// slack = 10, share = pex/total = 2/10.
	got := EqualFlexibility{}.StageDeadline(exNow, exDL, exRemaining)
	want := 10 + 2 + 10*(2.0/10)
	if !almostEqual(got, want) {
		t.Errorf("EQF = %v, want %v", got, want)
	}
}

func TestEqualFlexibilityEqualPexMatchesEqualSlack(t *testing.T) {
	// With identical pex values, proportional and equal division agree.
	remaining := []float64{1.5, 1.5, 1.5, 1.5}
	eqf := EqualFlexibility{}.StageDeadline(3, 20, remaining)
	eqs := EqualSlack{}.StageDeadline(3, 20, remaining)
	if !almostEqual(eqf, eqs) {
		t.Errorf("EQF = %v, EQS = %v; want equal for uniform pex", eqf, eqs)
	}
}

func TestEqualFlexibilityDegeneratePex(t *testing.T) {
	// All-zero predictions fall back to equal slack division rather
	// than dividing by zero.
	got := EqualFlexibility{}.StageDeadline(0, 12, []float64{0, 0, 0})
	want := EqualSlack{}.StageDeadline(0, 12, []float64{0, 0, 0})
	if !almostEqual(got, want) || math.IsNaN(got) {
		t.Errorf("EQF degenerate = %v, want %v", got, want)
	}
}

func TestLastStageAlwaysGetsGroupDeadline(t *testing.T) {
	// Paper invariant: at the final stage every strategy reduces to the
	// group deadline.
	strategies := []SerialStrategy{
		UltimateDeadline{}, EffectiveDeadline{}, EqualSlack{}, EqualFlexibility{},
	}
	for _, s := range strategies {
		got := s.StageDeadline(17.5, 42, []float64{3})
		if !almostEqual(got, 42) {
			t.Errorf("%s last stage = %v, want 42", s.Name(), got)
		}
	}
}

func TestNegativeRemainingSlack(t *testing.T) {
	// A stage released after the budget is gone: EQS/EQF assign a
	// deadline earlier than now+pex (maximum urgency), never NaN.
	remaining := []float64{2, 2}
	for _, s := range []SerialStrategy{EqualSlack{}, EqualFlexibility{}} {
		got := s.StageDeadline(50, 40, remaining) // slack = −14
		if math.IsNaN(got) || got >= 50+2 {
			t.Errorf("%s with negative slack = %v, want < now+pex", s.Name(), got)
		}
	}
}

func TestSerialStrategyBoundsProperty(t *testing.T) {
	// With non-negative remaining slack every strategy satisfies
	// ar+pex <= dl(Ti) <= dl(T).
	r := rng.New(42)
	strategies := []SerialStrategy{
		UltimateDeadline{}, EffectiveDeadline{}, EqualSlack{}, EqualFlexibility{},
	}
	for trial := 0; trial < 2000; trial++ {
		m := 1 + r.IntN(8)
		remaining := make([]float64, m)
		total := 0.0
		for i := range remaining {
			remaining[i] = r.Uniform(0.01, 5)
			total += remaining[i]
		}
		now := r.Uniform(0, 100)
		slack := r.Uniform(0, 20)
		dl := now + total + slack
		for _, s := range strategies {
			got := s.StageDeadline(now, dl, remaining)
			if got < now+remaining[0]-1e-9 || got > dl+1e-9 {
				t.Fatalf("%s: dl(Ti)=%v outside [now+pex=%v, dl=%v] (m=%d)",
					s.Name(), got, now+remaining[0], dl, m)
			}
		}
		// ArtificialStages deliberately withholds slack, so only the
		// upper bound and the tighter-than-base relation hold for it.
		as := ArtificialStages{Base: EqualFlexibility{}, Extra: 1 + r.IntN(4)}
		base := EqualFlexibility{}.StageDeadline(now, dl, remaining)
		got := as.StageDeadline(now, dl, remaining)
		if got > dl+1e-9 {
			t.Fatalf("EQF-AS: dl(Ti)=%v beyond group deadline %v", got, dl)
		}
		if got > base+1e-9 {
			t.Fatalf("EQF-AS: dl(Ti)=%v looser than base EQF %v", got, base)
		}
	}
}

func TestEQSMonotoneInStageCountProperty(t *testing.T) {
	// Splitting the same remaining budget across more equal stages must
	// give the first stage an earlier (or equal) deadline.
	r := rng.New(7)
	for trial := 0; trial < 1000; trial++ {
		pex := r.Uniform(0.1, 3)
		now := r.Uniform(0, 50)
		slack := r.Uniform(0, 30)
		m1 := 1 + r.IntN(5)
		m2 := m1 + 1 + r.IntN(3)
		mk := func(m int) []float64 {
			rem := make([]float64, m)
			for i := range rem {
				rem[i] = pex
			}
			return rem
		}
		rem1, rem2 := mk(m1), mk(m2)
		dl1 := now + float64(m1)*pex + slack
		dl2 := now + float64(m2)*pex + slack
		d1 := EqualSlack{}.StageDeadline(now, dl1, rem1)
		d2 := EqualSlack{}.StageDeadline(now, dl2, rem2)
		if d2 > d1+1e-9 {
			t.Fatalf("EQS first-stage deadline grew with stage count: m=%d->%v, m=%d->%v",
				m1, d1, m2, d2)
		}
	}
}

func TestArtificialStages(t *testing.T) {
	base := EqualFlexibility{}
	zero := ArtificialStages{Base: base, Extra: 0}
	if got, want := zero.StageDeadline(exNow, exDL, exRemaining), base.StageDeadline(exNow, exDL, exRemaining); !almostEqual(got, want) {
		t.Errorf("AS(0) = %v, want base %v", got, want)
	}
	// Phantom stages must tighten the current stage's deadline.
	prev := base.StageDeadline(exNow, exDL, exRemaining)
	for extra := 1; extra <= 4; extra++ {
		as := ArtificialStages{Base: base, Extra: extra}
		got := as.StageDeadline(exNow, exDL, exRemaining)
		if got >= prev {
			t.Errorf("AS(%d) = %v, want strictly earlier than %v", extra, got, prev)
		}
		prev = got
	}
	if name := (ArtificialStages{Base: base, Extra: 2}).Name(); name != "EQF-AS" {
		t.Errorf("Name = %q", name)
	}
}

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		give SerialStrategy
		want string
	}{
		{UltimateDeadline{}, "UD"},
		{EffectiveDeadline{}, "ED"},
		{EqualSlack{}, "EQS"},
		{EqualFlexibility{}, "EQF"},
	}
	for _, tt := range tests {
		if got := tt.give.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
