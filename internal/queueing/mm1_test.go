package queueing

import (
	"math"
	"testing"
)

func TestMM1KnownValues(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := q.Rho(); got != 0.5 {
		t.Errorf("Rho = %v, want 0.5", got)
	}
	if got := q.MeanSojourn(); got != 2 {
		t.Errorf("W = %v, want 2", got)
	}
	if got := q.MeanWait(); got != 1 {
		t.Errorf("Wq = %v, want 1", got)
	}
	if got := q.MeanQueueLength(); got != 1 {
		t.Errorf("L = %v, want 1", got)
	}
}

func TestMM1Tails(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	// P(Wq > 0) = rho; P(W > 0) = 1.
	if got := q.WaitExceeds(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("WaitExceeds(0) = %v, want 0.5", got)
	}
	if got := q.SojournExceeds(0); got != 1 {
		t.Errorf("SojournExceeds(0) = %v, want 1", got)
	}
	if got := q.WaitExceeds(-1); got != 1 {
		t.Errorf("WaitExceeds(-1) = %v, want 1", got)
	}
	// Monotone decreasing tails.
	prev := 1.0
	for _, tt := range []float64{0, 0.5, 1, 2, 4, 8} {
		cur := q.WaitExceeds(tt)
		if cur > prev+1e-15 {
			t.Fatalf("tail not monotone at t=%v", tt)
		}
		prev = cur
	}
}

func TestMissProbUniformSlack(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	// Degenerate range: same as the point tail.
	got, err := q.MissProbUniformSlack(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := q.WaitExceeds(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("point slack: %v, want %v", got, want)
	}
	// Closed form vs numerical integration over U[0.25, 2.5].
	const (
		a, b = 0.25, 2.5
		n    = 200000
	)
	sum := 0.0
	for i := 0; i < n; i++ {
		s := a + (b-a)*(float64(i)+0.5)/n
		sum += q.WaitExceeds(s)
	}
	numeric := sum / n
	got, err = q.MissProbUniformSlack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-numeric) > 1e-6 {
		t.Errorf("closed form %v vs numeric %v", got, numeric)
	}
}

func TestValidation(t *testing.T) {
	if err := (MM1{Lambda: 1, Mu: 1}).Validate(); err == nil {
		t.Error("rho=1 accepted")
	}
	if err := (MM1{Lambda: -1, Mu: 1}).Validate(); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := (MM1{Lambda: 0.1, Mu: 0}).Validate(); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := (MM1{Lambda: 0.5, Mu: 1}).MissProbUniformSlack(2, 1); err == nil {
		t.Error("inverted slack range accepted")
	}
	if _, err := (MM1{Lambda: 2, Mu: 1}).MissProbUniformSlack(0, 1); err == nil {
		t.Error("unstable queue accepted")
	}
}
