// Package queueing provides closed-form M/M/1 results used to validate
// the simulator against theory. With frac_local = 1 and FCFS service,
// every node of the simulated system is an independent M/M/1 queue, so
// the whole pipeline — arrival processes, service sampling, queueing,
// deadline accounting, metrics — can be checked against exact formulas.
// (Under EDF the waiting-time distribution has no simple closed form;
// the FCFS check still exercises every component except the queue
// discipline.)
package queueing

import (
	"fmt"
	"math"
)

// MM1 describes one M/M/1 queue: Poisson arrivals at rate Lambda,
// exponential service at rate Mu.
type MM1 struct {
	Lambda float64
	Mu     float64
}

// Validate checks stability.
func (q MM1) Validate() error {
	if q.Lambda < 0 || q.Mu <= 0 {
		return fmt.Errorf("queueing: bad rates lambda=%v mu=%v", q.Lambda, q.Mu)
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable queue rho=%v", q.Rho())
	}
	return nil
}

// Rho returns the utilization λ/µ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanSojourn returns the mean time in system W = 1/(µ−λ).
func (q MM1) MeanSojourn() float64 { return 1 / (q.Mu - q.Lambda) }

// MeanWait returns the mean time in queue Wq = ρ/(µ−λ).
func (q MM1) MeanWait() float64 { return q.Rho() / (q.Mu - q.Lambda) }

// MeanQueueLength returns L = ρ/(1−ρ) (jobs in system, by Little's law
// L = λW).
func (q MM1) MeanQueueLength() float64 { return q.Rho() / (1 - q.Rho()) }

// WaitExceeds returns P(Wq > t) = ρ·e^{−(µ−λ)t} for t ≥ 0, the FCFS
// waiting-time tail. Waiting time is independent of the job's own
// service requirement under FCFS, which makes miss probabilities
// tractable.
func (q MM1) WaitExceeds(t float64) float64 {
	if t < 0 {
		return 1
	}
	return q.Rho() * math.Exp(-(q.Mu-q.Lambda)*t)
}

// SojournExceeds returns P(W > t) = e^{−(µ−λ)t}, the tail of the full
// sojourn (wait + service) time.
func (q MM1) SojournExceeds(t float64) float64 {
	if t < 0 {
		return 1
	}
	return math.Exp(-(q.Mu - q.Lambda) * t)
}

// MissProbUniformSlack returns the probability that a job with deadline
// dl = ar + ex + sl misses it under FCFS, when sl ~ U[a, b]:
//
//	P(miss) = P(Wq > sl) = ∫ ρ e^{−(µ−λ)s} ds / (b−a)
//	        = ρ (e^{−(µ−λ)a} − e^{−(µ−λ)b}) / ((µ−λ)(b−a))
//
// It relies on FCFS waiting being independent of the job's own service
// time, so the miss event depends only on the slack draw.
func (q MM1) MissProbUniformSlack(a, b float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if a < 0 || b < a {
		return 0, fmt.Errorf("queueing: bad slack range [%v, %v]", a, b)
	}
	delta := q.Mu - q.Lambda
	if b == a {
		return q.WaitExceeds(a), nil
	}
	return q.Rho() * (math.Exp(-delta*a) - math.Exp(-delta*b)) / (delta * (b - a)), nil
}
