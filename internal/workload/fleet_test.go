package workload

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// emitted is the full identity of one generated task; two runs agree iff
// their emitted sequences are deep-equal.
type emitted struct {
	id, seq                 uint64
	node                    int
	arrival, deadline, firm float64
	exec, pex               float64
}

func record(tk *task.Task) emitted {
	return emitted{
		id: tk.ID, seq: tk.Seq, node: tk.NodeID,
		arrival: tk.Arrival, deadline: tk.Deadline, firm: tk.FirmDeadline,
		exec: tk.Exec, pex: tk.Pex,
	}
}

// fleetCase is one equivalence scenario: per-node rates (0 silences a
// node), RNG layout, and the shared stream parameters.
type fleetCase struct {
	name  string
	rates []float64
	split bool
	mod   RateModulator
	pex   PexModel
}

// runSources generates the reference stream: one LocalSource per node,
// seeded exactly as the system workspace seeds them.
func runSources(t *testing.T, c fleetCase, seed uint64, horizon float64) []emitted {
	t.Helper()
	eng := sim.New()
	var out []emitted
	var id, seq uint64
	nextID := func() uint64 { id++; return id }
	nextSeq := func() uint64 { seq++; return seq }
	submit := func(tk *task.Task) { out = append(out, record(tk)) }
	pool := &task.Pool{}
	rngs := make([]rng.Source, len(c.rates))
	gaps := make([]rng.Source, len(c.rates))
	srcs := make([]LocalSource, len(c.rates))
	for i, rate := range c.rates {
		rngs[i].ReseedStream(seed, rng.StreamHashParts("local-", uint64(i), ""))
		var gap *rng.Source
		if c.split {
			gaps[i].ReseedStream(seed, rng.StreamHashParts("local-", uint64(i), "-gap"))
			gap = &gaps[i]
		}
		srcs[i].Init(eng)
		err := srcs[i].Reconfigure(&rngs[i], LocalParams{
			Node: i, Rate: rate, MeanExec: 1,
			SlackMin: 0.25, SlackMax: 2.5,
			Pex: c.pex, Mod: c.mod, Gap: gap, Pool: pool,
		}, nextID, nextSeq, submit)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i].Start()
	}
	eng.Run(horizon)
	return out
}

// runFleet generates the same stream through a LocalFleet.
func runFleet(t *testing.T, c fleetCase, seed uint64, horizon float64) []emitted {
	t.Helper()
	eng := sim.New()
	var out []emitted
	var id, seq uint64
	f := NewLocalFleet(eng)
	err := f.Configure(len(c.rates), FleetParams{
		MeanExec: 1, SlackMin: 0.25, SlackMax: 2.5,
		Pex: c.pex, Mod: c.mod, SplitGaps: c.split, Pool: &task.Pool{},
	},
		func() uint64 { id++; return id },
		func() uint64 { seq++; return seq },
		func(tk *task.Task) { out = append(out, record(tk)) })
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range c.rates {
		if err := f.SeedNode(i, rate, seed, rng.StreamHashParts("local-", uint64(i), "")); err != nil {
			t.Fatal(err)
		}
		if c.split {
			f.SeedNodeGap(i, seed, rng.StreamHashParts("local-", uint64(i), "-gap"))
		}
	}
	f.Start()
	eng.Run(horizon)
	return out
}

// TestFleetMatchesSources pins the fleet's contract: under both RNG
// layouts, with and without modulation, with heterogeneous rates and
// silent nodes, a LocalFleet emits the byte-identical task sequence of
// one LocalSource per node.
func TestFleetMatchesSources(t *testing.T) {
	const horizon = 2000.0
	cases := []fleetCase{
		{name: "default layout", rates: []float64{0.375, 0.375, 0.375, 0.375}},
		{name: "split layout", rates: []float64{0.375, 0.375, 0.375, 0.375}, split: true},
		{name: "heterogeneous with silent node", rates: []float64{1.5, 0, 0.2, 0.7}},
		{name: "modulated default", rates: []float64{0.5, 0.5, 0.5}, mod: stepMod{on: 0, off: horizon / 2}},
		{name: "modulated split", rates: []float64{0.5, 0.5, 0.5}, split: true, mod: stepMod{on: 0, off: horizon / 2}},
		{name: "pex error", rates: []float64{0.8, 0.8}, pex: PexModel{RelErr: 0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := runSources(t, c, 7, horizon)
			got := runFleet(t, c, 7, horizon)
			if len(want) == 0 {
				t.Fatal("reference run generated no tasks")
			}
			if len(got) != len(want) {
				t.Fatalf("fleet emitted %d tasks, sources %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("task %d diverged:\nfleet   %+v\nsources %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFleetReuseRegeneratesIdentically pins the warm-workspace contract:
// Configure + SeedNode on a used fleet reproduces the first run exactly.
func TestFleetReuseRegeneratesIdentically(t *testing.T) {
	c := fleetCase{rates: []float64{0.6, 0.6, 0.6}, split: true}
	first := runFleet(t, c, 11, 1500)

	// Same fleet object, reconfigured across engine resets.
	eng := sim.New()
	f := NewLocalFleet(eng)
	var second []emitted
	for run := 0; run < 2; run++ {
		eng.Reset()
		var id, seq uint64
		second = second[:0]
		err := f.Configure(len(c.rates), FleetParams{
			MeanExec: 1, SlackMin: 0.25, SlackMax: 2.5,
			SplitGaps: c.split, Pool: &task.Pool{},
		},
			func() uint64 { id++; return id },
			func() uint64 { seq++; return seq },
			func(tk *task.Task) { second = append(second, record(tk)) })
		if err != nil {
			t.Fatal(err)
		}
		for i, rate := range c.rates {
			if err := f.SeedNode(i, rate, 11, rng.StreamHashParts("local-", uint64(i), "")); err != nil {
				t.Fatal(err)
			}
			f.SeedNodeGap(i, 11, rng.StreamHashParts("local-", uint64(i), "-gap"))
		}
		f.Start()
		eng.Run(1500)
		if len(second) != len(first) {
			t.Fatalf("run %d emitted %d tasks, want %d", run, len(second), len(first))
		}
		for i := range first {
			if second[i] != first[i] {
				t.Fatalf("run %d task %d diverged", run, i)
			}
		}
	}
}
