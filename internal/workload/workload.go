// Package workload generates the task populations of the simulation model
// (paper sections 4.1, 5.2): per-node Poisson streams of local tasks with
// exponential demands and uniform slack, and a single Poisson stream of
// global tasks whose serial-parallel structure, placements, execution
// times and end-to-end deadlines follow the paper's baseline and its
// variations (heterogeneous subtask counts, unbalanced node loads,
// imperfect execution-time predictions).
package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// PexModel turns an actual execution time into the prediction pex(X)
// visible to strategies and laxity schedulers. RelErr introduces a
// multiplicative uniform error (section 4.3 "error in the execution time
// predictions"): pex = ex·(1 + U(−RelErr, +RelErr)), floored at a small
// positive value. RelErr = 0 reproduces Table 1's perfect predictions
// (pex(X)/ex(X) = 1) without consuming random numbers.
type PexModel struct {
	RelErr float64
}

// Sample returns the prediction for an actual demand ex.
func (m PexModel) Sample(r *rng.Source, ex float64) float64 {
	if m.RelErr == 0 {
		return ex
	}
	pex := ex * (1 + r.Uniform(-m.RelErr, m.RelErr))
	const floor = 1e-9
	if pex < floor {
		pex = floor
	}
	return pex
}

// LocalParams describes one node's local-task stream.
type LocalParams struct {
	// Node is the index the stream's tasks execute at; arrivals carry it
	// in Task.NodeID so one shared submit callback can route every
	// node's tasks instead of one closure per node.
	Node int
	// Rate is the Poisson arrival rate λ_local at this node.
	Rate float64
	// MeanExec is 1/µ_local.
	MeanExec float64
	// SlackMin, SlackMax bound the uniform slack distribution.
	SlackMin, SlackMax float64
	// Pex is the prediction model.
	Pex PexModel
	// Demand overrides the execution-time distribution; nil draws the
	// paper's exponential demands.
	Demand Demand
	// Mod optionally modulates the arrival rate over time (scenario
	// bursts and ramps); nil keeps the stream stationary.
	Mod RateModulator
	// Gap optionally moves the inter-arrival gap draws to their own
	// dedicated substream (the split RNG layout), enabling batched
	// draws; nil interleaves gaps with the body draws on the source's
	// main stream, the historical layout the golden files freeze.
	Gap *rng.Source
	// Pool optionally recycles retired tasks instead of allocating a
	// fresh Task per arrival. Nil allocates; results are identical
	// either way.
	Pool *task.Pool
}

// LocalSource generates local tasks at one node. Arrivals self-schedule
// on the engine, so running the engine to a horizon bounds generation
// naturally. The zero value is usable after Init + Reconfigure; large
// topologies hold their sources in one contiguous slice of values.
type LocalSource struct {
	eng    *sim.Engine
	r      *rng.Source
	params LocalParams
	arr    arrivals
	submit func(*task.Task)
	nextID func() uint64
	nextSq func() uint64
}

// NewLocalSource returns a generator; call Start to schedule the first
// arrival.
func NewLocalSource(eng *sim.Engine, r *rng.Source, params LocalParams,
	nextID, nextSeq func() uint64, submit func(*task.Task)) (*LocalSource, error) {
	if eng == nil {
		return nil, fmt.Errorf("workload: local source: nil engine")
	}
	s := &LocalSource{}
	s.Init(eng)
	if err := s.Reconfigure(r, params, nextID, nextSeq, submit); err != nil {
		return nil, err
	}
	return s, nil
}

// Init binds the source to its engine, once per source lifetime. It must
// be followed by Reconfigure before Start. Init must be re-issued if the
// source value is moved (it wires the internal arrivals loop back to the
// source's address).
func (s *LocalSource) Init(eng *sim.Engine) {
	s.eng = eng
	s.arr.init(eng, s)
}

// validateLocal checks the per-run inputs shared by construction and
// reconfiguration.
func validateLocal(r *rng.Source, params LocalParams,
	nextID, nextSeq func() uint64, submit func(*task.Task)) error {
	if r == nil || submit == nil || nextID == nil || nextSeq == nil {
		return fmt.Errorf("workload: local source: nil dependency")
	}
	if params.Node < 0 || params.Rate < 0 || params.MeanExec <= 0 ||
		params.SlackMax < params.SlackMin {
		return fmt.Errorf("workload: local source: bad params %+v", params)
	}
	return ValidateDemand(params.Demand)
}

// Reconfigure rebinds the source for a fresh replication in place — a
// reseeded RNG stream, new parameters and callbacks — reusing the source
// object, its arrivals loop, and the loop's pre-allocated engine handler.
// It must be called after the engine driving the source was Reset (the
// reset clears callback registrations) and before Start. A reconfigured
// source generates exactly the stream a freshly constructed one would:
// reuse is a pure allocation optimization for warm workspaces.
func (s *LocalSource) Reconfigure(r *rng.Source, params LocalParams,
	nextID, nextSeq func() uint64, submit func(*task.Task)) error {
	if err := validateLocal(r, params, nextID, nextSeq, submit); err != nil {
		return err
	}
	s.r, s.params = r, params
	s.submit, s.nextID, s.nextSq = submit, nextID, nextSeq
	return s.arr.reconfigure(r, params.Gap, params.Rate, params.Mod)
}

// Start schedules the first arrival. A zero rate generates nothing.
func (s *LocalSource) Start() { s.arr.start() }

func (s *LocalSource) arrive() {
	now := s.eng.Now()
	ex := sampleDemand(s.params.Demand, s.r, s.params.MeanExec)
	sl := s.r.Uniform(s.params.SlackMin, s.params.SlackMax)
	// The pool hands back a zeroed task; every non-zero field of a local
	// task is assigned here, in the same draw order as the unpooled path.
	t := s.params.Pool.Get()
	t.ID = s.nextID()
	t.Class = task.Local
	t.Stage = -1
	t.NodeID = s.params.Node
	t.Arrival = now
	t.Deadline = now + ex + sl // dl = ar + ex + sl
	t.FirmDeadline = now + ex + sl
	t.Exec = ex
	t.Pex = s.params.Pex.Sample(s.r, ex)
	t.Seq = s.nextSq()
	s.submit(t)
}
