package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Demand is a pluggable execution-time distribution for generated tasks.
// Sample draws one demand with the given mean, so swapping distributions
// never changes the offered load — only its variability. Implementations
// must be pure functions of the passed Source.
type Demand interface {
	// Sample draws one execution time with the given mean (> 0).
	Sample(r *rng.Source, mean float64) float64
	// Name identifies the distribution in reports ("pareto-2.5").
	Name() string
}

// ExponentialDemand is the paper's baseline distribution (Table 1). It is
// the default wherever a Demand is nil, and draws exactly the variates the
// pre-scenario generator drew, preserving bit-identical runs.
type ExponentialDemand struct{}

// Sample implements Demand.
func (ExponentialDemand) Sample(r *rng.Source, mean float64) float64 {
	return r.Exponential(mean)
}

// Name implements Demand.
func (ExponentialDemand) Name() string { return "exponential" }

// ParetoDemand draws heavy-tailed demands: Pareto with shape Alpha > 1,
// scaled so the mean matches (xm = mean·(Alpha−1)/Alpha). Smaller Alpha
// means heavier tails; Alpha <= 2 has infinite variance.
type ParetoDemand struct {
	Alpha float64
}

// Sample implements Demand.
func (d ParetoDemand) Sample(r *rng.Source, mean float64) float64 {
	xm := mean * (d.Alpha - 1) / d.Alpha
	return r.Pareto(d.Alpha, xm)
}

// Name implements Demand.
func (d ParetoDemand) Name() string { return fmt.Sprintf("pareto-%g", d.Alpha) }

// LognormalDemand draws lognormal demands with log-space standard
// deviation Sigma, mean-matched via mu = ln(mean) − Sigma²/2.
type LognormalDemand struct {
	Sigma float64
}

// Sample implements Demand.
func (d LognormalDemand) Sample(r *rng.Source, mean float64) float64 {
	mu := math.Log(mean) - d.Sigma*d.Sigma/2
	return r.Lognormal(mu, d.Sigma)
}

// Name implements Demand.
func (d LognormalDemand) Name() string { return fmt.Sprintf("lognormal-%g", d.Sigma) }

// DeterministicDemand makes every task demand exactly the mean (M/D/1
// style), the zero-variance end of the spectrum.
type DeterministicDemand struct{}

// Sample implements Demand.
func (DeterministicDemand) Sample(_ *rng.Source, mean float64) float64 { return mean }

// Name implements Demand.
func (DeterministicDemand) Name() string { return "deterministic" }

// ValidateDemand rejects parameterizations without a finite, positive
// mean-matched sample (Pareto needs Alpha > 1, lognormal Sigma >= 0).
// A nil demand is valid (it means exponential).
func ValidateDemand(d Demand) error {
	switch dd := d.(type) {
	case nil:
	case ParetoDemand:
		if !(dd.Alpha > 1) || math.IsInf(dd.Alpha, 1) {
			return fmt.Errorf("workload: pareto demand needs 1 < alpha < inf, got %v", dd.Alpha)
		}
	case LognormalDemand:
		if !(dd.Sigma >= 0) || math.IsInf(dd.Sigma, 1) {
			return fmt.Errorf("workload: lognormal demand needs 0 <= sigma < inf, got %v", dd.Sigma)
		}
	}
	return nil
}

// sampleDemand applies the nil-means-exponential default.
func sampleDemand(d Demand, r *rng.Source, mean float64) float64 {
	if d == nil {
		return r.Exponential(mean)
	}
	return d.Sample(r, mean)
}
