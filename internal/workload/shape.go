package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/task"
)

// Shape builds the serial-parallel structure of one global-task instance:
// graph topology, per-leaf execution demand, prediction, and node
// placement. Implementations must be deterministic functions of the
// passed Source.
type Shape interface {
	// Build samples one instance graph for a system of k nodes.
	Build(r *rng.Source, k int) (*task.Graph, error)
	// SlackScale returns the factor by which global slack exceeds the
	// local slack draw so that rel_flex keeps its Table-1 meaning: the
	// expected critical-path execution time over the mean local
	// execution time for serial and mixed shapes, and exactly 1 for the
	// parallel shape (the paper's section 5.2 deadline formula draws
	// slack from the raw distribution).
	SlackScale(meanLocalExec float64) float64
	// Name identifies the shape in reports.
	Name() string
}

// PooledBuilder is the optional allocation-free fast path of a Shape:
// BuildPooled is Build drawing graph nodes from pool (nil falls back to
// fresh allocation; the sampled values are identical either way). The
// graph is released back to the pool by the process manager once the
// instance retires. All shapes in this package implement it; external
// Shape implementations need not — the generator falls back to Build,
// which only costs them the recycling.
type PooledBuilder interface {
	BuildPooled(r *rng.Source, k int, pool *task.GraphPool) (*task.Graph, error)
}

// SerialShape is the SSP workload: T = [T1 T2 ... Tm], every subtask
// exponential with mean MeanExec, each placed uniformly at random
// (independently) over the k nodes.
type SerialShape struct {
	// M is the number of subtasks (Table 1: m = 4).
	M int
	// MeanExec is 1/µ_subtask (Table 1: 1.0).
	MeanExec float64
	// Pex is the prediction model.
	Pex PexModel
	// Demand overrides the per-subtask execution-time distribution; nil
	// draws the paper's exponential demands.
	Demand Demand
}

// Build implements Shape.
func (s SerialShape) Build(r *rng.Source, k int) (*task.Graph, error) {
	return s.BuildPooled(r, k, nil)
}

// BuildPooled implements Shape.
func (s SerialShape) BuildPooled(r *rng.Source, k int, pool *task.GraphPool) (*task.Graph, error) {
	if s.M <= 0 || s.MeanExec <= 0 || k <= 0 {
		return nil, fmt.Errorf("workload: serial shape: bad params m=%d mean=%v k=%d", s.M, s.MeanExec, k)
	}
	if err := ValidateDemand(s.Demand); err != nil {
		return nil, fmt.Errorf("workload: serial shape: %w", err)
	}
	g := pool.Group(task.KindSerial)
	pool.EnsureKids(g, s.M)
	for i := 0; i < s.M; i++ {
		g.Children = append(g.Children, sampleLeaf(pool, r, s.MeanExec, s.Pex, s.Demand, r.IntN(k)))
	}
	g.Index()
	return g, nil
}

// SlackScale implements Shape.
func (s SerialShape) SlackScale(meanLocalExec float64) float64 {
	return float64(s.M) * s.MeanExec / meanLocalExec
}

// Name implements Shape.
func (s SerialShape) Name() string { return fmt.Sprintf("serial-%d", s.M) }

// ParallelShape is the PSP workload: T = [T1 || ... || Tm] with the m
// subtasks placed at m distinct nodes (paper section 5.2).
type ParallelShape struct {
	// M is the number of parallel subtasks; must not exceed the node
	// count.
	M int
	// MeanExec is 1/µ_subtask.
	MeanExec float64
	// Pex is the prediction model.
	Pex PexModel
	// Demand overrides the per-subtask execution-time distribution; nil
	// draws the paper's exponential demands.
	Demand Demand
}

// Build implements Shape.
func (s ParallelShape) Build(r *rng.Source, k int) (*task.Graph, error) {
	return s.BuildPooled(r, k, nil)
}

// BuildPooled implements Shape.
func (s ParallelShape) BuildPooled(r *rng.Source, k int, pool *task.GraphPool) (*task.Graph, error) {
	if s.M <= 0 || s.MeanExec <= 0 {
		return nil, fmt.Errorf("workload: parallel shape: bad params m=%d mean=%v", s.M, s.MeanExec)
	}
	if err := ValidateDemand(s.Demand); err != nil {
		return nil, fmt.Errorf("workload: parallel shape: %w", err)
	}
	if s.M > k {
		return nil, fmt.Errorf("workload: parallel shape: m=%d exceeds k=%d distinct nodes", s.M, k)
	}
	nodes := r.SampleDistinct(s.M, k)
	g := pool.Group(task.KindParallel)
	pool.EnsureKids(g, s.M)
	for i := 0; i < s.M; i++ {
		g.Children = append(g.Children, sampleLeaf(pool, r, s.MeanExec, s.Pex, s.Demand, nodes[i]))
	}
	g.Index()
	return g, nil
}

// SlackScale implements Shape. The paper's PSP deadline formula (2) adds
// the raw slack draw to max_i ex(Ti), so the scale is 1.
func (s ParallelShape) SlackScale(float64) float64 { return 1 }

// Name implements Shape.
func (s ParallelShape) Name() string { return fmt.Sprintf("parallel-%d", s.M) }

// MixedShape is the section-6 workload: a serial chain whose stages may
// be parallel groups. Stages lists the width of each stage: width 1 is a
// simple subtask placed uniformly at random; width w > 1 is a parallel
// group of w subtasks at distinct nodes. The DESIGN.md default is
// {1, 3, 1}: [S1 [P1 || P2 || P3] S2].
type MixedShape struct {
	// Stages holds per-stage widths; all must be >= 1.
	Stages []int
	// MeanExec is 1/µ_subtask.
	MeanExec float64
	// Pex is the prediction model.
	Pex PexModel
	// Demand overrides the per-subtask execution-time distribution; nil
	// draws the paper's exponential demands.
	Demand Demand
}

// Build implements Shape.
func (s MixedShape) Build(r *rng.Source, k int) (*task.Graph, error) {
	return s.BuildPooled(r, k, nil)
}

// BuildPooled implements Shape.
func (s MixedShape) BuildPooled(r *rng.Source, k int, pool *task.GraphPool) (*task.Graph, error) {
	if len(s.Stages) == 0 || s.MeanExec <= 0 {
		return nil, fmt.Errorf("workload: mixed shape: bad params %+v", s)
	}
	if err := ValidateDemand(s.Demand); err != nil {
		return nil, fmt.Errorf("workload: mixed shape: %w", err)
	}
	g := pool.Group(task.KindSerial)
	pool.EnsureKids(g, len(s.Stages))
	for i, width := range s.Stages {
		switch {
		case width < 1:
			return nil, fmt.Errorf("workload: mixed shape: stage %d width %d", i, width)
		case width == 1:
			g.Children = append(g.Children, sampleLeaf(pool, r, s.MeanExec, s.Pex, s.Demand, r.IntN(k)))
		default:
			if width > k {
				return nil, fmt.Errorf("workload: mixed shape: stage %d width %d exceeds k=%d", i, width, k)
			}
			nodes := r.SampleDistinct(width, k)
			group := pool.Group(task.KindParallel)
			pool.EnsureKids(group, width)
			for j := 0; j < width; j++ {
				group.Children = append(group.Children, sampleLeaf(pool, r, s.MeanExec, s.Pex, s.Demand, nodes[j]))
			}
			g.Children = append(g.Children, group)
		}
	}
	g.Index()
	return g, nil
}

// SlackScale implements Shape: the expected critical path of the chain —
// a width-w stage of i.i.d. exponentials contributes MeanExec·H_w, where
// H_w is the w-th harmonic number (the mean of the maximum of w
// exponentials) — divided by the mean local execution time.
func (s MixedShape) SlackScale(meanLocalExec float64) float64 {
	cp := 0.0
	for _, width := range s.Stages {
		cp += s.MeanExec * harmonic(width)
	}
	return cp / meanLocalExec
}

// Name implements Shape.
func (s MixedShape) Name() string { return fmt.Sprintf("mixed-%v", s.Stages) }

// HeteroSerialShape is the section-4.3 variation in which global tasks
// have a random number of serial subtasks, uniform on [MinM, MaxM].
type HeteroSerialShape struct {
	// MinM and MaxM bound the per-instance subtask count.
	MinM, MaxM int
	// MeanExec is 1/µ_subtask.
	MeanExec float64
	// Pex is the prediction model.
	Pex PexModel
	// Demand overrides the per-subtask execution-time distribution; nil
	// draws the paper's exponential demands.
	Demand Demand
}

// Build implements Shape.
func (s HeteroSerialShape) Build(r *rng.Source, k int) (*task.Graph, error) {
	return s.BuildPooled(r, k, nil)
}

// BuildPooled implements Shape.
func (s HeteroSerialShape) BuildPooled(r *rng.Source, k int, pool *task.GraphPool) (*task.Graph, error) {
	if s.MinM <= 0 || s.MaxM < s.MinM || s.MeanExec <= 0 {
		return nil, fmt.Errorf("workload: hetero shape: bad params %+v", s)
	}
	m := s.MinM + r.IntN(s.MaxM-s.MinM+1)
	return SerialShape{M: m, MeanExec: s.MeanExec, Pex: s.Pex, Demand: s.Demand}.BuildPooled(r, k, pool)
}

// SlackScale implements Shape using the expected subtask count.
func (s HeteroSerialShape) SlackScale(meanLocalExec float64) float64 {
	meanM := float64(s.MinM+s.MaxM) / 2
	return meanM * s.MeanExec / meanLocalExec
}

// Name implements Shape.
func (s HeteroSerialShape) Name() string {
	return fmt.Sprintf("serial-%d..%d", s.MinM, s.MaxM)
}

// MeanSubtasks returns the expected number of simple subtasks per
// instance for a shape, used by the system package to derive the global
// arrival rate from the target load.
func MeanSubtasks(s Shape) (float64, error) {
	switch sh := s.(type) {
	case SerialShape:
		return float64(sh.M), nil
	case ParallelShape:
		return float64(sh.M), nil
	case MixedShape:
		total := 0
		for _, w := range sh.Stages {
			total += w
		}
		return float64(total), nil
	case HeteroSerialShape:
		return float64(sh.MinM+sh.MaxM) / 2, nil
	default:
		return 0, fmt.Errorf("workload: unknown shape %T", s)
	}
}

// sampleLeaf draws one simple subtask: demand, prediction, placement.
func sampleLeaf(pool *task.GraphPool, r *rng.Source, meanExec float64, pm PexModel, d Demand, nodeID int) *task.Graph {
	leaf := pool.Simple("t", 1)
	leaf.Exec = sampleDemand(d, r, meanExec)
	leaf.Pex = pm.Sample(r, leaf.Exec)
	leaf.NodeID = nodeID
	return leaf
}

// harmonic returns H_n = 1 + 1/2 + ... + 1/n (H_0 = 0).
func harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
