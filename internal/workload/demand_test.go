package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// TestDemandsAreMeanMatched verifies the load-preserving contract: every
// distribution samples around the requested mean.
func TestDemandsAreMeanMatched(t *testing.T) {
	const (
		mean = 2.0
		n    = 200000
	)
	demands := []Demand{
		ExponentialDemand{},
		ParetoDemand{Alpha: 2.5},
		LognormalDemand{Sigma: 1},
		DeterministicDemand{},
	}
	for _, d := range demands {
		r := rng.New(7)
		sum := 0.0
		for i := 0; i < n; i++ {
			x := d.Sample(r, mean)
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: sample %v", d.Name(), x)
			}
			sum += x
		}
		got := sum / n
		// Pareto at alpha 2.5 has heavy tails; give it a looser band.
		tol := 0.05 * mean
		if math.Abs(got-mean) > tol {
			t.Errorf("%s: sample mean %v, want %v ±%v", d.Name(), got, mean, tol)
		}
	}
}

func TestValidateDemand(t *testing.T) {
	valid := []Demand{nil, ExponentialDemand{}, ParetoDemand{Alpha: 1.5},
		LognormalDemand{Sigma: 0}, DeterministicDemand{}}
	for _, d := range valid {
		if err := ValidateDemand(d); err != nil {
			t.Errorf("ValidateDemand(%#v) = %v", d, err)
		}
	}
	invalid := []Demand{ParetoDemand{Alpha: 1}, ParetoDemand{Alpha: -2},
		ParetoDemand{Alpha: math.NaN()}, LognormalDemand{Sigma: -1},
		LognormalDemand{Sigma: math.NaN()}}
	for _, d := range invalid {
		if err := ValidateDemand(d); err == nil {
			t.Errorf("ValidateDemand(%#v) accepted", d)
		}
	}
}

// TestShapesRejectInvalidDemand pins that a bad Demand on a shape is a
// construction error, not a deep rng panic mid-run.
func TestShapesRejectInvalidDemand(t *testing.T) {
	bad := ParetoDemand{Alpha: 1}
	shapes := []Shape{
		SerialShape{M: 3, MeanExec: 1, Demand: bad},
		ParallelShape{M: 2, MeanExec: 1, Demand: bad},
		MixedShape{Stages: []int{1, 2}, MeanExec: 1, Demand: bad},
		HeteroSerialShape{MinM: 1, MaxM: 3, MeanExec: 1, Demand: bad},
	}
	for _, sh := range shapes {
		if _, err := sh.Build(rng.New(1), 4); err == nil {
			t.Errorf("%s accepted Pareto alpha 1", sh.Name())
		}
	}
}

// constantMod is a test modulator with a flat factor.
type constantMod struct{ f float64 }

func (m constantMod) FactorAt(float64) float64 { return m.f }
func (m constantMod) MaxFactor() float64       { return m.f }

// stepMod doubles the rate inside [on, off).
type stepMod struct{ on, off float64 }

func (m stepMod) FactorAt(t float64) float64 {
	if t >= m.on && t < m.off {
		return 2
	}
	return 1
}
func (m stepMod) MaxFactor() float64 { return 2 }

// countArrivals runs a modulated local source to the horizon and bins
// arrival times.
func countArrivals(t *testing.T, mod RateModulator, horizon float64) (first, second int) {
	t.Helper()
	eng := sim.New()
	var id, seq uint64
	src, err := NewLocalSource(eng, rng.New(11), LocalParams{
		Rate: 1, MeanExec: 1, SlackMin: 0, SlackMax: 1, Mod: mod,
	},
		func() uint64 { id++; return id },
		func() uint64 { seq++; return seq },
		func(tk *task.Task) {
			if tk.Arrival < horizon/2 {
				first++
			} else {
				second++
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	eng.Run(horizon)
	return first, second
}

func TestModulatedSourceFollowsTheTimeline(t *testing.T) {
	const horizon = 20000
	// Rate 2 in the second half only: the halves should differ by
	// roughly 2x.
	first, second := countArrivals(t, stepMod{on: horizon / 2, off: horizon}, horizon)
	if first == 0 || second == 0 {
		t.Fatalf("arrivals: %d, %d", first, second)
	}
	ratio := float64(second) / float64(first)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("second/first half arrivals = %v, want ~2 (got %d vs %d)", ratio, second, first)
	}
}

func TestConstantModulatorScalesTheRate(t *testing.T) {
	const horizon = 20000
	base1, base2 := countArrivals(t, nil, horizon)
	tripled1, tripled2 := countArrivals(t, constantMod{f: 3}, horizon)
	base, tripled := float64(base1+base2), float64(tripled1+tripled2)
	if ratio := tripled / base; ratio < 2.8 || ratio > 3.2 {
		t.Errorf("tripled/base arrivals = %v, want ~3 (got %v vs %v)", ratio, tripled, base)
	}
}

// TestExcessiveFactorPanics pins the thinning invariant: a modulator
// whose FactorAt exceeds MaxFactor is a programming error, not silent
// rate clipping.
func TestExcessiveFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("modulator exceeding MaxFactor did not panic")
		}
	}()
	countArrivals(t, liarMod{}, 1000)
}

// liarMod declares max 1 but reports 2.
type liarMod struct{}

func (liarMod) FactorAt(float64) float64 { return 2 }
func (liarMod) MaxFactor() float64       { return 1 }
