package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// GlobalParams describes the single global-task stream.
type GlobalParams struct {
	// Rate is the Poisson arrival rate λ_global of whole global tasks.
	Rate float64
	// Shape builds each instance's structure.
	Shape Shape
	// SlackMin, SlackMax bound the uniform slack draw (shared with
	// locals per Table 1; the PSP baseline widens it to [1.25, 5.0]).
	SlackMin, SlackMax float64
	// RelFlex is the relative flexibility of global tasks with respect
	// to local tasks (Table 1: 1.0). The end-to-end slack is
	// RelFlex · Shape.SlackScale(meanLocalExec) · U[SlackMin, SlackMax].
	RelFlex float64
	// MeanLocalExec is 1/µ_local, the normalizer for SlackScale.
	MeanLocalExec float64
	// Mod optionally modulates the arrival rate over time (scenario
	// bursts and ramps); nil keeps the stream stationary.
	Mod RateModulator
	// Gap optionally moves the inter-arrival gap draws to their own
	// dedicated substream (the split RNG layout); nil interleaves gaps
	// with the body draws on the main stream, the historical layout.
	Gap *rng.Source
	// GraphPool optionally recycles instance-graph nodes across
	// arrivals. Nil allocates; sampled graphs are identical either way.
	GraphPool *task.GraphPool
}

// Spec is one sampled global task handed to the start callback: the
// instance graph plus its end-to-end attributes. The system package
// wraps it into a procmgr.Instance.
type Spec struct {
	Graph    *task.Graph
	Arrival  float64
	Deadline float64
	Slack    float64
}

// GlobalSource generates the global-task stream. The zero value is
// usable after Init + Reconfigure.
type GlobalSource struct {
	eng    *sim.Engine
	r      *rng.Source
	params GlobalParams
	arr    arrivals
	k      int
	start  func(Spec)
	pooled PooledBuilder // non-nil when the shape supports graph reuse
}

// NewGlobalSource returns a generator; call Start to schedule the first
// arrival. k is the node count (needed for placement).
func NewGlobalSource(eng *sim.Engine, r *rng.Source, k int, params GlobalParams,
	start func(Spec)) (*GlobalSource, error) {
	if eng == nil {
		return nil, fmt.Errorf("workload: global source: nil engine")
	}
	s := &GlobalSource{}
	s.Init(eng)
	if err := s.Reconfigure(r, k, params, start); err != nil {
		return nil, err
	}
	return s, nil
}

// Init binds the source to its engine, once per source lifetime. It must
// be followed by Reconfigure before Start, and re-issued if the source
// value is moved.
func (s *GlobalSource) Init(eng *sim.Engine) {
	s.eng = eng
	s.arr.init(eng, s)
}

// validateGlobal checks the per-run inputs shared by construction and
// reconfiguration.
func validateGlobal(r *rng.Source, k int, params GlobalParams, start func(Spec)) error {
	if r == nil || start == nil {
		return fmt.Errorf("workload: global source: nil dependency")
	}
	if params.Rate < 0 || params.Shape == nil || params.SlackMax < params.SlackMin ||
		params.RelFlex < 0 || params.MeanLocalExec <= 0 || k <= 0 {
		return fmt.Errorf("workload: global source: bad params")
	}
	// Fail fast on impossible shapes (e.g. parallel m > k) rather than
	// mid-run.
	if _, err := params.Shape.Build(rng.New(0), k); err != nil {
		return fmt.Errorf("workload: global source: %w", err)
	}
	return nil
}

// Reconfigure rebinds the source for a fresh replication in place — a
// reseeded RNG stream, new parameters and start callback — reusing the
// source object, its arrivals loop, and the loop's pre-allocated engine
// handler. It must be called after the engine driving the source was
// Reset and before Start; a reconfigured source samples exactly the
// stream a freshly constructed one would.
func (s *GlobalSource) Reconfigure(r *rng.Source, k int, params GlobalParams, start func(Spec)) error {
	if err := validateGlobal(r, k, params, start); err != nil {
		return err
	}
	s.r, s.params, s.k, s.start = r, params, k, start
	s.pooled, _ = params.Shape.(PooledBuilder)
	return s.arr.reconfigure(r, params.Gap, params.Rate, params.Mod)
}

// Start schedules the first arrival. A zero rate generates nothing.
func (s *GlobalSource) Start() { s.arr.start() }

func (s *GlobalSource) arrive() {
	now := s.eng.Now()
	var (
		g   *task.Graph
		err error
	)
	if s.pooled != nil {
		g, err = s.pooled.BuildPooled(s.r, s.k, s.params.GraphPool)
	} else {
		g, err = s.params.Shape.Build(s.r, s.k)
	}
	if err != nil {
		// Construction was validated in NewGlobalSource; a failure here
		// is a programming error in the shape.
		panic(fmt.Sprintf("workload: shape build failed mid-run: %v", err))
	}
	scale := s.params.RelFlex * s.params.Shape.SlackScale(s.params.MeanLocalExec)
	sl := scale * s.r.Uniform(s.params.SlackMin, s.params.SlackMax)
	// dl(T) = ar + ex + sl with ex the critical-path execution time:
	// the serial sum for serial tasks, max_i ex(Ti) for parallel tasks
	// (the paper's PSP formula 2), and the serial-parallel critical
	// path for mixed shapes.
	dl := now + g.CriticalPathExec() + sl
	s.start(Spec{Graph: g, Arrival: now, Deadline: dl, Slack: sl})
}
