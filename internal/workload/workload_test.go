package workload

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestPexModelPerfect(t *testing.T) {
	r := rng.New(1)
	m := PexModel{}
	for i := 0; i < 100; i++ {
		ex := r.Exponential(1)
		if got := m.Sample(r, ex); got != ex {
			t.Fatalf("perfect model: pex = %v, want ex = %v", got, ex)
		}
	}
}

func TestPexModelErrorBounds(t *testing.T) {
	r := rng.New(2)
	m := PexModel{RelErr: 0.5}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < 50000; i++ {
		const ex = 2.0
		got := m.Sample(r, ex)
		if got < ex*0.5-1e-9 || got > ex*1.5+1e-9 {
			t.Fatalf("pex = %v outside [1,3]", got)
		}
		lo, hi = math.Min(lo, got), math.Max(hi, got)
	}
	// The error should actually spread across the band.
	if lo > 1.1 || hi < 2.9 {
		t.Errorf("error band barely used: [%v, %v]", lo, hi)
	}
}

func TestPexModelFloor(t *testing.T) {
	r := rng.New(3)
	m := PexModel{RelErr: 2} // can push pex negative without the floor
	for i := 0; i < 10000; i++ {
		if got := m.Sample(r, 0.001); got <= 0 {
			t.Fatalf("pex = %v, want > 0", got)
		}
	}
}

func TestLocalSourceRateAndAttributes(t *testing.T) {
	eng := sim.New()
	r := rng.New(42)
	var tasks []*task.Task
	var id, seq uint64
	src, err := NewLocalSource(eng, r,
		LocalParams{Rate: 2, MeanExec: 1, SlackMin: 0.25, SlackMax: 2.5},
		func() uint64 { id++; return id },
		func() uint64 { seq++; return seq },
		func(tk *task.Task) { tasks = append(tasks, tk) },
	)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	const horizon = 20000.0
	eng.Run(horizon)

	got := float64(len(tasks)) / horizon
	if math.Abs(got-2)/2 > 0.03 {
		t.Errorf("arrival rate = %v, want 2 +/- 3%%", got)
	}
	var exSum, slSum float64
	for _, tk := range tasks {
		if tk.Class != task.Local || tk.Stage != -1 {
			t.Fatal("local task misclassified")
		}
		sl := tk.Slack()
		if sl < 0.25-1e-9 || sl > 2.5+1e-9 {
			t.Fatalf("slack %v outside [0.25, 2.5]", sl)
		}
		if tk.Pex != tk.Exec {
			t.Fatal("perfect prediction expected")
		}
		exSum += tk.Exec
		slSum += sl
	}
	n := float64(len(tasks))
	if math.Abs(exSum/n-1) > 0.03 {
		t.Errorf("mean exec = %v, want 1 +/- 3%%", exSum/n)
	}
	if math.Abs(slSum/n-1.375) > 0.03 {
		t.Errorf("mean slack = %v, want 1.375", slSum/n)
	}
}

func TestLocalSourceZeroRate(t *testing.T) {
	eng := sim.New()
	src, err := NewLocalSource(eng, rng.New(1),
		LocalParams{Rate: 0, MeanExec: 1},
		func() uint64 { return 1 }, func() uint64 { return 1 },
		func(*task.Task) { t.Fatal("task generated at zero rate") },
	)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	eng.Run(1000)
}

func TestLocalSourceValidation(t *testing.T) {
	eng := sim.New()
	id := func() uint64 { return 1 }
	ok := LocalParams{Rate: 1, MeanExec: 1, SlackMin: 0, SlackMax: 1}
	submit := func(*task.Task) {}
	tests := []struct {
		name string
		fn   func() (*LocalSource, error)
	}{
		{name: "nil engine", fn: func() (*LocalSource, error) {
			return NewLocalSource(nil, rng.New(1), ok, id, id, submit)
		}},
		{name: "nil submit", fn: func() (*LocalSource, error) {
			return NewLocalSource(eng, rng.New(1), ok, id, id, nil)
		}},
		{name: "bad mean", fn: func() (*LocalSource, error) {
			return NewLocalSource(eng, rng.New(1), LocalParams{Rate: 1, MeanExec: 0}, id, id, submit)
		}},
		{name: "inverted slack", fn: func() (*LocalSource, error) {
			return NewLocalSource(eng, rng.New(1), LocalParams{Rate: 1, MeanExec: 1, SlackMin: 2, SlackMax: 1}, id, id, submit)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.fn(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSerialShape(t *testing.T) {
	r := rng.New(7)
	s := SerialShape{M: 4, MeanExec: 1}
	g, err := s.Build(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != task.KindSerial || g.LeafCount() != 4 {
		t.Fatalf("got %v", g)
	}
	g.Walk(func(leaf *task.Graph) {
		if leaf.NodeID < 0 || leaf.NodeID >= 6 {
			t.Fatalf("placement %d outside [0,6)", leaf.NodeID)
		}
		if leaf.Exec <= 0 || leaf.Pex != leaf.Exec {
			t.Fatalf("leaf exec/pex = %v/%v", leaf.Exec, leaf.Pex)
		}
	})
	if got := s.SlackScale(1.0); got != 4 {
		t.Errorf("SlackScale = %v, want 4 (m·µl/µs)", got)
	}
	if got := s.SlackScale(0.5); got != 8 {
		t.Errorf("SlackScale(meanLocal=0.5) = %v, want 8", got)
	}
}

func TestParallelShapeDistinctNodes(t *testing.T) {
	r := rng.New(8)
	s := ParallelShape{M: 4, MeanExec: 1}
	for trial := 0; trial < 200; trial++ {
		g, err := s.Build(r, 6)
		if err != nil {
			t.Fatal(err)
		}
		if g.Kind != task.KindParallel {
			t.Fatal("not parallel")
		}
		seen := make(map[int]bool)
		g.Walk(func(leaf *task.Graph) {
			if seen[leaf.NodeID] {
				t.Fatalf("duplicate node %d in parallel placement", leaf.NodeID)
			}
			seen[leaf.NodeID] = true
		})
	}
	if got := s.SlackScale(1.0); got != 1 {
		t.Errorf("parallel SlackScale = %v, want 1 (paper formula 2)", got)
	}
	if _, err := s.Build(r, 3); err == nil {
		t.Error("m=4 on k=3 nodes should fail")
	}
}

func TestMixedShape(t *testing.T) {
	r := rng.New(9)
	s := MixedShape{Stages: []int{1, 3, 1}, MeanExec: 1}
	g, err := s.Build(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != task.KindSerial || len(g.Children) != 3 {
		t.Fatalf("got %v", g)
	}
	if g.Children[1].Kind != task.KindParallel || len(g.Children[1].Children) != 3 {
		t.Fatalf("middle stage: got %v", g.Children[1])
	}
	if g.LeafCount() != 5 || g.Depth() != 3 {
		t.Errorf("leaves=%d depth=%d, want 5 and 3", g.LeafCount(), g.Depth())
	}
	// SlackScale: H_1 + H_3 + H_1 = 1 + 11/6 + 1 = 23/6.
	if got, want := s.SlackScale(1.0), 23.0/6; math.Abs(got-want) > 1e-12 {
		t.Errorf("SlackScale = %v, want %v", got, want)
	}
	if _, err := (MixedShape{Stages: []int{9}, MeanExec: 1}).Build(r, 6); err == nil {
		t.Error("stage wider than k should fail")
	}
	if _, err := (MixedShape{Stages: []int{0}, MeanExec: 1}).Build(r, 6); err == nil {
		t.Error("zero-width stage should fail")
	}
}

func TestHeteroSerialShape(t *testing.T) {
	r := rng.New(10)
	s := HeteroSerialShape{MinM: 2, MaxM: 6, MeanExec: 1}
	counts := make(map[int]int)
	for trial := 0; trial < 2000; trial++ {
		g, err := s.Build(r, 6)
		if err != nil {
			t.Fatal(err)
		}
		counts[g.LeafCount()]++
	}
	for m := 2; m <= 6; m++ {
		if counts[m] == 0 {
			t.Errorf("subtask count %d never generated", m)
		}
	}
	if len(counts) != 5 {
		t.Errorf("unexpected subtask counts: %v", counts)
	}
	if got := s.SlackScale(1.0); got != 4 {
		t.Errorf("SlackScale = %v, want mean m = 4", got)
	}
}

func TestMeanSubtasks(t *testing.T) {
	tests := []struct {
		name string
		give Shape
		want float64
	}{
		{name: "serial", give: SerialShape{M: 4, MeanExec: 1}, want: 4},
		{name: "parallel", give: ParallelShape{M: 3, MeanExec: 1}, want: 3},
		{name: "mixed", give: MixedShape{Stages: []int{1, 3, 1}, MeanExec: 1}, want: 5},
		{name: "hetero", give: HeteroSerialShape{MinM: 2, MaxM: 6, MeanExec: 1}, want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MeanSubtasks(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("MeanSubtasks = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGlobalSourceAttributes(t *testing.T) {
	eng := sim.New()
	r := rng.New(11)
	var specs []Spec
	src, err := NewGlobalSource(eng, r, 6, GlobalParams{
		Rate:          0.5,
		Shape:         SerialShape{M: 4, MeanExec: 1},
		SlackMin:      0.25,
		SlackMax:      2.5,
		RelFlex:       1,
		MeanLocalExec: 1,
	}, func(sp Spec) { specs = append(specs, sp) })
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	const horizon = 20000.0
	eng.Run(horizon)

	rate := float64(len(specs)) / horizon
	if math.Abs(rate-0.5)/0.5 > 0.05 {
		t.Errorf("global rate = %v, want 0.5 +/- 5%%", rate)
	}
	var slackSum, flexSum float64
	for _, sp := range specs {
		// dl = ar + criticalPath + sl must hold exactly.
		wantDL := sp.Arrival + sp.Graph.CriticalPathExec() + sp.Slack
		if math.Abs(sp.Deadline-wantDL) > 1e-9 {
			t.Fatalf("deadline relation broken: %v != %v", sp.Deadline, wantDL)
		}
		// Serial scale = 4: slack uniform on [1, 10].
		if sp.Slack < 4*0.25-1e-9 || sp.Slack > 4*2.5+1e-9 {
			t.Fatalf("slack %v outside [1, 10]", sp.Slack)
		}
		slackSum += sp.Slack
		flexSum += sp.Slack / sp.Graph.TotalExec()
	}
	n := float64(len(specs))
	// Mean slack = 4 · 1.375 = 5.5.
	if math.Abs(slackSum/n-5.5) > 0.15 {
		t.Errorf("mean global slack = %v, want 5.5", slackSum/n)
	}
	// Mean flexibility (E[sl]/E[ex] sense) should be near the locals'
	// 1.375 since rel_flex = 1.
	if flexSum/n < 0.9 || flexSum/n > 2.2 {
		t.Errorf("mean flexibility proxy = %v, implausible for rel_flex=1", flexSum/n)
	}
}

func TestGlobalSourceParallelDeadlineUsesMax(t *testing.T) {
	eng := sim.New()
	r := rng.New(12)
	var specs []Spec
	src, err := NewGlobalSource(eng, r, 6, GlobalParams{
		Rate:          0.5,
		Shape:         ParallelShape{M: 4, MeanExec: 1},
		SlackMin:      1.25,
		SlackMax:      5.0,
		RelFlex:       1,
		MeanLocalExec: 1,
	}, func(sp Spec) { specs = append(specs, sp) })
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	eng.Run(5000)
	if len(specs) == 0 {
		t.Fatal("no global tasks generated")
	}
	for _, sp := range specs {
		maxExec := 0.0
		sp.Graph.Walk(func(l *task.Graph) {
			if l.Exec > maxExec {
				maxExec = l.Exec
			}
		})
		want := sp.Arrival + maxExec + sp.Slack
		if math.Abs(sp.Deadline-want) > 1e-9 {
			t.Fatalf("PSP deadline = %v, want ar+max+sl = %v", sp.Deadline, want)
		}
		if sp.Slack < 1.25-1e-9 || sp.Slack > 5.0+1e-9 {
			t.Fatalf("PSP slack %v outside [1.25, 5.0]", sp.Slack)
		}
	}
}

func TestGlobalSourceValidation(t *testing.T) {
	eng := sim.New()
	start := func(Spec) {}
	okParams := GlobalParams{
		Rate: 1, Shape: SerialShape{M: 2, MeanExec: 1},
		SlackMin: 0, SlackMax: 1, RelFlex: 1, MeanLocalExec: 1,
	}
	if _, err := NewGlobalSource(nil, rng.New(1), 6, okParams, start); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewGlobalSource(eng, rng.New(1), 6, okParams, nil); err == nil {
		t.Error("nil start accepted")
	}
	bad := okParams
	bad.Shape = nil
	if _, err := NewGlobalSource(eng, rng.New(1), 6, bad, start); err == nil {
		t.Error("nil shape accepted")
	}
	impossible := okParams
	impossible.Shape = ParallelShape{M: 10, MeanExec: 1}
	if _, err := NewGlobalSource(eng, rng.New(1), 6, impossible, start); err == nil {
		t.Error("impossible shape accepted")
	}
}

// taskSig fingerprints a generated task's every sampled attribute.
func taskSig(tk *task.Task) [6]float64 {
	return [6]float64{float64(tk.ID), tk.Arrival, tk.Deadline, tk.Exec, tk.Pex, float64(tk.Seq)}
}

// TestLocalSourceReconfigureMatchesFresh pins the warm-workspace reuse
// contract: a source reconfigured in place on a reset engine generates
// exactly the task stream a freshly built source would, including across
// a seed change and a rate change.
func TestLocalSourceReconfigureMatchesFresh(t *testing.T) {
	type runParams struct {
		seed uint64
		rate float64
	}
	runs := []runParams{{seed: 1, rate: 2}, {seed: 9, rate: 2}, {seed: 9, rate: 3.5}}
	const horizon = 2000.0

	params := func(rate float64) LocalParams {
		return LocalParams{Rate: rate, MeanExec: 1, SlackMin: 0.25, SlackMax: 2.5}
	}
	// Reference: a fresh engine + source per run.
	var want [][][6]float64
	for _, rp := range runs {
		eng := sim.New()
		var sigs [][6]float64
		var id, seq uint64
		src, err := NewLocalSource(eng, rng.NewStream(rp.seed, "local-0"), params(rp.rate),
			func() uint64 { id++; return id },
			func() uint64 { seq++; return seq },
			func(tk *task.Task) { sigs = append(sigs, taskSig(tk)) },
		)
		if err != nil {
			t.Fatal(err)
		}
		src.Start()
		eng.Run(horizon)
		want = append(want, sigs)
	}

	// Reused: one engine + one source + one reseeded stream across runs.
	eng := sim.New()
	stream := rng.New(0)
	hash := rng.StreamHash("local-0")
	var src *LocalSource
	for i, rp := range runs {
		eng.Reset()
		stream.ReseedStream(rp.seed, hash)
		var sigs [][6]float64
		var id, seq uint64
		nextID := func() uint64 { id++; return id }
		nextSeq := func() uint64 { seq++; return seq }
		submit := func(tk *task.Task) { sigs = append(sigs, taskSig(tk)) }
		if src == nil {
			var err error
			src, err = NewLocalSource(eng, stream, params(rp.rate), nextID, nextSeq, submit)
			if err != nil {
				t.Fatal(err)
			}
		} else if err := src.Reconfigure(stream, params(rp.rate), nextID, nextSeq, submit); err != nil {
			t.Fatal(err)
		}
		src.Start()
		eng.Run(horizon)
		if len(sigs) != len(want[i]) {
			t.Fatalf("run %d: reused source generated %d tasks, fresh %d", i, len(sigs), len(want[i]))
		}
		for j := range sigs {
			if sigs[j] != want[i][j] {
				t.Fatalf("run %d task %d: reused %v != fresh %v", i, j, sigs[j], want[i][j])
			}
		}
	}
}

// TestGlobalSourceReconfigureMatchesFresh is the global-stream variant:
// sampled graphs, arrivals and deadlines must be identical through
// in-place reconfiguration.
func TestGlobalSourceReconfigureMatchesFresh(t *testing.T) {
	const horizon = 3000.0
	const k = 6
	params := GlobalParams{
		Rate: 0.4, Shape: SerialShape{M: 4, MeanExec: 1},
		SlackMin: 0.25, SlackMax: 2.5, RelFlex: 1, MeanLocalExec: 1,
	}
	sig := func(sp Spec) string {
		return sp.Graph.String() + "|" + fmt.Sprint(sp.Arrival, sp.Deadline, sp.Slack)
	}

	fresh := func(seed uint64) []string {
		eng := sim.New()
		var sigs []string
		src, err := NewGlobalSource(eng, rng.NewStream(seed, "global"), k, params,
			func(sp Spec) { sigs = append(sigs, sig(sp)) })
		if err != nil {
			t.Fatal(err)
		}
		src.Start()
		eng.Run(horizon)
		return sigs
	}

	eng := sim.New()
	stream := rng.New(0)
	hash := rng.StreamHash("global")
	var src *GlobalSource
	for _, seed := range []uint64{1, 2, 77} {
		eng.Reset()
		stream.ReseedStream(seed, hash)
		var sigs []string
		start := func(sp Spec) { sigs = append(sigs, sig(sp)) }
		if src == nil {
			var err error
			src, err = NewGlobalSource(eng, stream, k, params, start)
			if err != nil {
				t.Fatal(err)
			}
		} else if err := src.Reconfigure(stream, k, params, start); err != nil {
			t.Fatal(err)
		}
		src.Start()
		eng.Run(horizon)
		want := fresh(seed)
		if len(sigs) != len(want) {
			t.Fatalf("seed %d: reused source generated %d tasks, fresh %d", seed, len(sigs), len(want))
		}
		for j := range sigs {
			if sigs[j] != want[j] {
				t.Fatalf("seed %d task %d:\nreused %s\nfresh  %s", seed, j, sigs[j], want[j])
			}
		}
	}
}
