package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// LocalFleet generates the local-task streams of every node in one
// structure. It produces exactly the arrivals of one LocalSource per
// node — same streams, same draw order — but lays the state out for
// large topologies: everything the nodes share (the Table 1 parameters,
// the demand and prediction models, the modulator, the callbacks) is
// stored once on the fleet, and the per-node residue shrinks to one
// 64-byte localStream record in a contiguous slice. At 64k nodes the
// per-source working set drops from ~20 MB of scattered source objects
// to 4 MB of records touched one cache line per arrival, with the
// shared half staying resident in L1.
//
// A LocalFleet is single-threaded, like the engine it feeds. The
// equivalence with per-node LocalSources is pinned by
// TestFleetMatchesSources.
type LocalFleet struct {
	eng     *sim.Engine
	cb      sim.Callback
	streams []localStream
	gaps    []gapState // non-empty selects the split RNG layout

	// Shared per-run parameters (see LocalParams for semantics).
	meanExec  float64
	slackMin  float64
	slackMax  float64
	maxFactor float64
	pex       PexModel
	demand    Demand
	mod       RateModulator
	pool      *task.Pool
	submit    func(*task.Task)
	nextID    func() uint64
	nextSq    func() uint64
}

// localStream is one node's arrival-process state: its RNG stream and
// the node's peak-rate mean gap. The back-pointer lets the shared engine
// handler reach the fleet without a per-node closure. Kept to one cache
// line — this record is all the per-node state an arrival touches.
type localStream struct {
	fleet    *LocalFleet
	r        rng.Source
	peakMean float64 // mean inter-candidate gap at the peak rate; 0 = silent
	node     int32
}

// gapState is one node's dedicated gap substream under the split RNG
// layout, with its pre-drawn batch.
type gapState struct {
	r    rng.Source
	buf  [gapBatch]float64
	n, i int32
}

// fleetHandler is the engine callback shared by every stream of every
// fleet; the stream rides along as the payload.
func fleetHandler(p any) { p.(*localStream).candidate() }

// NewLocalFleet returns an empty fleet bound to eng; Configure sizes it.
func NewLocalFleet(eng *sim.Engine) *LocalFleet {
	f := &LocalFleet{}
	f.Init(eng)
	return f
}

// Init binds the fleet to its engine, once per fleet lifetime (or after
// the engine object itself is replaced).
func (f *LocalFleet) Init(eng *sim.Engine) { f.eng = eng }

// FleetParams carries the parameters shared by every node's stream; see
// LocalParams for field semantics. Per-node rate and seeding are set by
// SeedNode.
type FleetParams struct {
	MeanExec           float64
	SlackMin, SlackMax float64
	Pex                PexModel
	Demand             Demand
	Mod                RateModulator
	// SplitGaps selects the split RNG layout: every node draws its
	// inter-arrival gaps from a dedicated substream (seeded via
	// SeedNodeGap) in batches of gapBatch.
	SplitGaps bool
	Pool      *task.Pool
}

// Configure rebinds the fleet for a fresh run of n nodes, reusing the
// stream tables when the node count matches. It must be called after the
// engine was Reset and be followed by SeedNode (and SeedNodeGap under
// the split layout) for every node, then Start.
func (f *LocalFleet) Configure(n int, params FleetParams,
	nextID, nextSeq func() uint64, submit func(*task.Task)) error {
	if f.eng == nil {
		return fmt.Errorf("workload: fleet: nil engine")
	}
	if n <= 0 {
		return fmt.Errorf("workload: fleet: %d nodes, want > 0", n)
	}
	if submit == nil || nextID == nil || nextSeq == nil {
		return fmt.Errorf("workload: fleet: nil dependency")
	}
	if params.MeanExec <= 0 || params.SlackMax < params.SlackMin {
		return fmt.Errorf("workload: fleet: bad params %+v", params)
	}
	if err := ValidateDemand(params.Demand); err != nil {
		return err
	}
	f.maxFactor = 1
	if params.Mod != nil {
		mf := params.Mod.MaxFactor()
		if !(mf > 0) || mf != mf {
			return fmt.Errorf("workload: rate modulator MaxFactor = %v, want > 0", mf)
		}
		f.maxFactor = mf
	}
	f.meanExec = params.MeanExec
	f.slackMin, f.slackMax = params.SlackMin, params.SlackMax
	f.pex, f.demand, f.mod, f.pool = params.Pex, params.Demand, params.Mod, params.Pool
	f.nextID, f.nextSq, f.submit = nextID, nextSeq, submit
	if len(f.streams) != n {
		f.streams = make([]localStream, n)
		for i := range f.streams {
			f.streams[i].fleet = f
			f.streams[i].node = int32(i)
		}
	}
	if params.SplitGaps {
		if len(f.gaps) != n {
			f.gaps = make([]gapState, n)
		}
	} else {
		f.gaps = nil
	}
	f.cb = f.eng.Register(fleetHandler)
	return nil
}

// SeedNode sets node i's arrival rate and reseeds its stream for the
// run. A zero rate silences the node.
func (f *LocalFleet) SeedNode(i int, rate float64, seed, hash uint64) error {
	if rate < 0 {
		return fmt.Errorf("workload: fleet: node %d rate %v, want >= 0", i, rate)
	}
	s := &f.streams[i]
	s.r.ReseedStream(seed, hash)
	s.peakMean = 0
	if rate > 0 {
		s.peakMean = 1 / (rate * f.maxFactor)
	}
	return nil
}

// SeedNodeGap reseeds node i's dedicated gap substream (split layout
// only) and discards any batched gaps of a previous run.
func (f *LocalFleet) SeedNodeGap(i int, seed, hash uint64) {
	g := &f.gaps[i]
	g.r.ReseedStream(seed, hash)
	g.n, g.i = 0, 0
}

// Start schedules every node's first candidate arrival.
func (f *LocalFleet) Start() {
	for i := range f.streams {
		s := &f.streams[i]
		if s.peakMean > 0 {
			f.eng.MustScheduleCall(s.nextGap(), f.cb, s)
		}
	}
}

// candidate fires one candidate arrival at this stream's node, thins it,
// and self-schedules — the fleet form of arrivals.candidate, with the
// identical draw order (thinning, body, next gap on one stream).
func (s *localStream) candidate() {
	f := s.fleet
	if f.accept(&s.r) {
		f.arrive(s)
	}
	f.eng.MustScheduleCall(s.nextGap(), f.cb, s)
}

// accept applies the thinning test at the current time.
func (f *LocalFleet) accept(r *rng.Source) bool {
	if f.mod == nil {
		return true
	}
	v := f.mod.FactorAt(f.eng.Now())
	if v < 0 {
		v = 0
	}
	if v > f.maxFactor {
		panic(fmt.Sprintf("workload: modulator factor %v exceeds declared max %v", v, f.maxFactor))
	}
	return r.Float64()*f.maxFactor < v
}

// arrive emits one accepted local task, with LocalSource.arrive's exact
// draw order.
func (f *LocalFleet) arrive(s *localStream) {
	now := f.eng.Now()
	ex := sampleDemand(f.demand, &s.r, f.meanExec)
	sl := s.r.Uniform(f.slackMin, f.slackMax)
	t := f.pool.Get()
	t.ID = f.nextID()
	t.Class = task.Local
	t.Stage = -1
	t.NodeID = int(s.node)
	t.Arrival = now
	t.Deadline = now + ex + sl // dl = ar + ex + sl
	t.FirmDeadline = now + ex + sl
	t.Exec = ex
	t.Pex = f.pex.Sample(&s.r, ex)
	t.Seq = f.nextSq()
	f.submit(t)
}

// nextGap draws the stream's next inter-candidate gap from whichever
// stream the configured layout assigns it to.
func (s *localStream) nextGap() float64 {
	f := s.fleet
	if f.gaps == nil {
		return s.r.Exponential(s.peakMean)
	}
	g := &f.gaps[s.node]
	if g.i == g.n {
		g.r.ExponentialFill(g.buf[:], s.peakMean)
		g.n, g.i = gapBatch, 0
	}
	v := g.buf[g.i]
	g.i++
	return v
}
