package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// RateModulator scales a source's arrival rate over simulated time,
// turning the stationary Poisson streams of the paper into
// non-homogeneous ones (load steps, ramps, bursts). FactorAt must be
// bounded above by MaxFactor for all t; both must be pure functions so
// runs stay deterministic. The scenario package provides the standard
// implementation.
type RateModulator interface {
	// FactorAt returns the instantaneous rate multiplier at time t
	// (1 = nominal).
	FactorAt(t float64) float64
	// MaxFactor returns a finite upper bound on FactorAt over the run.
	MaxFactor() float64
}

// arrivalOwner is the source behind an arrivals loop; accepted
// candidates call back into it. An interface instead of a captured
// func() lets the loop live by value inside its owner with no per-source
// closure allocations.
type arrivalOwner interface{ arrive() }

// gapBatch is the number of inter-candidate gaps pre-drawn per refill
// under the split RNG layout. Small on purpose: the buffer lives by
// value in every source, and a 64k-node topology carries one buffer per
// node.
const gapBatch = 8

// arrivals drives one source's arrival process. With a nil modulator it
// draws plain exponential gaps — byte-identical to the pre-scenario
// generator. With a modulator it generates a non-homogeneous Poisson
// process by Lewis-Shedler thinning: candidate arrivals fire at the peak
// rate rate·MaxFactor and each is accepted with probability
// FactorAt(now)/MaxFactor, which needs no rate integration and keeps the
// run a pure function of the seed.
//
// The candidate loop is the single hottest call site of a run, so it is
// kept allocation-free and branch-lean: the peak-rate mean gap and the
// modulator's bound are hoisted to fields at construction (MaxFactor is
// constant by contract), the loop lives by value inside its owning
// source, and self-scheduling goes through one package-level handler
// (the loop itself rides along as the payload word) instead of a
// per-source closure.
//
// RNG layout: by default (gap == nil) every draw of the source — gap,
// thinning accept, and the arrival's body draws — interleaves on the one
// stream r, in exact arrival order; this is the historical layout and
// its results are frozen by the golden files. With a dedicated gap
// stream (the split layout), gap draws move to their own substream and
// are pre-drawn gapBatch at a time, which batches the per-candidate
// draw overhead without perturbing the body draws' stream. The two
// layouts produce different (equally valid) sample paths, which is why
// the split layout sits behind an explicit configuration knob with its
// own golden files.
type arrivals struct {
	eng       *sim.Engine
	r         *rng.Source
	gap       *rng.Source // non-nil selects the split gap substream
	rate      float64
	peakMean  float64 // mean inter-candidate gap at the peak rate
	maxFactor float64 // cached mod.MaxFactor(); 1 with no modulator
	mod       RateModulator
	owner     arrivalOwner
	cb        sim.Callback
	gapBuf    [gapBatch]float64
	gapN      int // valid entries in gapBuf
	gapI      int // next entry to consume
}

// candidateHandler is the engine callback behind every arrivals loop;
// the loop rides along as the payload.
func candidateHandler(p any) { p.(*arrivals).candidate() }

// init binds the loop to its engine and owner, once per source
// lifetime.
func (a *arrivals) init(eng *sim.Engine, owner arrivalOwner) {
	a.eng, a.owner = eng, owner
}

// reconfigure rebinds the arrivals loop for a fresh run in place: a new
// (typically reseeded) RNG stream, rate, modulator and optional gap
// substream, re-registering the shared handler on the engine (an engine
// Reset clears registrations). It performs the same validation as
// construction and allocates nothing after the first run.
func (a *arrivals) reconfigure(r, gap *rng.Source, rate float64, mod RateModulator) error {
	maxFactor := 1.0
	if mod != nil {
		maxFactor = mod.MaxFactor()
		if !(maxFactor > 0) || maxFactor != maxFactor {
			return fmt.Errorf("workload: rate modulator MaxFactor = %v, want > 0", maxFactor)
		}
	}
	a.r, a.gap, a.rate, a.maxFactor, a.mod = r, gap, rate, maxFactor, mod
	a.peakMean = 0
	if rate > 0 {
		a.peakMean = 1 / (rate * maxFactor)
	}
	a.gapN, a.gapI = 0, 0
	a.cb = a.eng.Register(candidateHandler)
	return nil
}

// nextGap draws the next inter-candidate gap from whichever stream the
// configured layout assigns it to.
func (a *arrivals) nextGap() float64 {
	if a.gap == nil {
		return a.r.Exponential(a.peakMean)
	}
	if a.gapI == a.gapN {
		a.gap.ExponentialFill(a.gapBuf[:], a.peakMean)
		a.gapN, a.gapI = gapBatch, 0
	}
	g := a.gapBuf[a.gapI]
	a.gapI++
	return g
}

// start schedules the first candidate. A zero rate generates nothing.
func (a *arrivals) start() {
	if a.rate == 0 {
		return
	}
	a.eng.MustScheduleCall(a.nextGap(), a.cb, a)
}

// candidate fires one candidate arrival, thins it, and self-schedules.
func (a *arrivals) candidate() {
	if a.accept() {
		a.owner.arrive()
	}
	a.eng.MustScheduleCall(a.nextGap(), a.cb, a)
}

// accept applies the thinning test at the current time.
func (a *arrivals) accept() bool {
	if a.mod == nil {
		return true
	}
	f := a.mod.FactorAt(a.eng.Now())
	if f < 0 {
		f = 0
	}
	if f > a.maxFactor {
		panic(fmt.Sprintf("workload: modulator factor %v exceeds declared max %v", f, a.maxFactor))
	}
	return a.r.Float64()*a.maxFactor < f
}
