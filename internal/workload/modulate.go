package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// RateModulator scales a source's arrival rate over simulated time,
// turning the stationary Poisson streams of the paper into
// non-homogeneous ones (load steps, ramps, bursts). FactorAt must be
// bounded above by MaxFactor for all t; both must be pure functions so
// runs stay deterministic. The scenario package provides the standard
// implementation.
type RateModulator interface {
	// FactorAt returns the instantaneous rate multiplier at time t
	// (1 = nominal).
	FactorAt(t float64) float64
	// MaxFactor returns a finite upper bound on FactorAt over the run.
	MaxFactor() float64
}

// arrivals drives one source's arrival process. With a nil modulator it
// draws plain exponential gaps — byte-identical to the pre-scenario
// generator. With a modulator it generates a non-homogeneous Poisson
// process by Lewis-Shedler thinning: candidate arrivals fire at the peak
// rate rate·MaxFactor and each is accepted with probability
// FactorAt(now)/MaxFactor, which needs no rate integration and keeps the
// run a pure function of the seed.
type arrivals struct {
	eng  *sim.Engine
	r    *rng.Source
	rate float64
	mod  RateModulator
	fire func()
}

// newArrivals validates the modulator's bound once at construction.
func newArrivals(eng *sim.Engine, r *rng.Source, rate float64, mod RateModulator, fire func()) (*arrivals, error) {
	if mod != nil {
		max := mod.MaxFactor()
		if !(max > 0) || max != max {
			return nil, fmt.Errorf("workload: rate modulator MaxFactor = %v, want > 0", max)
		}
	}
	return &arrivals{eng: eng, r: r, rate: rate, mod: mod, fire: fire}, nil
}

// start schedules the first candidate. A zero rate generates nothing.
func (a *arrivals) start() {
	if a.rate == 0 {
		return
	}
	a.eng.MustSchedule(a.r.Exponential(1/a.peakRate()), a.candidate)
}

// peakRate is the homogeneous rate candidates are generated at.
func (a *arrivals) peakRate() float64 {
	if a.mod == nil {
		return a.rate
	}
	return a.rate * a.mod.MaxFactor()
}

// candidate fires one candidate arrival, thins it, and self-schedules.
func (a *arrivals) candidate() {
	if a.accept() {
		a.fire()
	}
	a.eng.MustSchedule(a.r.Exponential(1/a.peakRate()), a.candidate)
}

// accept applies the thinning test at the current time.
func (a *arrivals) accept() bool {
	if a.mod == nil {
		return true
	}
	max := a.mod.MaxFactor()
	f := a.mod.FactorAt(a.eng.Now())
	if f < 0 {
		f = 0
	}
	if f > max {
		panic(fmt.Sprintf("workload: modulator factor %v exceeds declared max %v", f, max))
	}
	return a.r.Float64()*max < f
}
