package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// RateModulator scales a source's arrival rate over simulated time,
// turning the stationary Poisson streams of the paper into
// non-homogeneous ones (load steps, ramps, bursts). FactorAt must be
// bounded above by MaxFactor for all t; both must be pure functions so
// runs stay deterministic. The scenario package provides the standard
// implementation.
type RateModulator interface {
	// FactorAt returns the instantaneous rate multiplier at time t
	// (1 = nominal).
	FactorAt(t float64) float64
	// MaxFactor returns a finite upper bound on FactorAt over the run.
	MaxFactor() float64
}

// arrivals drives one source's arrival process. With a nil modulator it
// draws plain exponential gaps — byte-identical to the pre-scenario
// generator. With a modulator it generates a non-homogeneous Poisson
// process by Lewis-Shedler thinning: candidate arrivals fire at the peak
// rate rate·MaxFactor and each is accepted with probability
// FactorAt(now)/MaxFactor, which needs no rate integration and keeps the
// run a pure function of the seed.
//
// The candidate loop is the single hottest call site of a run, so it is
// kept allocation-free and branch-lean: the peak-rate mean gap and the
// modulator's bound are hoisted to fields at construction (MaxFactor is
// constant by contract), and self-scheduling goes through one Callback
// registered up front instead of a per-event closure. Gap draws are NOT
// batched ahead of time: the body draws of each arrival (demand, slack,
// pex, shape) interleave with the gap draws on the same RNG stream, so
// pre-drawing gaps would reorder the stream's consumption and change
// every downstream result — the per-draw overhead is instead cut by
// removing the interface calls and divisions this loop used to perform
// per candidate.
type arrivals struct {
	eng       *sim.Engine
	r         *rng.Source
	rate      float64
	peakMean  float64 // mean inter-candidate gap at the peak rate
	maxFactor float64 // cached mod.MaxFactor(); 1 with no modulator
	mod       RateModulator
	fire      func()
	cb        sim.Callback
	handler   func(any) // the one closure behind cb, allocated once
}

// newArrivals validates the modulator's bound once at construction and
// registers the self-scheduling callback.
func newArrivals(eng *sim.Engine, r *rng.Source, rate float64, mod RateModulator, fire func()) (*arrivals, error) {
	a := &arrivals{eng: eng, fire: fire}
	a.handler = func(any) { a.candidate() }
	if err := a.reconfigure(r, rate, mod); err != nil {
		return nil, err
	}
	return a, nil
}

// reconfigure rebinds the arrivals loop for a fresh run in place: a new
// (typically reseeded) RNG stream, rate and modulator, re-registering the
// pre-allocated handler on the engine (an engine Reset clears
// registrations). The fire callback is fixed at construction — it closes
// over the owning source, which is exactly what reuse preserves. It
// performs the same validation as construction and allocates nothing
// after the first run.
func (a *arrivals) reconfigure(r *rng.Source, rate float64, mod RateModulator) error {
	maxFactor := 1.0
	if mod != nil {
		maxFactor = mod.MaxFactor()
		if !(maxFactor > 0) || maxFactor != maxFactor {
			return fmt.Errorf("workload: rate modulator MaxFactor = %v, want > 0", maxFactor)
		}
	}
	a.r, a.rate, a.maxFactor, a.mod = r, rate, maxFactor, mod
	a.peakMean = 0
	if rate > 0 {
		a.peakMean = 1 / (rate * maxFactor)
	}
	a.cb = a.eng.Register(a.handler)
	return nil
}

// start schedules the first candidate. A zero rate generates nothing.
func (a *arrivals) start() {
	if a.rate == 0 {
		return
	}
	a.eng.MustScheduleCall(a.r.Exponential(a.peakMean), a.cb, nil)
}

// candidate fires one candidate arrival, thins it, and self-schedules.
func (a *arrivals) candidate() {
	if a.accept() {
		a.fire()
	}
	a.eng.MustScheduleCall(a.r.Exponential(a.peakMean), a.cb, nil)
}

// accept applies the thinning test at the current time.
func (a *arrivals) accept() bool {
	if a.mod == nil {
		return true
	}
	f := a.mod.FactorAt(a.eng.Now())
	if f < 0 {
		f = 0
	}
	if f > a.maxFactor {
		panic(fmt.Sprintf("workload: modulator factor %v exceeds declared max %v", f, a.maxFactor))
	}
	return a.r.Float64()*a.maxFactor < f
}
