package rng

import (
	"fmt"
	"testing"
)

// TestStreamHashParts pins the allocation-free label hash to the
// formatted StreamHash it replaces.
func TestStreamHashParts(t *testing.T) {
	for _, i := range []uint64{0, 1, 9, 10, 12345, 65535, 18446744073709551615} {
		if got, want := StreamHashParts("local-", i, ""), StreamHash(fmt.Sprintf("local-%d", i)); got != want {
			t.Errorf("StreamHashParts(local-, %d) = %#x, want %#x", i, got, want)
		}
		if got, want := StreamHashParts("local-", i, "-gap"), StreamHash(fmt.Sprintf("local-%d-gap", i)); got != want {
			t.Errorf("StreamHashParts(local-, %d, -gap) = %#x, want %#x", i, got, want)
		}
	}
	if n := testing.AllocsPerRun(100, func() { StreamHashParts("local-", 54321, "-gap") }); n != 0 {
		t.Errorf("StreamHashParts allocates %.1f times per call, want 0", n)
	}
}

// TestSampleDistinctRewind checks the scratch permutation is restored
// between calls, including across different n, and that steady-state
// calls allocate nothing.
func TestSampleDistinctRewind(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 200; i++ {
		n := 3 + a.IntN(40)
		b.IntN(40)
		count := 1 + a.IntN(n)
		b.IntN(n)
		got := append([]int(nil), a.SampleDistinct(count, n)...)
		// The reference: a fresh partial Fisher-Yates on an identical
		// stream state.
		idx := make([]int, n)
		for j := range idx {
			idx[j] = j
		}
		for j := 0; j < count; j++ {
			k := j + b.IntN(n-j)
			idx[j], idx[k] = idx[k], idx[j]
		}
		for j, v := range idx[:count] {
			if got[j] != v {
				t.Fatalf("iteration %d: SampleDistinct(%d,%d) = %v, reference %v", i, count, n, got, idx[:count])
			}
		}
	}
	r := New(7)
	r.SampleDistinct(4, 16) // warm scratch
	if n := testing.AllocsPerRun(100, func() { r.SampleDistinct(4, 16) }); n != 0 {
		t.Errorf("warm SampleDistinct allocates %.1f times per call, want 0", n)
	}
}
