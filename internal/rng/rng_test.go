package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sources with different seeds produced %d identical draws", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, "arrivals")
	b := NewStream(7, "service")
	c := NewStream(7, "arrivals")
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("draw %d: same (seed,label) diverged", i)
		}
		if av == bv {
			t.Fatalf("draw %d: different labels collided", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want 0.5 +/- 0.005", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want 1/12 +/- 0.005", variance)
	}
}

func TestIntNRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.IntN(7)]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("IntN(7) never produced %d", v)
		}
		// Expected 10000 per bucket; allow 10% slop.
		if c < 9000 || c > 11000 {
			t.Errorf("IntN(7) bucket %d count = %d, want about 10000", v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestSampleDistinct(t *testing.T) {
	r := New(9)
	for trial := 0; trial < 1000; trial++ {
		got := r.SampleDistinct(4, 6)
		if len(got) != 4 {
			t.Fatalf("len = %d, want 4", len(got))
		}
		seen := make(map[int]bool, 4)
		for _, v := range got {
			if v < 0 || v >= 6 {
				t.Fatalf("value %d out of [0,6)", v)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d in %v", v, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctFullRange(t *testing.T) {
	r := New(10)
	got := r.SampleDistinct(5, 5)
	seen := make(map[int]bool, 5)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("SampleDistinct(5,5) = %v, want a permutation of 0..4", got)
	}
}

func TestSampleDistinctEmpty(t *testing.T) {
	if got := New(1).SampleDistinct(0, 5); got != nil {
		t.Fatalf("SampleDistinct(0,5) = %v, want nil", got)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(13)
	const (
		n    = 200000
		mean = 2.5
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean)/mean > 0.02 {
		t.Errorf("exponential mean = %v, want %v +/- 2%%", gotMean, mean)
	}
	if math.Abs(gotVar-mean*mean)/(mean*mean) > 0.05 {
		t.Errorf("exponential variance = %v, want %v +/- 5%%", gotVar, mean*mean)
	}
}

func TestParetoMomentsAndSupport(t *testing.T) {
	r := New(29)
	const (
		n     = 200000
		alpha = 2.5
		xm    = 1.5
	)
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto variate %v below scale %v", v, xm)
		}
		sum += v
	}
	want := xm * alpha / (alpha - 1) // mean of Pareto(alpha, xm)
	if got := sum / n; math.Abs(got-want)/want > 0.03 {
		t.Errorf("Pareto mean = %v, want %v +/- 3%%", got, want)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {2, 0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			r.Pareto(bad[0], bad[1])
		}()
	}
}

func TestLognormalMoments(t *testing.T) {
	r := New(31)
	const (
		n     = 200000
		mu    = 0.4
		sigma = 0.8
	)
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Lognormal(mu, sigma)
		if v <= 0 {
			t.Fatalf("non-positive lognormal variate %v", v)
		}
		sum += v
	}
	want := math.Exp(mu + sigma*sigma/2)
	if got := sum / n; math.Abs(got-want)/want > 0.03 {
		t.Errorf("lognormal mean = %v, want %v +/- 3%%", got, want)
	}
	// Sigma 0 degenerates to a point mass at e^mu.
	if got := r.Lognormal(mu, 0); math.Abs(got-math.Exp(mu)) > 1e-12 {
		t.Errorf("Lognormal(mu, 0) = %v, want e^mu", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Lognormal with negative sigma did not panic")
			}
		}()
		r.Lognormal(0, -1)
	}()
}

func TestErlangMoments(t *testing.T) {
	r := New(17)
	const (
		n         = 100000
		k         = 4
		stageMean = 1.0
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Erlang(k, stageMean)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	wantMean := float64(k) * stageMean
	wantVar := float64(k) * stageMean * stageMean
	if math.Abs(gotMean-wantMean)/wantMean > 0.02 {
		t.Errorf("erlang mean = %v, want %v +/- 2%%", gotMean, wantMean)
	}
	if math.Abs(gotVar-wantVar)/wantVar > 0.06 {
		t.Errorf("erlang variance = %v, want %v +/- 6%%", gotVar, wantVar)
	}
}

func TestPoissonMean(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{name: "small", mean: 0.5},
		{name: "moderate", mean: 4},
		{name: "large", mean: 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(19)
			const n = 50000
			sum := 0
			for i := 0; i < n; i++ {
				sum += r.Poisson(tt.mean)
			}
			got := float64(sum) / n
			if math.Abs(got-tt.mean)/tt.mean > 0.03 {
				t.Errorf("poisson(%v) mean = %v, want +/- 3%%", tt.mean, got)
			}
		})
	}
}

func TestPoissonZero(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const (
		n      = 200000
		mean   = -3.0
		stddev = 2.0
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 0.02 {
		t.Errorf("normal mean = %v, want %v", gotMean, mean)
	}
	if math.Abs(gotVar-stddev*stddev) > 0.08 {
		t.Errorf("normal variance = %v, want %v", gotVar, stddev*stddev)
	}
}

func TestUniformPropertyInRange(t *testing.T) {
	r := New(29)
	f := func(lo float64, width uint16) bool {
		lo = math.Mod(lo, 1e6)
		hi := lo + float64(width)
		v := r.Uniform(lo, hi)
		if width == 0 {
			return v == lo
		}
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntNPropertyInRange(t *testing.T) {
	r := New(31)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.IntN(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExponential(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exponential(1)
	}
	_ = sink
}

// TestReseedMatchesNew pins the in-place reseeding contract: a reused
// Source reseeded for a new run must produce exactly the sequence a
// freshly constructed one would.
func TestReseedMatchesNew(t *testing.T) {
	reused := New(1)
	for i := 0; i < 17; i++ {
		reused.Uint64() // desync the state from any fresh source
	}
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		reused.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 64; i++ {
			if got, want := reused.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Reseed gave %d, New gave %d", seed, i, got, want)
			}
		}
	}
}

// TestReseedStreamMatchesNewStream pins the substream variant, including
// the cached-hash path a warm workspace uses.
func TestReseedStreamMatchesNewStream(t *testing.T) {
	reused := New(9)
	for _, tc := range []struct {
		seed  uint64
		label string
	}{
		{1, "global"}, {1, "local-0"}, {7, "local-63"}, {1 << 40, "churn-node-1023"},
	} {
		h := StreamHash(tc.label)
		reused.ReseedStream(tc.seed, h)
		fresh := NewStream(tc.seed, tc.label)
		for i := 0; i < 64; i++ {
			if got, want := reused.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("(%d,%q) draw %d: ReseedStream gave %d, NewStream gave %d",
					tc.seed, tc.label, i, got, want)
			}
		}
	}
}
