package rng

import "math"

// Uniform returns a value uniformly distributed in [lo, hi). It panics if
// hi < lo.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Exponential returns an exponentially distributed value with the given
// mean. It panics if mean <= 0. Exponential variates model both service
// demands and Poisson inter-arrival gaps in the paper's workload.
func (r *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential called with mean <= 0")
	}
	// 1-Float64() is in (0,1], so the logarithm is finite.
	return -mean * math.Log(1-r.Float64())
}

// ExponentialFill fills dst with independent exponential variates of the
// given mean, drawn in sequence order — dst[0] consumes the stream
// first. It is the batched form of Exponential for callers that own a
// dedicated stream (the split RNG layout's gap substreams): one call
// amortizes the function-call overhead across the batch. It panics if
// mean <= 0.
func (r *Source) ExponentialFill(dst []float64, mean float64) {
	if mean <= 0 {
		panic("rng: ExponentialFill called with mean <= 0")
	}
	for i := range dst {
		dst[i] = -mean * math.Log(1-r.Float64())
	}
}

// Erlang returns an Erlang-k distributed value: the sum of k independent
// exponentials each with mean stageMean. The paper notes that the total
// execution time of an m-stage global task is m-stage Erlang.
func (r *Source) Erlang(k int, stageMean float64) float64 {
	if k <= 0 {
		panic("rng: Erlang called with k <= 0")
	}
	// Product-of-uniforms form needs a single log instead of k of them.
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= 1 - r.Float64()
	}
	return -stageMean * math.Log(prod)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's multiplication method for small means and a normal approximation
// beyond. Arrival processes in the simulator are generated from
// exponential gaps, so this is only used for batch-style workloads and
// tests.
func (r *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson called with mean < 0")
	}
	if mean == 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; adequate for
		// workload shaping at large means.
		v := r.Normal(mean, math.Sqrt(mean)) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	limit := math.Exp(-mean)
	count := 0
	for prod := r.Float64(); prod > limit; prod *= r.Float64() {
		count++
	}
	return count
}

// Pareto returns a Pareto-distributed value with shape alpha and scale
// (minimum) xm, via inversion: xm · U^(−1/alpha). It panics if alpha <= 0
// or xm <= 0. With alpha <= 1 the distribution has infinite mean; the
// workload package therefore requires alpha > 1 for demand modelling.
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto called with alpha <= 0 or xm <= 0")
	}
	// 1-Float64() is in (0,1], so the power is finite.
	return xm * math.Pow(1-r.Float64(), -1/alpha)
}

// Lognormal returns exp(N(mu, sigma)): a lognormally distributed value
// whose logarithm has mean mu and standard deviation sigma. It panics if
// sigma < 0. The mean of the variate is exp(mu + sigma²/2).
func (r *Source) Lognormal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: Lognormal called with sigma < 0")
	}
	return math.Exp(r.Normal(mu, sigma))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, generated with the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}
