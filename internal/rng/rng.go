// Package rng provides a small, deterministic pseudo-random number
// generator with named substreams and the variate distributions needed by
// the simulation model of Kao & Garcia-Molina (exponential service times,
// uniform slack, Poisson arrival processes).
//
// The generator is xoshiro256** seeded through SplitMix64, which gives
// high-quality 64-bit outputs with a tiny, allocation-free state. Every
// simulation run is a pure function of (seed, stream labels), so varying
// one model parameter never perturbs the draws of an unrelated source.
package rng

import "math/bits"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; derive one Source per goroutine or per model entity
// with NewStream.
type Source struct {
	s [4]uint64

	// ds holds the SampleDistinct scratch, behind one pointer so a
	// Source stays 40 bytes — large topologies keep one Source per node
	// in a contiguous slice, and only placement streams ever sample.
	// Nil until the first SampleDistinct call.
	ds *distinctScratch
}

// distinctScratch is SampleDistinct's persistent state: perm is an
// identity permutation the partial Fisher-Yates runs over (restored
// after every call), jbuf records the swap partners so the restore can
// rewind, and res carries the returned sample.
type distinctScratch struct {
	perm, jbuf, res []int
}

// New returns a Source seeded from seed via SplitMix64. Any seed value,
// including zero, yields a well-mixed state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	return &src
}

// NewStream derives an independent substream from the source's seed and a
// label. Streams with different labels are statistically independent for
// all practical purposes; the same (seed, label) pair always produces the
// same stream.
func NewStream(seed uint64, label string) *Source {
	var src Source
	src.ReseedStream(seed, StreamHash(label))
	return &src
}

// StreamHash returns the label hash NewStream mixes into the seed. The
// hash depends only on the label, so callers that reseed the same stream
// every run (a warm simulation workspace) can compute it once and avoid
// re-formatting and re-hashing the label per run.
func StreamHash(label string) uint64 { return fnv64a(label) }

// StreamHashParts returns StreamHash(prefix + decimal(n) + suffix)
// without formatting the label: large topologies derive one stream per
// node ("local-0", "local-1", ...), and hashing the parts directly
// avoids a per-node string allocation during setup.
func StreamHashParts(prefix string, n uint64, suffix string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(prefix); i++ {
		h ^= uint64(prefix[i])
		h *= prime
	}
	var digits [20]byte
	d := len(digits)
	for {
		d--
		digits[d] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for ; d < len(digits); d++ {
		h ^= uint64(digits[d])
		h *= prime
	}
	for i := 0; i < len(suffix); i++ {
		h ^= uint64(suffix[i])
		h *= prime
	}
	return h
}

// Reseed re-derives the source's state from seed in place, exactly as
// New(seed) would, without allocating. The source must not be shared with
// another goroutine while reseeding.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
}

// ReseedStream re-derives the substream state for (seed, hash) in place,
// producing exactly the sequence of NewStream(seed, label) for
// hash = StreamHash(label). It lets a reused Source take on a new
// replication's seed without a fresh allocation.
func (r *Source) ReseedStream(seed, hash uint64) {
	// Mix the label hash into the seed before expanding the state so that
	// streams do not share any prefix of the SplitMix64 sequence.
	mixed, _ := splitMix64(seed ^ hash)
	r.Reseed(mixed ^ hash)
}

// Uint64 returns the next 64-bit value from the xoshiro256** sequence.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The implementation uses Lemire's multiply-shift rejection method
// to avoid modulo bias.
func (r *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// SampleDistinct returns count distinct integers drawn uniformly from
// [0, n), in random order. It panics if count > n or n <= 0. It is used to
// place parallel subtasks at distinct nodes (paper section 5.2).
//
// The returned slice is owned by the source and overwritten by the next
// SampleDistinct call; callers consume it before drawing again. The
// implementation is a partial Fisher-Yates over a persistent identity
// permutation that is rewound after the draw, so the cost is O(count)
// per call — not O(n) — and zero allocations at steady state. The draw
// sequence and returned values are identical to the original
// fresh-slice implementation.
func (r *Source) SampleDistinct(count, n int) []int {
	if count > n {
		panic("rng: SampleDistinct called with count > n")
	}
	if count <= 0 {
		return nil
	}
	if r.ds == nil {
		r.ds = &distinctScratch{}
	}
	ds := r.ds
	if len(ds.perm) < n {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		// Entries below the previous length are identity by the rewind
		// invariant, so a plain rebuild is correct either way.
		ds.perm = perm
	}
	if cap(ds.jbuf) < count {
		ds.jbuf = make([]int, count)
		ds.res = make([]int, count)
	}
	idx, js := ds.perm, ds.jbuf[:count]
	for i := 0; i < count; i++ {
		j := i + r.IntN(n-i)
		js[i] = j
		idx[i], idx[j] = idx[j], idx[i]
	}
	res := ds.res[:count]
	copy(res, idx[:count])
	// Rewind the swaps in reverse order, restoring the identity
	// permutation for the next call (possibly with a different n).
	for i := count - 1; i >= 0; i-- {
		j := js[i]
		idx[i], idx[j] = idx[j], idx[i]
	}
	return res
}

// splitMix64 advances a SplitMix64 state and returns (nextState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// fnv64a hashes s with the FNV-1a 64-bit hash.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
