// Package rng provides a small, deterministic pseudo-random number
// generator with named substreams and the variate distributions needed by
// the simulation model of Kao & Garcia-Molina (exponential service times,
// uniform slack, Poisson arrival processes).
//
// The generator is xoshiro256** seeded through SplitMix64, which gives
// high-quality 64-bit outputs with a tiny, allocation-free state. Every
// simulation run is a pure function of (seed, stream labels), so varying
// one model parameter never perturbs the draws of an unrelated source.
package rng

import "math/bits"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; derive one Source per goroutine or per model entity
// with NewStream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64. Any seed value,
// including zero, yields a well-mixed state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	return &src
}

// NewStream derives an independent substream from the source's seed and a
// label. Streams with different labels are statistically independent for
// all practical purposes; the same (seed, label) pair always produces the
// same stream.
func NewStream(seed uint64, label string) *Source {
	var src Source
	src.ReseedStream(seed, StreamHash(label))
	return &src
}

// StreamHash returns the label hash NewStream mixes into the seed. The
// hash depends only on the label, so callers that reseed the same stream
// every run (a warm simulation workspace) can compute it once and avoid
// re-formatting and re-hashing the label per run.
func StreamHash(label string) uint64 { return fnv64a(label) }

// Reseed re-derives the source's state from seed in place, exactly as
// New(seed) would, without allocating. The source must not be shared with
// another goroutine while reseeding.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
}

// ReseedStream re-derives the substream state for (seed, hash) in place,
// producing exactly the sequence of NewStream(seed, label) for
// hash = StreamHash(label). It lets a reused Source take on a new
// replication's seed without a fresh allocation.
func (r *Source) ReseedStream(seed, hash uint64) {
	// Mix the label hash into the seed before expanding the state so that
	// streams do not share any prefix of the SplitMix64 sequence.
	mixed, _ := splitMix64(seed ^ hash)
	r.Reseed(mixed ^ hash)
}

// Uint64 returns the next 64-bit value from the xoshiro256** sequence.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The implementation uses Lemire's multiply-shift rejection method
// to avoid modulo bias.
func (r *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// SampleDistinct returns count distinct integers drawn uniformly from
// [0, n), in random order. It panics if count > n or n <= 0. It is used to
// place parallel subtasks at distinct nodes (paper section 5.2).
func (r *Source) SampleDistinct(count, n int) []int {
	if count > n {
		panic("rng: SampleDistinct called with count > n")
	}
	if count <= 0 {
		return nil
	}
	// Partial Fisher-Yates over a fresh index slice. n is the node count
	// of the simulated system (single digits in the paper), so the O(n)
	// allocation is negligible.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:count]
}

// splitMix64 advances a SplitMix64 state and returns (nextState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// fnv64a hashes s with the FNV-1a 64-bit hash.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
