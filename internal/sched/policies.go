package sched

import "repro/internal/task"

// edfQueue orders tasks by deadline (earliest first). Deadlines are fixed
// at submission, so the key is cached in the entry at push time.
type edfQueue struct {
	h entryHeap
}

// NewEDF returns an earliest-deadline-first queue.
func NewEDF() Queue {
	return &edfQueue{}
}

// Push implements Queue.
func (q *edfQueue) Push(t *task.Task) { q.h.push(t.Deadline, t) }

// Pop implements Queue.
func (q *edfQueue) Pop(float64) *task.Task { return q.h.pop() }

// Len implements Queue.
func (q *edfQueue) Len() int { return q.h.len() }

// Name implements Queue.
func (q *edfQueue) Name() string { return "EDF" }

// Reset implements Resetter.
func (q *edfQueue) Reset() { q.h.reset() }

// Grow implements Grower.
func (q *edfQueue) Grow(capacity int) { q.h.grow(capacity) }

// fcfsQueue serves tasks in submission-sequence order. Because arrival
// order is the key, no heap is needed: the queue is a ring-buffer deque
// with O(1) push and pop and no comparisons.
//
// Pushes arrive in increasing Seq order with one exception: a preemptive
// node re-queues the task it suspends, and that task's Seq is smaller
// than every queued task's (it was the minimum when it was dispatched,
// and everything since arrived later). Routing that case to the front of
// the deque reproduces the previous seq-ordered heap exactly.
type fcfsQueue struct {
	buf  []*task.Task
	head int
	n    int
}

// NewFCFS returns a first-come-first-served queue.
func NewFCFS() Queue {
	return &fcfsQueue{}
}

// Push implements Queue.
func (q *fcfsQueue) Push(t *task.Task) {
	if q.n == len(q.buf) {
		q.growTo(2 * q.n)
	}
	if q.n > 0 && t.Seq < q.buf[q.head].Seq {
		// A re-queued (preempted) task resumes its FIFO position.
		q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
		q.buf[q.head] = t
		q.n++
		return
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

// Pop implements Queue.
func (q *fcfsQueue) Pop(float64) *task.Task {
	if q.n == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t
}

// Len implements Queue.
func (q *fcfsQueue) Len() int { return q.n }

// Name implements Queue.
func (q *fcfsQueue) Name() string { return "FCFS" }

// Reset implements Resetter.
func (q *fcfsQueue) Reset() {
	for i := range q.buf {
		q.buf[i] = nil
	}
	q.head, q.n = 0, 0
}

// Grow implements Grower.
func (q *fcfsQueue) Grow(capacity int) {
	if capacity > len(q.buf) {
		q.growTo(capacity)
	}
}

// growTo resizes the ring to hold capacity tasks, unrolling the queue to
// the front of the new buffer.
func (q *fcfsQueue) growTo(capacity int) {
	if capacity < 8 {
		capacity = 8
	}
	buf := make([]*task.Task, capacity)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}

// mlfQueue implements non-preemptive minimum-laxity-first. Laxity
// dl − now − pex depends on the dispatch time, but `now` is identical for
// all queued tasks at any given Pop, so the ordering is the same as
// ordering by dl − pex, which is static and cached in the entry at push.
type mlfQueue struct {
	h entryHeap
}

// NewMLF returns a minimum-laxity-first queue.
func NewMLF() Queue {
	return &mlfQueue{}
}

// Push implements Queue.
func (q *mlfQueue) Push(t *task.Task) { q.h.push(t.Deadline-t.Pex, t) }

// Pop implements Queue.
func (q *mlfQueue) Pop(float64) *task.Task { return q.h.pop() }

// Len implements Queue.
func (q *mlfQueue) Len() int { return q.h.len() }

// Name implements Queue.
func (q *mlfQueue) Name() string { return "MLF" }

// Reset implements Resetter.
func (q *mlfQueue) Reset() { q.h.reset() }

// Grow implements Grower.
func (q *mlfQueue) Grow(capacity int) { q.h.grow(capacity) }

// classPriority is the two-level queue of the GF strategy: global
// subtasks are always served before local tasks; within each class the
// wrapped policy's order applies.
type classPriority struct {
	globals Queue
	locals  Queue
}

// NewClassPriority returns a globals-first wrapper. Both arguments must
// be fresh queues of the same policy.
func NewClassPriority(globals, locals Queue) Queue {
	return &classPriority{globals: globals, locals: locals}
}

// Push implements Queue.
func (q *classPriority) Push(t *task.Task) {
	if t.Class == task.Global {
		q.globals.Push(t)
		return
	}
	q.locals.Push(t)
}

// Pop implements Queue.
func (q *classPriority) Pop(now float64) *task.Task {
	if t := q.globals.Pop(now); t != nil {
		return t
	}
	return q.locals.Pop(now)
}

// Len implements Queue.
func (q *classPriority) Len() int { return q.globals.Len() + q.locals.Len() }

// Name implements Queue.
func (q *classPriority) Name() string { return "GF(" + q.globals.Name() + ")" }

// Reset implements Resetter when both wrapped queues do.
func (q *classPriority) Reset() {
	q.globals.(Resetter).Reset()
	q.locals.(Resetter).Reset()
}

// Grow implements Grower when both wrapped queues do.
func (q *classPriority) Grow(capacity int) {
	q.globals.(Grower).Grow(capacity)
	q.locals.(Grower).Grow(capacity)
}
