package sched

import "repro/internal/task"

// edfQueue orders tasks by deadline (earliest first). Deadlines are fixed
// at submission, so a heap with a static key suffices.
type edfQueue struct {
	h taskHeap
}

// NewEDF returns an earliest-deadline-first queue.
func NewEDF() Queue {
	return &edfQueue{h: taskHeap{key: func(t *task.Task) float64 { return t.Deadline }}}
}

// Push implements Queue.
func (q *edfQueue) Push(t *task.Task) { q.h.push(t) }

// Pop implements Queue.
func (q *edfQueue) Pop(float64) *task.Task { return q.h.pop() }

// Len implements Queue.
func (q *edfQueue) Len() int { return q.h.len() }

// Name implements Queue.
func (q *edfQueue) Name() string { return "EDF" }

// Reset implements Resetter.
func (q *edfQueue) Reset() { q.h.reset() }

// fcfsQueue orders tasks by submission sequence.
type fcfsQueue struct {
	h taskHeap
}

// NewFCFS returns a first-come-first-served queue.
func NewFCFS() Queue {
	// The key is constant; the heap's Seq tie-break supplies the FIFO
	// order.
	return &fcfsQueue{h: taskHeap{key: func(*task.Task) float64 { return 0 }}}
}

// Push implements Queue.
func (q *fcfsQueue) Push(t *task.Task) { q.h.push(t) }

// Pop implements Queue.
func (q *fcfsQueue) Pop(float64) *task.Task { return q.h.pop() }

// Len implements Queue.
func (q *fcfsQueue) Len() int { return q.h.len() }

// Name implements Queue.
func (q *fcfsQueue) Name() string { return "FCFS" }

// Reset implements Resetter.
func (q *fcfsQueue) Reset() { q.h.reset() }

// mlfQueue implements non-preemptive minimum-laxity-first. Laxity
// dl − now − pex depends on the dispatch time, but `now` is identical for
// all queued tasks at any given Pop, so the ordering is the same as
// ordering by dl − pex, which is static. We still compute it explicitly
// through Task.Laxity to keep the policy's definition visible.
type mlfQueue struct {
	h taskHeap
}

// NewMLF returns a minimum-laxity-first queue.
func NewMLF() Queue {
	return &mlfQueue{h: taskHeap{key: func(t *task.Task) float64 { return t.Deadline - t.Pex }}}
}

// Push implements Queue.
func (q *mlfQueue) Push(t *task.Task) { q.h.push(t) }

// Pop implements Queue.
func (q *mlfQueue) Pop(float64) *task.Task { return q.h.pop() }

// Len implements Queue.
func (q *mlfQueue) Len() int { return q.h.len() }

// Name implements Queue.
func (q *mlfQueue) Name() string { return "MLF" }

// Reset implements Resetter.
func (q *mlfQueue) Reset() { q.h.reset() }

// classPriority is the two-level queue of the GF strategy: global
// subtasks are always served before local tasks; within each class the
// wrapped policy's order applies.
type classPriority struct {
	globals Queue
	locals  Queue
}

// NewClassPriority returns a globals-first wrapper. Both arguments must
// be fresh queues of the same policy.
func NewClassPriority(globals, locals Queue) Queue {
	return &classPriority{globals: globals, locals: locals}
}

// Push implements Queue.
func (q *classPriority) Push(t *task.Task) {
	if t.Class == task.Global {
		q.globals.Push(t)
		return
	}
	q.locals.Push(t)
}

// Pop implements Queue.
func (q *classPriority) Pop(now float64) *task.Task {
	if t := q.globals.Pop(now); t != nil {
		return t
	}
	return q.locals.Pop(now)
}

// Len implements Queue.
func (q *classPriority) Len() int { return q.globals.Len() + q.locals.Len() }

// Name implements Queue.
func (q *classPriority) Name() string { return "GF(" + q.globals.Name() + ")" }

// Reset implements Resetter when both wrapped queues do.
func (q *classPriority) Reset() {
	q.globals.(Resetter).Reset()
	q.locals.(Resetter).Reset()
}
