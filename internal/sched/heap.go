package sched

import "repro/internal/task"

// taskHeap is a binary min-heap of tasks ordered by a key function, with
// deterministic FIFO tie-breaking on Task.Seq. It backs the EDF and FCFS
// queues (static keys); MLF keeps its own slice because its key depends
// on the current time.
type taskHeap struct {
	items []*task.Task
	key   func(*task.Task) float64
}

func (h *taskHeap) len() int { return len(h.items) }

// reset empties the heap while keeping its backing array, so a reused
// queue reaches its working size without re-growing.
func (h *taskHeap) reset() {
	for i := range h.items {
		h.items[i] = nil
	}
	h.items = h.items[:0]
}

func (h *taskHeap) less(i, j int) bool {
	ki, kj := h.key(h.items[i]), h.key(h.items[j])
	if ki != kj {
		return ki < kj
	}
	return h.items[i].Seq < h.items[j].Seq
}

func (h *taskHeap) push(t *task.Task) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *taskHeap) pop() *task.Task {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	h.down(0)
	return top
}

func (h *taskHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
}
