package sched

import "repro/internal/task"

// entry is one ready-queue element, stored by value: the ordering key is
// computed once at push time, so the heap's comparisons are two loads
// from the same contiguous slice — no indirect key-function call and no
// pointer chase into the task on the hot path. seq carries the
// deterministic FIFO tie-break.
type entry struct {
	key float64
	seq uint64
	t   *task.Task
}

// entryHeap is a binary min-heap over (key, seq). It backs the EDF and
// MLF queues; FCFS uses a ring buffer because arrival order needs no
// heap at all.
type entryHeap struct {
	items []entry
}

func (h *entryHeap) len() int { return len(h.items) }

// reset empties the heap while keeping its backing array, so a reused
// queue reaches its working size without re-growing.
func (h *entryHeap) reset() {
	for i := range h.items {
		h.items[i] = entry{}
	}
	h.items = h.items[:0]
}

// grow pre-sizes the backing array to hold at least capacity entries.
func (h *entryHeap) grow(capacity int) {
	if cap(h.items) < capacity {
		items := make([]entry, len(h.items), capacity)
		copy(items, h.items)
		h.items = items
	}
}

func (h *entryHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (h *entryHeap) push(key float64, t *task.Task) {
	h.pushEntry(entry{key: key, seq: t.Seq, t: t})
}

// pushEntry inserts a pre-built entry (the bank lane's staging path).
func (h *entryHeap) pushEntry(e entry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *entryHeap) pop() *task.Task {
	if len(h.items) == 0 {
		return nil
	}
	return h.popEntry().t
}

// popEntry removes and returns the minimum entry; the heap must be
// non-empty.
func (h *entryHeap) popEntry() entry {
	n := len(h.items)
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = entry{}
	h.items = h.items[:n-1]
	h.down(0)
	return top
}

func (h *entryHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.items[i], h.items[least] = h.items[least], h.items[i]
		i = least
	}
}
