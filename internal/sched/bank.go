package sched

import (
	"fmt"

	"repro/internal/task"
)

// Bank is a set of per-node ready queues stored in one contiguous arena
// instead of k separately allocated queue objects. Every policy is
// expressed as a keyed entry-heap — EDF keys by deadline, MLF by
// dl − pex, FCFS by a constant 0 so the (key, seq) tie-break degenerates
// to pure submission order, which is exactly the ring-deque semantics of
// the standalone FCFS queue including the preempted-task front-requeue
// (a re-queued task's Seq is the minimum, so the heap serves it first).
// Pop order is therefore identical to a slice of sched.New queues for
// every policy × globalsFirst combination; the cross-check test in
// bank_test.go drives both against each other.
//
// The globals-first class priority of the GF strategy becomes two lanes
// per node: lane 2i holds node i's Global subtasks, lane 2i+1 its Local
// tasks, and Pop drains the globals lane first. Without globalsFirst
// there is one lane per node.
//
// Each lane's initial backing array is carved out of one shared arena
// with a full slice expression, so a lane that outgrows its carve
// reallocates only itself; the others keep their arena slot. At 64k
// nodes this turns 64k–128k queue allocations into two and keeps the
// per-node queue heads densely packed — the dominant share of the
// dispatch path's working set.
//
// Each lane additionally caches its minimum entry inside the lane
// record itself (see lane), so the overwhelmingly common shallow-queue
// operations — push to an empty lane, pop of the only waiting task —
// touch just the lane's own cache line and never reach the arena.
// Entries are totally ordered by (key, seq) with seq unique, so the
// cached-top layout pops in exactly the order of a plain heap; results
// are byte-identical.
type Bank struct {
	policy       Policy
	globalsFirst bool
	mlf, fcfs    bool
	nodes        int
	perNode      int
	lanes        []lane
	arena        []entry
}

// lane is one node's ready queue: the current minimum entry stored
// inline plus a heap of the rest. n is the total entry count (top +
// rest); n == 0 means top is unset. The record is 56 bytes, so a lane
// never straddles more than two cache lines and the depth-0/1 fast
// paths touch one.
type lane struct {
	n    int32
	top  entry
	rest entryHeap
}

// push inserts an entry, keeping top the (key, seq) minimum.
func (l *lane) push(e entry) {
	if l.n == 0 {
		l.top = e
		l.n = 1
		return
	}
	if e.key < l.top.key || (e.key == l.top.key && e.seq < l.top.seq) {
		l.rest.pushEntry(l.top)
		l.top = e
	} else {
		l.rest.pushEntry(e)
	}
	l.n++
}

// pop removes and returns the minimum entry's task, or nil when empty.
func (l *lane) pop() *task.Task {
	if l.n == 0 {
		return nil
	}
	t := l.top.t
	l.n--
	if l.n > 0 {
		l.top = l.rest.popEntry()
	} else {
		l.top = entry{}
	}
	return t
}

// reset empties the lane, keeping the rest heap's backing array.
func (l *lane) reset() {
	l.n = 0
	l.top = entry{}
	l.rest.reset()
}

// NewBank returns an empty bank; Configure sizes it.
func NewBank() *Bank { return &Bank{} }

// Configure (re)initializes the bank for nodes queues of the given
// policy, pre-sizing each lane for perNode entries. When the shape
// (nodes, globalsFirst, perNode) matches the previous configuration the
// lanes are reset in place — lanes that grew past their carve keep
// their larger private arrays — so a warm workspace pays no queue
// allocations at all.
func (b *Bank) Configure(nodes int, p Policy, globalsFirst bool, perNode int) error {
	switch p {
	case EDF, MLF, FCFS:
	default:
		return fmt.Errorf("sched: unknown policy %q", p)
	}
	if nodes <= 0 {
		return fmt.Errorf("sched: bank of %d nodes", nodes)
	}
	if perNode < 1 {
		perNode = 1
	}
	b.policy, b.globalsFirst = p, globalsFirst
	b.mlf, b.fcfs = p == MLF, p == FCFS
	laneCount := nodes
	if globalsFirst {
		laneCount = 2 * nodes
	}
	if b.nodes == nodes && len(b.lanes) == laneCount && b.perNode == perNode {
		for i := range b.lanes {
			b.lanes[i].reset()
		}
		return nil
	}
	b.nodes, b.perNode = nodes, perNode
	b.lanes = make([]lane, laneCount)
	b.arena = make([]entry, laneCount*perNode)
	for i := range b.lanes {
		off := i * perNode
		// Full slice expression: append beyond perNode moves this lane
		// to its own array instead of clobbering the neighbour's carve.
		b.lanes[i].rest.items = b.arena[off : off : off+perNode]
	}
	return nil
}

// Nodes returns the configured node count.
func (b *Bank) Nodes() int { return b.nodes }

// Name identifies the configured policy, matching Queue.Name.
func (b *Bank) Name() string {
	if b.globalsFirst {
		return "GF(" + string(b.policy) + ")"
	}
	return string(b.policy)
}

// key computes the heap ordering key for the configured policy.
func (b *Bank) key(t *task.Task) float64 {
	switch {
	case b.fcfs:
		return 0
	case b.mlf:
		return t.Deadline - t.Pex
	default:
		return t.Deadline
	}
}

// Push adds a task to node i's queue.
func (b *Bank) Push(i int, t *task.Task) {
	li := i
	if b.globalsFirst {
		li = 2 * i
		if t.Class != task.Global {
			li++
		}
	}
	b.lanes[li].push(entry{key: b.key(t), seq: t.Seq, t: t})
}

// Pop removes and returns node i's highest-priority task, or nil when
// the queue is empty. The now parameter mirrors Queue.Pop; every bank
// policy keys statically, so it is unused.
func (b *Bank) Pop(i int, now float64) *task.Task {
	_ = now
	if b.globalsFirst {
		if t := b.lanes[2*i].pop(); t != nil {
			return t
		}
		return b.lanes[2*i+1].pop()
	}
	return b.lanes[i].pop()
}

// Len returns the number of tasks waiting at node i.
func (b *Bank) Len(i int) int {
	if b.globalsFirst {
		return int(b.lanes[2*i].n) + int(b.lanes[2*i+1].n)
	}
	return int(b.lanes[i].n)
}

// Reset empties every lane, keeping capacity.
func (b *Bank) Reset() {
	for i := range b.lanes {
		b.lanes[i].reset()
	}
}
