// Package sched implements the per-node ready queues of the system model
// (paper section 3.2): every node services tasks with its own real-time
// scheduling policy, non-preemptively and independently of all other
// nodes. The default policy is earliest-deadline-first; the paper's
// variations (minimum-laxity-first, and the globals-first class priority
// required by the GF strategy) are provided as well, plus FCFS as a
// non-real-time baseline.
//
// All queues break ties deterministically by submission sequence number,
// so simulation runs are reproducible bit-for-bit.
package sched

import (
	"fmt"

	"repro/internal/task"
)

// Queue is a ready queue for one node. Pop receives the current time
// because laxity-based policies order by dl − now − pex at dispatch time;
// deadline- and arrival-ordered policies ignore it. Implementations are
// not safe for concurrent use — the discrete-event simulator is
// single-threaded, and the live runtime wraps queues in its own locking.
type Queue interface {
	// Push adds a task to the queue.
	Push(t *task.Task)
	// Pop removes and returns the highest-priority task, or nil when
	// empty.
	Pop(now float64) *task.Task
	// Len returns the number of queued tasks.
	Len() int
	// Name identifies the policy ("EDF", "MLF", ...).
	Name() string
}

// Resetter is implemented by queues that can be emptied in place, keeping
// their backing arrays so a reused queue starts at its working capacity.
// All queues returned by New implement it; the interface is optional so
// external Queue implementations remain valid.
type Resetter interface {
	// Reset discards all queued tasks and keeps allocated capacity.
	Reset()
}

// Grower is implemented by queues that can pre-size their backing arrays,
// so a fresh queue reaches its expected working capacity without growth
// allocations mid-run. All queues returned by New implement it; like
// Resetter it is optional for external implementations.
type Grower interface {
	// Grow ensures capacity for at least the given number of queued
	// tasks without further allocation.
	Grow(capacity int)
}

// Policy selects a queue implementation by name.
type Policy string

// Supported scheduling policies.
const (
	// EDF is non-preemptive earliest-deadline-first (the paper's
	// default local scheduling algorithm, Table 1).
	EDF Policy = "EDF"
	// MLF is non-preemptive minimum-laxity-first (a section 4.3
	// variation): priority by dl − now − pex at dispatch.
	MLF Policy = "MLF"
	// FCFS is first-come-first-served, a non-real-time baseline.
	FCFS Policy = "FCFS"
)

// New returns a fresh queue for the policy. If globalsFirst is true the
// queue is wrapped in a two-level class-priority queue that always serves
// Global subtasks before Local tasks (the GF strategy, section 5.1),
// preserving the policy's order within each class.
func New(p Policy, globalsFirst bool) (Queue, error) {
	mk := func() (Queue, error) {
		switch p {
		case EDF:
			return NewEDF(), nil
		case MLF:
			return NewMLF(), nil
		case FCFS:
			return NewFCFS(), nil
		default:
			return nil, fmt.Errorf("sched: unknown policy %q", p)
		}
	}
	inner, err := mk()
	if err != nil {
		return nil, err
	}
	if !globalsFirst {
		return inner, nil
	}
	second, _ := mk()
	return NewClassPriority(inner, second), nil
}
