package sched

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/task"
)

// TestBankMatchesQueues drives identical push/pop sequences through a
// Bank and a slice of sched.New queues for every policy × globalsFirst
// combination, including the preempted-task re-queue case (a pushed
// task whose Seq is below every queued task's), and requires identical
// pop order.
func TestBankMatchesQueues(t *testing.T) {
	const nodes = 5
	for _, p := range []Policy{EDF, MLF, FCFS} {
		for _, gf := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/globalsFirst=%t", p, gf), func(t *testing.T) {
				bank := NewBank()
				if err := bank.Configure(nodes, p, gf, 4); err != nil {
					t.Fatal(err)
				}
				ref := make([]Queue, nodes)
				for i := range ref {
					q, err := New(p, gf)
					if err != nil {
						t.Fatal(err)
					}
					ref[i] = q
				}
				if got, want := bank.Name(), ref[0].Name(); got != want {
					t.Errorf("Name() = %q, want %q", got, want)
				}

				r := rng.New(7)
				var seq uint64
				live := make([][]*task.Task, nodes) // tasks currently queued per node
				for step := 0; step < 4000; step++ {
					i := r.IntN(nodes)
					switch {
					case r.Float64() < 0.55:
						seq++
						tk := &task.Task{
							ID:       seq,
							Seq:      seq,
							Deadline: r.Uniform(0, 100),
							Pex:      r.Uniform(0, 10),
							Class:    task.Local,
						}
						if r.Float64() < 0.4 {
							tk.Class = task.Global
						}
						bank.Push(i, tk)
						ref[i].Push(tk)
						live[i] = append(live[i], tk)
					case r.Float64() < 0.15 && len(live[i]) > 0:
						// Preempted re-queue: pop then push the popped task
						// back; its Seq is the configured minimum of the
						// ordering class it pops from.
						now := r.Uniform(0, 100)
						a, b := bank.Pop(i, now), ref[i].Pop(now)
						if a != b {
							t.Fatalf("step %d node %d: bank popped %v, queues popped %v", step, i, a, b)
						}
						if a != nil {
							bank.Push(i, a)
							ref[i].Push(a)
						}
					default:
						now := r.Uniform(0, 100)
						a, b := bank.Pop(i, now), ref[i].Pop(now)
						if a != b {
							t.Fatalf("step %d node %d: bank popped %v, queues popped %v", step, i, a, b)
						}
						if a != nil && len(live[i]) > 0 {
							live[i] = live[i][:len(live[i])-1]
						}
					}
					if bank.Len(i) != ref[i].Len() {
						t.Fatalf("step %d node %d: bank len %d, queues len %d", step, i, bank.Len(i), ref[i].Len())
					}
				}
				// Drain everything and compare the full tail order.
				for i := 0; i < nodes; i++ {
					for {
						a, b := bank.Pop(i, 50), ref[i].Pop(50)
						if a != b {
							t.Fatalf("drain node %d: bank popped %v, queues popped %v", i, a, b)
						}
						if a == nil {
							break
						}
					}
				}
			})
		}
	}
}

// TestBankConfigureReuse checks that a shape-matched reconfigure resets
// in place and a shape change rebuilds, and that lane overflow past the
// arena carve stays confined to the overflowing lane.
func TestBankConfigureReuse(t *testing.T) {
	b := NewBank()
	if err := b.Configure(3, EDF, false, 2); err != nil {
		t.Fatal(err)
	}
	// Overflow node 1's carve; neighbours must keep their tasks intact.
	mk := func(seq uint64, dl float64) *task.Task {
		return &task.Task{ID: seq, Seq: seq, Deadline: dl}
	}
	b.Push(0, mk(1, 9))
	b.Push(2, mk(2, 8))
	for s := uint64(10); s < 20; s++ {
		b.Push(1, mk(s, float64(100-s)))
	}
	if got := b.Len(1); got != 10 {
		t.Fatalf("Len(1) = %d, want 10", got)
	}
	if tk := b.Pop(0, 0); tk == nil || tk.ID != 1 {
		t.Fatalf("Pop(0) = %v, want task 1", tk)
	}
	if tk := b.Pop(2, 0); tk == nil || tk.ID != 2 {
		t.Fatalf("Pop(2) = %v, want task 2", tk)
	}
	// Same shape: reset in place, switching policy is allowed.
	if err := b.Configure(3, FCFS, false, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := b.Len(i); got != 0 {
			t.Fatalf("after reconfigure Len(%d) = %d, want 0", i, got)
		}
	}
	if b.Name() != "FCFS" {
		t.Fatalf("Name() = %q, want FCFS", b.Name())
	}
	// Shape change: rebuild.
	if err := b.Configure(4, EDF, true, 2); err != nil {
		t.Fatal(err)
	}
	if b.Nodes() != 4 || b.Name() != "GF(EDF)" {
		t.Fatalf("after rebuild Nodes=%d Name=%q", b.Nodes(), b.Name())
	}
	if err := b.Configure(0, EDF, false, 2); err == nil {
		t.Fatal("Configure(0 nodes) succeeded, want error")
	}
	if err := b.Configure(2, Policy("bogus"), false, 2); err == nil {
		t.Fatal("Configure(bogus policy) succeeded, want error")
	}
}
