package sched

import (
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/task"
)

func mkTask(seq uint64, class task.Class, deadline, pex float64) *task.Task {
	return &task.Task{Seq: seq, Class: class, Deadline: deadline, Pex: pex}
}

func drain(q Queue, now float64) []*task.Task {
	var out []*task.Task
	for q.Len() > 0 {
		out = append(out, q.Pop(now))
	}
	return out
}

func TestEDFOrder(t *testing.T) {
	q := NewEDF()
	q.Push(mkTask(1, task.Local, 30, 1))
	q.Push(mkTask(2, task.Local, 10, 1))
	q.Push(mkTask(3, task.Local, 20, 1))
	got := drain(q, 0)
	want := []float64{10, 20, 30}
	for i, tk := range got {
		if tk.Deadline != want[i] {
			t.Fatalf("pop %d deadline = %v, want %v", i, tk.Deadline, want[i])
		}
	}
}

func TestEDFFIFOTieBreak(t *testing.T) {
	q := NewEDF()
	for seq := uint64(1); seq <= 5; seq++ {
		q.Push(mkTask(seq, task.Local, 10, 1))
	}
	got := drain(q, 0)
	for i, tk := range got {
		if tk.Seq != uint64(i+1) {
			t.Fatalf("equal deadlines not FIFO: pop %d has seq %d", i, tk.Seq)
		}
	}
}

func TestPopEmptyReturnsNil(t *testing.T) {
	for _, q := range []Queue{NewEDF(), NewMLF(), NewFCFS(), NewClassPriority(NewEDF(), NewEDF())} {
		if got := q.Pop(0); got != nil {
			t.Errorf("%s: Pop on empty = %v, want nil", q.Name(), got)
		}
		if q.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", q.Name(), q.Len())
		}
	}
}

func TestMLFOrdersByLaxity(t *testing.T) {
	q := NewMLF()
	// Laxity at dispatch = dl − now − pex. Task A: dl=20 pex=8 -> key 12.
	// Task B: dl=15 pex=1 -> key 14. EDF would pick B first; MLF picks A.
	a := mkTask(1, task.Local, 20, 8)
	b := mkTask(2, task.Local, 15, 1)
	q.Push(b)
	q.Push(a)
	if got := q.Pop(5); got != a {
		t.Fatalf("MLF popped seq %d, want the lower-laxity task", got.Seq)
	}
	if got := q.Pop(5); got != b {
		t.Fatalf("MLF second pop = seq %d, want b", got.Seq)
	}
}

func TestFCFSOrder(t *testing.T) {
	// Tasks are pushed in arrival (seq) order — as the generators do —
	// and must pop in that order regardless of deadlines.
	q := NewFCFS()
	q.Push(mkTask(1, task.Local, 99, 1))
	q.Push(mkTask(2, task.Local, 50, 1))
	q.Push(mkTask(3, task.Local, 1, 1)) // earliest deadline, latest arrival
	got := drain(q, 0)
	for i, tk := range got {
		if tk.Seq != uint64(i+1) {
			t.Fatalf("FCFS out of arrival order: pop %d has seq %d", i, tk.Seq)
		}
	}
}

func TestFCFSPreemptRequeue(t *testing.T) {
	// A preemptive node re-queues the task it suspends; its seq is below
	// everything queued, so it must resume its place at the ring's front
	// (exactly what the previous seq-keyed heap produced).
	q := NewFCFS()
	for seq := uint64(1); seq <= 5; seq++ {
		q.Push(mkTask(seq, task.Local, 10, 1))
	}
	first := q.Pop(0)
	if first.Seq != 1 {
		t.Fatalf("first pop seq %d, want 1", first.Seq)
	}
	q.Push(first) // preemption re-queue
	want := []uint64{1, 2, 3, 4, 5}
	for i, tk := range drain(q, 0) {
		if tk.Seq != want[i] {
			t.Fatalf("pop %d has seq %d, want %d", i, tk.Seq, want[i])
		}
	}
}

func TestFCFSWrapAround(t *testing.T) {
	// Interleaved pushes and pops march head around the ring across
	// growth boundaries without losing FIFO order.
	q := NewFCFS()
	seq, expect := uint64(0), uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			seq++
			q.Push(mkTask(seq, task.Local, 10, 1))
		}
		for i := 0; i < 2; i++ {
			expect++
			if tk := q.Pop(0); tk == nil || tk.Seq != expect {
				t.Fatalf("round %d: pop = %v, want seq %d", round, tk, expect)
			}
		}
	}
	for tk := q.Pop(0); tk != nil; tk = q.Pop(0) {
		expect++
		if tk.Seq != expect {
			t.Fatalf("drain pop has seq %d, want %d", tk.Seq, expect)
		}
	}
	if expect != seq {
		t.Fatalf("drained %d tasks, pushed %d", expect, seq)
	}
}

func TestClassPriorityGlobalsFirst(t *testing.T) {
	q := NewClassPriority(NewEDF(), NewEDF())
	// A local with a very early deadline must still wait for globals.
	early := mkTask(1, task.Local, 1, 1)
	g1 := mkTask(2, task.Global, 100, 1)
	g2 := mkTask(3, task.Global, 50, 1)
	q.Push(early)
	q.Push(g1)
	q.Push(g2)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if got := q.Pop(0); got != g2 {
		t.Fatalf("first pop seq %d, want the earliest-deadline global", got.Seq)
	}
	if got := q.Pop(0); got != g1 {
		t.Fatalf("second pop seq %d, want the remaining global", got.Seq)
	}
	if got := q.Pop(0); got != early {
		t.Fatalf("third pop seq %d, want the local", got.Seq)
	}
}

// TestClassPriorityEqualDeadlines pins the previously untested edge: a
// mixed push sequence where locals and globals share deadlines. Class
// dominates (all globals first, even those pushed after locals with the
// same deadline) and within each class equal deadlines drain FIFO by
// submission sequence.
func TestClassPriorityEqualDeadlines(t *testing.T) {
	q := NewClassPriority(NewEDF(), NewEDF())
	// Interleaved pushes, two deadline groups shared across classes.
	l1 := mkTask(1, task.Local, 10, 1)
	g1 := mkTask(2, task.Global, 10, 1)
	l2 := mkTask(3, task.Local, 10, 1)
	g2 := mkTask(4, task.Global, 10, 1)
	g3 := mkTask(5, task.Global, 5, 1)
	l3 := mkTask(6, task.Local, 5, 1)
	for _, tk := range []*task.Task{l1, g1, l2, g2, g3, l3} {
		q.Push(tk)
	}
	want := []*task.Task{
		g3,     // earliest-deadline global
		g1, g2, // equal-deadline globals, FIFO by seq
		l3,     // only then locals, earliest deadline first
		l1, l2, // equal-deadline locals, FIFO by seq
	}
	got := drain(q, 0)
	if len(got) != len(want) {
		t.Fatalf("drained %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop %d = seq %d, want seq %d", i, got[i].Seq, want[i].Seq)
		}
	}
}

// TestGlobalsFirstFactoryEqualDeadlines repeats the equal-deadline check
// through the New factory for every wrappable policy, so the two-level
// queue built by the system package inherits the guarantee.
func TestGlobalsFirstFactoryEqualDeadlines(t *testing.T) {
	for _, p := range []Policy{EDF, MLF, FCFS} {
		q, err := New(p, true)
		if err != nil {
			t.Fatal(err)
		}
		g := mkTask(1, task.Global, 10, 1)
		l := mkTask(2, task.Local, 10, 1)
		g2 := mkTask(3, task.Global, 10, 1)
		q.Push(l)
		q.Push(g)
		q.Push(g2)
		got := drain(q, 0)
		if got[0] != g || got[1] != g2 || got[2] != l {
			t.Errorf("%s: order = %v,%v,%v, want globals (FIFO) then local",
				q.Name(), got[0].Seq, got[1].Seq, got[2].Seq)
		}
	}
}

func TestNewFactory(t *testing.T) {
	tests := []struct {
		policy       Policy
		globalsFirst bool
		wantName     string
		wantErr      bool
	}{
		{policy: EDF, wantName: "EDF"},
		{policy: MLF, wantName: "MLF"},
		{policy: FCFS, wantName: "FCFS"},
		{policy: EDF, globalsFirst: true, wantName: "GF(EDF)"},
		{policy: MLF, globalsFirst: true, wantName: "GF(MLF)"},
		{policy: Policy("??"), wantErr: true},
		{policy: Policy("??"), globalsFirst: true, wantErr: true},
	}
	for _, tt := range tests {
		q, err := New(tt.policy, tt.globalsFirst)
		if (err != nil) != tt.wantErr {
			t.Fatalf("New(%q,%v) error = %v, wantErr %v", tt.policy, tt.globalsFirst, err, tt.wantErr)
		}
		if err == nil && q.Name() != tt.wantName {
			t.Errorf("New(%q,%v).Name() = %q, want %q", tt.policy, tt.globalsFirst, q.Name(), tt.wantName)
		}
	}
}

func TestEDFRandomizedAgainstSort(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 200; trial++ {
		q := NewEDF()
		n := 1 + r.IntN(50)
		deadlines := make([]float64, n)
		for i := 0; i < n; i++ {
			deadlines[i] = r.Uniform(0, 100)
			q.Push(mkTask(uint64(i), task.Local, deadlines[i], 1))
		}
		sort.Float64s(deadlines)
		for i, want := range deadlines {
			got := q.Pop(0)
			if got == nil || got.Deadline != want {
				t.Fatalf("trial %d pop %d: got %v, want deadline %v", trial, i, got, want)
			}
		}
	}
}

func TestMLFRandomizedAgainstSort(t *testing.T) {
	r := rng.New(654)
	for trial := 0; trial < 200; trial++ {
		q := NewMLF()
		n := 1 + r.IntN(50)
		keys := make([]float64, n)
		for i := 0; i < n; i++ {
			dl := r.Uniform(0, 100)
			pex := r.Uniform(0.1, 10)
			keys[i] = dl - pex
			q.Push(mkTask(uint64(i), task.Local, dl, pex))
		}
		sort.Float64s(keys)
		now := r.Uniform(0, 50)
		for i, want := range keys {
			got := q.Pop(now)
			if got == nil || got.Deadline-got.Pex != want {
				t.Fatalf("trial %d pop %d: laxity key mismatch", trial, i)
			}
		}
	}
}

func TestClassPriorityRandomizedInvariant(t *testing.T) {
	// No local is ever popped while a global remains queued.
	r := rng.New(987)
	for trial := 0; trial < 100; trial++ {
		q, err := New(EDF, true)
		if err != nil {
			t.Fatal(err)
		}
		globals := 0
		n := 1 + r.IntN(60)
		for i := 0; i < n; i++ {
			class := task.Local
			if r.IntN(2) == 0 {
				class = task.Global
				globals++
			}
			q.Push(mkTask(uint64(i), class, r.Uniform(0, 100), 1))
		}
		for q.Len() > 0 {
			tk := q.Pop(0)
			if tk.Class == task.Global {
				globals--
			} else if globals > 0 {
				t.Fatalf("local popped while %d globals queued", globals)
			}
		}
	}
}

func BenchmarkEDFPushPop(b *testing.B) {
	q := NewEDF()
	r := rng.New(1)
	tasks := make([]*task.Task, 1024)
	for i := range tasks {
		tasks[i] = mkTask(uint64(i), task.Local, r.Uniform(0, 1000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(tasks[i%1024])
		if i%8 == 7 {
			for q.Len() > 0 {
				q.Pop(0)
			}
		}
	}
}
