package stats

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

// TestWelfordBinaryRoundTrip pins bit-exactness through MarshalBinary:
// awkward values (thirds, negative zero, huge magnitudes) must decode
// to an accumulator whose every future computation is identical.
func TestWelfordBinaryRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0.1, 1.0 / 3, -0.7},
		{math.Copysign(0, -1), 1e-308, -1e308, math.Nextafter(1, 2)},
		{5},
	}
	for ci, xs := range cases {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		b, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Welford
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("case %d: round trip %+v -> %+v", ci, w, got)
		}
		if math.Float64bits(got.Mean()) != math.Float64bits(w.Mean()) ||
			math.Float64bits(got.Variance()) != math.Float64bits(w.Variance()) {
			t.Fatalf("case %d: derived moments not bit-identical", ci)
		}
	}
	var w Welford
	if err := w.UnmarshalBinary(make([]byte, WelfordWireSize-1)); err == nil {
		t.Fatal("short welford wire accepted")
	}
}

// TestRatioBinaryRoundTrip pins the counter encoding.
func TestRatioBinaryRoundTrip(t *testing.T) {
	var c Ratio
	for i := 0; i < 7; i++ {
		c.Observe(i%3 == 0)
	}
	b, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Ratio
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip %+v -> %+v", c, got)
	}
	if err := got.UnmarshalBinary(b[:RatioWireSize-1]); err == nil {
		t.Fatal("short ratio wire accepted")
	}
}

// TestGobUsesBinaryEncoding proves gob picks the exact encodings up on
// struct fields — the path system.Metrics takes across the process
// boundary.
func TestGobUsesBinaryEncoding(t *testing.T) {
	type payload struct {
		W Welford
		R Ratio
		S []Welford
	}
	var p payload
	p.W.Add(1.0 / 3)
	p.W.Add(-0.1)
	p.R.Observe(true)
	p.R.Observe(false)
	p.S = make([]Welford, 2)
	p.S[1].Add(math.Pi)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.W != p.W || got.R != p.R || len(got.S) != 2 || got.S[0] != p.S[0] || got.S[1] != p.S[1] {
		t.Fatalf("gob round trip diverged: %+v -> %+v", p, got)
	}
}
