package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary round-trip support: Welford and Ratio accumulators cross the
// process boundary of the multi-process backend inside system.Metrics
// (encoding/gob honours encoding.BinaryMarshaler). Floats travel as raw
// IEEE-754 bits (math.Float64bits), never decimal text, so a decoded
// accumulator is bit-identical to the encoded one and downstream merges
// reproduce the in-process results exactly — including negative zeros,
// subnormals, and NaN payloads.

// WelfordWireSize and RatioWireSize are the fixed lengths of the
// respective MarshalBinary encodings, for callers that pack several
// accumulators into one frame.
const (
	WelfordWireSize = 5 * 8
	RatioWireSize   = 2 * 8
)

// MarshalBinary implements encoding.BinaryMarshaler: n, mean, m2, min,
// max as big-endian 64-bit words (floats by Float64bits).
func (w Welford) MarshalBinary() ([]byte, error) {
	b := make([]byte, WelfordWireSize)
	binary.BigEndian.PutUint64(b[0:], uint64(w.n))
	binary.BigEndian.PutUint64(b[8:], math.Float64bits(w.mean))
	binary.BigEndian.PutUint64(b[16:], math.Float64bits(w.m2))
	binary.BigEndian.PutUint64(b[24:], math.Float64bits(w.min))
	binary.BigEndian.PutUint64(b[32:], math.Float64bits(w.max))
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, reversing
// MarshalBinary bit for bit.
func (w *Welford) UnmarshalBinary(b []byte) error {
	if len(b) != WelfordWireSize {
		return fmt.Errorf("stats: welford wire length %d, want %d", len(b), WelfordWireSize)
	}
	w.n = int64(binary.BigEndian.Uint64(b[0:]))
	w.mean = math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
	w.m2 = math.Float64frombits(binary.BigEndian.Uint64(b[16:]))
	w.min = math.Float64frombits(binary.BigEndian.Uint64(b[24:]))
	w.max = math.Float64frombits(binary.BigEndian.Uint64(b[32:]))
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: hits then total as
// big-endian 64-bit words.
func (c Ratio) MarshalBinary() ([]byte, error) {
	b := make([]byte, RatioWireSize)
	binary.BigEndian.PutUint64(b[0:], uint64(c.hits))
	binary.BigEndian.PutUint64(b[8:], uint64(c.total))
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Ratio) UnmarshalBinary(b []byte) error {
	if len(b) != RatioWireSize {
		return fmt.Errorf("stats: ratio wire length %d, want %d", len(b), RatioWireSize)
	}
	c.hits = int64(binary.BigEndian.Uint64(b[0:]))
	c.total = int64(binary.BigEndian.Uint64(b[8:]))
	return nil
}
