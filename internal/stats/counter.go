package stats

// Ratio counts binary outcomes (hit/total) and reports the hit fraction.
// It is the primary performance measure of the paper: the fraction of
// missed deadlines (miss ratio) conditional on task class. The zero value
// is ready to use.
type Ratio struct {
	hits  int64
	total int64
}

// Observe records one outcome; hit marks the event of interest (a missed
// deadline).
func (c *Ratio) Observe(hit bool) {
	c.total++
	if hit {
		c.hits++
	}
}

// Hits returns the number of recorded events of interest.
func (c *Ratio) Hits() int64 { return c.hits }

// Total returns the number of recorded outcomes.
func (c *Ratio) Total() int64 { return c.total }

// Value returns hits/total, or 0 when nothing was observed.
func (c *Ratio) Value() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.total)
}

// Merge adds another counter's observations into c.
func (c *Ratio) Merge(o *Ratio) {
	c.hits += o.hits
	c.total += o.total
}
