package stats

// Point is one measured (x, y) value on a curve, with a 95% confidence
// half-width on y computed across replications. Field tags fix the JSON
// contract used by the experiment harness's machine-readable output.
type Point struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	HalfCI float64 `json:"ci95"`
}

// Curve is a named series of points, e.g. "EQF global" on Fig. 2b.
type Curve struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Figure is a complete reproduced figure or table: a set of curves over a
// shared x-axis. The experiment harness fills one Figure per paper
// artifact and the render package formats it as an ASCII table, an ASCII
// chart, CSV, or JSON.
type Figure struct {
	ID     string  `json:"id"` // experiment id, e.g. "fig2b"
	Title  string  `json:"title"`
	XLabel string  `json:"xLabel"`
	YLabel string  `json:"yLabel"`
	Curves []Curve `json:"curves"`
}

// Curve returns the curve with the given label, or nil if absent.
func (f *Figure) Curve(label string) *Curve {
	for i := range f.Curves {
		if f.Curves[i].Label == label {
			return &f.Curves[i]
		}
	}
	return nil
}

// YAt returns the y value of the labelled curve at the given x, and
// whether such a point exists. X values are matched exactly; the harness
// always constructs curves from a shared grid, so this is reliable.
func (f *Figure) YAt(label string, x float64) (float64, bool) {
	c := f.Curve(label)
	if c == nil {
		return 0, false
	}
	for _, p := range c.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// XValues returns the sorted union of x values across all curves,
// preserving first-seen order (curves share a grid in practice).
func (f *Figure) XValues() []float64 {
	var xs []float64
	seen := make(map[float64]bool)
	for _, c := range f.Curves {
		for _, p := range c.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}
