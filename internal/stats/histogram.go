package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations in fixed-width bins over [lo, hi), with
// overflow and underflow buckets. It backs the response-time and
// slack-consumption analyses in EXPERIMENTS.md.
type Histogram struct {
	lo, hi   float64
	width    float64
	bins     []int64
	under    int64
	over     int64
	observed Welford
}

// NewHistogram returns a histogram over [lo, hi) with n equal bins.
// It panics if n <= 0 or hi <= lo; histogram shape is a programming
// decision, not an input.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram with n <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{
		lo:    lo,
		hi:    hi,
		width: (hi - lo) / float64(n),
		bins:  make([]int64, n),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.observed.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i == len(h.bins) { // guard against floating-point edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.observed.N() }

// Mean returns the sample mean of all observations.
func (h *Histogram) Mean() float64 { return h.observed.Mean() }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// scan of the bins; observations in the overflow bucket clamp to hi and
// underflow to lo.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.observed.N()))
	cum := h.under
	if cum > target {
		return h.lo
	}
	for i, c := range h.bins {
		cum += c
		if cum > target {
			// Midpoint of the containing bin.
			return h.lo + (float64(i)+0.5)*h.width
		}
	}
	return h.hi
}

// Merge combines another histogram's counts into h, as if all of o's
// observations had been added to h. The two histograms must share their
// range and bin count; it is the per-replication aggregation primitive
// the scenario engine uses alongside Welford.Merge and Ratio.Merge.
func (h *Histogram) Merge(o *Histogram) error {
	if o.lo != h.lo || o.hi != h.hi || len(o.bins) != len(h.bins) {
		return fmt.Errorf("stats: cannot merge histograms over [%v,%v)/%d and [%v,%v)/%d",
			h.lo, h.hi, len(h.bins), o.lo, o.hi, len(o.bins))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.observed.Merge(&o.observed)
	return nil
}

// String renders a compact ASCII bar chart of the histogram.
func (h *Histogram) String() string {
	var max int64
	for _, c := range h.bins {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		bar := 0
		if max > 0 {
			bar = int(40 * c / max)
		}
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %8d %s\n",
			h.lo+float64(i)*h.width, h.lo+float64(i+1)*h.width, c,
			strings.Repeat("#", bar))
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}
