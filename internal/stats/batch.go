package stats

// BatchMeans estimates a confidence interval from a single long run by
// splitting the observation stream into fixed-size contiguous batches and
// treating batch averages as approximately independent replications. The
// paper runs two replications of one million time units each; batch means
// lets the harness report a CI even from a single run.
type BatchMeans struct {
	batchSize int64
	cur       Welford
	batches   []float64
}

// NewBatchMeans returns an estimator with the given batch size (number of
// observations per batch). It panics if batchSize <= 0.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: NewBatchMeans with batchSize <= 0")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.N() >= b.batchSize {
		b.batches = append(b.batches, b.cur.Mean())
		b.cur = Welford{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// Estimate returns the grand mean and 95% half-width computed across
// completed batches. A trailing partial batch is ignored.
func (b *BatchMeans) Estimate() Estimate {
	return MeanCI(b.batches)
}
