package stats

import "math"

// tTable95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (1-based; index 0 unused). Beyond the table the
// normal quantile 1.96 is used.
var tTable95 = [...]float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. Non-positive df returns 0 (no interval can be
// formed from fewer than two observations).
func TCritical95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	return 1.96
}

// Estimate is a point estimate with a symmetric 95% confidence half-width.
type Estimate struct {
	Mean     float64
	HalfCI   float64
	N        int // number of replications behind the estimate
	StdError float64
}

// Lo returns the lower bound of the 95% interval.
func (e Estimate) Lo() float64 { return e.Mean - e.HalfCI }

// Hi returns the upper bound of the 95% interval.
func (e Estimate) Hi() float64 { return e.Mean + e.HalfCI }

// MeanCI returns the mean of xs with a 95% Student-t confidence half-width
// across replications. With fewer than two values the half-width is zero.
func MeanCI(xs []float64) Estimate {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	est := Estimate{Mean: w.Mean(), N: int(w.N())}
	if w.N() >= 2 {
		est.StdError = w.StdDev() / math.Sqrt(float64(w.N()))
		est.HalfCI = TCritical95(int(w.N())-1) * est.StdError
	}
	return est
}
