// Package stats provides the statistics collection used by the simulation
// harness: numerically stable running moments (Welford), miss-ratio
// counters, Student-t confidence intervals across replications, batch
// means for single long runs, histograms, and the curve/figure containers
// the experiment renderers consume.
//
// It replaces the statistics facilities of the DeNet simulation language
// used by the paper (see DESIGN.md section 5).
package stats

import "math"

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or 0 if none were added.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 if none were added.
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w using the parallel-variance
// formula, as if all of o's observations had been added to w.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}
