package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased sample variance of this classic data set is 32/7.
	if got := w.Variance(); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min,Max = %v,%v want 2,9", w.Min(), w.Max())
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report all zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single observation: Mean=%v Variance=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		var all, a, b Welford
		for _, x := range xs {
			x = math.Mod(x, 1e6)
			all.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			y = math.Mod(y, 1e6)
			all.Add(y)
			b.Add(y)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almostEqual(a.Variance(), all.Variance(), 1e-4*(1+all.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	want := a
	a.Merge(&b) // merging empty changes nothing
	if a != want {
		t.Error("merging an empty accumulator changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b != want {
		t.Error("merging into an empty accumulator did not copy")
	}
}

func TestRatio(t *testing.T) {
	var c Ratio
	if c.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	for i := 0; i < 10; i++ {
		c.Observe(i < 3)
	}
	if got := c.Value(); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("Value = %v, want 0.3", got)
	}
	if c.Hits() != 3 || c.Total() != 10 {
		t.Errorf("Hits,Total = %d,%d want 3,10", c.Hits(), c.Total())
	}
	var d Ratio
	d.Observe(true)
	c.Merge(&d)
	if c.Hits() != 4 || c.Total() != 11 {
		t.Errorf("after merge Hits,Total = %d,%d want 4,11", c.Hits(), c.Total())
	}
}

func TestTCritical95(t *testing.T) {
	tests := []struct {
		df   int
		want float64
	}{
		{df: 0, want: 0},
		{df: -1, want: 0},
		{df: 1, want: 12.706},
		{df: 5, want: 2.571},
		{df: 30, want: 2.042},
		{df: 1000, want: 1.96},
	}
	for _, tt := range tests {
		if got := TCritical95(tt.df); got != tt.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tt.df, got, tt.want)
		}
	}
}

func TestMeanCI(t *testing.T) {
	est := MeanCI([]float64{10, 12})
	if !almostEqual(est.Mean, 11, 1e-12) {
		t.Errorf("Mean = %v, want 11", est.Mean)
	}
	// stddev = sqrt(2), stderr = 1, t(df=1) = 12.706.
	if !almostEqual(est.HalfCI, 12.706, 1e-9) {
		t.Errorf("HalfCI = %v, want 12.706", est.HalfCI)
	}
	if est.Lo() >= est.Mean || est.Hi() <= est.Mean {
		t.Error("interval does not bracket the mean")
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	if est := MeanCI(nil); est.Mean != 0 || est.HalfCI != 0 {
		t.Error("empty input should give zero estimate")
	}
	if est := MeanCI([]float64{5}); est.Mean != 5 || est.HalfCI != 0 {
		t.Error("single input should give zero half-width")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(12) // overflow
	if h.N() != 12 {
		t.Errorf("N = %d, want 12", h.N())
	}
	if got := h.Quantile(0.5); got < 4 || got > 7 {
		t.Errorf("median = %v, want within [4,7]", got)
	}
	if s := h.String(); len(s) == 0 {
		t.Error("String() empty")
	}
}

func TestHistogramMergeMatchesPooled(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	pooled := NewHistogram(0, 10, 10)
	for i := 0; i < 40; i++ {
		x := float64(i)*0.3 - 1 // spans underflow, bins, and overflow
		target := a
		if i%2 == 1 {
			target = b
		}
		target.Add(x)
		pooled.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != pooled.N() {
		t.Errorf("merged N = %d, want %d", a.N(), pooled.N())
	}
	if !almostEqual(a.Mean(), pooled.Mean(), 1e-12) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), pooled.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := a.Quantile(q), pooled.Quantile(q); got != want {
			t.Errorf("merged Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if a.String() != pooled.String() {
		t.Error("merged bins differ from pooled bins")
	}
}

func TestHistogramMergeRejectsMismatchedShape(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, o := range []*Histogram{
		NewHistogram(0, 10, 5),
		NewHistogram(0, 20, 10),
		NewHistogram(-1, 10, 10),
	} {
		if err := h.Merge(o); err == nil {
			t.Error("merged histograms with different shapes")
		}
	}
	if h.N() != 0 {
		t.Error("failed merge mutated the receiver")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.1)
	h.Add(0.9)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("clamped low quantile mismatch: %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("clamped high quantile mismatch: %v", got)
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 95; i++ {
		b.Add(float64(i % 10))
	}
	if got := b.Batches(); got != 9 {
		t.Fatalf("Batches = %d, want 9 (partial batch dropped)", got)
	}
	est := b.Estimate()
	if !almostEqual(est.Mean, 4.5, 1e-9) {
		t.Errorf("grand mean = %v, want 4.5", est.Mean)
	}
}

func TestFigureAccessors(t *testing.T) {
	f := Figure{
		ID: "fig2b",
		Curves: []Curve{
			{Label: "UD", Points: []Point{{X: 0.1, Y: 1}, {X: 0.5, Y: 40}}},
			{Label: "EQF", Points: []Point{{X: 0.1, Y: 1}, {X: 0.5, Y: 25}}},
		},
	}
	if c := f.Curve("UD"); c == nil || len(c.Points) != 2 {
		t.Fatal("Curve(UD) lookup failed")
	}
	if c := f.Curve("missing"); c != nil {
		t.Fatal("Curve(missing) should be nil")
	}
	if y, ok := f.YAt("EQF", 0.5); !ok || y != 25 {
		t.Errorf("YAt(EQF,0.5) = %v,%v want 25,true", y, ok)
	}
	if _, ok := f.YAt("EQF", 0.3); ok {
		t.Error("YAt at absent x should report false")
	}
	if xs := f.XValues(); len(xs) != 2 || xs[0] != 0.1 || xs[1] != 0.5 {
		t.Errorf("XValues = %v", xs)
	}
}
