// Package obs is the runtime-metrics layer of the reproduction: plain
// counter structs that every execution layer fills in (the simulation
// engine and nodes per replication, the session pool per run, the
// multi-process coordinator per worker), a deterministic merge, and the
// export surface — Prometheus text rendering, an HTTP server bundling
// /metrics with pprof and expvar, and a rate/ETA progress meter.
//
// The design rule is zero overhead when nothing is looking: hot-path
// layers count into plain (non-atomic) uint64 fields they already own —
// the engine counts on itself, nodes count on themselves — and the
// counters are folded into obs structs only at replication end, off the
// hot path. Nothing here runs during event dispatch, so the simulation's
// 0 allocs/op steady state and byte-identical output are unaffected
// whether or not a /metrics listener exists.
//
// Everything replication-scoped (EngineStats) is a pure function of
// (configuration, seed) and therefore deterministic; wall-clock-derived
// gauges (busy seconds, rates, ETA) live only in the session/pool/
// distrib structs, which never feed back into simulation results.
package obs

// EngineStats aggregates one or more replications' engine, queue, and
// task-lifecycle counters. For a single replication it is a pure
// function of (configuration, seed); Merge folds replications together
// deterministically (sums for counters, maxima for high-water marks).
type EngineStats struct {
	// EventsScheduled, EventsFired, and EventsCancelled count engine
	// events over the run: scheduled is every successful CallAt,
	// fired every executed event, cancelled every successful Cancel.
	EventsScheduled uint64
	EventsFired     uint64
	EventsCancelled uint64
	// QueuePromotions counts heap→ladder promotions (0 or 1 per
	// replication under QueueAuto, always 0 with a pinned queue).
	QueuePromotions uint64
	// PendingHWM is the pending-event high-water mark (engine queue
	// depth); ReadyHWM is the deepest any node's ready queue got.
	PendingHWM uint64
	ReadyHWM   uint64
	// TasksSubmitted counts node submissions (a preempted task
	// re-queues without resubmitting, so submitted ≥ completed +
	// aborted always holds and the three tie out exactly in
	// non-preemptive runs that drain).
	TasksSubmitted uint64
	// TasksCompleted and TasksAborted count service completions and
	// tardy-policy discards; Preemptions counts suspensions of a
	// running task.
	TasksCompleted uint64
	TasksAborted   uint64
	Preemptions    uint64
}

// Merge folds another replication's counters into s: counts add,
// high-water marks take the maximum. Merging in any order yields the
// same result, so parallel completion order does not affect totals.
func (s *EngineStats) Merge(o EngineStats) {
	s.EventsScheduled += o.EventsScheduled
	s.EventsFired += o.EventsFired
	s.EventsCancelled += o.EventsCancelled
	s.QueuePromotions += o.QueuePromotions
	if o.PendingHWM > s.PendingHWM {
		s.PendingHWM = o.PendingHWM
	}
	if o.ReadyHWM > s.ReadyHWM {
		s.ReadyHWM = o.ReadyHWM
	}
	s.TasksSubmitted += o.TasksSubmitted
	s.TasksCompleted += o.TasksCompleted
	s.TasksAborted += o.TasksAborted
	s.Preemptions += o.Preemptions
}

// PoolStats describes a workspace pool's reuse behaviour: how often a
// lease was served warm (a recycled workspace) versus cold (a fresh
// allocation), and how much wall-clock time leased workspaces spent
// actually running replications.
type PoolStats struct {
	WarmAcquires uint64
	ColdAcquires uint64
	BusySeconds  float64
}

// Add folds another pool's stats in (used when worker processes report
// their own pools home and the coordinator presents a fleet total).
func (p *PoolStats) Add(o PoolStats) {
	p.WarmAcquires += o.WarmAcquires
	p.ColdAcquires += o.ColdAcquires
	p.BusySeconds += o.BusySeconds
}

// SessionStats is the run-layer view: job and replication counts plus
// the in-flight gauge, and the pool gauges of whatever backend the
// session runs on.
type SessionStats struct {
	JobsStarted           uint64
	JobsFinished          uint64
	ReplicationsCompleted uint64
	// ReplicationsInFlight counts requested-but-unfinished
	// replications of jobs currently running.
	ReplicationsInFlight int64
	Pool                 PoolStats
}

// WorkerStats is one multi-process worker's coordinator-side view.
type WorkerStats struct {
	// ID is the worker's spawn ordinal (stable across its lifetime;
	// a respawned replacement gets a fresh ID).
	ID uint64
	// Alive is false once the coordinator reaped the worker.
	Alive bool
	// SubShards counts sub-shards this worker ran to a done frame;
	// Steals counts the subset it picked up after another worker died
	// (re-queued chunks).
	SubShards uint64
	Steals    uint64
	// Frame/byte totals per direction, measured at the coordinator
	// (sent = coordinator→worker, recv = worker→coordinator).
	FramesSent uint64
	FramesRecv uint64
	BytesSent  uint64
	BytesRecv  uint64
	// Pool is the worker process's own workspace-pool stats, carried
	// home in its most recent done frame.
	Pool PoolStats
}

// DistribStats is the multi-process coordinator's view: fleet health,
// the seed-order merge buffer's high-water mark, and per-worker detail.
type DistribStats struct {
	// Deaths counts workers the coordinator reaped mid-run; Respawns
	// counts replacements spawned after the initial fleet stood up.
	Deaths   uint64
	Respawns uint64
	// MergeDepthHWM is the most replications ever held finished but
	// undeliverable because an earlier seed was still running — the
	// cost of the seed-order delivery guarantee.
	MergeDepthHWM uint64
	// HeartbeatsMissed counts liveness pings that went unanswered
	// before the next probe (a hung worker shows up here before it is
	// declared dead); Retries counts failed sub-shards re-queued for
	// another dispatch.
	HeartbeatsMissed uint64
	Retries          uint64
	// HedgesWon counts speculative straggler re-dispatches that beat
	// the original; HedgesLost counts ones the original beat.
	HedgesWon  uint64
	HedgesLost uint64
	// Fallbacks counts shards (or shard remainders, after the recovery
	// budget ran out) executed on the embedded in-process pool.
	Fallbacks uint64
	// FrameDecodeRejects counts malformed worker frames the coordinator
	// rejected (corrupt, truncated, or protocol-violating).
	FrameDecodeRejects uint64
	Workers            []WorkerStats
}

// NetStats is the network shard backend's transport view: connection
// lifecycle at the dialing coordinator plus frame/byte totals summed
// across the connections' coordinator-side wire stats.
type NetStats struct {
	// Connections counts worker connections successfully dialed and
	// handshaken; Reconnects is the subset that re-established an
	// address that had already connected before (a worker came back).
	Connections uint64
	Reconnects  uint64
	// DialErrors counts dial or handshake failures.
	DialErrors uint64
	// Frame/byte totals per direction across all connections, including
	// closed ones (sent = coordinator→worker).
	FramesSent uint64
	FramesRecv uint64
	BytesSent  uint64
	BytesRecv  uint64
}

// CacheStats describes the deterministic shard-result cache: per-seed
// hit/miss traffic, entry lifecycle, and the current footprint.
type CacheStats struct {
	// Hits and Misses count seed lookups (a shard of 20 seeds with 8
	// cached counts 8 hits and 12 misses).
	Hits   uint64
	Misses uint64
	// Inserts counts seed-run entries stored; Evictions counts entries
	// dropped under byte pressure; Bypasses counts shards that skipped
	// the cache because their configuration has no fingerprint.
	Inserts   uint64
	Evictions uint64
	Bypasses  uint64
	// Entries and Bytes gauge the cache's current contents.
	Entries uint64
	Bytes   uint64
}

// Snapshot is a point-in-time view of a session's runtime metrics:
// engine counters accumulated across every finished replication, the
// run-layer gauges, and — when the session runs on the multi-process
// backend — the coordinator's per-worker stats. Snapshots are plain
// data: taking one never blocks the hot path.
type Snapshot struct {
	Engine  EngineStats
	Session SessionStats
	// Distrib is nil unless the backend exposes coordinator stats.
	Distrib *DistribStats
	// Net is nil unless the backend dials remote workers.
	Net *NetStats
	// Cache is nil unless a shard-result cache fronts the backend.
	Cache *CacheStats
}
