package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Engine: EngineStats{
			EventsScheduled: 1000, EventsFired: 990, EventsCancelled: 10,
			QueuePromotions: 1, PendingHWM: 600, ReadyHWM: 12,
			TasksSubmitted: 500, TasksCompleted: 480, TasksAborted: 20,
			Preemptions: 3,
		},
		Session: SessionStats{
			JobsStarted: 2, JobsFinished: 1, ReplicationsCompleted: 8,
			ReplicationsInFlight: 4,
			Pool:                 PoolStats{WarmAcquires: 6, ColdAcquires: 2, BusySeconds: 1.5},
		},
		Distrib: &DistribStats{
			Deaths: 1, Respawns: 1, MergeDepthHWM: 3,
			Workers: []WorkerStats{
				{ID: 1, Alive: true, SubShards: 4, Steals: 1, FramesSent: 5, FramesRecv: 9,
					BytesSent: 1200, BytesRecv: 3400, Pool: PoolStats{WarmAcquires: 3, ColdAcquires: 1, BusySeconds: 0.7}},
				{ID: 2, Alive: false, SubShards: 2},
			},
		},
	}
}

func TestEngineStatsMerge(t *testing.T) {
	var acc EngineStats
	a := EngineStats{EventsScheduled: 10, EventsFired: 9, EventsCancelled: 1,
		QueuePromotions: 1, PendingHWM: 50, ReadyHWM: 4,
		TasksSubmitted: 5, TasksCompleted: 4, TasksAborted: 1, Preemptions: 2}
	b := EngineStats{EventsScheduled: 20, EventsFired: 20,
		PendingHWM: 30, ReadyHWM: 7, TasksSubmitted: 8, TasksCompleted: 8}
	acc.Merge(a)
	acc.Merge(b)

	var rev EngineStats
	rev.Merge(b)
	rev.Merge(a)
	if acc != rev {
		t.Fatalf("merge is order-dependent: %+v vs %+v", acc, rev)
	}
	if acc.EventsScheduled != 30 || acc.EventsFired != 29 || acc.EventsCancelled != 1 {
		t.Fatalf("event counts wrong: %+v", acc)
	}
	if acc.PendingHWM != 50 || acc.ReadyHWM != 7 {
		t.Fatalf("HWMs should take maxima: %+v", acc)
	}
	if acc.TasksSubmitted != 13 || acc.TasksCompleted != 12 || acc.TasksAborted != 1 || acc.Preemptions != 2 {
		t.Fatalf("task counts wrong: %+v", acc)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE repro_engine_events_scheduled_total counter",
		"repro_engine_events_scheduled_total 1000",
		"repro_engine_pending_events_hwm 600",
		"repro_engine_tasks_submitted_total 500",
		"repro_session_replications_in_flight 4",
		"repro_session_pool_warm_acquires_total 6",
		"repro_session_pool_busy_seconds_total 1.5",
		"repro_distrib_merge_depth_hwm 3",
		`repro_distrib_worker_subshards_total{worker="1"} 4`,
		`repro_distrib_worker_subshards_total{worker="2"} 2`,
		`repro_distrib_worker_alive{worker="1"} 1`,
		`repro_distrib_worker_alive{worker="2"} 0`,
		`repro_distrib_worker_steals_total{worker="1"} 1`,
		`repro_distrib_worker_bytes_recv_total{worker="1"} 3400`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, text)
		}
	}
	// Every sample line's series must have HELP and TYPE headers.
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !seen[name] {
			t.Errorf("sample %q has no preceding HELP/TYPE", line)
		}
	}
}

func TestWritePrometheusOmitsDistribWhenNil(t *testing.T) {
	snap := sampleSnapshot()
	snap.Distrib = nil
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "repro_distrib_") {
		t.Fatalf("distrib series rendered without a distrib backend:\n%s", buf.String())
	}
}

func TestReadRuntimeGauges(t *testing.T) {
	r := ReadRuntime()
	if r.HeapInuseBytes == 0 || r.HeapAllocBytes == 0 || r.HeapSysBytes == 0 {
		t.Fatalf("runtime heap gauges zero: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"repro_runtime_heap_inuse_bytes",
		"repro_runtime_heap_alloc_bytes",
		"repro_runtime_heap_sys_bytes",
		"repro_runtime_gc_cycles_total",
		"repro_runtime_gc_pause_seconds_total",
		"repro_runtime_gc_next_bytes",
	} {
		if !strings.Contains(out, "# TYPE "+series+" ") || !strings.Contains(out, "\n"+series+" ") {
			t.Errorf("rendered runtime metrics missing %s:\n%s", series, out)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", sampleSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "repro_engine_events_fired_total 990") {
		t.Errorf("/metrics missing engine series:\n%s", body)
	} else {
		for _, series := range []string{
			"repro_runtime_heap_inuse_bytes",
			"repro_runtime_heap_alloc_bytes",
			"repro_runtime_gc_cycles_total",
			"repro_runtime_gc_pause_seconds_total",
		} {
			if !strings.Contains(body, series+" ") {
				t.Errorf("/metrics missing runtime series %s", series)
			}
		}
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong:\n%.200s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"repro"`) ||
		!strings.Contains(body, `"EventsScheduled":1000`) {
		t.Errorf("/debug/vars missing the repro snapshot:\n%.400s", body)
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := NewServer("definitely-not-an-addr:nope", sampleSnapshot); err == nil {
		t.Fatal("want error for an unbindable address")
	}
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("want error for a nil snapshot function")
	}
}

// scriptClock replaces timeNow with a deterministic ticking clock.
func scriptClock(t *testing.T, step time.Duration) {
	t.Helper()
	base := time.Unix(0, 0)
	var mu sync.Mutex
	n := 0
	timeNow = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
	t.Cleanup(func() { timeNow = time.Now })
}

func TestProgressLine(t *testing.T) {
	scriptClock(t, time.Second) // 1s per clock read: creation, then one per update
	var buf bytes.Buffer
	p := Progress(&buf, "fig2b")

	p(1, 4) // at t=2s (created at t=1s): 1 done in 1s => 1.0/s, 3 left => ETA 3s
	out := buf.String()
	if !strings.HasPrefix(out, "\rfig2b 1/4 (25%) 1.0/s ETA 3s") {
		t.Fatalf("unexpected first line %q", out)
	}
	if strings.Contains(out, "\n") {
		t.Fatalf("line terminated before completion: %q", out)
	}

	p(4, 4) // at t=3s: done, 2.0/s, elapsed tail + newline
	out = buf.String()
	if !strings.Contains(out, "fig2b 4/4 (100%) 2.0/s 2.0s") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("unexpected completion line %q", out)
	}

	before := buf.Len()
	p(4, 4) // after completion: dropped
	if buf.Len() != before {
		t.Fatal("update after completion still painted")
	}
}

func TestProgressMonotonic(t *testing.T) {
	scriptClock(t, time.Millisecond)
	var buf bytes.Buffer
	p := Progress(&buf, "x")
	p(3, 10)
	mark := buf.Len()
	p(2, 10) // stale out-of-order report: must not repaint
	if buf.Len() != mark {
		t.Fatalf("meter moved backwards: %q", buf.String())
	}
	p(4, 10)
	if got := buf.String(); !strings.Contains(got, "x 4/10") {
		t.Fatalf("advance not painted: %q", got)
	}
}

func TestProgressPadsShrinkingLine(t *testing.T) {
	scriptClock(t, time.Second)
	var buf bytes.Buffer
	p := Progress(&buf, "y")
	p(1, 1000000) // long line (big ETA)
	first := lastRepaint(buf.String())
	p(999999, 1000000)
	second := lastRepaint(buf.String())
	if len(second) < len(first) {
		t.Fatalf("shorter repaint %q does not blank predecessor %q", second, first)
	}
}

// lastRepaint returns the final \r-delimited segment.
func lastRepaint(s string) string {
	parts := strings.Split(s, "\r")
	return parts[len(parts)-1]
}

func TestProgressConcurrent(t *testing.T) {
	var buf bytes.Buffer
	p := Progress(io.Discard, "c")
	_ = buf
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p(i, 64)
		}(i)
	}
	wg.Wait()
}

func TestPoolStatsAdd(t *testing.T) {
	a := PoolStats{WarmAcquires: 2, ColdAcquires: 1, BusySeconds: 0.5}
	a.Add(PoolStats{WarmAcquires: 3, ColdAcquires: 4, BusySeconds: 1.25})
	want := PoolStats{WarmAcquires: 5, ColdAcquires: 5, BusySeconds: 1.75}
	if a != want {
		t.Fatalf("got %+v, want %+v", a, want)
	}
}

func ExampleSnapshot_WritePrometheus() {
	snap := Snapshot{Engine: EngineStats{EventsScheduled: 2, EventsFired: 2}}
	var buf bytes.Buffer
	_ = snap.WritePrometheus(&buf)
	for _, line := range strings.SplitN(buf.String(), "\n", 4)[:3] {
		fmt.Println(line)
	}
	// Output:
	// # HELP repro_engine_events_scheduled_total Engine events scheduled across finished replications.
	// # TYPE repro_engine_events_scheduled_total counter
	// repro_engine_events_scheduled_total 2
}
