package obs

import (
	"io"
	"runtime"
)

// RuntimeStats is the process-level memory view served alongside the
// simulation counters: how big the live working set actually is and what
// the garbage collector has been doing. Unlike Snapshot it is not a pure
// function of (configuration, seed) — it describes the process, not the
// simulation — so it is read fresh at scrape time and never stored in a
// Snapshot, keeping the deterministic and the environmental strictly
// separated.
//
// At extreme topologies (64k+ nodes) these gauges are the live form of
// the working-set question the memory-layout work answers: a scrape
// during a run shows whether the arena-and-SoA state actually stays
// cache-sized or is quietly growing per replication.
type RuntimeStats struct {
	// HeapInuseBytes is spans with at least one live object — the
	// resident working set the simulation touches.
	HeapInuseBytes uint64
	// HeapAllocBytes is live heap bytes (allocated and not yet freed).
	HeapAllocBytes uint64
	// HeapSysBytes is heap memory obtained from the OS.
	HeapSysBytes uint64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint64
	// GCPauseTotalSeconds is the cumulative stop-the-world pause time.
	GCPauseTotalSeconds float64
	// NextGCBytes is the heap size that triggers the next cycle — with
	// HeapAllocBytes it bounds the steady-state allocation rate.
	NextGCBytes uint64
}

// ReadRuntime samples runtime.MemStats. It stops the world briefly, so
// it belongs in scrape handlers and run summaries, never on a hot path.
func ReadRuntime() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		HeapInuseBytes:      m.HeapInuse,
		HeapAllocBytes:      m.HeapAlloc,
		HeapSysBytes:        m.HeapSys,
		GCCycles:            uint64(m.NumGC),
		GCPauseTotalSeconds: float64(m.PauseTotalNs) / 1e9,
		NextGCBytes:         m.NextGC,
	}
}

// WritePrometheus renders the runtime gauges in Prometheus text format,
// matching Snapshot.WritePrometheus's conventions.
func (r RuntimeStats) WritePrometheus(w io.Writer) error {
	pw := promWriter{w: w}
	pw.gauge("repro_runtime_heap_inuse_bytes", "Heap spans with live objects (resident working set).", float64(r.HeapInuseBytes))
	pw.gauge("repro_runtime_heap_alloc_bytes", "Live heap bytes (allocated, not yet freed).", float64(r.HeapAllocBytes))
	pw.gauge("repro_runtime_heap_sys_bytes", "Heap memory obtained from the OS.", float64(r.HeapSysBytes))
	pw.counter("repro_runtime_gc_cycles_total", "Completed garbage-collection cycles.", r.GCCycles)
	pw.counterf("repro_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", r.GCPauseTotalSeconds)
	pw.gauge("repro_runtime_gc_next_bytes", "Heap size that triggers the next GC cycle.", float64(r.NextGCBytes))
	return pw.err
}
