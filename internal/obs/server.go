package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server bundles a run's live observability endpoints on one mux:
//
//	/metrics      — the snapshot in Prometheus text format
//	/debug/pprof/ — the standard runtime profiles (net/http/pprof)
//	/debug/vars   — expvar, including the snapshot as "repro"
//
// The snapshot function is called per scrape; it must be safe for
// concurrent use (Session.Snapshot is).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (host:port; ":0" picks a free port —
// read it back with Addr) and serves until Close. The listener is bound
// synchronously so a returned *Server is already scrapeable.
func NewServer(addr string, snapshot func() Snapshot) (*Server, error) {
	if snapshot == nil {
		return nil, fmt.Errorf("obs: NewServer(nil snapshot)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishExpvar(snapshot)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snapshot().WritePrometheus(w); err != nil {
			return
		}
		// Process-level heap/GC gauges ride every scrape: they are
		// environmental (not part of the deterministic Snapshot), and at
		// 64k+ nodes they show live whether the working set holds steady
		// across replications.
		_ = ReadRuntime().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving. In-flight scrapes are cut off; a run's final
// counters remain available through the Snapshot API, not the server.
func (s *Server) Close() error { return s.srv.Close() }

// expvar registration: the package publishes one "repro" var whose
// value is the latest server's snapshot. expvar.Publish panics on
// duplicate names, so the var is registered once per process and
// re-pointed at the newest snapshot function.
var (
	expvarMu   sync.Mutex
	expvarSnap func() Snapshot
	expvarOnce sync.Once
)

func publishExpvar(snapshot func() Snapshot) {
	expvarMu.Lock()
	expvarSnap = snapshot
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("repro", expvar.Func(func() any {
			expvarMu.Lock()
			snap := expvarSnap
			expvarMu.Unlock()
			return snap()
		}))
	})
}
