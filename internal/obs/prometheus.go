package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per series followed by
// its samples. Engine and session series are scalars; distrib series
// carry a worker="<id>" label per worker process.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	pw := promWriter{w: w}

	pw.counter("repro_engine_events_scheduled_total", "Engine events scheduled across finished replications.", s.Engine.EventsScheduled)
	pw.counter("repro_engine_events_fired_total", "Engine events executed across finished replications.", s.Engine.EventsFired)
	pw.counter("repro_engine_events_cancelled_total", "Engine events cancelled before firing.", s.Engine.EventsCancelled)
	pw.counter("repro_engine_queue_promotions_total", "Heap-to-ladder event-queue promotions (auto mode).", s.Engine.QueuePromotions)
	pw.gauge("repro_engine_pending_events_hwm", "Deepest pending-event queue of any replication.", float64(s.Engine.PendingHWM))
	pw.gauge("repro_engine_ready_queue_hwm", "Deepest per-node ready queue of any replication.", float64(s.Engine.ReadyHWM))
	pw.counter("repro_engine_tasks_submitted_total", "Tasks submitted to nodes.", s.Engine.TasksSubmitted)
	pw.counter("repro_engine_tasks_completed_total", "Tasks that completed service.", s.Engine.TasksCompleted)
	pw.counter("repro_engine_tasks_aborted_total", "Tasks discarded by a tardy policy.", s.Engine.TasksAborted)
	pw.counter("repro_engine_preemptions_total", "Running tasks suspended by a newcomer.", s.Engine.Preemptions)

	pw.counter("repro_session_jobs_started_total", "Jobs the session has started.", s.Session.JobsStarted)
	pw.counter("repro_session_jobs_finished_total", "Jobs the session has finished.", s.Session.JobsFinished)
	pw.counter("repro_session_replications_completed_total", "Replications finished across all jobs.", s.Session.ReplicationsCompleted)
	pw.gauge("repro_session_replications_in_flight", "Requested-but-unfinished replications of running jobs.", float64(s.Session.ReplicationsInFlight))
	pw.counter("repro_session_pool_warm_acquires_total", "Workspace leases served from the warm free list.", s.Session.Pool.WarmAcquires)
	pw.counter("repro_session_pool_cold_acquires_total", "Workspace leases that allocated a fresh workspace.", s.Session.Pool.ColdAcquires)
	pw.counterf("repro_session_pool_busy_seconds_total", "Wall-clock seconds workspaces spent running replications.", s.Session.Pool.BusySeconds)

	if d := s.Distrib; d != nil {
		pw.counter("repro_distrib_worker_deaths_total", "Worker processes reaped mid-run.", d.Deaths)
		pw.counter("repro_distrib_worker_respawns_total", "Replacement workers spawned after the initial fleet.", d.Respawns)
		pw.gauge("repro_distrib_merge_depth_hwm", "Most replications held for seed-order delivery.", float64(d.MergeDepthHWM))
		pw.counter("repro_distrib_heartbeats_missed_total", "Liveness pings that went unanswered before the next probe.", d.HeartbeatsMissed)
		pw.counter("repro_distrib_retries_total", "Failed sub-shards re-queued for another dispatch.", d.Retries)
		pw.counter("repro_distrib_hedges_won_total", "Speculative straggler re-dispatches that beat the original.", d.HedgesWon)
		pw.counter("repro_distrib_hedges_lost_total", "Speculative straggler re-dispatches the original beat.", d.HedgesLost)
		pw.counter("repro_distrib_fallbacks_total", "Shards (or remainders) degraded to the in-process pool.", d.Fallbacks)
		pw.counter("repro_distrib_frame_decode_rejects_total", "Malformed worker frames the coordinator rejected.", d.FrameDecodeRejects)

		pw.head("repro_distrib_worker_alive", "Whether the worker process is live (1) or reaped (0).", "gauge")
		for _, ws := range d.Workers {
			alive := 0.0
			if ws.Alive {
				alive = 1
			}
			pw.sample("repro_distrib_worker_alive", ws.ID, alive)
		}
		workerCounter := func(name, help string, value func(WorkerStats) float64) {
			pw.head(name, help, "counter")
			for _, ws := range d.Workers {
				pw.sample(name, ws.ID, value(ws))
			}
		}
		workerCounter("repro_distrib_worker_subshards_total", "Sub-shards the worker ran to completion.",
			func(ws WorkerStats) float64 { return float64(ws.SubShards) })
		workerCounter("repro_distrib_worker_steals_total", "Sub-shards the worker picked up after another worker died.",
			func(ws WorkerStats) float64 { return float64(ws.Steals) })
		workerCounter("repro_distrib_worker_frames_sent_total", "Protocol frames sent coordinator-to-worker.",
			func(ws WorkerStats) float64 { return float64(ws.FramesSent) })
		workerCounter("repro_distrib_worker_frames_recv_total", "Protocol frames received worker-to-coordinator.",
			func(ws WorkerStats) float64 { return float64(ws.FramesRecv) })
		workerCounter("repro_distrib_worker_bytes_sent_total", "Protocol bytes sent coordinator-to-worker.",
			func(ws WorkerStats) float64 { return float64(ws.BytesSent) })
		workerCounter("repro_distrib_worker_bytes_recv_total", "Protocol bytes received worker-to-coordinator.",
			func(ws WorkerStats) float64 { return float64(ws.BytesRecv) })
		workerCounter("repro_distrib_worker_pool_warm_acquires_total", "Warm workspace leases inside the worker process.",
			func(ws WorkerStats) float64 { return float64(ws.Pool.WarmAcquires) })
		workerCounter("repro_distrib_worker_pool_cold_acquires_total", "Cold workspace leases inside the worker process.",
			func(ws WorkerStats) float64 { return float64(ws.Pool.ColdAcquires) })
		workerCounter("repro_distrib_worker_pool_busy_seconds_total", "Wall-clock seconds the worker's workspaces spent running replications.",
			func(ws WorkerStats) float64 { return ws.Pool.BusySeconds })
	}

	if n := s.Net; n != nil {
		pw.counter("repro_net_connections_total", "Worker connections dialed and handshaken.", n.Connections)
		pw.counter("repro_net_reconnects_total", "Connections that re-established a previously connected worker address.", n.Reconnects)
		pw.counter("repro_net_dial_errors_total", "Worker dial or handshake failures.", n.DialErrors)
		pw.counter("repro_net_frames_sent_total", "Protocol frames sent coordinator-to-worker over the network.", n.FramesSent)
		pw.counter("repro_net_frames_recv_total", "Protocol frames received worker-to-coordinator over the network.", n.FramesRecv)
		pw.counter("repro_net_bytes_sent_total", "Protocol bytes sent coordinator-to-worker over the network.", n.BytesSent)
		pw.counter("repro_net_bytes_recv_total", "Protocol bytes received worker-to-coordinator over the network.", n.BytesRecv)
	}

	if c := s.Cache; c != nil {
		pw.counter("repro_cache_hits_total", "Seed lookups served from the shard-result cache.", c.Hits)
		pw.counter("repro_cache_misses_total", "Seed lookups that required fresh simulation.", c.Misses)
		pw.counter("repro_cache_inserts_total", "Seed-run entries stored in the cache.", c.Inserts)
		pw.counter("repro_cache_evictions_total", "Cache entries dropped under byte pressure.", c.Evictions)
		pw.counter("repro_cache_bypass_total", "Shards that skipped the cache (unfingerprintable configuration).", c.Bypasses)
		pw.gauge("repro_cache_entries", "Seed-run entries currently cached.", float64(c.Entries))
		pw.gauge("repro_cache_bytes", "Encoded bytes currently cached.", float64(c.Bytes))
	}
	return pw.err
}

// promWriter accumulates the first write error so rendering code stays
// linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// head writes one series' HELP and TYPE lines.
func (pw *promWriter) head(name, help, typ string) {
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// counter, counterf, and gauge write a headed scalar sample.
func (pw *promWriter) counter(name, help string, v uint64) {
	pw.head(name, help, "counter")
	pw.printf("%s %s\n", name, strconv.FormatUint(v, 10))
}

func (pw *promWriter) counterf(name, help string, v float64) {
	pw.head(name, help, "counter")
	pw.printf("%s %s\n", name, formatFloat(v))
}

func (pw *promWriter) gauge(name, help string, v float64) {
	pw.head(name, help, "gauge")
	pw.printf("%s %s\n", name, formatFloat(v))
}

// sample writes one worker-labelled sample.
func (pw *promWriter) sample(name string, worker uint64, v float64) {
	pw.printf("%s{worker=\"%d\"} %s\n", name, worker, formatFloat(v))
}

// formatFloat renders integral values without an exponent or trailing
// zeros, matching what scrape-side assertions and humans expect.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
