package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress returns a progress callback for session.WithProgress (and
// experiment.Options.Progress): it repaints one carriage-return line on
// w with the completed count, percentage, completion rate, and an ETA
// extrapolated from the rate so far, then finishes the line with the
// total elapsed time when done reaches total.
//
//	label 37/128 (28%) 12.3/s ETA 7s
//	label 128/128 (100%) 13.1/s 9.8s
//
// The callback is safe for concurrent use and monotonic: calls are
// dropped unless they advance the count, so out-of-order completion
// reports never move the meter backwards. Pass w = a terminal's stderr;
// the line ends with padding spaces to overwrite a longer predecessor.
func Progress(w io.Writer, label string) func(done, total int) {
	p := &progressMeter{w: w, label: label, start: timeNow()}
	return p.update
}

// timeNow is swapped in tests to script the clock.
var timeNow = time.Now

type progressMeter struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	start time.Time
	best  int
	width int
	fin   bool
}

func (p *progressMeter) update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fin || done <= p.best {
		return
	}
	p.best = done
	elapsed := timeNow().Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	var tail string
	if done >= total {
		p.fin = true
		tail = fmt.Sprintf("%.1fs", elapsed)
	} else if rate > 0 {
		eta := time.Duration(float64(total-done) / rate * float64(time.Second))
		tail = "ETA " + eta.Round(time.Second).String()
	} else {
		tail = "ETA ?"
	}
	line := fmt.Sprintf("%s %d/%d (%.0f%%) %.1f/s %s", p.label, done, total, pct, rate, tail)
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.width = len(line)
	end := ""
	if p.fin {
		end = "\n"
	}
	fmt.Fprintf(p.w, "\r%s%s%s", line, pad, end)
}
