// Package node implements the processing nodes of the system model
// (paper section 3.2): each node manages one resource with a single
// non-preemptive server, an independent real-time ready queue, and a
// tardy-task policy. Nodes know nothing about global tasks — they see
// only the real-time attributes attached to each submitted task, which is
// precisely the premise of the SDA problem.
package node

import (
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// TardyPolicy selects what a node does with a task whose deadline has
// already passed when the server would start it.
type TardyPolicy int

const (
	// NoAbort executes tardy tasks to completion (the paper's baseline
	// overload management policy, Table 1).
	NoAbort TardyPolicy = iota + 1
	// AbortAtDispatch discards a task if its (virtual) deadline has
	// passed when it reaches the head of the queue — the paper's
	// "components that discard tasks with a past deadline (virtual or
	// not)" (section 5.3). The task is reported through the abort
	// callback and consumes no service time.
	AbortAtDispatch
	// AbortFirm discards a task only when its FirmDeadline (the
	// end-to-end deadline for subtasks) has passed at dispatch: the
	// component understands which deadline makes the work worthless.
	// Under this semantics DIV-x keeps its promotion benefit without
	// being killed by its deliberately early virtual deadlines.
	AbortFirm
)

// String returns the policy name.
func (p TardyPolicy) String() string {
	switch p {
	case NoAbort:
		return "no-abort"
	case AbortAtDispatch:
		return "abort"
	case AbortFirm:
		return "abort-firm"
	default:
		return fmt.Sprintf("TardyPolicy(%d)", int(p))
	}
}

// ObserverEvent is a lifecycle step reported to an Observer.
type ObserverEvent int

// Observer lifecycle steps.
const (
	// ObserveSubmit fires when a task enters the queue.
	ObserveSubmit ObserverEvent = iota + 1
	// ObserveDispatch fires when a task starts or resumes service.
	ObserveDispatch
	// ObservePreempt fires when a running task is suspended.
	ObservePreempt
	// ObserveComplete fires when a task finishes service.
	ObserveComplete
	// ObserveAbort fires when a tardy policy discards a task.
	ObserveAbort
)

// Observer receives per-task lifecycle callbacks with the current
// simulation time. Observers must not mutate the task.
type Observer func(ev ObserverEvent, now float64, t *task.Task)

// Node is one simulated processing component.
type Node struct {
	id         int
	eng        *sim.Engine
	queue      sched.Queue
	policy     TardyPolicy
	preemptive bool
	observer   Observer

	onDone  func(*task.Task)
	onAbort func(*task.Task)

	busy         bool
	running      *task.Task
	completion   sim.Event
	completeCB   sim.Callback
	speed        float64 // service speed factor: 1 nominal, 0 frozen
	segmentStart float64
	busyTime     float64 // accumulated service time, for utilization
	served       int64
	aborted      int64
	preemptions  int64
	submitted    int64
	readyHWM     int // deepest the ready queue got (waiting tasks)
}

// Config carries the node's construction parameters.
type Config struct {
	// ID is the node's index in the system.
	ID int
	// Engine is the simulation engine driving the node.
	Engine *sim.Engine
	// Queue is the node's ready queue (policy chosen by the system).
	Queue sched.Queue
	// Policy is the tardy-task policy; zero value defaults to NoAbort.
	Policy TardyPolicy
	// Preemptive enables deadline-based preemption: a newly submitted
	// task with an earlier deadline suspends the task in service, which
	// re-queues with its remaining demand. The paper's model is
	// non-preemptive (Table 1); this is an extension for the
	// ext-preempt ablation.
	Preemptive bool
	// OnDone is called when a task completes service; required.
	OnDone func(*task.Task)
	// OnAbort is called when AbortAtDispatch discards a task; may be nil
	// if the policy is NoAbort.
	OnAbort func(*task.Task)
	// Observer optionally receives every lifecycle event (for tracing).
	Observer Observer
}

// New returns a node ready to accept submissions.
func New(cfg Config) (*Node, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("node %d: nil engine", cfg.ID)
	}
	if cfg.Queue == nil {
		return nil, fmt.Errorf("node %d: nil queue", cfg.ID)
	}
	if cfg.OnDone == nil {
		return nil, fmt.Errorf("node %d: nil OnDone", cfg.ID)
	}
	if cfg.Policy == 0 {
		cfg.Policy = NoAbort
	}
	if (cfg.Policy == AbortAtDispatch || cfg.Policy == AbortFirm) && cfg.OnAbort == nil {
		return nil, fmt.Errorf("node %d: abort policy requires OnAbort", cfg.ID)
	}
	n := &Node{
		id:         cfg.ID,
		eng:        cfg.Engine,
		queue:      cfg.Queue,
		policy:     cfg.Policy,
		preemptive: cfg.Preemptive,
		observer:   cfg.Observer,
		onDone:     cfg.OnDone,
		onAbort:    cfg.OnAbort,
		speed:      1,
	}
	// One registration per node replaces a closure allocation per
	// completion event: the task rides along as the payload word.
	n.completeCB = cfg.Engine.Register(func(p any) { n.complete(p.(*task.Task)) })
	return n, nil
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// QueueLen returns the number of tasks waiting (not in service).
func (n *Node) QueueLen() int { return n.queue.Len() }

// Busy reports whether the server is occupied.
func (n *Node) Busy() bool { return n.busy }

// Served returns the number of tasks that completed service.
func (n *Node) Served() int64 { return n.served }

// Aborted returns the number of tasks discarded by the tardy policy.
func (n *Node) Aborted() int64 { return n.aborted }

// BusyTime returns accumulated service time (for utilization =
// BusyTime/horizon). Time of a task currently in service counts only
// once it finishes.
func (n *Node) BusyTime() float64 { return n.busyTime }

// Preemptions returns the number of times a running task was suspended
// (always zero for non-preemptive nodes).
func (n *Node) Preemptions() int64 { return n.preemptions }

// Submitted returns the number of tasks submitted to the node. A
// preempted task re-queues without resubmitting, so
// Submitted >= Served + Aborted, with equality for runs that drain.
func (n *Node) Submitted() int64 { return n.submitted }

// ReadyQueueHWM returns the deepest the ready queue got (tasks waiting,
// excluding the one in service) — a pure function of the replication's
// event sequence, unlike the instantaneous QueueLen.
func (n *Node) ReadyQueueHWM() int { return n.readyHWM }

// Speed returns the current service speed factor (1 = nominal, 0 =
// frozen).
func (n *Node) Speed() float64 { return n.speed }

// SetSpeed changes the node's service speed factor: demand is consumed at
// `speed` work units per time unit, so a task with remaining demand w
// finishes after w/speed. Speed 0 freezes the server (a transient
// outage): the ready queue holds, a task in service is suspended in
// place, and a later SetSpeed > 0 resumes it with its remaining demand
// intact. Fractional speeds model degraded nodes (scenario fault
// injection); BusyTime accrues only while the server actually serves.
// It panics on a negative or NaN speed.
func (n *Node) SetSpeed(speed float64) {
	if speed < 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("node %d: SetSpeed(%v)", n.id, speed))
	}
	if speed == n.speed {
		return
	}
	now := n.eng.Now()
	if n.busy {
		if n.speed > 0 {
			// Settle the progress of the current service segment.
			elapsed := now - n.segmentStart
			n.busyTime += elapsed
			n.running.Remaining -= elapsed * n.speed
			if n.running.Remaining < 0 {
				n.running.Remaining = 0
			}
			n.eng.Cancel(n.completion)
			n.completion = sim.Event{}
		}
		n.segmentStart = now
		if speed > 0 {
			n.completion = n.eng.MustScheduleCall(n.running.Remaining/speed, n.completeCB, n.running)
		}
	}
	n.speed = speed
	// A thawed idle server picks up whatever queued during the freeze.
	n.dispatch()
}

// Submit enqueues a task at the current simulation time and starts the
// server if it is idle. The task's Arrival must already be set by the
// caller (generator or process manager). On a preemptive node a
// newcomer with an earlier deadline suspends the task in service.
func (n *Node) Submit(t *task.Task) {
	t.NodeID = n.id
	n.submitted++
	n.observe(ObserveSubmit, t)
	n.queue.Push(t)
	if n.preemptive && n.busy && t.Deadline < n.running.Deadline {
		n.preempt() // pushes the suspended task back, deepening the queue
	}
	if l := n.queue.Len(); l > n.readyHWM {
		n.readyHWM = l
	}
	n.dispatch()
}

// observe reports a lifecycle event if an observer is attached.
func (n *Node) observe(ev ObserverEvent, t *task.Task) {
	if n.observer != nil {
		n.observer(ev, n.eng.Now(), t)
	}
}

// preempt suspends the running task and re-queues it with its remaining
// demand.
func (n *Node) preempt() {
	now := n.eng.Now()
	n.eng.Cancel(n.completion)
	cur := n.running
	cur.Remaining -= (now - n.segmentStart) * n.speed
	if n.speed > 0 {
		n.busyTime += now - n.segmentStart
	}
	n.preemptions++
	n.busy = false
	n.running = nil
	n.observe(ObservePreempt, cur)
	n.queue.Push(cur)
}

// dispatch starts the next task if the server is idle. The paper's model
// is non-preemptive ("no preemption", section 4.1): once started, a
// task runs to completion unless the node is explicitly preemptive.
func (n *Node) dispatch() {
	if n.busy || n.speed == 0 {
		return
	}
	for {
		now := n.eng.Now()
		t := n.queue.Pop(now)
		if t == nil {
			return
		}
		if n.shouldAbort(t, now) {
			n.aborted++
			t.Finish = now
			n.observe(ObserveAbort, t)
			n.onAbort(t)
			continue
		}
		if t.Remaining == 0 {
			// First dispatch.
			t.Remaining = t.Exec
			t.Start = now
		}
		n.busy = true
		n.running = t
		n.segmentStart = now
		n.observe(ObserveDispatch, t)
		n.completion = n.eng.MustScheduleCall(t.Remaining/n.speed, n.completeCB, t)
		return
	}
}

// shouldAbort applies the tardy policy at dispatch time.
func (n *Node) shouldAbort(t *task.Task, now float64) bool {
	switch n.policy {
	case AbortAtDispatch:
		return now > t.Deadline
	case AbortFirm:
		return now > t.FirmDeadline
	default:
		return false
	}
}

// complete finishes the task in service and redispatches.
func (n *Node) complete(t *task.Task) {
	now := n.eng.Now()
	t.Finish = now
	t.Remaining = 0
	n.busy = false
	n.running = nil
	n.busyTime += now - n.segmentStart
	n.served++
	n.observe(ObserveComplete, t)
	n.onDone(t)
	n.dispatch()
}
