// Package node implements the processing nodes of the system model
// (paper section 3.2): each node manages one resource with a single
// non-preemptive server, an independent real-time ready queue, and a
// tardy-task policy. Nodes know nothing about global tasks — they see
// only the real-time attributes attached to each submitted task, which is
// precisely the premise of the SDA problem.
//
// All per-node state lives in a Group in structure-of-arrays layout
// (see group.go); Node is a 16-byte handle that delegates to its group,
// so holding []*Node views or passing nodes around costs nothing at
// large topologies.
package node

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// TardyPolicy selects what a node does with a task whose deadline has
// already passed when the server would start it.
type TardyPolicy int

const (
	// NoAbort executes tardy tasks to completion (the paper's baseline
	// overload management policy, Table 1).
	NoAbort TardyPolicy = iota + 1
	// AbortAtDispatch discards a task if its (virtual) deadline has
	// passed when it reaches the head of the queue — the paper's
	// "components that discard tasks with a past deadline (virtual or
	// not)" (section 5.3). The task is reported through the abort
	// callback and consumes no service time.
	AbortAtDispatch
	// AbortFirm discards a task only when its FirmDeadline (the
	// end-to-end deadline for subtasks) has passed at dispatch: the
	// component understands which deadline makes the work worthless.
	// Under this semantics DIV-x keeps its promotion benefit without
	// being killed by its deliberately early virtual deadlines.
	AbortFirm
)

// String returns the policy name.
func (p TardyPolicy) String() string {
	switch p {
	case NoAbort:
		return "no-abort"
	case AbortAtDispatch:
		return "abort"
	case AbortFirm:
		return "abort-firm"
	default:
		return fmt.Sprintf("TardyPolicy(%d)", int(p))
	}
}

// ObserverEvent is a lifecycle step reported to an Observer.
type ObserverEvent int

// Observer lifecycle steps.
const (
	// ObserveSubmit fires when a task enters the queue.
	ObserveSubmit ObserverEvent = iota + 1
	// ObserveDispatch fires when a task starts or resumes service.
	ObserveDispatch
	// ObservePreempt fires when a running task is suspended.
	ObservePreempt
	// ObserveComplete fires when a task finishes service.
	ObserveComplete
	// ObserveAbort fires when a tardy policy discards a task.
	ObserveAbort
)

// Observer receives per-task lifecycle callbacks with the current
// simulation time. Observers must not mutate the task.
type Observer func(ev ObserverEvent, now float64, t *task.Task)

// Node is a handle to one simulated processing component inside its
// Group.
type Node struct {
	g   *Group
	idx int32
}

// Config carries a standalone node's construction parameters.
type Config struct {
	// ID is the node's index in the system.
	ID int
	// Engine is the simulation engine driving the node.
	Engine *sim.Engine
	// Queue is the node's ready queue (policy chosen by the system).
	Queue sched.Queue
	// Policy is the tardy-task policy; zero value defaults to NoAbort.
	Policy TardyPolicy
	// Preemptive enables deadline-based preemption: a newly submitted
	// task with an earlier deadline suspends the task in service, which
	// re-queues with its remaining demand. The paper's model is
	// non-preemptive (Table 1); this is an extension for the
	// ext-preempt ablation.
	Preemptive bool
	// OnDone is called when a task completes service; required.
	OnDone func(*task.Task)
	// OnAbort is called when AbortAtDispatch discards a task; may be nil
	// if the policy is NoAbort.
	OnAbort func(*task.Task)
	// Observer optionally receives every lifecycle event (for tracing).
	Observer Observer
}

// New returns a node ready to accept submissions: a one-node group
// whose IDBase preserves the configured ID.
func New(cfg Config) (*Node, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("node %d: nil engine", cfg.ID)
	}
	if cfg.Queue == nil {
		return nil, fmt.Errorf("node %d: nil queue", cfg.ID)
	}
	g, err := NewGroup(GroupConfig{
		Engine:     cfg.Engine,
		Queues:     []sched.Queue{cfg.Queue},
		Policy:     cfg.Policy,
		Preemptive: cfg.Preemptive,
		OnDone:     cfg.OnDone,
		OnAbort:    cfg.OnAbort,
		Observer:   cfg.Observer,
		IDBase:     cfg.ID,
	})
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", cfg.ID, err)
	}
	return g.Node(0), nil
}

// ID returns the node's index.
func (n *Node) ID() int { return n.g.idBase + int(n.idx) }

// QueueLen returns the number of tasks waiting (not in service).
func (n *Node) QueueLen() int { return n.g.qLen(int(n.idx)) }

// Busy reports whether the server is occupied.
func (n *Node) Busy() bool { return n.g.hot[n.idx].running != nil }

// Served returns the number of tasks that completed service.
func (n *Node) Served() int64 { return int64(n.g.hot[n.idx].served) }

// Aborted returns the number of tasks discarded by the tardy policy.
func (n *Node) Aborted() int64 { return int64(n.g.hot[n.idx].aborted) }

// BusyTime returns accumulated service time (for utilization =
// BusyTime/horizon). Time of a task currently in service counts only
// once it finishes.
func (n *Node) BusyTime() float64 { return n.g.hot[n.idx].busyTime }

// Preemptions returns the number of times a running task was suspended
// (always zero for non-preemptive nodes).
func (n *Node) Preemptions() int64 { return int64(n.g.hot[n.idx].preemptions) }

// Submitted returns the number of tasks submitted to the node. A
// preempted task re-queues without resubmitting, so
// Submitted >= Served + Aborted, with equality for runs that drain.
func (n *Node) Submitted() int64 { return int64(n.g.hot[n.idx].submitted) }

// ReadyQueueHWM returns the deepest the ready queue got (tasks waiting,
// excluding the one in service) — a pure function of the replication's
// event sequence, unlike the instantaneous QueueLen.
func (n *Node) ReadyQueueHWM() int { return int(n.g.hot[n.idx].readyHWM) }

// Speed returns the current service speed factor (1 = nominal, 0 =
// frozen).
func (n *Node) Speed() float64 { return n.g.hot[n.idx].speed }

// SetSpeed changes the node's service speed factor: demand is consumed at
// `speed` work units per time unit, so a task with remaining demand w
// finishes after w/speed. Speed 0 freezes the server (a transient
// outage): the ready queue holds, a task in service is suspended in
// place, and a later SetSpeed > 0 resumes it with its remaining demand
// intact. Fractional speeds model degraded nodes (scenario fault
// injection); BusyTime accrues only while the server actually serves.
// It panics on a negative or NaN speed.
func (n *Node) SetSpeed(speed float64) { n.g.SetSpeed(int(n.idx), speed) }

// Submit enqueues a task at the current simulation time and starts the
// server if it is idle. The task's Arrival must already be set by the
// caller (generator or process manager). On a preemptive node a
// newcomer with an earlier deadline suspends the task in service.
func (n *Node) Submit(t *task.Task) { n.g.Submit(int(n.idx), t) }
