package node

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// driveLoad submits a deterministic task mix across a spread of the
// group's nodes and runs it to completion: every (exec, deadline) pair
// is a pure function of the task index, so two drives over identically
// configured groups perform bit-identical arithmetic.
func driveLoad(t *testing.T, eng *sim.Engine, g *Group, k, tasks int) {
	t.Helper()
	var seq uint64
	for i := 0; i < tasks; i++ {
		seq++
		// Stride the node index so submissions scatter across the whole
		// array (the growth bug this hunts is per-node state at high
		// indices surviving a reset).
		nd := (i * 40503) % k
		ex := 0.25 + float64(i%7)*0.125
		tk := &task.Task{
			ID: seq, Class: task.Local, Stage: -1,
			Arrival: eng.Now(), Exec: ex, Pex: ex,
			Deadline: eng.Now() + ex + float64(i%5), Seq: seq,
		}
		tk.FirmDeadline = tk.Deadline
		g.Submit(nd, tk)
		if i%64 == 63 {
			eng.RunAll() // interleave service with submission bursts
		}
	}
	eng.RunAll()
}

// nodeSig captures every externally visible per-node value, floats
// included, for exact (bit-level) comparison.
type nodeSig struct {
	served, aborted, preempted, submitted int64
	hwm                                   int
	busy                                  float64
	speed                                 float64
}

func signature(g *Group, k int) []nodeSig {
	out := make([]nodeSig, k)
	for i := 0; i < k; i++ {
		n := g.Node(i)
		out[i] = nodeSig{
			served: n.Served(), aborted: n.Aborted(),
			preempted: n.Preemptions(), submitted: n.Submitted(),
			hwm: n.ReadyQueueHWM(), busy: n.BusyTime(), speed: n.Speed(),
		}
	}
	return out
}

// configureBank wires a fresh EDF bank of k lanes into g (or builds g).
func configureBank(t *testing.T, eng *sim.Engine, g *Group, k int) *Group {
	t.Helper()
	bank := sched.NewBank()
	if err := bank.Configure(k, sched.EDF, false, 4); err != nil {
		t.Fatal(err)
	}
	cfg := GroupConfig{Engine: eng, Bank: bank, OnDone: func(*task.Task) {}}
	if g == nil {
		g2, err := NewGroup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g2
	}
	if err := g.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGroupGrowthAndResetAt64k pins the SoA group's growth and reset
// paths at the extreme-scale node count: growing a small group to 64k
// nodes, running a deterministic load, resetting in place, and re-running
// must reproduce every per-node counter and accumulated float exactly —
// and the reset must leave no residue anywhere in the 64k-wide arrays.
func TestGroupGrowthAndResetAt64k(t *testing.T) {
	const k = 65536
	const tasks = 40000
	eng := sim.New()

	// Grow: start the same group object small, then reconfigure to 64k.
	g := configureBank(t, eng, nil, 16)
	eng.Reset()
	g = configureBank(t, eng, g, k)
	if g.Len() != k {
		t.Fatalf("Len = %d after growth, want %d", g.Len(), k)
	}
	driveLoad(t, eng, g, k, tasks)
	first := signature(g, k)

	var total int64
	for _, s := range first {
		total += s.served
	}
	if total != tasks {
		t.Fatalf("first run served %d tasks, want %d", total, tasks)
	}

	// Reset in place: same shape, so the backing arrays must be reused
	// (stable node pointers) and every node must read as factory-new.
	n0 := g.Node(0)
	eng.Reset()
	g = configureBank(t, eng, g, k)
	if g.Node(0) != n0 {
		t.Fatal("same-shape Configure reallocated the node array")
	}
	for i, s := range signature(g, k) {
		if s != (nodeSig{speed: 1}) {
			t.Fatalf("node %d not reset: %+v", i, s)
		}
	}

	// Re-run: bit-identical counters and floats, node by node.
	driveLoad(t, eng, g, k, tasks)
	for i, s := range signature(g, k) {
		if s != first[i] {
			t.Fatalf("node %d diverged after reset:\nfirst %+v\nagain %+v", i, first[i], s)
		}
	}
}

// TestGroupBankMatchesQueuesLargeN drives the identical deterministic
// load through a bank-backed group and a legacy per-queue group at a
// large node count: the SoA/arena layout must be invisible — every
// counter and accumulated float equal to the last bit.
func TestGroupBankMatchesQueuesLargeN(t *testing.T) {
	const k = 8192
	const tasks = 20000

	run := func(useBank bool) []nodeSig {
		eng := sim.New()
		var g *Group
		if useBank {
			g = configureBank(t, eng, nil, k)
		} else {
			queues := make([]sched.Queue, k)
			for i := range queues {
				q, err := sched.New(sched.EDF, false)
				if err != nil {
					t.Fatal(err)
				}
				queues[i] = q
			}
			var err error
			g, err = NewGroup(GroupConfig{Engine: eng, Queues: queues, OnDone: func(*task.Task) {}})
			if err != nil {
				t.Fatal(err)
			}
		}
		driveLoad(t, eng, g, k, tasks)
		return signature(g, k)
	}

	bank, legacy := run(true), run(false)
	for i := range bank {
		if bank[i] != legacy[i] {
			t.Fatalf("node %d: bank %+v != queues %+v", i, bank[i], legacy[i])
		}
	}
}
