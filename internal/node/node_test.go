package node

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

type recorder struct {
	done    []*task.Task
	aborted []*task.Task
}

func newTestNode(t *testing.T, eng *sim.Engine, policy TardyPolicy) (*Node, *recorder) {
	t.Helper()
	rec := &recorder{}
	q, err := sched.New(sched.EDF, false)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		ID:      3,
		Engine:  eng,
		Queue:   q,
		Policy:  policy,
		OnDone:  func(tk *task.Task) { rec.done = append(rec.done, tk) },
		OnAbort: func(tk *task.Task) { rec.aborted = append(rec.aborted, tk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, rec
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	q, _ := sched.New(sched.EDF, false)
	done := func(*task.Task) {}
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil engine", cfg: Config{Queue: q, OnDone: done}},
		{name: "nil queue", cfg: Config{Engine: eng, OnDone: done}},
		{name: "nil OnDone", cfg: Config{Engine: eng, Queue: q}},
		{name: "abort without OnAbort", cfg: Config{Engine: eng, Queue: q, OnDone: done, Policy: AbortAtDispatch}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("New succeeded, want error")
			}
		})
	}
}

func TestSingleTaskLifecycle(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	tk := &task.Task{ID: 1, Exec: 2.5, Deadline: 10, Arrival: 0}
	n.Submit(tk)
	if !n.Busy() {
		t.Fatal("node idle after submit")
	}
	eng.RunAll()
	if len(rec.done) != 1 {
		t.Fatalf("done = %d tasks, want 1", len(rec.done))
	}
	if tk.Start != 0 || math.Abs(tk.Finish-2.5) > 1e-12 {
		t.Errorf("Start,Finish = %v,%v want 0,2.5", tk.Start, tk.Finish)
	}
	if tk.Missed() {
		t.Error("task within deadline reported missed")
	}
	if n.Served() != 1 || n.Busy() {
		t.Errorf("Served=%d Busy=%v", n.Served(), n.Busy())
	}
	if math.Abs(n.BusyTime()-2.5) > 1e-12 {
		t.Errorf("BusyTime = %v, want 2.5", n.BusyTime())
	}
}

func TestNonPreemptiveEDFOrder(t *testing.T) {
	// A long task with a late deadline is started first; an urgent task
	// arriving later must wait (non-preemption), then queued tasks go in
	// EDF order.
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	long := &task.Task{ID: 1, Seq: 1, Exec: 10, Deadline: 100}
	urgent := &task.Task{ID: 2, Seq: 2, Exec: 1, Deadline: 5}
	late := &task.Task{ID: 3, Seq: 3, Exec: 1, Deadline: 50}
	n.Submit(long)
	eng.MustSchedule(1, func() { urgent.Arrival = 1; n.Submit(urgent) })
	eng.MustSchedule(2, func() { late.Arrival = 2; n.Submit(late) })
	eng.RunAll()
	if len(rec.done) != 3 {
		t.Fatalf("done = %d, want 3", len(rec.done))
	}
	wantOrder := []uint64{1, 2, 3}
	for i, tk := range rec.done {
		if tk.ID != wantOrder[i] {
			t.Fatalf("completion %d = task %d, want %d", i, tk.ID, wantOrder[i])
		}
	}
	if urgent.Start != 10 {
		t.Errorf("urgent started at %v, want 10 (after the long task)", urgent.Start)
	}
	if !urgent.Missed() {
		t.Error("urgent task should have missed its deadline")
	}
}

func TestAbortAtDispatch(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, AbortAtDispatch)
	blocker := &task.Task{ID: 1, Seq: 1, Exec: 10, Deadline: 100}
	doomed := &task.Task{ID: 2, Seq: 2, Exec: 1, Deadline: 5} // expires while blocker runs
	alive := &task.Task{ID: 3, Seq: 3, Exec: 1, Deadline: 50}
	n.Submit(blocker)
	eng.MustSchedule(1, func() { n.Submit(doomed) })
	eng.MustSchedule(2, func() { n.Submit(alive) })
	eng.RunAll()
	if len(rec.aborted) != 1 || rec.aborted[0].ID != 2 {
		t.Fatalf("aborted = %v, want task 2 only", rec.aborted)
	}
	if len(rec.done) != 2 {
		t.Fatalf("done = %d, want 2", len(rec.done))
	}
	if n.Aborted() != 1 {
		t.Errorf("Aborted = %d, want 1", n.Aborted())
	}
	// The aborted task consumed no service: alive starts right at 10.
	if alive.Start != 10 {
		t.Errorf("alive.Start = %v, want 10", alive.Start)
	}
}

func TestAbortFirmUsesEndToEndDeadline(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, AbortFirm)
	blocker := &task.Task{ID: 1, Seq: 1, Exec: 10, Deadline: 100, FirmDeadline: 100}
	// Virtual deadline expires while the blocker runs, but the firm
	// (end-to-end) deadline does not: the task must survive.
	survivor := &task.Task{ID: 2, Seq: 2, Exec: 1, Deadline: 5, FirmDeadline: 50}
	// Both deadlines expire: the task must be discarded.
	doomed := &task.Task{ID: 3, Seq: 3, Exec: 1, Deadline: 5, FirmDeadline: 8}
	n.Submit(blocker)
	eng.MustSchedule(1, func() { n.Submit(survivor); n.Submit(doomed) })
	eng.RunAll()

	if len(rec.aborted) != 1 || rec.aborted[0].ID != 3 {
		t.Fatalf("aborted = %v, want only the firm-expired task 3", rec.aborted)
	}
	if len(rec.done) != 2 {
		t.Fatalf("done = %d, want 2 (blocker + survivor)", len(rec.done))
	}
	if !containsID(rec.done, 2) {
		t.Error("virtually-late but firm-feasible task was not executed")
	}
}

func containsID(tasks []*task.Task, id uint64) bool {
	for _, tk := range tasks {
		if tk.ID == id {
			return true
		}
	}
	return false
}

func TestNoAbortRunsTardyTasks(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	blocker := &task.Task{ID: 1, Seq: 1, Exec: 10, Deadline: 100}
	tardy := &task.Task{ID: 2, Seq: 2, Exec: 1, Deadline: 5}
	n.Submit(blocker)
	eng.MustSchedule(1, func() { n.Submit(tardy) })
	eng.RunAll()
	if len(rec.done) != 2 {
		t.Fatalf("done = %d, want 2 (tardy task still runs)", len(rec.done))
	}
	if !tardy.Missed() {
		t.Error("tardy task should be recorded as missed")
	}
}

func TestIdlePeriodBetweenArrivals(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	a := &task.Task{ID: 1, Exec: 1, Deadline: 10}
	b := &task.Task{ID: 2, Exec: 1, Deadline: 20}
	n.Submit(a)
	eng.MustSchedule(5, func() { b.Arrival = 5; n.Submit(b) })
	eng.RunAll()
	if b.Start != 5 {
		t.Errorf("b.Start = %v, want 5 (server idle in between)", b.Start)
	}
	if got := n.BusyTime(); math.Abs(got-2) > 1e-12 {
		t.Errorf("BusyTime = %v, want 2", got)
	}
	if len(rec.done) != 2 {
		t.Errorf("done = %d, want 2", len(rec.done))
	}
}

func TestSubmitSetsNodeID(t *testing.T) {
	eng := sim.New()
	n, _ := newTestNode(t, eng, NoAbort)
	tk := &task.Task{ID: 1, Exec: 1, Deadline: 10, NodeID: -1}
	n.Submit(tk)
	if tk.NodeID != n.ID() {
		t.Errorf("NodeID = %d, want %d", tk.NodeID, n.ID())
	}
}

func newPreemptiveNode(t *testing.T, eng *sim.Engine) (*Node, *recorder) {
	t.Helper()
	rec := &recorder{}
	q, err := sched.New(sched.EDF, false)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		ID: 0, Engine: eng, Queue: q, Preemptive: true,
		OnDone: func(tk *task.Task) { rec.done = append(rec.done, tk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, rec
}

func TestPreemptiveEDF(t *testing.T) {
	eng := sim.New()
	n, rec := newPreemptiveNode(t, eng)
	long := &task.Task{ID: 1, Seq: 1, Exec: 10, Deadline: 100}
	urgent := &task.Task{ID: 2, Seq: 2, Exec: 2, Deadline: 6}
	n.Submit(long)
	eng.MustSchedule(3, func() { urgent.Arrival = 3; n.Submit(urgent) })
	eng.RunAll()

	// urgent preempts at t=3, runs 3..5; long resumes and finishes at
	// 5 + remaining 7 = 12.
	if len(rec.done) != 2 {
		t.Fatalf("done = %d, want 2", len(rec.done))
	}
	if rec.done[0] != urgent || rec.done[1] != long {
		t.Fatalf("completion order = [%d %d], want urgent first", rec.done[0].ID, rec.done[1].ID)
	}
	if urgent.Finish != 5 {
		t.Errorf("urgent.Finish = %v, want 5 (preemptive service)", urgent.Finish)
	}
	if urgent.Missed() {
		t.Error("urgent missed despite preemption")
	}
	if long.Finish != 12 {
		t.Errorf("long.Finish = %v, want 12 (resumed with remaining demand)", long.Finish)
	}
	if long.Start != 0 {
		t.Errorf("long.Start = %v, want first dispatch time 0", long.Start)
	}
	if n.Preemptions() != 1 {
		t.Errorf("Preemptions = %d, want 1", n.Preemptions())
	}
	if got := n.BusyTime(); math.Abs(got-12) > 1e-12 {
		t.Errorf("BusyTime = %v, want 12 (no service lost or duplicated)", got)
	}
}

func TestPreemptionSkippedForLaterDeadline(t *testing.T) {
	eng := sim.New()
	n, rec := newPreemptiveNode(t, eng)
	first := &task.Task{ID: 1, Seq: 1, Exec: 4, Deadline: 10}
	later := &task.Task{ID: 2, Seq: 2, Exec: 1, Deadline: 50}
	n.Submit(first)
	eng.MustSchedule(1, func() { n.Submit(later) })
	eng.RunAll()
	if n.Preemptions() != 0 {
		t.Errorf("Preemptions = %d, want 0 (later deadline must not preempt)", n.Preemptions())
	}
	if rec.done[0] != first {
		t.Error("first task should finish first")
	}
}

func TestPreemptionChain(t *testing.T) {
	// Successively more urgent arrivals nest preemptions.
	eng := sim.New()
	n, _ := newPreemptiveNode(t, eng)
	a := &task.Task{ID: 1, Seq: 1, Exec: 9, Deadline: 100}
	b := &task.Task{ID: 2, Seq: 2, Exec: 5, Deadline: 50}
	c := &task.Task{ID: 3, Seq: 3, Exec: 1, Deadline: 10}
	n.Submit(a)
	eng.MustSchedule(1, func() { n.Submit(b) })
	eng.MustSchedule(2, func() { n.Submit(c) })
	eng.RunAll()
	// c: 2..3. b: 1..2 then 3..7. a: 0..1 then 7..15.
	if c.Finish != 3 || b.Finish != 7 || a.Finish != 15 {
		t.Errorf("finish times = %v/%v/%v, want 3/7/15", c.Finish, b.Finish, a.Finish)
	}
	if n.Preemptions() != 2 {
		t.Errorf("Preemptions = %d, want 2", n.Preemptions())
	}
}

func TestTardyPolicyString(t *testing.T) {
	if NoAbort.String() != "no-abort" || AbortAtDispatch.String() != "abort" {
		t.Error("policy names changed")
	}
	if TardyPolicy(9).String() != "TardyPolicy(9)" {
		t.Error("unknown policy formatting changed")
	}
}
