package node

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

func groupQueues(t *testing.T, k int) []sched.Queue {
	t.Helper()
	queues := make([]sched.Queue, k)
	for i := range queues {
		q, err := sched.New(sched.EDF, false)
		if err != nil {
			t.Fatal(err)
		}
		queues[i] = q
	}
	return queues
}

// TestGroupRoutesCompletions drives tasks through several nodes of one
// group and checks that the shared completion callback routes each
// completion to the right node.
func TestGroupRoutesCompletions(t *testing.T) {
	eng := sim.New()
	var doneNodes []int
	g, err := NewGroup(GroupConfig{
		Engine: eng,
		Queues: groupQueues(t, 4),
		OnDone: func(tk *task.Task) { doneNodes = append(doneNodes, tk.NodeID) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	// Submit one task per node with staggered demands so completions
	// interleave across nodes.
	for i := 0; i < 4; i++ {
		tk := &task.Task{
			ID: uint64(i + 1), Class: task.Local, Stage: -1,
			Exec: float64(4 - i), Pex: float64(4 - i),
			Deadline: 100, FirmDeadline: 100, Seq: uint64(i + 1),
		}
		g.Node(i).Submit(tk)
	}
	eng.RunAll()
	if len(doneNodes) != 4 {
		t.Fatalf("completed %d tasks, want 4", len(doneNodes))
	}
	want := []int{3, 2, 1, 0} // shortest demand finishes first
	for i, n := range doneNodes {
		if n != want[i] {
			t.Fatalf("completion order by node = %v, want %v", doneNodes, want)
		}
	}
	for i := 0; i < 4; i++ {
		if g.Node(i).Served() != 1 {
			t.Fatalf("node %d served %d, want 1", i, g.Node(i).Served())
		}
	}
}

// TestGroupConfigureReuses checks that reconfiguring keeps the backing
// array (same node pointers) and fully resets node state.
func TestGroupConfigureReuses(t *testing.T) {
	eng := sim.New()
	queues := groupQueues(t, 3)
	g, err := NewGroup(GroupConfig{
		Engine: eng,
		Queues: queues,
		OnDone: func(*task.Task) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := g.Node(0)
	tk := &task.Task{ID: 1, Class: task.Local, Stage: -1, Exec: 1, Pex: 1,
		Deadline: 10, FirmDeadline: 10, Seq: 1}
	g.Node(0).Submit(tk)
	eng.RunAll()
	if g.Node(0).Served() != 1 {
		t.Fatalf("served %d before reconfigure, want 1", g.Node(0).Served())
	}

	eng.Reset()
	for _, q := range queues {
		q.(sched.Resetter).Reset()
	}
	if err := g.Configure(GroupConfig{
		Engine: eng,
		Queues: queues,
		OnDone: func(*task.Task) {},
	}); err != nil {
		t.Fatal(err)
	}
	if g.Node(0) != first {
		t.Fatal("Configure with an unchanged node count reallocated the backing array")
	}
	if g.Node(0).Served() != 0 || g.Node(0).Busy() || g.Node(0).Speed() != 1 {
		t.Fatalf("node state not reset: served=%d busy=%t speed=%v",
			g.Node(0).Served(), g.Node(0).Busy(), g.Node(0).Speed())
	}
}

// TestGroupConfigValidation covers the constructor error paths.
func TestGroupConfigValidation(t *testing.T) {
	eng := sim.New()
	queues := groupQueues(t, 1)
	cases := []struct {
		name string
		cfg  GroupConfig
	}{
		{"nil engine", GroupConfig{Queues: queues, OnDone: func(*task.Task) {}}},
		{"no queues", GroupConfig{Engine: eng, OnDone: func(*task.Task) {}}},
		{"nil OnDone", GroupConfig{Engine: eng, Queues: queues}},
		{"nil queue", GroupConfig{Engine: eng, Queues: []sched.Queue{nil}, OnDone: func(*task.Task) {}}},
		{"abort without OnAbort", GroupConfig{Engine: eng, Queues: queues,
			Policy: AbortAtDispatch, OnDone: func(*task.Task) {}}},
	}
	for _, tc := range cases {
		if _, err := NewGroup(tc.cfg); err == nil {
			t.Errorf("%s: NewGroup accepted an invalid config", tc.name)
		}
	}
}

// TestGroupLifecycleZeroAlloc64 extends the PR-3 lifecycle-allocation
// guard to a 64-node group: once queues and the engine are warm, a full
// pooled task lifecycle spread across all nodes allocates (almost)
// nothing per task.
func TestGroupLifecycleZeroAlloc64(t *testing.T) {
	eng := sim.New()
	pool := &task.Pool{}
	const k = 64
	g, err := NewGroup(GroupConfig{
		Engine: eng,
		Queues: groupQueues(t, k),
		OnDone: func(done *task.Task) { pool.Put(done) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var seq uint64
	lifecycle := func(count int) {
		for i := 0; i < count; i++ {
			seq++
			tk := pool.Get()
			tk.ID = seq
			tk.Class = task.Local
			tk.Stage = -1
			tk.Arrival = eng.Now()
			tk.Exec = 0.5
			tk.Pex = 0.5
			tk.Deadline = eng.Now() + 2
			tk.FirmDeadline = tk.Deadline
			tk.Seq = seq
			g.Node(int(seq) % k).Submit(tk)
		}
		eng.RunAll()
	}

	lifecycle(4 * k) // warm queues, event queue, and pool capacity

	const perRun = 128
	allocs := testing.AllocsPerRun(100, func() { lifecycle(perRun) })
	perLifecycle := allocs / perRun
	if perLifecycle > 1 {
		t.Fatalf("64-node task lifecycle allocated %.2f times per task, want <= 1 (0 expected)", perLifecycle)
	}
}
