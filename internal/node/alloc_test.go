package node

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// TestTaskLifecycleZeroAlloc pins the node half of the PR's allocation
// invariant: once the ready queue and engine have warmed to their working
// capacity, a full pooled task lifecycle — Get, Submit, dispatch,
// completion event, OnDone, Put — performs at most a small constant
// number of heap allocations (zero in practice; the bound leaves room
// for incidental runtime costs on other platforms).
func TestTaskLifecycleZeroAlloc(t *testing.T) {
	eng := sim.New()
	pool := &task.Pool{}
	q, err := sched.New(sched.EDF, false)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		ID:     0,
		Engine: eng,
		Queue:  q,
		OnDone: func(done *task.Task) { pool.Put(done) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var seq uint64
	lifecycle := func(count int) {
		for i := 0; i < count; i++ {
			seq++
			tk := pool.Get()
			tk.ID = seq
			tk.Class = task.Local
			tk.Stage = -1
			tk.Arrival = eng.Now()
			tk.Exec = 0.5
			tk.Pex = 0.5
			tk.Deadline = eng.Now() + 2
			tk.FirmDeadline = tk.Deadline
			tk.Seq = seq
			n.Submit(tk)
		}
		eng.RunAll()
	}

	lifecycle(64) // warm queue, heap, and pool capacity

	const perRun = 16
	allocs := testing.AllocsPerRun(200, func() { lifecycle(perRun) })
	perLifecycle := allocs / perRun
	if perLifecycle > 1 {
		t.Fatalf("task lifecycle allocated %.2f times per task, want <= 1 (0 expected)", perLifecycle)
	}
}
