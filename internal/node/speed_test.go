package node

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
)

func speedTask(id uint64, exec float64) *task.Task {
	return &task.Task{ID: id, Seq: id, Exec: exec, Deadline: 1e9, FirmDeadline: 1e9}
}

func TestSlowdownStretchesService(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	n.Submit(speedTask(1, 10))
	// Halve the speed halfway through: 5 units of work done by t=5, the
	// remaining 5 take 10 more time units.
	eng.MustSchedule(5, func() { n.SetSpeed(0.5) })
	eng.RunAll()
	if len(rec.done) != 1 {
		t.Fatalf("done = %d tasks, want 1", len(rec.done))
	}
	if got := rec.done[0].Finish; math.Abs(got-15) > 1e-9 {
		t.Errorf("finish = %v, want 15", got)
	}
	if got := n.BusyTime(); math.Abs(got-15) > 1e-9 {
		t.Errorf("busy time = %v, want 15 (wall-clock while serving)", got)
	}
}

func TestFreezeSuspendsAndResumeCompletes(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	n.Submit(speedTask(1, 10))
	n.Submit(speedTask(2, 1)) // queued behind task 1
	eng.MustSchedule(4, func() { n.SetSpeed(0) })
	eng.MustSchedule(9, func() { n.SetSpeed(1) })
	eng.RunAll()
	if len(rec.done) != 2 {
		t.Fatalf("done = %d tasks, want 2", len(rec.done))
	}
	// Task 1: 4 units done before the freeze, 6 remaining after the
	// 5-unit outage: finish at 4 + 5 + 6 = 15. Task 2 follows.
	if got := rec.done[0].Finish; math.Abs(got-15) > 1e-9 {
		t.Errorf("task 1 finish = %v, want 15", got)
	}
	if got := rec.done[1].Finish; math.Abs(got-16) > 1e-9 {
		t.Errorf("task 2 finish = %v, want 16", got)
	}
	// The 5 frozen units are not busy time: 10 + 1 units of service.
	if got := n.BusyTime(); math.Abs(got-11) > 1e-9 {
		t.Errorf("busy time = %v, want 11 (outage excluded)", got)
	}
}

func TestFreezeHoldsQueueOnIdleNode(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	n.SetSpeed(0)
	n.Submit(speedTask(1, 2))
	eng.RunAll()
	if len(rec.done) != 0 {
		t.Fatal("frozen node served a task")
	}
	if n.QueueLen() != 1 {
		t.Fatalf("queue length = %d, want 1", n.QueueLen())
	}
	n.SetSpeed(1)
	eng.RunAll()
	if len(rec.done) != 1 {
		t.Fatal("thawed node did not pick up the queued task")
	}
	if got := rec.done[0].Finish; math.Abs(got-2) > 1e-9 {
		t.Errorf("finish = %v, want 2", got)
	}
}

func TestRedundantSetSpeedIsNoOp(t *testing.T) {
	eng := sim.New()
	n, rec := newTestNode(t, eng, NoAbort)
	n.Submit(speedTask(1, 10))
	eng.MustSchedule(3, func() { n.SetSpeed(1) }) // same speed: no resettle
	eng.RunAll()
	if len(rec.done) != 1 || rec.done[0].Finish != 10 {
		t.Fatalf("done = %+v, want one task finishing at 10", rec.done)
	}
	if got := n.Speed(); got != 1 {
		t.Errorf("speed = %v, want 1", got)
	}
}

func TestSetSpeedPanicsOnBadValues(t *testing.T) {
	eng := sim.New()
	n, _ := newTestNode(t, eng, NoAbort)
	for _, s := range []float64{-0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetSpeed(%v) did not panic", s)
				}
			}()
			n.SetSpeed(s)
		}()
	}
}
