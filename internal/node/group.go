package node

import (
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// nodeHot is the complete per-node record: the task in service (nil =
// idle server), its pending completion handle, the service speed, the
// start of the current service segment, and the lifecycle counters. It
// is exactly 64 bytes — one cache line per node — so every submit,
// dispatch and complete at a random node touches a single line of this
// array plus the node's ready-queue head, where the former
// struct-of-everything node record spread the same state over three
// lines. The counters are written on the same transitions that write
// the server state, so folding them into the record costs the hot path
// nothing; they ride the line the transition already owns.
//
// The counters are 32-bit: a node would need 2^32 task lifecycles in
// one replication to wrap, which at paper-scale arrival rates is a
// horizon beyond 10^9 time units — two orders of magnitude past any
// experiment in the suite (the engine's own sequence space bounds a
// run at ~4.4e12 events total). The accessors widen to int64.
//
// The former explicit busy flag is gone: the server is busy exactly
// when running is non-nil. Every state transition set or cleared both
// together (including the speed-0 freeze, which keeps the suspended
// task in running), so the equivalence is an invariant, not a new
// behaviour.
type nodeHot struct {
	running      *task.Task
	completion   sim.Event
	speed        float64 // service speed factor: 1 nominal, 0 frozen
	segmentStart float64
	busyTime     float64 // accumulated service time, for utilization
	served       uint32
	aborted      uint32
	preemptions  uint32
	submitted    uint32
	readyHWM     int32 // deepest the ready queue got (waiting tasks)
	_            int32 // pad to one cache line
}

// Group owns every node of one simulated system in structure-of-arrays
// layout: the hot server state, the cold counters, and the ready queues
// live in parallel slices indexed by node, and all shared configuration
// (engine, policy, callbacks) is stored once on the group instead of
// k times. All k nodes share one registered completion callback (the
// completing task's NodeID routes it), so setting up a large topology
// costs one closure instead of k.
//
// Ready queues come in two forms: a sched.Bank (the contiguous
// arena-backed fast path) or a []sched.Queue of independent queue
// objects (the legacy seam, still used by external Queue
// implementations and the single-node New constructor). Scheduling
// order is identical; the bank is a memory-layout optimization.
//
// A Group is single-threaded, like the engine that drives it. It is
// reusable: Configure re-points the same backing arrays at a fresh
// run's engine and callbacks, so a reused Workspace re-creates no
// per-node objects.
type Group struct {
	eng        *sim.Engine
	bank       *sched.Bank
	queues     []sched.Queue
	policy     TardyPolicy
	preemptive bool
	observer   Observer
	onDone     func(*task.Task)
	onAbort    func(*task.Task)
	completeCB sim.Callback
	idBase     int

	hot     []nodeHot
	handles []Node  // stable per-group handle values
	ptrs    []*Node // stable per-Configure view for slice-shaped consumers
}

// GroupConfig carries the construction parameters shared by every node
// of the group; the ready queues carry the only per-node state.
type GroupConfig struct {
	// Engine drives all nodes.
	Engine *sim.Engine
	// Queues holds one ready queue per node; its length is the node
	// count. Exactly one of Queues and Bank must be set.
	Queues []sched.Queue
	// Bank is the contiguous ready-queue bank; its configured node
	// count is the group's node count. Exactly one of Queues and Bank
	// must be set.
	Bank *sched.Bank
	// Policy is the tardy-task policy; zero value defaults to NoAbort.
	Policy TardyPolicy
	// Preemptive enables deadline-based preemption at every node.
	Preemptive bool
	// OnDone is called when a task completes service; required.
	OnDone func(*task.Task)
	// OnAbort is called when an abort policy discards a task; required
	// with an abort policy.
	OnAbort func(*task.Task)
	// Observer optionally receives every lifecycle event (for tracing).
	Observer Observer
	// IDBase offsets the node ids: node i reports (and stamps tasks
	// with) id IDBase+i. Zero for whole-system groups; the single-node
	// New constructor uses it to preserve its configured ID.
	IDBase int
}

// NewGroup returns a configured group.
func NewGroup(cfg GroupConfig) (*Group, error) {
	g := &Group{}
	if err := g.Configure(cfg); err != nil {
		return nil, err
	}
	return g, nil
}

// Configure (re)initializes the group for a new run, reusing the
// backing arrays when the node count is unchanged. It must be called
// after the engine is reset, because it registers the group's
// completion callback on it.
func (g *Group) Configure(cfg GroupConfig) error {
	if cfg.Engine == nil {
		return fmt.Errorf("node group: nil engine")
	}
	if (len(cfg.Queues) == 0) == (cfg.Bank == nil) {
		if cfg.Bank != nil {
			return fmt.Errorf("node group: both Queues and Bank set")
		}
		return fmt.Errorf("node group: no queues")
	}
	if cfg.OnDone == nil {
		return fmt.Errorf("node group: nil OnDone")
	}
	if cfg.Policy == 0 {
		cfg.Policy = NoAbort
	}
	if (cfg.Policy == AbortAtDispatch || cfg.Policy == AbortFirm) && cfg.OnAbort == nil {
		return fmt.Errorf("node group: abort policy requires OnAbort")
	}
	k := len(cfg.Queues)
	if cfg.Bank != nil {
		k = cfg.Bank.Nodes()
		if k == 0 {
			return fmt.Errorf("node group: unconfigured bank")
		}
	}
	for i, q := range cfg.Queues {
		if q == nil {
			return fmt.Errorf("node %d: nil queue", i)
		}
	}
	g.eng = cfg.Engine
	g.bank, g.queues = cfg.Bank, cfg.Queues
	g.policy, g.preemptive = cfg.Policy, cfg.Preemptive
	g.observer = cfg.Observer
	g.onDone, g.onAbort = cfg.OnDone, cfg.OnAbort
	g.idBase = cfg.IDBase
	if cap(g.hot) >= k {
		g.hot = g.hot[:k]
		g.handles = g.handles[:k]
		g.ptrs = g.ptrs[:k]
	} else {
		g.hot = make([]nodeHot, k)
		g.handles = make([]Node, k)
		g.ptrs = make([]*Node, k)
	}
	// One registration serves every node: the payload task's NodeID
	// (set at Submit) routes the completion.
	g.completeCB = cfg.Engine.Register(func(p any) {
		t := p.(*task.Task)
		g.complete(t.NodeID-g.idBase, t)
	})
	for i := range g.hot {
		g.hot[i] = nodeHot{speed: 1}
		g.handles[i] = Node{g: g, idx: int32(i)}
		g.ptrs[i] = &g.handles[i]
	}
	return nil
}

// Len returns the node count.
func (g *Group) Len() int { return len(g.hot) }

// Node returns the i'th node. The pointer stays valid until the next
// Configure.
func (g *Group) Node(i int) *Node { return &g.handles[i] }

// Nodes returns the group as a []*Node view for consumers that walk or
// index nodes by id (the process manager, scenario fault scheduling).
// The slice and its pointers stay valid until the next Configure.
func (g *Group) Nodes() []*Node { return g.ptrs }

// qPush, qPop and qLen dispatch between the bank and the legacy queue
// slice with one predictable branch.

func (g *Group) qPush(i int, t *task.Task) {
	if g.bank != nil {
		g.bank.Push(i, t)
		return
	}
	g.queues[i].Push(t)
}

func (g *Group) qPop(i int, now float64) *task.Task {
	if g.bank != nil {
		return g.bank.Pop(i, now)
	}
	return g.queues[i].Pop(now)
}

func (g *Group) qLen(i int) int {
	if g.bank != nil {
		return g.bank.Len(i)
	}
	return g.queues[i].Len()
}

// observe reports a lifecycle event if an observer is attached.
func (g *Group) observe(ev ObserverEvent, t *task.Task) {
	if g.observer != nil {
		g.observer(ev, g.eng.Now(), t)
	}
}

// Submit enqueues a task at node i at the current simulation time and
// starts the server if it is idle. The task's Arrival must already be
// set by the caller (generator or process manager). On a preemptive
// node a newcomer with an earlier deadline suspends the task in
// service.
func (g *Group) Submit(i int, t *task.Task) {
	t.NodeID = g.idBase + i
	h := &g.hot[i]
	h.submitted++
	g.observe(ObserveSubmit, t)
	g.qPush(i, t)
	if g.preemptive {
		if running := h.running; running != nil && t.Deadline < running.Deadline {
			g.preempt(i) // pushes the suspended task back, deepening the queue
		}
	}
	if l := int32(g.qLen(i)); l > h.readyHWM {
		h.readyHWM = l
	}
	g.dispatch(i)
}

// preempt suspends node i's running task and re-queues it with its
// remaining demand.
func (g *Group) preempt(i int) {
	h := &g.hot[i]
	now := g.eng.Now()
	g.eng.Cancel(h.completion)
	cur := h.running
	cur.Remaining -= (now - h.segmentStart) * h.speed
	if h.speed > 0 {
		h.busyTime += now - h.segmentStart
	}
	h.preemptions++
	h.running = nil
	g.observe(ObservePreempt, cur)
	g.qPush(i, cur)
}

// dispatch starts node i's next task if the server is idle. The paper's
// model is non-preemptive ("no preemption", section 4.1): once started,
// a task runs to completion unless the node is explicitly preemptive.
func (g *Group) dispatch(i int) {
	h := &g.hot[i]
	if h.running != nil || h.speed == 0 {
		return
	}
	for {
		now := g.eng.Now()
		t := g.qPop(i, now)
		if t == nil {
			return
		}
		if g.shouldAbort(t, now) {
			h.aborted++
			t.Finish = now
			g.observe(ObserveAbort, t)
			g.onAbort(t)
			continue
		}
		if t.Remaining == 0 {
			// First dispatch.
			t.Remaining = t.Exec
			t.Start = now
		}
		h.running = t
		h.segmentStart = now
		g.observe(ObserveDispatch, t)
		h.completion = g.eng.MustScheduleCall(t.Remaining/h.speed, g.completeCB, t)
		return
	}
}

// shouldAbort applies the tardy policy at dispatch time.
func (g *Group) shouldAbort(t *task.Task, now float64) bool {
	switch g.policy {
	case AbortAtDispatch:
		return now > t.Deadline
	case AbortFirm:
		return now > t.FirmDeadline
	default:
		return false
	}
}

// complete finishes node i's task in service and redispatches.
func (g *Group) complete(i int, t *task.Task) {
	h := &g.hot[i]
	now := g.eng.Now()
	t.Finish = now
	t.Remaining = 0
	h.running = nil
	h.busyTime += now - h.segmentStart
	h.served++
	g.observe(ObserveComplete, t)
	g.onDone(t)
	g.dispatch(i)
}

// SetSpeed changes node i's service speed factor; see Node.SetSpeed.
func (g *Group) SetSpeed(i int, speed float64) {
	if speed < 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("node %d: SetSpeed(%v)", g.idBase+i, speed))
	}
	h := &g.hot[i]
	if speed == h.speed {
		return
	}
	now := g.eng.Now()
	if h.running != nil {
		if h.speed > 0 {
			// Settle the progress of the current service segment.
			elapsed := now - h.segmentStart
			h.busyTime += elapsed
			h.running.Remaining -= elapsed * h.speed
			if h.running.Remaining < 0 {
				h.running.Remaining = 0
			}
			g.eng.Cancel(h.completion)
			h.completion = sim.Event{}
		}
		h.segmentStart = now
		if speed > 0 {
			h.completion = g.eng.MustScheduleCall(h.running.Remaining/speed, g.completeCB, h.running)
		}
	}
	h.speed = speed
	// A thawed idle server picks up whatever queued during the freeze.
	g.dispatch(i)
}
