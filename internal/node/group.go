package node

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/task"
)

// Group owns every node of one simulated system, stored by value in a
// single contiguous slice indexed by node id. The dispatch loop's
// per-node hot state (server busy/running, completion handle, speed,
// counters) therefore lives in one cache-friendly array instead of k
// separately allocated objects, and all k nodes share one registered
// completion callback (the completing task's NodeID routes it), so
// setting up a large topology costs one closure instead of k.
//
// A Group is single-threaded, like the engine that drives it. It is
// reusable: Configure re-points the same backing array at a fresh run's
// engine and callbacks, so a reused Workspace re-creates no per-node
// objects.
type Group struct {
	nodes []Node
	ptrs  []*Node // stable per-Configure view for slice-shaped consumers
}

// GroupConfig carries the construction parameters shared by every node
// of the group; per-node ready queues carry the only per-node state.
type GroupConfig struct {
	// Engine drives all nodes.
	Engine *sim.Engine
	// Queues holds one ready queue per node; its length is the node
	// count.
	Queues []sched.Queue
	// Policy is the tardy-task policy; zero value defaults to NoAbort.
	Policy TardyPolicy
	// Preemptive enables deadline-based preemption at every node.
	Preemptive bool
	// OnDone is called when a task completes service; required.
	OnDone func(*task.Task)
	// OnAbort is called when an abort policy discards a task; required
	// with an abort policy.
	OnAbort func(*task.Task)
	// Observer optionally receives every lifecycle event (for tracing).
	Observer Observer
}

// NewGroup returns a configured group of len(cfg.Queues) nodes.
func NewGroup(cfg GroupConfig) (*Group, error) {
	g := &Group{}
	if err := g.Configure(cfg); err != nil {
		return nil, err
	}
	return g, nil
}

// Configure (re)initializes the group for a new run, reusing the node
// backing array when the node count is unchanged. It must be called
// after the engine is reset, because it registers the group's completion
// callback on it.
func (g *Group) Configure(cfg GroupConfig) error {
	if cfg.Engine == nil {
		return fmt.Errorf("node group: nil engine")
	}
	if len(cfg.Queues) == 0 {
		return fmt.Errorf("node group: no queues")
	}
	if cfg.OnDone == nil {
		return fmt.Errorf("node group: nil OnDone")
	}
	if cfg.Policy == 0 {
		cfg.Policy = NoAbort
	}
	if (cfg.Policy == AbortAtDispatch || cfg.Policy == AbortFirm) && cfg.OnAbort == nil {
		return fmt.Errorf("node group: abort policy requires OnAbort")
	}
	k := len(cfg.Queues)
	for i, q := range cfg.Queues {
		if q == nil {
			return fmt.Errorf("node %d: nil queue", i)
		}
	}
	if cap(g.nodes) >= k {
		g.nodes = g.nodes[:k]
	} else {
		g.nodes = make([]Node, k)
		g.ptrs = make([]*Node, k)
	}
	g.ptrs = g.ptrs[:k]
	// One registration serves every node: the payload task's NodeID
	// (set at Submit) routes the completion.
	completeCB := cfg.Engine.Register(func(p any) {
		t := p.(*task.Task)
		g.nodes[t.NodeID].complete(t)
	})
	for i := range g.nodes {
		g.nodes[i] = Node{
			id:         i,
			eng:        cfg.Engine,
			queue:      cfg.Queues[i],
			policy:     cfg.Policy,
			preemptive: cfg.Preemptive,
			observer:   cfg.Observer,
			onDone:     cfg.OnDone,
			onAbort:    cfg.OnAbort,
			completeCB: completeCB,
			speed:      1,
		}
		g.ptrs[i] = &g.nodes[i]
	}
	return nil
}

// Len returns the node count.
func (g *Group) Len() int { return len(g.nodes) }

// Node returns the i'th node. The pointer stays valid until the next
// Configure.
func (g *Group) Node(i int) *Node { return &g.nodes[i] }

// Nodes returns the group as a []*Node view for consumers that walk or
// index nodes by id (the process manager, scenario fault scheduling).
// The slice and its pointers stay valid until the next Configure.
func (g *Group) Nodes() []*Node { return g.ptrs }
