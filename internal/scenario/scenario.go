package scenario

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Scenario is a compiled, immutable Spec ready to drive a run. It
// implements workload.RateModulator, so the system package can hand it
// straight to the task generators, and exposes the fault events and
// metrics interval for the simulation loop. A single Scenario value is
// read-only after New and safe to share across parallel replications.
type Scenario struct {
	spec   Spec
	starts []float64 // cumulative phase start times
	end    float64   // end of the closed timeline (last phase may be open)
	open   bool      // final phase has Duration 0
	max    float64   // max rate factor over the whole run
	demand workload.Demand
}

// New compiles a validated spec. It re-validates, so callers that build
// specs programmatically need no separate Validate call.
func New(spec Spec) (*Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Scenario{spec: spec, max: 1}
	t := 0.0
	for i, ph := range spec.Phases {
		s.starts = append(s.starts, t)
		t += ph.Duration
		if ph.Duration == 0 && i == len(spec.Phases)-1 {
			s.open = true
		}
		if ph.Rate > s.max {
			s.max = ph.Rate
		}
		if ph.EndRate > s.max {
			s.max = ph.EndRate
		}
	}
	s.end = t
	if spec.Demand != nil {
		d, err := spec.Demand.demand()
		if err != nil {
			return nil, err
		}
		s.demand = d
	}
	return s, nil
}

// MustNew is New for statically known specs; it panics on error.
func MustNew(spec Spec) *Scenario {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the spec's name.
func (s *Scenario) Name() string { return s.spec.Name }

// Spec returns a copy of the compiled spec.
func (s *Scenario) Spec() Spec { return s.spec }

// Events returns the fault events (not a copy; callers must not mutate).
func (s *Scenario) Events() []EventSpec { return s.spec.Events }

// Demand returns the configured execution-time distribution, or nil for
// the exponential default.
func (s *Scenario) Demand() workload.Demand { return s.demand }

// Interval returns the metrics-window width for a run of the given
// horizon, applying the Horizon/50 default and capping at the horizon.
func (s *Scenario) Interval(horizon float64) float64 {
	iv := s.spec.Interval
	if iv == 0 {
		iv = horizon / 50
	}
	if iv > horizon {
		iv = horizon
	}
	return iv
}

// MaxWindows bounds a run's time-series length. A spec's Interval is
// validated only for sign — the window count also depends on the
// horizon, so the pairing is checked here (via CheckHorizon) before a
// run allocates the series.
const MaxWindows = 200000

// CheckHorizon verifies the interval/horizon pairing yields a sane
// window count; the spec itself cannot know the horizon. Without this
// bound a tiny positive interval would turn into a huge (or, past
// float-to-int overflow, panicking) series allocation.
func (s *Scenario) CheckHorizon(horizon float64) error {
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return fmt.Errorf("scenario: horizon = %v, want positive and finite", horizon)
	}
	if n := horizon / s.Interval(horizon); n > MaxWindows {
		return fmt.Errorf("scenario: interval %v over horizon %v means %.3g windows, max %d — raise the interval",
			s.spec.Interval, horizon, n, MaxWindows)
	}
	return nil
}

// CheckNodes verifies every event targets a node index below k; the spec
// itself cannot know the system size.
func (s *Scenario) CheckNodes(k int) error {
	for i, ev := range s.spec.Events {
		if ev.Node >= k {
			return fmt.Errorf("scenario: event %d targets node %d of a %d-node system", i, ev.Node, k)
		}
	}
	return nil
}

// FactorAt implements workload.RateModulator: the piecewise-linear rate
// multiplier of the phase timeline. Past the closed end of the timeline
// the workload returns to nominal (factor 1).
func (s *Scenario) FactorAt(t float64) float64 {
	if t < 0 {
		return 1
	}
	for i := len(s.starts) - 1; i >= 0; i-- {
		if t < s.starts[i] {
			continue
		}
		ph := s.spec.Phases[i]
		if ph.Duration == 0 { // open-ended tail
			return ph.Rate
		}
		if t >= s.starts[i]+ph.Duration {
			break // t is past the closed timeline
		}
		if ph.EndRate > 0 {
			frac := (t - s.starts[i]) / ph.Duration
			return ph.Rate + (ph.EndRate-ph.Rate)*frac
		}
		return ph.Rate
	}
	return 1
}

// MaxFactor implements workload.RateModulator with the precomputed bound
// (at least 1, since the timeline returns to nominal).
func (s *Scenario) MaxFactor() float64 { return s.max }

// PhaseEnd returns the end of the closed timeline and whether the final
// phase is open-ended. Useful for labelling time-series output.
func (s *Scenario) PhaseEnd() (end float64, open bool) { return s.end, s.open }
