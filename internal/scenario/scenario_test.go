package scenario

import (
	"math"
	"strings"
	"testing"
)

func burstSpec() Spec {
	return Spec{
		Name: "burst",
		Phases: []PhaseSpec{
			{Duration: 100, Rate: 1},
			{Duration: 20, Rate: 3},
			{Duration: 0, Rate: 1},
		},
	}
}

func TestFactorAtStepPhases(t *testing.T) {
	s := MustNew(burstSpec())
	tests := []struct {
		at   float64
		want float64
	}{
		{at: 0, want: 1},
		{at: 99.9, want: 1},
		{at: 100, want: 3},
		{at: 119.9, want: 3},
		{at: 120, want: 1}, // open-ended tail
		{at: 1e9, want: 1},
		{at: -5, want: 1},
	}
	for _, tt := range tests {
		if got := s.FactorAt(tt.at); got != tt.want {
			t.Errorf("FactorAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if got := s.MaxFactor(); got != 3 {
		t.Errorf("MaxFactor = %v, want 3", got)
	}
}

func TestFactorAtRampInterpolates(t *testing.T) {
	s := MustNew(Spec{Phases: []PhaseSpec{
		{Duration: 100, Rate: 1, EndRate: 3},
	}})
	tests := []struct {
		at   float64
		want float64
	}{
		{at: 0, want: 1},
		{at: 50, want: 2},
		{at: 75, want: 2.5},
		{at: 100, want: 1}, // past the closed timeline: nominal
	}
	for _, tt := range tests {
		if got := s.FactorAt(tt.at); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FactorAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if got := s.MaxFactor(); got != 3 {
		t.Errorf("MaxFactor = %v, want 3 (ramp end)", got)
	}
}

func TestEmptySpecIsNominal(t *testing.T) {
	s := MustNew(Spec{})
	if got := s.FactorAt(12.5); got != 1 {
		t.Errorf("FactorAt = %v, want 1", got)
	}
	if got := s.MaxFactor(); got != 1 {
		t.Errorf("MaxFactor = %v, want 1", got)
	}
}

func TestIntervalDefaultsAndCaps(t *testing.T) {
	s := MustNew(Spec{})
	if got := s.Interval(50000); got != 1000 {
		t.Errorf("default interval = %v, want Horizon/50 = 1000", got)
	}
	s = MustNew(Spec{Interval: 700})
	if got := s.Interval(50000); got != 700 {
		t.Errorf("explicit interval = %v, want 700", got)
	}
	if got := s.Interval(500); got != 500 {
		t.Errorf("interval beyond horizon = %v, want capped at 500", got)
	}
}

// TestCheckHorizonBoundsWindowCount pins the interval/horizon pairing
// check: a tiny positive interval must be a validation error, not a
// giant (or, past float-to-int overflow, panicking) series allocation.
func TestCheckHorizonBoundsWindowCount(t *testing.T) {
	ok := MustNew(Spec{Interval: 1000})
	if err := ok.CheckHorizon(50000); err != nil {
		t.Errorf("CheckHorizon(50000) = %v, want nil", err)
	}
	for _, iv := range []float64{1e-300, 0.001} {
		s := MustNew(Spec{Interval: iv})
		if err := s.CheckHorizon(50000); err == nil {
			t.Errorf("interval %v over horizon 50000 accepted (%v windows)", iv, 50000/iv)
		}
	}
	if err := ok.CheckHorizon(0); err == nil {
		t.Error("zero horizon accepted")
	}
	// The default interval (Horizon/50) is always fine.
	if err := MustNew(Spec{}).CheckHorizon(1e12); err != nil {
		t.Errorf("default interval rejected: %v", err)
	}
}

func TestCheckNodes(t *testing.T) {
	s := MustNew(Spec{Events: []EventSpec{
		{Kind: KindOutage, Node: 5, At: 10, Duration: 5},
	}})
	if err := s.CheckNodes(6); err != nil {
		t.Errorf("CheckNodes(6) = %v, want nil", err)
	}
	if err := s.CheckNodes(5); err == nil {
		t.Error("CheckNodes(5) accepted an event on node 5")
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "negative duration",
			spec: Spec{Phases: []PhaseSpec{{Duration: -1, Rate: 1}}},
			want: "duration",
		},
		{
			name: "zero duration mid-timeline",
			spec: Spec{Phases: []PhaseSpec{{Duration: 0, Rate: 1}, {Duration: 5, Rate: 1}}},
			want: "final",
		},
		{
			name: "zero rate",
			spec: Spec{Phases: []PhaseSpec{{Duration: 1, Rate: 0}}},
			want: "rate",
		},
		{
			name: "NaN rate",
			spec: Spec{Phases: []PhaseSpec{{Duration: 1, Rate: math.NaN()}}},
			want: "rate",
		},
		{
			name: "open-ended ramp",
			spec: Spec{Phases: []PhaseSpec{{Duration: 0, Rate: 1, EndRate: 2}}},
			want: "ramp",
		},
		{
			name: "unknown event kind",
			spec: Spec{Events: []EventSpec{{Kind: "meltdown", Node: 0, At: 0, Duration: 1}}},
			want: "kind",
		},
		{
			name: "negative event node",
			spec: Spec{Events: []EventSpec{{Kind: KindOutage, Node: -1, At: 0, Duration: 1}}},
			want: "node",
		},
		{
			name: "zero event duration",
			spec: Spec{Events: []EventSpec{{Kind: KindOutage, Node: 0, At: 0, Duration: 0}}},
			want: "duration",
		},
		{
			name: "slowdown factor out of range",
			spec: Spec{Events: []EventSpec{{Kind: KindSlowdown, Node: 0, At: 0, Duration: 1, Factor: 1.5}}},
			want: "factor",
		},
		{
			name: "outage with factor",
			spec: Spec{Events: []EventSpec{{Kind: KindOutage, Node: 0, At: 0, Duration: 1, Factor: 0.5}}},
			want: "outage",
		},
		{
			name: "overlapping events on one node",
			spec: Spec{Events: []EventSpec{
				{Kind: KindOutage, Node: 2, At: 10, Duration: 10},
				{Kind: KindSlowdown, Node: 2, At: 15, Duration: 10, Factor: 0.5},
			}},
			want: "overlap",
		},
		{
			name: "pareto alpha at most 1",
			spec: Spec{Demand: &DemandSpec{Dist: "pareto", Alpha: 1}},
			want: "alpha",
		},
		{
			name: "unknown demand",
			spec: Spec{Demand: &DemandSpec{Dist: "cauchy"}},
			want: "demand",
		},
		{
			name: "negative interval",
			spec: Spec{Interval: -3},
			want: "interval",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.spec)
			if err == nil {
				t.Fatal("New accepted an invalid spec")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestOverlapOnDistinctNodesIsFine(t *testing.T) {
	_, err := New(Spec{Events: []EventSpec{
		{Kind: KindOutage, Node: 0, At: 10, Duration: 10},
		{Kind: KindOutage, Node: 1, At: 12, Duration: 10},
	}})
	if err != nil {
		t.Fatalf("simultaneous faults on distinct nodes rejected: %v", err)
	}
}

func TestAdjacentEventsOnOneNodeAreFine(t *testing.T) {
	_, err := New(Spec{Events: []EventSpec{
		{Kind: KindOutage, Node: 0, At: 10, Duration: 10},
		{Kind: KindSlowdown, Node: 0, At: 20, Duration: 10, Factor: 0.5},
	}})
	if err != nil {
		t.Fatalf("back-to-back events rejected: %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "spike",
		"interval": 500,
		"phases": [
			{"duration": 1000, "rate": 1},
			{"duration": 200, "rate": 3},
			{"duration": 0, "rate": 1}
		],
		"events": [{"kind": "slowdown", "node": 1, "at": 100, "duration": 50, "factor": 0.25}],
		"demand": {"dist": "lognormal", "sigma": 0.8}
	}`)
	sp, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "spike" || len(sp.Phases) != 3 || len(sp.Events) != 1 {
		t.Fatalf("parsed spec incomplete: %+v", sp)
	}
	if _, err := New(sp); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecRejections(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{name: "syntax error", data: `{"phases": [}`},
		{name: "unknown field", data: `{"phasez": []}`},
		{name: "trailing data", data: `{} {}`},
		{name: "wrong type", data: `{"interval": "fast"}`},
		{name: "invalid content", data: `{"phases": [{"duration": -1, "rate": 1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(tt.data)); err == nil {
				t.Errorf("ParseSpec accepted %q", tt.data)
			}
		})
	}
}

func TestPresetsCompile(t *testing.T) {
	for _, name := range PresetNames() {
		sc, err := Preset(name, 50000)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if sc.MaxFactor() < 1 {
			t.Errorf("preset %q: MaxFactor %v < 1", name, sc.MaxFactor())
		}
	}
	if _, err := Preset("nope", 50000); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("burst", 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if len(Presets()) != len(PresetNames()) {
		t.Error("Presets and PresetNames disagree")
	}
}
