package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// Event kinds.
const (
	// KindSlowdown degrades one node's service speed by Factor for the
	// event's duration.
	KindSlowdown = "slowdown"
	// KindOutage freezes one node entirely: the ready queue holds and a
	// task in service suspends until the event ends.
	KindOutage = "outage"
)

// Spec is the declarative, JSON-serializable description of a scenario:
// a timeline of workload phases, a set of node fault events, the
// metrics-window width, and an optional demand-distribution override.
// Validate (or ParseSpec, which calls it) must accept a Spec before it is
// compiled with New.
type Spec struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Interval is the width of one metrics window in simulated time
	// units; 0 picks Horizon/50 at run time.
	Interval float64 `json:"interval,omitempty"`
	// Phases is the workload timeline, applied in order from t = 0.
	// After the last phase ends the rate factor returns to 1. Empty
	// phases mean a stationary workload (events and metrics only).
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Events are node fault injections; events on the same node must
	// not overlap.
	Events []EventSpec `json:"events,omitempty"`
	// Demand optionally replaces the exponential execution-time
	// distribution for generated tasks.
	Demand *DemandSpec `json:"demand,omitempty"`
}

// PhaseSpec is one segment of the workload timeline.
type PhaseSpec struct {
	// Duration is the phase length in simulated time units. It must be
	// positive, except that the final phase may use 0 to mean "until
	// the end of the run".
	Duration float64 `json:"duration"`
	// Rate is the arrival-rate multiplier at the start of the phase
	// (1 = the configured nominal rate); it must be positive.
	Rate float64 `json:"rate"`
	// EndRate, when positive, ramps the multiplier linearly from Rate
	// to EndRate across the phase (a load ramp); 0 keeps the phase
	// constant at Rate. An open-ended final phase cannot ramp.
	EndRate float64 `json:"endRate,omitempty"`
}

// EventSpec is one scheduled node fault.
type EventSpec struct {
	// Kind is KindSlowdown or KindOutage.
	Kind string `json:"kind"`
	// Node is the target node index (validated against the node count
	// at run time).
	Node int `json:"node"`
	// At is the start time of the fault.
	At float64 `json:"at"`
	// Duration is the fault length; it must be positive.
	Duration float64 `json:"duration"`
	// Factor is the degraded speed for slowdowns, in (0, 1); outages
	// must leave it 0.
	Factor float64 `json:"factor,omitempty"`
}

// DemandSpec selects an execution-time distribution by name.
type DemandSpec struct {
	// Dist is "exponential", "pareto", "lognormal", or "deterministic".
	Dist string `json:"dist"`
	// Alpha is the Pareto shape (> 1); 0 defaults to 2.5.
	Alpha float64 `json:"alpha,omitempty"`
	// Sigma is the lognormal log-space standard deviation; 0 defaults
	// to 1.
	Sigma float64 `json:"sigma,omitempty"`
}

// ParseSpec decodes and validates a JSON scenario spec. Unknown fields
// are rejected so that typos in hand-written specs fail loudly.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// A second document in the same input is a malformed spec, not data.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: parse spec: trailing data after spec")
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Validate checks the spec and returns a descriptive error for the first
// problem found.
func (sp *Spec) Validate() error {
	if !finite(sp.Interval) || sp.Interval < 0 {
		return fmt.Errorf("scenario: interval = %v, want >= 0 and finite", sp.Interval)
	}
	for i, ph := range sp.Phases {
		last := i == len(sp.Phases)-1
		switch {
		case !finite(ph.Duration) || ph.Duration < 0:
			return fmt.Errorf("scenario: phase %d: duration = %v, want >= 0 and finite", i, ph.Duration)
		case ph.Duration == 0 && !last:
			return fmt.Errorf("scenario: phase %d: zero duration is only allowed for the final (open-ended) phase", i)
		case !finite(ph.Rate) || ph.Rate <= 0:
			return fmt.Errorf("scenario: phase %d: rate = %v, want > 0 and finite", i, ph.Rate)
		case !finite(ph.EndRate) || ph.EndRate < 0:
			return fmt.Errorf("scenario: phase %d: endRate = %v, want >= 0 and finite", i, ph.EndRate)
		case ph.EndRate > 0 && ph.Duration == 0:
			return fmt.Errorf("scenario: phase %d: an open-ended phase cannot ramp", i)
		}
	}
	for i, ev := range sp.Events {
		switch {
		case ev.Kind != KindSlowdown && ev.Kind != KindOutage:
			return fmt.Errorf("scenario: event %d: unknown kind %q (want %q or %q)", i, ev.Kind, KindSlowdown, KindOutage)
		case ev.Node < 0:
			return fmt.Errorf("scenario: event %d: node = %d, want >= 0", i, ev.Node)
		case !finite(ev.At) || ev.At < 0:
			return fmt.Errorf("scenario: event %d: at = %v, want >= 0 and finite", i, ev.At)
		case !finite(ev.Duration) || ev.Duration <= 0:
			return fmt.Errorf("scenario: event %d: duration = %v, want > 0 and finite", i, ev.Duration)
		case ev.Kind == KindSlowdown && !(ev.Factor > 0 && ev.Factor < 1):
			return fmt.Errorf("scenario: event %d: slowdown factor = %v, want in (0, 1)", i, ev.Factor)
		case ev.Kind == KindOutage && ev.Factor != 0:
			return fmt.Errorf("scenario: event %d: outage must not set factor (got %v)", i, ev.Factor)
		}
	}
	// Events on one node must not overlap: the run-time schedule restores
	// full speed when an event ends, which would silently cancel a still
	// open overlapping fault.
	byNode := make(map[int][]EventSpec)
	for _, ev := range sp.Events {
		byNode[ev.Node] = append(byNode[ev.Node], ev)
	}
	for node, evs := range byNode {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At+evs[i-1].Duration {
				return fmt.Errorf("scenario: node %d: events overlap at t = %v", node, evs[i].At)
			}
		}
	}
	if sp.Demand != nil {
		if _, err := sp.Demand.demand(); err != nil {
			return err
		}
	}
	return nil
}

// demand resolves the spec to a workload.Demand, applying defaults.
func (d *DemandSpec) demand() (workload.Demand, error) {
	switch d.Dist {
	case "", "exponential":
		return workload.ExponentialDemand{}, nil
	case "pareto":
		alpha := d.Alpha
		if alpha == 0 {
			alpha = 2.5
		}
		dd := workload.ParetoDemand{Alpha: alpha}
		return dd, workload.ValidateDemand(dd)
	case "lognormal":
		sigma := d.Sigma
		if sigma == 0 {
			sigma = 1
		}
		dd := workload.LognormalDemand{Sigma: sigma}
		return dd, workload.ValidateDemand(dd)
	case "deterministic":
		return workload.DeterministicDemand{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown demand dist %q", d.Dist)
	}
}

// finite reports whether x is neither NaN nor infinite.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
