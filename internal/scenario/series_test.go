package scenario

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesGeometry(t *testing.T) {
	s := NewSeries(100, 1000)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	// A horizon that is not a multiple of the interval gets a partial
	// trailing window.
	s = NewSeries(300, 1000)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (partial trailing window)", s.Len())
	}
	if got := s.WindowStart(3); got != 900 {
		t.Fatalf("WindowStart(3) = %v, want 900", got)
	}
}

func TestSeriesBinsByTime(t *testing.T) {
	s := NewSeries(100, 1000)
	s.ObserveLocal(50, true)
	s.ObserveLocal(150, false)
	s.ObserveGlobal(150, true, 2.5)
	s.ObserveGlobal(999.9, false, -1)
	// Boundary noise clamps instead of dropping.
	s.ObserveLocal(1000, true)
	s.ObserveLocal(-0.001, false)

	if got := s.Window(0).LocalMiss.Total(); got != 2 {
		t.Errorf("window 0 local total = %d, want 2 (incl. clamped negative)", got)
	}
	if got := s.Window(1).LocalMiss.Total(); got != 1 {
		t.Errorf("window 1 local total = %d, want 1", got)
	}
	if got := s.Window(1).GlobalMiss.Value(); got != 1 {
		t.Errorf("window 1 global miss = %v, want 1", got)
	}
	if got := s.Window(1).Lateness.Mean(); got != 2.5 {
		t.Errorf("window 1 lateness = %v, want 2.5", got)
	}
	if got := s.Window(9).LocalMiss.Total(); got != 1 {
		t.Errorf("window 9 local total = %d, want 1 (clamped at horizon)", got)
	}
}

func TestSeriesMergeMatchesPooled(t *testing.T) {
	a := NewSeries(100, 300)
	b := NewSeries(100, 300)
	pooled := NewSeries(100, 300)
	obs := []struct {
		at     float64
		missed bool
		late   float64
	}{
		{at: 10, missed: true, late: 3},
		{at: 110, missed: false, late: -1},
		{at: 120, missed: true, late: 0.5},
		{at: 250, missed: false, late: -2},
	}
	for i, o := range obs {
		target := a
		if i%2 == 1 {
			target = b
		}
		target.ObserveLocal(o.at, o.missed)
		target.ObserveGlobal(o.at, o.missed, o.late)
		target.ObserveQueueLen(o.at, float64(i))
		pooled.ObserveLocal(o.at, o.missed)
		pooled.ObserveGlobal(o.at, o.missed, o.late)
		pooled.ObserveQueueLen(o.at, float64(i))
	}
	merged := a.Clone()
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < merged.Len(); i++ {
		m, p := merged.Window(i), pooled.Window(i)
		if m.LocalMiss != p.LocalMiss || m.GlobalMiss != p.GlobalMiss {
			t.Errorf("window %d ratios diverge: %+v vs %+v", i, m, p)
		}
		if math.Abs(m.Lateness.Mean()-p.Lateness.Mean()) > 1e-12 ||
			m.Lateness.N() != p.Lateness.N() {
			t.Errorf("window %d lateness diverges", i)
		}
		if math.Abs(m.QueueLen.Mean()-p.QueueLen.Mean()) > 1e-12 {
			t.Errorf("window %d queue length diverges", i)
		}
	}
	// Clone isolates: the merge must not have touched a, which saw only
	// the even-indexed observation at t = 10 in window 0.
	if a.Window(0).LocalMiss.Total() != 1 {
		t.Error("Merge mutated the clone source")
	}
}

func TestSeriesMergeRejectsMismatch(t *testing.T) {
	a := NewSeries(100, 1000)
	if err := a.Merge(NewSeries(50, 1000)); err == nil {
		t.Error("merged series with different interval")
	}
	if err := a.Merge(NewSeries(100, 500)); err == nil {
		t.Error("merged series with different window count")
	}
}

func TestSeriesMissRateIn(t *testing.T) {
	s := NewSeries(100, 1000)
	for i := 0; i < 10; i++ {
		at := float64(i)*100 + 50
		// Windows 4..5 are "the burst": all misses there.
		missed := i == 4 || i == 5
		s.ObserveLocal(at, missed)
		s.ObserveGlobal(at, missed, 0)
	}
	local, global := s.MissRateIn(400, 600)
	if local != 1 || global != 1 {
		t.Errorf("burst MissRateIn = %v, %v, want 1, 1", local, global)
	}
	local, global = s.MissRateIn(0, 400)
	if local != 0 || global != 0 {
		t.Errorf("steady MissRateIn = %v, %v, want 0, 0", local, global)
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries(300, 1000)
	s.ObserveLocal(10, true)
	s.ObserveGlobal(10, true, 1.5)
	s.ObserveQueueLen(10, 4)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want header + 4 windows:\n%s", len(lines), b.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,300,1,1,1,1,1.5,4" {
		t.Errorf("window 0 row = %q", lines[1])
	}
	// The partial trailing window ends at the horizon, not at 1200.
	if !strings.HasPrefix(lines[4], "900,1000,") {
		t.Errorf("trailing row = %q, want end clamped to horizon", lines[4])
	}
}

func TestNewSeriesPanicsOnBadGeometry(t *testing.T) {
	for _, tt := range []struct{ interval, horizon float64 }{
		{interval: 0, horizon: 100},
		{interval: -1, horizon: 100},
		{interval: 10, horizon: 0},
		{interval: math.NaN(), horizon: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSeries(%v, %v) did not panic", tt.interval, tt.horizon)
				}
			}()
			NewSeries(tt.interval, tt.horizon)
		}()
	}
}
