package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec checks that the spec parser never panics, that every
// accepted spec also compiles (New) and survives a JSON round trip, and
// that the compiled scenario's modulator respects its declared bound.
// `go test` runs the seed corpus; `go test -fuzz=FuzzParseSpec` explores
// further.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"phases": []}`,
		`{"phases": [{"duration": 100, "rate": 1}]}`,
		`{"phases": [{"duration": 100, "rate": 1}, {"duration": 0, "rate": 3}]}`,
		`{"phases": [{"duration": 100, "rate": 1, "endRate": 2.5}]}`,
		// Malformed phases.
		`{"phases": [{"duration": -1, "rate": 1}]}`,
		`{"phases": [{"duration": 0, "rate": 1}, {"duration": 5, "rate": 1}]}`,
		`{"phases": [{"duration": 1e309, "rate": 1}]}`,
		`{"phases": [{"duration": 100, "rate": 0}]}`,
		`{"phases": [{"duration": 100, "rate": -2}]}`,
		`{"phases": [{"duration": 0, "rate": 1, "endRate": 2}]}`,
		// Events, well-formed and not.
		`{"events": [{"kind": "outage", "node": 0, "at": 10, "duration": 5}]}`,
		`{"events": [{"kind": "slowdown", "node": 1, "at": 0, "duration": 1, "factor": 0.5}]}`,
		`{"events": [{"kind": "slowdown", "node": 1, "at": 0, "duration": 1, "factor": 1.5}]}`,
		`{"events": [{"kind": "meltdown", "node": 0, "at": 0, "duration": 1}]}`,
		`{"events": [{"kind": "outage", "node": -3, "at": 0, "duration": 1}]}`,
		`{"events": [{"kind": "outage", "node": 0, "at": -1, "duration": 1}]}`,
		`{"events": [{"kind": "outage", "node": 0, "at": 0, "duration": -1}]}`,
		// Overlapping events on one node.
		`{"events": [
			{"kind": "outage", "node": 0, "at": 10, "duration": 10},
			{"kind": "outage", "node": 0, "at": 15, "duration": 10}]}`,
		`{"events": [
			{"kind": "outage", "node": 0, "at": 10, "duration": 10},
			{"kind": "outage", "node": 1, "at": 15, "duration": 10}]}`,
		// Demands.
		`{"demand": {"dist": "pareto", "alpha": 2.5}}`,
		`{"demand": {"dist": "pareto", "alpha": 0.5}}`,
		`{"demand": {"dist": "lognormal", "sigma": 1}}`,
		`{"demand": {"dist": "deterministic"}}`,
		`{"demand": {"dist": "cauchy"}}`,
		// Structure-level malformations.
		`{"interval": -5}`,
		`{"interval": "fast"}`,
		`{"phasez": []}`,
		`{"phases": [}`,
		`{} {}`,
		`{"phases": [{"duration": 100, "rate": 1}]`,
		"{\"name\": \"\x00\"}",
		`{"name": "ok", "phases": [{"duration": 1e-300, "rate": 1e300}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		sc, err := New(sp)
		if err != nil {
			t.Fatalf("ParseSpec accepted a spec New rejects: %v\ninput: %s", err, data)
		}
		// The modulator must honour its declared bound at phase edges —
		// the invariant the thinning generator panics on.
		max := sc.MaxFactor()
		probe := []float64{0}
		at := 0.0
		for _, ph := range sp.Phases {
			probe = append(probe, at, at+ph.Duration/2, at+ph.Duration)
			at += ph.Duration
		}
		for _, p := range probe {
			if f := sc.FactorAt(p); f > max || f < 0 {
				t.Fatalf("FactorAt(%v) = %v outside [0, max %v]", p, f, max)
			}
		}
		// Accepted specs survive a JSON round trip.
		blob, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		sp2, err := ParseSpec(blob)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nblob: %s", err, blob)
		}
		if len(sp2.Phases) != len(sp.Phases) || len(sp2.Events) != len(sp.Events) {
			t.Fatalf("round trip changed structure: %+v vs %+v", sp, sp2)
		}
	})
}
