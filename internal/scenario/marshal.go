package scenario

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Binary round-trip support: a replication's Series crosses the process
// boundary of the multi-process backend inside system.Metrics
// (encoding/gob honours encoding.BinaryMarshaler). Geometry floats
// travel as raw IEEE-754 bits and every window's accumulators reuse the
// exact stats encodings, so a decoded series merges and renders CSV
// byte-identically to the encoded one.

// windowWireSize is the fixed per-window encoding length.
const windowWireSize = 2*stats.RatioWireSize + 2*stats.WelfordWireSize

// MarshalBinary implements encoding.BinaryMarshaler: interval, horizon,
// window count, then each window's LocalMiss, GlobalMiss, Lateness,
// QueueLen in the stats wire encodings.
func (s Series) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 3*8+len(s.windows)*windowWireSize)
	var u [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(u[:], v)
		b = append(b, u[:]...)
	}
	put(math.Float64bits(s.interval))
	put(math.Float64bits(s.horizon))
	put(uint64(len(s.windows)))
	for i := range s.windows {
		w := &s.windows[i]
		for _, enc := range []interface{ MarshalBinary() ([]byte, error) }{
			w.LocalMiss, w.GlobalMiss, w.Lateness, w.QueueLen,
		} {
			p, err := enc.MarshalBinary()
			if err != nil {
				return nil, err
			}
			b = append(b, p...)
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, reversing
// MarshalBinary bit for bit.
func (s *Series) UnmarshalBinary(b []byte) error {
	if len(b) < 3*8 {
		return fmt.Errorf("scenario: series wire length %d, want >= %d", len(b), 3*8)
	}
	s.interval = math.Float64frombits(binary.BigEndian.Uint64(b[0:]))
	s.horizon = math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
	n := binary.BigEndian.Uint64(b[16:])
	if want := 3*8 + int(n)*windowWireSize; n > uint64(len(b)) || len(b) != want {
		return fmt.Errorf("scenario: series wire length %d, want %d for %d windows", len(b), want, n)
	}
	s.windows = make([]Window, n)
	off := 3 * 8
	take := func(size int) []byte {
		p := b[off : off+size]
		off += size
		return p
	}
	for i := range s.windows {
		w := &s.windows[i]
		if err := w.LocalMiss.UnmarshalBinary(take(stats.RatioWireSize)); err != nil {
			return err
		}
		if err := w.GlobalMiss.UnmarshalBinary(take(stats.RatioWireSize)); err != nil {
			return err
		}
		if err := w.Lateness.UnmarshalBinary(take(stats.WelfordWireSize)); err != nil {
			return err
		}
		if err := w.QueueLen.UnmarshalBinary(take(stats.WelfordWireSize)); err != nil {
			return err
		}
	}
	return nil
}
