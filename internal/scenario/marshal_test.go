package scenario

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// TestSeriesBinaryRoundTrip pins bit-exactness of the Series wire
// encoding: the decoded series must be deep-equal, render byte-identical
// CSV, and still merge with the original's peers.
func TestSeriesBinaryRoundTrip(t *testing.T) {
	s := NewSeries(50, 325) // partial trailing window
	s.ObserveLocal(10, true)
	s.ObserveLocal(10, false)
	s.ObserveGlobal(60, true, 1.0/3)
	s.ObserveGlobal(120, false, -0.1)
	s.ObserveGlobalAbort(300)
	s.ObserveQueueLen(5, 3)
	s.ObserveQueueLen(324.9, 7)

	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := new(Series)
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
	var w1, w2 bytes.Buffer
	if err := s.WriteCSV(&w1); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteCSV(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("decoded series renders different CSV")
	}
	if err := got.Merge(s); err != nil {
		t.Fatalf("decoded series refuses to merge with original geometry: %v", err)
	}

	if err := got.UnmarshalBinary(b[:len(b)-1]); err == nil {
		t.Fatal("truncated series wire accepted")
	}
}

// TestSeriesGobRoundTrip proves gob routes *Series through the binary
// encoding — the form it takes inside system.Metrics on the wire.
func TestSeriesGobRoundTrip(t *testing.T) {
	type payload struct{ S *Series }
	p := payload{S: NewSeries(10, 100)}
	p.S.ObserveGlobal(55, true, 2.5)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.S, p.S) {
		t.Fatalf("gob round trip diverged: %+v -> %+v", p.S, got.S)
	}
}
