package scenario

import (
	"fmt"
	"sort"
)

// preset builds a Spec for a run of the given horizon. Presets express
// their timeline as fractions of the horizon so one name works at any
// scale.
type preset struct {
	name  string
	title string
	build func(horizon float64) Spec
}

// presets is the built-in scenario library; see doc.go for the paper and
// related-work motivation of each.
var presets = []preset{
	{
		name:  "burst",
		title: "3x arrival-rate burst for the middle 10% of the run",
		build: func(h float64) Spec {
			return Spec{
				Name: "burst",
				Phases: []PhaseSpec{
					{Duration: 0.45 * h, Rate: 1},
					{Duration: 0.10 * h, Rate: 3},
					{Duration: 0, Rate: 1},
				},
			}
		},
	},
	{
		name:  "ramp",
		title: "load ramps 1x..2.5x over the middle half, then back",
		build: func(h float64) Spec {
			return Spec{
				Name: "ramp",
				Phases: []PhaseSpec{
					{Duration: 0.25 * h, Rate: 1},
					{Duration: 0.25 * h, Rate: 1, EndRate: 2.5},
					{Duration: 0.25 * h, Rate: 2.5, EndRate: 1},
					{Duration: 0, Rate: 1},
				},
			}
		},
	},
	{
		name:  "outage",
		title: "node 0 out for 5% of the run, node 1 at half speed for 10%",
		build: func(h float64) Spec {
			return Spec{
				Name: "outage",
				Events: []EventSpec{
					{Kind: KindOutage, Node: 0, At: 0.40 * h, Duration: 0.05 * h},
					{Kind: KindSlowdown, Node: 1, At: 0.60 * h, Duration: 0.10 * h, Factor: 0.5},
				},
			}
		},
	},
	{
		name:  "heavytail",
		title: "stationary arrivals with Pareto(1.8) heavy-tailed demands",
		build: func(h float64) Spec {
			return Spec{
				Name:   "heavytail",
				Demand: &DemandSpec{Dist: "pareto", Alpha: 1.8},
			}
		},
	},
	{
		name:  "storm",
		title: "burst + node-0 outage inside the burst + lognormal demands",
		build: func(h float64) Spec {
			return Spec{
				Name: "storm",
				Phases: []PhaseSpec{
					{Duration: 0.45 * h, Rate: 1},
					{Duration: 0.10 * h, Rate: 3},
					{Duration: 0, Rate: 1},
				},
				Events: []EventSpec{
					{Kind: KindOutage, Node: 0, At: 0.47 * h, Duration: 0.04 * h},
				},
				Demand: &DemandSpec{Dist: "lognormal", Sigma: 1},
			}
		},
	},
}

// Presets lists the built-in scenario names with one-line descriptions,
// sorted by name.
func Presets() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = fmt.Sprintf("%-10s %s", p.name, p.title)
	}
	sort.Strings(out)
	return out
}

// PresetNames lists just the names, sorted.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	sort.Strings(out)
	return out
}

// Preset compiles a built-in scenario for a run of the given horizon.
func Preset(name string, horizon float64) (*Scenario, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("scenario: preset %q: horizon = %v, want > 0", name, horizon)
	}
	for _, p := range presets {
		if p.name == name {
			return New(p.build(horizon))
		}
	}
	return nil, fmt.Errorf("scenario: unknown preset %q (try one of %v)", name, PresetNames())
}
