package scenario

import (
	"reflect"
	"testing"
)

// TestChurnDeterministic: the generated schedule is a pure function of
// its inputs.
func TestChurnDeterministic(t *testing.T) {
	a, err := ChurnSpec(32, 2, 10000, ChurnOptions{Seed: 7, SlowdownFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnSpec(32, 2, 10000, ChurnOptions{Seed: 7, SlowdownFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs produced different churn schedules")
	}
	c, err := ChurnSpec(32, 2, 10000, ChurnOptions{Seed: 8, SlowdownFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical churn schedules")
	}
}

// TestChurnCompilesAndValidates: the generated spec passes the same
// validation as a hand-written one, at small and large node counts, and
// its event population tracks nodes x rate.
func TestChurnCompilesAndValidates(t *testing.T) {
	for _, nodes := range []int{1, 6, 1024} {
		sc, err := Churn(nodes, 2, 50000, ChurnOptions{Seed: 1, SlowdownFrac: 0.3})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if err := sc.CheckNodes(nodes); err != nil {
			t.Fatalf("nodes=%d: generated event out of range: %v", nodes, err)
		}
		got := len(sc.Events())
		want := float64(nodes) * 2
		if float64(got) < want*0.5 || float64(got) > want*1.6 {
			t.Fatalf("nodes=%d: %d events, want about %v (rate 2 per node)", nodes, got, want)
		}
		slowdowns := 0
		for _, ev := range sc.Events() {
			if ev.At < 0 || ev.At >= 50000 {
				t.Fatalf("nodes=%d: event at %v outside the horizon", nodes, ev.At)
			}
			if ev.Kind == KindSlowdown {
				slowdowns++
				if !(ev.Factor > 0 && ev.Factor < 1) {
					t.Fatalf("slowdown factor %v out of (0,1)", ev.Factor)
				}
			}
		}
		if nodes >= 1024 && slowdowns == 0 {
			t.Error("SlowdownFrac 0.3 produced no slowdowns at 1024 nodes")
		}
	}
}

// TestChurnRejectsBadInputs.
func TestChurnRejectsBadInputs(t *testing.T) {
	cases := []struct {
		nodes   int
		rate, h float64
		o       ChurnOptions
	}{
		{0, 1, 1000, ChurnOptions{}},
		{4, 0, 1000, ChurnOptions{}},
		{4, 1, 0, ChurnOptions{}},
		{4, 1, 1000, ChurnOptions{SlowdownFrac: 1.5}},
		{4, 1, 1000, ChurnOptions{MeanDuration: -1}},
	}
	for i, c := range cases {
		if _, err := Churn(c.nodes, c.rate, c.h, c.o); err == nil {
			t.Errorf("case %d accepted invalid inputs", i)
		}
	}
}
