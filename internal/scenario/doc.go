// Package scenario adds declarative, time-varying workloads and fault
// injection to the simulation model, plus the windowed time-series
// metrics to observe them.
//
// # Why this exists
//
// The paper (Kao & Garcia-Molina, "Deadline Assignment in a Distributed
// Soft Real-Time System") evaluates the SDA strategies only under
// stationary Poisson arrivals with exponential demands (Table 1) and
// reports whole-run miss ratios. Its soft real-time conclusions, though,
// matter most exactly where stationarity breaks: load spikes, degraded
// nodes, transient outages. Section 4.3 already gestures at this with
// the unbalanced-load and prediction-error variations; this package
// generalizes those one-off knobs into a first-class concept.
//
// Related work this design follows:
//
//   - "The Dawn of the Dead(line Misses)" (Chen et al., 2024) studies
//     deadline-miss behaviour under overload and job dismissal — the
//     regime the burst/ramp phases of a Spec create on purpose, and the
//     regime in which the paper's EQF-vs-UD ranking is decided by the
//     tardy policy (compare the abl-abort experiment).
//   - "Adaptive Fixed Priority End-To-End Imprecise Scheduling" studies
//     end-to-end scheduling under changing load; a Scenario's phase
//     timeline is precisely a declarative "changing load" input, and the
//     per-window Series is the signal an adaptive strategy would react
//     to. Future adaptivity PRs plug in here.
//
// # Model
//
// A Spec has three orthogonal parts:
//
//   - Phases modulate the arrival rate over time: a piecewise timeline
//     of multipliers with optional linear ramps (PhaseSpec.EndRate).
//     The generators realize the resulting non-homogeneous Poisson
//     process by Lewis-Shedler thinning (internal/workload), so runs
//     stay pure functions of the seed. A 3x phase at Table 1's load 0.5
//     pushes instantaneous load to 1.5 — deliberate transient overload.
//   - Events inject node faults: KindSlowdown runs one node at a
//     fractional speed, KindOutage freezes it entirely (the node's
//     queue holds and the task in service suspends in place; see
//     node.SetSpeed). Events map to the paper's section 3.2 component
//     model: nodes are independent, so a fault is a per-node property.
//   - Demand swaps the execution-time distribution (exponential,
//     Pareto, lognormal, deterministic), mean-matched so the offered
//     load is unchanged — only tail weight moves, which is what
//     separates strategies that spread slack (EQS/EQF) from those that
//     hoard it (UD).
//
// A Series cuts the horizon into fixed windows and collects per-window
// class miss ratios, global lateness, and sampled queue lengths.
// Windows merge exactly across replications (Series.Merge builds on
// stats.Ratio.Merge / stats.Welford.Merge), so the parallel runner
// aggregates time series the same way it aggregates whole-run ratios —
// bit-identically, regardless of worker count.
//
// Use ParseSpec for JSON input (cmd/sdascn), New/MustNew for
// programmatic specs, and Preset for the built-in library (burst, ramp,
// outage, heavytail, storm).
package scenario
