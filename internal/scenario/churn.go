package scenario

import (
	"fmt"

	"repro/internal/rng"
)

// ChurnOptions tunes the Churn generator. The zero value picks the
// defaults documented on each field.
type ChurnOptions struct {
	// MeanDuration is the mean fault length (exponentially distributed,
	// floored at a tiny positive value). A fault that starts late may
	// extend past the horizon — the node simply stays faulted to the end
	// of the run, exactly as a hand-written spec event would. Zero
	// defaults to 2% of the horizon.
	MeanDuration float64
	// SlowdownFrac is the fraction of faults that are slowdowns instead
	// of full outages, in [0, 1]. A slowdown's speed factor is drawn
	// uniformly from [0.25, 0.75]. Zero means every fault is an outage.
	SlowdownFrac float64
	// Seed seeds the generator; the schedule is a pure function of
	// (nodes, rate, horizon, options). Zero is a valid seed.
	Seed uint64
	// Interval is the metrics-window width forwarded to the scenario
	// spec; 0 keeps the Horizon/50 default.
	Interval float64
}

// Churn generates a node-churn scenario: every node gets its own fault
// schedule — outages (and optionally slowdowns) arriving as a Poisson
// process with on average rate faults per node across a run of the
// given horizon. It exists so large-topology churn runs (the ladder
// queue's far-future tiers are exercised by thousands of scheduled
// recoveries) don't hand-write per-node event entries: Churn(1024, 2,
// h, ...) emits ~2048 events in one call.
//
// Per-node schedules are non-overlapping by construction (the next
// fault is drawn after the previous one's recovery), every draw comes
// from a per-node substream of Options.Seed, and the compiled scenario
// passes the same validation as a hand-written spec.
func Churn(nodes int, rate, horizon float64, o ChurnOptions) (*Scenario, error) {
	spec, err := ChurnSpec(nodes, rate, horizon, o)
	if err != nil {
		return nil, err
	}
	return New(spec)
}

// ChurnSpec is Churn returning the uncompiled Spec, for callers that
// want to inspect or serialize the generated schedule.
func ChurnSpec(nodes int, rate, horizon float64, o ChurnOptions) (Spec, error) {
	switch {
	case nodes <= 0:
		return Spec{}, fmt.Errorf("scenario: churn: nodes = %d, want > 0", nodes)
	case !finite(rate) || rate <= 0:
		return Spec{}, fmt.Errorf("scenario: churn: rate = %v, want > 0 and finite", rate)
	case !finite(horizon) || horizon <= 0:
		return Spec{}, fmt.Errorf("scenario: churn: horizon = %v, want > 0 and finite", horizon)
	case !finite(o.SlowdownFrac) || o.SlowdownFrac < 0 || o.SlowdownFrac > 1:
		return Spec{}, fmt.Errorf("scenario: churn: slowdown fraction = %v, want within [0, 1]", o.SlowdownFrac)
	case !finite(o.MeanDuration) || o.MeanDuration < 0:
		return Spec{}, fmt.Errorf("scenario: churn: mean duration = %v, want >= 0 and finite", o.MeanDuration)
	}
	meanDur := o.MeanDuration
	if meanDur == 0 {
		meanDur = 0.02 * horizon
	}
	meanGap := horizon / rate

	spec := Spec{
		Name:     fmt.Sprintf("churn-%d", nodes),
		Interval: o.Interval,
	}
	for node := 0; node < nodes; node++ {
		r := rng.NewStream(o.Seed, fmt.Sprintf("churn-node-%d", node))
		// Walk the node's timeline: exponential gap to the next fault,
		// exponential duration, then resume after recovery — so events on
		// one node can never overlap.
		t := r.Exponential(meanGap)
		for t < horizon {
			dur := r.Exponential(meanDur)
			if min := horizon * 1e-6; dur < min {
				dur = min // Validate requires strictly positive durations
			}
			ev := EventSpec{Kind: KindOutage, Node: node, At: t, Duration: dur}
			if o.SlowdownFrac > 0 && r.Float64() < o.SlowdownFrac {
				ev.Kind = KindSlowdown
				ev.Factor = r.Uniform(0.25, 0.75)
			}
			spec.Events = append(spec.Events, ev)
			t += dur + r.Exponential(meanGap)
		}
	}
	return spec, nil
}
