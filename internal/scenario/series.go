package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Series is the windowed time-series collector of a scenario run: the
// horizon is cut into fixed-width intervals and every window accumulates
// class miss ratios, lateness, and sampled queue lengths. Windows from
// independent replications merge exactly (Merge), so parallel runs
// aggregate without re-running — the scenario counterpart of the paper's
// whole-run miss ratios.
type Series struct {
	interval float64
	horizon  float64
	windows  []Window
}

// Window holds one interval's statistics. Observations are binned by the
// time they become known (completion or abort time), which is the only
// binning a causal on-line monitor could use.
type Window struct {
	// LocalMiss and GlobalMiss are the class-conditional miss ratios of
	// tasks finishing in this window.
	LocalMiss  stats.Ratio
	GlobalMiss stats.Ratio
	// Lateness accumulates finish − deadline over global instances
	// finishing in the window (negative values are early completions).
	Lateness stats.Welford
	// QueueLen accumulates system-wide ready-queue length samples taken
	// inside the window.
	QueueLen stats.Welford
}

// NewSeries returns a collector for a run of the given horizon with the
// given window width. It panics on non-positive arguments; window shape
// is a programming decision, not an input.
func NewSeries(interval, horizon float64) *Series {
	if !(interval > 0) || !(horizon > 0) {
		panic(fmt.Sprintf("scenario: NewSeries(%v, %v)", interval, horizon))
	}
	n := int(horizon / interval)
	if float64(n)*interval < horizon {
		n++ // partial trailing window
	}
	return &Series{interval: interval, horizon: horizon, windows: make([]Window, n)}
}

// Interval returns the window width.
func (s *Series) Interval() float64 { return s.interval }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.windows) }

// Window returns a pointer to window i (for tests and reports).
func (s *Series) Window(i int) *Window { return &s.windows[i] }

// WindowStart returns the start time of window i.
func (s *Series) WindowStart(i int) float64 { return float64(i) * s.interval }

// index maps a time to its window, clamping to the series bounds so
// boundary floating-point noise never drops an observation.
func (s *Series) index(t float64) int {
	i := int(t / s.interval)
	if i < 0 {
		i = 0
	}
	if i >= len(s.windows) {
		i = len(s.windows) - 1
	}
	return i
}

// ObserveLocal records a local task finishing (or aborting) at time t.
func (s *Series) ObserveLocal(t float64, missed bool) {
	s.windows[s.index(t)].LocalMiss.Observe(missed)
}

// ObserveGlobal records a global instance finishing at time t with the
// given lateness (finish − deadline).
func (s *Series) ObserveGlobal(t float64, missed bool, lateness float64) {
	w := &s.windows[s.index(t)]
	w.GlobalMiss.Observe(missed)
	w.Lateness.Add(lateness)
}

// ObserveGlobalAbort records a global instance discarded at time t: a
// miss by definition, with no lateness sample (the work never finished).
func (s *Series) ObserveGlobalAbort(t float64) {
	s.windows[s.index(t)].GlobalMiss.Observe(true)
}

// ObserveQueueLen records a system-wide queue-length sample at time t.
func (s *Series) ObserveQueueLen(t float64, length float64) {
	s.windows[s.index(t)].QueueLen.Add(length)
}

// MissRateIn returns the pooled per-class miss ratios over windows whose
// start lies in [t0, t1) — the aggregate a test or report compares
// between, say, a burst window and steady state.
func (s *Series) MissRateIn(t0, t1 float64) (local, global float64) {
	var lm, gm stats.Ratio
	for i := range s.windows {
		start := s.WindowStart(i)
		if start < t0 || start >= t1 {
			continue
		}
		lm.Merge(&s.windows[i].LocalMiss)
		gm.Merge(&s.windows[i].GlobalMiss)
	}
	return lm.Value(), gm.Value()
}

// Clone returns a deep copy, so merging replications never mutates the
// per-run series.
func (s *Series) Clone() *Series {
	out := &Series{interval: s.interval, horizon: s.horizon}
	out.windows = make([]Window, len(s.windows))
	copy(out.windows, s.windows)
	return out
}

// Merge folds another replication's series into s window by window. The
// two series must have identical geometry.
func (s *Series) Merge(o *Series) error {
	if o.interval != s.interval || len(o.windows) != len(s.windows) {
		return fmt.Errorf("scenario: cannot merge series (interval %v/%v, windows %d/%d)",
			s.interval, o.interval, len(s.windows), len(o.windows))
	}
	for i := range s.windows {
		s.windows[i].LocalMiss.Merge(&o.windows[i].LocalMiss)
		s.windows[i].GlobalMiss.Merge(&o.windows[i].GlobalMiss)
		s.windows[i].Lateness.Merge(&o.windows[i].Lateness)
		s.windows[i].QueueLen.Merge(&o.windows[i].QueueLen)
	}
	return nil
}

// CSVHeader is the column layout of WriteCSV.
const CSVHeader = "t_start,t_end,local_done,local_missrate,global_done,global_missrate,mean_lateness,mean_queue_len"

// WriteCSV emits one row per window. Numbers are formatted with the
// shortest exact representation ('g', −1), so equal series produce
// byte-identical output — the property the determinism CI job asserts
// across worker counts.
func (s *Series) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(CSVHeader)
	b.WriteByte('\n')
	for i := range s.windows {
		win := &s.windows[i]
		end := s.WindowStart(i) + s.interval
		if end > s.horizon {
			end = s.horizon
		}
		cols := []string{
			num(s.WindowStart(i)),
			num(end),
			strconv.FormatInt(win.LocalMiss.Total(), 10),
			num(win.LocalMiss.Value()),
			strconv.FormatInt(win.GlobalMiss.Total(), 10),
			num(win.GlobalMiss.Value()),
			num(win.Lateness.Mean()),
			num(win.QueueLen.Mean()),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// num formats a float with the shortest exact decimal representation.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
