package experiment

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/system"
)

func scenarioBase(t *testing.T) (system.Config, *scenario.Scenario) {
	t.Helper()
	cfg := system.Baseline()
	cfg.Horizon = 4000
	sc, err := scenario.Preset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sc
}

// TestRunScenarioDeterministicAcrossParallelism is the subsystem's core
// guarantee: the merged time-series CSV is byte-identical at every
// worker count.
func TestRunScenarioDeterministicAcrossParallelism(t *testing.T) {
	cfg, sc := scenarioBase(t)
	csvAt := func(parallelism int) string {
		t.Helper()
		res, err := RunScenario(cfg, sc, 4, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := csvAt(1)
	if !strings.Contains(want, scenario.CSVHeader) {
		t.Fatalf("csv missing header:\n%s", want)
	}
	for _, p := range []int{0, 2, 8} {
		if got := csvAt(p); got != want {
			t.Errorf("parallelism %d produced different CSV bytes", p)
		}
	}
}

// TestRunScenarioMergesAllReplications checks the merged series pools
// every replication's observations (totals strictly grow with reps).
func TestRunScenarioMergesAllReplications(t *testing.T) {
	cfg, sc := scenarioBase(t)
	one, err := RunScenario(cfg, sc, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunScenario(cfg, sc, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(four.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(four.Runs))
	}
	total := func(r *ScenarioResult) int64 {
		var n int64
		for i := 0; i < r.Series.Len(); i++ {
			n += r.Series.Window(i).LocalMiss.Total()
		}
		return n
	}
	if t1, t4 := total(one), total(four); t4 <= 2*t1 {
		t.Errorf("merged totals: 1 rep %d, 4 reps %d; want roughly 4x", t1, t4)
	}
	// The merge must not have mutated replication 0's own series.
	var perRun int64
	for i := 0; i < four.Runs[0].Series.Len(); i++ {
		perRun += four.Runs[0].Series.Window(i).LocalMiss.Total()
	}
	if perRun >= total(four) {
		t.Errorf("replication 0 series (%d) should be smaller than the merge (%d)", perRun, total(four))
	}
	if four.GlobalMD.HalfCI <= 0 {
		t.Error("replicated run has no confidence interval")
	}
}

func TestRunScenarioRejectsBadInput(t *testing.T) {
	cfg, sc := scenarioBase(t)
	if _, err := RunScenario(cfg, nil, 2, 1); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := RunScenario(cfg, sc, 0, 1); err == nil {
		t.Error("zero reps accepted")
	}
	bad := cfg
	bad.Nodes = -1
	if _, err := RunScenario(bad, sc, 2, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunScenarioSeedsAreIndependent: different base seeds give
// different series, same base seed gives identical series.
func TestRunScenarioSeedsAreIndependent(t *testing.T) {
	cfg, sc := scenarioBase(t)
	csv := func(seed uint64) string {
		c := cfg
		c.Seed = seed
		res, err := RunScenario(c, sc, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if csv(1) != csv(1) {
		t.Error("same seed produced different series")
	}
	if csv(1) == csv(99) {
		t.Error("different seeds produced identical series")
	}
}

// TestRunScenarioUnderStrategies smoke-tests the scenario engine across
// strategy combinations — the sweep axis future overload studies will
// use.
func TestRunScenarioUnderStrategies(t *testing.T) {
	cfg, sc := scenarioBase(t)
	cfg.Horizon = 2000
	for _, pair := range [][2]string{{"UD", "UD"}, {"EQF", "DIV-1"}, {"EQS", "GF"}} {
		pair := pair
		t.Run(fmt.Sprintf("%s-%s", pair[0], pair[1]), func(t *testing.T) {
			c := cfg
			c.SSP, c.PSP = pair[0], pair[1]
			res, err := RunScenario(c, sc, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Series.Len() == 0 {
				t.Error("empty series")
			}
		})
	}
}
