package experiment

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// tinyOptions keeps unit tests fast; shape assertions live in the system
// package where horizons are longer.
func tinyOptions() Options {
	return Options{Horizon: 2500, Reps: 2, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every DESIGN.md experiment id must be registered.
	want := []string{
		"table1", "fig2a", "fig2b", "fig3", "fig4", "combined",
		"abl-pexerr", "abl-abort", "abl-mlf", "abl-m", "abl-hetm", "abl-hot",
		"abl-relflex", "ext-as", "ext-adiv", "ext-preempt", "diag-stages",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %q not registered: %v", id, err)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID(nope) should fail")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	def := DefaultOptions()
	if o.Horizon != def.Horizon || o.Reps != def.Reps || o.Seed != def.Seed ||
		o.TargetCI != def.TargetCI || o.MaxReps != def.MaxReps || o.Parallelism != def.Parallelism {
		t.Errorf("withDefaults() = %+v, want %+v", o, def)
	}
	o = Options{Horizon: 123, Reps: 4, Seed: 9}.withDefaults()
	if o.Horizon != 123 || o.Reps != 4 || o.Seed != 9 {
		t.Errorf("withDefaults clobbered explicit values: %+v", o)
	}
}

func TestAdaptiveReplicationTargetsCI(t *testing.T) {
	// With a loose target nothing extra runs; with a tight one, more
	// replications shrink the interval (or the MaxReps cap is reached).
	loose, err := ByID("abl-m")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Horizon: 1200, Reps: 2, Seed: 3}
	resBase, err := loose.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tight := base
	tight.TargetCI = 0.5 // half a percentage point
	tight.MaxReps = 6
	resTight, err := loose.Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	var worseCount int
	for ci := range resTight.Figure.Curves {
		for pi := range resTight.Figure.Curves[ci].Points {
			tightHW := resTight.Figure.Curves[ci].Points[pi].HalfCI
			baseHW := resBase.Figure.Curves[ci].Points[pi].HalfCI
			if tightHW > baseHW+1e-9 {
				worseCount++
			}
		}
	}
	if worseCount > 0 {
		t.Errorf("adaptive replication widened %d intervals", worseCount)
	}
}

func TestOptionsMaxRepsDefaults(t *testing.T) {
	o := Options{Reps: 12}.withDefaults()
	if o.MaxReps != 12 {
		t.Errorf("MaxReps = %d, want raised to Reps", o.MaxReps)
	}
	if def := (Options{}).withDefaults(); def.MaxReps != 10 {
		t.Errorf("default MaxReps = %d, want 10", def.MaxReps)
	}
}

func TestTable1(t *testing.T) {
	e, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Earliest Deadline First", "k (# of nodes)", "frac_local", "rel_flex",
		"lambda_local", "lambda_global",
	} {
		if !strings.Contains(res.Notes, want) {
			t.Errorf("table1 notes missing %q", want)
		}
	}
}

func TestFig2bStructure(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figure
	if len(fig.Curves) != 4 {
		t.Fatalf("fig2b has %d curves, want 4 (UD/ED/EQS/EQF)", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if len(c.Points) != 5 {
			t.Errorf("curve %q has %d points, want 5 loads", c.Label, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Errorf("curve %q: MD %v%% out of range", c.Label, p.Y)
			}
		}
	}
	if _, ok := res.Figure.YAt("UD", 0.5); !ok {
		t.Error("UD curve missing load 0.5 point")
	}
}

func TestFig3And4Structure(t *testing.T) {
	tests := []struct {
		id         string
		wantCurves int
		wantPoints int
	}{
		{id: "fig2a", wantCurves: 4, wantPoints: 5},
		{id: "fig3", wantCurves: 4, wantPoints: 5}, // UD/EQF × local/global
		{id: "fig4", wantCurves: 8, wantPoints: 5}, // 4 strategies × 2 classes
		{id: "combined", wantCurves: 8, wantPoints: 3},
		{id: "abl-pexerr", wantCurves: 3, wantPoints: 5},
		{id: "abl-abort", wantCurves: 6, wantPoints: 3},
		{id: "abl-relflex", wantCurves: 2, wantPoints: 5},
		{id: "abl-mlf", wantCurves: 4, wantPoints: 2},
		{id: "abl-m", wantCurves: 2, wantPoints: 4},
		{id: "abl-hetm", wantCurves: 4, wantPoints: 2},
		{id: "abl-hot", wantCurves: 4, wantPoints: 4},
		{id: "ext-as", wantCurves: 2, wantPoints: 4},
		{id: "ext-adiv", wantCurves: 3, wantPoints: 3},
		{id: "ext-preempt", wantCurves: 4, wantPoints: 3},
		{id: "diag-stages", wantCurves: 3, wantPoints: 4}, // UD/ED/EQF × m=4 stages
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(tt.id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(tinyOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Figure.Curves); got != tt.wantCurves {
				t.Fatalf("%s: %d curves, want %d", tt.id, got, tt.wantCurves)
			}
			for _, c := range res.Figure.Curves {
				if len(c.Points) != tt.wantPoints {
					t.Errorf("%s curve %q: %d points, want %d", tt.id, c.Label, len(c.Points), tt.wantPoints)
				}
			}
		})
	}
}

func TestSweepSharesRunsAcrossClassCurves(t *testing.T) {
	// bothClasses must yield identical x grids for the two curves and
	// (trivially) consistent values from the same runs: local and
	// global percentages are both within [0, 100] and come in pairs.
	e, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	loc := res.Figure.Curve("UD local")
	glob := res.Figure.Curve("UD global")
	if loc == nil || glob == nil {
		t.Fatal("expected 'UD local' and 'UD global' curves")
	}
	if len(loc.Points) != len(glob.Points) {
		t.Fatal("class curves have different lengths")
	}
	for i := range loc.Points {
		if loc.Points[i].X != glob.Points[i].X {
			t.Fatal("class curves disagree on x grid")
		}
	}
}

func renderFixture() *stats.Figure {
	return &stats.Figure{
		ID: "fix", Title: "Fixture", XLabel: "load", YLabel: "md (%)",
		Curves: []stats.Curve{
			{Label: "UD", Points: []stats.Point{{X: 0.1, Y: 1.5, HalfCI: 0.2}, {X: 0.5, Y: 40, HalfCI: 1}}},
			{Label: "EQF", Points: []stats.Point{{X: 0.1, Y: 1.2, HalfCI: 0.1}, {X: 0.5, Y: 30, HalfCI: 2}}},
		},
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable(renderFixture())
	for _, want := range []string{"Fixture", "load", "UD", "EQF", "40.00", "30.00", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Errorf("table too short:\n%s", out)
	}
}

func TestRenderTableEmpty(t *testing.T) {
	out := RenderTable(&stats.Figure{Title: "Empty"})
	if !strings.Contains(out, "Empty") {
		t.Error("empty figure should still render its title")
	}
}

func TestRenderCSV(t *testing.T) {
	out := RenderCSV(renderFixture())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "load,UD,UD ci95,EQF,EQF ci95" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0.5,40,") {
		t.Errorf("csv row = %q", lines[2])
	}
}

func TestRenderCSVEscaping(t *testing.T) {
	f := &stats.Figure{
		XLabel: "a,b",
		Curves: []stats.Curve{{Label: `q"uote`, Points: []stats.Point{{X: 1, Y: 2}}}},
	}
	out := RenderCSV(f)
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"q""uote"`) {
		t.Errorf("csv escaping broken:\n%s", out)
	}
}

func TestRenderJSON(t *testing.T) {
	out, err := RenderJSON(renderFixture())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "fix"`, `"label": "UD"`, `"ci95": 1`, `"x": 0.5`, `"y": 40`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("json output should end with a newline")
	}
}

func TestRenderChart(t *testing.T) {
	out := RenderChart(renderFixture(), 40, 10)
	for _, want := range []string{"Fixture", "o UD", "* EQF", "x: load"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
	// Highest value labels the top axis.
	if !strings.Contains(out, "40.00") {
		t.Errorf("chart missing y-max label:\n%s", out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	out := RenderChart(&stats.Figure{Title: "none"}, 1, 1)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("degenerate chart output:\n%s", out)
	}
	// Single point, zero ranges: must not panic or divide by zero.
	single := &stats.Figure{Curves: []stats.Curve{{Label: "p", Points: []stats.Point{{X: 2, Y: 0}}}}}
	if out := RenderChart(single, 30, 9); !strings.Contains(out, "p") {
		t.Errorf("single-point chart output:\n%s", out)
	}
}
