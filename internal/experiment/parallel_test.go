package experiment

import (
	"strings"
	"sync"
	"testing"
)

// TestSweepDeterministicAcrossParallelism renders a small fig2b run
// through RenderCSV at several parallelism levels and requires the bytes
// to be identical: the parallel sweep must be indistinguishable from the
// sequential one in everything but wall-clock time.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) string {
		t.Helper()
		res, err := e.Run(Options{Horizon: 900, Reps: 2, Seed: 13, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return RenderCSV(res.Figure)
	}
	want := render(1)
	if !strings.Contains(want, "\n") || len(strings.Split(want, "\n")) < 3 {
		t.Fatalf("sequential run produced no data:\n%s", want)
	}
	for _, p := range []int{0, 2, 8} {
		if got := render(p); got != want {
			t.Errorf("parallelism %d: CSV diverges from sequential run\nseq:\n%s\npar:\n%s", p, want, got)
		}
	}
}

// TestSweepAdaptiveDeterministicAcrossParallelism covers the adaptive
// TargetCI loop: each cell decides its own replication count, so the
// decision (and the rendered output) must not depend on worker count.
func TestSweepAdaptiveDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive determinism sweep is not short-mode sized")
	}
	e, err := ByID("abl-m")
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) string {
		t.Helper()
		res, err := e.Run(Options{
			Horizon: 700, Reps: 2, Seed: 3,
			TargetCI: 0.5, MaxReps: 4, Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return RenderCSV(res.Figure)
	}
	want := render(1)
	if got := render(8); got != want {
		t.Errorf("adaptive sweep diverges across parallelism\nseq:\n%s\npar:\n%s", want, got)
	}
}

// TestSweepProgressReportsEveryCell checks that the progress hook fires
// once per (x, variant) cell and ends at done == total.
func TestSweepProgressReportsEveryCell(t *testing.T) {
	e, err := ByID("fig2b")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu        sync.Mutex
		calls     int
		lastDone  int
		lastTotal int
	)
	_, err = e.Run(Options{
		Horizon: 500, Reps: 1, Seed: 2, Parallelism: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > lastDone {
				lastDone = done
			}
			lastTotal = total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastTotal == 0 {
		t.Fatalf("progress hook never fired (calls %d, total %d)", calls, lastTotal)
	}
	if calls != lastTotal || lastDone != lastTotal {
		t.Errorf("progress: %d calls, max done %d, total %d; want one call per cell ending at total",
			calls, lastDone, lastTotal)
	}
}

func TestProgressPrinterRendersMonotonically(t *testing.T) {
	var b strings.Builder
	p := ProgressPrinter(&b, "fig2b")
	p(1, 3)
	p(3, 3) // out-of-order completion: 3 lands before 2
	p(2, 3)
	out := b.String()
	if !strings.Contains(out, "fig2b 1/3 cells") || !strings.Contains(out, "fig2b 3/3 cells") {
		t.Errorf("printer output missing meter lines:\n%q", out)
	}
	if strings.Contains(out, "2/3") {
		t.Errorf("printer moved backwards after completion:\n%q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("printer did not finish the line at done == total:\n%q", out)
	}
}

// TestProgressPrinterConcurrentUse hammers one printer from many
// goroutines for the race detector.
func TestProgressPrinterConcurrentUse(t *testing.T) {
	p := ProgressPrinter(&syncWriter{}, "x")
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 1; i <= n; i++ {
		go func(i int) {
			defer wg.Done()
			p(i, n)
		}(i)
	}
	wg.Wait()
}

type syncWriter struct {
	mu sync.Mutex
	n  int
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n += len(p)
	return len(p), nil
}
