package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stats"
)

// RenderTable formats a figure as a fixed-width text table with one row
// per x value and one column per curve (mean ± 95% half-width).
func RenderTable(f *stats.Figure) string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if len(f.Curves) == 0 {
		return b.String()
	}
	xs := f.XValues()

	header := make([]string, 0, len(f.Curves)+1)
	xl := f.XLabel
	if xl == "" {
		xl = "x"
	}
	header = append(header, xl)
	for _, c := range f.Curves {
		header = append(header, c.Label)
	}

	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{trimNum(x)}
		for _, c := range f.Curves {
			cell := "-"
			for _, p := range c.Points {
				if p.X == x {
					if p.HalfCI > 0 {
						cell = fmt.Sprintf("%.2f ±%.2f", p.Y, p.HalfCI)
					} else {
						cell = fmt.Sprintf("%.2f", p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(values: %s)\n", f.YLabel)
	}
	return b.String()
}

// RenderCSV formats a figure as CSV: x, then mean and ci columns per
// curve.
func RenderCSV(f *stats.Figure) string {
	var b strings.Builder
	xl := f.XLabel
	if xl == "" {
		xl = "x"
	}
	b.WriteString(csvEscape(xl))
	for _, c := range f.Curves {
		fmt.Fprintf(&b, ",%s,%s", csvEscape(c.Label), csvEscape(c.Label+" ci95"))
	}
	b.WriteByte('\n')
	for _, x := range f.XValues() {
		b.WriteString(trimNum(x))
		for _, c := range f.Curves {
			found := false
			for _, p := range c.Points {
				if p.X == x {
					fmt.Fprintf(&b, ",%s,%s", trimNum(p.Y), trimNum(p.HalfCI))
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",,")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chartMarkers are assigned to curves in order.
const chartMarkers = "o*+x#@%&e~"

// RenderChart draws a figure as an ASCII scatter chart with a legend.
// Width and height are the plot area in characters; sensible minimums
// are enforced.
func RenderChart(f *stats.Figure, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	xs := f.XValues()
	if len(xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	minY, maxY := 0.0, 0.0
	for _, c := range f.Curves {
		for _, p := range c.Points {
			if p.Y > maxY {
				maxY = p.Y
			}
			if p.Y < minY {
				minY = p.Y
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range f.Curves {
		marker := chartMarkers[ci%len(chartMarkers)]
		for _, p := range c.Points {
			col := int(float64(width-1) * (p.X - minX) / (maxX - minX))
			row := height - 1 - int(float64(height-1)*(p.Y-minY)/(maxY-minY))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = marker
			}
		}
	}
	yTop := fmt.Sprintf("%8.2f", maxY)
	yBot := fmt.Sprintf("%8.2f", minY)
	for i, line := range grid {
		label := strings.Repeat(" ", 8)
		switch i {
		case 0:
			label = yTop
		case height - 1:
			label = yBot
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", 8), width-len(trimNum(maxX)), trimNum(minX), trimNum(maxX))
	if f.XLabel != "" || f.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	}
	for ci, c := range f.Curves {
		fmt.Fprintf(&b, "  %c %s\n", chartMarkers[ci%len(chartMarkers)], c.Label)
	}
	return b.String()
}

// RenderJSON formats a figure as indented JSON for external tooling.
func RenderJSON(f *stats.Figure) (string, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiment: marshal figure %s: %w", f.ID, err)
	}
	return string(data) + "\n", nil
}

// ProgressPrinter returns an Options.Progress callback that renders a
// one-line carriage-return progress meter to w, prefixed with label, and
// finishes the line once the last cell completes. The callback
// serializes concurrent calls and tolerates out-of-order completion
// counts from parallel sweeps (it never moves the meter backwards).
//
// A printer tracks a single sweep: once it has seen done == total it
// stays finished, so construct a fresh printer per experiment run (as
// cmd/sdasim does) rather than sharing one across runs.
func ProgressPrinter(w io.Writer, label string) func(done, total int) {
	var (
		mu   sync.Mutex
		best int
	)
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < best {
			return
		}
		best = done
		fmt.Fprintf(w, "\r%s %d/%d cells", label, done, total)
		if done >= total {
			fmt.Fprintln(w)
		}
	}
}

// trimNum formats a float compactly.
func trimNum(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// csvEscape quotes a CSV field if needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
