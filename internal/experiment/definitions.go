package experiment

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/workload"
)

// registry holds every experiment. Order here is presentation order for
// `sdasim -list`; All() sorts by id.
var registry = []Experiment{
	table1Exp(),
	fig2aExp(),
	fig2bExp(),
	fig3Exp(),
	fig4Exp(),
	combinedExp(),
	ablPexErrExp(),
	ablAbortExp(),
	ablMLFExp(),
	ablSubtasksExp(),
	ablHeteroMExp(),
	ablHotNodeExp(),
	ablRelFlexExp(),
	extArtificialStagesExp(),
	extAdaptiveDivExp(),
	extPreemptExp(),
	diagStagesExp(),
}

func extPreemptExp() Experiment {
	return Experiment{
		ID:    "ext-preempt",
		Title: "Extension — preemptive EDF nodes (beyond the paper's model)",
		Paper: "Not in the paper (Table 1 fixes non-preemptive service); explores whether preemption shrinks the UD/EQF gap by rescuing urgent subtasks stuck behind long jobs.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "ext-preempt", Title: "Non-preemptive vs preemptive EDF",
				XLabel: "load", YLabel: "global missed deadlines (%)",
			}
			var variants []variant
			for _, ssp := range []string{"UD", "EQF"} {
				for _, preempt := range []bool{false, true} {
					ssp, preempt := ssp, preempt
					name := ssp + " non-preemptive"
					if preempt {
						name = ssp + " preemptive"
					}
					variants = append(variants, globalOnly(name, func(c *system.Config) {
						c.SSP = ssp
						c.Preemptive = preempt
					}))
				}
			}
			fig, err := sweep(o, fig, system.Baseline, []float64{0.3, 0.5, 0.7}, setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func diagStagesExp() Experiment {
	return Experiment{
		ID:    "diag-stages",
		Title: "Diagnostic — per-stage slack and virtual-deadline misses (section 4.2.2)",
		Paper: "Explains Fig. 2: under UD early stages hoard the whole slack while later stages inherit whatever survives the queues; EQS/EQF spread slack evenly, and inheritance makes later stages richer ('the rich get richer').",
		Run: func(o Options) (*Result, error) {
			o = o.withDefaults() // TargetCI/MaxReps are ignored: no adaptive loop here
			fig := &stats.Figure{
				ID: "diag-stages", Title: "Per-stage virtual-deadline misses (load 0.5, m=4)",
				XLabel: "stage (1-based)", YLabel: "virtual-deadline misses (%)",
			}
			// One session Job per SSP strategy, the jobs themselves fanned
			// out like sweep cells (so all ssps*Reps replications can run
			// concurrently, as before the session port); results are
			// merged in rep order so the aggregates stay bit-identical to
			// the sequential path.
			ssps := []string{"UD", "ED", "EQF"}
			runs := make([][]*system.Metrics, len(ssps))
			total := len(ssps) * o.Reps
			sess, release := o.session()
			defer release()
			var done atomic.Int64
			_, err := runner.New(o.Parallelism).RunWorkersContext(o.ctx(), len(ssps), func(_, si int) error {
				cfg := system.Baseline()
				o.applyTo(&cfg, 0)
				cfg.SSP = ssps[si]
				opts := []session.Option{session.WithParallelism(o.Parallelism)}
				if o.Progress != nil {
					progress := o.Progress
					opts = append(opts, session.WithProgress(func(_, _ int) {
						progress(int(done.Add(1)), total)
					}))
				}
				res, err := sess.Run(o.ctx(), session.Job{Config: cfg, Reps: o.Reps}, opts...)
				if err != nil {
					return err
				}
				runs[si] = res.Runs
				return nil
			})
			if err == nil {
				err = o.ctx().Err()
			}
			if err != nil {
				return nil, err
			}
			var notes strings.Builder
			notes.WriteString("mean slack at release (dl_i − ar_i − pex_i), by stage:\n")
			for si, ssp := range ssps {
				var (
					miss  []stats.Ratio
					slack []stats.Welford
				)
				for _, m := range runs[si] {
					for len(miss) < len(m.StageMissByIndex) {
						miss = append(miss, stats.Ratio{})
						slack = append(slack, stats.Welford{})
					}
					for i := range m.StageMissByIndex {
						miss[i].Merge(&m.StageMissByIndex[i])
						slack[i].Merge(&m.StageSlackByIndex[i])
					}
				}
				curve := stats.Curve{Label: ssp}
				fmt.Fprintf(&notes, "  %-4s", ssp)
				for i := range miss {
					curve.Points = append(curve.Points, stats.Point{
						X: float64(i + 1), Y: 100 * miss[i].Value(),
					})
					fmt.Fprintf(&notes, "  stage%d %6.2f", i+1, slack[i].Mean())
				}
				notes.WriteByte('\n')
				fig.Curves = append(fig.Curves, curve)
			}
			return &Result{Figure: fig, Notes: notes.String()}, nil
		},
	}
}

func table1Exp() Experiment {
	return Experiment{
		ID:    "table1",
		Title: "Table 1 — baseline setting",
		Paper: "Parameter listing of the baseline experiment.",
		Run: func(o Options) (*Result, error) {
			cfg := system.Baseline()
			rates, err := cfg.DeriveRates()
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			rows := [][2]string{
				{"Overload Management Policy", "No Abort"},
				{"Local Scheduling Algorithm", "Earliest Deadline First"},
				{"mu_subtask", fmt.Sprintf("%.1f", cfg.MuSubtask)},
				{"mu_local", fmt.Sprintf("%.1f", cfg.MuLocal)},
				{"k (# of nodes)", fmt.Sprintf("%d", cfg.Nodes)},
				{"m (# of subtasks of a global task)", fmt.Sprintf("%d", cfg.M)},
				{"load", fmt.Sprintf("%.2f", cfg.Load)},
				{"frac_local", fmt.Sprintf("%.2f", cfg.FracLocal)},
				{"[Smin, Smax]", fmt.Sprintf("[%.2f, %.2f]", cfg.SlackMin, cfg.SlackMax)},
				{"rel_flex", fmt.Sprintf("%.1f", cfg.RelFlex)},
				{"pex(X)/ex(X)", "1.0"},
				{"derived lambda_local (per node)", fmt.Sprintf("%.4f", rates.LocalPerNode)},
				{"derived lambda_global", fmt.Sprintf("%.4f", rates.Global)},
			}
			for _, r := range rows {
				fmt.Fprintf(&b, "%-36s %s\n", r[0], r[1])
			}
			return &Result{
				Figure: &stats.Figure{ID: "table1", Title: "Table 1 — baseline setting"},
				Notes:  b.String(),
			}, nil
		},
	}
}

func fig2aExp() Experiment {
	return Experiment{
		ID:    "fig2a",
		Title: "Fig. 2a — SSP baseline, local tasks",
		Paper: "MD_local vs load for UD/ED/EQS/EQF: curves nearly coincide (SSP strategy barely affects locals); about 24% at load 0.5.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "fig2a", Title: "Fig. 2a — SSP baseline: local task miss ratio",
				XLabel: "load", YLabel: "missed deadlines (%)",
			}
			var variants []variant
			for _, ssp := range []string{"UD", "ED", "EQS", "EQF"} {
				ssp := ssp
				variants = append(variants, localOnly(ssp, func(c *system.Config) { c.SSP = ssp }))
			}
			fig, err := sweep(o, fig, system.Baseline, loadGrid(), setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func fig2bExp() Experiment {
	return Experiment{
		ID:    "fig2b",
		Title: "Fig. 2b — SSP baseline, global tasks",
		Paper: "MD_global vs load: UD worst (about 40% at load 0.5), ED between UD and EQF, EQS ~ EQF best (about 30%).",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "fig2b", Title: "Fig. 2b — SSP baseline: global task miss ratio",
				XLabel: "load", YLabel: "missed deadlines (%)",
			}
			var variants []variant
			for _, ssp := range []string{"UD", "ED", "EQS", "EQF"} {
				ssp := ssp
				variants = append(variants, globalOnly(ssp, func(c *system.Config) { c.SSP = ssp }))
			}
			fig, err := sweep(o, fig, system.Baseline, loadGrid(), setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func fig3Exp() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Fig. 3 — effect of varying the fraction of local tasks",
		Paper: "At load 0.5, MD_global(UD) rises steeply with frac_local, MD_local(UD) rises mildly, both EQF curves stay nearly flat.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "fig3", Title: "Fig. 3 — varying frac_local (load 0.5)",
				XLabel: "frac_local", YLabel: "missed deadlines (%)",
			}
			variants := []variant{
				bothClasses("UD", func(c *system.Config) { c.SSP = "UD" }),
				bothClasses("EQF", func(c *system.Config) { c.SSP = "EQF" }),
			}
			fracs := []float64{0.1, 0.25, 0.5, 0.75, 0.95}
			fig, err := sweep(o, fig, system.Baseline, fracs,
				func(c *system.Config, x float64) { c.FracLocal = x }, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func fig4Exp() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Fig. 4 — PSP baseline (UD, DIV-1, DIV-2; GF from section 5.3 text)",
		Paper: "Parallel subtasks: UD lets globals miss about 3x as often as locals; DIV-1 pulls the classes together; DIV-2 ~ DIV-1 except at very high load; GF reduces MD_global further.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "fig4", Title: "Fig. 4 — PSP baseline: UD vs DIV-x vs GF",
				XLabel: "load", YLabel: "missed deadlines (%)",
			}
			var variants []variant
			for _, psp := range []string{"UD", "DIV-1", "DIV-2", "GF"} {
				psp := psp
				variants = append(variants, bothClasses(psp, func(c *system.Config) { c.PSP = psp }))
			}
			fig, err := sweep(o, fig, system.PSPBaseline, loadGrid(), setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func combinedExp() Experiment {
	return Experiment{
		ID:    "combined",
		Title: "Section 6 — SSP+PSP on serial-parallel tasks",
		Paper: "UD-UD misses vastly more global than local deadlines; EQF or DIV-1 alone reduce MD_global significantly with a mild MD_local increase; combined they are additive and keep MD_global close to MD_local.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "combined", Title: "Section 6 — mixed tasks [S1 [P1||P2||P3] S2]",
				XLabel: "load", YLabel: "missed deadlines (%)",
			}
			base := func() system.Config {
				cfg := system.Baseline()
				cfg.Shape = workload.MixedShape{
					Stages:   []int{1, 3, 1},
					MeanExec: 1 / cfg.MuSubtask,
					Pex:      workload.PexModel{RelErr: cfg.PexRelErr},
				}
				return cfg
			}
			var variants []variant
			for _, combo := range [][2]string{{"UD", "UD"}, {"UD", "DIV-1"}, {"EQF", "UD"}, {"EQF", "DIV-1"}} {
				combo := combo
				variants = append(variants, bothClasses(combo[0]+"-"+combo[1], func(c *system.Config) {
					c.SSP, c.PSP = combo[0], combo[1]
				}))
			}
			fig, err := sweep(o, fig, base, []float64{0.3, 0.5, 0.7}, setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablPexErrExp() Experiment {
	return Experiment{
		ID:    "abl-pexerr",
		Title: "Ablation — error in execution time predictions (section 4.3)",
		Paper: "Random error in pex does not change the basic conclusions; pex-based strategies degrade gracefully toward UD-like behaviour.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-pexerr", Title: "Prediction error sweep (load 0.5, serial global tasks)",
				XLabel: "relative pex error bound", YLabel: "missed deadlines (%)",
			}
			var variants []variant
			for _, ssp := range []string{"ED", "EQS", "EQF"} {
				ssp := ssp
				variants = append(variants, globalOnly(ssp, func(c *system.Config) { c.SSP = ssp }))
			}
			errs := []float64{0, 0.25, 0.5, 0.75, 1.0}
			fig, err := sweep(o, fig, system.Baseline, errs,
				func(c *system.Config, x float64) { c.PexRelErr = x }, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablAbortExp() Experiment {
	return Experiment{
		ID:    "abl-abort",
		Title: "Ablation — tardy-task abort policy (sections 4.3, 7)",
		Paper: "With tardy abort, GF loses its edge (it needs past-deadline tasks to stay schedulable) while DIV-x remains effective.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-abort", Title: "PSP strategies under tardy-abort policies",
				XLabel: "load", YLabel: "global missed deadlines (%)",
			}
			modes := []struct {
				suffix    string
				configure func(*system.Config)
			}{
				{suffix: " no-abort", configure: func(*system.Config) {}},
				{suffix: " abort", configure: func(c *system.Config) { c.TardyAbort = true }},
				{suffix: " firm-abort", configure: func(c *system.Config) { c.FirmAbort = true }},
			}
			var variants []variant
			for _, psp := range []string{"DIV-1", "GF"} {
				for _, mode := range modes {
					psp, mode := psp, mode
					variants = append(variants, globalOnly(psp+mode.suffix, func(c *system.Config) {
						c.PSP = psp
						mode.configure(c)
					}))
				}
			}
			fig, err := sweep(o, fig, system.PSPBaseline, []float64{0.4, 0.5, 0.6}, setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablMLFExp() Experiment {
	return Experiment{
		ID:    "abl-mlf",
		Title: "Ablation — minimum-laxity-first local scheduler (section 4.3)",
		Paper: "Replacing EDF with MLF does not change the basic conclusions: EQF still beats UD on global tasks.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-mlf", Title: "EDF vs MLF local scheduling",
				XLabel: "load", YLabel: "global missed deadlines (%)",
			}
			var variants []variant
			for _, schedName := range []string{"EDF", "MLF"} {
				for _, ssp := range []string{"UD", "EQF"} {
					schedName, ssp := schedName, ssp
					variants = append(variants, globalOnly(ssp+" "+schedName, func(c *system.Config) {
						c.SSP = ssp
						c.Scheduler = schedPolicy(schedName)
					}))
				}
			}
			fig, err := sweep(o, fig, system.Baseline, []float64{0.3, 0.5}, setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablSubtasksExp() Experiment {
	return Experiment{
		ID:    "abl-m",
		Title: "Ablation — number of subtasks per global task (section 4.3)",
		Paper: "EQF's advantage over UD grows when global tasks have many subtasks.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-m", Title: "Subtask count sweep (load 0.5)",
				XLabel: "m (subtasks per global task)", YLabel: "global missed deadlines (%)",
			}
			variants := []variant{
				globalOnly("UD", func(c *system.Config) { c.SSP = "UD" }),
				globalOnly("EQF", func(c *system.Config) { c.SSP = "EQF" }),
			}
			ms := []float64{2, 4, 6, 8}
			fig, err := sweep(o, fig, system.Baseline, ms,
				func(c *system.Config, x float64) { c.M = int(x) }, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablHeteroMExp() Experiment {
	return Experiment{
		ID:    "abl-hetm",
		Title: "Ablation — heterogeneous subtask counts (section 4.3)",
		Paper: "Global tasks with a random number of subtasks (uniform 2..6) do not change the basic conclusions.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-hetm", Title: "Heterogeneous m ~ U{2..6} vs fixed m = 4",
				XLabel: "load", YLabel: "global missed deadlines (%)",
			}
			hetero := func(c *system.Config) {
				c.Shape = workload.HeteroSerialShape{
					MinM: 2, MaxM: 6,
					MeanExec: 1 / c.MuSubtask,
					Pex:      workload.PexModel{RelErr: c.PexRelErr},
				}
			}
			var variants []variant
			for _, ssp := range []string{"UD", "EQF"} {
				ssp := ssp
				variants = append(variants,
					globalOnly(ssp+" fixed", func(c *system.Config) { c.SSP = ssp }),
					globalOnly(ssp+" hetero", func(c *system.Config) { c.SSP = ssp; hetero(c) }),
				)
			}
			fig, err := sweep(o, fig, system.Baseline, []float64{0.3, 0.5}, setLoad, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablHotNodeExp() Experiment {
	return Experiment{
		ID:    "abl-hot",
		Title: "Ablation — unbalanced local load (section 4.3)",
		Paper: "One node with a higher local task load does not change the basic conclusions.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-hot", Title: "Hot-node sweep (load 0.5; node 0 carries multiplied local load)",
				XLabel: "hot-node multiplier", YLabel: "missed deadlines (%)",
			}
			variants := []variant{
				bothClasses("UD", func(c *system.Config) { c.SSP = "UD" }),
				bothClasses("EQF", func(c *system.Config) { c.SSP = "EQF" }),
			}
			mults := []float64{1, 2, 3, 5}
			fig, err := sweep(o, fig, system.Baseline, mults,
				func(c *system.Config, x float64) {
					m := make([]float64, c.Nodes)
					for i := range m {
						m[i] = 1
					}
					m[0] = x
					c.LocalRateMultipliers = m
				}, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func ablRelFlexExp() Experiment {
	return Experiment{
		ID:    "abl-relflex",
		Title: "Ablation — relative flexibility of global tasks (section 4.3)",
		Paper: "EQF's gains over UD are most significant at moderate slack: too tight and everyone misses, too loose and nobody does; the intermediate range is where a smart SSP policy wins big.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "abl-relflex", Title: "rel_flex sweep (load 0.5, serial global tasks)",
				XLabel: "rel_flex", YLabel: "global missed deadlines (%)",
			}
			variants := []variant{
				globalOnly("UD", func(c *system.Config) { c.SSP = "UD" }),
				globalOnly("EQF", func(c *system.Config) { c.SSP = "EQF" }),
			}
			flex := []float64{0.25, 0.5, 1, 2, 4}
			fig, err := sweep(o, fig, system.Baseline, flex,
				func(c *system.Config, x float64) { c.RelFlex = x }, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func extArtificialStagesExp() Experiment {
	return Experiment{
		ID:    "ext-as",
		Title: "Extension — artificial stages (section 7 future work)",
		Paper: "Proposed, not evaluated, in the paper: damping slack variability by pretending serial tasks have extra stages.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "ext-as", Title: "EQF with artificial stages (load 0.5)",
				XLabel: "artificial stages", YLabel: "missed deadlines (%)",
			}
			variants := []variant{
				bothClasses("EQF-AS", nil),
			}
			extras := []float64{0, 1, 2, 4}
			fig, err := sweep(o, fig, system.Baseline, extras,
				func(c *system.Config, x float64) {
					c.SSP = fmt.Sprintf("EQF-AS%d", int(x))
				}, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

func extAdaptiveDivExp() Experiment {
	return Experiment{
		ID:    "ext-adiv",
		Title: "Extension — adaptive DIV-x (reference [7] direction)",
		Paper: "The paper defers choosing x to [7]; ADIV shrinks x toward 1 as the fan-out grows.",
		Run: func(o Options) (*Result, error) {
			fig := &stats.Figure{
				ID: "ext-adiv", Title: "DIV-1 vs DIV-2 vs ADIV across fan-out (load 0.5)",
				XLabel: "m (parallel branches)", YLabel: "global missed deadlines (%)",
			}
			base := func() system.Config { return system.PSPBaseline() }
			var variants []variant
			for _, psp := range []string{"DIV-1", "DIV-2", "ADIV4"} {
				psp := psp
				variants = append(variants, globalOnly(psp, func(c *system.Config) { c.PSP = psp }))
			}
			ms := []float64{2, 4, 6}
			fig, err := sweep(o, fig, base, ms,
				func(c *system.Config, x float64) {
					c.M = int(x)
					c.Shape = workload.ParallelShape{
						M:        int(x),
						MeanExec: 1 / c.MuSubtask,
						Pex:      workload.PexModel{RelErr: c.PexRelErr},
					}
				}, variants)
			if err != nil {
				return nil, err
			}
			return &Result{Figure: fig}, nil
		},
	}
}

// schedPolicy converts a display name to the sched package policy.
func schedPolicy(name string) sched.Policy {
	return sched.Policy(name)
}
