package experiment

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/system"
)

// ScenarioResult is the outcome of a replicated scenario run: the merged
// time series plus the per-replication whole-run metrics and their
// replication-level miss-percentage estimates.
type ScenarioResult struct {
	// Scenario is the scenario that was run.
	Scenario *scenario.Scenario
	// Series is the time series merged across all replications.
	Series *scenario.Series
	// Runs holds per-replication metrics in seed order (each with its
	// own unmerged Series).
	Runs []*system.Metrics
	// LocalMD and GlobalMD are replication-level estimates of the
	// whole-run miss percentages, as in system.Replication.
	LocalMD  stats.Estimate
	GlobalMD stats.Estimate
}

// RunScenario executes reps independent replications of cfg under the
// scenario with seeds Seed, Seed+1, ... on the PR-1 worker pool
// (parallelism <= 0 uses GOMAXPROCS, 1 forces the sequential path) and
// merges the per-window time series across replications. The fan-out is
// system.RunReplicationsParallel — same seed derivation, same
// trace-forces-sequential rule — so every replication owns its RNG
// substreams and the seed-order merge makes the result, including the
// merged series' CSV bytes, identical at every parallelism level.
func RunScenario(cfg system.Config, sc *scenario.Scenario, reps, parallelism int) (*ScenarioResult, error) {
	if sc == nil {
		return nil, fmt.Errorf("experiment: RunScenario with nil scenario")
	}
	cfg.Scenario = sc
	rep, err := system.RunReplicationsParallel(cfg, reps, parallelism)
	if err != nil {
		return nil, err
	}
	out := &ScenarioResult{
		Scenario: sc,
		Runs:     rep.Runs,
		LocalMD:  rep.LocalMD,
		GlobalMD: rep.GlobalMD,
	}
	out.Series = rep.Runs[0].Series.Clone()
	for _, m := range rep.Runs[1:] {
		if err := out.Series.Merge(m.Series); err != nil {
			return nil, err
		}
	}
	return out, nil
}
