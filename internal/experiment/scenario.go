package experiment

import (
	"context"
	"fmt"

	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/system"
)

// ScenarioResult is the outcome of a replicated scenario run: the merged
// time series plus the per-replication whole-run metrics and their
// replication-level miss-percentage estimates.
type ScenarioResult struct {
	// Scenario is the scenario that was run.
	Scenario *scenario.Scenario
	// Series is the time series merged across all replications.
	Series *scenario.Series
	// Runs holds per-replication metrics in seed order (each with its
	// own unmerged Series).
	Runs []*system.Metrics
	// LocalMD and GlobalMD are replication-level estimates of the
	// whole-run miss percentages, as in system.Replication.
	LocalMD  stats.Estimate
	GlobalMD stats.Estimate
}

// RunScenario executes reps independent replications of cfg under the
// scenario with seeds Seed, Seed+1, ... (parallelism <= 0 uses
// GOMAXPROCS, 1 forces the sequential path) and merges the per-window
// time series across replications. It delegates to the session layer —
// same seed derivation, same trace-forces-sequential rule as the
// pre-session implementation — so every replication owns its RNG
// substreams and the seed-order merge makes the result, including the
// merged series' CSV bytes, identical at every parallelism level.
func RunScenario(cfg system.Config, sc *scenario.Scenario, reps, parallelism int) (*ScenarioResult, error) {
	return RunScenarioWith(context.Background(), nil, cfg, sc, reps,
		session.WithParallelism(parallelism))
}

// RunScenarioWith is RunScenario on an existing session under ctx with
// arbitrary run options; a nil session uses a run-private one.
// Cancellation fails the run with ctx's error — callers that want
// seed-prefix partial results should run the scenario Job through the
// session API directly. This is the one implementation behind
// repro.RunScenario, repro.Session.RunScenario, and the scenario CLI.
func RunScenarioWith(ctx context.Context, sess *session.Session,
	cfg system.Config, sc *scenario.Scenario, reps int, opts ...session.Option) (*ScenarioResult, error) {
	if sc == nil {
		return nil, fmt.Errorf("experiment: RunScenario with nil scenario")
	}
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: reps = %d, want > 0", reps)
	}
	if sess == nil {
		sess = session.New()
		defer sess.Close()
	}
	res, err := sess.Run(ctx, session.Job{Config: cfg, Scenario: sc, Reps: reps}, opts...)
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{
		Scenario: sc,
		Series:   res.Series,
		Runs:     res.Runs,
		LocalMD:  res.LocalMD,
		GlobalMD: res.GlobalMD,
	}, nil
}
