// Package experiment defines one runnable experiment per table and figure
// of the paper's evaluation (and per DESIGN.md ablation), sweeps the
// relevant parameter with replications, and returns figures ready for the
// render functions. The experiment ids match DESIGN.md's experiment
// index: table1, fig2a, fig2b, fig3, fig4, combined, abl-*, ext-*.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
)

// Options scales an experiment run. Zero fields take the defaults of
// DefaultOptions (a laptop-friendly setting; the paper scale is
// Horizon 1e6 with 2 replications).
type Options struct {
	// Horizon is the simulated duration per replication.
	Horizon float64
	// Reps is the number of independent replications per data point.
	Reps int
	// Seed seeds the first replication; later ones use Seed+1, ...
	Seed uint64
	// TargetCI, when positive, keeps adding replications (beyond Reps,
	// up to MaxReps) until every curve's 95% half-width at a data point
	// is at or below this many percentage points — the paper's protocol
	// of reporting ±0.35 pp intervals. Zero disables adaptation.
	TargetCI float64
	// MaxReps caps adaptive replication; zero defaults to 10.
	MaxReps int
	// Parallelism bounds the worker pool fanning (curve, data-point)
	// cells of a sweep out across cores: 0 uses GOMAXPROCS, 1 forces
	// the sequential path. Every cell owns its seed substreams, so
	// results are bit-identical across parallelism levels.
	Parallelism int
	// Progress, when non-nil, is called after each completed sweep cell
	// with the number of finished cells and the total. It may be called
	// concurrently from worker goroutines and must be safe for that;
	// ProgressPrinter returns a suitable implementation.
	Progress func(done, total int)
	// DisablePooling forwards system.Config.DisablePooling to every
	// replication: the pure allocation path, for pool-safety testing and
	// diagnostics. Results are bit-identical either way.
	DisablePooling bool
	// Nodes, when positive, overrides Config.Nodes for every replication
	// (the -nodes flag): the scaling knob for large-topology runs. It is
	// applied before each experiment's own configuration, so experiments
	// that derive node-count-dependent settings (e.g. abl-hot's per-node
	// rate multipliers) adapt; configurations that cannot (a scenario
	// pinned to specific node ids, hand-written multiplier vectors) fail
	// Config.Validate with a descriptive error.
	Nodes int
	// EventQueue forwards system.Config.EventQueue to every replication:
	// "" or "auto" (heap, ladder-promoted at scale), "heap", "ladder".
	// Results are byte-identical across kinds.
	EventQueue sim.QueueKind
	// Context, when non-nil, bounds the run: once it is cancelled no new
	// sweep cell or replication starts and the experiment returns the
	// context's error. Experiments report whole figures only — a
	// cancelled sweep is an error, not a partial artifact (use the
	// session API directly for seed-prefix partial results).
	Context context.Context
	// Session, when non-nil, supplies the warm-workspace run layer the
	// sweep's replication cells execute on, so consecutive experiments
	// issued through one session reuse engines, pools, queues and
	// workload sources. Nil uses a run-private session. Results are
	// bit-identical either way.
	Session *session.Session
}

// ctx returns the bounding context.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// session returns the run session plus a release function for the
// private-session case.
func (o Options) session() (*session.Session, func()) {
	if o.Session != nil {
		return o.Session, func() {}
	}
	s := session.New()
	return s, func() { s.Close() }
}

// applyTo writes the option overrides shared by every experiment into a
// replication's config. rep selects the replication's seed offset.
func (o Options) applyTo(cfg *system.Config, rep int) {
	cfg.Horizon = o.Horizon
	cfg.Seed = o.Seed + uint64(rep)
	cfg.DisablePooling = o.DisablePooling
	cfg.EventQueue = o.EventQueue
	if o.Nodes > 0 {
		cfg.Nodes = o.Nodes
	}
}

// DefaultOptions returns the default experiment scale.
func DefaultOptions() Options {
	return Options{Horizon: 50000, Reps: 2, Seed: 1, MaxReps: 10}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.Horizon <= 0 {
		o.Horizon = def.Horizon
	}
	if o.Reps <= 0 {
		o.Reps = def.Reps
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 10
	}
	if o.MaxReps < o.Reps {
		o.MaxReps = o.Reps
	}
	return o
}

// Result is an experiment outcome: a figure (possibly empty for textual
// artifacts like Table 1) plus free-form notes shown above the rendering.
type Result struct {
	Figure *stats.Figure
	Notes  string
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	// ID is the DESIGN.md experiment id ("fig2b").
	ID string
	// Title describes the artifact ("Fig. 2b — SSP baseline, global").
	Title string
	// Paper summarizes what the paper reports, for EXPERIMENTS.md.
	Paper string
	// Run executes the experiment.
	Run func(Options) (*Result, error)
}

// metric selects which class's miss ratio a curve reports.
type metric func(*system.Metrics) float64

func mdLocal(m *system.Metrics) float64  { return m.MDLocal() }
func mdGlobal(m *system.Metrics) float64 { return m.MDGlobal() }

// curveOut is one curve extracted from a variant's runs.
type curveOut struct {
	label  string
	metric metric
}

// variant is one configuration mutation of a sweep. All of its curves
// share the same simulation runs, so reporting both class metrics costs
// no extra simulation time.
type variant struct {
	configure func(*system.Config)
	curves    []curveOut
}

// globalOnly builds a variant reporting only the global miss ratio.
func globalOnly(label string, configure func(*system.Config)) variant {
	return variant{configure: configure, curves: []curveOut{{label: label, metric: mdGlobal}}}
}

// localOnly builds a variant reporting only the local miss ratio.
func localOnly(label string, configure func(*system.Config)) variant {
	return variant{configure: configure, curves: []curveOut{{label: label, metric: mdLocal}}}
}

// bothClasses builds a variant reporting "<name> local" and
// "<name> global" curves.
func bothClasses(name string, configure func(*system.Config)) variant {
	return variant{configure: configure, curves: []curveOut{
		{label: name + " local", metric: mdLocal},
		{label: name + " global", metric: mdGlobal},
	}}
}

// sweep runs every (x, variant) combination with o.Reps replications and
// assembles the figure's curves. The (x, variant) cells are independent —
// each derives its own seed substreams and owns its run slice — so they
// fan out across o.Parallelism workers; the figure is assembled from the
// per-cell results in sweep order afterwards, which keeps the output
// bit-identical to the sequential path. Each cell's replications execute
// as one session Job on the shared warm-workspace session, and the cell
// fan-out is context-bounded: cancellation stops new cells and fails the
// sweep with the context's error.
func sweep(o Options, fig *stats.Figure, base func() system.Config,
	xs []float64, setX func(*system.Config, float64), variants []variant) (*stats.Figure, error) {
	o = o.withDefaults()
	sess, release := o.session()
	defer release()

	for _, v := range variants {
		for _, c := range v.curves {
			fig.Curves = append(fig.Curves, stats.Curve{Label: c.label})
		}
	}

	// One cell per (x, variant) pair, in x-major sweep order.
	type cell struct {
		x float64
		v variant
	}
	cells := make([]cell, 0, len(xs)*len(variants))
	for _, x := range xs {
		for _, v := range variants {
			cells = append(cells, cell{x: x, v: v})
		}
	}
	results := make([][]*system.Metrics, len(cells))
	var done atomic.Int64
	_, err := runner.New(o.Parallelism).RunWorkersContext(o.ctx(), len(cells), func(_, ci int) error {
		runs, err := runCell(o.ctx(), sess, o, fig.ID, base, cells[ci].x, setX, cells[ci].v)
		if err != nil {
			return err
		}
		results[ci] = runs
		if o.Progress != nil {
			o.Progress(int(done.Add(1)), len(cells))
		}
		return nil
	})
	if err == nil {
		err = o.ctx().Err() // a cancelled sweep is an error, not a partial figure
	}
	if err != nil {
		return nil, err
	}

	for ci := range cells {
		// Cells are x-major, so cells for one x are contiguous and in
		// variant order; recover the curve offset from the variant index.
		vi := ci % len(variants)
		curveIdx := 0
		for _, v := range variants[:vi] {
			curveIdx += len(v.curves)
		}
		runs := results[ci]
		for _, c := range cells[ci].v.curves {
			vals := make([]float64, len(runs))
			for i, m := range runs {
				vals[i] = c.metric(m)
			}
			est := stats.MeanCI(vals)
			fig.Curves[curveIdx].Points = append(fig.Curves[curveIdx].Points, stats.Point{
				X: cells[ci].x, Y: est.Mean, HalfCI: est.HalfCI,
			})
			curveIdx++
		}
	}
	return fig, nil
}

// runCell executes one (x, variant) cell: the initial o.Reps replications
// plus the adaptive TargetCI loop, all as session Jobs (one job for the
// initial batch, one single-replication job per adaptive extension; a
// job's replication i runs with seed Config.Seed + i, which is exactly
// the pre-session per-rep seed derivation). It touches no state outside
// its own run slice, so distinct cells may execute concurrently; the
// session's workspace pool hands each a private warm workspace.
func runCell(ctx context.Context, sess *session.Session, o Options, figID string,
	base func() system.Config, x float64, setX func(*system.Config, float64), v variant) ([]*system.Metrics, error) {
	job := func(firstRep, reps int) ([]*system.Metrics, error) {
		cfg := base()
		o.applyTo(&cfg, firstRep)
		setX(&cfg, x)
		if v.configure != nil {
			v.configure(&cfg)
		}
		res, err := sess.Run(ctx, session.Job{Config: cfg, Reps: reps}, session.WithParallelism(1))
		if err != nil {
			return nil, fmt.Errorf("experiment %s: x=%v: %w", figID, x, err)
		}
		return res.Runs, nil
	}
	runs, err := job(0, o.Reps)
	if err != nil {
		return nil, err
	}
	// Adaptive replication: keep adding seeds until every curve of this
	// variant meets the target half-width (the paper reports ±0.35 pp
	// intervals). Needs at least two runs for a t-interval, hence the
	// o.Reps floor above.
	for o.TargetCI > 0 && len(runs) < o.MaxReps {
		worst := 0.0
		for _, c := range v.curves {
			if hw := halfCI(runs, c.metric); hw > worst {
				worst = hw
			}
		}
		if worst <= o.TargetCI {
			break
		}
		more, err := job(len(runs), 1)
		if err != nil {
			return nil, err
		}
		runs = append(runs, more...)
	}
	return runs, nil
}

// halfCI computes the 95% half-width of a metric across runs.
func halfCI(runs []*system.Metrics, m metric) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = m(r)
	}
	return stats.MeanCI(vals).HalfCI
}

// loadGrid is the x-axis of the load sweeps (paper Figs. 2 and 4).
func loadGrid() []float64 { return []float64{0.1, 0.2, 0.3, 0.4, 0.5} }

// setLoad is the most common x setter.
func setLoad(c *system.Config, x float64) { c.Load = x }

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (try one of %v)", id, IDs())
}

// IDs lists registered experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}
