// Package failpoint is the deterministic fault-injection seam of the
// runtime: named sites compiled permanently into cold paths (frame
// I/O, worker spawn, chunk dispatch, pool acquire) that cost one
// atomic load when nothing is armed, and become error returns, delays,
// hangs, process kills, or frame corruption when a chaos run arms
// them.
//
// Sites are armed by spec — from code (Arm), from the environment
// (REPRO_FAILPOINTS, read at init so re-executed worker processes
// inherit the coordinator's chaos), or from the CLIs' -failpoints
// flag. A spec is a semicolon-separated list:
//
//	seed=42;distrib/worker-loop=kill:p=0.05:max=1;distrib/frame-write=corrupt:p=0.02
//
// Each entry is site=action with optional suffixes:
//
//	error        the site returns ErrInjected
//	hang         the site blocks until Disarm or process exit
//	kill         the process exits immediately (code 7)
//	corrupt      the site corrupts its own payload (frame writers
//	             scribble the frame kind so receivers must reject it)
//	delay(ms)    the site sleeps for the given milliseconds
//	:p=F         trigger probability per evaluation (default 1)
//	:max=N       stop triggering after N hits (default unlimited)
//	:after=N     ignore the first N evaluations (default 0)
//
// Probabilistic triggers draw from one process-wide splitmix64 stream
// seeded by seed= (default 1), so a chaos run is reproducible: the
// same spec in the same process produces the same trigger sequence.
// Worker processes inherit the spec through the environment and each
// seed their own identical stream; they diverge only through the
// differing frame traffic each one sees.
//
// The injected failures are inputs the runtime must already tolerate —
// every recovery path (retry, respawn, hedging, in-process fallback)
// preserves bit-identical merged results — so arming failpoints never
// changes what a run computes, only how it gets there.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable read at init; setting it in a
// coordinator process arms the same spec in every worker process it
// spawns (workers inherit the environment).
const EnvVar = "REPRO_FAILPOINTS"

// ErrInjected is the error returned by sites armed with the error
// action; site errors wrap it, so errors.Is(err, ErrInjected) detects
// any injected failure.
var ErrInjected = errors.New("failpoint: injected error")

// Action is what an armed site does when it triggers.
type Action uint8

const (
	// ActNone: the site is unarmed or did not trigger.
	ActNone Action = iota
	// ActError: Inject returns ErrInjected.
	ActError
	// ActHang: Inject blocks until Disarm or process exit.
	ActHang
	// ActDelay: Inject sleeps for the rule's delay.
	ActDelay
	// ActKill: the process exits immediately.
	ActKill
	// ActCorrupt: Inject reports corrupt=true; the site applies its
	// own corruption (e.g. scribbling a frame header).
	ActCorrupt
)

// rule is one armed site.
type rule struct {
	action Action
	delay  time.Duration
	p      float64 // trigger probability per evaluation
	max    uint64  // hit budget; 0 = unlimited
	after  uint64  // evaluations to skip before triggering

	evals uint64
	hits  uint64
}

var (
	// armed is the zero-overhead gate: every Inject loads it first and
	// returns immediately when false.
	armed atomic.Bool

	mu     sync.Mutex
	rules  map[string]*rule
	rng    uint64 // splitmix64 state, advanced under mu
	hangCh chan struct{}
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: ignoring %s: %v\n", EnvVar, err)
		}
	}
}

// splitmix64 advances the package RNG; mu must be held.
func splitmix64() uint64 {
	rng += 0x9e3779b97f4a7c15
	z := rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Arm parses spec and arms its sites, merging over whatever is already
// armed (seed= resets the RNG stream). An empty spec is a no-op.
func Arm(spec string) error {
	parsed := map[string]*rule{}
	var seed uint64
	var seedSet bool
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: entry %q is not site=action", entry)
		}
		site = strings.TrimSpace(site)
		if site == "seed" {
			s, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad seed %q", rest)
			}
			seed, seedSet = s, true
			continue
		}
		r, err := parseRule(rest)
		if err != nil {
			return fmt.Errorf("failpoint: site %s: %w", site, err)
		}
		parsed[site] = r
	}
	mu.Lock()
	defer mu.Unlock()
	if rules == nil {
		rules = map[string]*rule{}
	}
	if hangCh == nil {
		hangCh = make(chan struct{})
	}
	for site, r := range parsed {
		rules[site] = r
	}
	if seedSet {
		rng = seed
	} else if rng == 0 {
		rng = 1
	}
	if len(rules) > 0 {
		armed.Store(true)
	}
	return nil
}

// parseRule parses "action[:p=F][:max=N][:after=N]".
func parseRule(s string) (*rule, error) {
	parts := strings.Split(s, ":")
	r := &rule{p: 1}
	act := strings.TrimSpace(parts[0])
	switch {
	case act == "error":
		r.action = ActError
	case act == "hang":
		r.action = ActHang
	case act == "kill":
		r.action = ActKill
	case act == "corrupt":
		r.action = ActCorrupt
	case strings.HasPrefix(act, "delay(") && strings.HasSuffix(act, ")"):
		ms, err := strconv.ParseFloat(act[len("delay("):len(act)-1], 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("bad delay %q", act)
		}
		r.action = ActDelay
		r.delay = time.Duration(ms * float64(time.Millisecond))
	default:
		return nil, fmt.Errorf("unknown action %q", act)
	}
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
		if !ok {
			return nil, fmt.Errorf("bad option %q", opt)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("bad probability %q", val)
			}
			r.p = p
		case "max":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad max %q", val)
			}
			r.max = n
		case "after":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad after %q", val)
			}
			r.after = n
		default:
			return nil, fmt.Errorf("unknown option %q", key)
		}
	}
	return r, nil
}

// Disarm clears every armed site, releases hanging sites, and resets
// the RNG stream. It restores the zero-overhead disarmed state.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
	rules = nil
	rng = 0
	if hangCh != nil {
		close(hangCh)
		hangCh = nil
	}
}

// Enabled reports whether any site is armed (one atomic load).
func Enabled() bool { return armed.Load() }

// Hits returns how many times site has triggered.
func Hits(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if r := rules[site]; r != nil {
		return r.hits
	}
	return 0
}

// eval rolls the site's rule; it returns the action to perform (with
// the rule's delay) or ActNone.
func eval(site string) (Action, time.Duration, chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	r := rules[site]
	if r == nil {
		return ActNone, 0, nil
	}
	r.evals++
	if r.evals <= r.after {
		return ActNone, 0, nil
	}
	if r.max > 0 && r.hits >= r.max {
		return ActNone, 0, nil
	}
	if r.p < 1 {
		// Uniform in [0,1) from the top 53 bits of the stream.
		u := float64(splitmix64()>>11) / (1 << 53)
		if u >= r.p {
			return ActNone, 0, nil
		}
	}
	r.hits++
	return r.action, r.delay, hangCh
}

// Inject evaluates site and performs blocking actions itself: delay
// sleeps, hang blocks until Disarm (or process exit), kill exits the
// process with code 7. An error action returns ErrInjected wrapped
// with the site name; a corrupt action returns corrupt=true and the
// caller applies its own site-specific corruption. Disarmed cost: one
// atomic load, zero allocations.
func Inject(site string) (corrupt bool, err error) {
	if !armed.Load() {
		return false, nil
	}
	act, delay, hang := eval(site)
	switch act {
	case ActError:
		return false, fmt.Errorf("%s: %w", site, ErrInjected)
	case ActHang:
		if hang != nil {
			<-hang
		}
		return false, nil
	case ActDelay:
		time.Sleep(delay)
		return false, nil
	case ActKill:
		fmt.Fprintf(os.Stderr, "failpoint: %s: killing process\n", site)
		os.Exit(7)
	case ActCorrupt:
		return true, nil
	}
	return false, nil
}
