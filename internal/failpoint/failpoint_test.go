package failpoint

import (
	"errors"
	"testing"
	"time"
)

// TestDisarmedZeroCost pins the seam's contract: with nothing armed,
// Inject is a single atomic load and performs zero allocations.
func TestDisarmedZeroCost(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() after Disarm")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if c, err := Inject("some/site"); c || err != nil {
			t.Fatal("disarmed site triggered")
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Inject allocates %v per call, want 0", allocs)
	}
}

// TestErrorAction: an armed error site returns ErrInjected wrapped with
// the site name, and respects its hit budget.
func TestErrorAction(t *testing.T) {
	defer Disarm()
	if err := Arm("a/b=error:max=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := Inject("a/b"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if _, err := Inject("a/b"); err != nil {
		t.Fatalf("budget exhausted but still triggering: %v", err)
	}
	if got := Hits("a/b"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if _, err := Inject("other/site"); err != nil {
		t.Fatalf("unarmed site triggered: %v", err)
	}
}

// TestCorruptAndDelay: corrupt reports to the caller; delay sleeps.
func TestCorruptAndDelay(t *testing.T) {
	defer Disarm()
	if err := Arm("w=corrupt;d=delay(30)"); err != nil {
		t.Fatal(err)
	}
	if c, err := Inject("w"); !c || err != nil {
		t.Fatalf("corrupt site: corrupt=%t err=%v", c, err)
	}
	start := time.Now()
	if _, err := Inject("d"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("delay(30) slept only %v", el)
	}
}

// TestAfterSkipsEvaluations: the after option ignores the first N
// evaluations.
func TestAfterSkipsEvaluations(t *testing.T) {
	defer Disarm()
	if err := Arm("s=error:after=3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := Inject("s"); err != nil {
			t.Fatalf("evaluation %d triggered before after=3", i)
		}
	}
	if _, err := Inject("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th evaluation: err = %v, want ErrInjected", err)
	}
}

// TestSeededProbabilityDeterministic: the same seed yields the same
// trigger sequence; a different seed (almost surely) differs.
func TestSeededProbabilityDeterministic(t *testing.T) {
	defer Disarm()
	sequence := func(seed string) []bool {
		Disarm()
		if err := Arm("seed=" + seed + ";p/q=error:p=0.5"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			_, err := Inject("p/q")
			out[i] = err != nil
		}
		return out
	}
	a, b, c := sequence("7"), sequence("7"), sequence("8")
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different trigger sequences")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical 64-long trigger sequences")
	}
	var hits int
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.5 triggered %d/%d times", hits, len(a))
	}
}

// TestHangReleasedByDisarm: a hanging site blocks until Disarm.
func TestHangReleasedByDisarm(t *testing.T) {
	if err := Arm("h=hang"); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		Inject("h")
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("hang site returned before Disarm")
	case <-time.After(50 * time.Millisecond):
	}
	Disarm()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("hang site not released by Disarm")
	}
}

// TestSpecErrors: malformed specs are rejected with diagnostics.
func TestSpecErrors(t *testing.T) {
	defer Disarm()
	for _, spec := range []string{
		"justasite",
		"s=explode",
		"s=delay(x)",
		"s=error:p=1.5",
		"s=error:max=-1",
		"s=error:banana",
		"seed=notanumber",
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	if err := Arm(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
	if err := Arm(" ; "); err != nil {
		t.Errorf("blank entries rejected: %v", err)
	}
}
