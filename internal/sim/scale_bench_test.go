package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkEventCoreScaling isolates the event queue: `pending` resident
// events continuously fire and reschedule themselves a random distance
// into the future (a self-scheduling workload like the simulator's
// arrival and completion streams, with the model costs stripped away).
// The binary heap pays O(log pending) sift chains over an array that
// outgrows the cache; the ladder queue's amortized O(1) schedule/pop
// stays flat, which is the scaling headroom the large-topology path
// buys.
func BenchmarkEventCoreScaling(b *testing.B) {
	for _, pending := range []int{1 << 10, 1 << 15, 1 << 20} {
		for _, kind := range []QueueKind{QueueHeap, QueueLadder} {
			b.Run(fmt.Sprintf("pending=%d/queue=%s", pending, kind), func(b *testing.B) {
				b.ReportAllocs()
				e := NewWithQueue(kind)
				r := rand.New(rand.NewSource(1))
				var cb Callback
				cb = e.Register(func(any) {
					e.MustScheduleCall(r.Float64()*float64(pending), cb, nil)
				})
				for i := 0; i < pending; i++ {
					e.MustScheduleCall(r.Float64()*float64(pending), cb, nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}
