package sim

import (
	"math"
	"math/rand"
	"testing"
)

// fireRec is one observed event execution.
type fireRec struct {
	at  float64
	tag int
}

// crossEngine wraps one engine with recording state for the cross-check
// driver.
type crossEngine struct {
	eng     *Engine
	cb      Callback
	fired   []fireRec
	handles []Event
}

func newCrossEngine(kind QueueKind) *crossEngine {
	c := &crossEngine{eng: NewWithQueue(kind)}
	c.registerCB()
	return c
}

func (c *crossEngine) registerCB() {
	c.cb = c.eng.Register(func(p any) {
		c.fired = append(c.fired, fireRec{at: c.eng.Now(), tag: p.(int)})
	})
}

// crossCheck drives every engine through the same operation stream and
// asserts identical observable behaviour: fire order (time, payload),
// Cancel results (including stale handles after slot reuse), EventTime
// results, and pending counts. ops is consumed byte-wise, so it doubles
// as a fuzz corpus format.
func crossCheck(t *testing.T, ops []byte) {
	t.Helper()
	engines := []*crossEngine{
		newCrossEngine(QueueHeap),
		newCrossEngine(QueueLadder),
		newCrossEngine(QueueAuto),
	}
	names := []string{"heap", "ladder", "auto"}
	tag := 0
	next := func(i int) byte {
		if i >= len(ops) {
			return 0
		}
		return ops[i]
	}
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		switch op % 5 {
		case 0, 1: // schedule: delay from the next two bytes
			delay := float64(next(i+1))/16 + float64(next(i+2))/4096
			i += 2
			tag++
			for _, c := range engines {
				c.handles = append(c.handles, c.eng.MustScheduleCall(delay, c.cb, tag))
			}
		case 2: // cancel a handle (possibly already fired or cancelled)
			if len(engines[0].handles) == 0 {
				continue
			}
			hi := int(next(i+1)) % len(engines[0].handles)
			i++
			r0 := engines[0].eng.Cancel(engines[0].handles[hi])
			for ei := 1; ei < len(engines); ei++ {
				if r := engines[ei].eng.Cancel(engines[ei].handles[hi]); r != r0 {
					t.Fatalf("op %d: Cancel(handle %d) = %v on %s, %v on heap",
						i, hi, r, names[ei], r0)
				}
			}
		case 3: // run a bounded horizon forward
			h := engines[0].eng.Now() + float64(next(i+1))/8
			i++
			for _, c := range engines {
				c.eng.Run(h)
			}
		case 4: // occasionally reset, mostly probe EventTime
			if next(i+1)%7 == 0 {
				for _, c := range engines {
					c.eng.Reset()
					c.fired = c.fired[:0]
					c.handles = c.handles[:0]
					c.registerCB()
				}
				i++
				continue
			}
			if len(engines[0].handles) == 0 {
				continue
			}
			hi := int(next(i+1)) % len(engines[0].handles)
			i++
			t0, ok0 := engines[0].eng.EventTime(engines[0].handles[hi])
			for ei := 1; ei < len(engines); ei++ {
				if tt, ok := engines[ei].eng.EventTime(engines[ei].handles[hi]); tt != t0 || ok != ok0 {
					t.Fatalf("op %d: EventTime(handle %d) = (%v, %v) on %s, (%v, %v) on heap",
						i, hi, tt, ok, names[ei], t0, ok0)
				}
			}
		}
		p0 := engines[0].eng.Pending()
		for ei := 1; ei < len(engines); ei++ {
			if p := engines[ei].eng.Pending(); p != p0 {
				t.Fatalf("op %d: Pending = %d on %s, %d on heap", i, p, names[ei], p0)
			}
		}
	}
	for _, c := range engines {
		c.eng.RunAll()
	}
	for ei := 1; ei < len(engines); ei++ {
		compareFired(t, names[ei], engines[ei].fired, engines[0].fired)
	}
}

func compareFired(t *testing.T, name string, got, want []fireRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s fired %d events, heap fired %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s fire %d = %+v, heap fired %+v", name, i, got[i], want[i])
		}
	}
}

// TestQueueCrossCheckRandom drives the ladder, the heap, and the
// auto-promoting engine with identical random schedule/cancel/Run/Reset
// sequences and requires identical pop order and Cancel/EventTime
// semantics — including Cancel no-ops on stale handles after slot reuse,
// which the stream generates constantly by cancelling old handle
// indices.
func TestQueueCrossCheckRandom(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		ops := make([]byte, 2000)
		r.Read(ops)
		crossCheck(t, ops)
	}
}

// FuzzQueueCrossCheck lets the fuzzer search for operation streams where
// the ladder queue diverges from the reference heap.
func FuzzQueueCrossCheck(f *testing.F) {
	f.Add([]byte{0, 200, 13, 0, 3, 1, 17, 250, 2, 0, 4, 7, 0, 9, 9, 3, 255})
	f.Add([]byte("schedule-cancel-run-reset"))
	seed := make([]byte, 512)
	rand.New(rand.NewSource(99)).Read(seed)
	f.Add(seed)
	// Tier-boundary seeds: clusters of equal and maximally adjacent
	// far-horizon delays force over-tier rebuilds whose endT is bumped a
	// float step past the top bucket edge, then interleave mid-drain
	// schedules at exactly the old maximum — the geometry of the
	// overMax/Nextafter sliver (TestLadderOverMaxSliverCrossCheck).
	var boundary []byte
	for i := 0; i < 96; i++ {
		boundary = append(boundary, 0, 255, 255) // schedule at the far cap
		if i%7 == 0 {
			boundary = append(boundary, 0, 255, 254) // one ulp-ish below it
		}
	}
	boundary = append(boundary, 3, 120) // drain into the rebuilt rung
	for i := 0; i < 24; i++ {
		boundary = append(boundary, 0, 255, 255, 3, 40) // push at the max mid-drain
	}
	f.Add(boundary)
	// Equal-time ties across every tier: schedule, partially run, then
	// re-schedule the same delays so pushes land near, rung, and over at
	// identical timestamps; FIFO (time, seq) order must match the heap.
	var ties []byte
	for i := 0; i < 64; i++ {
		ties = append(ties, 0, 128, 0, 0, 16, 0, 1, 128, 0)
	}
	ties = append(ties, 3, 255, 3, 255)
	for i := 0; i < 64; i++ {
		ties = append(ties, 0, 128, 0, 3, 2)
	}
	f.Add(ties)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		crossCheck(t, ops)
	})
}

// TestLadderBulkOrder pushes a large batch of far-future events (forcing
// rung builds, spreads, and rebuilds) and checks exact (time, seq) pop
// order against the heap.
func TestLadderBulkOrder(t *testing.T) {
	const n = 20000
	r := rand.New(rand.NewSource(7))
	heap := newCrossEngine(QueueHeap)
	lad := newCrossEngine(QueueLadder)
	for i := 0; i < n; i++ {
		var d float64
		switch i % 3 {
		case 0:
			d = r.Float64() * 1000 // broad horizon: exercises over + rebuild
		case 1:
			d = r.Float64() // near horizon
		case 2:
			d = float64(r.Intn(50)) // heavy time ties: FIFO order must hold
		}
		tag := i
		heap.eng.MustScheduleCall(d, heap.cb, tag)
		lad.eng.MustScheduleCall(d, lad.cb, tag)
	}
	heap.eng.RunAll()
	lad.eng.RunAll()
	compareFired(t, "ladder", lad.fired, heap.fired)
}

// TestLadderBoundaryWindowPush regresses a routing hole: with evenly
// spaced integer times, rebuild() bumps the rung's endT one float step
// past the top bucket edge, so after the last bucket is consumed the
// drained rung still claims a sliver of time range. Scheduling into
// that sliver (e.g. exactly the previous maximum time) must not panic
// and must still fire in time order.
func TestLadderBoundaryWindowPush(t *testing.T) {
	c := newCrossEngine(QueueLadder)
	const n = 4096
	for i := 0; i < n; i++ {
		c.eng.MustScheduleCall(float64(i), c.cb, i)
	}
	for i := 0; i < n-1; i++ {
		if !c.eng.Step() {
			t.Fatalf("queue empty after %d steps", i)
		}
	}
	// The deepest rung is drained but not yet popped, and its endT sits
	// one float step above the old maximum time: scheduling at exactly
	// that maximum lands in the drained rung's boundary sliver.
	c.eng.MustScheduleCall(float64(n-1)-c.eng.Now(), c.cb, n)
	c.eng.RunAll()
	if len(c.fired) != n+1 {
		t.Fatalf("fired %d events, want %d", len(c.fired), n+1)
	}
	for i := 1; i < len(c.fired); i++ {
		if c.fired[i].at < c.fired[i-1].at {
			t.Fatalf("fire %d at %v before fire %d at %v", i, c.fired[i].at, i-1, c.fired[i-1].at)
		}
	}
}

// TestLadderOverMaxBoundaryCrossCheck pins the far/over-tier boundary at
// rebuild's Nextafter bump. With inexact spans, rebuild lands end ==
// overMax and bumps the rung's endT one float step above the top bucket
// edge, so the top bucket's routing range extends through [bounds[nb],
// endT) — events at exactly overMax live there. The test drains the
// rebuilt rung up to its top bucket and then, mid-drain, schedules fresh
// events at exactly overMax (twice, to exercise FIFO among equal-time
// arrivals crossing the boundary) and one float step below it; the
// ladder's complete fire order must match the reference heap exactly.
//
// Audit note: the consumption boundary for a rung's LAST bucket is endT
// (see advance), because pushRung clamps everything below endT into that
// bucket. Using bounds[nb] there instead would leave nearEnd a step
// short of times the near heap already holds; mid-drain pushes into
// that sliver would route to the strictly-later over tier. With
// round-to-nearest arithmetic and power-of-two bucket counts the sliver
// below overMax is empirically empty (end never undershoots overMax),
// which is why the old boundary never misordered in practice — this
// test plus the endT rule make the ordering structural, not numerical.
func TestLadderOverMaxBoundaryCrossCheck(t *testing.T) {
	// off = 0.1, step = 1/3 makes rebuild's end land exactly on overMax
	// (verified below via the live rung), taking the Nextafter bump.
	const n = 4096
	const off, step = 0.1, 1.0 / 3
	max := off + float64(n-1)*step

	// Probe the rebuilt rung's real geometry and find the trigger: the
	// first event routed at or above the top bucket's lower edge. When it
	// fires, the top bucket has just been transferred into the near tier.
	probe := NewWithQueue(QueueLadder)
	pcb := probe.Register(func(any) {})
	for i := 0; i < n; i++ {
		probe.MustScheduleCall(off+float64(i)*step, pcb, i)
	}
	probe.Step() // forces the over-tier rebuild
	if len(probe.lad.rungs) == 0 {
		t.Fatal("rebuild produced no rung; geometry changed — re-derive this test")
	}
	r := &probe.lad.rungs[0]
	nb := len(r.bkts)
	if r.endT <= r.bounds[nb] {
		t.Fatalf("rebuild endT %v not above top bucket edge %v; the Nextafter path was not taken — re-derive this test", r.endT, r.bounds[nb])
	}
	trigger := -1
	for i := 0; i < n; i++ {
		if off+float64(i)*step >= r.bounds[nb-1] {
			trigger = i
			break
		}
	}
	if trigger < 0 {
		t.Fatal("no event in the top bucket's range")
	}

	below := math.Nextafter(max, math.Inf(-1))
	run := func(kind QueueKind) []fireRec {
		eng := NewWithQueue(kind)
		var fired []fireRec
		done := false
		var cb Callback
		cb = eng.Register(func(p any) {
			fired = append(fired, fireRec{at: eng.Now(), tag: p.(int)})
			if p.(int) == trigger && !done {
				done = true
				now := eng.Now()
				eng.MustScheduleCall(max-now, cb, n)     // exactly overMax
				eng.MustScheduleCall(below-now, cb, n+1) // one float below
				eng.MustScheduleCall(max-now, cb, n+2)   // overMax again: FIFO
			}
		})
		for i := 0; i < n; i++ {
			eng.MustScheduleCall(off+float64(i)*step, cb, i)
		}
		eng.RunAll()
		return fired
	}
	heap, ladder := run(QueueHeap), run(QueueLadder)
	compareFired(t, "ladder", ladder, heap)
	if len(heap) != n+3 {
		t.Fatalf("fired %d events, want %d", len(heap), n+3)
	}
}

// TestLadderPromotion checks that an auto engine actually promotes past
// the threshold and that promotion preserves already-scheduled events.
func TestLadderPromotion(t *testing.T) {
	c := newCrossEngine(QueueAuto)
	if got := c.eng.QueueKind(); got != QueueHeap {
		t.Fatalf("fresh auto engine on %q, want heap", got)
	}
	for i := 0; i <= promoteThreshold; i++ {
		c.eng.MustScheduleCall(float64(i), c.cb, i)
	}
	if got := c.eng.QueueKind(); got != QueueLadder {
		t.Fatalf("auto engine on %q after %d pending events, want ladder",
			got, promoteThreshold+1)
	}
	c.eng.RunAll()
	if len(c.fired) != promoteThreshold+1 {
		t.Fatalf("fired %d events, want %d", len(c.fired), promoteThreshold+1)
	}
	for i, f := range c.fired {
		if f.tag != i {
			t.Fatalf("fire %d has tag %d after promotion, want %d", i, f.tag, i)
		}
	}
	// Reset demotes back to the heap so every run's queue trajectory
	// (and the Stats promotion counter) is history-independent, but the
	// ladder stays cached: the next promotion reuses its arrays.
	c.eng.Reset()
	if got := c.eng.QueueKind(); got != QueueHeap {
		t.Fatalf("auto engine on %q after Reset, want heap", got)
	}
	prevLad := c.eng.ladCache
	if prevLad == nil {
		t.Fatal("Reset dropped the promoted ladder instead of caching it")
	}
	cb := c.eng.Register(func(any) {})
	for i := 0; i <= promoteThreshold; i++ {
		c.eng.MustScheduleCall(float64(i), cb, i)
	}
	if got := c.eng.QueueKind(); got != QueueLadder {
		t.Fatalf("auto engine on %q after re-crossing the threshold, want ladder", got)
	}
	if c.eng.lad != prevLad {
		t.Fatal("re-promotion built a fresh ladder instead of reusing the cache")
	}
}

// TestLadderSteadyStateZeroAlloc pins the allocation invariant for the
// ladder path: once buckets, rungs, and the loc table have grown to
// working size, scheduling, firing, and cancelling allocate nothing.
func TestLadderSteadyStateZeroAlloc(t *testing.T) {
	e := NewWithQueue(QueueLadder)
	cb := e.Register(func(any) {})
	r := rand.New(rand.NewSource(3))
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for j := 0; j < 64; j++ {
				e.MustScheduleCall(r.Float64()*64, cb, nil)
			}
			ev := e.MustScheduleCall(1+r.Float64(), cb, nil)
			e.Cancel(ev)
			e.Run(e.Now() + 16)
		}
		e.RunAll()
	}
	warm(64)

	allocs := testing.AllocsPerRun(200, func() { warm(4) })
	if allocs != 0 {
		t.Fatalf("ladder steady state allocated %v times per run, want 0", allocs)
	}
}
