package sim

import "testing"

// TestStatsCounters drives every counter through its path: schedule,
// fire, cancel, and the pending high-water mark.
func TestStatsCounters(t *testing.T) {
	e := New()
	if (e.Stats() != Stats{}) {
		t.Fatalf("fresh engine has non-zero stats: %+v", e.Stats())
	}
	var evs []Event
	for i := 0; i < 5; i++ {
		ev, err := e.Schedule(float64(i+1), func() {})
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if s := e.Stats(); s.Scheduled != 5 || s.PendingHWM != 5 || s.Fired != 0 || s.Cancelled != 0 {
		t.Fatalf("after 5 schedules: %+v", s)
	}
	if !e.Cancel(evs[4]) {
		t.Fatal("cancel failed")
	}
	if e.Cancel(evs[4]) {
		t.Fatal("double-cancel succeeded")
	}
	e.RunAll()
	s := e.Stats()
	if s.Scheduled != 5 || s.Fired != 4 || s.Cancelled != 1 {
		t.Fatalf("after run: %+v", s)
	}
	if s.PendingHWM != 5 {
		t.Fatalf("HWM should keep its peak: %+v", s)
	}
	if got := s.Scheduled - s.Fired - s.Cancelled; got != 0 {
		t.Fatalf("drained engine still has %d derived-pending", got)
	}
}

// TestStatsHWMDerivation checks the HWM tracks the true pending count
// through interleaved schedule/fire/cancel sequences.
func TestStatsHWMDerivation(t *testing.T) {
	e := New()
	e.MustSchedule(1, func() {
		// At fire time one event is pending (this one popped, one left).
		e.MustSchedule(1, func() {}) // pending 2 again
	})
	ev := e.MustSchedule(2, func() {})
	e.Cancel(ev)
	e.MustSchedule(3, func() {})
	// Timeline of pending: 1, 2, (cancel) 1, 2 -> HWM 2.
	e.RunAll()
	if s := e.Stats(); s.PendingHWM != 2 {
		t.Fatalf("HWM = %d, want 2 (%+v)", s.PendingHWM, s)
	}
}

// TestStatsPromotion checks auto-mode promotion is counted once and a
// pinned queue never promotes.
func TestStatsPromotion(t *testing.T) {
	auto := New()
	for i := 0; i <= promoteThreshold; i++ {
		auto.MustSchedule(float64(i), func() {})
	}
	if s := auto.Stats(); s.Promotions != 1 {
		t.Fatalf("auto promotions = %d, want 1", s.Promotions)
	}
	for _, kind := range []QueueKind{QueueHeap, QueueLadder} {
		e := NewWithQueue(kind)
		for i := 0; i <= promoteThreshold; i++ {
			e.MustSchedule(float64(i), func() {})
		}
		if s := e.Stats(); s.Promotions != 0 {
			t.Fatalf("%s promotions = %d, want 0", kind, s.Promotions)
		}
	}
}

// TestStatsReset checks Reset returns every counter to zero.
func TestStatsReset(t *testing.T) {
	e := New()
	ev := e.MustSchedule(1, func() {})
	e.MustSchedule(2, func() {})
	e.Cancel(ev)
	e.RunAll()
	e.Reset()
	if s := e.Stats(); s != (Stats{}) {
		t.Fatalf("stats survive Reset: %+v", s)
	}
}
