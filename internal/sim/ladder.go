package sim

import "math"

// ladderQueue is a two-level ladder/calendar event queue built for large
// pending-event counts (big topologies), where the binary heap's
// O(log n) sift chains become cache-hostile.
//
// Structure:
//
//   - A small sorted "near" tier (an indexed binary heap) holds every
//     event below the nearEnd boundary and feeds pops directly. It stays
//     small (a transfer batch plus stragglers), so its sifts touch a
//     couple of cache lines.
//   - Bucketed "rungs" hold the near-to-mid future: rung buckets are
//     unsorted slices, so scheduling into them is a bounds computation
//     plus an append — O(1), no comparisons, no sifting. When the near
//     tier drains, the next non-empty bucket of the deepest rung is
//     either moved wholesale into the near heap (small buckets) or
//     spread across a new, finer rung (crowded buckets) — sorting work
//     is deferred until the simulation clock actually approaches the
//     events, and is amortized O(1) per event.
//   - An unsorted "over" tier catches everything beyond the last rung.
//     When the rungs drain, over is re-bucketed across a fresh rung
//     spanning its actual [min, max] time range, with the bucket count
//     scaled to the population (the calendar-queue "resize with n" rule,
//     applied lazily) so transfer batches stay small and cache-resident
//     at any scale.
//
// Determinism: the only ordering decisions are made by the near heap's
// (time, seq) comparison. Equal-time events always meet in the same
// bucket (bucket membership is a pure function of time) or are separated
// only in push order (later pushes carry larger seqs and strictly later
// tiers), so pops are in exactly the same (time, seq) order as the
// reference heap — simulation results are byte-identical.
//
// Tier invariants, maintained by every operation:
//
//  1. Every event in a rung or in over has time >= nearEnd, and every
//     event in near entered with time < the nearEnd in force afterwards
//     (so near's minimum is the global minimum whenever near is
//     non-empty).
//  2. Rung ranges are contiguous and ascending from the deepest rung:
//     rungs[len-1] covers times up to its endT, each shallower rung
//     covers times from the deeper rung's endT, and over holds times at
//     or beyond the shallowest (oldest) rung's endT.
//  3. nearEnd never decreases within a run.
//
// Floating-point rigor: each rung precomputes a monotone boundary array
// (bounds[b] is bucket b's inclusive lower edge) and an exclusive upper
// bound endT. Bucket membership is corrected against bounds, push
// routing compares against endT, and nearEnd advances to
// min(bounds[b+1], endT) — every comparison uses values from the same
// monotone array, so the invariants hold exactly, not just up to
// rounding, no matter how the reciprocal-multiply index estimate rounds.
//
// Each event's location is recorded in the engine's slot table: pos is
// the index within its tier's slice (-1 when absent) and aux packs
// (tier, rung, bucket).
type ladderQueue struct {
	e       *Engine
	near    []event // indexed min-heap by (time, seq)
	nearEnd float64 // far events are all >= nearEnd

	rungs []ladderRung // rungs[len-1] is the deepest (soonest, finest)

	over    []event
	overMin float64
	overMax float64
}

const (
	// ladderBucketTarget is the bucket occupancy a rebuild aims for: the
	// over tier is spread across ~len(over)/target buckets, so transfer
	// batches into the near heap stay small no matter how large the
	// pending set grows.
	ladderBucketTarget = 16
	// ladderMinBuckets / ladderMaxBuckets bound a rung's bucket count:
	// at least enough spread to be worth bucketing at all, at most a
	// bounded slice-header array so empty-bucket scans stay cheap.
	ladderMinBuckets = 128
	ladderMaxBuckets = 16384
	// ladderSpreadBuckets is the bucket count used when re-spreading one
	// crowded bucket across a finer rung.
	ladderSpreadBuckets = 128
	// ladderSpreadMax is the bucket size above which a bucket is spread
	// across a finer rung instead of being pushed into the near heap.
	ladderSpreadMax = 48
	// ladderMaxRungs bounds the refinement depth; a bucket at the
	// bottom is pushed to the near heap regardless of size.
	ladderMaxRungs = 8
)

// aux encoding: tier in bits 0-1, rung in bits 2-5, bucket from bit 6.
const (
	tierNear int32 = iota + 1
	tierRung
	tierOver
)

func packLoc(tier, rung, bucket int32) int32 { return tier | rung<<2 | bucket<<6 }

func locTier(aux int32) int32   { return aux & 3 }
func locRung(aux int32) int32   { return (aux >> 2) & 15 }
func locBucket(aux int32) int32 { return aux >> 6 }

// ladderRung is one bucketed band of the far future. Bucket b holds
// events with bounds[b] <= time < bounds[b+1] (monotone by
// construction); endT is the rung's exclusive upper routing bound. inv
// caches 1/width so bucket selection is a multiply whose estimate is
// then corrected against bounds.
type ladderRung struct {
	start  float64
	inv    float64   // 1 / nominal bucket width
	endT   float64   // exclusive upper bound of the rung's range
	bounds []float64 // len(bkts)+1 monotone bucket edges
	cur    int       // next bucket to consume; buckets below cur are empty
	count  int       // events currently in this rung
	bkts   [][]event
}

func (q *ladderQueue) push(ev event) {
	if ev.time < q.nearEnd {
		q.nearPush(ev)
		return
	}
	// Deepest rung first: rung ranges ascend toward shallower rungs. A
	// drained rung (cur past its last bucket — possible while it waits
	// to be popped, since endT can exceed its top bucket edge by a
	// rounding step) is skipped: the event lands in the next shallower
	// rung's current bucket, which is consumed next, or in over when no
	// rung can take it — both keep pops ordered, because the receiving
	// batch reaches the near heap before the clock reaches the event.
	for j := len(q.rungs) - 1; j >= 0; j-- {
		r := &q.rungs[j]
		if ev.time < r.endT && r.cur < len(r.bkts) {
			q.pushRung(int32(j), ev)
			return
		}
	}
	q.pushOver(ev)
}

// pushRung appends ev to the bucket of rung j whose bounds contain its
// time.
func (q *ladderQueue) pushRung(j int32, ev event) {
	r := &q.rungs[j]
	nb := int32(len(r.bkts))
	b := int32((ev.time - r.start) * r.inv)
	if b > nb-1 {
		b = nb - 1
	}
	if b < int32(r.cur) {
		b = int32(r.cur)
	}
	// Correct the estimate against the monotone bounds; at most a step
	// or two. An event below bucket r.cur's edge (possible when nearEnd
	// was capped by a finer rung's endT) stays in r.cur: that bucket is
	// consumed next, so early delivery there is always ordered.
	for b > int32(r.cur) && ev.time < r.bounds[b] {
		b--
	}
	for b < nb-1 && ev.time >= r.bounds[b+1] {
		b++
	}
	s := &q.e.slots[ev.slot]
	s.aux = packLoc(tierRung, j, b)
	s.pos = int32(len(r.bkts[b]))
	r.bkts[b] = append(r.bkts[b], ev)
	r.count++
}

// pushOver appends ev to the unsorted far-far tier.
func (q *ladderQueue) pushOver(ev event) {
	if len(q.over) == 0 {
		q.overMin, q.overMax = ev.time, ev.time
	} else {
		if ev.time < q.overMin {
			q.overMin = ev.time
		}
		if ev.time > q.overMax {
			q.overMax = ev.time
		}
	}
	s := &q.e.slots[ev.slot]
	s.aux = tierOver
	s.pos = int32(len(q.over))
	q.over = append(q.over, ev)
}

func (q *ladderQueue) pop() (event, bool) {
	for {
		if len(q.near) > 0 {
			ev := q.near[0]
			q.e.slots[ev.slot].pos = -1
			q.nearRemoveAt(0)
			return ev, true
		}
		if !q.advance() {
			return event{}, false
		}
	}
}

func (q *ladderQueue) peek() (float64, bool) {
	for len(q.near) == 0 {
		if !q.advance() {
			return 0, false
		}
	}
	return q.near[0].time, true
}

// advance refills the near tier from the rungs (or rebuilds the rungs
// from over), reporting whether any events remain.
func (q *ladderQueue) advance() bool {
	for len(q.rungs) > 0 {
		j := len(q.rungs) - 1
		r := &q.rungs[j]
		nb := len(r.bkts)
		for r.cur < nb && len(r.bkts[r.cur]) == 0 {
			r.cur++
		}
		if r.cur >= nb || r.count == 0 {
			// Rung exhausted; keep its bucket arrays for reuse.
			q.rungs = q.rungs[:j]
			continue
		}
		b := r.bkts[r.cur]
		ns := r.bounds[r.cur]
		ne := r.endT
		// A rung's last bucket owns the whole tail of its routing range:
		// endT may sit a rounding step (or, after rebuild's Nextafter
		// bump, several representable floats) above the top bucket edge,
		// and pushRung clamps events in [bounds[nb], endT) into that
		// bucket. The consumption boundary must therefore be endT, not
		// bounds[nb] — otherwise nearEnd stops below times the near heap
		// already holds, and a later push into the sliver routes to a
		// strictly later tier and pops out of order.
		if v := r.bounds[r.cur+1]; r.cur+1 < nb && v < ne {
			ne = v
		}
		nw := (ne - ns) / ladderSpreadBuckets
		if len(b) <= ladderSpreadMax || len(q.rungs) >= ladderMaxRungs || !(nw > 0) || ns+nw == ns {
			// Transfer the bucket into the near heap; its upper bound
			// becomes the new near/far boundary. The width guards stop
			// the refinement once a finer rung could no longer separate
			// times (equal-time or denormal-width buckets); the near
			// heap handles an occasional oversized batch just fine.
			for i := range b {
				q.nearPush(b[i])
				b[i] = event{} // release the payload reference
			}
			r.count -= len(b)
			r.bkts[r.cur] = b[:0]
			q.nearEnd = ne
			r.cur++
			return true
		}
		// Crowded bucket: spread it across a finer rung and try again.
		// The child's endT is the parent bucket's own upper edge, so the
		// contiguity invariant is exact by construction.
		nr := q.growRung(ladderSpreadBuckets)
		nr.init(ns, nw, ne)
		for i := range b {
			q.pushRung(int32(len(q.rungs)-1), b[i])
			b[i] = event{}
		}
		r = &q.rungs[j] // growRung may have reallocated q.rungs
		r.count -= len(b)
		r.bkts[r.cur] = b[:0]
		r.cur++
	}
	return q.rebuild()
}

// growRung appends a rung with the given bucket count (reusing a
// previously allocated rung's backing arrays when available) and returns
// it with count/cur zeroed. The caller must init it.
func (q *ladderQueue) growRung(buckets int) *ladderRung {
	n := len(q.rungs)
	if n < cap(q.rungs) {
		q.rungs = q.rungs[:n+1]
	} else {
		q.rungs = append(q.rungs, ladderRung{})
	}
	r := &q.rungs[n]
	r.cur, r.count = 0, 0
	if cap(r.bkts) < buckets {
		bkts := make([][]event, buckets)
		copy(bkts, r.bkts[:cap(r.bkts)])
		r.bkts = bkts
	} else {
		r.bkts = r.bkts[:buckets]
	}
	for i := range r.bkts {
		r.bkts[i] = r.bkts[i][:0]
	}
	return r
}

// init fixes the rung's range [start, endT) and builds the monotone
// bucket-edge array from the nominal width.
func (r *ladderRung) init(start, width, endT float64) {
	nb := len(r.bkts)
	r.start = start
	r.inv = 1 / width
	r.endT = endT
	if cap(r.bounds) < nb+1 {
		r.bounds = make([]float64, nb+1)
	} else {
		r.bounds = r.bounds[:nb+1]
	}
	prev := start
	r.bounds[0] = start
	for i := 1; i <= nb; i++ {
		v := start + float64(i)*width
		if v < prev {
			v = prev // enforce monotonicity under rounding
		}
		r.bounds[i] = v
		prev = v
	}
}

// rebuild turns the over tier into a fresh rung spanning its actual time
// range (or moves it straight to near when it is small or degenerate),
// with the bucket count scaled to the population. Reports whether any
// events remain.
func (q *ladderQueue) rebuild() bool {
	if len(q.over) == 0 {
		return false
	}
	buckets := ladderMinBuckets
	for buckets < ladderMaxBuckets && buckets*ladderBucketTarget < len(q.over) {
		buckets *= 2
	}
	width := (q.overMax - q.overMin) / float64(buckets)
	if len(q.over) <= ladderSpreadMax || !(width > 0) || q.overMin+width == q.overMin {
		for i := range q.over {
			q.nearPush(q.over[i])
			q.over[i] = event{}
		}
		q.over = q.over[:0]
		// Later same-time pushes route to over (time >= nearEnd) with
		// larger seqs and pop after the near tier drains — still FIFO.
		q.nearEnd = q.overMax
		return true
	}
	// endT must lie strictly beyond every held event so the top bucket's
	// membership stays inside the rung's routing range.
	end := q.overMin + width*float64(buckets)
	if end <= q.overMax {
		end = math.Nextafter(q.overMax, math.Inf(1))
	}
	r := q.growRung(buckets)
	r.init(q.overMin, width, end)
	j := int32(len(q.rungs) - 1)
	for i := range q.over {
		q.pushRung(j, q.over[i])
		q.over[i] = event{}
	}
	q.over = q.over[:0]
	return true
}

func (q *ladderQueue) removeSlot(slot int32) bool {
	s := &q.e.slots[slot]
	if s.pos < 0 {
		return false
	}
	idx := s.pos
	switch locTier(s.aux) {
	case tierNear:
		s.pos = -1
		q.nearRemoveAt(idx)
	case tierRung:
		r := &q.rungs[locRung(s.aux)]
		bi := locBucket(s.aux)
		b := r.bkts[bi]
		last := int32(len(b)) - 1
		if idx != last {
			b[idx] = b[last]
			q.e.slots[b[idx].slot].pos = idx
		}
		b[last] = event{}
		r.bkts[bi] = b[:last]
		r.count--
		s.pos = -1
	case tierOver:
		last := int32(len(q.over)) - 1
		if idx != last {
			q.over[idx] = q.over[last]
			q.e.slots[q.over[idx].slot].pos = idx
		}
		q.over[last] = event{}
		q.over = q.over[:last]
		// overMin/overMax may now be conservative; that only widens the
		// next rebuild's span, it never breaks ordering.
		s.pos = -1
	default:
		return false
	}
	return true
}

func (q *ladderQueue) timeOf(slot int32) (float64, bool) {
	s := q.e.slots[slot]
	if s.pos < 0 {
		return 0, false
	}
	switch locTier(s.aux) {
	case tierNear:
		return q.near[s.pos].time, true
	case tierRung:
		return q.rungs[locRung(s.aux)].bkts[locBucket(s.aux)][s.pos].time, true
	case tierOver:
		return q.over[s.pos].time, true
	}
	return 0, false
}

func (q *ladderQueue) size() int {
	n := len(q.near) + len(q.over)
	for i := range q.rungs {
		n += q.rungs[i].count
	}
	return n
}

func (q *ladderQueue) reset() {
	for i := range q.near {
		q.near[i] = event{}
	}
	q.near = q.near[:0]
	q.nearEnd = 0
	for i := range q.rungs {
		r := &q.rungs[i]
		for bi := range r.bkts {
			b := r.bkts[bi]
			for k := range b {
				b[k] = event{}
			}
			r.bkts[bi] = b[:0]
		}
		r.cur, r.count = 0, 0
	}
	q.rungs = q.rungs[:0]
	for i := range q.over {
		q.over[i] = event{}
	}
	q.over = q.over[:0]
}

// The near tier: a plain indexed binary heap over (time, seq), kept
// small by the rung transfers, with positions recorded in the engine's
// slot table.

func (q *ladderQueue) nearPush(ev event) {
	i := int32(len(q.near))
	q.near = append(q.near, ev)
	s := &q.e.slots[ev.slot]
	s.aux = tierNear
	s.pos = i
	q.nearUp(int(i))
}

func (q *ladderQueue) nearRemoveAt(i int32) {
	last := int32(len(q.near)) - 1
	if i != last {
		q.near[i] = q.near[last]
		q.e.slots[q.near[i].slot].pos = i
	}
	q.near[last] = event{}
	q.near = q.near[:last]
	if i < last {
		if !q.nearUp(int(i)) {
			q.nearDown(int(i))
		}
	}
}

func (q *ladderQueue) nearUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&q.near[i], &q.near[parent]) {
			break
		}
		q.nearSwap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (q *ladderQueue) nearDown(i int) {
	n := len(q.near)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && before(&q.near[right], &q.near[left]) {
			least = right
		}
		if !before(&q.near[least], &q.near[i]) {
			return
		}
		q.nearSwap(i, least)
		i = least
	}
}

func (q *ladderQueue) nearSwap(i, j int) {
	q.near[i], q.near[j] = q.near[j], q.near[i]
	q.e.slots[q.near[i].slot].pos = int32(i)
	q.e.slots[q.near[j].slot].pos = int32(j)
}
