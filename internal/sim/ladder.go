package sim

import "math"

// ladderQueue is a two-level ladder/calendar event queue built for large
// pending-event counts (big topologies), where the binary heap's
// O(log n) sift chains become cache-hostile.
//
// Structure:
//
//   - A small sorted "near" tier (an indexed binary heap) holds every
//     event below the nearEnd boundary and feeds pops directly. It stays
//     small (a transfer batch plus stragglers), so its sifts touch a
//     couple of cache lines.
//   - Bucketed "rungs" hold the near-to-mid future: rung buckets are
//     unsorted slices, so scheduling into them is a bounds computation
//     plus an append — O(1), no comparisons, no sifting. When the near
//     tier drains, the next non-empty bucket of the deepest rung is
//     either moved wholesale into the near heap (small buckets) or
//     spread across a new, finer rung (crowded buckets) — sorting work
//     is deferred until the simulation clock actually approaches the
//     events, and is amortized O(1) per event.
//   - An unsorted "over" tier catches everything beyond the last rung.
//     When the rungs drain, over is re-bucketed across a fresh rung
//     spanning its actual [min, max] time range, with the bucket count
//     scaled to the population (the calendar-queue "resize with n" rule,
//     applied lazily) so transfer batches stay small and cache-resident
//     at any scale.
//
// Determinism: the only ordering decisions are made by the near heap's
// (time, seq) comparison. Equal-time events always meet in the same
// bucket (bucket membership is a pure function of time) or are separated
// only in push order (later pushes carry larger seqs and strictly later
// tiers), so pops are in exactly the same (time, seq) order as the
// reference heap — simulation results are byte-identical.
//
// Tier invariants, maintained by every operation:
//
//  1. Every event in a rung or in over has time >= nearEnd, and every
//     event in near entered with time < the nearEnd in force afterwards
//     (so near's minimum is the global minimum whenever near is
//     non-empty).
//  2. Rung ranges are contiguous and ascending from the deepest rung:
//     rungs[len-1] covers times up to its endT, each shallower rung
//     covers times from the deeper rung's endT, and over holds times at
//     or beyond the shallowest (oldest) rung's endT.
//  3. nearEnd never decreases within a run.
//
// Floating-point rigor: each rung precomputes a monotone boundary array
// (bounds[b] is bucket b's inclusive lower edge) and an exclusive upper
// bound endT. Bucket membership is corrected against bounds, push
// routing compares against endT, and nearEnd advances to
// min(bounds[b+1], endT) — every comparison uses values from the same
// monotone array, so the invariants hold exactly, not just up to
// rounding, no matter how the reciprocal-multiply index estimate rounds.
//
// The queue keeps no per-event location index: cancellation is by
// tombstone at the engine layer, so events only ever leave a tier from
// its consumption point. Moving an event between tiers touches nothing
// but the 16-byte records themselves — no slot-table write-backs.
type ladderQueue struct {
	e       *Engine
	near    []event // indexed min-heap by (time, seq)
	nearEnd float64 // far events are all >= nearEnd

	rungs []ladderRung // rungs[len-1] is the deepest (soonest, finest)

	over    []event
	overMin float64
	overMax float64
}

const (
	// ladderBucketTarget is the bucket occupancy a rebuild aims for: the
	// over tier is spread across ~len(over)/target buckets, so transfer
	// batches into the near heap stay small no matter how large the
	// pending set grows.
	ladderBucketTarget = 16
	// ladderMinBuckets / ladderMaxBuckets bound a rung's bucket count:
	// at least enough spread to be worth bucketing at all, at most a
	// bounded slice-header array so empty-bucket scans stay cheap.
	ladderMinBuckets = 128
	ladderMaxBuckets = 16384
	// ladderSpreadBuckets is the bucket count used when re-spreading one
	// crowded bucket across a finer rung.
	ladderSpreadBuckets = 128
	// ladderSpreadMax is the bucket size above which a bucket is spread
	// across a finer rung instead of being pushed into the near heap.
	ladderSpreadMax = 48
	// ladderMaxRungs bounds the refinement depth; a bucket at the
	// bottom is pushed to the near heap regardless of size.
	ladderMaxRungs = 8
)

// ladderRung is one bucketed band of the far future. Bucket b holds
// events with bounds[b] <= time < bounds[b+1] (monotone by
// construction); endT is the rung's exclusive upper routing bound. inv
// caches 1/width so bucket selection is a multiply whose estimate is
// then corrected against bounds.
type ladderRung struct {
	start  float64
	inv    float64   // 1 / nominal bucket width
	endT   float64   // exclusive upper bound of the rung's range
	bounds []float64 // len(bkts)+1 monotone bucket edges
	cur    int       // next bucket to consume; buckets below cur are empty
	count  int       // events currently in this rung
	bkts   [][]event
}

func (q *ladderQueue) push(ev event) {
	if ev.time < q.nearEnd {
		q.nearPush(ev)
		return
	}
	// Deepest rung first: rung ranges ascend toward shallower rungs. A
	// drained rung (cur past its last bucket — possible while it waits
	// to be popped, since endT can exceed its top bucket edge by a
	// rounding step) is skipped: the event lands in the next shallower
	// rung's current bucket, which is consumed next, or in over when no
	// rung can take it — both keep pops ordered, because the receiving
	// batch reaches the near heap before the clock reaches the event.
	for j := len(q.rungs) - 1; j >= 0; j-- {
		r := &q.rungs[j]
		if ev.time < r.endT && r.cur < len(r.bkts) {
			q.pushRung(int32(j), ev)
			return
		}
	}
	q.pushOver(ev)
}

// pushRung appends ev to the bucket of rung j whose bounds contain its
// time.
func (q *ladderQueue) pushRung(j int32, ev event) {
	r := &q.rungs[j]
	nb := int32(len(r.bkts))
	b := int32((ev.time - r.start) * r.inv)
	if b > nb-1 {
		b = nb - 1
	}
	if b < int32(r.cur) {
		b = int32(r.cur)
	}
	// Correct the estimate against the monotone bounds; at most a step
	// or two. An event below bucket r.cur's edge (possible when nearEnd
	// was capped by a finer rung's endT) stays in r.cur: that bucket is
	// consumed next, so early delivery there is always ordered.
	for b > int32(r.cur) && ev.time < r.bounds[b] {
		b--
	}
	for b < nb-1 && ev.time >= r.bounds[b+1] {
		b++
	}
	r.bkts[b] = append(r.bkts[b], ev)
	r.count++
}

// pushOver appends ev to the unsorted far-far tier.
func (q *ladderQueue) pushOver(ev event) {
	if len(q.over) == 0 {
		q.overMin, q.overMax = ev.time, ev.time
	} else {
		if ev.time < q.overMin {
			q.overMin = ev.time
		}
		if ev.time > q.overMax {
			q.overMax = ev.time
		}
	}
	q.over = append(q.over, ev)
}

func (q *ladderQueue) pop() (event, bool) {
	for {
		if len(q.near) > 0 {
			ev := q.near[0]
			q.nearRemoveAt(0)
			return ev, true
		}
		if !q.advance() {
			return event{}, false
		}
	}
}

// peekEvent returns the next event without removing it, refilling the
// near tier as needed.
func (q *ladderQueue) peekEvent() (event, bool) {
	for len(q.near) == 0 {
		if !q.advance() {
			return event{}, false
		}
	}
	return q.near[0], true
}

// advance refills the near tier from the rungs (or rebuilds the rungs
// from over), reporting whether any events remain.
func (q *ladderQueue) advance() bool {
	for len(q.rungs) > 0 {
		j := len(q.rungs) - 1
		r := &q.rungs[j]
		nb := len(r.bkts)
		for r.cur < nb && len(r.bkts[r.cur]) == 0 {
			r.cur++
		}
		if r.cur >= nb || r.count == 0 {
			// Rung exhausted; keep its bucket arrays for reuse.
			q.rungs = q.rungs[:j]
			continue
		}
		b := r.bkts[r.cur]
		ns := r.bounds[r.cur]
		ne := r.endT
		// A rung's last bucket owns the whole tail of its routing range:
		// endT may sit a rounding step (or, after rebuild's Nextafter
		// bump, several representable floats) above the top bucket edge,
		// and pushRung clamps events in [bounds[nb], endT) into that
		// bucket. The consumption boundary must therefore be endT, not
		// bounds[nb] — otherwise nearEnd stops below times the near heap
		// already holds, and a later push into the sliver routes to a
		// strictly later tier and pops out of order.
		if v := r.bounds[r.cur+1]; r.cur+1 < nb && v < ne {
			ne = v
		}
		nw := (ne - ns) / ladderSpreadBuckets
		if len(b) <= ladderSpreadMax || len(q.rungs) >= ladderMaxRungs || !(nw > 0) || ns+nw == ns {
			// Transfer the bucket into the near heap; its upper bound
			// becomes the new near/far boundary. The width guards stop
			// the refinement once a finer rung could no longer separate
			// times (equal-time or denormal-width buckets); the near
			// heap handles an occasional oversized batch just fine.
			for i := range b {
				q.nearPush(b[i])
			}
			r.count -= len(b)
			r.bkts[r.cur] = b[:0]
			q.nearEnd = ne
			r.cur++
			return true
		}
		// Crowded bucket: spread it across a finer rung and try again.
		// The child's endT is the parent bucket's own upper edge, so the
		// contiguity invariant is exact by construction.
		nr := q.growRung(ladderSpreadBuckets)
		nr.init(ns, nw, ne)
		for i := range b {
			q.pushRung(int32(len(q.rungs)-1), b[i])
		}
		r = &q.rungs[j] // growRung may have reallocated q.rungs
		r.count -= len(b)
		r.bkts[r.cur] = b[:0]
		r.cur++
	}
	return q.rebuild()
}

// growRung appends a rung with the given bucket count (reusing a
// previously allocated rung's backing arrays when available) and returns
// it with count/cur zeroed. The caller must init it.
func (q *ladderQueue) growRung(buckets int) *ladderRung {
	n := len(q.rungs)
	if n < cap(q.rungs) {
		q.rungs = q.rungs[:n+1]
	} else {
		q.rungs = append(q.rungs, ladderRung{})
	}
	r := &q.rungs[n]
	r.cur, r.count = 0, 0
	if cap(r.bkts) < buckets {
		bkts := make([][]event, buckets)
		copy(bkts, r.bkts[:cap(r.bkts)])
		r.bkts = bkts
	} else {
		r.bkts = r.bkts[:buckets]
	}
	for i := range r.bkts {
		r.bkts[i] = r.bkts[i][:0]
	}
	return r
}

// init fixes the rung's range [start, endT) and builds the monotone
// bucket-edge array from the nominal width.
func (r *ladderRung) init(start, width, endT float64) {
	nb := len(r.bkts)
	r.start = start
	r.inv = 1 / width
	r.endT = endT
	if cap(r.bounds) < nb+1 {
		r.bounds = make([]float64, nb+1)
	} else {
		r.bounds = r.bounds[:nb+1]
	}
	prev := start
	r.bounds[0] = start
	for i := 1; i <= nb; i++ {
		v := start + float64(i)*width
		if v < prev {
			v = prev // enforce monotonicity under rounding
		}
		r.bounds[i] = v
		prev = v
	}
}

// rebuild turns the over tier into a fresh rung spanning its actual time
// range (or moves it straight to near when it is small or degenerate),
// with the bucket count scaled to the population. Reports whether any
// events remain.
func (q *ladderQueue) rebuild() bool {
	if len(q.over) == 0 {
		return false
	}
	buckets := ladderMinBuckets
	for buckets < ladderMaxBuckets && buckets*ladderBucketTarget < len(q.over) {
		buckets *= 2
	}
	width := (q.overMax - q.overMin) / float64(buckets)
	if len(q.over) <= ladderSpreadMax || !(width > 0) || q.overMin+width == q.overMin {
		for i := range q.over {
			q.nearPush(q.over[i])
		}
		q.over = q.over[:0]
		// Later same-time pushes route to over (time >= nearEnd) with
		// larger seqs and pop after the near tier drains — still FIFO.
		q.nearEnd = q.overMax
		return true
	}
	// endT must lie strictly beyond every held event so the top bucket's
	// membership stays inside the rung's routing range.
	end := q.overMin + width*float64(buckets)
	if end <= q.overMax {
		end = math.Nextafter(q.overMax, math.Inf(1))
	}
	r := q.growRung(buckets)
	r.init(q.overMin, width, end)
	j := int32(len(q.rungs) - 1)
	for i := range q.over {
		q.pushRung(j, q.over[i])
	}
	q.over = q.over[:0]
	return true
}

// timeOf scans the tiers for the pending event occupying slot — a
// diagnostic for EventTime, not a hot path (the queue keeps no
// per-event location index).
func (q *ladderQueue) timeOf(slot int32) (float64, bool) {
	for i := range q.near {
		if q.near[i].slotIdx() == slot {
			return q.near[i].time, true
		}
	}
	for ri := range q.rungs {
		r := &q.rungs[ri]
		for bi := range r.bkts {
			for i := range r.bkts[bi] {
				if r.bkts[bi][i].slotIdx() == slot {
					return r.bkts[bi][i].time, true
				}
			}
		}
	}
	for i := range q.over {
		if q.over[i].slotIdx() == slot {
			return q.over[i].time, true
		}
	}
	return 0, false
}

func (q *ladderQueue) size() int {
	n := len(q.near) + len(q.over)
	for i := range q.rungs {
		n += q.rungs[i].count
	}
	return n
}

// reset drops all events, keeping every tier's capacity. Events hold no
// pointers, so truncation is enough — payload references are released by
// the engine's slot-table reset.
func (q *ladderQueue) reset() {
	q.near = q.near[:0]
	q.nearEnd = 0
	for i := range q.rungs {
		r := &q.rungs[i]
		for bi := range r.bkts {
			r.bkts[bi] = r.bkts[bi][:0]
		}
		r.cur, r.count = 0, 0
	}
	q.rungs = q.rungs[:0]
	q.over = q.over[:0]
}

// The near tier: a plain binary heap over (time, seq), kept small by
// the rung transfers. Sifts swap 16-byte records and touch nothing
// else.

func (q *ladderQueue) nearPush(ev event) {
	q.near = append(q.near, ev)
	q.nearUp(len(q.near) - 1)
}

func (q *ladderQueue) nearRemoveAt(i int32) {
	last := int32(len(q.near)) - 1
	if i != last {
		q.near[i] = q.near[last]
	}
	q.near = q.near[:last]
	if i < last {
		if !q.nearUp(int(i)) {
			q.nearDown(int(i))
		}
	}
}

func (q *ladderQueue) nearUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&q.near[i], &q.near[parent]) {
			break
		}
		q.nearSwap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (q *ladderQueue) nearDown(i int) {
	n := len(q.near)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && before(&q.near[right], &q.near[left]) {
			least = right
		}
		if !before(&q.near[least], &q.near[i]) {
			return
		}
		q.nearSwap(i, least)
		i = least
	}
}

func (q *ladderQueue) nearSwap(i, j int) {
	q.near[i], q.near[j] = q.near[j], q.near[i]
}
