package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		tm := d
		e.MustSchedule(d, func() { got = append(got, tm) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := New()
	var times []float64
	e.MustSchedule(1, func() {
		e.MustSchedule(1, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 1 || times[0] != 2 {
		t.Fatalf("nested schedule fired at %v, want [2]", times)
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	fired := 0
	e.MustSchedule(1, func() { fired++ })
	e.MustSchedule(10, func() { fired++ })
	e.Run(5)
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want clamped to horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// A later Run picks up where the first stopped.
	e.Run(20)
	if fired != 2 {
		t.Fatalf("fired %d events after second run, want 2", fired)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := New()
	e.MustSchedule(5, func() {})
	e.RunAll()
	if _, err := e.At(1, func() {}); !errors.Is(err, ErrEventInPast) {
		t.Fatalf("At(past) error = %v, want ErrEventInPast", err)
	}
	if _, err := e.Schedule(-1, func() {}); !errors.Is(err, ErrEventInPast) {
		t.Fatalf("Schedule(-1) error = %v, want ErrEventInPast", err)
	}
	if _, err := e.Schedule(math.NaN(), func() {}); !errors.Is(err, ErrEventInPast) {
		t.Fatalf("Schedule(NaN) error = %v, want ErrEventInPast", err)
	}
}

func TestMustSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule(-1) did not panic")
		}
	}()
	New().MustSchedule(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.MustSchedule(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(Event{}) {
		t.Fatal("Cancel of the zero handle returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []float64
	var evs []Event
	for _, d := range []float64{4, 2, 6, 1, 5, 3} {
		tm := d
		ev := e.MustSchedule(d, func() { got = append(got, tm) })
		evs = append(evs, ev)
	}
	e.Cancel(evs[0]) // cancel t=4
	e.Cancel(evs[2]) // cancel t=6
	e.RunAll()
	want := []float64{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestStopFromCallback(t *testing.T) {
	e := New()
	fired := 0
	e.MustSchedule(1, func() { fired++; e.Stop() })
	e.MustSchedule(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (Stop should halt the loop)", fired)
	}
	// Stop is not sticky across runs.
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired %d after resuming, want 2", fired)
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.MustSchedule(float64(i), func() {})
	}
	e.RunAll()
	if e.Fired() != 17 {
		t.Fatalf("Fired = %d, want 17", e.Fired())
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := New()
		var fired []float64
		var evs []Event
		for _, d := range delays {
			tm := float64(d % 1000)
			evs = append(evs, e.MustSchedule(tm, func() { fired = append(fired, tm) }))
		}
		cancelled := 0
		for i, ev := range evs {
			if i < len(cancelMask) && cancelMask[i] {
				if e.Cancel(ev) {
					cancelled++
				}
			}
		}
		e.RunAll()
		if len(fired) != len(delays)-cancelled {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegisteredCallbackPayload(t *testing.T) {
	e := New()
	type box struct{ v int }
	var got []int
	cb := e.Register(func(p any) { got = append(got, p.(*box).v) })
	payloads := []*box{{1}, {2}, {3}}
	for i, p := range payloads {
		if _, err := e.ScheduleCall(float64(3-i), cb, p); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payloads fired as %v, want %v", got, want)
		}
	}
}

func TestCancelAfterSlotReuse(t *testing.T) {
	// A handle to a fired event must stay dead even after its slot is
	// recycled by a new event: the generation counter, not the slot
	// index, is the identity.
	e := New()
	cb := e.Register(func(any) {})
	first := e.MustScheduleCall(1, cb, nil)
	e.RunAll() // fires `first`, freeing its slot
	secondFired := false
	e.MustScheduleCall(1, e.Register(func(any) { secondFired = true }), nil)
	if e.Cancel(first) {
		t.Fatal("Cancel of a fired handle returned true after slot reuse")
	}
	e.RunAll()
	if !secondFired {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
}

func TestEventTime(t *testing.T) {
	e := New()
	ev := e.MustSchedule(7, func() {})
	if at, ok := e.EventTime(ev); !ok || at != 7 {
		t.Fatalf("EventTime = (%v, %v), want (7, true)", at, ok)
	}
	e.RunAll()
	if _, ok := e.EventTime(ev); ok {
		t.Fatal("EventTime reported a fired event as pending")
	}
	if _, ok := e.EventTime(Event{}); ok {
		t.Fatal("EventTime reported the zero handle as pending")
	}
}

func TestReset(t *testing.T) {
	e := New()
	stale := e.MustSchedule(5, func() { t.Fatal("event from before Reset fired") })
	e.MustSchedule(1, func() {})
	e.Run(0.5)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("after Reset: Now=%v Pending=%d Fired=%d, want zeros",
			e.Now(), e.Pending(), e.Fired())
	}
	if e.Cancel(stale) {
		t.Fatal("Cancel of a pre-Reset handle returned true")
	}
	fired := 0
	e.MustScheduleCall(2, e.Register(func(any) { fired++ }), nil)
	e.RunAll()
	if fired != 1 || e.Now() != 2 {
		t.Fatalf("after Reset: fired=%d Now=%v, want 1 and 2", fired, e.Now())
	}
}

// TestSteadyStateScheduleZeroAlloc pins the PR's core invariant: once the
// heap and slot arrays have grown to their working size, scheduling,
// firing, and cancelling events allocates nothing.
func TestSteadyStateScheduleZeroAlloc(t *testing.T) {
	e := New()
	var sink *payloadProbe
	cb := e.Register(func(p any) { sink = p.(*payloadProbe) })
	probe := &payloadProbe{}
	// Warm the heap, slot, and free-list capacity.
	for i := 0; i < 256; i++ {
		e.MustScheduleCall(float64(i%16), cb, probe)
	}
	e.RunAll()

	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			e.MustScheduleCall(float64(i%4), cb, probe)
		}
		ev := e.MustScheduleCall(1, cb, probe)
		e.Cancel(ev)
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire/cancel allocated %v times per run, want 0", allocs)
	}
	_ = sink
}

type payloadProbe struct{ n int }

func BenchmarkScheduleAndFire(b *testing.B) {
	e := New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustSchedule(float64(i%64), fn)
		if i%64 == 63 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func BenchmarkScheduleCallAndFire(b *testing.B) {
	b.ReportAllocs()
	e := New()
	cb := e.Register(func(any) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustScheduleCall(float64(i%64), cb, nil)
		if i%64 == 63 {
			e.RunAll()
		}
	}
	e.RunAll()
}
