package sim

import "fmt"

// QueueKind selects the engine's pending-event structure. All kinds pop
// events in exactly the same (time, seq) order, so simulation results are
// byte-identical across kinds; only the constant factors differ.
type QueueKind string

const (
	// QueueAuto starts on the binary heap and promotes the engine to the
	// ladder queue once the pending-event count crosses promoteThreshold
	// (large topologies). Paper-scale runs never promote, so they keep
	// the heap's minimal constant factors. This is the default.
	QueueAuto QueueKind = ""
	// QueueHeap pins the reference binary heap: O(log n) per operation,
	// the implementation every other queue is cross-checked against.
	QueueHeap QueueKind = "heap"
	// QueueLadder pins the two-level ladder queue: a small sorted
	// near-future tier feeding execution plus bucketed far-future rungs
	// that spread lazily, giving O(1) amortized schedule/pop at large
	// pending-event counts.
	QueueLadder QueueKind = "ladder"
)

// promoteThreshold is the pending-event count at which QueueAuto switches
// from the heap to the ladder. Paper-scale systems (k=6: tens of pending
// events) stay far below it; a k>=512 topology crosses it during setup.
const promoteThreshold = 512

// ParseQueueKind validates a queue-kind string ("", "auto", "heap",
// "ladder"), for CLI flags and configuration.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "", "auto":
		return QueueAuto, nil
	case string(QueueHeap):
		return QueueHeap, nil
	case string(QueueLadder):
		return QueueLadder, nil
	default:
		return "", fmt.Errorf("sim: unknown event queue %q (want auto, heap, or ladder)", s)
	}
}

// This file is the reference implementation of the event-queue seam: a
// binary min-heap ordered by (time, seq), implemented directly
// on the engine's fields so the paper-scale hot path compiles to the
// same tight code it had before the seam existed. Cancellation is by
// tombstone at the engine layer, so the heap keeps no per-event
// position index and its sifts swap bare 16-byte records. ladder.go holds the
// large-topology implementation; the engine dispatches between the two
// with a single branch (qPush and friends in engine.go), and the
// cross-check fuzz tests require identical observable behaviour from
// both.

// before reports whether event a fires before event b: earlier time, or
// FIFO order at equal times. Comparing the packed words at equal times
// is exactly the seq comparison: seqs are unique, so the high seq bits
// always decide before the slot bits could matter.
func before(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.packed < b.packed
}

// heapPush inserts an event into the binary heap.
func (e *Engine) heapPush(ev event) {
	e.heap = append(e.heap, ev)
	e.heapUp(len(e.heap) - 1)
}

// heapTimeOf scans for the fire time of the pending event in slot — a
// diagnostic for EventTime, not a hot path.
func (e *Engine) heapTimeOf(slot int32) (float64, bool) {
	for i := range e.heap {
		if e.heap[i].slotIdx() == slot {
			return e.heap[i].time, true
		}
	}
	return 0, false
}

// heapReset drops all events, keeping capacity. Events are pointer-free
// values, so truncation alone releases nothing the GC cares about —
// payload references live in the engine's slot table.
func (e *Engine) heapReset() {
	e.heap = e.heap[:0]
}

// heapRemoveAt deletes the heap element at index i.
func (e *Engine) heapRemoveAt(i int32) {
	last := int32(len(e.heap)) - 1
	if i != last {
		e.heap[i] = e.heap[last]
	}
	e.heap = e.heap[:last]
	if i < last {
		if !e.heapUp(int(i)) {
			e.heapDown(int(i))
		}
	}
}

// heapUp restores the heap property moving index i toward the root;
// reports whether the element moved.
func (e *Engine) heapUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&e.heap[i], &e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// heapDown restores the heap property moving index i toward the leaves.
func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && before(&e.heap[right], &e.heap[left]) {
			least = right
		}
		if !before(&e.heap[least], &e.heap[i]) {
			return
		}
		e.heapSwap(i, least)
		i = least
	}
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
}
