// Package sim implements a deterministic discrete-event simulation engine:
// a simulation clock and a time-ordered event list with FIFO tie-breaking.
// It stands in for the DeNet simulation language the paper's simulator was
// written in (see DESIGN.md section 5): the paper's results depend only on
// the queueing model, which this engine reproduces exactly.
//
// The engine is single-threaded and callback-based. Determinism matters
// more than raw parallelism here: every experiment must be a pure function
// of (configuration, seed) so that results are reproducible and tests can
// assert exact task counts. Events scheduled for the same instant fire in
// scheduling order.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrEventInPast is returned when scheduling an event before the current
// simulation time.
var ErrEventInPast = errors.New("sim: event scheduled in the past")

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	time float64
	seq  uint64 // tie-break: FIFO among equal times
	fn   func()
	pos  int // index in the heap, -1 once removed
}

// Time returns the simulation time the event will fire at.
func (e *Event) Time() float64 { return e.time }

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Engine struct {
	now    float64
	seq    uint64
	heap   []*Event
	fired  uint64
	stoped bool
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far. Useful for
// instrumentation and tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule registers fn to run after delay time units. A negative or NaN
// delay returns ErrEventInPast.
func (e *Engine) Schedule(delay float64, fn func()) (*Event, error) {
	return e.At(e.now+delay, fn)
}

// MustSchedule is Schedule for delays the caller has already validated;
// it panics on a negative or NaN delay, which indicates a model bug.
func (e *Engine) MustSchedule(delay float64, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule(%v): %v", delay, err))
	}
	return ev
}

// At registers fn to run at absolute simulation time t. Scheduling in the
// past (or NaN) returns ErrEventInPast.
func (e *Engine) At(t float64, fn func()) (*Event, error) {
	if math.IsNaN(t) || t < e.now {
		return nil, fmt.Errorf("%w: at %v, now %v", ErrEventInPast, t, e.now)
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	e.push(ev)
	return ev, nil
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.pos < 0 || ev.pos >= len(e.heap) || e.heap[ev.pos] != ev {
		return false
	}
	e.remove(ev.pos)
	ev.pos = -1
	return true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.time
	e.fired++
	ev.fn()
	return true
}

// Run executes events in time order until the event list is empty or the
// next event lies strictly beyond horizon. The clock finishes at the time
// of the last executed event, clamped up to horizon if the list drained
// early, so Now() == horizon after a bounded run.
func (e *Engine) Run(horizon float64) {
	e.stoped = false
	for len(e.heap) > 0 && !e.stoped {
		if e.heap[0].time > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && !e.stoped {
		e.now = horizon
	}
}

// RunAll executes events until none remain or Stop is called.
func (e *Engine) RunAll() {
	e.stoped = false
	for len(e.heap) > 0 && !e.stoped {
		e.Step()
	}
}

// Stop makes the innermost Run/RunAll return after the current event's
// callback completes. It is intended to be called from within a callback.
func (e *Engine) Stop() { e.stoped = true }

// before reports whether event a fires before event b: earlier time, or
// FIFO order at equal times.
func before(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts an event into the binary heap.
func (e *Engine) push(ev *Event) {
	ev.pos = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.pos)
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *Event {
	ev := e.heap[0]
	e.remove(0)
	ev.pos = -1
	return ev
}

// remove deletes the heap element at index i.
func (e *Engine) remove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.heap[i].pos = i
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < len(e.heap) {
		if !e.up(i) {
			e.down(i)
		}
	}
}

// up restores the heap property moving index i toward the root; reports
// whether the element moved.
func (e *Engine) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(e.heap[i], e.heap[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down restores the heap property moving index i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && before(e.heap[right], e.heap[left]) {
			least = right
		}
		if !before(e.heap[least], e.heap[i]) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].pos = i
	e.heap[j].pos = j
}
