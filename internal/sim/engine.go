// Package sim implements a deterministic discrete-event simulation engine:
// a simulation clock and a time-ordered event list with FIFO tie-breaking.
// It stands in for the DeNet simulation language the paper's simulator was
// written in (see DESIGN.md section 5): the paper's results depend only on
// the queueing model, which this engine reproduces exactly.
//
// The engine is single-threaded and callback-based. Determinism matters
// more than raw parallelism here: every experiment must be a pure function
// of (configuration, seed) so that results are reproducible and tests can
// assert exact task counts. Events scheduled for the same instant fire in
// scheduling order.
//
// The implementation is built for paper-scale horizons (millions of events
// per replication): events are stored by value in the heap and recycled
// through an engine-owned free list, so steady-state scheduling performs
// zero heap allocations. Hot callers register a Callback once and schedule
// with a payload word (ScheduleCall) instead of allocating a capturing
// closure per event; the closure-based Schedule/At remain for one-shot and
// test use.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrEventInPast is returned when scheduling an event before the current
// simulation time.
var ErrEventInPast = errors.New("sim: event scheduled in the past")

// Callback identifies a handler registered with Register. Callbacks are
// bound once per simulation entity (a node's completion handler, a
// source's arrival handler) and invoked with the payload passed at
// scheduling time, which removes the per-event closure allocation.
type Callback int32

// Event is a generation-counted handle to a scheduled event, returned by
// the scheduling methods so callers can Cancel before it fires. It is a
// small value, valid only for the engine that issued it. The zero Event is
// not a valid handle; cancelling it is a harmless no-op. Once the event
// fires or is cancelled its slot may be reused, but the generation counter
// makes a stale handle's Cancel a safe no-op rather than a misdirected
// cancellation.
type Event struct {
	slot int32 // slot index + 1; 0 marks the zero (invalid) handle
	gen  uint32
}

// event is the in-heap representation, stored by value.
type event struct {
	time    float64
	seq     uint64 // tie-break: FIFO among equal times
	payload any
	cb      Callback
	slot    int32
}

// slotRec tracks one recyclable event slot: the generation its current
// handle must match and the event's heap index (-1 while the slot is
// idle).
type slotRec struct {
	gen uint32
	pos int32
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Engine struct {
	now     float64
	seq     uint64
	fired   uint64
	stopped bool

	heap      []event
	slots     []slotRec
	freeSlots []int32
	callbacks []func(any)
}

// runClosure is the pre-registered callback backing the closure-based
// scheduling API: the payload is the func() itself.
func runClosure(payload any) { payload.(func())() }

// funcCallback is the reserved Callback id of runClosure.
const funcCallback Callback = 0

// New returns an engine with the clock at zero.
func New() *Engine {
	e := &Engine{}
	e.callbacks = append(e.callbacks, runClosure)
	return e
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, no registered callbacks — while keeping the capacity of
// its internal buffers, so a reused engine reaches steady state without
// re-growing its heap and slot arrays. Handles issued before the reset are
// invalidated.
func (e *Engine) Reset() {
	e.now, e.seq, e.fired, e.stopped = 0, 0, 0, false
	for i := range e.heap {
		e.heap[i] = event{} // release payload references
	}
	e.heap = e.heap[:0]
	e.freeSlots = e.freeSlots[:0]
	for i := range e.slots {
		e.slots[i].gen++ // stale handles from the previous run go dead
		e.slots[i].pos = -1
		e.freeSlots = append(e.freeSlots, int32(i))
	}
	for i := range e.callbacks {
		e.callbacks[i] = nil // release closure references
	}
	e.callbacks = append(e.callbacks[:0], runClosure)
}

// Register binds fn as a reusable event handler and returns its Callback
// id. Registration is meant to happen once per simulation entity at setup
// time; the returned id is then scheduled with ScheduleCall and friends.
func (e *Engine) Register(fn func(payload any)) Callback {
	if fn == nil {
		panic("sim: Register(nil)")
	}
	e.callbacks = append(e.callbacks, fn)
	return Callback(len(e.callbacks) - 1)
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far. Useful for
// instrumentation and tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule registers fn to run after delay time units. A negative or NaN
// delay returns ErrEventInPast. Each call allocates a closure; hot paths
// should use Register + ScheduleCall instead.
func (e *Engine) Schedule(delay float64, fn func()) (Event, error) {
	return e.At(e.now+delay, fn)
}

// MustSchedule is Schedule for delays the caller has already validated;
// it panics on a negative or NaN delay, which indicates a model bug.
func (e *Engine) MustSchedule(delay float64, fn func()) Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule(%v): %v", delay, err))
	}
	return ev
}

// At registers fn to run at absolute simulation time t. Scheduling in the
// past (or NaN) returns ErrEventInPast.
func (e *Engine) At(t float64, fn func()) (Event, error) {
	return e.CallAt(t, funcCallback, fn)
}

// ScheduleCall schedules the registered callback cb to fire with payload
// after delay time units. It performs no heap allocation: the event lives
// by value in the engine's heap and payload is carried as-is (a pointer
// payload does not escape to the heap).
func (e *Engine) ScheduleCall(delay float64, cb Callback, payload any) (Event, error) {
	return e.CallAt(e.now+delay, cb, payload)
}

// MustScheduleCall is ScheduleCall for delays the caller has already
// validated; it panics on a negative or NaN delay.
func (e *Engine) MustScheduleCall(delay float64, cb Callback, payload any) Event {
	ev, err := e.CallAt(e.now+delay, cb, payload)
	if err != nil {
		panic(fmt.Sprintf("sim: MustScheduleCall(%v): %v", delay, err))
	}
	return ev
}

// CallAt schedules the registered callback cb to fire with payload at
// absolute simulation time t. Scheduling in the past (or NaN) returns
// ErrEventInPast; an unregistered cb panics at fire time.
func (e *Engine) CallAt(t float64, cb Callback, payload any) (Event, error) {
	if math.IsNaN(t) || t < e.now {
		return Event{}, fmt.Errorf("%w: at %v, now %v", ErrEventInPast, t, e.now)
	}
	slot := e.takeSlot()
	ev := event{time: t, seq: e.seq, payload: payload, cb: cb, slot: slot}
	e.seq++
	e.push(ev)
	return Event{slot: slot + 1, gen: e.slots[slot].gen}, nil
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op and reports false.
func (e *Engine) Cancel(ev Event) bool {
	i := int(ev.slot) - 1
	if i < 0 || i >= len(e.slots) {
		return false
	}
	s := &e.slots[i]
	if s.gen != ev.gen || s.pos < 0 {
		return false
	}
	pos := s.pos
	e.releaseSlot(int32(i))
	e.remove(pos)
	return true
}

// EventTime returns the simulation time a pending event will fire at, and
// whether the handle still refers to a pending event.
func (e *Engine) EventTime(ev Event) (float64, bool) {
	i := int(ev.slot) - 1
	if i < 0 || i >= len(e.slots) {
		return 0, false
	}
	s := e.slots[i]
	if s.gen != ev.gen || s.pos < 0 {
		return 0, false
	}
	return e.heap[s.pos].time, true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	// Release the slot before invoking so the callback can schedule into
	// it; the generation bump makes the fired event's handle stale.
	e.releaseSlot(ev.slot)
	e.remove(0)
	e.now = ev.time
	e.fired++
	e.callbacks[ev.cb](ev.payload)
	return true
}

// Run executes events in time order until the event list is empty, Stop is
// called, or the next event lies strictly beyond horizon (that event stays
// pending for a later Run). If the list drains before horizon the clock is
// clamped up to exactly horizon, so Now() == horizon after any bounded run
// that was not stopped early.
func (e *Engine) Run(horizon float64) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].time > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && !e.stopped {
		e.now = horizon
	}
}

// RunAll executes events until none remain or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		e.Step()
	}
}

// Stop makes the innermost Run/RunAll return after the current event's
// callback completes. It is intended to be called from within a callback.
func (e *Engine) Stop() { e.stopped = true }

// takeSlot pops a free slot or grows the slot table.
func (e *Engine) takeSlot() int32 {
	if n := len(e.freeSlots); n > 0 {
		slot := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		return slot
	}
	e.slots = append(e.slots, slotRec{pos: -1})
	return int32(len(e.slots) - 1)
}

// releaseSlot retires a slot's current generation and returns it to the
// free list.
func (e *Engine) releaseSlot(slot int32) {
	s := &e.slots[slot]
	s.gen++
	s.pos = -1
	e.freeSlots = append(e.freeSlots, slot)
}

// before reports whether event a fires before event b: earlier time, or
// FIFO order at equal times.
func before(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts an event into the binary heap.
func (e *Engine) push(ev event) {
	i := int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.slots[ev.slot].pos = i
	e.up(int(i))
}

// remove deletes the heap element at index i. The caller has already
// released the element's slot.
func (e *Engine) remove(i int32) {
	last := int32(len(e.heap)) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.slots[e.heap[i].slot].pos = i
	}
	e.heap[last] = event{} // release the payload reference
	e.heap = e.heap[:last]
	if i < last {
		if !e.up(int(i)) {
			e.down(int(i))
		}
	}
}

// up restores the heap property moving index i toward the root; reports
// whether the element moved.
func (e *Engine) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&e.heap[i], &e.heap[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down restores the heap property moving index i toward the leaves.
func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && before(&e.heap[right], &e.heap[left]) {
			least = right
		}
		if !before(&e.heap[least], &e.heap[i]) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slots[e.heap[i].slot].pos = int32(i)
	e.slots[e.heap[j].slot].pos = int32(j)
}
