// Package sim implements a deterministic discrete-event simulation engine:
// a simulation clock and a time-ordered event list with FIFO tie-breaking.
// It stands in for the DeNet simulation language the paper's simulator was
// written in (see DESIGN.md section 5): the paper's results depend only on
// the queueing model, which this engine reproduces exactly.
//
// The engine is single-threaded and callback-based. Determinism matters
// more than raw parallelism here: every experiment must be a pure function
// of (configuration, seed) so that results are reproducible and tests can
// assert exact task counts. Events scheduled for the same instant fire in
// scheduling order.
//
// The implementation is built for paper-scale horizons (millions of events
// per replication) and for large topologies: events are stored by value
// and recycled through an engine-owned free list, so steady-state
// scheduling performs zero heap allocations, and the pending-event
// structure sits behind an eventQueue seam with two implementations that
// pop in exactly the same (time, seq) order — the reference binary heap
// and a two-level ladder queue whose O(1) amortized schedule/pop wins at
// large pending-event counts (see QueueKind). Hot callers register a
// Callback once and schedule with a payload word (ScheduleCall) instead
// of allocating a capturing closure per event; the closure-based
// Schedule/At remain for one-shot and test use.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrEventInPast is returned when scheduling an event before the current
// simulation time.
var ErrEventInPast = errors.New("sim: event scheduled in the past")

// Callback identifies a handler registered with Register. Callbacks are
// bound once per simulation entity (a node's completion handler, a
// source's arrival handler) and invoked with the payload passed at
// scheduling time, which removes the per-event closure allocation.
type Callback int32

// Event is a generation-counted handle to a scheduled event, returned by
// the scheduling methods so callers can Cancel before it fires. It is a
// small value, valid only for the engine that issued it. The zero Event is
// not a valid handle; cancelling it is a harmless no-op. Once the event
// fires or is cancelled its slot may be reused, but the generation counter
// makes a stale handle's Cancel a safe no-op rather than a misdirected
// cancellation.
type Event struct {
	slot int32 // slot index + 1; 0 marks the zero (invalid) handle
	gen  uint32
}

// Event-record packing: the in-queue representation is 16 bytes — the
// fire time plus one word carrying the FIFO sequence number in the high
// bits and the slot index in the low bits. Sequence numbers are unique,
// so comparing packed words orders events exactly like comparing
// sequence numbers; the slot bits never influence the outcome. The
// payload and callback live in the slot table instead of the event, so
// the structures that move events around (heap sifts, ladder rung
// spreads) copy pointer-free 16-byte records and the pending set stays
// cache-resident at large topologies.
const (
	// eventSlotBits is the width of the slot field: up to ~4.2M
	// simultaneously pending events.
	eventSlotBits = 22
	eventSlotMask = 1<<eventSlotBits - 1
	// eventMaxSeq bounds the total events of one run (~4.4e12 — two
	// orders of magnitude beyond a 1M-horizon 65536-node run).
	eventMaxSeq = 1<<(64-eventSlotBits) - 1
)

// event is the in-queue representation, stored by value.
type event struct {
	time   float64
	packed uint64 // seq<<eventSlotBits | slot
}

// slotIdx extracts the event's slot index.
func (ev event) slotIdx() int32 { return int32(ev.packed & eventSlotMask) }

// slotRec tracks one recyclable event slot: the generation its current
// handle must match, the bound callback to fire, and the payload it
// fires with. The payload lives in the record rather than a parallel
// slice on purpose: by fire time the slot's line has long left the
// cache (the slot was written when the event was scheduled, tens of
// thousands of events earlier), so Step pays one cold line for the
// whole record instead of two for slot-plus-payload.
//
// The record deliberately carries no queue-position bookkeeping.
// Cancellation is by tombstone (see Cancel): the cancelled event stays
// in the queue under a dead marker and is discarded when it surfaces,
// so the queues never need to locate an arbitrary slot — and therefore
// never write position updates back to the slot table as events move
// between tiers or sift within a heap. Those writes were one cold
// cache line per event movement at large topologies; removing them is
// worth far more than the tombstones' transient queue residency costs.
type slotRec struct {
	gen     uint32
	cb      Callback
	payload any
	// Pad to 32 bytes so records never straddle cache lines: the fire-
	// time slot read is cold, and an even divisor of the line keeps it
	// to exactly one line per event.
	_ [8]byte
}

// deadCallback marks a tombstoned (cancelled) slot; the queues discard
// its event instead of firing it.
const deadCallback Callback = -1

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with New.
type Engine struct {
	now     float64
	seq     uint64
	fired   uint64
	stopped bool

	// Instrumentation counters, all maintained as plain fields on paths
	// the engine already owns (no atomics, no callbacks): cancelled and
	// promotions count successful Cancels and heap→ladder migrations;
	// pendingHWM tracks the deepest the pending set ever got, derived as
	// seq−fired−cancelled so the ladder's O(rungs) size() stays off the
	// schedule path. Stats() exposes them; Reset zeroes them.
	cancelled  uint64
	promotions uint64
	pendingHWM uint64

	// The active queue is lad when non-nil, the binary heap otherwise;
	// hot paths dispatch with that one branch instead of an interface
	// call. kind is the configured QueueKind (QueueAuto promotes
	// heap -> ladder lazily, see maybePromote). ladCache keeps a
	// promoted-then-Reset auto engine's ladder warm so the next run's
	// promotion reuses its rung arrays instead of reallocating.
	heap     []event
	lad      *ladderQueue
	ladCache *ladderQueue
	kind     QueueKind

	slots     []slotRec
	freeSlots []int32
	callbacks []func(any)
}

// runClosure is the pre-registered callback backing the closure-based
// scheduling API: the payload is the func() itself.
func runClosure(payload any) { payload.(func())() }

// funcCallback is the reserved Callback id of runClosure.
const funcCallback Callback = 0

// New returns an engine with the clock at zero and the default
// (QueueAuto) event queue.
func New() *Engine {
	return NewWithQueue(QueueAuto)
}

// NewWithQueue returns an engine using the given event-queue kind.
// Results are byte-identical across kinds; see QueueKind for the
// performance trade-offs. An unknown kind panics — validate user input
// with ParseQueueKind first.
func NewWithQueue(kind QueueKind) *Engine {
	e := &Engine{}
	e.callbacks = append(e.callbacks, runClosure)
	e.setQueueKind(kind)
	return e
}

// setQueueKind installs the empty queue for kind.
func (e *Engine) setQueueKind(kind QueueKind) {
	switch kind {
	case QueueAuto, QueueHeap:
		e.lad = nil
	case QueueLadder:
		e.lad = &ladderQueue{e: e}
	default:
		panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
	}
	e.kind = kind
}

// QueueKind reports the queue implementation currently in use ("heap" or
// "ladder") — under QueueAuto this flips to "ladder" once the engine
// promotes.
func (e *Engine) QueueKind() QueueKind {
	if e.lad != nil {
		return QueueLadder
	}
	return QueueHeap
}

// maybePromote switches an auto-mode engine from the heap to the ladder
// once the pending count crosses promoteThreshold. The migration moves
// every pending event once; pop order (and therefore every simulation
// result) is unaffected.
func (e *Engine) promote() {
	lad := e.ladCache
	if lad == nil {
		lad = &ladderQueue{e: e}
	}
	e.ladCache = nil
	for i := range e.heap {
		lad.push(e.heap[i])
	}
	e.heap = e.heap[:0]
	e.lad = lad
	e.promotions++
}

// Queue dispatch helpers for the cold paths; the hot paths (CallAt,
// Step, Run) branch on e.lad inline.

func (e *Engine) qTimeOf(slot int32) (float64, bool) {
	if e.lad != nil {
		return e.lad.timeOf(slot)
	}
	return e.heapTimeOf(slot)
}

func (e *Engine) qSize() int {
	if e.lad != nil {
		return e.lad.size()
	}
	return len(e.heap)
}

func (e *Engine) qReset() {
	if e.lad != nil {
		e.lad.reset()
		return
	}
	e.heapReset()
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, no registered callbacks — while keeping the capacity of
// its internal buffers, so a reused engine reaches steady state without
// re-growing its queue and slot arrays. Handles issued before the reset
// are invalidated. A promoted QueueAuto engine demotes back to the heap
// (keeping the ladder cached for the next promotion), so every run's
// queue trajectory — including the Stats promotion counter — is a pure
// function of (configuration, seed), not of what the workspace ran
// before; queue choice never affects results either way.
func (e *Engine) Reset() {
	e.now, e.seq, e.fired, e.stopped = 0, 0, 0, false
	e.cancelled, e.promotions, e.pendingHWM = 0, 0, 0
	e.qReset()
	if e.kind == QueueAuto && e.lad != nil {
		e.ladCache, e.lad = e.lad, nil
	}
	e.freeSlots = e.freeSlots[:0]
	for i := range e.slots {
		e.slots[i].gen++ // stale handles from the previous run go dead
		e.slots[i].cb = 0
		e.slots[i].payload = nil // release payload references
		e.freeSlots = append(e.freeSlots, int32(i))
	}
	for i := range e.callbacks {
		e.callbacks[i] = nil // release closure references
	}
	e.callbacks = append(e.callbacks[:0], runClosure)
}

// Register binds fn as a reusable event handler and returns its Callback
// id. Registration is meant to happen once per simulation entity at setup
// time; the returned id is then scheduled with ScheduleCall and friends.
func (e *Engine) Register(fn func(payload any)) Callback {
	if fn == nil {
		panic("sim: Register(nil)")
	}
	e.callbacks = append(e.callbacks, fn)
	return Callback(len(e.callbacks) - 1)
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far. Useful for
// instrumentation and tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled. Cancelled
// events are not pending, even while their tombstones await discard
// inside the queue structures.
func (e *Engine) Pending() int { return int(e.seq - e.fired - e.cancelled) }

// Stats is a snapshot of the engine's event counters since the last
// Reset. Scheduled−Fired−Cancelled is the pending count; PendingHWM is
// the deepest that count ever got.
type Stats struct {
	Scheduled  uint64
	Fired      uint64
	Cancelled  uint64
	Promotions uint64
	PendingHWM uint64
}

// Stats returns the engine's counter snapshot. It is a pure function of
// the event sequence, so for a full replication it is deterministic in
// (configuration, seed) — with the one caveat that Promotions also
// depends on the configured QueueKind (auto promotes, pinned kinds
// never do), which never affects simulation results.
func (e *Engine) Stats() Stats {
	return Stats{
		Scheduled:  e.seq,
		Fired:      e.fired,
		Cancelled:  e.cancelled,
		Promotions: e.promotions,
		PendingHWM: e.pendingHWM,
	}
}

// Schedule registers fn to run after delay time units. A negative or NaN
// delay returns ErrEventInPast. Each call allocates a closure; hot paths
// should use Register + ScheduleCall instead.
func (e *Engine) Schedule(delay float64, fn func()) (Event, error) {
	return e.At(e.now+delay, fn)
}

// MustSchedule is Schedule for delays the caller has already validated;
// it panics on a negative or NaN delay, which indicates a model bug.
func (e *Engine) MustSchedule(delay float64, fn func()) Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule(%v): %v", delay, err))
	}
	return ev
}

// At registers fn to run at absolute simulation time t. Scheduling in the
// past (or NaN) returns ErrEventInPast.
func (e *Engine) At(t float64, fn func()) (Event, error) {
	return e.CallAt(t, funcCallback, fn)
}

// ScheduleCall schedules the registered callback cb to fire with payload
// after delay time units. It performs no heap allocation: the event lives
// by value in the engine's queue and payload is carried as-is (a pointer
// payload does not escape to the heap).
func (e *Engine) ScheduleCall(delay float64, cb Callback, payload any) (Event, error) {
	return e.CallAt(e.now+delay, cb, payload)
}

// MustScheduleCall is ScheduleCall for delays the caller has already
// validated; it panics on a negative or NaN delay.
func (e *Engine) MustScheduleCall(delay float64, cb Callback, payload any) Event {
	ev, err := e.CallAt(e.now+delay, cb, payload)
	if err != nil {
		panic(fmt.Sprintf("sim: MustScheduleCall(%v): %v", delay, err))
	}
	return ev
}

// CallAt schedules the registered callback cb to fire with payload at
// absolute simulation time t. Scheduling in the past (or NaN) returns
// ErrEventInPast; an unregistered cb panics at fire time.
func (e *Engine) CallAt(t float64, cb Callback, payload any) (Event, error) {
	if math.IsNaN(t) || t < e.now {
		return Event{}, fmt.Errorf("%w: at %v, now %v", ErrEventInPast, t, e.now)
	}
	if e.seq >= eventMaxSeq {
		// ~4.4e12 events: unreachable in practice, but the packed order
		// would silently wrap, so fail loudly instead.
		panic("sim: event sequence space exhausted")
	}
	slot := e.takeSlot()
	s := &e.slots[slot]
	s.cb = cb
	s.payload = payload
	ev := event{time: t, packed: e.seq<<eventSlotBits | uint64(slot)}
	e.seq++
	// seq−fired−cancelled is the pending count after this push; tracking
	// the high-water mark this way costs two ALU ops and a predictable
	// branch instead of a queue-size call (O(rungs) on the ladder).
	if pending := e.seq - e.fired - e.cancelled; pending > e.pendingHWM {
		e.pendingHWM = pending
	}
	if e.lad != nil {
		e.lad.push(ev)
	} else {
		e.heapPush(ev)
		// Auto mode promotes to the ladder once the pending count
		// crosses the large-topology threshold; the migration moves
		// every pending event once and never changes pop order.
		if e.kind == QueueAuto && len(e.heap) > promoteThreshold {
			e.promote()
		}
	}
	return Event{slot: slot + 1, gen: e.slots[slot].gen}, nil
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op and reports false.
//
// The removal is lazy: the slot is tombstoned in place and the queued
// event is discarded when it reaches the head of the queue, never
// fired. Cancel is therefore O(1) regardless of where the event sits,
// and the queues carry no per-event position index. The slot itself is
// recycled when the tombstone surfaces (or at Reset).
func (e *Engine) Cancel(ev Event) bool {
	i := int(ev.slot) - 1
	if i < 0 || i >= len(e.slots) || e.slots[i].gen != ev.gen {
		return false
	}
	s := &e.slots[i]
	s.gen++ // the handle (and any copy of it) is dead from here on
	s.cb = deadCallback
	s.payload = nil
	e.cancelled++
	return true
}

// EventTime returns the simulation time a pending event will fire at, and
// whether the handle still refers to a pending event. It is a
// diagnostic: the queues keep no per-slot position index, so the lookup
// scans the pending set — O(pending), fine for tests and debugging,
// not for hot paths.
func (e *Engine) EventTime(ev Event) (float64, bool) {
	i := int(ev.slot) - 1
	if i < 0 || i >= len(e.slots) || e.slots[i].gen != ev.gen {
		return 0, false
	}
	return e.qTimeOf(int32(i))
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed. Tombstones of cancelled
// events are discarded silently on the way — they advance neither the
// clock nor the fired counter.
func (e *Engine) Step() bool {
	if e.lad != nil {
		return e.stepLadder()
	}
	for len(e.heap) > 0 {
		ev := e.heap[0]
		slot := ev.slotIdx()
		cb := e.slots[slot].cb
		payload := e.slots[slot].payload
		// Release the slot before invoking so the callback can schedule
		// into it; the generation bump makes the fired event's handle
		// stale.
		e.releaseSlot(slot)
		e.heapRemoveAt(0)
		if cb == deadCallback {
			continue
		}
		e.now = ev.time
		e.fired++
		e.callbacks[cb](payload)
		return true
	}
	return false
}

// stepLadder is Step's ladder-queue path.
func (e *Engine) stepLadder() bool {
	for {
		ev, ok := e.lad.pop()
		if !ok {
			return false
		}
		slot := ev.slotIdx()
		cb := e.slots[slot].cb
		payload := e.slots[slot].payload
		e.releaseSlot(slot)
		if cb == deadCallback {
			continue
		}
		e.now = ev.time
		e.fired++
		e.callbacks[cb](payload)
		return true
	}
}

// peekLive returns the next live event's fire time, discarding any
// tombstones of cancelled events that have reached the queue's head.
func (e *Engine) peekLive() (float64, bool) {
	for {
		var (
			ev event
			ok bool
		)
		if e.lad != nil {
			ev, ok = e.lad.peekEvent()
		} else if len(e.heap) > 0 {
			ev, ok = e.heap[0], true
		}
		if !ok {
			return 0, false
		}
		slot := ev.slotIdx()
		if e.slots[slot].cb != deadCallback {
			return ev.time, true
		}
		e.releaseSlot(slot)
		if e.lad != nil {
			e.lad.pop()
		} else {
			e.heapRemoveAt(0)
		}
	}
}

// Run executes events in time order until the event list is empty, Stop is
// called, or the next event lies strictly beyond horizon (that event stays
// pending for a later Run). If the list drains before horizon the clock is
// clamped up to exactly horizon, so Now() == horizon after any bounded run
// that was not stopped early.
func (e *Engine) Run(horizon float64) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peekLive()
		if !ok || next > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && !e.stopped {
		e.now = horizon
	}
}

// RunAll executes events until none remain or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the innermost Run/RunAll return after the current event's
// callback completes. It is intended to be called from within a callback.
func (e *Engine) Stop() { e.stopped = true }

// takeSlot pops a free slot or grows the slot table.
func (e *Engine) takeSlot() int32 {
	if n := len(e.freeSlots); n > 0 {
		slot := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		return slot
	}
	if len(e.slots) > eventSlotMask {
		panic("sim: pending-event slot space exhausted (>4M simultaneously pending)")
	}
	e.slots = append(e.slots, slotRec{})
	return int32(len(e.slots) - 1)
}

// releaseSlot retires a slot's current generation, drops its payload
// reference, and returns it to the free list.
func (e *Engine) releaseSlot(slot int32) {
	s := &e.slots[slot]
	s.gen++
	s.cb = 0
	s.payload = nil
	e.freeSlots = append(e.freeSlots, slot)
}
