package distrib

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/session"
	"repro/internal/system"
)

// chaosRef runs the job on the in-process pool (no chaos) and returns
// the reference result every recovery path must reproduce exactly.
func chaosRef(t *testing.T, job session.Job) *session.Result {
	t.Helper()
	ref := session.New()
	defer ref.Close()
	want, err := ref.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// requireIdentical asserts got reproduces want bit-for-bit, complete.
func requireIdentical(t *testing.T, got, want *session.Result) {
	t.Helper()
	if got.Partial || len(got.Runs) != len(want.Runs) {
		t.Fatalf("partial=%t runs=%d, want complete %d", got.Partial, len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		if g, w := metricsSig(got.Runs[i]), metricsSig(want.Runs[i]); g != w {
			t.Fatalf("rep %d diverged under chaos:\n got %s\nwant %s", i, g, w)
		}
	}
}

// TestChaosDeterminism is the headline robustness claim: with worker
// kills, frame corruption, and frame delays armed (seeded, so the chaos
// is reproducible), a proc-backend run completes and its results are
// bit-identical to the undisturbed in-process pool — every recovery
// path (retry, respawn, fallback) re-derives the same replications from
// the same seeds.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	job := session.Job{Config: cfg, Reps: 10}
	want := chaosRef(t, job)

	spec := "seed=42" +
		";distrib/worker-loop=kill:p=0.2:max=1" +
		";distrib/frame-write=corrupt:p=0.05:max=2" +
		";distrib/frame-read=delay(5):p=0.2:max=5"
	b := testBackend(t, ProcOptions{
		Workers:       3,
		ChunkSize:     2,
		Heartbeat:     100 * time.Millisecond,
		WorkerTimeout: 2 * time.Second,
		RetryBackoff:  10 * time.Millisecond,
		Env:           []string{failpoint.EnvVar + "=" + spec},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	got, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("chaos run failed outright: %v", err)
	}
	requireIdentical(t, got, want)
}

// TestChaosCancellationPrefix cancels mid-run while worker kills are
// armed: the partial result must still be the exact contiguous seed
// prefix of the reference, every returned replication bit-identical.
func TestChaosCancellationPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	const reps = 12
	want := chaosRef(t, session.Job{Config: cfg, Reps: reps})

	spec := "seed=7;distrib/worker-loop=kill:p=0.25:max=1"
	b := testBackend(t, ProcOptions{
		Workers:      2,
		ChunkSize:    2,
		RetryBackoff: 10 * time.Millisecond,
		Env:          []string{failpoint.EnvVar + "=" + spec},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := s.Run(ctx, session.Job{Config: cfg, Reps: reps},
		session.WithProgress(func(done, total int) {
			if done == 3 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want a partial result", res)
	}
	if len(res.Runs) == 0 || len(res.Runs) >= reps {
		t.Fatalf("cancelled chaos run finished %d of %d replications", len(res.Runs), reps)
	}
	for i, m := range res.Runs {
		if res.Seeds[i] != cfg.Seed+uint64(i) {
			t.Fatalf("seed %d = %d: prefix not contiguous from base under chaos", i, res.Seeds[i])
		}
		if g, w := metricsSig(m), metricsSig(want.Runs[i]); g != w {
			t.Fatalf("rep %d of the cancelled chaos prefix diverged:\n got %s\nwant %s", i, g, w)
		}
	}
}

// TestHungWorkerDetected elects one worker to wedge (its main loop
// hangs on the first frame, so its pipe stays open but nothing flows —
// the failure mode a closed-pipe check cannot see) and requires the
// coordinator to miss heartbeats, declare it hung within the liveness
// deadline, reassign its chunk, and finish the run bit-identical.
func TestHungWorkerDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	job := session.Job{Config: cfg, Reps: 8}
	want := chaosRef(t, job)

	lock := filepath.Join(t.TempDir(), "hang.lock")
	b := testBackend(t, ProcOptions{
		Workers:       2,
		ChunkSize:     2,
		Heartbeat:     50 * time.Millisecond,
		WorkerTimeout: 400 * time.Millisecond,
		RetryBackoff:  10 * time.Millisecond,
		HedgeFactor:   -1, // force the liveness path: no hedge may rescue the chunk first
		Env: []string{
			victimLockEnv + "=" + lock,
			victimSpecEnv + "=distrib/worker-loop=hang",
		},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	start := time.Now()
	got, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run did not survive a hung worker: %v", err)
	}
	requireIdentical(t, got, want)
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("victim lock never created — the hang path was not exercised: %v", err)
	}
	ds := b.DistribStats()
	if ds.HeartbeatsMissed == 0 {
		t.Error("no heartbeats recorded missed for a wedged worker")
	}
	if ds.Deaths == 0 {
		t.Error("hung worker was never reaped")
	}
	if ds.Retries == 0 {
		t.Error("the hung worker's chunk was never retried")
	}
	// Liveness, not luck: detection must come from the configured
	// deadline, far below any per-chunk worst case.
	if el := time.Since(start); el > 30*time.Second {
		t.Errorf("hung-worker run took %v", el)
	}
}

// TestRespawnBudgetFallback arms unconditional worker kills: every
// spawned worker (replacements included) dies on its first frame, so
// the circuit breaker must trip and the run must degrade gracefully to
// the in-process pool — visible in DistribStats — with results still
// bit-identical.
func TestRespawnBudgetFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	job := session.Job{Config: cfg, Reps: 6}
	want := chaosRef(t, job)

	b := testBackend(t, ProcOptions{
		Workers:       2,
		ChunkSize:     2,
		RespawnBudget: 2,
		RetryBackoff:  5 * time.Millisecond,
		Env:           []string{failpoint.EnvVar + "=distrib/worker-loop=kill"},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	got, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run did not degrade gracefully: %v", err)
	}
	requireIdentical(t, got, want)
	ds := b.DistribStats()
	if ds.Deaths == 0 {
		t.Error("no worker deaths recorded under unconditional kills")
	}
	if ds.Fallbacks == 0 {
		t.Error("budget exhaustion did not record an in-process fallback")
	}
}

// TestHedgingWinsStragglers elects one worker as a straggler (every
// frame it writes is delayed far beyond its peers' chunk latency) and
// requires an idle worker to speculatively re-run its outstanding chunk
// and win — first result wins, results unchanged.
func TestHedgingWinsStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	job := session.Job{Config: cfg, Reps: 8}
	want := chaosRef(t, job)

	lock := filepath.Join(t.TempDir(), "slow.lock")
	b := testBackend(t, ProcOptions{
		Workers:       2,
		ChunkSize:     1,
		Heartbeat:     50 * time.Millisecond,
		WorkerTimeout: 5 * time.Second,
		HedgeFactor:   1,
		Env: []string{
			victimLockEnv + "=" + lock,
			victimSpecEnv + "=distrib/frame-write=delay(400)",
		},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	got, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run with a straggler failed: %v", err)
	}
	requireIdentical(t, got, want)
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("straggler lock never created — the slow path was not exercised: %v", err)
	}
	ds := b.DistribStats()
	if ds.HedgesWon == 0 {
		t.Error("no hedge ever won against a 400ms-per-frame straggler")
	}
}

// TestCloseAfterWorkerKill pins Close's contract when the fleet is
// half-dead: killing a worker out from under the backend must not make
// Close leak goroutines or processes, and Close is idempotent.
func TestCloseAfterWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	baseline := runtime.NumGoroutine()
	cfg := shortCfg(800)
	b := testBackend(t, ProcOptions{Workers: 2, ChunkSize: 2})
	if _, err := b.Run(context.Background(), session.Shard{
		Config: cfg, Seeds: []uint64{1, 2, 3}, Parallelism: 1,
	}); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	if len(b.workers) == 0 {
		b.mu.Unlock()
		t.Fatal("no workers after a run")
	}
	victim := b.workers[0]
	b.mu.Unlock()
	victim.conn.Kill()
	if err := b.Close(); err != nil {
		t.Fatalf("Close after external kill: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	// Reader goroutines and watchers must all unwind; give the runtime
	// a moment to reclaim them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FuzzProtocolDecode fuzzes the frame decoder end to end: whatever the
// bytes — truncated, oversized, bit-flipped, or garbage — reading and
// decoding must finish promptly with either clean EOF or a structured
// *FrameError, never a panic, an unbounded allocation, or a hang. The
// seed corpus is real captured frames of every kind plus deliberate
// corruptions of them.
func FuzzProtocolDecode(f *testing.F) {
	capture := func(kind msgKind, msg any) []byte {
		var buf bytes.Buffer
		if err := newFrameWriter(&buf).send(kind, msg); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	wc, err := ToWire(shortCfg(100))
	if err != nil {
		f.Fatal(err)
	}
	frames := [][]byte{
		capture(msgShard, shardMsg{ID: 1, Config: wc, Seeds: []uint64{1, 2, 3}, Parallelism: 2}),
		capture(msgCancel, cancelMsg{ID: 1}),
		capture(msgPing, pingMsg{Seq: 9}),
		capture(msgPong, pongMsg{Seq: 9}),
		capture(msgResult, resultMsg{ID: 1, Index: 0, Metrics: &system.Metrics{}}),
		capture(msgDone, doneMsg{ID: 1, Completed: 3, Code: CodeOK}),
		capture(msgHello, helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion}),
		capture(msgHello, helloMsg{Magic: 0xDEADBEEF, Version: ProtocolVersion}),
		capture(msgHello, helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion + 7}),
	}
	var stream []byte
	for _, fr := range frames {
		f.Add(fr)
		stream = append(stream, fr...)
	}
	f.Add(stream)                                                   // several frames back to back
	f.Add(stream[:len(stream)-3])                                   // truncated mid-payload
	f.Add(stream[:2])                                               // truncated mid-header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(msgResult), 1, 2, 3}) // absurd length
	flipped := append([]byte(nil), frames[0]...)
	flipped[4] = corruptKind // what the corrupt failpoint produces
	f.Add(flipped)
	bitrot := append([]byte(nil), frames[5]...)
	bitrot[7] ^= 0x40
	f.Add(bitrot)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			kind, payload, err := readFrame(r)
			if err != nil {
				var fe *FrameError
				if !errors.Is(err, io.EOF) && !errors.As(err, &fe) {
					t.Fatalf("unstructured read error %T: %v", err, err)
				}
				return
			}
			var derr error
			switch kind {
			case msgShard:
				var m shardMsg
				derr = decodeMsg(kind, payload, &m)
			case msgCancel:
				var m cancelMsg
				derr = decodeMsg(kind, payload, &m)
			case msgPing:
				var m pingMsg
				derr = decodeMsg(kind, payload, &m)
			case msgPong:
				var m pongMsg
				derr = decodeMsg(kind, payload, &m)
			case msgResult:
				var m resultMsg
				derr = decodeMsg(kind, payload, &m)
			case msgDone:
				var m doneMsg
				derr = decodeMsg(kind, payload, &m)
			case msgHello:
				var m helloMsg
				derr = decodeMsg(kind, payload, &m)
			default:
				continue // callers reject unknown kinds; nothing to decode
			}
			if derr != nil {
				var fe *FrameError
				if !errors.As(derr, &fe) {
					t.Fatalf("unstructured decode error %T: %v", derr, derr)
				}
			}
		}
	})
}

// TestReadFrameBoundedAllocation pins the incremental payload read: a
// frame header claiming a near-maxFrame payload backed by almost no
// bytes must fail without ever allocating more than one read chunk.
func TestReadFrameBoundedAllocation(t *testing.T) {
	hdr := make([]byte, 5, 5+64)
	claim := uint32(maxFrame) // largest admissible claim
	hdr[0] = byte(claim >> 24)
	hdr[1] = byte(claim >> 16)
	hdr[2] = byte(claim >> 8)
	hdr[3] = byte(claim)
	hdr[4] = byte(msgResult)
	data := append(hdr, make([]byte, 64)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := readFrame(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Op != "payload" {
		t.Fatalf("err = %v, want *FrameError payload truncation", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 2*readChunk {
		t.Fatalf("truncated 1GiB claim allocated %d bytes, want <= %d", grew, 2*readChunk)
	}
}
