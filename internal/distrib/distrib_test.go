package distrib

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// workerEnv opts the re-executed test binary into worker mode.
const workerEnv = "REPRO_TEST_SHARD_WORKER"

// dieLockEnv points at a lock file; the first worker process to create
// it becomes the designated victim and exits hard after two result
// frames — the worker-death scenario.
const dieLockEnv = "REPRO_TEST_SHARD_WORKER_DIE_LOCK"

// victimLockEnv and victimSpecEnv elect exactly one worker of the fleet
// (lock-file O_EXCL election, like dieLockEnv) and arm the given
// failpoint spec only in that process — the single-hung-worker and
// single-straggler scenarios, which an inherited environment spec
// cannot express because every worker would arm it.
const (
	victimLockEnv = "REPRO_TEST_SHARD_WORKER_VICTIM_LOCK"
	victimSpecEnv = "REPRO_TEST_SHARD_WORKER_VICTIM_SPEC"
)

// TestShardWorkerProcess is not a test: it is the worker-process body,
// entered when the coordinator under test re-executes the test binary.
func TestShardWorkerProcess(t *testing.T) {
	if os.Getenv(workerEnv) != "1" {
		t.Skip("worker-process helper, not a test")
	}
	var out io.Writer = os.Stdout
	if lock := os.Getenv(dieLockEnv); lock != "" {
		if f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600); err == nil {
			f.Close()
			out = &dyingWriter{w: os.Stdout, remaining: 2}
		}
	}
	if lock := os.Getenv(victimLockEnv); lock != "" {
		if f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600); err == nil {
			f.Close()
			if err := failpoint.Arm(os.Getenv(victimSpecEnv)); err != nil {
				fmt.Fprintln(os.Stderr, "worker: victim spec:", err)
				os.Exit(2)
			}
		}
	}
	if err := ServeWorker(os.Stdin, out); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(2)
	}
	os.Exit(0) // suppress the testing framework's PASS line on stdout
}

// dyingWriter forwards whole frames (one Write each), then kills the
// process mid-protocol.
type dyingWriter struct {
	w         io.Writer
	remaining int
}

func (d *dyingWriter) Write(p []byte) (int, error) {
	if d.remaining <= 0 {
		os.Exit(1)
	}
	d.remaining--
	return d.w.Write(p)
}

// testBackend returns a ProcBackend whose workers re-execute this test
// binary, plus cleanup.
func testBackend(t *testing.T, opts ProcOptions) *ProcBackend {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	opts.Command = []string{exe, "-test.run=^TestShardWorkerProcess$"}
	opts.Env = append(opts.Env, workerEnv+"=1")
	b := NewProcBackend(opts)
	t.Cleanup(func() { b.Close() })
	return b
}

// shortCfg returns a fast baseline configuration.
func shortCfg(horizon float64) system.Config {
	cfg := system.Baseline()
	cfg.Horizon = horizon
	return cfg
}

// metricsSig fingerprints a run's aggregate counters and ratios.
func metricsSig(m *system.Metrics) string {
	return fmt.Sprintf("lg=%d ld=%d gg=%d gd=%d mdl=%v mdg=%v lr=%v gr=%v",
		m.LocalGenerated, m.LocalDone, m.GlobalGenerated, m.GlobalDone,
		m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(), m.GlobalResponse.Mean())
}

// TestProcBackendMatchesPool is the core determinism claim: a session
// on the multi-process backend produces results bit-identical to the
// in-process pool — per replication and in the merged scenario CSV — at
// any worker count, either event queue, pooling on or off.
func TestProcBackendMatchesPool(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(4000)
	sc, err := scenario.Preset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	job := session.Job{Config: cfg, Scenario: sc, Reps: 6}

	ref := session.New()
	defer ref.Close()
	want, err := ref.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.Series.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		workers int
		opt     []session.Option
	}{
		{name: "workers=1", workers: 1},
		{name: "workers=3", workers: 3},
		{name: "workers=3/ladder", workers: 3, opt: []session.Option{session.WithEventQueue(sim.QueueLadder)}},
		{name: "workers=3/nopool", workers: 3, opt: []session.Option{session.WithPoolingDisabled()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := testBackend(t, ProcOptions{Workers: tc.workers, ChunkSize: 2})
			s := session.NewWithBackend(b, tc.opt...)
			defer s.Close()
			got, err := s.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if got.Partial || len(got.Runs) != len(want.Runs) {
				t.Fatalf("partial=%t runs=%d, want complete %d", got.Partial, len(got.Runs), len(want.Runs))
			}
			for i := range want.Runs {
				if g, w := metricsSig(got.Runs[i]), metricsSig(want.Runs[i]); g != w {
					t.Fatalf("rep %d diverged across the process boundary:\n got %s\nwant %s", i, g, w)
				}
			}
			if got.LocalMD != want.LocalMD || got.GlobalMD != want.GlobalMD {
				t.Fatalf("estimates diverged: %+v vs %+v", got.LocalMD, want.LocalMD)
			}
			var gotCSV bytes.Buffer
			if err := got.Series.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Fatal("merged scenario CSV is not byte-identical to the in-process pool")
			}
		})
	}
}

// TestProcBackendStreaming proves the OnResult hook streams across the
// boundary: every replication index is delivered exactly once.
func TestProcBackendStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1500)
	b := testBackend(t, ProcOptions{Workers: 2, ChunkSize: 2})
	var mu sync.Mutex
	seen := map[int]int{}
	shard := session.Shard{
		Config: cfg,
		Seeds:  []uint64{1, 2, 3, 4, 5},
		OnResult: func(i int, m *system.Metrics) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			if m == nil {
				t.Error("nil metrics streamed")
			}
		},
	}
	res, err := b.Run(context.Background(), shard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(shard.Seeds) {
		t.Fatalf("completed %d, want %d", res.Completed, len(shard.Seeds))
	}
	for i := range shard.Seeds {
		if seen[i] != 1 {
			t.Fatalf("index %d delivered %d times", i, seen[i])
		}
	}
}

// TestProcBackendWorkerDeathReassigns kills one worker process
// mid-chunk (it exits hard after streaming two results) and requires
// the full shard to still complete, bit-identical to the in-process
// pool — the lost sub-shard is re-run on a surviving worker.
func TestProcBackendWorkerDeathReassigns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1500)
	job := session.Job{Config: cfg, Reps: 10}
	ref := session.New()
	defer ref.Close()
	want, err := ref.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	lock := filepath.Join(t.TempDir(), "victim.lock")
	b := testBackend(t, ProcOptions{
		Workers:   2,
		ChunkSize: 4,
		Env:       []string{dieLockEnv + "=" + lock},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	got, err := s.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run did not survive a worker death: %v", err)
	}
	if got.Partial || len(got.Runs) != len(want.Runs) {
		t.Fatalf("partial=%t runs=%d after worker death, want complete %d", got.Partial, len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		if g, w := metricsSig(got.Runs[i]), metricsSig(want.Runs[i]); g != w {
			t.Fatalf("rep %d diverged after reassignment:\n got %s\nwant %s", i, g, w)
		}
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("victim lock never created — the death path was not exercised: %v", err)
	}
}

// TestProcBackendCancellation cancels mid-run and requires the exact
// deterministic seed prefix: every returned run bit-identical to the
// uncancelled reference, Partial set, seeds contiguous from the base.
func TestProcBackendCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1500)
	const reps = 12
	ref := session.New()
	defer ref.Close()
	want, err := ref.Run(context.Background(), session.Job{Config: cfg, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}

	b := testBackend(t, ProcOptions{Workers: 2, ChunkSize: 2})
	s := session.NewWithBackend(b)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := s.Run(ctx, session.Job{Config: cfg, Reps: reps},
		session.WithProgress(func(done, total int) {
			if done == 3 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want a partial result", res)
	}
	if len(res.Runs) == 0 || len(res.Runs) >= reps {
		t.Fatalf("cancelled run finished %d of %d replications", len(res.Runs), reps)
	}
	for i, m := range res.Runs {
		if res.Seeds[i] != cfg.Seed+uint64(i) {
			t.Fatalf("seed %d = %d: prefix not contiguous from base", i, res.Seeds[i])
		}
		if g, w := metricsSig(m), metricsSig(want.Runs[i]); g != w {
			t.Fatalf("rep %d of the cancelled prefix diverged:\n got %s\nwant %s", i, g, w)
		}
	}
}

// TestCanceledErrorCrossesBoundary pins the structured cancellation
// code: a rehydrated worker cancellation still satisfies errors.Is
// against context.Canceled, which gob/error strings alone cannot.
func TestCanceledErrorCrossesBoundary(t *testing.T) {
	err := CodeCanceled.err("context canceled")
	if !errors.Is(err, context.Canceled) {
		t.Fatal("CodeCanceled does not rehydrate into a context.Canceled-compatible error")
	}
	if err := CodeError.err("boom"); err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("CodeError rehydrated as %v", err)
	}
	if err := CodeOK.err(""); err != nil {
		t.Fatalf("CodeOK rehydrated as %v", err)
	}
}

// TestWireConfigRoundTrip pins the config translation, including the
// scenario spec recompilation.
func TestWireConfigRoundTrip(t *testing.T) {
	cfg := shortCfg(2000)
	cfg.Shape = workload.MixedShape{
		Stages:   []int{1, 3, 1},
		MeanExec: 1,
		Demand:   workload.ParetoDemand{Alpha: 2.5},
	}
	sc, err := scenario.Preset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	cfg.RNGLayout = system.RNGSplit

	wc, err := ToWire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := wc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario == nil || back.Scenario.Name() != sc.Name() {
		t.Fatalf("scenario did not survive: %+v", back.Scenario)
	}
	if back.RNGLayout != system.RNGSplit {
		t.Fatalf("RNGLayout did not survive: %q", back.RNGLayout)
	}
	back.Scenario = cfg.Scenario // compiled anew; compare the rest
	back.Seed = cfg.Seed
	if fmt.Sprintf("%+v", back.Shape) != fmt.Sprintf("%+v", cfg.Shape) {
		t.Fatalf("shape did not survive: %+v vs %+v", back.Shape, cfg.Shape)
	}
}

// TestToWireRejectsUnwirable: traces and unknown shapes must not cross.
func TestToWireRejectsUnwirable(t *testing.T) {
	cfg := shortCfg(1000)
	cfg.Trace = trace.NewRecorder(0)
	if _, err := ToWire(cfg); !errors.Is(err, ErrNotWirable) {
		t.Fatalf("traced config: err = %v, want ErrNotWirable", err)
	}
	cfg = shortCfg(1000)
	cfg.Shape = strangeShape{}
	if _, err := ToWire(cfg); !errors.Is(err, ErrNotWirable) {
		t.Fatalf("unknown shape: err = %v, want ErrNotWirable", err)
	}
}

// strangeShape is a Shape this package cannot serialize.
type strangeShape struct{}

func (strangeShape) Build(*rng.Source, int) (*task.Graph, error) { panic("unused") }
func (strangeShape) SlackScale(float64) float64                  { return 1 }
func (strangeShape) Name() string                                { return "strange" }

// TestProcBackendFallsBackForTrace: a traced config runs in process
// (the recorder cannot cross), transparently.
func TestProcBackendFallsBackForTrace(t *testing.T) {
	cfg := shortCfg(800)
	cfg.Trace = trace.NewRecorder(0)
	// No worker command that could possibly work: if the backend tried
	// to spawn, Run would fail.
	b := NewProcBackend(ProcOptions{Workers: 1, Command: []string{"/nonexistent-worker-binary"}})
	defer b.Close()
	res, err := b.Run(context.Background(), session.Shard{Config: cfg, Seeds: []uint64{1, 2}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("fallback completed %d, want 2", res.Completed)
	}
}

// TestChunkSeeds pins the chunking geometry.
func TestChunkSeeds(t *testing.T) {
	got := chunkSeeds(7, 3)
	want := []chunk{{start: 0, end: 3}, {start: 3, end: 6}, {start: 6, end: 7}}
	if len(got) != len(want) {
		t.Fatalf("chunks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", got, want)
		}
	}
	if got := chunkSeeds(0, 3); len(got) != 0 {
		t.Fatalf("chunkSeeds(0) = %v", got)
	}
}
