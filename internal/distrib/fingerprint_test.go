package distrib

import (
	"errors"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestConfigFingerprintStable: semantically identical configurations —
// built independently, differing only in Seed (the cache key's other
// dimension) — must collide.
func TestConfigFingerprintStable(t *testing.T) {
	a := shortCfg(2000)
	b := shortCfg(2000)
	fa, err := ConfigFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ConfigFingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("identical configs fingerprint differently: %s vs %s", fa, fb)
	}
	b.Seed = a.Seed + 12345
	if fb, _ = ConfigFingerprint(b); fa != fb {
		t.Fatalf("Seed changed the fingerprint: %s vs %s", fa, fb)
	}
	// Repeated hashing of the same value must be deterministic.
	for i := 0; i < 3; i++ {
		if fi, _ := ConfigFingerprint(a); fi != fa {
			t.Fatalf("fingerprint not stable across calls: %s vs %s", fi, fa)
		}
	}

	// A scenario travels as its spec; the same preset compiled twice is
	// the same identity.
	sa, err := scenario.Preset("burst", a.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := scenario.Preset("burst", b.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	a.Scenario, b.Scenario = sa, sb
	fa, _ = ConfigFingerprint(a)
	fb, _ = ConfigFingerprint(b)
	if fa != fb {
		t.Fatalf("recompiled identical scenarios fingerprint differently")
	}
}

// TestConfigFingerprintSensitivity: every knob change — including ones
// like EventQueue, DisablePooling, and RNGLayout whose alternatives
// produce byte-identical results — must move the hash.
func TestConfigFingerprintSensitivity(t *testing.T) {
	base := shortCfg(2000)
	ref, err := ConfigFingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Preset("burst", base.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*system.Config){
		"Nodes":          func(c *system.Config) { c.Nodes *= 2 },
		"Load":           func(c *system.Config) { c.Load += 0.05 },
		"FracLocal":      func(c *system.Config) { c.FracLocal += 0.01 },
		"SSP":            func(c *system.Config) { c.SSP = "ED" },
		"PSP":            func(c *system.Config) { c.PSP = "EDF" },
		"Horizon":        func(c *system.Config) { c.Horizon += 1 },
		"Warmup":         func(c *system.Config) { c.Warmup += 1 },
		"TardyAbort":     func(c *system.Config) { c.TardyAbort = !c.TardyAbort },
		"RNGLayout":      func(c *system.Config) { c.RNGLayout = system.RNGSplit },
		"EventQueue":     func(c *system.Config) { c.EventQueue = sim.QueueLadder },
		"DisablePooling": func(c *system.Config) { c.DisablePooling = true },
		"Scenario":       func(c *system.Config) { c.Scenario = sc },
		"Shape": func(c *system.Config) {
			c.Shape = workload.SerialShape{M: 3, MeanExec: 1, Demand: workload.ExponentialDemand{}}
		},
	}
	seen := map[string]string{ref: "base"}
	for name, mutate := range mutations {
		cfg := shortCfg(2000)
		mutate(&cfg)
		fp, err := ConfigFingerprint(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("mutation %s collides with %s (fingerprint %s)", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestConfigFingerprintRejectsUnwirable: what cannot cross a process
// boundary cannot be cached either.
func TestConfigFingerprintRejectsUnwirable(t *testing.T) {
	cfg := shortCfg(1000)
	cfg.Trace = trace.NewRecorder(0)
	if _, err := ConfigFingerprint(cfg); !errors.Is(err, ErrNotWirable) {
		t.Fatalf("traced config: err = %v, want ErrNotWirable", err)
	}
}
