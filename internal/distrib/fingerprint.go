package distrib

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"

	"repro/internal/system"
)

// fingerprintEnvelope pins the fingerprint's hash layout. Rev is bumped
// whenever the encoding (or the meaning of any encoded field) changes,
// so entries cached under an older layout can never alias a newer one.
type fingerprintEnvelope struct {
	Rev    uint32
	Config WireConfig
}

// ConfigFingerprint returns a stable content hash identifying every
// result-relevant knob of cfg — the identity under which warm sessions
// and cached shard results are keyed. Two configurations that are
// semantically identical (including ones differing only in Seed or in
// an attached progress hook: seeds are the cache key's other dimension)
// hash identically; changing any knob yields a different fingerprint.
// That includes knobs like EventQueue, DisablePooling, and RNGLayout
// whose alternatives are provably (or by-test) byte-identical: the
// cache trades a few redundant misses for zero risk of serving results
// across a semantic boundary.
//
// The hash is computed over the gob encoding of the wire configuration
// (scenarios travel as their declarative Spec — slices and scalars
// only, so the encoding is deterministic) inside a versioned envelope.
// Configurations that cannot cross a process boundary (ErrNotWirable:
// attached trace recorder, unregistered Shape/Demand) cannot be
// fingerprinted either — callers bypass caching for those.
func ConfigFingerprint(cfg system.Config) (string, error) {
	wc, err := ToWire(cfg)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := gob.NewEncoder(h).Encode(fingerprintEnvelope{Rev: 1, Config: wc}); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}
