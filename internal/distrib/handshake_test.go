package distrib

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestHelloRoundTrip: a hello written by this binary is accepted by
// this binary.
func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SendHello(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadHello(&buf); err != nil {
		t.Fatalf("ReadHello rejected our own hello: %v", err)
	}
}

// TestHelloMismatch: every way a peer can fail the handshake — foreign
// magic, different protocol version, a non-hello first frame, a stream
// that ends early, raw garbage — yields a *FrameError with Op
// "handshake", never a gob decode error or a clean success.
func TestHelloMismatch(t *testing.T) {
	capture := func(msg helloMsg) []byte {
		var buf bytes.Buffer
		if err := newFrameWriter(&buf).send(msgHello, msg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	otherKind := func() []byte {
		var buf bytes.Buffer
		if err := newFrameWriter(&buf).send(msgPing, pingMsg{Seq: 1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"wrong magic":   capture(helloMsg{Magic: 0xDEADBEEF, Version: ProtocolVersion}),
		"wrong version": capture(helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion + 1}),
		"not a hello":   otherKind,
		"empty stream":  nil,
		"garbage":       []byte("GET / HTTP/1.1\r\n\r\n"),
	}
	for name, data := range cases {
		err := ReadHello(bytes.NewReader(data))
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: err = %v (%T), want *FrameError", name, err, err)
		}
		if fe.Op != "handshake" {
			t.Fatalf("%s: Op = %q, want handshake", name, fe.Op)
		}
	}
}

// TestServeWorkerAnswersHello: a worker loop replies to a valid hello
// in kind and rejects a mismatched one with a handshake FrameError.
func TestServeWorkerAnswersHello(t *testing.T) {
	var in, out bytes.Buffer
	if err := SendHello(&in); err != nil {
		t.Fatal(err)
	}
	if err := ServeWorker(&in, &out); err != nil {
		t.Fatalf("ServeWorker: %v", err)
	}
	if err := ReadHello(&out); err != nil {
		t.Fatalf("worker's hello reply invalid: %v", err)
	}

	in.Reset()
	if err := newFrameWriter(&in).send(msgHello, helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	err := ServeWorker(&in, io.Discard)
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Op != "handshake" {
		t.Fatalf("mismatched hello: err = %v, want handshake *FrameError", err)
	}
}
