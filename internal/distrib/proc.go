package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/system"
)

// errWorkerDead marks a sub-shard that failed because its worker
// process died (or broke protocol): the chunk is re-run on a surviving
// worker, which is safe because replications are pure functions of
// (config, seed).
var errWorkerDead = errors.New("distrib: worker process died")

// ProcOptions configures a ProcBackend.
type ProcOptions struct {
	// Workers is the number of worker processes; 0 means 2.
	Workers int
	// Command is the worker argv. Empty re-executes the current binary
	// with -shard-server, which is the mode both CLIs serve.
	Command []string
	// Env appends to the inherited environment of worker processes.
	Env []string
	// ChunkSize caps seeds per dispatched sub-shard; 0 picks
	// max(1, seeds/(4·workers)) so work-stealing has slack to balance.
	ChunkSize int
	// Stderr receives worker stderr; nil inherits this process's.
	Stderr io.Writer
}

// workers resolves the worker-count default.
func (o ProcOptions) workers() int {
	if o.Workers <= 0 {
		return 2
	}
	return o.Workers
}

// procWorker is one spawned worker process.
type procWorker struct {
	cmd  *exec.Cmd
	in   io.Closer
	fw   *frameWriter
	br   *bufio.Reader
	dead bool

	// Coordinator-side stats. Only this worker's dispatch goroutine
	// writes them, but DistribStats snapshots concurrently, so all
	// access goes through the backend's mu (cold path: once per frame
	// at most, never per event).
	id         uint64
	subShards  uint64
	steals     uint64
	framesRecv uint64
	bytesRecv  uint64
	pool       obs.PoolStats // latest pool gauges from a done frame
}

// ProcBackend implements session.Backend across worker processes: it
// splits a shard's seed range into contiguous chunks, work-steals the
// chunks across N persistent workers (each a ServeWorker process with
// its own warm workspace pool), and merges results in seed order, so
// its output is byte-identical to the in-process pool at any worker
// count. A worker that dies mid-chunk has the chunk re-run on a
// surviving worker; determinism makes the re-run interchangeable.
//
// Configurations that cannot cross a process boundary (ErrNotWirable:
// an attached trace recorder, an unregistered Shape or Demand) fall
// back to an embedded in-process pool transparently.
//
// Concurrent Run calls are safe but serialize on the worker set.
type ProcBackend struct {
	opts ProcOptions

	runMu sync.Mutex // serializes Runs: they lease the whole worker set

	mu       sync.Mutex // guards workers/fallback/closed/nextID and all stats below
	workers  []*procWorker
	fallback *session.Pool
	closed   bool
	nextID   uint64

	// Coordinator stats (see DistribStats): worker ids, fleet health,
	// the seed-order merge buffer's high-water mark, and the final
	// stats of reaped workers.
	workerSeq uint64
	fleetUp   bool // the initial fleet stood up; later spawns are respawns
	deaths    uint64
	respawns  uint64
	mergeHWM  uint64
	retired   []obs.WorkerStats
}

// NewProcBackend returns a backend; worker processes spawn lazily on
// the first Run that needs them.
func NewProcBackend(opts ProcOptions) *ProcBackend {
	return &ProcBackend{opts: opts}
}

// Close shuts the workers down (closing stdin lets them exit cleanly;
// they are killed as a backstop) and drops the fallback pool. Close is
// not safe concurrently with Run.
func (b *ProcBackend) Close() error {
	b.mu.Lock()
	workers := b.workers
	b.workers, b.closed = nil, true
	fallback := b.fallback
	b.fallback = nil
	b.mu.Unlock()
	for _, w := range workers {
		w.in.Close()
	}
	for _, w := range workers {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.cmd.Wait()
	}
	if fallback != nil {
		fallback.Close()
	}
	return nil
}

// spawn starts one worker process.
func (b *ProcBackend) spawn() (*procWorker, error) {
	argv := b.opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("distrib: resolve worker binary: %w", err)
		}
		argv = []string{exe, "-shard-server"}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	if len(b.opts.Env) > 0 {
		cmd.Env = append(os.Environ(), b.opts.Env...)
	}
	if b.opts.Stderr != nil {
		cmd.Stderr = b.opts.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: start worker %q: %w", argv[0], err)
	}
	return &procWorker{
		cmd: cmd,
		in:  stdin,
		fw:  newFrameWriter(stdin),
		br:  bufio.NewReaderSize(stdout, 1<<16),
	}, nil
}

// attach returns the live worker set, spawning replacements for dead
// (or not yet started) workers.
func (b *ProcBackend) attach() ([]*procWorker, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errors.New("distrib: backend closed")
	}
	live := b.workers[:0]
	for _, w := range b.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	b.workers = live
	for len(b.workers) < b.opts.workers() {
		w, err := b.spawn()
		if err != nil {
			if len(b.workers) > 0 {
				break // run on what we have
			}
			return nil, err
		}
		b.workerSeq++
		w.id = b.workerSeq
		if b.fleetUp {
			b.respawns++
		}
		b.workers = append(b.workers, w)
	}
	b.fleetUp = true
	return append([]*procWorker(nil), b.workers...), nil
}

// reap marks a worker dead, archives its final stats, and reclaims its
// process.
func (b *ProcBackend) reap(w *procWorker) {
	b.mu.Lock()
	w.dead = true
	b.deaths++
	b.retired = append(b.retired, b.workerStatsLocked(w))
	b.mu.Unlock()
	w.in.Close()
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	go func() { _ = w.cmd.Wait() }()
}

// localPool returns the embedded in-process fallback pool.
func (b *ProcBackend) localPool() *session.Pool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fallback == nil {
		b.fallback = session.NewPool()
	}
	return b.fallback
}

// chunk is a contiguous [start, end) slice of a shard's seed range.
// requeued marks a chunk put back after a worker death; the worker
// that eventually runs it records a steal.
type chunk struct {
	start, end int
	requeued   bool
}

// chunkSeeds cuts n seeds into in-order chunks of at most size.
func chunkSeeds(n, size int) []chunk {
	var out []chunk
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, chunk{start: start, end: end})
	}
	return out
}

// chunkSize resolves the sub-shard granularity.
func (b *ProcBackend) chunkSize(n, workers int) int {
	if b.opts.ChunkSize > 0 {
		return b.opts.ChunkSize
	}
	size := n / (4 * workers)
	if size < 1 {
		size = 1
	}
	return size
}

// Run implements session.Backend. Results are merged in seed order;
// cancellation returns the longest finished contiguous seed prefix
// together with ctx's error, exactly like the in-process pool. (Unlike
// the in-process pool, OnResult may additionally have fired for a few
// completed replications beyond that prefix — chunks cancel
// independently — which streaming and progress hooks tolerate by
// construction.)
func (b *ProcBackend) Run(ctx context.Context, shard session.Shard) (session.ShardResult, error) {
	if len(shard.Seeds) == 0 {
		return session.ShardResult{Metrics: []*system.Metrics{}}, ctx.Err()
	}
	wc, err := ToWire(shard.Config)
	if err != nil {
		if errors.Is(err, ErrNotWirable) {
			return b.localPool().Run(ctx, shard)
		}
		return session.ShardResult{}, err
	}

	b.runMu.Lock()
	defer b.runMu.Unlock()
	workers, err := b.attach()
	if err != nil {
		return session.ShardResult{}, err
	}

	chunks := chunkSeeds(len(shard.Seeds), b.chunkSize(len(shard.Seeds), len(workers)))

	var (
		mu        sync.Mutex
		pending   = append([]chunk(nil), chunks...) // FIFO of undispatched chunks
		finished  int                               // chunks that ended (done or cancelled)
		live      = len(workers)
		failErr   error
		cancelled bool
	)
	cond := sync.NewCond(&mu)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	metrics := make([]*system.Metrics, len(shard.Seeds))
	delivered := make([]bool, len(shard.Seeds))
	deliveredCount, prefix := 0, 0 // for merge-buffer depth: arrived − emittable
	record := func(i int, m *system.Metrics) {
		mu.Lock()
		first := !delivered[i]
		delivered[i] = true
		metrics[i] = m
		if first {
			deliveredCount++
			for prefix < len(delivered) && delivered[prefix] {
				prefix++
			}
			// Results held back because an earlier seed is still running;
			// lock order run-local mu → b.mu is taken nowhere in reverse.
			if d := uint64(deliveredCount - prefix); d > 0 {
				b.noteMergeDepth(d)
			}
		}
		mu.Unlock()
		// A chunk re-run after a worker death replays indices the dead
		// worker already streamed; OnResult fires once per index.
		if first && shard.OnResult != nil {
			shard.OnResult(i, m)
		}
	}

	// Propagate caller cancellation into the dispatch state so idle
	// workers stop waiting for chunks.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			mu.Lock()
			cancelled = true
			cond.Broadcast()
			mu.Unlock()
		case <-stopWatch:
		}
	}()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *procWorker) {
			defer wg.Done()
			for {
				mu.Lock()
				for len(pending) == 0 && failErr == nil && !cancelled && finished < len(chunks) {
					cond.Wait()
				}
				if failErr != nil || cancelled || finished == len(chunks) || len(pending) == 0 {
					mu.Unlock()
					return
				}
				c := pending[0]
				pending = pending[1:]
				mu.Unlock()

				cerr := b.runChunk(runCtx, w, &wc, shard, c, record)
				mu.Lock()
				switch {
				case cerr == nil || isCancellation(cerr):
					finished++
				case errors.Is(cerr, errWorkerDead):
					c.requeued = true
					pending = append(pending, c)
					live--
					if live == 0 && failErr == nil {
						failErr = fmt.Errorf("distrib: every worker died (last: %v)", cerr)
						cancelRun()
					}
				default:
					if failErr == nil {
						failErr = cerr
						cancelRun()
					}
				}
				cond.Broadcast()
				dead := errors.Is(cerr, errWorkerDead)
				mu.Unlock()
				if dead {
					b.reap(w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopWatch)

	if failErr != nil && !isCancellation(failErr) {
		return session.ShardResult{}, failErr
	}
	if cerr := ctx.Err(); cerr != nil {
		// Longest contiguous finished prefix; chunks cancel
		// independently, so completions beyond the first hole are
		// discarded (deterministic re-runs would reproduce them).
		completed := 0
		for completed < len(metrics) && metrics[completed] != nil {
			completed++
		}
		for i := completed; i < len(metrics); i++ {
			metrics[i] = nil
		}
		return session.ShardResult{Metrics: metrics, Completed: completed}, cerr
	}
	return session.ShardResult{Metrics: metrics, Completed: len(metrics)}, nil
}

// runChunk dispatches one sub-shard to a worker and consumes its frames
// until the coded done frame. Transport failures return errWorkerDead;
// the caller re-queues the chunk.
func (b *ProcBackend) runChunk(ctx context.Context, w *procWorker, wc *WireConfig,
	shard session.Shard, c chunk, record func(int, *system.Metrics)) error {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.mu.Unlock()
	msg := shardMsg{
		ID:          id,
		Config:      *wc,
		Seeds:       shard.Seeds[c.start:c.end],
		Parallelism: shard.Parallelism,
	}
	if err := w.fw.send(msgShard, msg); err != nil {
		return fmt.Errorf("%w: send: %v", errWorkerDead, err)
	}
	// Forward cancellation as a frame while the read loop below waits
	// for the worker's (possibly partial) results.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = w.fw.send(msgCancel, cancelMsg{ID: id})
		case <-watchDone:
		}
	}()
	for {
		kind, payload, err := readFrame(w.br)
		if err != nil {
			return fmt.Errorf("%w: read: %v", errWorkerDead, err)
		}
		b.mu.Lock()
		w.framesRecv++
		w.bytesRecv += uint64(len(payload)) + frameOverhead
		b.mu.Unlock()
		switch kind {
		case msgResult:
			var m resultMsg
			if err := decodeMsg(payload, &m); err != nil {
				return fmt.Errorf("%w: %v", errWorkerDead, err)
			}
			if m.ID != id || m.Index < 0 || m.Index >= c.end-c.start || m.Metrics == nil {
				return fmt.Errorf("%w: stray result frame (id %d, index %d)", errWorkerDead, m.ID, m.Index)
			}
			record(c.start+m.Index, m.Metrics)
		case msgDone:
			var m doneMsg
			if err := decodeMsg(payload, &m); err != nil {
				return fmt.Errorf("%w: %v", errWorkerDead, err)
			}
			if m.ID != id {
				return fmt.Errorf("%w: stray done frame (id %d)", errWorkerDead, m.ID)
			}
			b.mu.Lock()
			w.subShards++
			if c.requeued {
				w.steals++
			}
			w.pool = m.Pool // cumulative gauges; latest frame supersedes
			b.mu.Unlock()
			return m.Code.err(m.Error)
		default:
			return fmt.Errorf("%w: unexpected frame kind %d", errWorkerDead, kind)
		}
	}
}

// noteMergeDepth raises the merge-buffer high-water mark.
func (b *ProcBackend) noteMergeDepth(d uint64) {
	b.mu.Lock()
	if d > b.mergeHWM {
		b.mergeHWM = d
	}
	b.mu.Unlock()
}

// workerStatsLocked snapshots one worker's stats; b.mu must be held.
func (b *ProcBackend) workerStatsLocked(w *procWorker) obs.WorkerStats {
	frames, bytes := w.fw.counts()
	return obs.WorkerStats{
		ID:         w.id,
		Alive:      !w.dead,
		SubShards:  w.subShards,
		Steals:     w.steals,
		FramesSent: frames,
		FramesRecv: w.framesRecv,
		BytesSent:  bytes,
		BytesRecv:  w.bytesRecv,
		Pool:       w.pool,
	}
}

// DistribStats implements session.DistribStatser: a point-in-time view
// of the coordinator — fleet health, per-worker transport and dispatch
// counters (live and retired, ordered by spawn id), and the seed-order
// merge buffer's high-water mark.
func (b *ProcBackend) DistribStats() *obs.DistribStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := &obs.DistribStats{
		Deaths:        b.deaths,
		Respawns:      b.respawns,
		MergeDepthHWM: b.mergeHWM,
		Workers:       append([]obs.WorkerStats(nil), b.retired...),
	}
	for _, w := range b.workers {
		// A reaped worker stays in b.workers until the next attach culls
		// it, but its archived entry in retired already covers it.
		if w.dead {
			continue
		}
		out.Workers = append(out.Workers, b.workerStatsLocked(w))
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].ID < out.Workers[j].ID })
	return out
}

// PoolStats implements session.PoolStatser: the fleet-wide total of
// every worker's pool gauges (as last reported over the wire) plus the
// in-process fallback pool, if one ever ran.
func (b *ProcBackend) PoolStats() obs.PoolStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var ps obs.PoolStats
	for _, w := range b.retired {
		ps.Add(w.Pool)
	}
	for _, w := range b.workers {
		if w.dead {
			continue // already counted via retired
		}
		ps.Add(w.pool)
	}
	if b.fallback != nil {
		ps.Add(b.fallback.PoolStats())
	}
	return ps
}
