package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/system"
)

// errWorkerDead marks a sub-shard that failed because its worker
// process died, hung, or broke protocol: the chunk is re-run on a
// surviving worker (after a capped exponential backoff), which is safe
// because replications are pure functions of (config, seed).
var errWorkerDead = errors.New("distrib: worker process died")

// errWorkerHung marks the liveness-deadline flavour of worker loss: the
// process never closed its pipe, but stopped answering heartbeats. It
// wraps errWorkerDead so every recovery path treats hangs and deaths
// identically — the hung process is killed and its chunk reassigned.
var errWorkerHung = fmt.Errorf("worker hung (missed liveness deadline): %w", errWorkerDead)

// errChunkDeadline marks a sub-shard that overran its execution
// deadline (derived from the EWMA of observed chunk latency) even
// though the worker kept answering heartbeats — a wedged or
// pathologically slow execution. Wrapping errWorkerDead reuses the
// kill-and-reassign recovery.
var errChunkDeadline = fmt.Errorf("sub-shard exceeded its execution deadline: %w", errWorkerDead)

// WorkerConn is the transport seam between the coordinator and one
// worker endpoint: a bidirectional byte stream carrying the frame
// protocol, plus the lifecycle hooks the supervisor needs. The default
// implementation wraps a spawned process's stdin/stdout pipes;
// internal/netdist provides one over a TCP connection.
type WorkerConn interface {
	io.Reader
	io.Writer
	// Close initiates a graceful shutdown by closing the
	// coordinator->worker direction (the worker sees EOF and exits after
	// in-flight shards finish). Reads may keep draining afterwards.
	Close() error
	// Kill forcefully tears the endpoint down; it must unblock any
	// in-flight Read. Safe after Close and safe to call more than once.
	Kill()
	// Wait blocks until the endpoint's resources are reclaimed (process
	// reaped, connection closed). Called after Kill or Close.
	Wait()
}

// ProcOptions configures a ProcBackend.
type ProcOptions struct {
	// Workers is the number of worker processes; 0 means 2.
	Workers int
	// Command is the worker argv. Empty re-executes the current binary
	// with -shard-server, which is the mode both CLIs serve.
	Command []string
	// Env appends to the inherited environment of worker processes.
	Env []string
	// Dial, when set, replaces process spawning: every worker slot (and
	// every respawn) is established by dialing a fresh WorkerConn
	// instead of exec'ing Command. Command, Env, and Stderr are ignored.
	// This is the seam internal/netdist uses to run the coordinator's
	// full supervision machinery — heartbeats, retries, hedging,
	// respawn budget — over TCP connections to remote workers.
	Dial func() (WorkerConn, error)
	// DegradeToLocal extends graceful degradation to the initial fleet:
	// when not a single worker can be established at the start of a Run,
	// the shard executes on the embedded in-process pool (recorded in
	// DistribStats.Fallbacks) instead of failing the Run. Remote workers
	// being unreachable is an expected operational state; an unspawnable
	// local process is a misconfiguration, so the default stays strict.
	DegradeToLocal bool
	// ChunkSize caps seeds per dispatched sub-shard; 0 picks
	// max(1, seeds/(4·workers)) so work-stealing has slack to balance.
	ChunkSize int
	// Stderr receives worker stderr; nil inherits this process's.
	Stderr io.Writer

	// Heartbeat is the liveness-probe interval: while a sub-shard is
	// outstanding and the worker is silent, the coordinator pings it
	// this often. 0 means 1s.
	Heartbeat time.Duration
	// WorkerTimeout is the liveness deadline: a worker that produces no
	// frame (result, done, or pong) for this long is declared hung,
	// killed, and its chunk reassigned. 0 means 10s; values below twice
	// the heartbeat are clamped up to it.
	WorkerTimeout time.Duration
	// HedgeFactor scales the straggler threshold: an idle worker
	// speculatively re-runs the oldest outstanding chunk once its age
	// exceeds HedgeFactor times the EWMA of completed-chunk latency
	// (first result wins; the duplicate is deduplicated and cancelled).
	// 0 means 4; negative disables hedging.
	HedgeFactor float64
	// RespawnBudget bounds recovery per Run: at most this many mid-run
	// worker respawns, and after this many consecutive chunk failures
	// the circuit breaker trips and the backend degrades gracefully to
	// the in-process pool for the remaining seeds. 0 means 4.
	RespawnBudget int
	// RetryBackoff is the base delay before a failed chunk is
	// redispatched; it doubles per attempt, capped at 2s. 0 means 50ms.
	RetryBackoff time.Duration
}

// workers resolves the worker-count default.
func (o ProcOptions) workers() int {
	if o.Workers <= 0 {
		return 2
	}
	return o.Workers
}

// heartbeat resolves the liveness-probe interval.
func (o ProcOptions) heartbeat() time.Duration {
	if o.Heartbeat <= 0 {
		return time.Second
	}
	return o.Heartbeat
}

// workerTimeout resolves the liveness deadline.
func (o ProcOptions) workerTimeout() time.Duration {
	d := o.WorkerTimeout
	if d <= 0 {
		d = 10 * time.Second
	}
	if min := 2 * o.heartbeat(); d < min {
		d = min
	}
	return d
}

// hedgeFactor resolves the straggler threshold multiplier; <= 0 means
// hedging is disabled (0 itself selects the default).
func (o ProcOptions) hedgeFactor() float64 {
	if o.HedgeFactor == 0 {
		return 4
	}
	if o.HedgeFactor < 0 {
		return 0
	}
	return o.HedgeFactor
}

// respawnBudget resolves the per-run recovery budget.
func (o ProcOptions) respawnBudget() int {
	if o.RespawnBudget <= 0 {
		return 4
	}
	return o.RespawnBudget
}

// retryBackoff resolves the capped exponential chunk-retry backoff for
// the given prior attempt count.
func (o ProcOptions) retryBackoff(attempts int) time.Duration {
	base := o.RetryBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	const cap = 2 * time.Second
	d := base
	for i := 0; i < attempts && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// wireFrame is one frame (or terminal read error) delivered by a
// worker's reader goroutine.
type wireFrame struct {
	kind    msgKind
	payload []byte
	err     error
}

// procConn adapts a spawned worker process to the WorkerConn seam:
// writes go to its stdin, reads come from its stdout, Kill signals the
// process, and Wait reaps it.
type procConn struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.ReadCloser
}

func (c *procConn) Read(p []byte) (int, error)  { return c.out.Read(p) }
func (c *procConn) Write(p []byte) (int, error) { return c.in.Write(p) }
func (c *procConn) Close() error                { return c.in.Close() }

func (c *procConn) Kill() {
	if c.cmd.Process != nil {
		_ = c.cmd.Process.Kill()
	}
}

func (c *procConn) Wait() { _ = c.cmd.Wait() }

// procWorker is one attached worker endpoint (a spawned process or a
// dialed connection).
type procWorker struct {
	conn WorkerConn
	fw   *frameWriter
	br   *bufio.Reader

	// frames delivers the worker's output, one frame per receive, read
	// by a dedicated goroutine so the dispatcher can multiplex frames
	// with heartbeat timers. The reader exits on its first read error
	// (delivered as the final wireFrame) or when stop closes.
	frames   chan wireFrame
	stop     chan struct{}
	stopOnce sync.Once

	dead bool

	// Coordinator-side stats. Only this worker's dispatch goroutine
	// writes them, but DistribStats snapshots concurrently, so all
	// access goes through the backend's mu (cold path: once per frame
	// at most, never per event).
	id         uint64
	subShards  uint64
	steals     uint64
	framesRecv uint64
	bytesRecv  uint64
	pool       obs.PoolStats // latest pool gauges from a done frame
}

// stopReader releases the worker's reader goroutine (idempotent).
func (w *procWorker) stopReader() { w.stopOnce.Do(func() { close(w.stop) }) }

// readLoop feeds the worker's stdout frames into w.frames until a read
// error (delivered, then the loop exits) or stopReader.
func (w *procWorker) readLoop() {
	for {
		kind, payload, err := readFrame(w.br)
		select {
		case w.frames <- wireFrame{kind: kind, payload: payload, err: err}:
		case <-w.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// ProcBackend implements session.Backend across worker processes: it
// splits a shard's seed range into contiguous chunks, work-steals the
// chunks across N persistent workers (each a ServeWorker process with
// its own warm workspace pool), and merges results in seed order, so
// its output is byte-identical to the in-process pool at any worker
// count.
//
// The coordinator supervises its fleet: per-worker heartbeats detect
// hung processes (not just closed pipes) within a liveness deadline,
// per-sub-shard execution deadlines derived from observed chunk
// latency catch wedged executions, failed chunks are retried with
// capped exponential backoff on surviving (or mid-run respawned)
// workers, and an idle worker speculatively re-runs the slowest
// outstanding chunk (first result wins; duplicates are deduplicated
// deterministically, so hedging never changes results). When the
// per-run respawn budget is exhausted — or no worker can be kept
// alive — the backend degrades gracefully: the remaining seeds run on
// an embedded in-process pool and the fallback is recorded in
// DistribStats. Every recovery path preserves bit-identical merged
// output, because replications are pure functions of (config, seed).
//
// Configurations that cannot cross a process boundary (ErrNotWirable:
// an attached trace recorder, an unregistered Shape or Demand) fall
// back to the embedded in-process pool transparently.
//
// Concurrent Run calls are safe but serialize on the worker set.
type ProcBackend struct {
	opts ProcOptions

	runMu sync.Mutex // serializes Runs: they lease the whole worker set

	mu       sync.Mutex // guards workers/fallback/closed/nextID and all stats below
	workers  []*procWorker
	fallback *session.Pool
	closed   bool
	nextID   uint64

	// Coordinator stats (see DistribStats): worker ids, fleet health,
	// recovery counters, the seed-order merge buffer's high-water mark,
	// and the final stats of reaped workers.
	workerSeq        uint64
	fleetUp          bool // the initial fleet stood up; later spawns are respawns
	deaths           uint64
	respawns         uint64
	mergeHWM         uint64
	heartbeatsMissed uint64
	retries          uint64
	hedgesWon        uint64
	hedgesLost       uint64
	fallbacks        uint64
	decodeRejects    uint64
	retired          []obs.WorkerStats
}

// NewProcBackend returns a backend; worker processes spawn lazily on
// the first Run that needs them.
func NewProcBackend(opts ProcOptions) *ProcBackend {
	return &ProcBackend{opts: opts}
}

// Close shuts the workers down (closing stdin lets them exit cleanly;
// they are killed as a backstop, and every worker is reaped even if an
// earlier one fails to shut down) and drops the fallback pool. The
// first shutdown error wins; Close is idempotent — the second call
// returns nil without touching anything. Close is not safe
// concurrently with Run.
func (b *ProcBackend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	workers := b.workers
	b.workers = nil
	fallback := b.fallback
	b.fallback = nil
	b.mu.Unlock()
	var firstErr error
	for _, w := range workers {
		w.stopReader()
		if err := w.conn.Close(); err != nil && !errors.Is(err, os.ErrClosed) && firstErr == nil {
			firstErr = fmt.Errorf("distrib: close worker %d: %w", w.id, err)
		}
	}
	for _, w := range workers {
		w.conn.Kill()
		w.conn.Wait()
	}
	if fallback != nil {
		fallback.Close()
	}
	return firstErr
}

// spawn establishes one worker endpoint — a process over pipes, or a
// dialed connection when opts.Dial is set — and starts its reader
// goroutine.
func (b *ProcBackend) spawn() (*procWorker, error) {
	if _, err := failpoint.Inject("distrib/spawn"); err != nil {
		return nil, fmt.Errorf("distrib: start worker: %w", err)
	}
	var conn WorkerConn
	if b.opts.Dial != nil {
		c, err := b.opts.Dial()
		if err != nil {
			return nil, fmt.Errorf("distrib: dial worker: %w", err)
		}
		conn = c
	} else {
		c, err := spawnProc(b.opts)
		if err != nil {
			return nil, err
		}
		conn = c
	}
	w := &procWorker{
		conn:   conn,
		fw:     newFrameWriter(conn),
		br:     bufio.NewReaderSize(conn, 1<<16),
		frames: make(chan wireFrame, 16),
		stop:   make(chan struct{}),
	}
	go w.readLoop()
	return w, nil
}

// spawnProc starts one worker process on stdin/stdout pipes.
func spawnProc(opts ProcOptions) (*procConn, error) {
	argv := opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("distrib: resolve worker binary: %w", err)
		}
		argv = []string{exe, "-shard-server"}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	if len(opts.Env) > 0 {
		cmd.Env = append(os.Environ(), opts.Env...)
	}
	if opts.Stderr != nil {
		cmd.Stderr = opts.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: start worker %q: %w", argv[0], err)
	}
	return &procConn{cmd: cmd, in: stdin, out: stdout}, nil
}

// attach returns the live worker set, spawning replacements for dead
// (or not yet started) workers.
func (b *ProcBackend) attach() ([]*procWorker, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errors.New("distrib: backend closed")
	}
	live := b.workers[:0]
	for _, w := range b.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	b.workers = live
	for len(b.workers) < b.opts.workers() {
		w, err := b.spawn()
		if err != nil {
			if len(b.workers) > 0 {
				break // run on what we have
			}
			return nil, err
		}
		b.workerSeq++
		w.id = b.workerSeq
		if b.fleetUp {
			b.respawns++
		}
		b.workers = append(b.workers, w)
	}
	b.fleetUp = true
	return append([]*procWorker(nil), b.workers...), nil
}

// respawn replaces a reaped worker mid-run.
func (b *ProcBackend) respawn() (*procWorker, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("distrib: backend closed")
	}
	b.mu.Unlock()
	w, err := b.spawn()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.workerSeq++
	w.id = b.workerSeq
	b.respawns++
	b.workers = append(b.workers, w)
	b.mu.Unlock()
	return w, nil
}

// reap marks a worker dead, archives its final stats, removes it from
// the fleet, and reclaims its process.
func (b *ProcBackend) reap(w *procWorker) {
	b.mu.Lock()
	if w.dead {
		b.mu.Unlock()
		return
	}
	w.dead = true
	b.deaths++
	b.retired = append(b.retired, b.workerStatsLocked(w))
	for i, x := range b.workers {
		if x == w {
			b.workers = append(b.workers[:i], b.workers[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	w.stopReader()
	_ = w.conn.Close()
	w.conn.Kill()
	go w.conn.Wait()
}

// localPool returns the embedded in-process fallback pool.
func (b *ProcBackend) localPool() *session.Pool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fallback == nil {
		b.fallback = session.NewPool()
	}
	return b.fallback
}

// chunk is a contiguous [start, end) slice of a shard's seed range.
// requeued marks a dispatch of a chunk put back after a worker failure
// (or dispatched speculatively); the worker that completes it records a
// steal.
type chunk struct {
	start, end int
	requeued   bool
}

// chunkSeeds cuts n seeds into in-order chunks of at most size.
func chunkSeeds(n, size int) []chunk {
	var out []chunk
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, chunk{start: start, end: end})
	}
	return out
}

// chunkSize resolves the sub-shard granularity.
func (b *ProcBackend) chunkSize(n, workers int) int {
	if b.opts.ChunkSize > 0 {
		return b.opts.ChunkSize
	}
	size := n / (4 * workers)
	if size < 1 {
		size = 1
	}
	return size
}

// chunkState tracks one chunk's dispatch lifecycle under the run's mu:
// how many dispatches are outstanding (a hedge makes it two), whether
// it finished, its retry backoff gate, and the workers its outstanding
// dispatches run on (so the winner can cancel the loser).
type chunkState struct {
	c         chunk
	attempts  int       // failed attempts so far (drives the backoff)
	notBefore time.Time // backoff gate for the next dispatch
	running   int       // outstanding dispatches (0, 1, or 2 with a hedge)
	done      bool
	hedged    bool // a speculative duplicate has been dispatched
	startedAt time.Time
	active    map[uint64]*procWorker // dispatch id -> worker
}

// Run implements session.Backend. Results are merged in seed order;
// cancellation returns the longest finished contiguous seed prefix
// together with ctx's error, exactly like the in-process pool. (Unlike
// the in-process pool, OnResult may additionally have fired for a few
// completed replications beyond that prefix — chunks cancel
// independently — which streaming and progress hooks tolerate by
// construction.)
//
// Worker failures never invalidate the run: dead, hung, or misbehaving
// workers are reaped and their chunks retried (with backoff) on
// survivors or mid-run respawns; if the recovery budget runs out, the
// remaining seeds execute on the embedded in-process pool. The only
// hard failures are a replication error inside the simulation itself
// and an unspawnable initial fleet.
func (b *ProcBackend) Run(ctx context.Context, shard session.Shard) (session.ShardResult, error) {
	if len(shard.Seeds) == 0 {
		return session.ShardResult{Metrics: []*system.Metrics{}}, ctx.Err()
	}
	wc, err := ToWire(shard.Config)
	if err != nil {
		if errors.Is(err, ErrNotWirable) {
			b.mu.Lock()
			b.fallbacks++
			b.mu.Unlock()
			return b.localPool().Run(ctx, shard)
		}
		return session.ShardResult{}, err
	}

	b.runMu.Lock()
	defer b.runMu.Unlock()
	workers, err := b.attach()
	if err != nil {
		b.mu.Lock()
		closed := b.closed
		if !closed && b.opts.DegradeToLocal {
			b.fallbacks++
			b.mu.Unlock()
			return b.localPool().Run(ctx, shard)
		}
		b.mu.Unlock()
		return session.ShardResult{}, err
	}

	chunks := chunkSeeds(len(shard.Seeds), b.chunkSize(len(shard.Seeds), len(workers)))
	states := make([]*chunkState, len(chunks))
	for i, c := range chunks {
		states[i] = &chunkState{c: c, active: map[uint64]*procWorker{}}
	}

	var (
		mu          sync.Mutex
		doneCount   int // chunks that completed
		live        = len(workers)
		consecFails int  // consecutive chunk failures (circuit breaker)
		respawned   int  // mid-run respawns consumed from the budget
		degraded    bool // circuit breaker tripped: stop dispatching to workers
		failErr     error
		cancelled   bool
		ewma        float64 // EWMA of completed-chunk latency, seconds
		ewmaN       int
	)
	budget := b.opts.respawnBudget()
	cond := sync.NewCond(&mu)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	metrics := make([]*system.Metrics, len(shard.Seeds))
	delivered := make([]bool, len(shard.Seeds))
	deliveredCount, prefix := 0, 0 // for merge-buffer depth: arrived − emittable
	record := func(i int, m *system.Metrics) {
		mu.Lock()
		first := !delivered[i]
		delivered[i] = true
		metrics[i] = m
		if first {
			deliveredCount++
			for prefix < len(delivered) && delivered[prefix] {
				prefix++
			}
			// Results held back because an earlier seed is still running;
			// lock order run-local mu → b.mu is taken nowhere in reverse.
			if d := uint64(deliveredCount - prefix); d > 0 {
				b.noteMergeDepth(d)
			}
		}
		mu.Unlock()
		// A chunk re-run after a worker failure (or a hedged duplicate)
		// replays indices another dispatch already streamed; OnResult
		// fires once per index — first result wins, deterministically,
		// because every dispatch computes the identical metrics.
		if first && shard.OnResult != nil {
			shard.OnResult(i, m)
		}
	}

	// Propagate caller cancellation into the dispatch state so idle
	// workers stop waiting for chunks, and re-broadcast periodically so
	// time-gated decisions (backoff expiry, straggler age) are
	// re-evaluated without a condition-variable timeout.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			mu.Lock()
			cancelled = true
			cond.Broadcast()
			mu.Unlock()
		case <-stopWatch:
		}
	}()
	tick := b.opts.heartbeat() / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cond.Broadcast()
			case <-stopWatch:
				return
			}
		}
	}()

	// pickWork selects the next dispatch for an idle worker: the first
	// queued chunk whose backoff elapsed, else — past the straggler
	// threshold — a speculative duplicate of the oldest outstanding
	// chunk. Caller holds mu.
	hedgeFactor := b.opts.hedgeFactor()
	pickWork := func() (*chunkState, bool) {
		now := time.Now()
		for _, cs := range states {
			if cs.done || cs.running > 0 || now.Before(cs.notBefore) {
				continue
			}
			return cs, false
		}
		if hedgeFactor > 0 && ewmaN > 0 {
			thr := time.Duration(hedgeFactor * ewma * float64(time.Second))
			if hb := b.opts.heartbeat(); thr < hb {
				thr = hb
			}
			var best *chunkState
			var bestAge time.Duration
			for _, cs := range states {
				if cs.done || cs.running != 1 || cs.hedged {
					continue
				}
				if age := now.Sub(cs.startedAt); age > thr && age > bestAge {
					best, bestAge = cs, age
				}
			}
			if best != nil {
				return best, true
			}
		}
		return nil, false
	}

	// requeue puts a failed dispatch's chunk back with backoff, and
	// trips the circuit breaker after too many consecutive failures.
	// Caller holds mu.
	requeue := func(cs *chunkState) {
		if cs.done || cs.running > 0 {
			return // another dispatch (a hedge) still carries the chunk
		}
		cs.attempts++
		cs.hedged = false
		cs.notBefore = time.Now().Add(b.opts.retryBackoff(cs.attempts - 1))
		b.countRetry()
		consecFails++
		if consecFails >= budget {
			degraded = true
		}
	}

	var wg sync.WaitGroup
	var dispatch func(w *procWorker)
	dispatch = func(w *procWorker) {
		defer wg.Done()
		for {
			mu.Lock()
			var cs *chunkState
			var isHedge bool
			for {
				if failErr != nil || cancelled || degraded || doneCount == len(states) {
					mu.Unlock()
					return
				}
				cs, isHedge = pickWork()
				if cs != nil {
					break
				}
				cond.Wait()
			}
			cs.running++
			if isHedge {
				cs.hedged = true
			} else {
				cs.startedAt = time.Now()
			}
			c := cs.c
			c.requeued = cs.attempts > 0 || isHedge
			deadline := time.Duration(0)
			if ewmaN > 0 {
				deadline = time.Duration(8 * ewma * float64(time.Second))
				if min := 2 * b.opts.workerTimeout(); deadline < min {
					deadline = min
				}
				for i := 0; i < cs.attempts && i < 3; i++ {
					deadline *= 2
				}
			}
			b.mu.Lock()
			b.nextID++
			id := b.nextID
			b.mu.Unlock()
			cs.active[id] = w
			start := time.Now()
			mu.Unlock()

			cerr := b.runChunk(runCtx, w, &wc, shard, c, id, deadline, record)

			mu.Lock()
			delete(cs.active, id)
			cs.running--
			switch {
			case cs.done:
				// Another dispatch won the race; this one's results were
				// deduplicated. Nothing to account — hedge win/loss was
				// recorded by the winner.
			case cerr == nil:
				cs.done = true
				doneCount++
				consecFails = 0
				if cs.hedged {
					if isHedge {
						b.countHedge(true)
					} else {
						b.countHedge(false)
					}
				}
				// First result wins: cancel the loser so its worker frees
				// up (its late results are deduplicated regardless).
				for oid, ow := range cs.active {
					go func(ow *procWorker, oid uint64) {
						_ = ow.fw.send(msgCancel, cancelMsg{ID: oid})
					}(ow, oid)
				}
				el := time.Since(start).Seconds()
				if ewmaN == 0 {
					ewma = el
				} else {
					ewma = 0.7*ewma + 0.3*el
				}
				ewmaN++
			case isCancellation(cerr):
				if !cancelled {
					// A cancel ack without a run cancellation: the chunk
					// was cancelled as a hedge loser but lost its winner
					// (or a stray); put it back.
					requeue(cs)
				}
			case errors.Is(cerr, errWorkerDead):
				requeue(cs)
			default:
				if failErr == nil {
					failErr = cerr
					cancelRun()
				}
			}
			cond.Broadcast()
			dead := errors.Is(cerr, errWorkerDead)
			mu.Unlock()
			if !dead {
				continue
			}

			// The worker is gone (died, hung, or broke protocol): reap
			// it and — within the budget — respawn a replacement after a
			// capped backoff so the fleet heals mid-run.
			b.reap(w)
			mu.Lock()
			live--
			canRespawn := !cancelled && failErr == nil && !degraded &&
				doneCount < len(states) && respawned < budget
			attempt := respawned
			if canRespawn {
				respawned++
			}
			mu.Unlock()
			if canRespawn {
				select {
				case <-time.After(b.opts.retryBackoff(attempt)):
				case <-runCtx.Done():
					return
				}
				if nw, rerr := b.respawn(); rerr == nil {
					mu.Lock()
					live++
					mu.Unlock()
					wg.Add(1)
					go dispatch(nw)
					return
				}
				// Spawn failure consumes budget like any other failure.
				mu.Lock()
				consecFails++
				if consecFails >= budget {
					degraded = true
				}
				mu.Unlock()
			}
			mu.Lock()
			if live == 0 && !cancelled && failErr == nil && doneCount < len(states) {
				// No worker left and no respawn coming: degrade to the
				// in-process pool rather than fail the run.
				degraded = true
			}
			cond.Broadcast()
			mu.Unlock()
			return
		}
	}
	for _, w := range workers {
		wg.Add(1)
		go dispatch(w)
	}
	wg.Wait()
	close(stopWatch)

	// Graceful degradation: the circuit breaker tripped (or the fleet
	// could not be kept alive), so every seed not yet delivered runs on
	// the embedded in-process pool. Determinism makes the switch
	// invisible in the results.
	if degraded && failErr == nil && ctx.Err() == nil {
		var idxs []int
		for i, d := range delivered {
			if !d {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) > 0 {
			b.mu.Lock()
			b.fallbacks++
			b.mu.Unlock()
			seeds := make([]uint64, len(idxs))
			for j, i := range idxs {
				seeds[j] = shard.Seeds[i]
			}
			fb := session.Shard{
				Config:      shard.Config,
				Seeds:       seeds,
				Parallelism: shard.Parallelism,
				OnResult:    func(j int, m *system.Metrics) { record(idxs[j], m) },
			}
			if _, ferr := b.localPool().Run(ctx, fb); ferr != nil && !isCancellation(ferr) {
				failErr = ferr
			}
		}
	}

	if failErr != nil && !isCancellation(failErr) {
		return session.ShardResult{}, failErr
	}
	if cerr := ctx.Err(); cerr != nil {
		// Longest contiguous finished prefix; chunks cancel
		// independently, so completions beyond the first hole are
		// discarded (deterministic re-runs would reproduce them).
		completed := 0
		for completed < len(metrics) && metrics[completed] != nil {
			completed++
		}
		for i := completed; i < len(metrics); i++ {
			metrics[i] = nil
		}
		return session.ShardResult{Metrics: metrics, Completed: completed}, cerr
	}
	return session.ShardResult{Metrics: metrics, Completed: len(metrics)}, nil
}

// runChunk dispatches one sub-shard to a worker and consumes its frames
// until the coded done frame, probing liveness with heartbeats while
// the worker is silent. Transport failures, missed liveness deadlines,
// and overrun execution deadlines return errors wrapping errWorkerDead;
// the caller reaps the worker and re-queues the chunk.
func (b *ProcBackend) runChunk(ctx context.Context, w *procWorker, wc *WireConfig,
	shard session.Shard, c chunk, id uint64, deadline time.Duration,
	record func(int, *system.Metrics)) error {
	if _, err := failpoint.Inject("distrib/dispatch"); err != nil {
		return fmt.Errorf("%w: dispatch: %v", errWorkerDead, err)
	}
	msg := shardMsg{
		ID:          id,
		Config:      *wc,
		Seeds:       shard.Seeds[c.start:c.end],
		Parallelism: shard.Parallelism,
	}
	if err := w.fw.send(msgShard, msg); err != nil {
		return fmt.Errorf("%w: send: %v", errWorkerDead, err)
	}
	// Forward cancellation as a frame while the loop below waits for
	// the worker's (possibly partial) results.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = w.fw.send(msgCancel, cancelMsg{ID: id})
		case <-watchDone:
		}
	}()

	hb := b.opts.heartbeat()
	liveness := b.opts.workerTimeout()
	start := time.Now()
	last := start
	var pingSeq uint64
	pingOutstanding := false
	timer := time.NewTimer(hb)
	defer timer.Stop()
	for {
		select {
		case f := <-w.frames:
			if f.err != nil {
				return fmt.Errorf("%w: read: %v", errWorkerDead, f.err)
			}
			last = time.Now()
			b.mu.Lock()
			w.framesRecv++
			w.bytesRecv += uint64(len(f.payload)) + frameOverhead
			b.mu.Unlock()
			switch f.kind {
			case msgPong:
				pingOutstanding = false
			case msgResult:
				var m resultMsg
				if err := decodeMsg(f.kind, f.payload, &m); err != nil {
					b.countDecodeReject()
					return fmt.Errorf("%w: %v", errWorkerDead, err)
				}
				if m.ID != id {
					continue // stale frame from a cancelled dispatch
				}
				if m.Index < 0 || m.Index >= c.end-c.start || m.Metrics == nil {
					b.countDecodeReject()
					return fmt.Errorf("%w: malformed result frame (id %d, index %d)", errWorkerDead, m.ID, m.Index)
				}
				record(c.start+m.Index, m.Metrics)
			case msgDone:
				var m doneMsg
				if err := decodeMsg(f.kind, f.payload, &m); err != nil {
					b.countDecodeReject()
					return fmt.Errorf("%w: %v", errWorkerDead, err)
				}
				if m.ID != id {
					continue // stale done from a cancelled dispatch
				}
				b.mu.Lock()
				w.subShards++
				if c.requeued {
					w.steals++
				}
				w.pool = m.Pool // cumulative gauges; latest frame supersedes
				b.mu.Unlock()
				return m.Code.err(m.Error)
			default:
				b.countDecodeReject()
				return fmt.Errorf("%w: unexpected frame kind %d", errWorkerDead, f.kind)
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(hb)
		case <-timer.C:
			now := time.Now()
			if pingOutstanding {
				b.countMissedHeartbeat()
			}
			if now.Sub(last) > liveness {
				return fmt.Errorf("worker %d silent for %v: %w", w.id, now.Sub(last).Round(time.Millisecond), errWorkerHung)
			}
			if deadline > 0 && now.Sub(start) > deadline {
				return fmt.Errorf("sub-shard ran %v (deadline %v): %w", now.Sub(start).Round(time.Millisecond), deadline, errChunkDeadline)
			}
			pingSeq++
			if err := w.fw.send(msgPing, pingMsg{Seq: pingSeq}); err != nil {
				return fmt.Errorf("%w: ping: %v", errWorkerDead, err)
			}
			pingOutstanding = true
			timer.Reset(hb)
		}
	}
}

// noteMergeDepth raises the merge-buffer high-water mark.
func (b *ProcBackend) noteMergeDepth(d uint64) {
	b.mu.Lock()
	if d > b.mergeHWM {
		b.mergeHWM = d
	}
	b.mu.Unlock()
}

// countRetry, countHedge, countMissedHeartbeat, and countDecodeReject
// bump the coordinator's recovery counters (cold path, under b.mu).
func (b *ProcBackend) countRetry() {
	b.mu.Lock()
	b.retries++
	b.mu.Unlock()
}

func (b *ProcBackend) countHedge(won bool) {
	b.mu.Lock()
	if won {
		b.hedgesWon++
	} else {
		b.hedgesLost++
	}
	b.mu.Unlock()
}

func (b *ProcBackend) countMissedHeartbeat() {
	b.mu.Lock()
	b.heartbeatsMissed++
	b.mu.Unlock()
}

func (b *ProcBackend) countDecodeReject() {
	b.mu.Lock()
	b.decodeRejects++
	b.mu.Unlock()
}

// workerStatsLocked snapshots one worker's stats; b.mu must be held.
func (b *ProcBackend) workerStatsLocked(w *procWorker) obs.WorkerStats {
	frames, bytes := w.fw.counts()
	return obs.WorkerStats{
		ID:         w.id,
		Alive:      !w.dead,
		SubShards:  w.subShards,
		Steals:     w.steals,
		FramesSent: frames,
		FramesRecv: w.framesRecv,
		BytesSent:  bytes,
		BytesRecv:  w.bytesRecv,
		Pool:       w.pool,
	}
}

// DistribStats implements session.DistribStatser: a point-in-time view
// of the coordinator — fleet health, recovery counters (heartbeats
// missed, chunk retries, hedge outcomes, in-process fallbacks, frame
// rejects), per-worker transport and dispatch counters (live and
// retired, ordered by spawn id), and the seed-order merge buffer's
// high-water mark.
func (b *ProcBackend) DistribStats() *obs.DistribStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := &obs.DistribStats{
		Deaths:             b.deaths,
		Respawns:           b.respawns,
		MergeDepthHWM:      b.mergeHWM,
		HeartbeatsMissed:   b.heartbeatsMissed,
		Retries:            b.retries,
		HedgesWon:          b.hedgesWon,
		HedgesLost:         b.hedgesLost,
		Fallbacks:          b.fallbacks,
		FrameDecodeRejects: b.decodeRejects,
		Workers:            append([]obs.WorkerStats(nil), b.retired...),
	}
	for _, w := range b.workers {
		if w.dead {
			continue // archived in retired by reap
		}
		out.Workers = append(out.Workers, b.workerStatsLocked(w))
	}
	sort.Slice(out.Workers, func(i, j int) bool { return out.Workers[i].ID < out.Workers[j].ID })
	return out
}

// PoolStats implements session.PoolStatser: the fleet-wide total of
// every worker's pool gauges (as last reported over the wire) plus the
// in-process fallback pool, if one ever ran.
func (b *ProcBackend) PoolStats() obs.PoolStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var ps obs.PoolStats
	for _, w := range b.retired {
		ps.Add(w.Pool)
	}
	for _, w := range b.workers {
		if w.dead {
			continue // already counted via retired
		}
		ps.Add(w.pool)
	}
	if b.fallback != nil {
		ps.Add(b.fallback.PoolStats())
	}
	return ps
}
