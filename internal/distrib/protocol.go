// Package distrib is the multi-process execution backend behind the
// session.Backend seam: a coordinator (ProcBackend) that spawns N worker
// processes and work-steals sub-shards across them, and a worker server
// (ServeWorker) that executes the sub-shards it receives over a
// length-prefixed binary protocol on stdin/stdout.
//
// Every message is one frame:
//
//	[uint32 big-endian payload length] [1 byte message kind] [gob payload]
//
// Coordinator -> worker: shardMsg (run these seeds), cancelMsg (stop the
// identified shard at the next replication boundary). Worker ->
// coordinator: resultMsg (one replication's metrics, streamed as it
// finishes), doneMsg (the shard's outcome with a structured Code).
// Closing the worker's stdin shuts it down.
//
// Outcomes carry a Code rather than an error string alone because error
// identity does not survive a process boundary: a worker's
// context.Canceled arrives at the coordinator as CodeCanceled and is
// rehydrated into a CanceledError that still satisfies
// errors.Is(err, context.Canceled), so the run layer's cancellation
// semantics (partial results remain valid) hold across processes.
//
// Simulation results cross the boundary inside system.Metrics via gob,
// which routes the stats accumulators and scenario series through their
// exact (IEEE-754 bit) binary encodings — a merged result is
// bit-identical to one computed in process, and the coordinator merges
// sub-shards in seed order, so ProcBackend output is byte-identical to
// the in-process pool at any worker count.
package distrib

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

func init() {
	// The wire configuration carries Shape and Demand as gob interface
	// values; every concrete type this package can ship is registered
	// here. ToWire rejects unknown implementations up front.
	gob.Register(workload.SerialShape{})
	gob.Register(workload.ParallelShape{})
	gob.Register(workload.MixedShape{})
	gob.Register(workload.HeteroSerialShape{})
	gob.Register(workload.ExponentialDemand{})
	gob.Register(workload.ParetoDemand{})
	gob.Register(workload.LognormalDemand{})
	gob.Register(workload.DeterministicDemand{})
}

// msgKind tags a frame's payload type.
type msgKind uint8

const (
	msgShard  msgKind = iota + 1 // coordinator -> worker: shardMsg
	msgCancel                    // coordinator -> worker: cancelMsg
	msgResult                    // worker -> coordinator: resultMsg
	msgDone                      // worker -> coordinator: doneMsg
	msgPing                      // coordinator -> worker: pingMsg (liveness probe)
	msgPong                      // worker -> coordinator: pongMsg (liveness reply)
	msgHello                     // either direction: helloMsg (transport handshake)
)

// Handshake identity. ProtocolMagic distinguishes this protocol from an
// arbitrary byte stream that happened to connect to a worker port;
// ProtocolVersion is bumped on any incompatible frame or payload change,
// so a coordinator and worker built from different protocol revisions
// fail the handshake with a structured *FrameError instead of a gob
// decode error deep inside a shard.
const (
	ProtocolMagic   uint32 = 0x53444131 // "SDA1"
	ProtocolVersion uint32 = 1
)

// maxFrame bounds a frame payload; anything larger is a protocol error,
// not data (it protects against reading a corrupted length as a huge
// allocation).
const maxFrame = 1 << 30

// corruptKind is the frame-kind byte the distrib/frame-write failpoint
// scribbles over a frame's real kind: no valid kind, so every receiver
// must reject the frame as corrupt rather than misinterpret it.
const corruptKind = 0xEE

// Code classifies a shard outcome on the wire.
type Code uint8

const (
	// CodeOK: every seed ran; resultMsg frames covered all of them.
	CodeOK Code = iota
	// CodeCanceled: the shard was cancelled; Completed counts the seed
	// prefix that finished. Maps to an error satisfying
	// errors.Is(err, context.Canceled) on the coordinator side.
	CodeCanceled
	// CodeError: a replication failed; the sub-shard has no usable
	// result.
	CodeError
)

// err rehydrates a wire code into the error the in-process backend
// would have returned.
func (c Code) err(msg string) error {
	switch c {
	case CodeOK:
		return nil
	case CodeCanceled:
		return &CanceledError{Msg: msg}
	default:
		return fmt.Errorf("distrib: worker: %s", msg)
	}
}

// CanceledError is the coordinator-side image of a cancellation that
// happened in a worker process. It unwraps to context.Canceled, so the
// run layer's isCancellation test — errors.Is(err, context.Canceled) —
// holds even though the cancelled context lived in another process.
type CanceledError struct{ Msg string }

// Error implements error.
func (e *CanceledError) Error() string { return "distrib: worker canceled: " + e.Msg }

// Unwrap makes errors.Is(e, context.Canceled) true.
func (e *CanceledError) Unwrap() error { return context.Canceled }

// isCancellation mirrors the session package's test.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// shardMsg asks a worker to run one sub-shard.
type shardMsg struct {
	ID          uint64
	Config      WireConfig
	Seeds       []uint64
	Parallelism int
}

// cancelMsg asks a worker to stop shard ID at the next replication
// boundary (claimed replications run to completion, preserving the
// prefix guarantee).
type cancelMsg struct{ ID uint64 }

// pingMsg is a coordinator liveness probe; the worker's main loop
// answers every ping with a pongMsg echoing Seq. Pings flow while a
// sub-shard is outstanding, so a worker whose main loop hangs (or whose
// process wedges) stops answering and misses its liveness deadline even
// though its pipe never closes.
type pingMsg struct{ Seq uint64 }

// pongMsg answers a ping.
type pongMsg struct{ Seq uint64 }

// helloMsg opens a network transport: each side announces its magic and
// protocol version before any shard traffic. The stdin/stdout transport
// skips the handshake — the coordinator spawns its workers from its own
// binary, so the versions match by construction.
type helloMsg struct {
	Magic   uint32
	Version uint32
}

// SendHello writes one handshake frame announcing this binary's
// protocol identity.
func SendHello(w io.Writer) error {
	return newFrameWriter(w).send(msgHello, helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion})
}

// ReadHello reads the peer's handshake frame and verifies it. Every
// failure — a short or non-frame stream, a non-hello first frame, a
// foreign magic, a different protocol version — is a *FrameError with
// Op "handshake", so transports reject mismatched binaries before any
// shard state exists on either side.
func ReadHello(r io.Reader) error {
	kind, payload, err := readFrame(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return &FrameError{Op: "handshake", Err: err}
	}
	if kind != msgHello {
		return &FrameError{Op: "handshake", Kind: kind, Len: uint32(len(payload)),
			Err: fmt.Errorf("expected hello, got frame kind %d", kind)}
	}
	var m helloMsg
	if err := decodeMsg(kind, payload, &m); err != nil {
		return &FrameError{Op: "handshake", Kind: kind, Len: uint32(len(payload)), Err: err}
	}
	if m.Magic != ProtocolMagic {
		return &FrameError{Op: "handshake", Kind: kind, Len: uint32(len(payload)),
			Err: fmt.Errorf("magic %#08x is not a distrib peer (want %#08x)", m.Magic, ProtocolMagic)}
	}
	if m.Version != ProtocolVersion {
		return &FrameError{Op: "handshake", Kind: kind, Len: uint32(len(payload)),
			Err: fmt.Errorf("protocol version %d, this binary speaks %d", m.Version, ProtocolVersion)}
	}
	return nil
}

// resultMsg streams one finished replication: Index is the position
// within the sub-shard's Seeds.
type resultMsg struct {
	ID      uint64
	Index   int
	Metrics *system.Metrics
}

// doneMsg ends a shard: Completed is the finished seed-prefix length
// (== len(Seeds) for CodeOK), Error the message for non-OK codes. Pool
// carries the worker process's cumulative workspace-pool gauges home —
// the coordinator keeps the latest per worker, giving the fleet view
// without a separate stats round-trip.
type doneMsg struct {
	ID        uint64
	Completed int
	Code      Code
	Error     string
	Pool      obs.PoolStats
}

// frameOverhead is the per-frame wire header: 4-byte big-endian payload
// length plus 1-byte kind.
const frameOverhead = 5

// frameWriter serializes whole frames with a single Write each, so
// concurrent senders (a streaming result and a cancel frame) never
// interleave bytes.
type frameWriter struct {
	mu     sync.Mutex
	w      io.Writer
	buf    bytes.Buffer
	frames uint64 // frames written, for the per-worker wire stats
	bytes  uint64 // bytes written (header + payload)
}

func newFrameWriter(w io.Writer) *frameWriter { return &frameWriter{w: w} }

// send encodes msg and writes one frame.
func (fw *frameWriter) send(kind msgKind, msg any) error {
	corrupt, ferr := failpoint.Inject("distrib/frame-write")
	if ferr != nil {
		return ferr
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.buf.Reset()
	fw.buf.Write([]byte{0, 0, 0, 0, byte(kind)})
	if err := gob.NewEncoder(&fw.buf).Encode(msg); err != nil {
		return fmt.Errorf("distrib: encode %d: %w", kind, err)
	}
	b := fw.buf.Bytes()
	if len(b)-5 > maxFrame {
		return fmt.Errorf("distrib: frame of %d bytes exceeds limit", len(b)-5)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-5))
	if corrupt {
		// Scribble the kind byte: the frame stays length-correct (the
		// stream does not desynchronize) but the receiver must reject it
		// as an unknown kind — corruption by construction detectable.
		b[4] = corruptKind
	}
	if _, err := fw.w.Write(b); err != nil {
		return err
	}
	fw.frames++
	fw.bytes += uint64(len(b))
	return nil
}

// counts returns the frames and bytes successfully written so far.
func (fw *frameWriter) counts() (frames, bytes uint64) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.frames, fw.bytes
}

// FrameError is the structured rejection of a malformed frame: which
// stage of framing failed (Op), the claimed payload length and frame
// kind where known, and the underlying cause. Every non-EOF framing
// failure is a *FrameError — a corrupt or truncated stream yields a
// typed error the caller can count and recover from, never a panic and
// never an unbounded wait.
type FrameError struct {
	// Op is the stage that rejected the frame: "header" (short read in
	// the 5-byte header), "length" (claimed length exceeds maxFrame),
	// "payload" (stream ended inside the payload), "decode" (gob
	// rejected the payload), "kind" (no such frame kind), or
	// "handshake" (the peer is not a compatible distrib binary).
	Op string
	// Kind is the frame-kind byte as read (zero for header failures).
	Kind msgKind
	// Len is the claimed payload length as read.
	Len uint32
	// Err is the underlying cause, when one exists.
	Err error
}

// Error implements error.
func (e *FrameError) Error() string {
	msg := fmt.Sprintf("distrib: bad frame (%s, kind %d, len %d)", e.Op, e.Kind, e.Len)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the cause to errors.Is/As.
func (e *FrameError) Unwrap() error { return e.Err }

// readChunk bounds a single payload-read allocation; a corrupt length
// prefix claiming a huge payload costs at most one readChunk of memory
// before the stream runs dry.
const readChunk = 1 << 20

// readFrame reads one frame. io.EOF (clean close between frames) passes
// through unwrapped; every other failure is a *FrameError. The payload
// is read incrementally, so a corrupted length prefix never provokes an
// allocation larger than the bytes actually present (plus one chunk).
func readFrame(r io.Reader) (msgKind, []byte, error) {
	if _, err := failpoint.Inject("distrib/frame-read"); err != nil {
		return 0, nil, &FrameError{Op: "header", Err: err}
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, &FrameError{Op: "header", Err: err}
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	kind := msgKind(hdr[4])
	if n > maxFrame {
		return 0, nil, &FrameError{Op: "length", Kind: kind, Len: n}
	}
	capHint := int(n)
	if capHint > readChunk {
		capHint = readChunk
	}
	p := make([]byte, 0, capHint)
	for len(p) < int(n) {
		step := int(n) - len(p)
		if step > readChunk {
			step = readChunk
		}
		start := len(p)
		if cap(p)-start < step {
			grown := make([]byte, start, start+step)
			copy(grown, p)
			p = grown
		}
		p = p[:start+step]
		if _, err := io.ReadFull(r, p[start:]); err != nil {
			return 0, nil, &FrameError{Op: "payload", Kind: kind, Len: n, Err: err}
		}
	}
	return kind, p, nil
}

// decodeMsg unpacks a frame payload; failures are structured
// *FrameError values (Op "decode").
func decodeMsg(kind msgKind, p []byte, into any) error {
	if _, err := failpoint.Inject("distrib/decode"); err != nil {
		return &FrameError{Op: "decode", Kind: kind, Len: uint32(len(p)), Err: err}
	}
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(into); err != nil {
		return &FrameError{Op: "decode", Kind: kind, Len: uint32(len(p)), Err: err}
	}
	return nil
}

// ErrNotWirable marks a configuration that cannot cross a process
// boundary (an attached trace recorder, or a Shape/Demand implementation
// this package does not know). ProcBackend falls back to in-process
// execution for such configurations.
var ErrNotWirable = errors.New("distrib: config cannot cross a process boundary")

// WireConfig is system.Config flattened for the wire: the scenario
// travels as its declarative Spec (recompiled worker-side), the trace
// recorder cannot travel at all, and Seed is omitted because the shard's
// Seeds list overrides it per replication.
type WireConfig struct {
	Nodes                int
	MuSubtask, MuLocal   float64
	M                    int
	Load, FracLocal      float64
	SlackMin, SlackMax   float64
	RelFlex, PexRelErr   float64
	Scheduler            string
	TardyAbort           bool
	FirmAbort            bool
	Preemptive           bool
	SSP, PSP             string
	Shape                workload.Shape
	LocalRateMultipliers []float64
	Horizon, Warmup      float64
	Scenario             *scenario.Spec
	DisablePooling       bool
	EventQueue           string
	RNGLayout            string
}

// shapeDemand extracts the demand of a known shape.
func shapeDemand(s workload.Shape) (workload.Demand, bool) {
	switch sh := s.(type) {
	case workload.SerialShape:
		return sh.Demand, true
	case workload.ParallelShape:
		return sh.Demand, true
	case workload.MixedShape:
		return sh.Demand, true
	case workload.HeteroSerialShape:
		return sh.Demand, true
	default:
		return nil, false
	}
}

// wirableDemand reports whether d is a registered concrete demand.
func wirableDemand(d workload.Demand) bool {
	switch d.(type) {
	case nil, workload.ExponentialDemand, workload.ParetoDemand,
		workload.LognormalDemand, workload.DeterministicDemand:
		return true
	default:
		return false
	}
}

// ToWire flattens a configuration for the wire, or reports
// ErrNotWirable for configurations that must stay in process.
func ToWire(cfg system.Config) (WireConfig, error) {
	if cfg.Trace != nil {
		return WireConfig{}, fmt.Errorf("%w: a trace recorder is attached", ErrNotWirable)
	}
	if cfg.Shape != nil {
		d, known := shapeDemand(cfg.Shape)
		if !known {
			return WireConfig{}, fmt.Errorf("%w: unknown shape %T", ErrNotWirable, cfg.Shape)
		}
		if !wirableDemand(d) {
			return WireConfig{}, fmt.Errorf("%w: unknown demand %T", ErrNotWirable, d)
		}
	}
	wc := WireConfig{
		Nodes:                cfg.Nodes,
		MuSubtask:            cfg.MuSubtask,
		MuLocal:              cfg.MuLocal,
		M:                    cfg.M,
		Load:                 cfg.Load,
		FracLocal:            cfg.FracLocal,
		SlackMin:             cfg.SlackMin,
		SlackMax:             cfg.SlackMax,
		RelFlex:              cfg.RelFlex,
		PexRelErr:            cfg.PexRelErr,
		Scheduler:            string(cfg.Scheduler),
		TardyAbort:           cfg.TardyAbort,
		FirmAbort:            cfg.FirmAbort,
		Preemptive:           cfg.Preemptive,
		SSP:                  cfg.SSP,
		PSP:                  cfg.PSP,
		Shape:                cfg.Shape,
		LocalRateMultipliers: cfg.LocalRateMultipliers,
		Horizon:              cfg.Horizon,
		Warmup:               cfg.Warmup,
		DisablePooling:       cfg.DisablePooling,
		EventQueue:           string(cfg.EventQueue),
		RNGLayout:            cfg.RNGLayout,
	}
	if cfg.Scenario != nil {
		sp := cfg.Scenario.Spec()
		wc.Scenario = &sp
	}
	return wc, nil
}

// Config rebuilds the runnable configuration worker-side, recompiling
// the scenario spec.
func (wc WireConfig) Config() (system.Config, error) {
	cfg := system.Config{
		Nodes:                wc.Nodes,
		MuSubtask:            wc.MuSubtask,
		MuLocal:              wc.MuLocal,
		M:                    wc.M,
		Load:                 wc.Load,
		FracLocal:            wc.FracLocal,
		SlackMin:             wc.SlackMin,
		SlackMax:             wc.SlackMax,
		RelFlex:              wc.RelFlex,
		PexRelErr:            wc.PexRelErr,
		Scheduler:            sched.Policy(wc.Scheduler),
		TardyAbort:           wc.TardyAbort,
		FirmAbort:            wc.FirmAbort,
		Preemptive:           wc.Preemptive,
		SSP:                  wc.SSP,
		PSP:                  wc.PSP,
		Shape:                wc.Shape,
		LocalRateMultipliers: wc.LocalRateMultipliers,
		Horizon:              wc.Horizon,
		Warmup:               wc.Warmup,
		DisablePooling:       wc.DisablePooling,
		EventQueue:           sim.QueueKind(wc.EventQueue),
		RNGLayout:            wc.RNGLayout,
	}
	if wc.Scenario != nil {
		sc, err := scenario.New(*wc.Scenario)
		if err != nil {
			return system.Config{}, err
		}
		cfg.Scenario = sc
	}
	return cfg, nil
}
