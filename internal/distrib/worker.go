package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/failpoint"
	"repro/internal/session"
	"repro/internal/system"
)

// ServeWorker runs the shard-worker side of the protocol: it reads
// shard, cancel, and ping frames from r until EOF and writes result,
// done, and pong frames to w. Each worker process owns one warm
// session.Pool, so consecutive sub-shards reuse workspaces exactly as
// the in-process backend does. Shards run concurrently if the
// coordinator pipelines them (the current coordinator sends one at a
// time per worker); cancellation stops a shard at its next replication
// boundary, preserving the seed-prefix guarantee. Pings are answered
// from the main loop even while shards execute in their goroutines, so
// liveness replies flow as long as the process itself is healthy.
//
// A clean shutdown — stdin closing between frames — returns nil after
// in-flight shards finish. A malformed frame (truncated, corrupt,
// unknown kind) returns its structured *FrameError: the worker exits
// rather than guess at a desynchronized stream, and the coordinator
// recovers by respawning it and re-dispatching the chunk.
func ServeWorker(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	fw := newFrameWriter(w)
	pool := session.NewPool()
	defer pool.Close()

	var (
		mu      sync.Mutex
		cancels = make(map[uint64]context.CancelFunc)
		wg      sync.WaitGroup
	)
	defer wg.Wait()
	for {
		kind, payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // coordinator closed the pipe
			}
			return err
		}
		// The chaos seam for a wedged worker: a hang here stops frame
		// processing (and so pong replies) without the pipe ever
		// closing — exactly the failure heartbeats exist to catch. A
		// kill here is the abrupt-death case.
		if _, err := failpoint.Inject("distrib/worker-loop"); err != nil {
			return err
		}
		switch kind {
		case msgShard:
			var m shardMsg
			if err := decodeMsg(kind, payload, &m); err != nil {
				return err
			}
			ctx, cancel := context.WithCancel(context.Background())
			mu.Lock()
			cancels[m.ID] = cancel
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					mu.Lock()
					delete(cancels, m.ID)
					mu.Unlock()
					cancel()
				}()
				runWorkerShard(ctx, pool, fw, m)
			}()
		case msgCancel:
			var m cancelMsg
			if err := decodeMsg(kind, payload, &m); err != nil {
				return err
			}
			mu.Lock()
			if cancel := cancels[m.ID]; cancel != nil {
				cancel()
			}
			mu.Unlock()
		case msgPing:
			var m pingMsg
			if err := decodeMsg(kind, payload, &m); err != nil {
				return err
			}
			// Write errors mean the coordinator is gone; the main loop
			// will see the broken pipe on its next read.
			_ = fw.send(msgPong, pongMsg{Seq: m.Seq})
		case msgHello:
			// A coordinator may handshake over any transport (the TCP
			// listener additionally requires it before shard traffic).
			var m helloMsg
			if err := decodeMsg(kind, payload, &m); err != nil {
				return err
			}
			if m.Magic != ProtocolMagic || m.Version != ProtocolVersion {
				return &FrameError{Op: "handshake", Kind: kind, Len: uint32(len(payload)),
					Err: fmt.Errorf("peer magic %#08x version %d, this binary speaks %#08x version %d",
						m.Magic, m.Version, ProtocolMagic, ProtocolVersion)}
			}
			_ = fw.send(msgHello, helloMsg{Magic: ProtocolMagic, Version: ProtocolVersion})
		default:
			return &FrameError{Op: "kind", Kind: kind, Len: uint32(len(payload))}
		}
	}
}

// runWorkerShard executes one sub-shard on the worker's pool, streaming
// per-replication results and closing with a coded done frame. Write
// errors are ignored: they mean the coordinator is gone, and the main
// loop will see the broken pipe on its next frame.
func runWorkerShard(ctx context.Context, pool *session.Pool, fw *frameWriter, m shardMsg) {
	cfg, err := m.Config.Config()
	if err != nil {
		_ = fw.send(msgDone, doneMsg{ID: m.ID, Code: CodeError, Error: err.Error()})
		return
	}
	shard := session.Shard{
		Config:      cfg,
		Seeds:       m.Seeds,
		Parallelism: m.Parallelism,
		OnResult: func(i int, met *system.Metrics) {
			_ = fw.send(msgResult, resultMsg{ID: m.ID, Index: i, Metrics: met})
		},
	}
	res, err := pool.Run(ctx, shard)
	// Every done frame carries the worker's cumulative pool gauges; the
	// coordinator keeps the latest, so fleet stats stay current without
	// extra protocol round-trips.
	ps := pool.PoolStats()
	switch {
	case err == nil:
		_ = fw.send(msgDone, doneMsg{ID: m.ID, Completed: res.Completed, Code: CodeOK, Pool: ps})
	case isCancellation(err):
		_ = fw.send(msgDone, doneMsg{ID: m.ID, Completed: res.Completed, Code: CodeCanceled, Error: err.Error(), Pool: ps})
	default:
		_ = fw.send(msgDone, doneMsg{ID: m.ID, Code: CodeError, Error: err.Error(), Pool: ps})
	}
}
