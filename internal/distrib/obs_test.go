package distrib

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/session"
)

// TestProcBackendProgressMonotonic pins the progress contract across the
// process boundary: done-counts increase strictly by one and reach the
// replication total on an uncancelled run.
func TestProcBackendProgressMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const reps = 6
	cfg := shortCfg(1200)
	b := testBackend(t, ProcOptions{Workers: 2, ChunkSize: 2})
	var (
		mu    sync.Mutex
		dones []int
	)
	s := session.NewWithBackend(b, session.WithProgress(func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != reps {
			t.Errorf("progress total = %d, want %d", total, reps)
		}
		dones = append(dones, done)
	}))
	defer s.Close()
	if _, err := s.Run(context.Background(), session.Job{Config: cfg, Reps: reps}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != reps {
		t.Fatalf("progress fired %d times, want %d", len(dones), reps)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done-counts %v: position %d is %d, want %d", dones, i, d, i+1)
		}
	}
}

// TestProcBackendDistribStats runs a shard and checks the coordinator's
// view: every chunk accounted to a live worker, wire traffic in both
// directions, and the workers' pool gauges carried home in done frames.
func TestProcBackendDistribStats(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1200)
	const reps, chunkSize = 8, 2
	b := testBackend(t, ProcOptions{Workers: 2, ChunkSize: chunkSize})
	s := session.NewWithBackend(b)
	defer s.Close()
	if _, err := s.Run(context.Background(), session.Job{Config: cfg, Reps: reps}); err != nil {
		t.Fatal(err)
	}

	ds := b.DistribStats()
	if ds == nil {
		t.Fatal("nil DistribStats")
	}
	if ds.Deaths != 0 || ds.Respawns != 0 {
		t.Fatalf("healthy run reported deaths=%d respawns=%d", ds.Deaths, ds.Respawns)
	}
	if len(ds.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(ds.Workers))
	}
	var subShards uint64
	for _, w := range ds.Workers {
		if !w.Alive {
			t.Fatalf("worker %d reported dead after a healthy run", w.ID)
		}
		subShards += w.SubShards
		if w.SubShards > 0 {
			if w.FramesSent == 0 || w.FramesRecv == 0 || w.BytesSent == 0 || w.BytesRecv == 0 {
				t.Fatalf("worker %d ran %d sub-shards with no wire traffic: %+v", w.ID, w.SubShards, w)
			}
			// Worker pools ship home in done frames: every replication
			// acquires a workspace, warm or cold.
			if w.Pool.WarmAcquires+w.Pool.ColdAcquires == 0 {
				t.Fatalf("worker %d pool gauges never carried home: %+v", w.ID, w.Pool)
			}
		}
		if w.Steals != 0 {
			t.Fatalf("worker %d reported %d steals with no deaths", w.ID, w.Steals)
		}
	}
	if want := uint64(reps / chunkSize); subShards != want {
		t.Fatalf("sub-shards across workers = %d, want %d", subShards, want)
	}

	// The session surfaces the same view through the backend facets.
	snap := s.Snapshot()
	if snap.Distrib == nil {
		t.Fatal("session snapshot missed the DistribStatser facet")
	}
	if snap.Session.Pool.WarmAcquires+snap.Session.Pool.ColdAcquires == 0 {
		t.Fatal("session snapshot missed the fleet pool gauges")
	}
}

// TestProcBackendDeathStats re-runs the worker-death scenario and checks
// the coordinator records it: a death, a steal (the re-queued chunk run
// by the survivor), the victim archived with Alive=false, and a respawn
// on the next attach.
func TestProcBackendDeathStats(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(1500)
	lock := filepath.Join(t.TempDir(), "victim.lock")
	b := testBackend(t, ProcOptions{
		Workers:   2,
		ChunkSize: 4,
		Env:       []string{dieLockEnv + "=" + lock},
	})
	s := session.NewWithBackend(b)
	defer s.Close()
	if _, err := s.Run(context.Background(), session.Job{Config: cfg, Reps: 10}); err != nil {
		t.Fatalf("run did not survive a worker death: %v", err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("victim lock never created — the death path was not exercised: %v", err)
	}

	ds := b.DistribStats()
	if ds.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", ds.Deaths)
	}
	var dead, steals uint64
	for _, w := range ds.Workers {
		if !w.Alive {
			dead++
		}
		steals += w.Steals
	}
	if dead != 1 {
		t.Fatalf("archived dead workers = %d, want 1", dead)
	}
	if steals == 0 {
		t.Fatal("the re-queued chunk was never recorded as a steal")
	}

	// The next run replaces the dead worker; the spawn counts as a
	// respawn because the initial fleet already stood up.
	if _, err := s.Run(context.Background(), session.Job{Config: cfg, Reps: 4}); err != nil {
		t.Fatal(err)
	}
	ds = b.DistribStats()
	if ds.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1", ds.Respawns)
	}
	if len(ds.Workers) != 3 { // two originals (one retired) + one respawn
		t.Fatalf("worker records = %d, want 3", len(ds.Workers))
	}
}

// TestProcBackendMergeDepthHWM forces out-of-order completion with a
// chunk size of 1 and several workers: the merge buffer must have held
// at least one result back at some point on a multi-worker run — and
// the HWM can never exceed the replication count.
func TestProcBackendMergeDepthHWM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := shortCfg(800)
	const reps = 12
	b := testBackend(t, ProcOptions{Workers: 3, ChunkSize: 1})
	s := session.NewWithBackend(b)
	defer s.Close()
	if _, err := s.Run(context.Background(), session.Job{Config: cfg, Reps: reps}); err != nil {
		t.Fatal(err)
	}
	ds := b.DistribStats()
	if ds.MergeDepthHWM > reps {
		t.Fatalf("merge HWM %d exceeds replication count %d", ds.MergeDepthHWM, reps)
	}
	// With three workers racing single-seed chunks, some out-of-order
	// arrival is overwhelmingly likely but not guaranteed; only assert
	// the gauge is well-formed, not a specific depth.
	t.Logf("merge depth HWM = %d", ds.MergeDepthHWM)
}
