package netdist

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/session"
	"repro/internal/system"
	"repro/internal/trace"
)

// countingBackend wraps the in-process pool and records every seed it
// is actually asked to simulate.
type countingBackend struct {
	inner session.Backend

	mu    sync.Mutex
	calls int
	seeds []uint64
}

func newCountingBackend(t *testing.T) *countingBackend {
	t.Helper()
	pool := session.NewPool()
	t.Cleanup(pool.Close)
	return &countingBackend{inner: pool}
}

func (b *countingBackend) Run(ctx context.Context, shard session.Shard) (session.ShardResult, error) {
	b.mu.Lock()
	b.calls++
	b.seeds = append(b.seeds, shard.Seeds...)
	b.mu.Unlock()
	return b.inner.Run(ctx, shard)
}

func (b *countingBackend) simulated() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.seeds...)
}

// runShard pushes one shard through a backend and returns the gob
// encoding of each replication's metrics — the byte-identity currency.
func runShard(t *testing.T, b session.Backend, cfg system.Config, seeds []uint64) [][]byte {
	t.Helper()
	res, err := b.Run(context.Background(), session.Shard{Config: cfg, Seeds: seeds, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(seeds) {
		t.Fatalf("Completed = %d, want %d", res.Completed, len(seeds))
	}
	out := make([][]byte, len(res.Metrics))
	for i, m := range res.Metrics {
		if m == nil {
			t.Fatalf("metrics[%d] = nil", i)
		}
		data, err := encodeRuns([]*system.Metrics{m})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

func seedRange(lo, hi uint64) []uint64 {
	var out []uint64
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}

// TestCacheHitByteIdentical: a repeated shard is served entirely from
// the cache, byte-for-byte equal to the fresh computation, without
// touching the simulator again.
func TestCacheHitByteIdentical(t *testing.T) {
	inner := newCountingBackend(t)
	c := NewCache(inner, 0)
	cfg := shortCfg(300)
	seeds := seedRange(1, 8)

	first := runShard(t, c, cfg, seeds)
	before := len(inner.simulated())
	second := runShard(t, c, cfg, seeds)

	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Errorf("seed %d: cached result differs from fresh result", seeds[i])
		}
	}
	if after := len(inner.simulated()); after != before {
		t.Errorf("second run simulated %d seeds, want 0", after-before)
	}
	st := c.CacheStats()
	if st.Hits != uint64(len(seeds)) || st.Misses != uint64(len(seeds)) {
		t.Errorf("hits/misses = %d/%d, want %d/%d", st.Hits, st.Misses, len(seeds), len(seeds))
	}
	if st.Entries == 0 || st.Bytes == 0 || st.Inserts == 0 {
		t.Errorf("cache looks empty after inserts: %+v", st)
	}
}

// TestCacheOverlappingSweep: an overlapping seed range simulates only
// the uncovered suffix; the overlap is served from the store and stays
// byte-identical.
func TestCacheOverlappingSweep(t *testing.T) {
	inner := newCountingBackend(t)
	c := NewCache(inner, 0)
	cfg := shortCfg(300)

	first := runShard(t, c, cfg, seedRange(1, 8))
	second := runShard(t, c, cfg, seedRange(5, 12))

	for i, s := range seedRange(5, 8) {
		if !bytes.Equal(first[int(s-1)], second[i]) {
			t.Errorf("seed %d: overlap served different bytes", s)
		}
	}
	fresh := inner.simulated()[8:]
	if len(fresh) != 4 {
		t.Fatalf("second run simulated %d seeds (%v), want 4", len(fresh), fresh)
	}
	for i, s := range fresh {
		if want := uint64(9 + i); s != want {
			t.Errorf("simulated seed %d, want %d", s, want)
		}
	}
	st := c.CacheStats()
	if st.Hits != 4 || st.Misses != 12 {
		t.Errorf("hits/misses = %d/%d, want 4/12", st.Hits, st.Misses)
	}
}

// TestCacheEviction: a cache bounded well below the working set evicts
// least-recently-used runs; evicted seeds miss again and recompute to
// the same bytes.
func TestCacheEviction(t *testing.T) {
	inner := newCountingBackend(t)
	cfg := shortCfg(300)

	// Size the budget from a real entry so exactly ~2 runs fit.
	probe := NewCache(newCountingBackend(t), 0)
	runShard(t, probe, cfg, seedRange(1, 4))
	probeBytes := int64(probe.CacheStats().Bytes)
	budget := probeBytes*2 + probeBytes/2 // ~2.5 entries, tolerant of size jitter

	c := NewCache(inner, budget)
	first := runShard(t, c, cfg, seedRange(1, 4))
	runShard(t, c, cfg, seedRange(11, 14))
	runShard(t, c, cfg, seedRange(21, 24)) // evicts seeds 1..4

	st := c.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("Evictions = 0, want > 0 (%+v)", st)
	}
	if int64(st.Bytes) > budget {
		t.Errorf("Bytes = %d over budget %d", st.Bytes, budget)
	}

	before := st.Misses
	again := runShard(t, c, cfg, seedRange(1, 4))
	if got := c.CacheStats().Misses - before; got != 4 {
		t.Errorf("re-run of evicted seeds missed %d times, want 4", got)
	}
	for i := range first {
		if !bytes.Equal(first[i], again[i]) {
			t.Errorf("seed %d: recomputed result differs after eviction", i+1)
		}
	}
}

// TestCacheConcurrentReaders: many goroutines sweep overlapping ranges
// through one cache; every result must be byte-identical to the
// single-threaded answer. Run under -race this also exercises the
// locking.
func TestCacheConcurrentReaders(t *testing.T) {
	cfg := shortCfg(200)
	want := runShard(t, NewCache(newCountingBackend(t), 0), cfg, seedRange(1, 10))

	c := NewCache(newCountingBackend(t), 0)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		lo := uint64(1 + g%3) // overlapping windows: [1..8], [2..9], [3..10]
		wg.Add(1)
		go func() {
			defer wg.Done()
			seeds := seedRange(lo, lo+7)
			res, err := c.Run(context.Background(), session.Shard{Config: cfg, Seeds: seeds, Parallelism: 2})
			if err != nil {
				errs <- err.Error()
				return
			}
			for i, m := range res.Metrics {
				data, err := encodeRuns([]*system.Metrics{m})
				if err != nil {
					errs <- err.Error()
					return
				}
				if !bytes.Equal(data, want[seeds[i]-1]) {
					errs <- "concurrent result differs from single-threaded bytes"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestCacheBypassesUnwirable: a configuration that cannot be
// fingerprinted (attached trace recorder) goes straight to the inner
// backend and is counted as a bypass, never stored.
func TestCacheBypassesUnwirable(t *testing.T) {
	inner := newCountingBackend(t)
	c := NewCache(inner, 0)
	cfg := shortCfg(200)
	cfg.Trace = trace.NewRecorder(0)

	runShard(t, c, cfg, seedRange(1, 2))
	runShard(t, c, cfg, seedRange(1, 2))

	st := c.CacheStats()
	if st.Bypasses != 2 {
		t.Errorf("Bypasses = %d, want 2", st.Bypasses)
	}
	if st.Hits != 0 || st.Entries != 0 {
		t.Errorf("unwirable config reached the store: %+v", st)
	}
	if got := len(inner.simulated()); got != 4 {
		t.Errorf("inner simulated %d seeds, want 4 (no caching)", got)
	}
}

// TestCacheCancellationContract: a cancelled sub-shard still yields an
// exact contiguous prefix, with nothing reported past it even when
// later seeds sit in the cache.
func TestCacheCancellationContract(t *testing.T) {
	inner := newCountingBackend(t)
	c := NewCache(inner, 0)
	cfg := shortCfg(200)

	// Warm seeds 3..4 so a later run of 1..4 has cached results beyond
	// the cancelled prefix.
	runShard(t, c, cfg, seedRange(3, 4))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Run(ctx, session.Shard{Config: cfg, Seeds: seedRange(1, 4)})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res.Completed > len(res.Metrics) {
		t.Fatalf("Completed = %d beyond metrics", res.Completed)
	}
	for i, m := range res.Metrics {
		if i < res.Completed && m == nil {
			t.Errorf("metrics[%d] = nil inside completed prefix %d", i, res.Completed)
		}
		if i >= res.Completed && m != nil {
			t.Errorf("metrics[%d] != nil beyond completed prefix %d", i, res.Completed)
		}
	}
}
