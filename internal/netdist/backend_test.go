package netdist

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/system"
)

// startServer runs a worker server on a loopback port for the test's
// lifetime.
func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

// shortCfg returns a fast baseline configuration.
func shortCfg(horizon float64) system.Config {
	cfg := system.Baseline()
	cfg.Horizon = horizon
	return cfg
}

// metricsSig fingerprints a run's aggregate counters and ratios.
func metricsSig(m *system.Metrics) string {
	return fmt.Sprintf("lg=%d ld=%d gg=%d gd=%d mdl=%v mdg=%v lr=%v gr=%v",
		m.LocalGenerated, m.LocalDone, m.GlobalGenerated, m.GlobalDone,
		m.MDLocal(), m.MDGlobal(), m.LocalResponse.Mean(), m.GlobalResponse.Mean())
}

// runJob executes a job on a session over the given backend and
// returns per-replication signatures plus the merged scenario CSV.
func runJob(t *testing.T, b session.Backend, job session.Job) ([]string, []byte) {
	t.Helper()
	var sess *session.Session
	if b == nil {
		sess = session.New(session.WithParallelism(2))
	} else {
		sess = session.NewWithBackend(b, session.WithParallelism(2))
	}
	defer sess.Close()
	res, err := sess.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, len(res.Runs))
	for i, m := range res.Runs {
		sigs[i] = metricsSig(m)
	}
	var csv bytes.Buffer
	if res.Series != nil {
		if err := res.Series.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
	}
	return sigs, csv.Bytes()
}

func testJob(t *testing.T, reps int) session.Job {
	t.Helper()
	cfg := shortCfg(300)
	cfg.Nodes = 4
	sc, err := scenario.Preset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = sc
	return session.Job{Config: cfg, Reps: reps}
}

// TestNetBackendMatchesPool is the tentpole determinism claim over
// sockets: a session on TCP workers produces results bit-identical to
// the in-process pool, per replication and in the merged CSV.
func TestNetBackendMatchesPool(t *testing.T) {
	srv1 := startServer(t)
	srv2 := startServer(t)
	nb, err := NewBackend(BackendOptions{Addrs: []string{srv1.Addr(), srv2.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	job := testJob(t, 6)
	wantSigs, wantCSV := runJob(t, nil, job)
	gotSigs, gotCSV := runJob(t, nb, job)

	for i := range wantSigs {
		if gotSigs[i] != wantSigs[i] {
			t.Errorf("rep %d:\n net: %s\npool: %s", i, gotSigs[i], wantSigs[i])
		}
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("scenario CSV differs between TCP workers and pool")
	}
	ns := nb.NetStats()
	if ns.Connections == 0 {
		t.Error("NetStats.Connections = 0, want > 0")
	}
	if ns.FramesSent == 0 || ns.FramesRecv == 0 || ns.BytesSent == 0 || ns.BytesRecv == 0 {
		t.Errorf("wire counters not all advancing: %+v", ns)
	}
	if ds := nb.DistribStats(); ds == nil || ds.Fallbacks != 0 {
		t.Errorf("healthy run used local fallback: %+v", ds)
	}
}

// killingProxy forwards a TCP connection to a backend server, counting
// whole protocol frames server→client, and severs the first connection
// after maxFrames — a worker death the coordinator must survive.
type killingProxy struct {
	ln        net.Listener
	backend   string
	maxFrames int

	mu     sync.Mutex
	killed bool
}

func startKillingProxy(t *testing.T, backend string, maxFrames int) *killingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killingProxy{ln: ln, backend: backend, maxFrames: maxFrames}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *killingProxy) addr() string { return p.ln.Addr().String() }

func (p *killingProxy) serve() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		victim := !p.killed
		p.killed = true
		p.mu.Unlock()
		go func() {
			io.Copy(server, client)
			server.Close()
		}()
		go func() {
			defer client.Close()
			defer server.Close()
			if !victim {
				io.Copy(client, server)
				return
			}
			// Forward whole frames ([4-byte len][kind][payload]), then
			// cut the line mid-protocol.
			for i := 0; i < p.maxFrames; i++ {
				var hdr [5]byte
				if _, err := io.ReadFull(server, hdr[:]); err != nil {
					return
				}
				n := binary.BigEndian.Uint32(hdr[:4])
				if _, err := client.Write(hdr[:]); err != nil {
					return
				}
				if _, err := io.CopyN(client, server, int64(n)); err != nil {
					return
				}
			}
		}()
	}
}

// TestNetBackendReconnects: a connection that dies mid-run is treated
// as a worker death — the chunk retries on a fresh dial to the same
// address, results stay identical to the pool, and the reconnect is
// counted.
func TestNetBackendReconnects(t *testing.T) {
	srv := startServer(t)
	// 3 frames = hello reply + two more, so the line drops early in the
	// first shard.
	proxy := startKillingProxy(t, srv.Addr(), 3)
	nb, err := NewBackend(BackendOptions{Addrs: []string{proxy.addr()}, ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	job := testJob(t, 6)
	wantSigs, wantCSV := runJob(t, nil, job)
	gotSigs, gotCSV := runJob(t, nb, job)

	for i := range wantSigs {
		if gotSigs[i] != wantSigs[i] {
			t.Errorf("rep %d differs after reconnect:\n net: %s\npool: %s", i, gotSigs[i], wantSigs[i])
		}
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("scenario CSV differs after mid-run connection loss")
	}
	if ns := nb.NetStats(); ns.Reconnects == 0 {
		t.Errorf("NetStats.Reconnects = 0, want > 0 (%+v)", ns)
	}
}

// TestNetBackendDegradesToLocal: with every worker unreachable the
// backend still serves shards — on the embedded in-process pool — and
// counts the fallback and the dial failures.
func TestNetBackendDegradesToLocal(t *testing.T) {
	// Grab a port that is guaranteed unoccupied.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	nb, err := NewBackend(BackendOptions{Addrs: []string{dead}})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	job := testJob(t, 3)
	wantSigs, wantCSV := runJob(t, nil, job)
	gotSigs, gotCSV := runJob(t, nb, job)
	for i := range wantSigs {
		if gotSigs[i] != wantSigs[i] {
			t.Errorf("rep %d differs under degradation:\n got: %s\nwant: %s", i, gotSigs[i], wantSigs[i])
		}
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("scenario CSV differs under local degradation")
	}
	if ds := nb.DistribStats(); ds == nil || ds.Fallbacks == 0 {
		t.Errorf("Fallbacks = 0, want > 0 (%+v)", ds)
	}
	if ns := nb.NetStats(); ns.DialErrors == 0 {
		t.Errorf("DialErrors = 0, want > 0 (%+v)", ns)
	}
}

// TestServerRejectsGarbage: a client that opens with anything but a
// valid hello is dropped and counted; the server keeps serving.
func TestServerRejectsGarbage(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
	// The server drops the connection without draining it, so the read
	// may end in EOF or a reset — either way it must end.
	_, _ = io.ReadAll(conn)
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.HandshakeRejects() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handshake rejection never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.HandshakeRejects(); got != 1 {
		t.Errorf("HandshakeRejects = %d, want 1", got)
	}

	// The server must still accept a well-behaved coordinator.
	nb, err := NewBackend(BackendOptions{Addrs: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	sigs, _ := runJob(t, nb, session.Job{Config: shortCfg(200), Reps: 2})
	if len(sigs) != 2 {
		t.Fatalf("got %d reps, want 2", len(sigs))
	}
	if ds := nb.DistribStats(); ds != nil && ds.Fallbacks != 0 {
		t.Errorf("run after garbage client fell back locally: %+v", ds)
	}
}

// TestNewBackendValidation: an empty address list is a configuration
// error, not a latent dial failure.
func TestNewBackendValidation(t *testing.T) {
	if _, err := NewBackend(BackendOptions{Addrs: []string{" ", ""}}); err == nil {
		t.Fatal("NewBackend with no addresses: err = nil, want error")
	}
}
