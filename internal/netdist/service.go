package netdist

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/system"
)

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// Backend is the execution transport every session runs on — a
	// NetBackend for remote workers, a ProcBackend for local processes,
	// nil for a shared in-process pool. The service does not close a
	// caller-provided backend.
	Backend session.Backend
	// CacheBytes is the shard-result cache budget: 0 picks 256 MiB,
	// negative disables caching.
	CacheBytes int64
	// MaxSessions bounds the warm-session table; least-recently-used
	// sessions are retired beyond it. 0 means 32.
	MaxSessions int
}

func (o ServiceOptions) maxSessions() int {
	if o.MaxSessions <= 0 {
		return 32
	}
	return o.MaxSessions
}

// Service is the long-running query front end: it accepts JSON job
// specs over HTTP, keys warm session.Sessions by configuration
// fingerprint (so repeated queries over the same design point reuse
// workspaces), fronts every session with one shared deterministic
// shard-result cache, and streams per-replication results to each
// client in seed order as they finish.
//
// Determinism carries through: the response body for a given job spec
// is byte-identical whether results came from fresh simulation, the
// cache, remote workers, or any mix — so clients may cache, diff, and
// replay responses freely.
type Service struct {
	opts    ServiceOptions
	backend session.Backend // what sessions run on (cache-wrapped unless disabled)
	cache   *Cache          // nil when caching is disabled
	ownPool *session.Pool   // set when no backend was provided

	mu       sync.Mutex
	sessions map[string]*list.Element
	order    *list.List // *sessEntry, front = most recently used
	closed   bool
	// retired accumulates the engine/session counters of sessions
	// dropped from the warm table, so service-level totals never move
	// backwards when a session retires.
	retiredEngine  obs.EngineStats
	retiredSession obs.SessionStats
}

// sessEntry is one warm session keyed by config fingerprint.
type sessEntry struct {
	fp   string
	sess *session.Session
}

// NewService builds a service over the given transport.
func NewService(opts ServiceOptions) *Service {
	s := &Service{
		opts:     opts,
		sessions: make(map[string]*list.Element),
		order:    list.New(),
	}
	inner := opts.Backend
	if inner == nil {
		s.ownPool = session.NewPool()
		inner = s.ownPool
	}
	if opts.CacheBytes >= 0 {
		s.cache = NewCache(inner, opts.CacheBytes)
		s.backend = s.cache
	} else {
		s.backend = inner
	}
	return s
}

// Close retires every warm session and the service's own pool (a
// caller-provided backend stays open). In-flight requests on retired
// sessions fail; Close is meant for shutdown, not rotation.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var sessions []*session.Session
	for el := s.order.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*sessEntry).sess)
	}
	s.sessions = make(map[string]*list.Element)
	s.order = list.New()
	s.mu.Unlock()
	for _, sess := range sessions {
		_ = sess.Close()
	}
	if s.ownPool != nil {
		s.ownPool.Close()
	}
	return nil
}

// sessionFor returns the warm session for a fingerprint, creating it on
// first use and retiring the least-recently-used session beyond the
// table bound. A retired session's counters fold into the service
// totals; its in-flight requests finish on the shared backend.
func (s *Service) sessionFor(fp string) (*session.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("netdist: service closed")
	}
	if el, ok := s.sessions[fp]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*sessEntry).sess, nil
	}
	sess := session.NewWithBackend(s.backend)
	s.sessions[fp] = s.order.PushFront(&sessEntry{fp: fp, sess: sess})
	for len(s.sessions) > s.opts.maxSessions() {
		last := s.order.Back()
		se := last.Value.(*sessEntry)
		s.order.Remove(last)
		delete(s.sessions, se.fp)
		sub := se.sess.Snapshot()
		s.retiredEngine.Merge(sub.Engine)
		s.retiredSession.JobsStarted += sub.Session.JobsStarted
		s.retiredSession.JobsFinished += sub.Session.JobsFinished
		s.retiredSession.ReplicationsCompleted += sub.Session.ReplicationsCompleted
	}
	return sess, nil
}

// Snapshot aggregates runtime metrics across every warm session (plus
// retired ones), with the shared backend's pool/distrib/net/cache
// facets counted exactly once.
func (s *Service) Snapshot() obs.Snapshot {
	var snap obs.Snapshot
	s.mu.Lock()
	var sessions []*session.Session
	for el := s.order.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*sessEntry).sess)
	}
	snap.Engine = s.retiredEngine
	retired := s.retiredSession
	s.mu.Unlock()
	snap.Session.JobsStarted = retired.JobsStarted
	snap.Session.JobsFinished = retired.JobsFinished
	snap.Session.ReplicationsCompleted = retired.ReplicationsCompleted
	for _, sess := range sessions {
		sub := sess.Snapshot()
		snap.Engine.Merge(sub.Engine)
		snap.Session.JobsStarted += sub.Session.JobsStarted
		snap.Session.JobsFinished += sub.Session.JobsFinished
		snap.Session.ReplicationsCompleted += sub.Session.ReplicationsCompleted
		snap.Session.ReplicationsInFlight += sub.Session.ReplicationsInFlight
	}
	session.CollectBackendStats(s.backend, &snap)
	return snap
}

// JobSpec is the JSON body of a /run request. Zero fields take the
// paper's baseline; exactly one of Preset and Spec may name a scenario
// (both empty runs the stationary workload, which has no CSV series).
type JobSpec struct {
	// Preset names a built-in scenario; Spec embeds a declarative one.
	Preset string         `json:"preset,omitempty"`
	Spec   *scenario.Spec `json:"spec,omitempty"`
	// Horizon is simulated time units per replication.
	Horizon float64 `json:"horizon,omitempty"`
	Nodes   int     `json:"nodes,omitempty"`
	Load    float64 `json:"load,omitempty"`
	SSP     string  `json:"ssp,omitempty"`
	PSP     string  `json:"psp,omitempty"`
	// Seed is the base seed (replication i uses Seed+i); Reps the
	// replication count.
	Seed uint64 `json:"seed,omitempty"`
	Reps int    `json:"reps,omitempty"`
	// Queue pins the event queue ("heap", "ladder"); empty is auto.
	Queue string `json:"queue,omitempty"`
	// Parallelism bounds workers per job; 0 uses every core.
	Parallelism int `json:"parallelism,omitempty"`
}

// buildJob translates a spec into a runnable configuration and job.
func buildJob(spec JobSpec) (system.Config, session.Job, error) {
	cfg := system.Baseline()
	if spec.Horizon > 0 {
		cfg.Horizon = spec.Horizon
	}
	if spec.Nodes > 0 {
		cfg.Nodes = spec.Nodes
	}
	if spec.Load > 0 {
		cfg.Load = spec.Load
	}
	if spec.SSP != "" {
		cfg.SSP = spec.SSP
	}
	if spec.PSP != "" {
		cfg.PSP = spec.PSP
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.Queue != "" {
		kind, err := sim.ParseQueueKind(spec.Queue)
		if err != nil {
			return system.Config{}, session.Job{}, err
		}
		cfg.EventQueue = kind
	}
	if spec.Preset != "" && spec.Spec != nil {
		return system.Config{}, session.Job{}, errors.New("use preset or spec, not both")
	}
	var sc *scenario.Scenario
	var err error
	switch {
	case spec.Preset != "":
		sc, err = scenario.Preset(spec.Preset, cfg.Horizon)
	case spec.Spec != nil:
		sc, err = scenario.New(*spec.Spec)
	}
	if err != nil {
		return system.Config{}, session.Job{}, err
	}
	cfg.Scenario = sc
	if spec.Reps < 0 {
		return system.Config{}, session.Job{}, fmt.Errorf("reps = %d, want >= 0", spec.Reps)
	}
	return cfg, session.Job{Config: cfg, Reps: spec.Reps}, nil
}

// Handler returns the service's HTTP mux:
//
//	POST /run      — run a JobSpec; NDJSON stream by default,
//	                 ?format=csv for the merged scenario time series
//	GET  /healthz  — liveness
//	GET  /metrics  — the aggregated Snapshot in Prometheus format
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.Snapshot().WritePrometheus(w); err != nil {
			return
		}
		_ = obs.ReadRuntime().WritePrometheus(w)
	})
	return mux
}

// runItem is one streamed replication line.
type runItem struct {
	Index         int     `json:"index"`
	Seed          uint64  `json:"seed"`
	LocalMissPct  float64 `json:"localMissPct"`
	GlobalMissPct float64 `json:"globalMissPct"`
}

// runEstimate is a JSON view of a stats.Estimate.
type runEstimate struct {
	Mean   float64 `json:"mean"`
	HalfCI float64 `json:"halfCI"`
}

// runFinal is the closing aggregate line of an NDJSON response.
type runFinal struct {
	Final    bool        `json:"final"`
	Reps     int         `json:"reps"`
	Partial  bool        `json:"partial,omitempty"`
	LocalMD  runEstimate `json:"localMD"`
	GlobalMD runEstimate `json:"globalMD"`
}

// runError is the terminal line of a failed run (headers are long gone
// by then, so errors travel in-band).
type runError struct {
	Error string `json:"error"`
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a job spec", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	cfg, job, err := buildJob(spec)
	if err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	fp, err := distrib.ConfigFingerprint(cfg)
	if err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.sessionFor(fp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var opts []session.Option
	if spec.Parallelism > 0 {
		opts = append(opts, session.WithParallelism(spec.Parallelism))
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "ndjson":
		s.streamRun(w, r, sess, job, opts)
	case "csv":
		s.csvRun(w, r, sess, job, opts)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want ndjson or csv)", format), http.StatusBadRequest)
	}
}

// streamRun streams one replication line per seed, in seed order, as
// results arrive, then the final aggregate. The request context cancels
// the run when the client disconnects; claimed replications finish and
// land in the cache for the next query.
func (s *Service) streamRun(w http.ResponseWriter, r *http.Request, sess *session.Session, job session.Job, opts []session.Option) {
	st, err := sess.Stream(r.Context(), job, opts...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for item := range st.Items() {
		if err := enc.Encode(runItem{
			Index:         item.Index,
			Seed:          item.Seed,
			LocalMissPct:  item.Metrics.MDLocal(),
			GlobalMissPct: item.Metrics.MDGlobal(),
		}); err != nil {
			// The client is gone; keep draining so Result() settles.
			for range st.Items() {
			}
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := st.Result()
	if err != nil {
		_ = enc.Encode(runError{Error: err.Error()})
		return
	}
	_ = enc.Encode(runFinal{
		Final:    true,
		Reps:     len(res.Runs),
		Partial:  res.Partial,
		LocalMD:  runEstimate{Mean: res.LocalMD.Mean, HalfCI: res.LocalMD.HalfCI},
		GlobalMD: runEstimate{Mean: res.GlobalMD.Mean, HalfCI: res.GlobalMD.HalfCI},
	})
}

// csvRun responds with the merged scenario time series — the same
// bytes sdascn writes, byte-identical across backends and cache state.
func (s *Service) csvRun(w http.ResponseWriter, r *http.Request, sess *session.Session, job session.Job, opts []session.Option) {
	res, err := sess.Run(r.Context(), job, opts...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if res.Series == nil {
		http.Error(w, "csv format needs a scenario (preset or spec)", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = res.Series.WriteCSV(w)
}
