package netdist

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/distrib"
	"repro/internal/obs"
)

// BackendOptions configures a NetBackend.
type BackendOptions struct {
	// Addrs is the static list of worker server addresses (host:port).
	// One connection is maintained per address; a broken connection is
	// re-dialed by the coordinator's respawn machinery.
	Addrs []string
	// DialTimeout bounds one dial attempt including the handshake;
	// 0 means 5s.
	DialTimeout time.Duration
	// ChunkSize, Heartbeat, WorkerTimeout, HedgeFactor, RespawnBudget,
	// and RetryBackoff pass through to the coordinator; see
	// distrib.ProcOptions.
	ChunkSize     int
	Heartbeat     time.Duration
	WorkerTimeout time.Duration
	HedgeFactor   float64
	RespawnBudget int
	RetryBackoff  time.Duration
}

// NetBackend implements session.Backend against remote shard workers
// over TCP. It is distrib's coordinator running on a dialing transport:
// chunks, work-stealing, heartbeats, retries, hedging, and seed-order
// merge behave exactly as with local worker processes, so output is
// byte-identical to the in-process pool. Connection loss is handled
// like worker death — the chunk is retried elsewhere and the address
// re-dialed under the respawn budget — and when not a single worker is
// reachable, shards degrade gracefully to the embedded in-process pool.
type NetBackend struct {
	*distrib.ProcBackend

	dialTimeout time.Duration

	mu        sync.Mutex
	addrs     []string
	next      int
	connected []bool // per address: connected at least once before
	conns     uint64
	reconns   uint64
	dialErrs  uint64
}

// NewBackend returns a backend over the given worker addresses;
// connections are dialed lazily on the first Run.
func NewBackend(opts BackendOptions) (*NetBackend, error) {
	addrs := make([]string, 0, len(opts.Addrs))
	for _, a := range opts.Addrs {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("netdist: no worker addresses")
	}
	nb := &NetBackend{
		addrs:       addrs,
		connected:   make([]bool, len(addrs)),
		dialTimeout: opts.DialTimeout,
	}
	if nb.dialTimeout <= 0 {
		nb.dialTimeout = 5 * time.Second
	}
	nb.ProcBackend = distrib.NewProcBackend(distrib.ProcOptions{
		Workers:        len(addrs),
		ChunkSize:      opts.ChunkSize,
		Heartbeat:      opts.Heartbeat,
		WorkerTimeout:  opts.WorkerTimeout,
		HedgeFactor:    opts.HedgeFactor,
		RespawnBudget:  opts.RespawnBudget,
		RetryBackoff:   opts.RetryBackoff,
		Dial:           nb.dial,
		DegradeToLocal: true,
	})
	return nb, nil
}

// dial establishes one worker connection, rotating round-robin through
// the address list so the fleet spreads across workers and a re-dial
// after a death can land on any healthy address. Each address is tried
// at most once per call; the first error is reported if all fail.
func (nb *NetBackend) dial() (distrib.WorkerConn, error) {
	var firstErr error
	for range nb.addrs {
		nb.mu.Lock()
		i := nb.next % len(nb.addrs)
		nb.next++
		addr := nb.addrs[i]
		nb.mu.Unlock()
		conn, err := nb.dialOne(i, addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return conn, nil
	}
	return nil, firstErr
}

// dialOne dials and handshakes a single address.
func (nb *NetBackend) dialOne(i int, addr string) (distrib.WorkerConn, error) {
	c, err := net.DialTimeout("tcp", addr, nb.dialTimeout)
	if err != nil {
		nb.countDialErr()
		return nil, err
	}
	_ = c.SetDeadline(time.Now().Add(nb.dialTimeout))
	if err := distrib.SendHello(c); err != nil {
		c.Close()
		nb.countDialErr()
		return nil, fmt.Errorf("handshake with %s: %w", addr, err)
	}
	if err := distrib.ReadHello(c); err != nil {
		c.Close()
		nb.countDialErr()
		return nil, fmt.Errorf("handshake with %s: %w", addr, err)
	}
	_ = c.SetDeadline(time.Time{})
	nb.mu.Lock()
	nb.conns++
	if nb.connected[i] {
		nb.reconns++
	}
	nb.connected[i] = true
	nb.mu.Unlock()
	return &netConn{conn: c}, nil
}

func (nb *NetBackend) countDialErr() {
	nb.mu.Lock()
	nb.dialErrs++
	nb.mu.Unlock()
}

// NetStats implements the session.NetStatser facet: connection
// lifecycle counters plus wire traffic summed over every connection the
// coordinator has tracked (live and reaped).
func (nb *NetBackend) NetStats() obs.NetStats {
	var ns obs.NetStats
	if ds := nb.DistribStats(); ds != nil {
		for _, w := range ds.Workers {
			ns.FramesSent += w.FramesSent
			ns.FramesRecv += w.FramesRecv
			ns.BytesSent += w.BytesSent
			ns.BytesRecv += w.BytesRecv
		}
	}
	nb.mu.Lock()
	ns.Connections = nb.conns
	ns.Reconnects = nb.reconns
	ns.DialErrors = nb.dialErrs
	nb.mu.Unlock()
	return ns
}

// netConn adapts a TCP connection to the WorkerConn seam. Close
// half-closes the write side so the worker sees EOF (its clean-shutdown
// signal) while its final frames can still drain; Kill severs the
// connection, which unblocks any pending read.
type netConn struct {
	conn net.Conn
}

func (c *netConn) Read(p []byte) (int, error)  { return c.conn.Read(p) }
func (c *netConn) Write(p []byte) (int, error) { return c.conn.Write(p) }

func (c *netConn) Close() error {
	if tc, ok := c.conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil && !errors.Is(err, net.ErrClosed) {
			return err
		}
		return nil
	}
	return c.conn.Close()
}

func (c *netConn) Kill() { _ = c.conn.Close() }
func (c *netConn) Wait() {}
