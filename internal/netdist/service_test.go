package netdist

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func startService(t *testing.T, opts ServiceOptions) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postRun(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

const burstSpec = `{"preset":"burst","horizon":300,"nodes":4,"seed":7,"reps":4}`

// TestServiceStreamDeterministic: the same job spec posted twice
// returns byte-identical NDJSON — the second pass served from the
// shard-result cache with the session kept warm.
func TestServiceStreamDeterministic(t *testing.T) {
	svc, ts := startService(t, ServiceOptions{})

	code, first := postRun(t, ts.URL+"/run", burstSpec)
	if code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", code, first)
	}
	code, second := postRun(t, ts.URL+"/run", burstSpec)
	if code != http.StatusOK {
		t.Fatalf("second run: status %d: %s", code, second)
	}
	if first != second {
		t.Errorf("bodies differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	if len(lines) != 5 { // 4 replications + final aggregate
		t.Fatalf("got %d NDJSON lines, want 5:\n%s", len(lines), first)
	}
	var prevSeed uint64
	for i, line := range lines[:4] {
		var item runItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if item.Index != i {
			t.Errorf("line %d: index = %d, want %d (seed order)", i, item.Index, i)
		}
		if i > 0 && item.Seed != prevSeed+1 {
			t.Errorf("line %d: seed = %d, want %d", i, item.Seed, prevSeed+1)
		}
		prevSeed = item.Seed
	}
	var final runFinal
	if err := json.Unmarshal([]byte(lines[4]), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Final || final.Reps != 4 || final.Partial {
		t.Errorf("final line = %+v, want final, 4 reps, not partial", final)
	}

	snap := svc.Snapshot()
	if snap.Cache == nil || snap.Cache.Hits == 0 {
		t.Errorf("Snapshot.Cache = %+v, want hits > 0 after repeat run", snap.Cache)
	}
	if snap.Session.JobsFinished != 2 {
		t.Errorf("JobsFinished = %d, want 2", snap.Session.JobsFinished)
	}
}

// TestServiceCSVDeterministic: the CSV format returns the merged
// scenario series, byte-identical across fresh and cached runs.
func TestServiceCSVDeterministic(t *testing.T) {
	_, ts := startService(t, ServiceOptions{})

	code, first := postRun(t, ts.URL+"/run?format=csv", burstSpec)
	if code != http.StatusOK {
		t.Fatalf("csv run: status %d: %s", code, first)
	}
	if !strings.HasPrefix(first, "t_start,") {
		t.Errorf("csv body does not open with a header: %q", first[:min(len(first), 40)])
	}
	code, second := postRun(t, ts.URL+"/run?format=csv", burstSpec)
	if code != http.StatusOK {
		t.Fatalf("second csv run: status %d", code)
	}
	if first != second {
		t.Error("CSV differs between fresh and cached runs")
	}
}

// TestServiceConcurrentClients: many clients posting overlapping specs
// stream concurrently from shared warm sessions; each must read the
// same bytes a lone client would.
func TestServiceConcurrentClients(t *testing.T) {
	_, ts := startService(t, ServiceOptions{})

	_, want := postRun(t, ts.URL+"/run", burstSpec)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(burstSpec))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err.Error()
				return
			}
			if string(body) != want {
				errs <- "concurrent client read different bytes"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestServiceBadRequests: malformed specs and methods fail fast with
// 4xx, not a stream.
func TestServiceBadRequests(t *testing.T) {
	_, ts := startService(t, ServiceOptions{})

	cases := []struct {
		name, body, format string
		wantCode           int
	}{
		{"bad json", `{"preset":`, "", http.StatusBadRequest},
		{"unknown field", `{"presett":"burst"}`, "", http.StatusBadRequest},
		{"unknown preset", `{"preset":"nope","horizon":100}`, "", http.StatusBadRequest},
		{"preset and spec", `{"preset":"burst","spec":{"name":"x"},"horizon":100}`, "", http.StatusBadRequest},
		{"negative reps", `{"preset":"burst","horizon":100,"reps":-1}`, "", http.StatusBadRequest},
		{"bad queue", `{"preset":"burst","horizon":100,"queue":"treap"}`, "", http.StatusBadRequest},
		{"bad format", `{"preset":"burst","horizon":100}`, "wat", http.StatusBadRequest},
		{"csv without scenario", `{"horizon":100,"reps":1}`, "csv", http.StatusBadRequest},
	}
	for _, tc := range cases {
		url := ts.URL + "/run"
		if tc.format != "" {
			url += "?format=" + tc.format
		}
		if code, body := postRun(t, url, tc.body); code != tc.wantCode {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, code, tc.wantCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status = %d, want 405", resp.StatusCode)
	}
}

// TestServiceEndpoints: liveness and metrics surface, including the
// cache series.
func TestServiceEndpoints(t *testing.T) {
	_, ts := startService(t, ServiceOptions{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: status %d", resp.StatusCode)
	}

	postRun(t, ts.URL+"/run", burstSpec)
	postRun(t, ts.URL+"/run", burstSpec)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"repro_cache_hits_total", "repro_cache_misses_total",
		"repro_cache_entries", "repro_engine_events_fired_total",
		"repro_session_jobs_finished_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServiceSessionRotation: the warm-session table is bounded;
// rotated-out sessions fold their counters into the service totals so
// JobsFinished never regresses.
func TestServiceSessionRotation(t *testing.T) {
	svc, ts := startService(t, ServiceOptions{MaxSessions: 1})

	specs := []string{
		burstSpec,
		`{"preset":"burst","horizon":300,"nodes":5,"seed":7,"reps":2}`,
		`{"preset":"burst","horizon":300,"nodes":6,"seed":7,"reps":2}`,
	}
	for _, spec := range specs {
		if code, body := postRun(t, ts.URL+"/run", spec); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	snap := svc.Snapshot()
	if snap.Session.JobsFinished != uint64(len(specs)) {
		t.Errorf("JobsFinished = %d after rotation, want %d", snap.Session.JobsFinished, len(specs))
	}

	// The original spec must still replay byte-identically on a fresh
	// session (results come from the shared cache).
	_, first := postRun(t, ts.URL+"/run", specs[0])
	_, second := postRun(t, ts.URL+"/run", specs[0])
	if first != second {
		t.Error("replay after session rotation differs")
	}
	if hits := svc.Snapshot().Cache.Hits; hits == 0 {
		t.Error("no cache hits across rotated sessions")
	}
}
