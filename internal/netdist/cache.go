package netdist

import (
	"bytes"
	"container/list"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/system"
)

// defaultCacheBytes is the cache budget when none is configured.
const defaultCacheBytes = 256 << 20

// Cache is a deterministic shard-result cache implementing
// session.Backend as middleware around another backend. Entries are
// contiguous seed runs keyed by the configuration's fingerprint
// (distrib.ConfigFingerprint), holding the gob encoding of their
// replications' metrics; gob routes the stats accumulators through
// their exact IEEE-754 bit encodings, so a decoded hit is
// byte-identical to a fresh simulation of the same (config, seed) —
// caching can never change results, only skip work.
//
// A shard is served per seed: cached seeds decode from the store,
// uncovered seeds run on the inner backend as one sub-shard, and the
// fresh results are stored as new contiguous runs. Overlapping sweeps
// therefore touch the simulator only for seed ranges nobody has asked
// for yet. Eviction is LRU over whole entries, bounded by encoded
// bytes. Configurations without a fingerprint (attached trace
// recorder, unregistered shapes) bypass the cache entirely.
//
// Cache is safe for concurrent use; concurrent fills of the same seeds
// are allowed (both compute, both results are identical by
// determinism, the duplicate insert is dropped).
type Cache struct {
	inner    session.Backend
	maxBytes int64

	mu        sync.Mutex
	lru       *list.List                    // *entry, front = most recently used
	index     map[string]map[uint64]seedRef // fingerprint → seed → location
	bytes     int64
	hits      uint64
	misses    uint64
	inserts   uint64
	evictions uint64
	bypasses  uint64
}

// entry is one cached contiguous seed run.
type entry struct {
	fp    string
	seeds []uint64
	data  []byte // gob-encoded []*system.Metrics, immutable once stored
	elem  *list.Element
}

// size is the entry's accounting footprint: payload plus index and
// bookkeeping overhead.
func (e *entry) size() int64 { return int64(len(e.data)) + 16*int64(len(e.seeds)) + 160 }

// seedRef locates one seed inside an entry.
type seedRef struct {
	e   *entry
	idx int
}

// NewCache wraps inner with a shard-result cache bounded at maxBytes
// of encoded results (<= 0 picks 256 MiB).
func NewCache(inner session.Backend, maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	return &Cache{
		inner:    inner,
		maxBytes: maxBytes,
		lru:      list.New(),
		index:    make(map[string]map[uint64]seedRef),
	}
}

// Unwrap exposes the inner backend so Snapshot facet collection sees
// through the cache.
func (c *Cache) Unwrap() session.Backend { return c.inner }

// Run implements session.Backend: serve what the cache holds, simulate
// the rest, store what was fresh.
func (c *Cache) Run(ctx context.Context, shard session.Shard) (session.ShardResult, error) {
	fp, err := distrib.ConfigFingerprint(shard.Config)
	if err != nil {
		if !errors.Is(err, distrib.ErrNotWirable) {
			return session.ShardResult{}, err
		}
		c.mu.Lock()
		c.bypasses++
		c.mu.Unlock()
		return c.inner.Run(ctx, shard)
	}
	n := len(shard.Seeds)
	metrics := make([]*system.Metrics, n)

	type hit struct {
		i   int // index in shard.Seeds
		e   *entry
		idx int // index in the entry's run
	}
	var hits []hit
	var missIdx []int
	c.mu.Lock()
	bySeed := c.index[fp]
	for i, seed := range shard.Seeds {
		if ref, ok := bySeed[seed]; ok {
			c.lru.MoveToFront(ref.e.elem)
			hits = append(hits, hit{i: i, e: ref.e, idx: ref.idx})
		} else {
			missIdx = append(missIdx, i)
		}
	}
	c.hits += uint64(len(hits))
	c.misses += uint64(len(missIdx))
	c.mu.Unlock()

	// Decode each hit entry once, outside the lock. Entry data is
	// immutable after insert, so a concurrent eviction only drops the
	// index reference — the bytes being decoded stay valid.
	decoded := make(map[*entry][]*system.Metrics)
	for _, h := range hits {
		runs, ok := decoded[h.e]
		if !ok {
			runs, err = decodeRuns(h.e.data)
			if err != nil {
				return session.ShardResult{}, fmt.Errorf("netdist: corrupt cache entry: %w", err)
			}
			if len(runs) != len(h.e.seeds) {
				return session.ShardResult{}, fmt.Errorf("netdist: cache entry holds %d runs for %d seeds", len(runs), len(h.e.seeds))
			}
			decoded[h.e] = runs
		}
		metrics[h.i] = runs[h.idx]
	}
	if shard.OnResult != nil {
		for _, h := range hits {
			shard.OnResult(h.i, metrics[h.i])
		}
	}

	var runErr error
	if len(missIdx) > 0 {
		seeds := make([]uint64, len(missIdx))
		for j, i := range missIdx {
			seeds[j] = shard.Seeds[i]
		}
		sub := session.Shard{
			Config:      shard.Config,
			Seeds:       seeds,
			Parallelism: shard.Parallelism,
		}
		if onResult := shard.OnResult; onResult != nil {
			sub.OnResult = func(j int, m *system.Metrics) { onResult(missIdx[j], m) }
		}
		res, err := c.inner.Run(ctx, sub)
		if err != nil && !isCancellation(err) {
			return session.ShardResult{}, err
		}
		runErr = err
		for j, m := range res.Metrics {
			if m != nil && j < len(missIdx) {
				metrics[missIdx[j]] = m
			}
		}
		c.store(fp, seeds, res.Metrics)
	}

	completed := 0
	for completed < n && metrics[completed] != nil {
		completed++
	}
	if runErr != nil {
		// The cancellation contract: results form an exact contiguous
		// seed prefix. Cached results beyond the prefix are real, but
		// callers are promised nil there — they stay in the cache for
		// the retry instead.
		for i := completed; i < n; i++ {
			metrics[i] = nil
		}
	}
	return session.ShardResult{Metrics: metrics, Completed: completed}, runErr
}

// store splits freshly computed results into maximal contiguous seed
// runs and inserts each.
func (c *Cache) store(fp string, seeds []uint64, runs []*system.Metrics) {
	if len(runs) > len(seeds) {
		runs = runs[:len(seeds)]
	}
	for start := 0; start < len(runs); {
		if runs[start] == nil {
			start++
			continue
		}
		end := start + 1
		for end < len(runs) && runs[end] != nil && seeds[end] == seeds[end-1]+1 {
			end++
		}
		if data, err := encodeRuns(runs[start:end]); err == nil {
			c.insert(fp, seeds[start:end], data)
		}
		start = end
	}
}

// insert stores one contiguous run and evicts LRU entries while over
// budget. The entry being inserted is never evicted by its own insert.
func (c *Cache) insert(fp string, seeds []uint64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bySeed := c.index[fp]
	if bySeed == nil {
		bySeed = make(map[uint64]seedRef)
		c.index[fp] = bySeed
	} else {
		fresh := false
		for _, s := range seeds {
			if _, ok := bySeed[s]; !ok {
				fresh = true
				break
			}
		}
		if !fresh {
			return // a concurrent fill already covers every seed
		}
	}
	e := &entry{fp: fp, seeds: append([]uint64(nil), seeds...), data: data}
	e.elem = c.lru.PushFront(e)
	for i, s := range e.seeds {
		bySeed[s] = seedRef{e: e, idx: i}
	}
	c.bytes += e.size()
	c.inserts++
	for c.bytes > c.maxBytes {
		last := c.lru.Back()
		if last == nil || last == e.elem {
			break
		}
		c.removeLocked(last.Value.(*entry))
		c.evictions++
	}
}

// removeLocked drops an entry from the LRU list, the index, and the
// byte accounting. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	if bySeed := c.index[e.fp]; bySeed != nil {
		for _, s := range e.seeds {
			if ref, ok := bySeed[s]; ok && ref.e == e {
				delete(bySeed, s)
			}
		}
		if len(bySeed) == 0 {
			delete(c.index, e.fp)
		}
	}
	c.bytes -= e.size()
}

// CacheStats implements the session.CacheStatser facet.
func (c *Cache) CacheStats() obs.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Inserts:   c.inserts,
		Evictions: c.evictions,
		Bypasses:  c.bypasses,
		Entries:   uint64(c.lru.Len()),
		Bytes:     uint64(c.bytes),
	}
}

// encodeRuns and decodeRuns are the storage codec: plain gob over the
// metrics slice, the same encoding the distrib wire uses, with the same
// exact-bit float guarantees.
func encodeRuns(runs []*system.Metrics) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(runs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRuns(data []byte) ([]*system.Metrics, error) {
	var runs []*system.Metrics
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&runs); err != nil {
		return nil, err
	}
	return runs, nil
}

// isCancellation mirrors the session package's test.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
