// Package netdist lifts the distrib shard protocol off the host: the
// same length-prefixed frame codec that runs coordinator↔worker over
// stdin/stdout pipes runs here over TCP, so a fleet of remote machines
// can serve shard workers to one coordinator.
//
// Three layers stack on the existing seams:
//
//   - Server accepts coordinator connections on a TCP listener, enforces
//     the magic/version handshake, and runs distrib.ServeWorker per
//     connection — each connection gets its own warm session.Pool, so a
//     long-lived coordinator reuses workspaces across shards exactly as
//     a worker process would.
//   - NetBackend implements session.Backend by dialing a static list of
//     worker addresses through ProcBackend's WorkerConn transport seam:
//     the full PR-8 supervision machinery — heartbeats, chunk deadlines,
//     retry with backoff, straggler hedging, the respawn budget —
//     operates unchanged over sockets. A lost connection is reaped and
//     re-dialed like a dead process; when no worker is reachable at all
//     the backend degrades to the embedded in-process pool.
//   - Cache and Service build the long-running query layer: a
//     deterministic LRU over (config fingerprint, seed run) → encoded
//     shard results, and an HTTP front end that keys warm sessions by
//     config fingerprint and streams per-replication results in seed
//     order to many concurrent clients.
//
// Every layer preserves the repo's core invariant: results are a pure
// function of (config, seed), so output through any topology — pool,
// processes, sockets, cache hit — is byte-identical.
package netdist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/distrib"
)

// handshakeTimeout bounds the hello exchange on a fresh connection: a
// stray client that connects and sends nothing is cut off instead of
// holding a goroutine forever.
const handshakeTimeout = 5 * time.Second

// Server serves shard workers to remote coordinators: every accepted
// connection must open with a valid protocol handshake and then speaks
// the standard worker protocol (distrib.ServeWorker) until it closes.
type Server struct {
	ln net.Listener

	mu               sync.Mutex
	conns            map[net.Conn]struct{}
	closed           bool
	handshakeRejects uint64

	wg sync.WaitGroup
}

// Listen binds a worker server to addr (host:port; ":0" picks a free
// port — read it back with Addr). Serve must be called to start
// accepting.
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netdist: listen %s: %w", addr, err)
	}
	return &Server{ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts coordinator connections until Close. Each connection is
// served on its own goroutine with its own warm worker pool; Serve
// returns nil after Close, or the first accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("netdist: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn handshakes one connection and runs the worker protocol on
// it. Protocol failures just drop the connection: the coordinator owns
// recovery (respawn/redial), the server stays up for the next dial.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := distrib.ReadHello(conn); err != nil {
		s.mu.Lock()
		s.handshakeRejects++
		s.mu.Unlock()
		return
	}
	if err := distrib.SendHello(conn); err != nil {
		return
	}
	_ = conn.SetDeadline(time.Time{})
	_ = distrib.ServeWorker(conn, conn)
}

// HandshakeRejects counts connections dropped for failing the protocol
// handshake (mismatched binaries, stray clients).
func (s *Server) HandshakeRejects() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handshakeRejects
}

// Close stops accepting, severs live connections (in-flight shards are
// abandoned; the coordinator's supervision re-runs them elsewhere), and
// waits for connection goroutines to unwind. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
