package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/task"
)

// TestRuntimeConcurrentExecuteHammer drives many Execute calls through a
// small node set at once so `go test -race ./internal/live` exercises
// the mailbox heaps, shutdown paths and report assembly under real
// contention. Instances compete at the nodes by virtual deadline —
// exactly the situation the simulator models.
func TestRuntimeConcurrentExecuteHammer(t *testing.T) {
	instances := 200
	if testing.Short() {
		instances = 40
	}

	nodes := []*Node{NewNode("n0"), NewNode("n1"), NewNode("n2")}
	defer func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}()
	rt, err := NewRuntime(nodes, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var work atomic.Int64
	rt.Work = func(*task.Graph) { work.Add(1) }

	graph := func(i int) *task.Graph {
		a := task.Simple(fmt.Sprintf("a%d", i), 1)
		b := task.Simple(fmt.Sprintf("b%d", i), 2)
		c := task.Simple(fmt.Sprintf("c%d", i), 1)
		d := task.Simple(fmt.Sprintf("d%d", i), 1)
		a.NodeID, d.NodeID = 0, 0
		b.NodeID, c.NodeID = 1, 2
		return task.Serial(a, task.Parallel(b, c), d)
	}

	var wg sync.WaitGroup
	errs := make(chan error, instances)
	wg.Add(instances)
	for i := 0; i < instances; i++ {
		go func(i int) {
			defer wg.Done()
			rep, err := rt.Execute(graph(i), time.Second)
			if err != nil {
				errs <- err
				return
			}
			if len(rep.Subtasks) != 4 {
				errs <- fmt.Errorf("instance %d: %d subtask reports, want 4", i, len(rep.Subtasks))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := work.Load(), int64(instances*4); got != want {
		t.Errorf("work ran %d times, want %d", got, want)
	}
}

// TestNodeSubmitShutdownHammer races submissions against shutdown; every
// job's done channel must be closed exactly once, whether it ran or was
// abandoned.
func TestNodeSubmitShutdownHammer(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		n := NewNode("n")
		const jobs = 20
		var wg sync.WaitGroup
		wg.Add(jobs)
		submitted := make(chan *Job, jobs)
		for i := 0; i < jobs; i++ {
			go func(i int) {
				defer wg.Done()
				j := &Job{Name: fmt.Sprintf("j%d", i), Deadline: time.Now(), Run: func() {}}
				if err := n.Submit(j); err == nil {
					submitted <- j
				}
			}(i)
		}
		n.Shutdown()
		wg.Wait()
		close(submitted)
		for j := range submitted {
			select {
			case <-j.done:
			case <-time.After(time.Second):
				t.Fatalf("round %d: job %s neither ran nor was abandoned", round, j.Name)
			}
		}
	}
}
