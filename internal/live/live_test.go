package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/task"
)

func TestNodeRunsJobsInDeadlineOrder(t *testing.T) {
	n := NewNode("n0")
	defer n.Shutdown()

	var (
		mu    sync.Mutex
		order []string
	)
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	// A long first job lets the rest queue up; they must then run by
	// deadline, not submission, order.
	started := make(chan struct{})
	blocker := &Job{Name: "blocker", Deadline: time.Now().Add(time.Hour), Run: func() {
		close(started)
		time.Sleep(30 * time.Millisecond)
		record("blocker")()
	}}
	if err := n.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started // guarantee the blocker occupies the server first
	now := time.Now()
	late := &Job{Name: "late", Deadline: now.Add(3 * time.Hour), Run: record("late")}
	urgent := &Job{Name: "urgent", Deadline: now.Add(time.Minute), Run: record("urgent")}
	mid := &Job{Name: "mid", Deadline: now.Add(2 * time.Hour), Run: record("mid")}
	for _, j := range []*Job{late, urgent, mid} {
		if err := n.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range []*Job{blocker, late, urgent, mid} {
		<-j.done
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"blocker", "urgent", "mid", "late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestNodeShutdownUnblocksQueuedJobs(t *testing.T) {
	n := NewNode("n0")
	slow := &Job{Name: "slow", Deadline: time.Now(), Run: func() { time.Sleep(20 * time.Millisecond) }}
	if err := n.Submit(slow); err != nil {
		t.Fatal(err)
	}
	queued := &Job{Name: "queued", Deadline: time.Now(), Run: func() { t.Error("abandoned job ran") }}
	if err := n.Submit(queued); err != nil {
		t.Fatal(err)
	}
	n.Shutdown()
	select {
	case <-queued.done:
	case <-time.After(time.Second):
		t.Fatal("abandoned job's done channel not closed")
	}
	if err := n.Submit(&Job{Name: "afterwards", Deadline: time.Now(), Run: func() {}}); err == nil {
		t.Error("Submit after Shutdown should fail")
	}
	// Second shutdown is a no-op.
	n.Shutdown()
}

func testRuntime(t *testing.T, k int, assigner core.Assigner) (*Runtime, func()) {
	t.Helper()
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = NewNode(string(rune('A' + i)))
	}
	rt, err := NewRuntime(nodes, assigner)
	if err != nil {
		t.Fatal(err)
	}
	rt.TimeScale = time.Millisecond // graph time unit = 1ms
	return rt, func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}
}

func TestRuntimeSerialGraph(t *testing.T) {
	rt, stop := testRuntime(t, 2, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}))
	defer stop()

	g := task.MustParse("[a:5 b:5 c:5]")
	leaves := g.Flatten()
	leaves[0].NodeID, leaves[1].NodeID, leaves[2].NodeID = 0, 1, 0

	rep, err := rt.Execute(g, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed {
		t.Errorf("relaxed deadline missed: finished %v after %v", rep.Finished, rep.Deadline)
	}
	if len(rep.Subtasks) != 3 {
		t.Fatalf("%d subtask reports, want 3", len(rep.Subtasks))
	}
	// Serial order preserved.
	for i, want := range []string{"a", "b", "c"} {
		if rep.Subtasks[i].Name != want {
			t.Errorf("subtask %d = %q, want %q", i, rep.Subtasks[i].Name, want)
		}
	}
	// Precedence: b released after a finished.
	if rep.Subtasks[1].Released.Before(rep.Subtasks[0].Finished) {
		t.Error("stage b released before stage a finished")
	}
	// Virtual deadlines never exceed the end-to-end deadline.
	for _, s := range rep.Subtasks {
		if s.Deadline.After(rep.Deadline.Add(time.Millisecond)) {
			t.Errorf("subtask %s deadline %v beyond task deadline %v", s.Name, s.Deadline, rep.Deadline)
		}
	}
}

func TestRuntimeParallelGraph(t *testing.T) {
	rt, stop := testRuntime(t, 3, core.NewAssigner(core.UltimateDeadline{}, core.Div{X: 1}))
	defer stop()

	g := task.MustParse("[a:20 || b:20 || c:20]")
	for i, leaf := range g.Flatten() {
		leaf.NodeID = i
	}
	startAt := time.Now()
	rep, err := rt.Execute(g, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(startAt)
	// Three 20ms branches on three nodes run concurrently: well under
	// the 60ms serial time.
	if elapsed > 55*time.Millisecond {
		t.Errorf("parallel execution took %v, want well under 60ms", elapsed)
	}
	if rep.Missed || len(rep.Subtasks) != 3 {
		t.Errorf("report: missed=%v subtasks=%d", rep.Missed, len(rep.Subtasks))
	}
}

func TestRuntimeTightDeadlineReportsMiss(t *testing.T) {
	rt, stop := testRuntime(t, 1, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}))
	defer stop()

	g := task.MustParse("[a:30 b:30]")
	for _, leaf := range g.Flatten() {
		leaf.NodeID = 0
	}
	rep, err := rt.Execute(g, 5*time.Millisecond) // impossible
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Missed {
		t.Error("impossible deadline not reported as missed")
	}
	missedStages := 0
	for _, s := range rep.Subtasks {
		if s.Missed {
			missedStages++
		}
	}
	if missedStages == 0 {
		t.Error("no subtask reported a virtual-deadline miss")
	}
}

func TestRuntimeCustomWork(t *testing.T) {
	rt, stop := testRuntime(t, 1, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}))
	defer stop()

	var (
		mu   sync.Mutex
		runs []string
	)
	rt.Work = func(leaf *task.Graph) {
		mu.Lock()
		runs = append(runs, leaf.Name)
		mu.Unlock()
	}
	g := task.MustParse("[x:1 y:1]")
	for _, leaf := range g.Flatten() {
		leaf.NodeID = 0
	}
	if _, err := rt.Execute(g, time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(runs) != 2 || runs[0] != "x" || runs[1] != "y" {
		t.Errorf("custom work ran %v, want [x y]", runs)
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(nil, core.NewAssigner(nil, nil)); err == nil {
		t.Error("NewRuntime with no nodes should fail")
	}
	rt, stop := testRuntime(t, 1, core.NewAssigner(nil, nil))
	defer stop()
	if _, err := rt.Execute(task.Serial(), time.Second); err == nil {
		t.Error("invalid graph accepted")
	}
	g := task.Simple("a", 1)
	g.NodeID = 5 // out of range
	if _, err := rt.Execute(g, time.Second); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

func TestRuntimeConcurrentExecutes(t *testing.T) {
	rt, stop := testRuntime(t, 2, core.NewAssigner(core.EqualFlexibility{}, core.Div{X: 1}))
	defer stop()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		g := task.MustParse("[a:5 b:5]")
		for j, leaf := range g.Flatten() {
			leaf.NodeID = j % 2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = rt.Execute(g, time.Second)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("execute %d: %v", i, err)
		}
	}
}
