// Package live is a small concurrent runtime that applies the paper's
// deadline-assignment strategies to real work: every node is a goroutine
// with a deadline-ordered mailbox (non-preemptive, earliest deadline
// first — exactly the simulated node model), and a Runtime walks a
// serial-parallel task graph, assigns virtual deadlines with a
// core.Assigner at release time, and dispatches the subtasks. It is the
// bridge between the reproduction and a downstream application: the same
// strategies drive both the simulator and live goroutines.
package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/task"
)

// Job is one unit of work queued at a node.
type Job struct {
	// Name labels the job in reports.
	Name string
	// Deadline orders the node's queue (earliest first).
	Deadline time.Time
	// Run performs the work; it is executed on the node's goroutine.
	Run func()

	seq  uint64
	done chan struct{}
}

// Node is a single-worker execution resource with an EDF mailbox.
type Node struct {
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job // deadline min-heap
	seq     uint64
	stopped bool

	done chan struct{}
}

// NewNode starts a node's worker goroutine. Call Shutdown to stop it and
// wait for exit.
func NewNode(name string) *Node {
	n := &Node{name: name, done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	go n.work()
	return n
}

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// Submit queues a job. It returns an error after Shutdown.
func (n *Node) Submit(j *Job) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return fmt.Errorf("live: node %s is shut down", n.name)
	}
	n.seq++
	j.seq = n.seq
	j.done = make(chan struct{})
	n.push(j)
	n.cond.Signal()
	return nil
}

// Shutdown stops the worker after the current job and waits for it to
// exit. Queued but unstarted jobs are abandoned (their done channels are
// closed so waiters unblock).
func (n *Node) Shutdown() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		<-n.done
		return
	}
	n.stopped = true
	for _, j := range n.queue {
		close(j.done)
	}
	n.queue = nil
	n.cond.Signal()
	n.mu.Unlock()
	<-n.done
}

// work is the node's single-server loop: earliest-deadline-first,
// non-preemptive.
func (n *Node) work() {
	defer close(n.done)
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.stopped {
			n.cond.Wait()
		}
		if n.stopped {
			n.mu.Unlock()
			return
		}
		j := n.pop()
		n.mu.Unlock()

		j.Run()
		close(j.done)
	}
}

// push/pop maintain the deadline min-heap (FIFO on ties via seq).
func (n *Node) less(i, j int) bool {
	a, b := n.queue[i], n.queue[j]
	if !a.Deadline.Equal(b.Deadline) {
		return a.Deadline.Before(b.Deadline)
	}
	return a.seq < b.seq
}

func (n *Node) push(j *Job) {
	n.queue = append(n.queue, j)
	i := len(n.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !n.less(i, parent) {
			break
		}
		n.queue[i], n.queue[parent] = n.queue[parent], n.queue[i]
		i = parent
	}
}

func (n *Node) pop() *Job {
	last := len(n.queue) - 1
	top := n.queue[0]
	n.queue[0] = n.queue[last]
	n.queue[last] = nil
	n.queue = n.queue[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(n.queue) {
			break
		}
		least := left
		if right := left + 1; right < len(n.queue) && n.less(right, left) {
			least = right
		}
		if !n.less(least, i) {
			break
		}
		n.queue[i], n.queue[least] = n.queue[least], n.queue[i]
		i = least
	}
	return top
}

// SubtaskReport records one executed leaf.
type SubtaskReport struct {
	Name     string
	Node     string
	Released time.Time
	Deadline time.Time
	Finished time.Time
	Missed   bool
}

// Report is the outcome of one Runtime.Execute call.
type Report struct {
	Deadline time.Time
	Finished time.Time
	Missed   bool
	Subtasks []SubtaskReport
}

// Runtime executes serial-parallel task graphs on live nodes.
type Runtime struct {
	nodes    []*Node
	assigner core.Assigner
	// Work performs a leaf's work; nil defaults to sleeping
	// leaf.Exec seconds scaled by TimeScale.
	Work func(leaf *task.Graph)
	// TimeScale converts the graph's abstract execution times into wall
	// time for the default Work (seconds per time unit). Zero defaults
	// to 1.
	TimeScale time.Duration
}

// NewRuntime returns a runtime over the given nodes. Leaf NodeID values
// index into nodes.
func NewRuntime(nodes []*Node, assigner core.Assigner) (*Runtime, error) {
	if len(nodes) == 0 {
		return nil, errors.New("live: no nodes")
	}
	return &Runtime{nodes: nodes, assigner: assigner, TimeScale: time.Second}, nil
}

// Execute runs the graph with the given relative end-to-end deadline and
// blocks until it finishes (tardy subtasks are not aborted — the paper's
// soft real-time model). Multiple Execute calls may run concurrently;
// their subtasks compete at the nodes by virtual deadline.
func (r *Runtime) Execute(g *task.Graph, deadline time.Duration) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	for _, leaf := range g.Flatten() {
		if leaf.NodeID < 0 || leaf.NodeID >= len(r.nodes) {
			return nil, fmt.Errorf("live: leaf %q placed at node %d of %d", leaf.Name, leaf.NodeID, len(r.nodes))
		}
	}
	start := time.Now()
	rep := &Report{Deadline: start.Add(deadline)}
	var mu sync.Mutex // guards rep.Subtasks

	// Strategies work in float seconds relative to start.
	rel := func(t time.Time) float64 { return t.Sub(start).Seconds() }
	abs := func(x float64) time.Time {
		return start.Add(time.Duration(x * float64(time.Second)))
	}

	if err := r.run(g, rel(rep.Deadline), rel, abs, rep, &mu); err != nil {
		return nil, err
	}
	rep.Finished = time.Now()
	rep.Missed = rep.Finished.After(rep.Deadline)
	return rep, nil
}

// run executes graph node g with virtual deadline dl (relative seconds),
// blocking until done.
func (r *Runtime) run(g *task.Graph, dl float64,
	rel func(time.Time) float64, abs func(float64) time.Time,
	rep *Report, mu *sync.Mutex) error {
	switch g.Kind {
	case task.KindSimple:
		released := time.Now()
		j := &Job{
			Name:     g.Name,
			Deadline: abs(dl),
			Run: func() {
				if r.Work != nil {
					r.Work(g)
					return
				}
				scale := r.TimeScale
				if scale == 0 {
					scale = time.Second
				}
				time.Sleep(time.Duration(g.Exec * float64(scale)))
			},
		}
		if err := r.nodes[g.NodeID].Submit(j); err != nil {
			return err
		}
		<-j.done
		finished := time.Now()
		mu.Lock()
		rep.Subtasks = append(rep.Subtasks, SubtaskReport{
			Name:     g.Name,
			Node:     r.nodes[g.NodeID].Name(),
			Released: released,
			Deadline: j.Deadline,
			Finished: finished,
			Missed:   finished.After(j.Deadline),
		})
		mu.Unlock()
		return nil

	case task.KindSerial:
		for i := range g.Children {
			stageDL := r.assigner.SerialStage(rel(time.Now()), dl, g.Children[i:])
			if err := r.run(g.Children[i], stageDL, rel, abs, rep, mu); err != nil {
				return err
			}
		}
		return nil

	case task.KindParallel:
		arrival := rel(time.Now())
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		for i := range g.Children {
			branchDL := r.assigner.ParallelBranch(arrival, dl, g.Children, i)
			child := g.Children[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := r.run(child, branchDL, rel, abs, rep, mu); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		wg.Wait()
		return firstErr

	default:
		return fmt.Errorf("live: unknown graph kind %v", g.Kind)
	}
}
