// Package repro is the public API of this reproduction of Kao &
// Garcia-Molina, "Deadline Assignment in a Distributed Soft Real-Time
// System" (ICDCS 1993 / IEEE TPDS 1997).
//
// The library has three layers, all executing through one run API:
//
//   - Deadline assignment (the paper's contribution): serial-parallel
//     task graphs (Graph, ParseGraph) and the SDA strategies — SSP: UD,
//     ED, EQS, EQF; PSP: UD, DIV-x, GF — composed recursively by
//     Assigner. Use NewAssigner and Assigner.Plan for static planning,
//     or plug the strategies into the simulator or the live runtime for
//     dynamic assignment at release time.
//
//   - Simulation model: SimConfig describes the paper's discrete-event
//     system (Table 1 baseline via BaselineConfig / PSPBaselineConfig,
//     every section 4–7 variation as a field), optionally driven by a
//     declarative Scenario (ParseScenario, ScenarioPreset, ChurnScenario)
//     with time-varying load, node faults, alternative demand
//     distributions and windowed time-series metrics.
//
//   - Paper artifacts: Experiments/RunExperiment regenerate every table
//     and figure of the evaluation (fig2a, fig2b, fig3, fig4, combined,
//     ablations, extensions) with confidence intervals; RenderTable,
//     RenderChart and RenderCSV format the results.
//
// A fourth, independent piece — the live runtime (NewLiveNode,
// NewLiveRuntime) — executes task graphs on real goroutines with
// deadline-ordered mailboxes, applying the same strategies to real work.
//
// # The Session run API
//
// Everything the simulator runs, it runs through a Session: a stateful
// entry point owning a worker pool whose per-worker warm workspaces
// (engine, task pools, ready queues, node group, and reconfigurable
// workload sources) are created once and reused across every call. A
// Job is the unit of work — a configuration, an optional scenario, and
// a replication count — and functional options (WithParallelism,
// WithProgress, WithTrace, WithEventQueue, WithPoolingDisabled) replace
// positional arguments:
//
//	sess := repro.NewSession(repro.WithParallelism(8))
//	defer sess.Close()
//	res, err := sess.Run(ctx, repro.Job{Config: repro.BaselineConfig(), Reps: 10})
//
// Every run method takes a context. Cancellation is deterministic-safe:
// replications are claimed in seed order and never interrupted mid-run,
// so a cancelled Run returns the finished seed prefix as a valid
// partial RunResult (marked Partial, listing exactly the seeds that
// finished) alongside the context's error. Session.Stream delivers
// per-replication results over a channel in seed order as workers
// finish; Session.Experiment and Session.RunScenario run the paper
// artifacts and scenario jobs on the same warm pool. The Backend
// interface (Run(ctx, Shard) (ShardResult, error)) is the seam a
// distributed runner plugs into via NewSessionWithBackend.
//
// The pre-session free functions (Simulate, SimulateReplications,
// SimulateReplicationsParallel, RunScenario) remain as deprecated thin
// wrappers over a package-level default session, with byte-identical
// outputs.
//
// Quick start (static planning, no simulation):
//
//	g := repro.MustParseGraph("[gather:1 [f1:1 || f2:1.5] decide:2]")
//	a := repro.NewAssigner(repro.EQF, repro.DIV(1))
//	plan, _ := a.Plan(g, 0, 12)
//	for _, p := range plan {
//	    fmt.Printf("%-8s release %.2f deadline %.2f\n", p.Leaf.Name, p.Release, p.Deadline)
//	}
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/live"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Task model -----------------------------------------------------------

// Graph is a node of a serial-parallel task graph (see task.Graph).
type Graph = task.Graph

// Task is the schedulable unit local schedulers see.
type Task = task.Task

// Class distinguishes local tasks from global subtasks.
type Class = task.Class

// Task classes.
const (
	Local  = task.Local
	Global = task.Global
)

// Simple returns a leaf subtask with a predicted execution time.
func Simple(name string, pex float64) *Graph { return task.Simple(name, pex) }

// Serial composes subtasks to execute in order: [T1 T2 ... Tn].
func Serial(children ...*Graph) *Graph { return task.Serial(children...) }

// Parallel composes subtasks to execute concurrently: [T1 || ... || Tn].
func Parallel(children ...*Graph) *Graph { return task.Parallel(children...) }

// ParseGraph parses the compact notation "[a:1 [b:2 || c:3] d:1]".
func ParseGraph(input string) (*Graph, error) { return task.Parse(input) }

// MustParseGraph is ParseGraph that panics on error, for statically
// known notation.
func MustParseGraph(input string) *Graph { return task.MustParse(input) }

// Strategies ------------------------------------------------------------

// SerialStrategy assigns virtual deadlines to serial stages (SSP).
type SerialStrategy = core.SerialStrategy

// ParallelStrategy assigns virtual deadlines to parallel branches (PSP).
type ParallelStrategy = core.ParallelStrategy

// Assigner composes an SSP and a PSP strategy over serial-parallel
// graphs (paper section 6).
type Assigner = core.Assigner

// Assignment is one leaf's planned (release, deadline) pair.
type Assignment = core.Assignment

// The paper's SSP strategies (section 4).
var (
	// UD is Ultimate Deadline: dl(Ti) = dl(T).
	UD core.UltimateDeadline
	// ED is Effective Deadline: dl(T) minus remaining predicted work.
	ED core.EffectiveDeadline
	// EQS is Equal Slack: remaining slack divided evenly.
	EQS core.EqualSlack
	// EQF is Equal Flexibility: remaining slack divided in proportion
	// to predicted execution times.
	EQF core.EqualFlexibility
)

// PSP strategy values (section 5).
var (
	// PUD is the parallel Ultimate Deadline strategy.
	PUD core.ParallelUltimate
	// GF is Globals First: subtasks keep dl(T) but are always scheduled
	// before local tasks.
	GF core.GlobalsFirst
)

// DIV returns the DIV-x strategy: dl(Ti) = ar + (dl−ar)/(n·x).
func DIV(x float64) ParallelStrategy { return core.Div{X: x} }

// ArtificialStages wraps a serial strategy with n phantom trailing
// stages (the paper's section 7 future-work proposal).
func ArtificialStages(base SerialStrategy, n int) SerialStrategy {
	return core.ArtificialStages{Base: base, Extra: n}
}

// AdaptiveDIV returns the DIV variant whose divisor shrinks toward 1 as
// the fan-out grows (reference [7] direction).
func AdaptiveDIV(boost float64) ParallelStrategy { return core.AdaptiveDiv{Boost: boost} }

// NewAssigner composes the strategies; nil arguments default to UD.
func NewAssigner(s SerialStrategy, p ParallelStrategy) Assigner {
	return core.NewAssigner(s, p)
}

// SerialStrategyByName resolves "UD", "ED", "EQS", "EQF", "EQF-AS<n>".
func SerialStrategyByName(name string) (SerialStrategy, error) {
	return core.SerialByName(name)
}

// ParallelStrategyByName resolves "UD", "DIV-<x>", "GF", "ADIV<boost>".
func ParallelStrategyByName(name string) (ParallelStrategy, error) {
	return core.ParallelByName(name)
}

// Simulation ------------------------------------------------------------

// SimConfig is the full parameter set of the simulation model (Table 1
// plus variations).
type SimConfig = system.Config

// SimMetrics is the outcome of one simulation run.
type SimMetrics = system.Metrics

// SimReplication aggregates runs across seeds.
type SimReplication = system.Replication

// Shape describes the structure of generated global tasks.
type Shape = workload.Shape

// Workload shapes for SimConfig.Shape.
type (
	// SerialShape is the SSP workload [T1 ... Tm].
	SerialShape = workload.SerialShape
	// ParallelShape is the PSP workload [T1 || ... || Tm] at distinct
	// nodes.
	ParallelShape = workload.ParallelShape
	// MixedShape is a serial chain with parallel stages (section 6).
	MixedShape = workload.MixedShape
	// HeteroSerialShape draws the subtask count uniformly per task.
	HeteroSerialShape = workload.HeteroSerialShape
)

// EventQueueKind selects the simulation engine's pending-event
// structure (SimConfig.EventQueue). Every kind pops events in the same
// (time, seq) order, so results are byte-identical; only speed differs
// with topology size.
type EventQueueKind = sim.QueueKind

// Event-queue kinds.
const (
	// EventQueueAuto (the zero value) starts on the binary heap and
	// promotes to the ladder queue once the pending-event count crosses
	// the large-topology threshold.
	EventQueueAuto = sim.QueueAuto
	// EventQueueHeap pins the reference binary heap.
	EventQueueHeap = sim.QueueHeap
	// EventQueueLadder pins the two-level ladder queue built for
	// large-topology runs.
	EventQueueLadder = sim.QueueLadder
)

// BaselineConfig returns Table 1's baseline setting.
func BaselineConfig() SimConfig { return system.Baseline() }

// PSPBaselineConfig returns the section 5.2 parallel-subtask setting.
func PSPBaselineConfig() SimConfig { return system.PSPBaseline() }

// Simulate runs one replication of the simulation model.
//
// Deprecated: use Session.Run with a single-replication Job; Simulate
// delegates to a package-level default session (byte-identical results)
// but cannot be cancelled and shares its warm state process-wide.
func Simulate(cfg SimConfig) (*SimMetrics, error) {
	res, err := defaultSession().Run(context.Background(),
		Job{Config: cfg, Reps: 1}, WithParallelism(1))
	if err != nil {
		return nil, err
	}
	return res.Runs[0], nil
}

// SimulateReplications runs reps independent replications and aggregates
// miss percentages with 95% confidence intervals. Replications fan out
// across all cores; results are bit-identical to a sequential run because
// every replication owns its seed-derived RNG substreams.
//
// Deprecated: use Session.Run — the Job's Reps field replaces the
// positional argument, and the RunResult carries the same runs and
// estimates (RunResult.Replication converts). This wrapper delegates to
// the package-level default session with byte-identical outputs.
func SimulateReplications(cfg SimConfig, reps int) (*SimReplication, error) {
	return SimulateReplicationsParallel(cfg, reps, 0)
}

// SimulateReplicationsParallel is SimulateReplications with an explicit
// worker bound: parallelism <= 0 uses GOMAXPROCS, 1 forces the
// sequential path. Attaching a TraceRecorder forces parallelism 1.
//
// Deprecated: use Session.Run with WithParallelism, which replaces the
// positional argument and adds cancellation and streaming. This wrapper
// delegates to the package-level default session with byte-identical
// outputs.
func SimulateReplicationsParallel(cfg SimConfig, reps, parallelism int) (*SimReplication, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("system: reps = %d, want > 0", reps)
	}
	res, err := defaultSession().Run(context.Background(),
		Job{Config: cfg, Reps: reps}, WithParallelism(parallelism))
	if err != nil {
		return nil, err
	}
	return res.Replication(), nil
}

// Scenarios --------------------------------------------------------------

// Scenario is a compiled declarative scenario: a timeline of workload
// phases (rate steps, ramps, bursts), node fault events (slowdowns,
// outages) and an optional demand-distribution override, plus the
// window width of its time-series metrics. See internal/scenario.
type Scenario = scenario.Scenario

// ScenarioSpec is the JSON-serializable scenario description.
type ScenarioSpec = scenario.Spec

// ScenarioPhase is one segment of a scenario's workload timeline.
type ScenarioPhase = scenario.PhaseSpec

// ScenarioEvent is one scheduled node fault (slowdown or outage).
type ScenarioEvent = scenario.EventSpec

// ScenarioSeries is the per-window time series a scenario run collects
// (miss ratios, lateness, queue lengths); it merges exactly across
// replications and renders as CSV via WriteCSV.
type ScenarioSeries = scenario.Series

// ScenarioResult is a replicated scenario outcome: the merged series
// plus per-replication metrics and miss-percentage estimates.
type ScenarioResult = experiment.ScenarioResult

// Demand distributions for ScenarioSpec / workload shapes. Nil means
// the paper's exponential demands.
type (
	// Demand is the pluggable execution-time distribution interface.
	Demand = workload.Demand
	// ParetoDemand draws mean-matched heavy-tailed demands (Alpha > 1).
	ParetoDemand = workload.ParetoDemand
	// LognormalDemand draws mean-matched lognormal demands.
	LognormalDemand = workload.LognormalDemand
	// DeterministicDemand makes every demand exactly the mean.
	DeterministicDemand = workload.DeterministicDemand
)

// ParseScenario parses and compiles a JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) {
	sp, err := scenario.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return scenario.New(sp)
}

// NewScenario compiles a programmatically built spec.
func NewScenario(spec ScenarioSpec) (*Scenario, error) { return scenario.New(spec) }

// ScenarioPreset compiles a built-in scenario ("burst", "ramp",
// "outage", "heavytail", "storm") scaled to the given horizon.
func ScenarioPreset(name string, horizon float64) (*Scenario, error) {
	return scenario.Preset(name, horizon)
}

// ScenarioPresets lists the built-in scenarios with one-line
// descriptions.
func ScenarioPresets() []string { return scenario.Presets() }

// ChurnOptions tunes the node-churn scenario generator (fault
// durations, slowdown mix, seed).
type ChurnOptions = scenario.ChurnOptions

// ChurnScenario generates a node-churn scenario: per-node Poisson fault
// schedules (on average rate faults per node across the horizon) so
// large-topology churn runs don't hand-write per-node event entries.
// The schedule is a pure function of (nodes, rate, horizon, options).
func ChurnScenario(nodes int, rate, horizon float64, o ChurnOptions) (*Scenario, error) {
	return scenario.Churn(nodes, rate, horizon, o)
}

// RunScenario executes reps replications of cfg under the scenario
// (parallelism <= 0 uses GOMAXPROCS, 1 is sequential) and merges the
// time series across replications. Results — including the merged
// series' CSV bytes — are identical at every parallelism level.
//
// Deprecated: use Session.RunScenario (or Session.Run with a scenario
// Job, which also offers streaming and cancellation). This wrapper
// delegates to the package-level default session with byte-identical
// outputs.
func RunScenario(cfg SimConfig, sc *Scenario, reps, parallelism int) (*ScenarioResult, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("system: reps = %d, want > 0", reps)
	}
	return defaultSession().RunScenario(context.Background(), cfg, sc, reps,
		WithParallelism(parallelism))
}

// Experiments -----------------------------------------------------------

// Experiment is a runnable paper artifact (table or figure).
type Experiment = experiment.Experiment

// ExperimentOptions scales an experiment (horizon, replications, seed)
// and bounds its parallelism (Parallelism: 0 = all cores, 1 =
// sequential; results are identical either way). Set Progress to observe
// sweep completion, e.g. with ProgressPrinter.
type ExperimentOptions = experiment.Options

// ProgressPrinter returns an ExperimentOptions.Progress callback that
// renders a one-line progress meter to w, prefixed with label. A
// printer tracks a single sweep; construct a fresh one per
// RunExperiment call.
func ProgressPrinter(w io.Writer, label string) func(done, total int) {
	return experiment.ProgressPrinter(w, label)
}

// ExperimentResult is a figure plus notes.
type ExperimentResult = experiment.Result

// Figure is a set of measured curves (see stats.Figure).
type Figure = stats.Figure

// Experiments lists every registered experiment sorted by id.
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID looks up one experiment ("fig2b", "combined", ...).
func ExperimentByID(id string) (Experiment, error) { return experiment.ByID(id) }

// RunExperiment runs the experiment with the given id. With a zero
// Options.Session it executes on the package-level default session
// (warm workspaces shared with the other free functions); prefer
// Session.Experiment to control the session and the context explicitly.
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, error) {
	if o.Session == nil {
		o.Session = defaultSession().Session
	}
	e, err := experiment.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// RenderTable formats a figure as a fixed-width text table.
func RenderTable(f *Figure) string { return experiment.RenderTable(f) }

// RenderChart draws a figure as an ASCII chart.
func RenderChart(f *Figure, width, height int) string {
	return experiment.RenderChart(f, width, height)
}

// RenderCSV formats a figure as CSV.
func RenderCSV(f *Figure) string { return experiment.RenderCSV(f) }

// Tracing ----------------------------------------------------------------

// TraceRecorder captures per-task lifecycle events (submit, dispatch,
// preempt, complete, abort) from a simulation run. Attach one via
// SimConfig.Trace and export with WriteCSV, or inspect TaskHistory.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded lifecycle step.
type TraceEvent = trace.Event

// TraceKind is a lifecycle event type.
type TraceKind = trace.Kind

// Trace lifecycle kinds.
const (
	TraceSubmit   = trace.Submit
	TraceDispatch = trace.Dispatch
	TracePreempt  = trace.Preempt
	TraceComplete = trace.Complete
	TraceAbort    = trace.Abort
)

// NewTraceRecorder returns a recorder retaining up to capacity events
// (<= 0 means unbounded).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// Live runtime ----------------------------------------------------------

// LiveNode is a goroutine-backed execution resource with an EDF mailbox.
type LiveNode = live.Node

// LiveJob is one unit of work queued at a live node.
type LiveJob = live.Job

// LiveRuntime executes task graphs on live nodes.
type LiveRuntime = live.Runtime

// LiveReport is the outcome of one live execution.
type LiveReport = live.Report

// NewLiveNode starts a node goroutine; call Shutdown to stop it.
func NewLiveNode(name string) *LiveNode { return live.NewNode(name) }

// NewLiveRuntime builds a runtime over nodes with the given assigner.
func NewLiveRuntime(nodes []*LiveNode, a Assigner) (*LiveRuntime, error) {
	return live.NewRuntime(nodes, a)
}
